//===- ObservabilityTest.cpp - Metrics, tracing, slow-query log -----------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the observability layer's one hard invariant and its surfaces:
///
///  * Passivity. Installing a TraceSink changes *nothing* the engine
///    decides: verdict, decision stream, certificate text and every
///    deterministic stat are bit-identical traced vs. untraced, at
///    Jobs = 1 and Jobs = 2, across the registry case studies.
///  * The emitted trace is valid Chrome trace_event JSON with balanced
///    begin/end spans per thread and named worker tracks.
///  * MetricsSnapshot behaves like SolverStats::merge: counters are
///    monotone across runs, merge is associative, gauges are last-wins
///    with maxed peaks.
///  * The serve `metrics` op round-trips through the line-JSON protocol
///    in both JSON and Prometheus forms.
///  * The slow-query log fires deterministically (GateSolver holds the
///    request over the threshold) and stays silent when disabled.
///
//===----------------------------------------------------------------------===//

#include "core/CertificateIo.h"
#include "core/Checker.h"
#include "core/Engine.h"
#include "core/FrontierKey.h"
#include "obs/Clock.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "parsers/CaseStudies.h"
#include "serve/Json.h"
#include "serve/Server.h"
#include "serve/Service.h"
#include "smt/Solver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace leapfrog;
using namespace leapfrog::core;

namespace {

//===----------------------------------------------------------------------===//
// Shared helpers.
//===----------------------------------------------------------------------===//

// The ServeTest twin pair: equivalent two-state parsers differing only in
// state names, cheap enough to check many times in one test.
const char *LfpA = "header h : 8;\n"
                   "entry start;\n"
                   "state start {\n"
                   "  extract(h);\n"
                   "  select(h[0:7]) {\n"
                   "    (0b00000000) => accept;\n"
                   "    (_) => next;\n"
                   "  }\n"
                   "}\n"
                   "state next {\n"
                   "  extract(h);\n"
                   "  goto accept;\n"
                   "}\n";

const char *LfpB = "header h : 8;\n"
                   "entry s0;\n"
                   "state s0 {\n"
                   "  extract(h);\n"
                   "  select(h[0:7]) {\n"
                   "    (0b00000000) => accept;\n"
                   "    (_) => s1;\n"
                   "  }\n"
                   "}\n"
                   "state s1 {\n"
                   "  extract(h);\n"
                   "  goto accept;\n"
                   "}\n";

CheckRequest requestFor(const char *Left, const char *Right,
                        CheckOptions Options = {}) {
  CheckRequest Req;
  std::vector<std::string> Errors;
  bool Ok = checkRequestFromSurface(Left, Right, Options, Req, Errors);
  EXPECT_TRUE(Ok) << (Errors.empty() ? "?" : Errors.front());
  return Req;
}

CheckRequest registryRequest(const parsers::CaseStudy &Study,
                             CheckOptions Options) {
  return makeLanguageEquivalenceRequest(
      Study.Left, p4a::StateRef::normal(*Study.Left.findState(Study.LeftStart)),
      Study.Right,
      p4a::StateRef::normal(*Study.Right.findState(Study.RightStart)),
      std::move(Options));
}

/// Renders a trace step so failures show the first diverging decision.
std::string traceKey(const TraceStep &T) {
  const char *Kind = T.K == TraceStep::Kind::Skip     ? "skip"
                     : T.K == TraceStep::Kind::Extend ? "extend"
                                                      : "done";
  return std::string(Kind) + "/" + std::to_string(T.WpCount) + " " +
         detail::formulaKey(T.Psi);
}

struct CertifiedRun {
  CheckResult Res;
  std::string CertText;
};

/// One certified engine check; serializes the certificate on Equivalent so
/// bit-identity is pinned over the full artifact, proof log included.
/// Certify = false runs the same check without proof capture — the only
/// mode in which the parallel engine pipelines (capture forces the
/// barrier), so the pipelined-knob test needs it.
CertifiedRun runCertified(const CheckRequest &Req, size_t Jobs,
                          bool Certify = true) {
  EngineConfig Cfg;
  Cfg.Backend = "bitblast";
  Cfg.Jobs = Jobs;
  Cfg.Certify = Certify;
  std::string Err;
  std::unique_ptr<Engine> E = Engine::create(Cfg, &Err);
  EXPECT_NE(E, nullptr) << Err;
  CertifiedRun Run;
  if (!E)
    return Run;
  Run.Res = E->check(Req);
  if (Certify && Run.Res.V == Verdict::Equivalent) {
    EXPECT_NE(Run.Res.Proof, nullptr);
    Run.CertText = serializeCertificate(Req.Left, Req.Right,
                                        Run.Res.Certificate,
                                        Run.Res.Proof.get(),
                                        requestFingerprint(Req).hex());
  }
  return Run;
}

/// RAII: installs a sink for the scope, restores the previous one after.
struct SinkGuard {
  explicit SinkGuard(obs::TraceSink *Sink) : Prev(obs::traceSink()) {
    obs::setTraceSink(Sink);
  }
  ~SinkGuard() { obs::setTraceSink(Prev); }
  obs::TraceSink *Prev;
};

/// Asserts A and B decided identically: verdict, decision stream,
/// certificate, and the deterministic stat columns. SmtQueries and the
/// certificate bytes are schedule-dependent at Jobs > 1 (work stealing
/// moves goals between worker proof streams and changes which merge
/// items re-query), so Sequential = false skips those two and compares
/// everything the parallel engine guarantees deterministic.
void expectDecisionIdentical(const std::string &Label, const CertifiedRun &A,
                             const CertifiedRun &B, bool Sequential) {
  ASSERT_EQ(A.Res.V, B.Res.V) << Label;
  EXPECT_EQ(A.Res.FailureReason, B.Res.FailureReason) << Label;
  ASSERT_EQ(A.Res.Trace.size(), B.Res.Trace.size()) << Label;
  for (size_t I = 0; I < A.Res.Trace.size(); ++I)
    ASSERT_EQ(traceKey(A.Res.Trace[I]), traceKey(B.Res.Trace[I]))
        << Label << ": decision stream diverges at step " << I;
  if (Sequential) {
    EXPECT_EQ(A.CertText, B.CertText) << Label;
  } else {
    // Both sides must still *have* a certificate when equivalent.
    EXPECT_EQ(A.CertText.empty(), B.CertText.empty()) << Label;
  }
  const CheckStats &SA = A.Res.Stats, &SB = B.Res.Stats;
  EXPECT_EQ(SA.Iterations, SB.Iterations) << Label;
  EXPECT_EQ(SA.Extends, SB.Extends) << Label;
  EXPECT_EQ(SA.Skips, SB.Skips) << Label;
  EXPECT_EQ(SA.ReachPairs, SB.ReachPairs) << Label;
  EXPECT_EQ(SA.TemplatesLeft, SB.TemplatesLeft) << Label;
  EXPECT_EQ(SA.TemplatesRight, SB.TemplatesRight) << Label;
  EXPECT_EQ(SA.FinalConjuncts, SB.FinalConjuncts) << Label;
  EXPECT_EQ(SA.PeakFrontier, SB.PeakFrontier) << Label;
  EXPECT_EQ(SA.FormulaNodes, SB.FormulaNodes) << Label;
  if (Sequential) {
    EXPECT_EQ(SA.SmtQueries, SB.SmtQueries) << Label;
  }
}

/// Parses a Chrome trace and checks structural validity: traceEvents is
/// an array, every E has a same-thread open B, nothing stays open.
/// Returns the parsed document for further inspection.
serve::Json parseBalancedTrace(const std::string &ChromeJson) {
  serve::Json Doc;
  std::string Err;
  EXPECT_TRUE(serve::Json::parse(ChromeJson, Doc, &Err)) << Err;
  const serve::Json &Events = Doc.get("traceEvents");
  EXPECT_TRUE(Events.isArray());
  std::map<uint64_t, int> Depth; // tid -> open span count
  for (const serve::Json &E : Events.items()) {
    const std::string Ph = E.getString("ph");
    const uint64_t Tid = E.getUnsigned("tid", 0);
    if (Ph == "B") {
      ++Depth[Tid];
    } else if (Ph == "E") {
      EXPECT_GT(Depth[Tid], 0) << "E without same-thread B on tid " << Tid;
      --Depth[Tid];
    }
  }
  for (const auto &KV : Depth)
    EXPECT_EQ(KV.second, 0) << "unclosed span on tid " << KV.first;
  return Doc;
}

//===----------------------------------------------------------------------===//
// Passivity: tracing changes nothing the engine decides.
//===----------------------------------------------------------------------===//

TEST(Observability, TracingIsPassiveAcrossRegistryStudies) {
  obs::TraceSink Sink;
  for (const parsers::CaseStudy &Study : parsers::allCaseStudies()) {
    CheckOptions Options;
    // The CertificateTest sweep budgets: Applicability rows only need to
    // demonstrate the engine runs (they exceed any test budget), Utility
    // rows must finish.
    Options.MaxIterations = Study.Category == "Applicability" ? 300 : 20000;
    Options.RecordTrace = true;
    CheckRequest Req = registryRequest(Study, Options);

    // Baseline: untraced, sequential. The parallel engine guarantees
    // the decision stream and deterministic stats match this baseline
    // for any job count (ParallelTest's pin); the proof-stream bytes
    // are only deterministic sequentially, so the full certificate
    // comparison happens on the jobs=1 leg.
    CertifiedRun Baseline = runCertified(Req, 1);

    // Traced runs share one sink across studies so the final trace also
    // exercises multi-run accumulation.
    {
      SinkGuard Guard(&Sink);
      CertifiedRun Traced1 = runCertified(Req, 1);
      expectDecisionIdentical(Study.Name + " jobs=1", Baseline, Traced1,
                              /*Sequential=*/true);
      CertifiedRun Traced2 = runCertified(Req, 2);
      expectDecisionIdentical(Study.Name + " jobs=2", Baseline, Traced2,
                              /*Sequential=*/false);
    }
  }
  ASSERT_GT(Sink.eventCount(), 0u);

  // The accumulated trace must be structurally valid Chrome JSON with
  // balanced spans — through the file path tools consume.
  std::string Path = ::testing::TempDir() + "obs_registry_trace.json";
  std::string Err;
  ASSERT_TRUE(Sink.writeChromeJson(Path, &Err)) << Err;
  std::ifstream In(Path, std::ios::binary);
  ASSERT_TRUE(In.good());
  std::ostringstream Ss;
  Ss << In.rdbuf();
  serve::Json Doc = parseBalancedTrace(Ss.str());

  // Jobs = 2 runs must have named their worker tracks.
  size_t WorkerTracks = 0;
  for (const serve::Json &E : Doc.get("traceEvents").items()) {
    if (E.getString("ph") == "M" &&
        E.getString("name") == "thread_name" &&
        E.get("args").getString("name").rfind("worker-", 0) == 0)
      ++WorkerTracks;
  }
  EXPECT_GE(WorkerTracks, 1u);
  std::remove(Path.c_str());
}

// Passivity at the scheduling knobs the trace exists to explain: the
// pipelined merge (epoch.wait/epoch.merge spans) and the batched
// entailment window (solver.batch spans) run extra instrumentation on
// their hot paths, so each gets its own traced-vs-untraced pin rather
// than inheriting the default-knob test above. Small chunks force many
// epochs (maximum span traffic); GoalBatch = 8 exercises the windowed
// session sharing.
TEST(Observability, TracingIsPassiveAtPipelinedBatchedKnobs) {
  obs::TraceSink Sink;
  for (const parsers::CaseStudy &Study : parsers::allCaseStudies()) {
    // The cheap registry rows only: this test is about knob coverage,
    // not corpus breadth (the study sweep above owns that). The budget
    // keeps the big rows affordable — a deterministic budget trip is as
    // good a decision stream to pin as a full run.
    if (Study.Category == "Applicability")
      continue;
    CheckOptions Options;
    Options.MaxIterations = 2000;
    Options.RecordTrace = true;
    Options.GoalBatch = 8;
    Options.Chunk = 8;
    EXPECT_TRUE(Options.Pipeline); // pipelining is the default
    CheckRequest Req = registryRequest(Study, Options);

    // Certified legs run the barrier scheduler (proof capture forces
    // it); the uncertified pair is the one that actually pipelines.
    CertifiedRun Baseline = runCertified(Req, 1);
    CertifiedRun Plain = runCertified(Req, 1, /*Certify=*/false);
    {
      SinkGuard Guard(&Sink);
      CertifiedRun Traced1 = runCertified(Req, 1);
      expectDecisionIdentical(Study.Name + " batched jobs=1", Baseline,
                              Traced1, /*Sequential=*/true);
      CertifiedRun Traced2 = runCertified(Req, 2);
      expectDecisionIdentical(Study.Name + " batched barrier jobs=2",
                              Baseline, Traced2, /*Sequential=*/false);
      CertifiedRun TracedP = runCertified(Req, 2, /*Certify=*/false);
      expectDecisionIdentical(Study.Name + " pipelined+batched jobs=2",
                              Plain, TracedP, /*Sequential=*/false);
    }
  }
  ASSERT_GT(Sink.eventCount(), 0u);

  // The pipelined epochs must actually have hit the trace (the spans
  // leapfrog-trace's pipelining report reads), and the accumulated file
  // must stay structurally valid.
  std::string Path = ::testing::TempDir() + "obs_pipelined_trace.json";
  std::string Err;
  ASSERT_TRUE(Sink.writeChromeJson(Path, &Err)) << Err;
  std::ifstream In(Path, std::ios::binary);
  ASSERT_TRUE(In.good());
  std::ostringstream Ss;
  Ss << In.rdbuf();
  serve::Json Doc = parseBalancedTrace(Ss.str());
  size_t WaitSpans = 0, MergeSpans = 0;
  for (const serve::Json &E : Doc.get("traceEvents").items()) {
    if (E.getString("ph") != "B")
      continue;
    if (E.getString("name") == "epoch.wait")
      ++WaitSpans;
    else if (E.getString("name") == "epoch.merge")
      ++MergeSpans;
  }
  EXPECT_GT(WaitSpans, 0u);
  EXPECT_GT(MergeSpans, 0u);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// TraceSink: event forms render to spec-shaped JSON.
//===----------------------------------------------------------------------===//

TEST(Observability, TraceSinkEmitsSpecShapedEvents) {
  obs::TraceSink Sink;
  {
    SinkGuard Guard(&Sink);
    obs::nameCurrentThread("unit-main");
    {
      obs::ScopedSpan Outer("outer", "test",
                            obs::TraceArgs().add("n", uint64_t(7)).add(
                                "s", std::string("a\"b\\c")));
      obs::ScopedSpan Inner("inner", "test");
      Sink.instant("tick", "test");
      Sink.counterValue("depth", "test", 3);
    }
  }
  ASSERT_EQ(Sink.eventCount(), 7u); // M + 2*(B+E) + i + C

  serve::Json Doc = parseBalancedTrace(Sink.toChromeJson());
  bool SawMeta = false, SawInstant = false, SawCounter = false,
       SawArgs = false;
  for (const serve::Json &E : Doc.get("traceEvents").items()) {
    const std::string Ph = E.getString("ph");
    if (Ph == "M") {
      EXPECT_EQ(E.getString("name"), "thread_name");
      EXPECT_EQ(E.get("args").getString("name"), "unit-main");
      SawMeta = true;
    } else if (Ph == "i") {
      EXPECT_EQ(E.getString("name"), "tick");
      EXPECT_EQ(E.getString("s"), "t"); // instant scope is required
      SawInstant = true;
    } else if (Ph == "C") {
      EXPECT_EQ(E.get("args").getUnsigned("value", 0), 3u);
      SawCounter = true;
    } else if (Ph == "B" && E.getString("name") == "outer") {
      EXPECT_EQ(E.getString("cat"), "test");
      EXPECT_EQ(E.get("args").getUnsigned("n", 0), 7u);
      EXPECT_EQ(E.get("args").getString("s"), "a\"b\\c");
      SawArgs = true;
    }
  }
  EXPECT_TRUE(SawMeta);
  EXPECT_TRUE(SawInstant);
  EXPECT_TRUE(SawCounter);
  EXPECT_TRUE(SawArgs);
}

//===----------------------------------------------------------------------===//
// Metrics: monotone counters, associative merge, last-wins gauges.
//===----------------------------------------------------------------------===//

TEST(Observability, GlobalCountersAreMonotoneAcrossRuns) {
  obs::MetricsSnapshot Before = obs::metrics().snapshot();

  EngineConfig Cfg;
  std::string Err;
  std::unique_ptr<Engine> E = Engine::create(Cfg, &Err);
  ASSERT_NE(E, nullptr) << Err;
  CheckResult Res = E->check(requestFor(LfpA, LfpB));
  ASSERT_EQ(Res.V, Verdict::Equivalent) << Res.FailureReason;

  obs::MetricsSnapshot After = obs::metrics().snapshot();
  EXPECT_EQ(After.counter("check.runs"), Before.counter("check.runs") + 1);
  EXPECT_EQ(After.counter("check.iterations"),
            Before.counter("check.iterations") + Res.Stats.Iterations);
  EXPECT_EQ(After.counter("check.smt_queries"),
            Before.counter("check.smt_queries") + Res.Stats.SmtQueries);
  // Every name present before must be no smaller after — monotone, no
  // resets, no lost names.
  for (const auto &KV : Before.Counters)
    EXPECT_GE(After.counter(KV.first), KV.second) << KV.first;
  // Solve-latency histogram grew with the run's queries.
  ASSERT_TRUE(After.Histograms.count("smt.solve_micros"));
  const auto &H = After.Histograms.at("smt.solve_micros");
  if (Before.Histograms.count("smt.solve_micros")) {
    EXPECT_GE(H.Count, Before.Histograms.at("smt.solve_micros").Count);
  }
  EXPECT_GT(H.Count, 0u);
}

TEST(Observability, SnapshotMergeIsAssociative) {
  obs::Registry A, B, C;
  A.counter("shared").add(1);
  A.counter("only_a").add(10);
  A.gauge("depth").set(4);
  A.histogram("lat").observe(3);
  A.histogram("lat").observe(70);
  B.counter("shared").add(2);
  B.gauge("depth").set(2);
  B.histogram("lat").observe(4096);
  C.counter("shared").add(4);
  C.counter("only_c").add(20);
  C.gauge("depth").set(9);
  C.histogram("other").observe(1);

  obs::MetricsSnapshot SA = A.snapshot(), SB = B.snapshot(),
                       SC = C.snapshot();

  obs::MetricsSnapshot Left = SA; // (a + b) + c
  Left.merge(SB);
  Left.merge(SC);
  obs::MetricsSnapshot BC = SB; // a + (b + c)
  BC.merge(SC);
  obs::MetricsSnapshot Right = SA;
  Right.merge(BC);
  EXPECT_EQ(Left.toJson(), Right.toJson());

  EXPECT_EQ(Left.counter("shared"), 7u);
  EXPECT_EQ(Left.counter("only_a"), 10u);
  EXPECT_EQ(Left.counter("only_c"), 20u);
  // Gauge: last writer wins the value, peaks max.
  EXPECT_EQ(Left.Gauges.at("depth").Value, 9);
  EXPECT_EQ(Left.Gauges.at("depth").Peak, 9);
  obs::MetricsSnapshot AB = SA;
  AB.merge(SB);
  EXPECT_EQ(AB.Gauges.at("depth").Value, 2);
  EXPECT_EQ(AB.Gauges.at("depth").Peak, 4);
  // Histogram buckets added, max maxed, quantile bounds ordered.
  const auto &Lat = Left.Histograms.at("lat");
  EXPECT_EQ(Lat.Count, 3u);
  EXPECT_EQ(Lat.Max, 4096u);
  EXPECT_LE(Lat.quantileUpperBoundMicros(0.50),
            Lat.quantileUpperBoundMicros(0.95));
  EXPECT_LE(Lat.quantileUpperBoundMicros(0.95),
            Lat.quantileUpperBoundMicros(0.99));

  // Both render forms stay parseable / well-formed on the merged view.
  serve::Json Parsed;
  std::string Err;
  ASSERT_TRUE(serve::Json::parse(Left.toJson(), Parsed, &Err)) << Err;
  EXPECT_TRUE(Parsed.get("counters").isObject());
  std::string Prom = Left.toPrometheus();
  EXPECT_NE(Prom.find("leapfrog_shared 7"), std::string::npos) << Prom;
  EXPECT_NE(Prom.find("leapfrog_lat_bucket{le=\"+Inf\"} 3"),
            std::string::npos)
      << Prom;
}

//===----------------------------------------------------------------------===//
// Serve: the metrics op over the line protocol.
//===----------------------------------------------------------------------===//

serve::Json handle(serve::Server &S, const std::string &Line) {
  serve::Json R;
  std::string Err;
  EXPECT_TRUE(serve::Json::parse(S.handleLine(Line), R, &Err)) << Err;
  return R;
}

TEST(Observability, ServeMetricsOpRoundTrips) {
  serve::ServiceConfig Cfg;
  Cfg.Lanes = 1;
  std::string Err;
  auto S = serve::Server::create(Cfg, &Err);
  ASSERT_NE(S, nullptr) << Err;

  // Run one real check so the registry provably has engine counters.
  serve::Json Req = serve::Json::object();
  Req.set("op", serve::Json::str("check"));
  Req.set("left", serve::Json::str(LfpA));
  Req.set("right", serve::Json::str(LfpB));
  serve::Json Checked = handle(*S, Req.serialize());
  ASSERT_TRUE(Checked.getBool("ok", false)) << Checked.serialize();

  serve::Json R = handle(*S, "{\"op\":\"metrics\"}");
  ASSERT_TRUE(R.getBool("ok", false)) << R.serialize();
  const serve::Json &M = R.get("metrics");
  ASSERT_TRUE(M.isObject());
  EXPECT_GE(M.get("counters").get("check.runs").asUnsigned(), 1u);
  EXPECT_GE(M.get("counters").get("serve.cache_misses").asUnsigned(), 1u);
  ASSERT_TRUE(M.get("histograms").get("serve.request_micros").isObject());
  EXPECT_GE(M.get("histograms")
                .get("serve.request_micros")
                .getUnsigned("count", 0),
            1u);

  const std::string Prom = R.getString("prometheus");
  EXPECT_NE(Prom.find("# TYPE leapfrog_check_runs counter"),
            std::string::npos)
      << Prom;
  EXPECT_NE(Prom.find("leapfrog_serve_request_micros_count"),
            std::string::npos)
      << Prom;
}

//===----------------------------------------------------------------------===//
// Slow-query log: deterministic firing, silent when disabled.
//===----------------------------------------------------------------------===//

/// Blocks every checkSat until release(), so a submission provably spends
/// longer than any microsecond-scale threshold inside the service.
class GateSolver : public smt::SmtSolver {
public:
  smt::SatResult checkSat(const smt::BvFormulaRef &F,
                          smt::Model *M) override {
    Entered.fetch_add(1);
    std::unique_lock<std::mutex> Lock(Mu);
    CV.wait(Lock, [&] { return Open; });
    return Inner.checkSat(F, M);
  }
  void release() {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Open = true;
    }
    CV.notify_all();
  }
  std::atomic<size_t> Entered{0};

private:
  smt::BitBlastSolver Inner;
  std::mutex Mu;
  std::condition_variable CV;
  bool Open = false;
};

TEST(Observability, SlowQueryLogFiresDeterministically) {
  GateSolver Gate;
  std::ostringstream Log;
  serve::ServiceConfig Cfg;
  Cfg.Lanes = 1;
  Cfg.Engine.Solver = &Gate;
  Cfg.SlowMicros = 2000;
  Cfg.SlowLog = &Log;
  std::string Err;
  auto Svc = serve::CheckService::create(Cfg, &Err);
  ASSERT_NE(Svc, nullptr) << Err;

  serve::CheckService::Outcome Held;
  std::thread Runner([&] { Held = Svc->submit(requestFor(LfpA, LfpB)); });
  // The request is on the lane, inside the solver. Hold it past the
  // threshold on the steady clock — firing is now deterministic, not a
  // scheduling accident.
  while (Gate.Entered.load() == 0)
    std::this_thread::yield();
  obs::StopWatch Hold;
  while (Hold.elapsedMicros() < Cfg.SlowMicros)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  Gate.release();
  Runner.join();
  ASSERT_FALSE(Held.rejected());
  ASSERT_EQ(Held.Result.V, Verdict::Equivalent);

  // Exactly one line, and it is structured: parseable JSON with the
  // documented fields (docs/SERVICE.md).
  std::string LogText = Log.str();
  ASSERT_FALSE(LogText.empty());
  ASSERT_EQ(LogText.back(), '\n');
  ASSERT_EQ(std::count(LogText.begin(), LogText.end(), '\n'), 1);
  serve::Json Line;
  ASSERT_TRUE(serve::Json::parse(LogText, Line, &Err)) << Err;
  EXPECT_TRUE(Line.getBool("slow_query", false));
  EXPECT_GE(Line.getUnsigned("micros", 0), Cfg.SlowMicros);
  EXPECT_EQ(Line.getUnsigned("threshold_micros", 0), Cfg.SlowMicros);
  EXPECT_EQ(Line.getString("source"), "computed");
  EXPECT_EQ(Line.getString("fingerprint"), Held.FP.hex());
  EXPECT_EQ(Line.getString("verdict"), "equivalent");
  EXPECT_EQ(Line.getUnsigned("iterations", 0), Held.Result.Stats.Iterations);
  EXPECT_EQ(Line.getUnsigned("smt_queries", 0),
            Held.Result.Stats.SmtQueries);

  // Whatever the latency of a request, a service with the log disabled
  // must write nothing.
  serve::ServiceConfig Quiet;
  Quiet.Lanes = 1;
  std::ostringstream QuietLog;
  Quiet.SlowMicros = 0; // Disabled: even a slow request logs nothing.
  Quiet.SlowLog = &QuietLog;
  auto Svc2 = serve::CheckService::create(Quiet, &Err);
  ASSERT_NE(Svc2, nullptr) << Err;
  serve::CheckService::Outcome O = Svc2->submit(requestFor(LfpA, LfpB));
  ASSERT_FALSE(O.rejected());
  EXPECT_TRUE(QuietLog.str().empty());
}

} // namespace
