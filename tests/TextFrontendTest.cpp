//===- TextFrontendTest.cpp - Textual front-end tests ---------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The `.lfp` front-end's promise is that text is as good as C++: a parser
// written (or printed) as a data file elaborates to the *same* automaton
// — same header ids, same state ids — as its C++-built original, so the
// checker's verdict and decision stream are bit-identical. Three
// batteries lock that in:
//
//   - golden round trips: every registry study is printed to text,
//     re-parsed, elaborated, and compared against the original both
//     structurally (print + headers id-by-id) and behaviorally (full
//     decision-stream comparison, the ParallelTest idiom);
//   - grammar coverage: stacks, subparser calls, and lookahead survive a
//     print→parse→print fixpoint and still elaborate correctly;
//   - diagnostics: a table of malformed inputs pinning exact line:col
//     positions and message substrings, so no diagnostic regresses
//     silently.
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"
#include "core/FrontierKey.h"
#include "frontend/Elaborate.h"
#include "frontend/Text.h"
#include "parsers/CaseStudies.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace leapfrog;
using namespace leapfrog::frontend;

namespace {

//===----------------------------------------------------------------------===//
// Golden round trips over the registry
//===----------------------------------------------------------------------===//

std::string traceKey(const core::TraceStep &T) {
  const char *Kind = T.K == core::TraceStep::Kind::Skip     ? "skip"
                     : T.K == core::TraceStep::Kind::Extend ? "extend"
                                                            : "done";
  return std::string(Kind) + "/" + std::to_string(T.WpCount) + " " +
         core::detail::formulaKey(T.Psi);
}

void expectIdenticalDecisions(const char *Name, const core::CheckResult &A,
                              const core::CheckResult &B) {
  EXPECT_EQ(A.V, B.V) << Name << ": " << A.FailureReason << " vs "
                      << B.FailureReason;
  EXPECT_EQ(A.FailureReason, B.FailureReason) << Name;
  EXPECT_EQ(A.Stats.Iterations, B.Stats.Iterations) << Name;
  EXPECT_EQ(A.Stats.Extends, B.Stats.Extends) << Name;
  EXPECT_EQ(A.Stats.Skips, B.Stats.Skips) << Name;
  EXPECT_EQ(A.Stats.FinalConjuncts, B.Stats.FinalConjuncts) << Name;
  EXPECT_EQ(A.Stats.PeakFrontier, B.Stats.PeakFrontier) << Name;
  EXPECT_EQ(A.Stats.FormulaNodes, B.Stats.FormulaNodes) << Name;

  ASSERT_EQ(A.Trace.size(), B.Trace.size()) << Name;
  for (size_t I = 0; I < A.Trace.size(); ++I)
    ASSERT_EQ(traceKey(A.Trace[I]), traceKey(B.Trace[I]))
        << Name << ": decision stream diverges at step " << I;

  ASSERT_EQ(A.Certificate.Relation.size(), B.Certificate.Relation.size())
      << Name;
  for (size_t I = 0; I < A.Certificate.Relation.size(); ++I)
    ASSERT_EQ(core::detail::formulaKey(A.Certificate.Relation[I]),
              core::detail::formulaKey(B.Certificate.Relation[I]))
        << Name << ": relation diverges at conjunct " << I;
}

/// Round-trips \p Aut through print→parse→elaborate and requires the
/// result to be structurally identical: same textual rendering AND the
/// same header table id-by-id (the print does not show ids, but the
/// decision stream renders them, so both must hold).
p4a::Automaton roundTrip(const p4a::Automaton &Aut,
                         const std::string &Start) {
  SurfaceProgram P = surfaceFromP4a(Aut, Start);
  std::string Text = printSurface(P);
  TextParseResult R = parseSurface(Text);
  EXPECT_TRUE(R.ok());
  for (const std::string &E : R.Errors)
    ADD_FAILURE() << "parse error: " << E << "\nsource:\n" << Text;
  ElaborationResult E = elaborate(R.Program);
  EXPECT_TRUE(E.ok());
  for (const std::string &Err : E.Errors)
    ADD_FAILURE() << "elaboration error: " << Err;
  EXPECT_EQ(E.Entry, Start);

  EXPECT_EQ(E.Aut.print(), Aut.print());
  EXPECT_EQ(E.Aut.numHeaders(), Aut.numHeaders());
  if (E.Aut.numHeaders() == Aut.numHeaders())
    for (size_t H = 0; H < Aut.numHeaders(); ++H) {
      EXPECT_EQ(E.Aut.headerName(p4a::HeaderId(H)),
                Aut.headerName(p4a::HeaderId(H)));
      EXPECT_EQ(E.Aut.headerSize(p4a::HeaderId(H)),
                Aut.headerSize(p4a::HeaderId(H)));
    }
  EXPECT_EQ(E.Aut.numStates(), Aut.numStates());
  if (E.Aut.numStates() == Aut.numStates())
    for (size_t S = 0; S < Aut.numStates(); ++S)
      EXPECT_EQ(E.Aut.stateName(p4a::StateId(S)),
                Aut.stateName(p4a::StateId(S)));
  return std::move(E.Aut);
}

class RegistryRoundTrip
    : public ::testing::TestWithParam<parsers::CaseStudy> {};

/// Both sides of every registry study survive the textual round trip
/// with identical structure.
TEST_P(RegistryRoundTrip, PrintParseElaborateIsIdentity) {
  const parsers::CaseStudy &Study = GetParam();
  roundTrip(Study.Left, Study.LeftStart);
  roundTrip(Study.Right, Study.RightStart);
}

/// The checker, run on the round-tripped pair, takes the same decisions
/// bit for bit as on the C++-built pair. The iteration cap keeps the
/// expensive studies bounded — comparing a 300-step prefix of the
/// decision stream is as sensitive as comparing a full run, and verdicts
/// under the cap must match too (both runs hit the same wall).
TEST_P(RegistryRoundTrip, CheckerDecisionStreamIsBitIdentical) {
  const parsers::CaseStudy &Study = GetParam();
  p4a::Automaton Left = roundTrip(Study.Left, Study.LeftStart);
  p4a::Automaton Right = roundTrip(Study.Right, Study.RightStart);
  if (::testing::Test::HasFailure())
    return;

  core::CheckOptions Options;
  Options.MaxIterations = 300;
  Options.RecordTrace = true;
  core::CheckResult Orig = core::checkLanguageEquivalence(
      Study.Left, p4a::StateRef::normal(*Study.Left.findState(Study.LeftStart)),
      Study.Right,
      p4a::StateRef::normal(*Study.Right.findState(Study.RightStart)),
      Options);
  core::CheckResult Twin = core::checkLanguageEquivalence(
      Left, p4a::StateRef::normal(*Left.findState(Study.LeftStart)), Right,
      p4a::StateRef::normal(*Right.findState(Study.RightStart)), Options);
  expectIdenticalDecisions(Study.Name.c_str(), Orig, Twin);
}

INSTANTIATE_TEST_SUITE_P(
    AllStudies, RegistryRoundTrip,
    ::testing::ValuesIn(parsers::allCaseStudies()),
    [](const ::testing::TestParamInfo<parsers::CaseStudy> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

//===----------------------------------------------------------------------===//
// Grammar coverage: the full surface feature set as text
//===----------------------------------------------------------------------===//

/// An MPLS-style parser using every surface feature: a header stack, a
/// subparser with an explicit continuation, and lookahead.
const char *FullFeatureSource = R"(
// Full surface feature set in one program.
header bos : 1;
header peek : 4;
header payload : 8;
stack lbl[2] : 4;
entry start;

state start {
  peek := lookahead;
  extract(lbl.next);
  bos := lbl.last[0:0];
  select(bos, peek[1:2]) {
    (0b1, _) => call tail -> done;
    (0b0, 0b11) => reject;
    (_, _) => start;
  }
}

state done {
  extract(payload);
  goto accept;
}

subparser tail {
  entry t0;
  state t0 {
    extract(payload);
    select(payload[0:3], lbl[0]) {
      (0x0, _) => reject;
      (_, _) => accept;
    }
  }
}
)";

TEST(TextFrontend, FullFeatureProgramElaborates) {
  TextParseResult R = parseSurface(FullFeatureSource);
  ASSERT_TRUE(R.ok()) << (R.Errors.empty() ? "" : R.Errors[0]);
  ElaborationResult E = elaborate(R.Program);
  ASSERT_TRUE(E.ok()) << (E.Errors.empty() ? "" : E.Errors[0]);
  // Stack unrolling renames states; the entry must track the renaming.
  EXPECT_NE(E.Aut.findState(E.Entry), std::nullopt);
}

/// printSurface is a fixpoint: parse(print(parse(text))) produces the
/// same text. This pins the printer to the grammar without depending on
/// the original file's whitespace.
TEST(TextFrontend, PrintParseFixpoint) {
  TextParseResult R1 = parseSurface(FullFeatureSource);
  ASSERT_TRUE(R1.ok());
  std::string Printed = printSurface(R1.Program);
  TextParseResult R2 = parseSurface(Printed);
  ASSERT_TRUE(R2.ok()) << (R2.Errors.empty() ? "" : R2.Errors[0])
                       << "\nprinted:\n"
                       << Printed;
  EXPECT_EQ(printSurface(R2.Program), Printed);
  // And both elaborate to the same automaton.
  ElaborationResult E1 = elaborate(R1.Program);
  ElaborationResult E2 = elaborate(R2.Program);
  ASSERT_TRUE(E1.ok() && E2.ok());
  EXPECT_EQ(E1.Aut.print(), E2.Aut.print());
  EXPECT_EQ(E1.Entry, E2.Entry);
}

/// Textual parsers flow through the checker end to end: a two-state
/// splitter is equivalent to a one-state parser of the same language.
TEST(TextFrontend, TextualPairChecksEquivalent) {
  SurfaceProgram Left = parseSurfaceOrDie(R"(
    header a : 4;
    header b : 4;
    entry one;
    state one {
      extract(a);
      extract(b);
      goto accept;
    }
  )");
  SurfaceProgram Right = parseSurfaceOrDie(R"(
    header a : 4;
    header b : 4;
    entry two_hi;
    state two_hi {
      extract(a);
      goto two_lo;
    }
    state two_lo {
      extract(b);
      goto accept;
    }
  )");
  ElaborationResult L = elaborate(Left);
  ElaborationResult R = elaborate(Right);
  ASSERT_TRUE(L.ok() && R.ok());
  core::CheckResult Res = core::checkLanguageEquivalence(
      L.Aut, p4a::StateRef::normal(*L.Aut.findState(L.Entry)), R.Aut,
      p4a::StateRef::normal(*R.Aut.findState(R.Entry)));
  EXPECT_EQ(Res.V, core::Verdict::Equivalent);
}

TEST(TextFrontend, InequivalentPairProducesCounterexample) {
  SurfaceProgram Left = parseSurfaceOrDie(R"(
    header t : 2;
    entry q;
    state q {
      extract(t);
      select(t) {
        (0b00) => accept;
        _ => reject;
      }
    }
  )");
  SurfaceProgram Right = parseSurfaceOrDie(R"(
    header t : 2;
    entry q;
    state q {
      extract(t);
      select(t) {
        (0b01) => accept;
        _ => reject;
      }
    }
  )");
  ElaborationResult L = elaborate(Left);
  ElaborationResult R = elaborate(Right);
  ASSERT_TRUE(L.ok() && R.ok());
  core::CheckResult Res = core::checkLanguageEquivalence(
      L.Aut, p4a::StateRef::normal(*L.Aut.findState(L.Entry)), R.Aut,
      p4a::StateRef::normal(*R.Aut.findState(R.Entry)));
  EXPECT_EQ(Res.V, core::Verdict::NotEquivalent);
  EXPECT_FALSE(Res.FailureReason.empty());
}

//===----------------------------------------------------------------------===//
// Diagnostics battery
//===----------------------------------------------------------------------===//

struct DiagCase {
  const char *Label;
  const char *Source;
  const char *Position; ///< "line:col:" prefix the diagnostic must carry.
  const char *Message;  ///< Substring the diagnostic must contain.
};

class Diagnostics : public ::testing::TestWithParam<DiagCase> {};

TEST_P(Diagnostics, PinsPositionAndMessage) {
  const DiagCase &C = GetParam();
  TextParseResult R = parseSurface(C.Source);
  ASSERT_FALSE(R.ok()) << C.Label << ": expected a parse error";
  bool Found = false;
  for (const std::string &E : R.Errors)
    if (E.find(C.Position) == 0 && E.find(C.Message) != std::string::npos)
      Found = true;
  EXPECT_TRUE(Found) << C.Label << ": no diagnostic at '" << C.Position
                     << "' containing '" << C.Message << "'; got:\n"
                     << [&] {
                          std::string All;
                          for (const std::string &E : R.Errors)
                            All += "  " + E + "\n";
                          return All;
                        }();
}

// Sources are written with explicit \n so the expected line:col positions
// are easy to count; line 1 is the first line of the string.
const DiagCase DiagCases[] = {
    {"UnterminatedSelect",
     "header h : 4;\n"
     "entry q;\n"
     "state q {\n"
     "  extract(h);\n"
     "  select(h) {\n"
     "    (0b0000) => accept;\n",
     "5:3:", "unterminated select"},
    {"SliceLowerAboveUpper",
     "header h : 8;\n"
     "entry q;\n"
     "state q {\n"
     "  extract(h);\n"
     "  h := h[5:2];\n"
     "  goto accept;\n"
     "}\n",
     "5:9:", "lower bound above its upper bound"},
    {"SliceUpperOutOfRange",
     "header h : 8;\n"
     "entry q;\n"
     "state q {\n"
     "  extract(h);\n"
     "  h := h[0:8];\n"
     "  goto accept;\n"
     "}\n",
     "5:9:", "out of range (operand is 8 bits wide)"},
    {"UnknownHeaderInExtract",
     "header h : 4;\n"
     "entry q;\n"
     "state q {\n"
     "  extract(ipv6);\n"
     "  goto accept;\n"
     "}\n",
     "4:11:", "unknown header 'ipv6'"},
    {"UnknownHeaderInExpr",
     "header h : 4;\n"
     "entry q;\n"
     "state q {\n"
     "  extract(h);\n"
     "  h := vlan;\n"
     "  goto accept;\n"
     "}\n",
     "5:8:", "unknown header 'vlan'"},
    {"StackIndexPastCapacity",
     "header h : 4;\n"
     "stack s[3] : 4;\n"
     "entry q;\n"
     "state q {\n"
     "  extract(s.next);\n"
     "  h := s[3];\n"
     "  goto accept;\n"
     "}\n",
     "6:10:", "stack element s[3] is out of range (stack has 3 slots)"},
    {"RecursiveSubparserCall",
     "header h : 4;\n"
     "entry q;\n"
     "state q {\n"
     "  extract(h);\n"
     "  goto call p;\n"
     "}\n"
     "subparser p {\n"
     "  entry e;\n"
     "  state e {\n"
     "    extract(h);\n"
     "    select(h) {\n"
     "      (0b0000) => accept;\n"
     "      _ => call p -> e;\n"
     "    }\n"
     "  }\n"
     "}\n",
     "13:12:", "recursive subparser call"},
    {"MissingEntry",
     "header h : 4;\n"
     "state q {\n"
     "  extract(h);\n"
     "  goto accept;\n"
     "}\n",
     "", "missing entry declaration"},
    {"HeaderStackClash",
     "header s : 4;\n"
     "stack s[2] : 4;\n"
     "entry q;\n"
     "state q {\n"
     "  extract(s.next);\n"
     "  goto accept;\n"
     "}\n",
     "2:7:", "declared both as header and stack"},
    {"AssignToStack",
     "header h : 4;\n"
     "stack s[2] : 4;\n"
     "entry q;\n"
     "state q {\n"
     "  extract(s.next);\n"
     "  s := h;\n"
     "  goto accept;\n"
     "}\n",
     "6:3:", "cannot assign to stack 's'"},
};

INSTANTIATE_TEST_SUITE_P(Battery, Diagnostics,
                         ::testing::ValuesIn(DiagCases),
                         [](const ::testing::TestParamInfo<DiagCase> &Info) {
                           return Info.param.Label;
                         });

//===----------------------------------------------------------------------===//
// Parse-level details
//===----------------------------------------------------------------------===//

TEST(TextFrontend, CommentsAndLiteralFormsLex) {
  TextParseResult R = parseSurface(R"(
    # hash comment
    header h : 8; // line comment
    entry q;
    state q {
      extract(h);
      select(h[0:3]) {
        (0b0101) => accept;
        (0x6) => accept;
        (1111) => reject;
        _ => reject;
      }
    }
  )");
  EXPECT_TRUE(R.ok()) << (R.Errors.empty() ? "" : R.Errors[0]);
}

TEST(TextFrontend, ErrorsAreCappedAndParserTerminates) {
  // A pathological input must neither loop nor flood: the parser caps
  // diagnostics at 20.
  std::string Bad = "entry q;\n";
  for (int I = 0; I < 100; ++I)
    Bad += "state s" + std::to_string(I) + " { extract(x" +
           std::to_string(I) + "); goto accept; }\n";
  TextParseResult R = parseSurface(Bad);
  EXPECT_FALSE(R.ok());
  EXPECT_LE(R.Errors.size(), 24u);
}

TEST(TextFrontend, TailRecursiveSubparserCallIsAccepted) {
  // Recursion with an *inherited* continuation elaborates to a loop
  // (memoized instance), so it must parse cleanly.
  TextParseResult R = parseSurface(R"(
    header h : 4;
    entry q;
    state q {
      extract(h);
      goto call p;
    }
    subparser p {
      entry e;
      state e {
        extract(h);
        select(h) {
          (0b0000) => accept;
          _ => call p;
        }
      }
    }
  )");
  EXPECT_TRUE(R.ok()) << (R.Errors.empty() ? "" : R.Errors[0]);
  ElaborationResult E = elaborate(R.Program);
  EXPECT_TRUE(E.ok()) << (E.Errors.empty() ? "" : E.Errors[0]);
}

} // namespace
