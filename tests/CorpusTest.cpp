//===- CorpusTest.cpp - The examples/corpus .lfp battery ------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Locks down the textual corpus under examples/corpus/ (found via the
// LEAPFROG_CORPUS_DIR environment variable, which CTest sets):
//
//  * The registry twins — corpus-gen's committed output — must parse and
//    elaborate to automata bit-identical (print, entry, headers, states)
//    to the C++-built registry parsers, so the .lfp files can never
//    drift from parsers/Registry.cpp without a test failing.
//
//  * The four hand-written protocol studies (IPv6 extension chains,
//    QinQ VLAN stacking, VXLAN/GRE tunneling, QUIC-style variable
//    headers) must each decide exactly as documented: the _opt variant
//    equivalent to the base, the _bug variant refuted with a concrete
//    counterexample — the same checks `leapfrog-cli --file` performs.
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"
#include "frontend/Elaborate.h"
#include "frontend/Text.h"
#include "parsers/CaseStudies.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

using namespace leapfrog;
using namespace leapfrog::frontend;

namespace {

std::string corpusDir() {
  const char *Env = std::getenv("LEAPFROG_CORPUS_DIR");
  return Env && *Env ? Env : "";
}

#define REQUIRE_CORPUS(DirVar)                                             \
  std::string DirVar = corpusDir();                                        \
  if (DirVar.empty())                                                      \
    GTEST_SKIP() << "LEAPFROG_CORPUS_DIR not set (run under ctest)";

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream Ss;
  Ss << In.rdbuf();
  Out = Ss.str();
  return true;
}

/// Must match tools/corpus-gen.cpp, which names the twin files.
std::string slugify(const std::string &Name) {
  std::string Slug;
  for (char C : Name) {
    if (std::isalnum(static_cast<unsigned char>(C)))
      Slug += char(std::tolower(static_cast<unsigned char>(C)));
    else if (!Slug.empty() && Slug.back() != '_')
      Slug += '_';
  }
  while (!Slug.empty() && Slug.back() == '_')
    Slug.pop_back();
  return Slug;
}

/// Parses and elaborates \p Path, failing loudly on any diagnostic.
ElaborationResult loadLfp(const std::string &Path) {
  std::string Source;
  EXPECT_TRUE(readFile(Path, Source)) << "cannot read " << Path;
  TextParseResult Parsed = parseSurface(Source);
  for (const std::string &E : Parsed.Errors)
    ADD_FAILURE() << Path << ":" << E;
  ElaborationResult Elab = elaborate(Parsed.Program);
  for (const std::string &E : Elab.Errors)
    ADD_FAILURE() << Path << ": " << E;
  // The pretty-printer normalizes hand-written files; its output must
  // re-parse to the same text (print-parse fixpoint), so every corpus
  // file round-trips through tooling losslessly.
  std::string Printed = printSurface(Parsed.Program);
  TextParseResult Again = parseSurface(Printed);
  EXPECT_TRUE(Again.ok()) << Path;
  if (Again.ok()) {
    EXPECT_EQ(Printed, printSurface(Again.Program)) << Path;
  }
  return Elab;
}

core::CheckResult check(const ElaborationResult &L,
                        const ElaborationResult &R) {
  core::CheckOptions Options;
  Options.MaxIterations = 20000;
  return core::checkLanguageEquivalence(
      L.Aut, p4a::StateRef::normal(*L.Aut.findState(L.Entry)), R.Aut,
      p4a::StateRef::normal(*R.Aut.findState(R.Entry)), Options);
}

//===----------------------------------------------------------------------===//
// Registry twins: committed corpus-gen output == C++-built registry.
//===----------------------------------------------------------------------===//

class RegistryTwins : public ::testing::TestWithParam<size_t> {};

TEST_P(RegistryTwins, FileElaboratesBitIdenticalToRegistry) {
  REQUIRE_CORPUS(Dir);
  parsers::CaseStudy Study = parsers::allCaseStudies()[GetParam()];
  std::string Slug = slugify(Study.Name);

  struct Side {
    const p4a::Automaton &Aut;
    const std::string &Start;
    const char *Suffix;
  } Sides[] = {{Study.Left, Study.LeftStart, "_left.lfp"},
               {Study.Right, Study.RightStart, "_right.lfp"}};

  for (const Side &S : Sides) {
    std::string Path = Dir + "/" + Slug + S.Suffix;
    ElaborationResult E = loadLfp(Path);
    ASSERT_TRUE(E.ok()) << Path;
    // Entry, headers, states, transitions — all bit-identical to the
    // C++-built parser, so checker verdicts, traces and certificates on
    // the file are the registry's verbatim.
    EXPECT_EQ(E.Entry, S.Start) << Path;
    EXPECT_EQ(E.Aut.print(), S.Aut.print())
        << Path << " drifted from parsers/Registry.cpp — rerun corpus-gen";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStudies, RegistryTwins,
    ::testing::Range<size_t>(0, parsers::allCaseStudies().size()),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      return slugify(parsers::allCaseStudies()[Info.param].Name);
    });

//===----------------------------------------------------------------------===//
// The hand-written protocol studies.
//===----------------------------------------------------------------------===//

struct Protocol {
  const char *Stem;
};

class ProtocolStudies : public ::testing::TestWithParam<Protocol> {};

TEST_P(ProtocolStudies, OptVariantIsEquivalent) {
  REQUIRE_CORPUS(Dir);
  std::string Stem = Dir + "/" + GetParam().Stem;
  ElaborationResult Base = loadLfp(Stem + ".lfp");
  ElaborationResult Opt = loadLfp(Stem + "_opt.lfp");
  ASSERT_TRUE(Base.ok() && Opt.ok());
  core::CheckResult Res = check(Base, Opt);
  EXPECT_EQ(Res.V, core::Verdict::Equivalent);
}

TEST_P(ProtocolStudies, BugVariantIsRefutedWithCounterexample) {
  REQUIRE_CORPUS(Dir);
  std::string Stem = Dir + "/" + GetParam().Stem;
  ElaborationResult Base = loadLfp(Stem + ".lfp");
  ElaborationResult Bug = loadLfp(Stem + "_bug.lfp");
  ASSERT_TRUE(Base.ok() && Bug.ok());
  core::CheckResult Res = check(Base, Bug);
  EXPECT_EQ(Res.V, core::Verdict::NotEquivalent);
  // The refutation must name the concrete conjunct that failed — the
  // counterexample leapfrog-cli prints under the verdict.
  EXPECT_FALSE(Res.FailureReason.empty());
}

INSTANTIATE_TEST_SUITE_P(Corpus, ProtocolStudies,
                         ::testing::Values(Protocol{"ipv6_chain"},
                                           Protocol{"vlan_qinq"},
                                           Protocol{"tunnel"},
                                           Protocol{"quic_varint"},
                                           Protocol{"tlv_fanin"}),
                         [](const ::testing::TestParamInfo<Protocol> &Info) {
                           return std::string(Info.param.Stem);
                         });

} // namespace
