//===- RfcTest.cpp - RFC reference parser tests -----------------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the RFC reference library: field layouts against hand-built
/// packets, variable-length handling (IPv4 IHL, TCP data offset, GRE C
/// flag), protocol composition, and the conformance-checking story — a
/// vendor parser proven equivalent to (or caught deviating from) the RFC
/// reference by the symbolic checker.
///
//===----------------------------------------------------------------------===//

#include "parsers/Rfc.h"

#include "core/Checker.h"
#include "frontend/Elaborate.h"
#include "p4a/Concrete.h"
#include "p4a/Parser.h"

#include <gtest/gtest.h>

using namespace leapfrog;
using namespace leapfrog::rfc;
using namespace leapfrog::frontend;

namespace {

//===----------------------------------------------------------------------===//
// Packet builder
//===----------------------------------------------------------------------===//

/// Accumulates big-endian fields into a packet bitstring.
class Packet {
public:
  Packet &field(uint64_t Value, size_t Width) {
    Bits = Bits.concat(beBits(Value, Width));
    return *this;
  }
  Packet &zeros(size_t Width) { return field(0, Width); }
  const Bitvector &bits() const { return Bits; }

private:
  Bitvector Bits;
};

/// Ethernet header with the given EtherType (MACs zero).
Packet &ethernet(Packet &P, uint64_t Type) {
  return P.zeros(96).field(Type, 16);
}

/// IPv4 fixed header with the given IHL and protocol (other fields zero).
Packet &ipv4(Packet &P, uint64_t Ihl, uint64_t Proto) {
  return P.field(4, 4)
      .field(Ihl, 4)
      .zeros(64)
      .field(Proto, 8)
      .zeros(80);
}

/// The elaborated enterprise stack, shared across tests.
const ElaborationResult &enterprise() {
  static ElaborationResult R = elaborateOrDie(standardEnterpriseStack());
  return R;
}

bool stackAccepts(const Bitvector &Packet) {
  const ElaborationResult &E = enterprise();
  p4a::Store S(E.Aut);
  return p4a::accepts(
      E.Aut, p4a::StateRef::normal(*E.Aut.findState(E.Entry)), S, Packet);
}

//===----------------------------------------------------------------------===//
// beBits and field layout
//===----------------------------------------------------------------------===//

TEST(Rfc, BeBitsIsMsbFirst) {
  EXPECT_EQ(beBits(0x8847, 16), Bitvector::fromString("1000100001000111"));
  EXPECT_EQ(beBits(5, 4), Bitvector::fromString("0101"));
  EXPECT_EQ(beBits(0, 3), Bitvector::fromString("000"));
}

TEST(Rfc, EnterpriseStackElaborates) {
  const ElaborationResult &E = enterprise();
  EXPECT_TRUE(E.ok());
  // eth, vlan, arp, ipv4 + 10 option states, ipv6, tcp + 10 option
  // states, udp, icmp = 28 states.
  EXPECT_EQ(E.Aut.numStates(), 28u);
}

//===----------------------------------------------------------------------===//
// Concrete acceptance per protocol
//===----------------------------------------------------------------------===//

TEST(Rfc, EthernetIpv4UdpAccepted) {
  Packet P;
  ethernet(P, ethertype::Ipv4);
  ipv4(P, 5, ipproto::Udp);
  P.zeros(64); // UDP.
  EXPECT_TRUE(stackAccepts(P.bits()));
}

TEST(Rfc, UnknownEtherTypeRejected) {
  Packet P;
  ethernet(P, 0x1234);
  P.zeros(64);
  EXPECT_FALSE(stackAccepts(P.bits()));
}

TEST(Rfc, ArpAccepted) {
  Packet P;
  ethernet(P, ethertype::Arp);
  P.zeros(224);
  EXPECT_TRUE(stackAccepts(P.bits()));
  // Truncated ARP rejected.
  Packet Q;
  ethernet(Q, ethertype::Arp);
  Q.zeros(200);
  EXPECT_FALSE(stackAccepts(Q.bits()));
}

TEST(Rfc, VlanTagThenIpv6Tcp) {
  Packet P;
  ethernet(P, ethertype::Vlan);
  P.zeros(16).field(ethertype::Ipv6, 16); // VLAN TCI + inner type.
  P.zeros(48).field(ipproto::Tcp, 8).zeros(264); // IPv6: next hdr at 48.
  // TCP with data offset 5 (no options): offset sits at bit 96.
  P.zeros(96).field(5, 4).zeros(60);
  EXPECT_TRUE(stackAccepts(P.bits()));
}

TEST(Rfc, Ipv4MinimumIhlEnforced) {
  Packet P;
  ethernet(P, ethertype::Ipv4);
  ipv4(P, 4, ipproto::Udp); // IHL 4 < 5: malformed.
  P.zeros(64);
  EXPECT_FALSE(stackAccepts(P.bits()));
}

TEST(Rfc, Ipv6IcmpAccepted) {
  Packet P;
  ethernet(P, ethertype::Ipv6);
  P.zeros(48).field(ipproto::Icmp, 8).zeros(264);
  P.zeros(64); // ICMP.
  EXPECT_TRUE(stackAccepts(P.bits()));
}

/// IPv4 IHL sweep: every legal IHL must accept a packet with the right
/// number of option bits and reject one with 32 bits missing.
class Ipv4IhlSweep : public ::testing::TestWithParam<int> {};

TEST_P(Ipv4IhlSweep, OptionsLengthMatchesIhl) {
  uint64_t Ihl = uint64_t(GetParam());
  size_t OptionBits = (Ihl - 5) * 32;
  Packet P;
  ethernet(P, ethertype::Ipv4);
  ipv4(P, Ihl, ipproto::Udp);
  P.zeros(OptionBits); // Options.
  P.zeros(64);         // UDP.
  EXPECT_TRUE(stackAccepts(P.bits())) << "IHL " << Ihl;

  if (OptionBits > 0) {
    Packet Short;
    ethernet(Short, ethertype::Ipv4);
    ipv4(Short, Ihl, ipproto::Udp);
    Short.zeros(OptionBits - 32);
    Short.zeros(64);
    EXPECT_FALSE(stackAccepts(Short.bits()))
        << "IHL " << Ihl << " with short options";
  }
}

INSTANTIATE_TEST_SUITE_P(AllLegalIhls, Ipv4IhlSweep,
                         ::testing::Range(5, 16));

/// TCP data-offset sweep, mirroring the IHL sweep.
class TcpOffsetSweep : public ::testing::TestWithParam<int> {};

TEST_P(TcpOffsetSweep, OptionsLengthMatchesOffset) {
  uint64_t Off = uint64_t(GetParam());
  Packet P;
  ethernet(P, ethertype::Ipv4);
  ipv4(P, 5, ipproto::Tcp);
  P.zeros(96).field(Off, 4).zeros(60); // TCP fixed header.
  P.zeros((Off - 5) * 32);             // TCP options.
  EXPECT_TRUE(stackAccepts(P.bits())) << "offset " << Off;
}

INSTANTIATE_TEST_SUITE_P(AllLegalOffsets, TcpOffsetSweep,
                         ::testing::Range(5, 16));

TEST(Rfc, TcpOffsetBelowMinimumRejected) {
  for (uint64_t Off : {0u, 1u, 4u}) {
    Packet P;
    ethernet(P, ethertype::Ipv4);
    ipv4(P, 5, ipproto::Tcp);
    P.zeros(96).field(Off, 4).zeros(60);
    EXPECT_FALSE(stackAccepts(P.bits())) << "offset " << Off;
  }
}

//===----------------------------------------------------------------------===//
// GRE and VXLAN (standalone compositions)
//===----------------------------------------------------------------------===//

TEST(Rfc, GreChecksumFlagControlsLength) {
  SurfaceProgram P;
  addGre(P, "gre", "gre_hdr",
         {{ethertype::Ipv4, SurfaceTarget::state("inner")}});
  addIpv4(P, "inner", "inner_ip", {{ipproto::Udp, SurfaceTarget::state("udp")}});
  addUdp(P, "udp", "udp_hdr");
  P.setEntry("gre");
  ElaborationResult E = elaborateOrDie(P);
  p4a::Store S(E.Aut);
  auto Accepts = [&](const Bitvector &B) {
    return p4a::accepts(
        E.Aut, p4a::StateRef::normal(*E.Aut.findState(E.Entry)), S, B);
  };

  // C = 0: base header only, then inner IPv4 + UDP.
  Packet NoCk;
  NoCk.field(0, 1).zeros(15).field(ethertype::Ipv4, 16);
  ipv4(NoCk, 5, ipproto::Udp);
  NoCk.zeros(64);
  EXPECT_TRUE(Accepts(NoCk.bits()));

  // C = 1: 32 further bits of checksum+reserved before the payload.
  Packet Ck;
  Ck.field(1, 1).zeros(15).field(ethertype::Ipv4, 16);
  Ck.zeros(32);
  ipv4(Ck, 5, ipproto::Udp);
  Ck.zeros(64);
  EXPECT_TRUE(Accepts(Ck.bits()));

  // C = 1 without the checksum words: the stream is misaligned and the
  // inner dispatch fails.
  Packet Bad;
  Bad.field(1, 1).zeros(15).field(ethertype::Ipv4, 16);
  ipv4(Bad, 5, ipproto::Udp);
  Bad.zeros(64);
  EXPECT_FALSE(Accepts(Bad.bits()));
}

TEST(Rfc, VxlanOverlayComposition) {
  // UDP → VXLAN → inner Ethernet → inner IPv4 → inner UDP: the classic
  // overlay encapsulation, composed entirely from reference states.
  SurfaceProgram P;
  addUdp(P, "outer_udp", "oudp", SurfaceTarget::state("vxlan"));
  addVxlan(P, "vxlan", "vxlan_hdr", SurfaceTarget::state("inner_eth"));
  addEthernet(P, "inner_eth", "iether",
              {{ethertype::Ipv4, SurfaceTarget::state("inner_ip")}});
  addIpv4(P, "inner_ip", "iip",
          {{ipproto::Udp, SurfaceTarget::state("inner_udp")}});
  addUdp(P, "inner_udp", "iudp");
  P.setEntry("outer_udp");
  ElaborationResult E = elaborateOrDie(P);
  p4a::Store S(E.Aut);

  Packet Pk;
  Pk.zeros(64);                     // Outer UDP.
  Pk.zeros(64);                     // VXLAN.
  ethernet(Pk, ethertype::Ipv4);    // Inner Ethernet.
  ipv4(Pk, 5, ipproto::Udp);        // Inner IPv4.
  Pk.zeros(64);                     // Inner UDP.
  EXPECT_TRUE(p4a::accepts(
      E.Aut, p4a::StateRef::normal(*E.Aut.findState(E.Entry)), S,
      Pk.bits()));
}

//===----------------------------------------------------------------------===//
// Conformance checking via the symbolic checker
//===----------------------------------------------------------------------===//

TEST(Conformance, VendorParserMatchesReference) {
  // Reference: Ethernet dispatching IPv4→UDP, built from RFC states.
  SurfaceProgram Ref;
  addEthernet(Ref, "eth", "ether",
              {{ethertype::Ipv4, SurfaceTarget::state("ip")}});
  addIpv4(Ref, "ip", "ip4", {{ipproto::Udp, SurfaceTarget::state("udp")}});
  addUdp(Ref, "udp", "udp_hdr");
  Ref.setEntry("eth");
  ElaborationResult RefE = elaborateOrDie(Ref);

  // "Vendor" parser written independently in the DSL, with the Ethernet
  // and IPv4-IHL5 fast path fused into one state (the Figure 7 idiom).
  // Only the no-options path is fused; option lengths fall back to
  // separate states.
  std::string Vendor = R"(
    state fast {
      extract(eth_ip, 272);
      select(eth_ip[96:111], eth_ip[116:119], eth_ip[184:191]) {
        (0000100000000000, 0101, 00010001) => parse_udp
  )";
  for (int Ihl = 6; Ihl <= 15; ++Ihl) {
    Vendor += "        (0000100000000000, " +
              beBits(uint64_t(Ihl), 4).str() + ", 00010001) => opt" +
              std::to_string(Ihl) + "\n";
  }
  Vendor += R"(
        (_, _, _) => reject
      }
    }
  )";
  for (int Ihl = 6; Ihl <= 15; ++Ihl) {
    Vendor += "state opt" + std::to_string(Ihl) + " {\n  extract(opts" +
              std::to_string(Ihl) + ", " + std::to_string((Ihl - 5) * 32) +
              ");\n  goto parse_udp\n}\n";
  }
  Vendor += R"(
    state parse_udp {
      extract(udp, 64);
      goto accept
    }
  )";
  p4a::Automaton VendorAut = p4a::parseAutomatonOrDie(Vendor);

  core::CheckResult Res = core::checkLanguageEquivalence(
      RefE.Aut, RefE.Entry, VendorAut, "fast");
  EXPECT_TRUE(Res.equivalent()) << Res.FailureReason;
}

TEST(Conformance, VendorBugIsCaught) {
  // The same vendor parser but with the RFC's IHL ≥ 5 check missing on
  // the fast path (IHL 4 slips through as if it had no options): the
  // checker must refute conformance.
  SurfaceProgram Ref;
  addEthernet(Ref, "eth", "ether",
              {{ethertype::Ipv4, SurfaceTarget::state("ip")}});
  addIpv4(Ref, "ip", "ip4", {{ipproto::Udp, SurfaceTarget::state("udp")}});
  addUdp(Ref, "udp", "udp_hdr");
  Ref.setEntry("eth");
  ElaborationResult RefE = elaborateOrDie(Ref);

  std::string Vendor = R"(
    state fast {
      extract(eth_ip, 272);
      select(eth_ip[96:111], eth_ip[116:119], eth_ip[184:191]) {
        (0000100000000000, 0101, 00010001) => parse_udp
        (0000100000000000, 0100, 00010001) => parse_udp
  )";
  for (int Ihl = 6; Ihl <= 15; ++Ihl) {
    Vendor += "        (0000100000000000, " +
              beBits(uint64_t(Ihl), 4).str() + ", 00010001) => opt" +
              std::to_string(Ihl) + "\n";
  }
  Vendor += R"(
        (_, _, _) => reject
      }
    }
  )";
  for (int Ihl = 6; Ihl <= 15; ++Ihl) {
    Vendor += "state opt" + std::to_string(Ihl) + " {\n  extract(opts" +
              std::to_string(Ihl) + ", " + std::to_string((Ihl - 5) * 32) +
              ");\n  goto parse_udp\n}\n";
  }
  Vendor += R"(
    state parse_udp {
      extract(udp, 64);
      goto accept
    }
  )";
  p4a::Automaton VendorAut = p4a::parseAutomatonOrDie(Vendor);

  core::CheckResult Res = core::checkLanguageEquivalence(
      RefE.Aut, RefE.Entry, VendorAut, "fast");
  EXPECT_EQ(Res.V, core::Verdict::NotEquivalent);
}

} // namespace
