//===- BitvectorTest.cpp - Bit-string substrate tests ---------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit and property tests for Bitvector, with particular attention to
/// the paper's clamped slice semantics (Definition 3.1): w[n1:n2] is the
/// substring from min(n1,|w|-1) to min(n2,|w|-1) inclusive.
///
//===----------------------------------------------------------------------===//

#include "support/Bitvector.h"

#include "support/Hashing.h"

#include <gtest/gtest.h>

using namespace leapfrog;

namespace {

TEST(Bitvector, EmptyIsEpsilon) {
  Bitvector E;
  EXPECT_EQ(E.size(), 0u);
  EXPECT_TRUE(E.empty());
  EXPECT_EQ(E.str(), "");
  EXPECT_EQ(E, Bitvector::fromString(""));
}

TEST(Bitvector, FromUintIsMsbFirst) {
  // 0b1011 as 4 bits: bit 0 (first on the wire) is the MSB.
  Bitvector BV = Bitvector::fromUint(0b1011, 4);
  EXPECT_EQ(BV.str(), "1011");
  EXPECT_TRUE(BV.bit(0));
  EXPECT_FALSE(BV.bit(1));
  EXPECT_EQ(BV.toUint(), 0b1011u);
}

TEST(Bitvector, FromUintTruncates) {
  EXPECT_EQ(Bitvector::fromUint(0xff, 4).str(), "1111");
  EXPECT_EQ(Bitvector::fromUint(0x10, 4).str(), "0000");
}

TEST(Bitvector, FromStringIgnoresSeparators) {
  EXPECT_EQ(Bitvector::fromString("10_10 01").str(), "101001");
}

TEST(Bitvector, PushBackGrowsAcrossWordBoundary) {
  Bitvector BV;
  for (size_t I = 0; I < 130; ++I)
    BV.pushBack(I % 3 == 0);
  EXPECT_EQ(BV.size(), 130u);
  for (size_t I = 0; I < 130; ++I)
    EXPECT_EQ(BV.bit(I), I % 3 == 0) << I;
}

TEST(Bitvector, ConcatOrder) {
  Bitvector A = Bitvector::fromString("10");
  Bitvector B = Bitvector::fromString("011");
  EXPECT_EQ(A.concat(B).str(), "10011");
  EXPECT_EQ(B.concat(A).str(), "01110");
  EXPECT_EQ(A.concat(Bitvector()).str(), "10");
  EXPECT_EQ(Bitvector().concat(A).str(), "10");
}

TEST(Bitvector, PaperSliceInRange) {
  Bitvector W = Bitvector::fromString("10110010");
  EXPECT_EQ(W.slice(2, 4).str(), "110");
  EXPECT_EQ(W.slice(0, 7).str(), "10110010");
  EXPECT_EQ(W.slice(7, 7).str(), "0");
}

TEST(Bitvector, PaperSliceClampsEnd) {
  // min(n2, |w|-1): slicing past the end clamps to the last bit.
  Bitvector W = Bitvector::fromString("1011");
  EXPECT_EQ(W.slice(2, 100).str(), "11");
  // min(n1, |w|-1): a start past the end clamps to the last bit.
  EXPECT_EQ(W.slice(100, 200).str(), "1");
}

TEST(Bitvector, PaperSliceEmptyCases) {
  EXPECT_EQ(Bitvector().slice(0, 5).size(), 0u);
  // Start after end (post-clamping) is empty.
  EXPECT_EQ(Bitvector::fromString("1011").slice(3, 1).size(), 0u);
}

TEST(Bitvector, ExtractExactAsserts) {
  Bitvector W = Bitvector::fromString("110010");
  EXPECT_EQ(W.extract(1, 4).str(), "100");
  EXPECT_EQ(W.extract(0, 6).str(), "110010");
  EXPECT_EQ(W.extract(3, 3).size(), 0u);
  EXPECT_EQ(W.takeFront(2).str(), "11");
  EXPECT_EQ(W.dropFront(2).str(), "0010");
}

TEST(Bitvector, EqualityAndHashAgree) {
  Bitvector A = Bitvector::fromString("10101");
  Bitvector B = Bitvector::fromString("10101");
  Bitvector C = Bitvector::fromString("10100");
  Bitvector D = Bitvector::fromString("101010"); // Same prefix, longer.
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.hash(), B.hash());
  EXPECT_NE(A, C);
  EXPECT_NE(A, D);
}

TEST(Bitvector, OrderingIsLengthThenLex) {
  EXPECT_LT(Bitvector::fromString("1"), Bitvector::fromString("00"));
  EXPECT_LT(Bitvector::fromString("01"), Bitvector::fromString("10"));
  EXPECT_FALSE(Bitvector::fromString("10") < Bitvector::fromString("10"));
}

TEST(Bitvector, AllBitvectorsEnumerates) {
  std::vector<Bitvector> All = allBitvectors(3);
  ASSERT_EQ(All.size(), 8u);
  EXPECT_EQ(All[0].str(), "000");
  EXPECT_EQ(All[5].str(), "101");
  EXPECT_EQ(All[7].str(), "111");
}

//===----------------------------------------------------------------------===//
// Properties over random vectors
//===----------------------------------------------------------------------===//

struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed * 0x9e3779b97f4a7c15ull + 1) {}
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
  size_t below(size_t N) { return size_t(next() % N); }
};

Bitvector randomBv(Rng &R, size_t MaxLen) {
  Bitvector BV;
  size_t Len = R.below(MaxLen + 1);
  for (size_t I = 0; I < Len; ++I)
    BV.pushBack(R.below(2));
  return BV;
}

class BitvectorProps : public ::testing::TestWithParam<int> {};

TEST_P(BitvectorProps, ConcatIsAssociativeAndLengthAdditive) {
  Rng R{uint64_t(GetParam())};
  Bitvector A = randomBv(R, 90), B = randomBv(R, 90), C = randomBv(R, 90);
  EXPECT_EQ(A.concat(B).size(), A.size() + B.size());
  EXPECT_EQ(A.concat(B).concat(C), A.concat(B.concat(C)));
}

TEST_P(BitvectorProps, SliceOfConcatSplitsAtBoundary) {
  Rng R{uint64_t(GetParam())};
  Bitvector A = randomBv(R, 40), B = randomBv(R, 40);
  Bitvector AB = A.concat(B);
  if (A.empty() || B.empty())
    return;
  // Exact-range split property used by the smart constructors.
  EXPECT_EQ(AB.extract(0, A.size()), A);
  EXPECT_EQ(AB.extract(A.size(), AB.size()), B);
}

TEST_P(BitvectorProps, SliceAgreesWithBitwiseDefinition) {
  Rng R{uint64_t(GetParam())};
  Bitvector W = randomBv(R, 70);
  size_t N1 = R.below(80), N2 = R.below(80);
  Bitvector S = W.slice(N1, N2);
  if (W.empty()) {
    EXPECT_TRUE(S.empty());
    return;
  }
  size_t Lo = std::min(N1, W.size() - 1), Hi = std::min(N2, W.size() - 1);
  if (Lo > Hi) {
    EXPECT_TRUE(S.empty());
    return;
  }
  ASSERT_EQ(S.size(), Hi - Lo + 1);
  for (size_t I = 0; I < S.size(); ++I)
    EXPECT_EQ(S.bit(I), W.bit(Lo + I));
}

TEST_P(BitvectorProps, RoundTripsThroughString) {
  Rng R{uint64_t(GetParam())};
  Bitvector W = randomBv(R, 150);
  EXPECT_EQ(Bitvector::fromString(W.str()), W);
}

INSTANTIATE_TEST_SUITE_P(Random, BitvectorProps, ::testing::Range(0, 50));

} // namespace
