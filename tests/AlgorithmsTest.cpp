//===- AlgorithmsTest.cpp - Classical algorithm substrate tests ------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the explicit-state baseline: configuration-DFA extraction must
/// agree with the reference semantics, the three partition-refinement
/// algorithms (Moore, Hopcroft, Paige–Tarjan) must compute the same
/// Myhill–Nerode classes, Hopcroft–Karp must agree with all of them, and
/// the end-to-end explicit checker must agree with the symbolic checker on
/// automata small enough for both.
///
//===----------------------------------------------------------------------===//

#include "algorithms/HopcroftKarp.h"

#include "core/Checker.h"
#include "p4a/Parser.h"

#include <gtest/gtest.h>

using namespace leapfrog;
using namespace leapfrog::algorithms;
using namespace leapfrog::p4a;

namespace {

Bitvector bv(const std::string &S) { return Bitvector::fromString(S); }

struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed * 0x9e3779b97f4a7c15ull + 1) {}
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
  size_t below(size_t N) { return size_t(next() % N); }
};

/// A random complete DFA over {0,1}.
Dfa randomDfa(Rng &R, size_t NumStates) {
  Dfa D;
  D.Next.resize(NumStates);
  D.Accepting.resize(NumStates);
  for (size_t S = 0; S < NumStates; ++S) {
    D.Next[S] = {uint32_t(R.below(NumStates)), uint32_t(R.below(NumStates))};
    D.Accepting[S] = R.below(3) == 0;
  }
  D.Initial = uint32_t(R.below(NumStates));
  return D;
}

/// Brute-force language equivalence of two states: all words up to MaxLen.
bool bruteEquiv(const Dfa &D, uint32_t A, uint32_t B, size_t MaxLen) {
  for (size_t Len = 0; Len <= MaxLen; ++Len) {
    for (uint64_t W = 0; W < (uint64_t(1) << Len); ++W) {
      Bitvector Word(Len);
      for (size_t I = 0; I < Len; ++I)
        Word.setBit(I, (W >> I) & 1);
      if (D.Accepting[D.run(A, Word)] != D.Accepting[D.run(B, Word)])
        return false;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Dfa basics and extraction
//===----------------------------------------------------------------------===//

TEST(Dfa, RunAndAccepts) {
  // Two states: even/odd number of 1-bits; accept on odd.
  Dfa D;
  D.Next = {{0, 1}, {1, 0}};
  D.Accepting = {false, true};
  D.Initial = 0;
  EXPECT_TRUE(D.wellFormed());
  EXPECT_FALSE(D.accepts(bv("")));
  EXPECT_TRUE(D.accepts(bv("1")));
  EXPECT_TRUE(D.accepts(bv("100")));
  EXPECT_FALSE(D.accepts(bv("11")));
  EXPECT_EQ(D.run(1, bv("1")), 0u);
}

TEST(Dfa, WellFormedRejectsBrokenEdges) {
  Dfa D;
  D.Next = {{0, 7}};
  D.Accepting = {false};
  EXPECT_FALSE(D.wellFormed());
  D.Next = {{0, 0}};
  D.Accepting = {};
  EXPECT_FALSE(D.wellFormed());
}

TEST(Dfa, DisjointUnionPreservesBothLanguages) {
  Dfa A;
  A.Next = {{0, 0}};
  A.Accepting = {true};
  Dfa B;
  B.Next = {{1, 1}, {1, 1}};
  B.Accepting = {false, false};
  uint32_t Offset = 0;
  Dfa U = disjointUnion(A, B, &Offset);
  EXPECT_TRUE(U.wellFormed());
  EXPECT_EQ(U.numStates(), 3u);
  EXPECT_EQ(Offset, 1u);
  EXPECT_TRUE(U.Accepting[U.run(0, bv("0101"))]);
  EXPECT_FALSE(U.Accepting[U.run(Offset, bv("0101"))]);
}

TEST(Extract, MatchesReferenceSemanticsOnAllShortWords) {
  Automaton Aut = parseAutomatonOrDie(R"(
    state s {
      extract(h, 2);
      select(h[0:0]) {
        1 => accept
        _ => s
      }
    }
  )");
  Config Init = initialConfig(StateRef::normal(0), Store(Aut));
  DfaExtraction E = extractConfigDfa(Aut, Init, 1u << 12);
  ASSERT_TRUE(E.Complete);
  EXPECT_TRUE(E.D.wellFormed());
  for (size_t Len = 0; Len <= 8; ++Len) {
    for (uint64_t W = 0; W < (uint64_t(1) << Len); ++W) {
      Bitvector Word(Len);
      for (size_t I = 0; I < Len; ++I)
        Word.setBit(I, (W >> I) & 1);
      EXPECT_EQ(E.D.accepts(Word),
                accepts(Aut, Init.Q, Init.S, Word))
          << "word " << Word.str();
    }
  }
}

TEST(Extract, InitialStateIsInitialConfig) {
  Automaton Aut = parseAutomatonOrDie(R"(
    state s { extract(h, 1); goto accept }
  )");
  Config Init = initialConfig(StateRef::normal(0), Store(Aut));
  DfaExtraction E = extractConfigDfa(Aut, Init, 1u << 10);
  ASSERT_TRUE(E.Complete);
  EXPECT_TRUE(E.States[E.D.Initial] == Init);
}

TEST(Extract, BudgetExhaustionIsReported) {
  // 8-bit header: ≥ 2^8 stores are reachable, far over a budget of 16.
  Automaton Aut = parseAutomatonOrDie(R"(
    state s {
      extract(h, 8);
      select(h[0:0]) {
        1 => accept
        _ => s
      }
    }
  )");
  Config Init = initialConfig(StateRef::normal(0), Store(Aut));
  DfaExtraction E = extractConfigDfa(Aut, Init, 16);
  EXPECT_FALSE(E.Complete);
}

TEST(Extract, TerminalSinkStructure) {
  // After accept, everything goes to reject and stays there (§3.2:
  // "accepting states should not parse any further input").
  Automaton Aut = parseAutomatonOrDie(R"(
    state s { extract(h, 1); goto accept }
  )");
  Config Init = initialConfig(StateRef::normal(0), Store(Aut));
  DfaExtraction E = extractConfigDfa(Aut, Init, 1u << 10);
  ASSERT_TRUE(E.Complete);
  uint32_t Acc = E.D.run(E.D.Initial, bv("1"));
  EXPECT_TRUE(E.D.Accepting[Acc]);
  uint32_t Rej = E.D.Next[Acc][0];
  EXPECT_FALSE(E.D.Accepting[Rej]);
  EXPECT_EQ(E.D.Next[Rej][0], Rej);
  EXPECT_EQ(E.D.Next[Rej][1], Rej);
}

//===----------------------------------------------------------------------===//
// Partition refinement: unit cases
//===----------------------------------------------------------------------===//

/// The three refinement algorithms run on the same DFA.
std::array<Partition, 3> refineAll(const Dfa &D) {
  return {mooreRefine(D), hopcroftRefine(D),
          paigeTarjanRefine(dfaToLts(D))};
}

TEST(Refine, SingleStateClasses) {
  Dfa D;
  D.Next = {{0, 0}};
  D.Accepting = {true};
  for (const Partition &P : refineAll(D)) {
    EXPECT_EQ(P.NumClasses, 1u);
    EXPECT_EQ(P.ClassOf[0], 0u);
  }
}

TEST(Refine, DistinguishesByAcceptance) {
  Dfa D;
  D.Next = {{0, 0}, {1, 1}};
  D.Accepting = {false, true};
  for (const Partition &P : refineAll(D))
    EXPECT_FALSE(P.sameClass(0, 1));
}

TEST(Refine, MergesLanguageEqualStates) {
  // States 0 and 1 both accept exactly the odd-number-of-ones words via
  // different state names; 2 is the "flipped" state.
  Dfa D;
  D.Next = {{0, 2}, {1, 2}, {2, 0}};
  D.Accepting = {false, false, true};
  for (const Partition &P : refineAll(D)) {
    EXPECT_TRUE(P.sameClass(0, 1));
    EXPECT_FALSE(P.sameClass(0, 2));
  }
}

TEST(Refine, QuotientIsStableAndEquivalent) {
  Rng R{42};
  Dfa D = randomDfa(R, 40);
  Partition P = hopcroftRefine(D);
  Dfa Q = quotient(D, P);
  EXPECT_TRUE(Q.wellFormed());
  EXPECT_EQ(Q.numStates(), P.NumClasses);
  // The quotient accepts the same words.
  for (int I = 0; I < 200; ++I) {
    size_t Len = R.below(10);
    Bitvector Word(Len);
    for (size_t K = 0; K < Len; ++K)
      Word.setBit(K, R.below(2));
    EXPECT_EQ(D.accepts(Word), Q.accepts(Word));
  }
  // And it is minimal: refining it again changes nothing.
  Partition P2 = hopcroftRefine(Q);
  EXPECT_EQ(P2.NumClasses, Q.numStates());
}

//===----------------------------------------------------------------------===//
// Paige–Tarjan on genuine relations (NFA-shaped LTSs)
//===----------------------------------------------------------------------===//

/// Signature-refinement oracle for the relational coarsest partition:
/// refine by the *set* of (label, successor class) pairs until stable.
Partition naiveRelationalRefine(const Lts &L) {
  Partition P;
  P.ClassOf = L.InitialBlock;
  for (;;) {
    std::map<std::vector<uint64_t>, uint32_t> SigClass;
    std::vector<uint32_t> NewClass(L.NumStates);
    std::vector<std::vector<uint64_t>> Sigs(L.NumStates);
    for (size_t Lab = 0; Lab < L.Edges.size(); ++Lab)
      for (auto [From, To] : L.Edges[Lab])
        Sigs[From].push_back((uint64_t(Lab) << 32) | P.ClassOf[To]);
    for (size_t S = 0; S < L.NumStates; ++S) {
      std::sort(Sigs[S].begin(), Sigs[S].end());
      Sigs[S].erase(std::unique(Sigs[S].begin(), Sigs[S].end()),
                    Sigs[S].end());
      Sigs[S].push_back(uint64_t(P.ClassOf[S]) << 48);
      auto [It, _] = SigClass.emplace(Sigs[S], uint32_t(SigClass.size()));
      NewClass[S] = It->second;
    }
    bool Changed = false;
    for (size_t S = 0; S < L.NumStates; ++S)
      Changed |= NewClass[S] != P.ClassOf[S];
    size_t Num = SigClass.size();
    P.ClassOf = std::move(NewClass);
    if (Num == P.NumClasses && !Changed)
      return P;
    P.NumClasses = Num;
    if (!Changed)
      return P;
  }
}

/// Partitions are equal up to renaming iff they induce the same kernel.
bool samePartition(const Partition &A, const Partition &B) {
  if (A.ClassOf.size() != B.ClassOf.size())
    return false;
  std::map<uint32_t, uint32_t> AtoB, BtoA;
  for (size_t S = 0; S < A.ClassOf.size(); ++S) {
    auto [ItA, NewA] = AtoB.emplace(A.ClassOf[S], B.ClassOf[S]);
    auto [ItB, NewB] = BtoA.emplace(B.ClassOf[S], A.ClassOf[S]);
    (void)NewA;
    (void)NewB;
    if (ItA->second != B.ClassOf[S] || ItB->second != A.ClassOf[S])
      return false;
  }
  return true;
}

class PtFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PtFuzz, PaigeTarjanMatchesSignatureRefinementOnNfas) {
  Rng R{uint64_t(GetParam())};
  Lts L;
  L.NumStates = 2 + R.below(20);
  size_t NumLabels = 1 + R.below(3);
  L.Edges.resize(NumLabels);
  size_t NumEdges = R.below(3 * L.NumStates + 1);
  for (size_t I = 0; I < NumEdges; ++I)
    L.Edges[R.below(NumLabels)].emplace_back(
        uint32_t(R.below(L.NumStates)), uint32_t(R.below(L.NumStates)));
  L.InitialBlock.resize(L.NumStates);
  for (uint32_t &B : L.InitialBlock)
    B = uint32_t(R.below(2));

  Partition Pt = paigeTarjanRefine(L);
  Partition Ref = naiveRelationalRefine(L);
  EXPECT_TRUE(samePartition(Pt, Ref))
      << "PT and signature refinement disagree on seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Random, PtFuzz, ::testing::Range(0, 300));

//===----------------------------------------------------------------------===//
// Cross-validation of all four algorithms on random DFAs
//===----------------------------------------------------------------------===//

class RefineFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RefineFuzz, AllAlgorithmsComputeNerodeClasses) {
  Rng R{uint64_t(GetParam())};
  Dfa D = randomDfa(R, 2 + R.below(24));
  Partition Moore = mooreRefine(D);
  Partition Hop = hopcroftRefine(D);
  Partition Pt = paigeTarjanRefine(dfaToLts(D));
  EXPECT_TRUE(samePartition(Moore, Hop)) << "seed " << GetParam();
  EXPECT_TRUE(samePartition(Moore, Pt)) << "seed " << GetParam();

  // Spot-check classes against brute-force language comparison, and
  // against Hopcroft–Karp, on a handful of state pairs.
  for (int I = 0; I < 6; ++I) {
    uint32_t A = uint32_t(R.below(D.numStates()));
    uint32_t B = uint32_t(R.below(D.numStates()));
    bool Brute = bruteEquiv(D, A, B, 8);
    EXPECT_EQ(Moore.sameClass(A, B), Brute)
        << "seed " << GetParam() << " states " << A << "," << B;
    EXPECT_EQ(hkEquivalent(D, A, B), Brute)
        << "seed " << GetParam() << " states " << A << "," << B;
  }
}

INSTANTIATE_TEST_SUITE_P(Random, RefineFuzz, ::testing::Range(0, 250));

//===----------------------------------------------------------------------===//
// Hopcroft–Karp specifics
//===----------------------------------------------------------------------===//

TEST(HopcroftKarp, ReflexiveAndStats) {
  Rng R{7};
  Dfa D = randomDfa(R, 12);
  HkStats Stats;
  EXPECT_TRUE(hkEquivalent(D, 3, 3, &Stats));
  EXPECT_EQ(Stats.Pairs, 0u) << "x ~ x must not enqueue anything";
}

TEST(HopcroftKarp, AlmostLinearPairCount) {
  // Two disjoint cycles of length 64 with identical acceptance patterns:
  // HK must terminate after O(n) pairs, not O(n²).
  Dfa D;
  size_t N = 64;
  D.Next.resize(2 * N);
  D.Accepting.resize(2 * N);
  for (size_t C = 0; C < 2; ++C)
    for (size_t I = 0; I < N; ++I) {
      uint32_t S = uint32_t(C * N + I);
      uint32_t Succ = uint32_t(C * N + (I + 1) % N);
      D.Next[S] = {Succ, Succ};
      D.Accepting[S] = I % 3 == 0;
    }
  HkStats Stats;
  EXPECT_TRUE(hkEquivalent(D, 0, uint32_t(N), &Stats));
  EXPECT_LE(Stats.Pairs, 2 * N + 2);
}

//===----------------------------------------------------------------------===//
// End-to-end explicit checker vs the symbolic checker
//===----------------------------------------------------------------------===//

struct ExplicitCase {
  const char *Name;
  const char *LeftSrc, *RightSrc;
  bool ExpectEquivalent;
};

// Small parsers (tiny headers so the configuration DFA stays materializable)
// exercising buffering, select branching and assignment.
const ExplicitCase ExplicitCases[] = {
    {"IdenticalLoop",
     R"(state s { extract(h, 2); select(h[0:0]) { 1 => accept _ => s } })",
     R"(state t { extract(g, 2); select(g[0:0]) { 1 => accept _ => t } })",
     true},
    {"ChunkedVsWide",
     R"(state a { extract(x, 2); goto b }
        state b { extract(y, 2); goto accept })",
     R"(state w { extract(z, 4); goto accept })", true},
    {"AcceptVsReject",
     R"(state s { extract(h, 1); goto accept })",
     R"(state t { extract(g, 1); goto reject })", false},
    {"DifferentBranchBit",
     R"(state s { extract(h, 2); select(h[0:0]) { 1 => accept _ => reject } })",
     R"(state t { extract(g, 2); select(g[1:1]) { 1 => accept _ => reject } })",
     false},
};

class ExplicitVsSymbolic
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ExplicitVsSymbolic, VerdictsAgree) {
  const ExplicitCase &C = ExplicitCases[std::get<0>(GetParam())];
  ExplicitAlgorithm Algo = ExplicitAlgorithm(std::get<1>(GetParam()));

  Automaton L = parseAutomatonOrDie(C.LeftSrc);
  Automaton R = parseAutomatonOrDie(C.RightSrc);
  ExplicitCheckResult Explicit = checkEquivalenceExplicit(
      L, initialConfig(StateRef::normal(0), Store(L)), R,
      initialConfig(StateRef::normal(0), Store(R)), 1u << 16, Algo);
  ASSERT_NE(Explicit.V, ExplicitCheckResult::Verdict::ResourceLimit)
      << C.Name << ": budget unexpectedly exhausted";
  EXPECT_EQ(Explicit.equivalent(), C.ExpectEquivalent) << C.Name;
  EXPECT_GT(Explicit.DfaStates, 0u);

  core::CheckResult Symbolic = core::checkLanguageEquivalence(
      L, StateRef::normal(0), R, StateRef::normal(0));
  EXPECT_EQ(Symbolic.equivalent(), C.ExpectEquivalent)
      << C.Name << ": symbolic checker disagrees";
}

using ExplicitParam = std::tuple<int, int>;

std::string explicitCaseName(
    const ::testing::TestParamInfo<ExplicitParam> &Info) {
  static const char *Algos[] = {"HopcroftKarp", "Moore", "Hopcroft",
                                "PaigeTarjan"};
  return std::string(ExplicitCases[std::get<0>(Info.param)].Name) + "_" +
         Algos[std::get<1>(Info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ExplicitVsSymbolic,
    ::testing::Combine(::testing::Range(0, 4), ::testing::Range(0, 4)),
    explicitCaseName);

/// Builds a random well-typed automaton over tiny headers — the same
/// distribution CheckerTest uses against the symbolic checker, here
/// feeding the explicit pipeline.
Automaton randomAutomaton(Rng &R) {
  Automaton Aut;
  size_t NumHeaders = 1 + R.below(2);
  std::vector<HeaderId> Hs;
  for (size_t H = 0; H < NumHeaders; ++H)
    Hs.push_back(Aut.addHeader("h" + std::to_string(H), 1 + R.below(2)));
  size_t NumStates = 1 + R.below(3);
  std::vector<StateId> Qs;
  for (size_t Q = 0; Q < NumStates; ++Q)
    Qs.push_back(Aut.declareState("q" + std::to_string(Q)));

  auto RandomTarget = [&]() -> StateRef {
    size_t Pick = R.below(NumStates + 2);
    if (Pick < NumStates)
      return StateRef::normal(Qs[Pick]);
    return Pick == NumStates ? StateRef::accept() : StateRef::reject();
  };

  for (size_t Q = 0; Q < NumStates; ++Q) {
    std::vector<Op> Ops;
    Ops.push_back(Op::extract(Hs[R.below(NumHeaders)]));
    if (R.below(2))
      Ops.push_back(Op::extract(Hs[R.below(NumHeaders)]));
    if (R.below(2)) {
      HeaderId Target = Hs[R.below(NumHeaders)];
      HeaderId Source = Hs[R.below(NumHeaders)];
      size_t TW = Aut.headerSize(Target);
      size_t SW = Aut.headerSize(Source);
      ExprRef E;
      if (SW >= TW)
        E = Expr::mkSlice(Expr::mkHeader(Source), 0, TW - 1);
      else
        E = Expr::mkConcat(Expr::mkHeader(Source),
                           Expr::mkLiteral(Bitvector(TW - SW)));
      Ops.push_back(Op::assign(Target, E));
    }

    Transition Tz;
    if (R.below(3) == 0) {
      Tz = Transition::mkGoto(RandomTarget());
    } else {
      auto Discr =
          Expr::mkSlice(Expr::mkHeader(Hs[R.below(NumHeaders)]), 0, 0);
      std::vector<SelectCase> Cases;
      size_t NumCases = 1 + R.below(2);
      for (size_t I = 0; I < NumCases; ++I) {
        SelectCase C;
        C.Pats.push_back(R.below(3) == 0
                             ? Pattern::wildcard()
                             : Pattern::exact(
                                   Bitvector::fromUint(R.below(2), 1)));
        C.Target = RandomTarget();
        Cases.push_back(std::move(C));
      }
      Tz = Transition::mkSelect({Discr}, std::move(Cases));
    }
    Aut.setState(Qs[Q], std::move(Ops), std::move(Tz));
  }
  return Aut;
}

/// Random automaton pairs: all four explicit algorithms must agree with
/// the concrete configuration-equivalence oracle (and hence with each
/// other) on the zero initial store.
class ExplicitSweep : public ::testing::TestWithParam<int> {};

TEST_P(ExplicitSweep, AllAlgorithmsAgreeWithConcreteOracle) {
  Rng R{uint64_t(GetParam()) * 977 + 5};
  Automaton A = randomAutomaton(R);
  Automaton B = randomAutomaton(R);
  p4a::Config CA = initialConfig(StateRef::normal(0), Store(A));
  p4a::Config CB = initialConfig(StateRef::normal(0), Store(B));

  bool Oracle = p4a::concrete::configEquiv(A, CA, B, CB);
  for (int Algo = 0; Algo < 4; ++Algo) {
    ExplicitCheckResult Res = checkEquivalenceExplicit(
        A, CA, B, CB, 1u << 16, ExplicitAlgorithm(Algo));
    ASSERT_NE(Res.V, ExplicitCheckResult::Verdict::ResourceLimit)
        << "seed " << GetParam();
    EXPECT_EQ(Res.equivalent(), Oracle)
        << "seed " << GetParam() << " algorithm " << Algo << "\nleft:\n"
        << A.print() << "right:\n"
        << B.print();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExplicitSweep, ::testing::Range(0, 150));

TEST(ExplicitChecker, ResourceLimitOnWideHeaders) {
  // A 24-bit extract makes the configuration DFA ≥ 2^24 states; with a
  // 4096-state budget the explicit baseline must give up — the paper's §4
  // argument in miniature (the symbolic checker handles this instantly).
  Automaton L = parseAutomatonOrDie(R"(
    state s {
      extract(h, 24);
      select(h[0:0]) { 1 => accept _ => s }
    }
  )");
  ExplicitCheckResult Res = checkEquivalenceExplicit(
      L, initialConfig(StateRef::normal(0), Store(L)), L,
      initialConfig(StateRef::normal(0), Store(L)), 4096,
      ExplicitAlgorithm::HopcroftKarp);
  EXPECT_EQ(Res.V, ExplicitCheckResult::Verdict::ResourceLimit);

  core::CheckResult Symbolic = core::checkLanguageEquivalence(
      L, StateRef::normal(0), L, StateRef::normal(0));
  EXPECT_TRUE(Symbolic.equivalent());
}

} // namespace
