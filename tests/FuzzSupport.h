//===- FuzzSupport.h - Shared fuzz-harness helpers --------------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the randomized test suites. The one policy decision
/// that lives here: fuzzer iteration counts are environment-tunable so the
/// same binaries serve two jobs — the tier-1 CI run keeps the committed
/// defaults (seconds-fast), while the nightly `fuzz`-labelled CTest entries
/// set LEAPFROG_FUZZ_ITERS to go an order of magnitude deeper.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_TESTS_FUZZSUPPORT_H
#define LEAPFROG_TESTS_FUZZSUPPORT_H

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>

namespace leapfrog {
namespace testing {

/// Returns the iteration count for a fuzz suite whose committed default is
/// \p Default. LEAPFROG_FUZZ_ITERS, when set, is a percentage scale applied
/// to every suite's default: 100 reproduces the committed counts, 10000 runs
/// 100x deeper (the nightly setting), 10 gives a quick smoke. The scale is
/// clamped so a typo cannot melt a runner.
inline int fuzzIters(int Default) {
  const char *Env = std::getenv("LEAPFROG_FUZZ_ITERS");
  if (!Env || !*Env)
    return Default;
  long Scale = std::strtol(Env, nullptr, 10);
  if (Scale <= 0)
    return Default;
  if (Scale > 100000)
    Scale = 100000;
  long long Iters = static_cast<long long>(Default) * Scale / 100;
  if (Iters < 1)
    Iters = 1;
  if (Iters > 1000000)
    Iters = 1000000;
  return static_cast<int>(Iters);
}

/// Surfaces the effective fuzz configuration of the running test: the
/// seed and iteration count land in the XML/JSON report as test
/// properties (`fuzz_seed`, `fuzz_iters`), and the first call per suite
/// prints one stderr line, so a CI log always shows how deep a run
/// actually went and which seed to replay on failure. Call from the test
/// body — fuzzIters() alone runs at INSTANTIATE scope, before any
/// reporting sink exists.
inline void reportFuzzConfig(const char *Suite, int EffectiveIters,
                             uint64_t Seed) {
  ::testing::Test::RecordProperty("fuzz_iters", EffectiveIters);
  ::testing::Test::RecordProperty("fuzz_seed", std::to_string(Seed));
  static std::set<std::string> Announced;
  if (Announced.insert(Suite).second) {
    const char *Env = std::getenv("LEAPFROG_FUZZ_ITERS");
    std::fprintf(stderr,
                 "[fuzz] %s: %d iterations (LEAPFROG_FUZZ_ITERS=%s), first "
                 "seed %llu\n",
                 Suite, EffectiveIters, Env && *Env ? Env : "unset",
                 static_cast<unsigned long long>(Seed));
  }
}

} // namespace testing
} // namespace leapfrog

#endif // LEAPFROG_TESTS_FUZZSUPPORT_H
