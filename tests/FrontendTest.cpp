//===- FrontendTest.cpp - Surface elaboration tests ------------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the surface extensions of §7.3 (header stacks, subparser
/// calls, lookahead): elaborated parsers must behave like hand-unrolled
/// P4As — checked both concretely (packet by packet) and symbolically
/// (full language equivalence via the checker) — and malformed surface
/// programs must be rejected with diagnostics, not miscompiled.
///
//===----------------------------------------------------------------------===//

#include "frontend/Elaborate.h"

#include "core/Checker.h"
#include "p4a/Concrete.h"
#include "p4a/Parser.h"

#include <gtest/gtest.h>

using namespace leapfrog;
using namespace leapfrog::frontend;

namespace {

Bitvector bv(const std::string &S) { return Bitvector::fromString(S); }

p4a::Pattern pat(const std::string &S) {
  return p4a::Pattern::exact(bv(S));
}

/// Checks full language equivalence of an elaborated surface parser and a
/// hand-written reference, using the symbolic checker.
void expectEquivalent(const ElaborationResult &Sur,
                      const p4a::Automaton &Ref,
                      const std::string &RefEntry) {
  ASSERT_TRUE(Sur.ok());
  core::CheckResult Res = core::checkLanguageEquivalence(
      Sur.Aut, Sur.Entry, Ref, RefEntry);
  EXPECT_TRUE(Res.equivalent()) << Res.FailureReason;
}

//===----------------------------------------------------------------------===//
// Lookahead
//===----------------------------------------------------------------------===//

/// x := lookahead; extract h1, h2; branch on x — must equal branching on
/// the prefix of h1 directly.
TEST(Lookahead, BranchOnPeekedBitsEqualsBranchOnExtracted) {
  SurfaceProgram P;
  P.addHeader("x", 4);
  P.addHeader("h1", 8);
  P.addHeader("h2", 8);
  SurfaceState S;
  S.Name = "s";
  S.Ops = {SurfaceOp::lookahead("x"), SurfaceOp::extract("h1"),
           SurfaceOp::extract("h2")};
  S.Tz = SurfaceTransition::mkSelect(
      {SExpr::mkSlice(SExpr::mkHeader("x"), 0, 3)},
      {{{pat("1010")}, SurfaceTarget::accept()},
       {{p4a::Pattern::wildcard()}, SurfaceTarget::reject()}});
  P.addState(std::move(S));
  P.setEntry("s");

  p4a::Automaton Ref = p4a::parseAutomatonOrDie(R"(
    state s {
      extract(h1, 8);
      extract(h2, 8);
      select(h1[0:3]) {
        1010 => accept
        _ => reject
      }
    }
  )");
  expectEquivalent(elaborate(P), Ref, "s");
}

TEST(Lookahead, PeekSpanningTwoExtractsReassembles) {
  // A 12-bit lookahead over an 8-bit + 8-bit extraction: the reassembly
  // must be h1 ++ h2[0:3].
  SurfaceProgram P;
  P.addHeader("x", 12);
  P.addHeader("h1", 8);
  P.addHeader("h2", 8);
  SurfaceState S;
  S.Name = "s";
  S.Ops = {SurfaceOp::lookahead("x"), SurfaceOp::extract("h1"),
           SurfaceOp::extract("h2")};
  S.Tz = SurfaceTransition::mkSelect(
      {SExpr::mkSlice(SExpr::mkHeader("x"), 8, 11)},
      {{{pat("0110")}, SurfaceTarget::accept()},
       {{p4a::Pattern::wildcard()}, SurfaceTarget::reject()}});
  P.addState(std::move(S));
  P.setEntry("s");

  // x[8:11] is h2[0:3].
  p4a::Automaton Ref = p4a::parseAutomatonOrDie(R"(
    state s {
      extract(h1, 8);
      extract(h2, 8);
      select(h2[0:3]) {
        0110 => accept
        _ => reject
      }
    }
  )");
  expectEquivalent(elaborate(P), Ref, "s");
}

TEST(Lookahead, ExactWidthPeekNeedsNoSlice) {
  // Lookahead of exactly the state's extraction width.
  SurfaceProgram P;
  P.addHeader("x", 8);
  P.addHeader("h", 8);
  SurfaceState S;
  S.Name = "s";
  S.Ops = {SurfaceOp::lookahead("x"), SurfaceOp::extract("h")};
  S.Tz = SurfaceTransition::mkSelect(
      {SExpr::mkHeader("x")},
      {{{pat("11110000")}, SurfaceTarget::accept()},
       {{p4a::Pattern::wildcard()}, SurfaceTarget::reject()}});
  P.addState(std::move(S));
  P.setEntry("s");

  p4a::Automaton Ref = p4a::parseAutomatonOrDie(R"(
    state s {
      extract(h, 8);
      select(h) {
        11110000 => accept
        _ => reject
      }
    }
  )");
  expectEquivalent(elaborate(P), Ref, "s");
}

TEST(Lookahead, TooWideIsDiagnosed) {
  SurfaceProgram P;
  P.addHeader("x", 16);
  P.addHeader("h", 8);
  SurfaceState S;
  S.Name = "s";
  S.Ops = {SurfaceOp::lookahead("x"), SurfaceOp::extract("h")};
  S.Tz = SurfaceTransition::mkGoto(SurfaceTarget::accept());
  P.addState(std::move(S));
  P.setEntry("s");
  ElaborationResult R = elaborate(P);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Errors[0].find("exceeds the state's extraction"),
            std::string::npos)
      << R.Errors[0];
}

TEST(Lookahead, AfterExtractIsDiagnosed) {
  SurfaceProgram P;
  P.addHeader("x", 4);
  P.addHeader("h", 8);
  SurfaceState S;
  S.Name = "s";
  S.Ops = {SurfaceOp::extract("h"), SurfaceOp::lookahead("x")};
  S.Tz = SurfaceTransition::mkGoto(SurfaceTarget::accept());
  P.addState(std::move(S));
  P.setEntry("s");
  ElaborationResult R = elaborate(P);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Errors[0].find("must precede"), std::string::npos);
}

TEST(Lookahead, DuplicateExtractTargetIsDiagnosed) {
  SurfaceProgram P;
  P.addHeader("x", 4);
  P.addHeader("h", 8);
  SurfaceState S;
  S.Name = "s";
  S.Ops = {SurfaceOp::lookahead("x"), SurfaceOp::extract("h"),
           SurfaceOp::extract("h")};
  S.Tz = SurfaceTransition::mkGoto(SurfaceTarget::accept());
  P.addState(std::move(S));
  P.setEntry("s");
  ElaborationResult R = elaborate(P);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Errors[0].find("distinct extract targets"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Header stacks
//===----------------------------------------------------------------------===//

/// The MPLS idiom from the paper's §2, written with a real header stack:
/// extract labels until the bottom-of-stack bit, at most Slots of them.
SurfaceProgram mplsStackProgram(size_t Slots) {
  SurfaceProgram P;
  P.addStack("lbl", Slots, 4);
  P.addHeader("udp", 8);
  SurfaceState Loop;
  Loop.Name = "loop";
  Loop.Ops = {SurfaceOp::extractNext("lbl")};
  Loop.Tz = SurfaceTransition::mkSelect(
      {SExpr::mkSlice(SExpr::mkStackLast("lbl"), 0, 0)},
      {{{pat("1")}, SurfaceTarget::state("done")},
       {{p4a::Pattern::wildcard()}, SurfaceTarget::state("loop")}});
  P.addState(std::move(Loop));
  SurfaceState Done;
  Done.Name = "done";
  Done.Ops = {SurfaceOp::extract("udp")};
  Done.Tz = SurfaceTransition::mkGoto(SurfaceTarget::accept());
  P.addState(std::move(Done));
  P.setEntry("loop");
  return P;
}

TEST(Stacks, MplsStackMatchesHandUnrolledParser) {
  ElaborationResult Sur = elaborate(mplsStackProgram(2));
  ASSERT_TRUE(Sur.ok()) << Sur.Errors.size();

  // Hand-unrolled: two label slots, a third label overflows (its bits are
  // consumed, then reject).
  p4a::Automaton Ref = p4a::parseAutomatonOrDie(R"(
    state l0 {
      extract(a, 4);
      select(a[0:0]) {
        1 => done
        _ => l1
      }
    }
    state l1 {
      extract(b, 4);
      select(b[0:0]) {
        1 => done
        _ => l2
      }
    }
    state l2 {
      extract(c, 4);
      goto reject
    }
    state done {
      extract(udp, 8);
      goto accept
    }
  )");
  expectEquivalent(Sur, Ref, "l0");
}

TEST(Stacks, ConcreteAcceptanceAndOverflow) {
  ElaborationResult Sur = elaborate(mplsStackProgram(2));
  ASSERT_TRUE(Sur.ok());
  p4a::Store S(Sur.Aut);
  p4a::StateRef Q =
      p4a::StateRef::normal(*Sur.Aut.findState(Sur.Entry));

  // One bottom-of-stack label + udp: accepted.
  EXPECT_TRUE(p4a::accepts(Sur.Aut, Q, S, bv("100011110000")));
  // Two labels (second is bottom) + udp: accepted.
  EXPECT_TRUE(p4a::accepts(Sur.Aut, Q, S, bv("0000100011110000")));
  // Three labels: overflow rejects even with the right trailer.
  EXPECT_FALSE(
      p4a::accepts(Sur.Aut, Q, S, bv("00000000100011110000")));
  // Missing udp trailer: rejected.
  EXPECT_FALSE(p4a::accepts(Sur.Aut, Q, S, bv("1000")));
}

TEST(Stacks, SlotHeadersReceiveTheLabels) {
  ElaborationResult Sur = elaborate(mplsStackProgram(3));
  ASSERT_TRUE(Sur.ok());
  p4a::Store S(Sur.Aut);
  p4a::StateRef Q =
      p4a::StateRef::normal(*Sur.Aut.findState(Sur.Entry));
  p4a::Config C = p4a::multiStep(
      Sur.Aut, p4a::initialConfig(Q, S), bv("0011101111110000"));
  ASSERT_TRUE(C.accepting());
  auto Slot0 = Sur.Aut.findHeader("lbl$0");
  auto Slot1 = Sur.Aut.findHeader("lbl$1");
  ASSERT_TRUE(Slot0 && Slot1);
  EXPECT_EQ(C.S.get(*Slot0), bv("0011"));
  EXPECT_EQ(C.S.get(*Slot1), bv("1011"));
}

TEST(Stacks, StaticElementReference) {
  // Branch on lbl[0] (the first label) in the final state.
  SurfaceProgram P = mplsStackProgram(2);
  SurfaceProgram P2;
  P2.addStack("lbl", 2, 4);
  P2.addHeader("udp", 8);
  SurfaceState Loop;
  Loop.Name = "loop";
  Loop.Ops = {SurfaceOp::extractNext("lbl")};
  Loop.Tz = SurfaceTransition::mkSelect(
      {SExpr::mkSlice(SExpr::mkStackLast("lbl"), 0, 0)},
      {{{pat("1")}, SurfaceTarget::state("done")},
       {{p4a::Pattern::wildcard()}, SurfaceTarget::state("loop")}});
  P2.addState(std::move(Loop));
  SurfaceState Done;
  Done.Name = "done";
  Done.Ops = {SurfaceOp::extract("udp")};
  // Accept only when the *first* label's top bit is 1.
  Done.Tz = SurfaceTransition::mkSelect(
      {SExpr::mkSlice(SExpr::mkStackElem("lbl", 0), 3, 3)},
      {{{pat("1")}, SurfaceTarget::accept()},
       {{p4a::Pattern::wildcard()}, SurfaceTarget::reject()}});
  P2.addState(std::move(Done));
  P2.setEntry("loop");

  ElaborationResult Sur = elaborate(P2);
  ASSERT_TRUE(Sur.ok());
  p4a::Store S(Sur.Aut);
  p4a::StateRef Q =
      p4a::StateRef::normal(*Sur.Aut.findState(Sur.Entry));
  // First label 1001 (bos, top bit 1): accepted.
  EXPECT_TRUE(p4a::accepts(Sur.Aut, Q, S, bv("100111110000")));
  // First label 1000 (bos, top bit 0): rejected.
  EXPECT_FALSE(p4a::accepts(Sur.Aut, Q, S, bv("100011110000")));
}

TEST(Stacks, OutOfRangeElementIsDiagnosed) {
  SurfaceProgram P;
  P.addStack("lbl", 2, 4);
  P.addHeader("udp", 8);
  SurfaceState S;
  S.Name = "s";
  S.Ops = {SurfaceOp::extractNext("lbl")};
  S.Tz = SurfaceTransition::mkSelect(
      {SExpr::mkHeader("udp")},
      {{{p4a::Pattern::wildcard()}, SurfaceTarget::accept()}});
  S.Tz.Discriminants = {SExpr::mkStackElem("lbl", 5)};
  P.addState(std::move(S));
  P.setEntry("s");
  ElaborationResult R = elaborate(P);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Errors[0].find("out of range"), std::string::npos);
}

TEST(Stacks, UndeclaredStackIsDiagnosed) {
  SurfaceProgram P;
  P.addHeader("h", 4);
  SurfaceState S;
  S.Name = "s";
  S.Ops = {SurfaceOp::extractNext("ghost")};
  S.Tz = SurfaceTransition::mkGoto(SurfaceTarget::accept());
  P.addState(std::move(S));
  P.setEntry("s");
  EXPECT_FALSE(elaborate(P).ok());
}

TEST(Stacks, HeaderStackNameClashIsDiagnosed) {
  SurfaceProgram P;
  P.addHeader("x", 4);
  P.addStack("x", 2, 4);
  SurfaceState S;
  S.Name = "s";
  S.Ops = {SurfaceOp::extract("x")};
  S.Tz = SurfaceTransition::mkGoto(SurfaceTarget::accept());
  P.addState(std::move(S));
  P.setEntry("s");
  ElaborationResult R = elaborate(P);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Errors[0].find("both as header and stack"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Subparser calls
//===----------------------------------------------------------------------===//

TEST(Calls, SimpleCallInlinesToSequence) {
  SurfaceProgram P;
  P.addHeader("e", 8);
  P.addHeader("udp", 8);
  SurfaceState Eth;
  Eth.Name = "eth";
  Eth.Ops = {SurfaceOp::extract("e")};
  Eth.Tz = SurfaceTransition::mkGoto(SurfaceTarget::call("udp_parser"));
  P.addState(std::move(Eth));
  P.setEntry("eth");
  SubParser Udp;
  Udp.Name = "udp_parser";
  Udp.Entry = "u";
  SurfaceState U;
  U.Name = "u";
  U.Ops = {SurfaceOp::extract("udp")};
  U.Tz = SurfaceTransition::mkGoto(SurfaceTarget::accept());
  Udp.States.push_back(std::move(U));
  P.addSubParser(std::move(Udp));

  p4a::Automaton Ref = p4a::parseAutomatonOrDie(R"(
    state eth { extract(e, 8); goto u }
    state u { extract(udp, 8); goto accept }
  )");
  expectEquivalent(elaborate(P), Ref, "eth");
}

TEST(Calls, ContinuationResumesInCaller) {
  // call(sub, continue at k): sub's accept must flow to k, not accept.
  SurfaceProgram P;
  P.addHeader("a", 4);
  P.addHeader("b", 4);
  P.addHeader("c", 4);
  SurfaceState S0;
  S0.Name = "s0";
  S0.Ops = {SurfaceOp::extract("a")};
  S0.Tz = SurfaceTransition::mkGoto(SurfaceTarget::call("mid", "k"));
  P.addState(std::move(S0));
  SurfaceState K;
  K.Name = "k";
  K.Ops = {SurfaceOp::extract("c")};
  K.Tz = SurfaceTransition::mkGoto(SurfaceTarget::accept());
  P.addState(std::move(K));
  P.setEntry("s0");
  SubParser Mid;
  Mid.Name = "mid";
  Mid.Entry = "m";
  SurfaceState M;
  M.Name = "m";
  M.Ops = {SurfaceOp::extract("b")};
  M.Tz = SurfaceTransition::mkGoto(SurfaceTarget::accept());
  Mid.States.push_back(std::move(M));
  P.addSubParser(std::move(Mid));

  p4a::Automaton Ref = p4a::parseAutomatonOrDie(R"(
    state s0 { extract(a, 4); goto m }
    state m { extract(b, 4); goto k }
    state k { extract(c, 4); goto accept }
  )");
  expectEquivalent(elaborate(P), Ref, "s0");
}

TEST(Calls, TailRecursiveSubparserBecomesLoop) {
  // A subparser that re-calls itself with the same continuation is a
  // loop: the MPLS label chomper as a recursive subparser.
  SurfaceProgram P;
  P.addHeader("e", 4);
  P.addHeader("lab", 4);
  P.addHeader("udp", 8);
  SurfaceState S;
  S.Name = "start";
  S.Ops = {SurfaceOp::extract("e")};
  S.Tz = SurfaceTransition::mkGoto(SurfaceTarget::call("mpls", "fin"));
  P.addState(std::move(S));
  SurfaceState Fin;
  Fin.Name = "fin";
  Fin.Ops = {SurfaceOp::extract("udp")};
  Fin.Tz = SurfaceTransition::mkGoto(SurfaceTarget::accept());
  P.addState(std::move(Fin));
  P.setEntry("start");

  SubParser Mpls;
  Mpls.Name = "mpls";
  Mpls.Entry = "m";
  SurfaceState M;
  M.Name = "m";
  M.Ops = {SurfaceOp::extract("lab")};
  M.Tz = SurfaceTransition::mkSelect(
      {SExpr::mkSlice(SExpr::mkHeader("lab"), 0, 0)},
      {{{pat("1")}, SurfaceTarget::accept()},
       {{p4a::Pattern::wildcard()}, SurfaceTarget::call("mpls")}});
  Mpls.States.push_back(std::move(M));
  P.addSubParser(std::move(Mpls));

  ElaborationResult Sur = elaborate(P);
  ASSERT_TRUE(Sur.ok());
  // The recursion must fold into finitely many states (one instance).
  EXPECT_LE(Sur.Aut.numStates(), 3u);

  p4a::Automaton Ref = p4a::parseAutomatonOrDie(R"(
    state start { extract(e, 4); goto m }
    state m {
      extract(lab, 4);
      select(lab[0:0]) {
        1 => fin
        _ => m
      }
    }
    state fin { extract(udp, 8); goto accept }
  )");
  expectEquivalent(Sur, Ref, "start");
}

TEST(Calls, UnboundedContinuationChainIsDiagnosed) {
  // P calls itself continuing at a state *inside* the new instance: each
  // level mints a fresh continuation, so inlining cannot terminate.
  SurfaceProgram P;
  P.addHeader("h", 2);
  P.addHeader("g", 2);
  SurfaceState S;
  S.Name = "s";
  S.Ops = {SurfaceOp::extract("h")};
  S.Tz = SurfaceTransition::mkGoto(SurfaceTarget::call("p"));
  P.addState(std::move(S));
  P.setEntry("s");
  SubParser Sub;
  Sub.Name = "p";
  Sub.Entry = "a";
  SurfaceState A;
  A.Name = "a";
  A.Ops = {SurfaceOp::extract("h")};
  A.Tz = SurfaceTransition::mkGoto(SurfaceTarget::call("p", "b"));
  Sub.States.push_back(std::move(A));
  SurfaceState B;
  B.Name = "b";
  B.Ops = {SurfaceOp::extract("g")};
  B.Tz = SurfaceTransition::mkGoto(SurfaceTarget::accept());
  Sub.States.push_back(std::move(B));
  P.addSubParser(std::move(Sub));

  ElaborationResult R = elaborate(P);
  ASSERT_FALSE(R.ok());
  bool Found = false;
  for (const std::string &E : R.Errors)
    Found |= E.find("nesting exceeds depth") != std::string::npos;
  EXPECT_TRUE(Found);
}

TEST(Calls, UnknownCalleeIsDiagnosed) {
  SurfaceProgram P;
  P.addHeader("h", 2);
  SurfaceState S;
  S.Name = "s";
  S.Ops = {SurfaceOp::extract("h")};
  S.Tz = SurfaceTransition::mkGoto(SurfaceTarget::call("nope"));
  P.addState(std::move(S));
  P.setEntry("s");
  ElaborationResult R = elaborate(P);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Errors[0].find("unknown subparser"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Combined: stack + lookahead + call in one program
//===----------------------------------------------------------------------===//

TEST(Integration, StackLookaheadCallCompose) {
  // Ethernet-ish prefix, then a subparser chomps up to two 4-bit labels
  // into a stack, then a state peeks the UDP type nibble via lookahead.
  SurfaceProgram P;
  P.addHeader("e", 4);
  P.addStack("lbl", 2, 4);
  P.addHeader("ty", 4);
  P.addHeader("udp", 8);

  SurfaceState S0;
  S0.Name = "start";
  S0.Ops = {SurfaceOp::extract("e")};
  S0.Tz = SurfaceTransition::mkGoto(SurfaceTarget::call("labels", "fin"));
  P.addState(std::move(S0));

  SurfaceState Fin;
  Fin.Name = "fin";
  Fin.Ops = {SurfaceOp::lookahead("ty"), SurfaceOp::extract("udp")};
  Fin.Tz = SurfaceTransition::mkSelect(
      {SExpr::mkHeader("ty")},
      {{{pat("0101")}, SurfaceTarget::accept()},
       {{p4a::Pattern::wildcard()}, SurfaceTarget::reject()}});
  P.addState(std::move(Fin));
  P.setEntry("start");

  SubParser Labels;
  Labels.Name = "labels";
  Labels.Entry = "l";
  SurfaceState L;
  L.Name = "l";
  L.Ops = {SurfaceOp::extractNext("lbl")};
  L.Tz = SurfaceTransition::mkSelect(
      {SExpr::mkSlice(SExpr::mkStackLast("lbl"), 0, 0)},
      {{{pat("1")}, SurfaceTarget::accept()},
       {{p4a::Pattern::wildcard()}, SurfaceTarget::call("labels")}});
  Labels.States.push_back(std::move(L));
  P.addSubParser(std::move(Labels));

  ElaborationResult Sur = elaborate(P);
  ASSERT_TRUE(Sur.ok());

  p4a::Automaton Ref = p4a::parseAutomatonOrDie(R"(
    state start { extract(e, 4); goto l0 }
    state l0 {
      extract(a, 4);
      select(a[0:0]) {
        1 => fin
        _ => l1
      }
    }
    state l1 {
      extract(b, 4);
      select(b[0:0]) {
        1 => fin
        _ => ovf
      }
    }
    state ovf { extract(c, 4); goto reject }
    state fin {
      extract(udp, 8);
      select(udp[0:3]) {
        0101 => accept
        _ => reject
      }
    }
  )");
  expectEquivalent(Sur, Ref, "start");
}

//===----------------------------------------------------------------------===//
// Structural checks
//===----------------------------------------------------------------------===//

TEST(Elaborate, UnreachableStatesArePruned) {
  SurfaceProgram P;
  P.addHeader("h", 2);
  SurfaceState S;
  S.Name = "s";
  S.Ops = {SurfaceOp::extract("h")};
  S.Tz = SurfaceTransition::mkGoto(SurfaceTarget::accept());
  P.addState(std::move(S));
  SurfaceState Dead;
  Dead.Name = "dead";
  Dead.Ops = {SurfaceOp::extract("h")};
  Dead.Tz = SurfaceTransition::mkGoto(SurfaceTarget::reject());
  P.addState(std::move(Dead));
  P.setEntry("s");
  ElaborationResult R = elaborate(P);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Aut.numStates(), 1u);
}

TEST(Elaborate, UnusedSlotHeadersArePruned) {
  // A 4-slot stack whose loop exits after at most 2 extracts: slots 2/3
  // must not appear in the store.
  ElaborationResult R = elaborate(mplsStackProgram(4));
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.Aut.findHeader("lbl$0").has_value());
  // Slot 3 is only reachable through three non-bottom labels; it IS
  // reachable here. What must not exist is anything past the slot count.
  EXPECT_FALSE(R.Aut.findHeader("lbl$4").has_value());
}

TEST(Elaborate, MissingEntryIsDiagnosed) {
  SurfaceProgram P;
  P.addHeader("h", 2);
  SurfaceState S;
  S.Name = "s";
  S.Ops = {SurfaceOp::extract("h")};
  S.Tz = SurfaceTransition::mkGoto(SurfaceTarget::accept());
  P.addState(std::move(S));
  P.setEntry("ghost");
  EXPECT_FALSE(elaborate(P).ok());
}

TEST(Elaborate, ZeroSlotStackIsDiagnosed) {
  SurfaceProgram P;
  P.addStack("lbl", 0, 4);
  P.addHeader("h", 2);
  SurfaceState S;
  S.Name = "s";
  S.Ops = {SurfaceOp::extract("h")};
  S.Tz = SurfaceTransition::mkGoto(SurfaceTarget::accept());
  P.addState(std::move(S));
  P.setEntry("s");
  EXPECT_FALSE(elaborate(P).ok());
}

} // namespace
