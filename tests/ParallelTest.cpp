//===- ParallelTest.cpp - Parallel frontier engine tests ------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The parallel engine's one promise is exactness: for any job count and
// any schedule it takes the same Skip/Extend decisions, builds the same
// relation, and returns the same verdict as the sequential loop. The
// battery here locks that in three ways:
//
//   - a parallel-vs-sequential differential over every registry study at
//     jobs ∈ {2, 4}, comparing the full decision *stream* (kind, pushed
//     WP count, and the exact conjunct of every trace step), the final
//     relation conjunct-by-conjunct, and the verdict;
//   - determinism: two parallel runs of the same study are identical;
//   - unit tests for the runtime pieces (work-stealing deque, striped
//     visited set, epoch pool) under real thread contention, since the
//     checker-level tests only exercise the schedules that happen to
//     occur.
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"
#include "core/FrontierKey.h"
#include "parallel/StripedSet.h"
#include "parallel/WorkStealingDeque.h"
#include "parallel/WorkerPool.h"
#include "parsers/CaseStudies.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

using namespace leapfrog;
using namespace leapfrog::core;

namespace {

//===----------------------------------------------------------------------===//
// Runtime pieces under contention
//===----------------------------------------------------------------------===//

TEST(WorkStealingDeque, OwnerIsLifoThievesAreFifo) {
  parallel::WorkStealingDeque D;
  D.push(1);
  D.push(2);
  D.push(3);
  size_t T = 0;
  ASSERT_TRUE(D.steal(T));
  EXPECT_EQ(T, 1u); // Oldest to the thief.
  ASSERT_TRUE(D.pop(T));
  EXPECT_EQ(T, 3u); // Newest to the owner.
  ASSERT_TRUE(D.pop(T));
  EXPECT_EQ(T, 2u);
  EXPECT_FALSE(D.pop(T));
  EXPECT_FALSE(D.steal(T));
}

TEST(WorkStealingDeque, ConcurrentStealsDeliverEveryTaskOnce) {
  constexpr size_t NumTasks = 10000;
  parallel::WorkStealingDeque D;
  for (size_t I = 0; I < NumTasks; ++I)
    D.push(I);

  constexpr size_t NumThieves = 4;
  std::vector<char> Taken(NumTasks, 0);
  std::atomic<size_t> Count{0};
  std::vector<std::thread> Thieves;
  for (size_t I = 0; I < NumThieves; ++I)
    Thieves.emplace_back([&] {
      size_t T;
      while (D.steal(T)) {
        // Distinct tasks → distinct slots; a double delivery would race
        // on one slot and trip the count below (and TSan).
        Taken[T] = 1;
        Count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  size_t T;
  while (D.pop(T)) { // The owner drains concurrently with the thieves.
    Taken[T] = 1;
    Count.fetch_add(1, std::memory_order_relaxed);
  }
  for (std::thread &Th : Thieves)
    Th.join();

  EXPECT_EQ(Count.load(), NumTasks);
  for (size_t I = 0; I < NumTasks; ++I)
    EXPECT_EQ(Taken[I], 1) << "task " << I << " never delivered";
}

TEST(StripedSet, InsertReportsFirstInsertionOnly) {
  parallel::StripedSet S;
  EXPECT_TRUE(S.insert("a"));
  EXPECT_FALSE(S.insert("a"));
  EXPECT_TRUE(S.insert("b"));
  EXPECT_TRUE(S.contains("a"));
  EXPECT_FALSE(S.contains("c"));
  EXPECT_EQ(S.size(), 2u);
}

TEST(StripedSet, ConcurrentInsertersAgreeOnOneWinnerPerKey) {
  parallel::StripedSet S;
  constexpr size_t NumKeys = 2000;
  constexpr size_t NumThreads = 4;
  std::atomic<size_t> Wins{0};
  std::vector<std::thread> Threads;
  for (size_t I = 0; I < NumThreads; ++I)
    Threads.emplace_back([&] {
      for (size_t K = 0; K < NumKeys; ++K)
        if (S.insert("key-" + std::to_string(K)))
          Wins.fetch_add(1, std::memory_order_relaxed);
    });
  for (std::thread &T : Threads)
    T.join();
  // Every key has exactly one winning inserter across all threads.
  EXPECT_EQ(Wins.load(), NumKeys);
  EXPECT_EQ(S.size(), NumKeys);
}

TEST(WorkerPool, RunsEveryTaskExactlyOnceAcrossEpochs) {
  parallel::WorkerPool Pool(4);
  ASSERT_EQ(Pool.workers(), 4u);
  for (size_t Epoch = 0; Epoch < 3; ++Epoch) {
    const size_t NumTasks = 257; // Deliberately not a multiple of 4.
    std::vector<std::atomic<int>> Runs(NumTasks);
    for (auto &R : Runs)
      R.store(0);
    Pool.runEpoch(NumTasks, [&](size_t WorkerId, size_t Task) {
      EXPECT_LT(WorkerId, 4u);
      ASSERT_LT(Task, NumTasks);
      Runs[Task].fetch_add(1);
    });
    for (size_t I = 0; I < NumTasks; ++I)
      EXPECT_EQ(Runs[I].load(), 1) << "task " << I;
  }
  // An empty epoch is a no-op, not a hang.
  Pool.runEpoch(0, [&](size_t, size_t) { FAIL(); });
}

//===----------------------------------------------------------------------===//
// Parallel-vs-sequential differential over the whole registry
//===----------------------------------------------------------------------===//

/// Renders a trace step so failures show the first diverging decision.
std::string traceKey(const TraceStep &T) {
  const char *Kind = T.K == TraceStep::Kind::Skip     ? "skip"
                     : T.K == TraceStep::Kind::Extend ? "extend"
                                                      : "done";
  return std::string(Kind) + "/" + std::to_string(T.WpCount) + " " +
         detail::formulaKey(T.Psi);
}

CheckResult runStudy(const parsers::CaseStudy &Study, size_t Jobs,
                     smt::BitBlastSolver &Solver, size_t MaxIterations) {
  CheckOptions O;
  O.MaxIterations = MaxIterations;
  O.Solver = &Solver;
  O.Jobs = Jobs;
  O.RecordTrace = true;
  return checkLanguageEquivalence(Study.Left, Study.LeftStart, Study.Right,
                                  Study.RightStart, O);
}

/// Everything that must be bit-identical between the engines. SmtQueries
/// and the times are deliberately absent: the parallel phase answers some
/// queries the merge then re-derives under a grown premise set, so the
/// query *count* is schedule-dependent even though every decision is not.
void expectIdenticalDecisions(const char *Name, const CheckResult &Seq,
                              const CheckResult &Par) {
  EXPECT_EQ(Seq.V, Par.V) << Name << ": " << Seq.FailureReason << " vs "
                          << Par.FailureReason;
  EXPECT_EQ(Seq.FailureReason, Par.FailureReason) << Name;
  EXPECT_EQ(Seq.Stats.Iterations, Par.Stats.Iterations) << Name;
  EXPECT_EQ(Seq.Stats.Extends, Par.Stats.Extends) << Name;
  EXPECT_EQ(Seq.Stats.Skips, Par.Stats.Skips) << Name;
  EXPECT_EQ(Seq.Stats.FinalConjuncts, Par.Stats.FinalConjuncts) << Name;
  EXPECT_EQ(Seq.Stats.PeakFrontier, Par.Stats.PeakFrontier) << Name;
  EXPECT_EQ(Seq.Stats.FormulaNodes, Par.Stats.FormulaNodes) << Name;

  ASSERT_EQ(Seq.Trace.size(), Par.Trace.size()) << Name;
  for (size_t I = 0; I < Seq.Trace.size(); ++I)
    ASSERT_EQ(traceKey(Seq.Trace[I]), traceKey(Par.Trace[I]))
        << Name << ": decision stream diverges at step " << I;

  // On Equivalent the certificates carry the relation; compare it
  // conjunct-by-conjunct with *uncanonicalized* keys — the stored
  // variable names are semantically load-bearing (a WP child discharges
  // against its parent through shared names), so they must match too.
  ASSERT_EQ(Seq.Certificate.Relation.size(), Par.Certificate.Relation.size())
      << Name;
  for (size_t I = 0; I < Seq.Certificate.Relation.size(); ++I)
    ASSERT_EQ(detail::formulaKey(Seq.Certificate.Relation[I]),
              detail::formulaKey(Par.Certificate.Relation[I]))
        << Name << ": relation diverges at conjunct " << I;
}

/// One registry study per test instance: sequential baseline, then
/// jobs=2 and jobs=4 against it. A modest iteration cap keeps the
/// applicability self-comparisons affordable while still diffing
/// hundreds of live decisions per study; ResourceLimit runs compare
/// exactly like completed ones (same trace prefix, same failure text).
class ParallelDifferential : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelDifferential, DecisionsMatchSequential) {
  std::vector<parsers::CaseStudy> Studies = parsers::allCaseStudies();
  ASSERT_LT(GetParam(), Studies.size());
  const parsers::CaseStudy &Study = Studies[GetParam()];
  const size_t MaxIterations = 300;

  smt::BitBlastSolver SeqSolver;
  CheckResult Seq = runStudy(Study, 1, SeqSolver, MaxIterations);

  for (size_t Jobs : {2u, 4u}) {
    smt::BitBlastSolver ParSolver;
    CheckResult Par = runStudy(Study, Jobs, ParSolver, MaxIterations);
    SCOPED_TRACE("jobs=" + std::to_string(Jobs));
    expectIdenticalDecisions(Study.Name.c_str(), Seq, Par);

    // The run really was work-sharded: workers opened their own sessions
    // and their stats were absorbed into the primary backend's record.
    if (Par.Stats.SmtQueries > 0) {
      EXPECT_GT(ParSolver.stats().SessionsOpened, 0u) << Study.Name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Registry, ParallelDifferential,
                         ::testing::Range<size_t>(0, 10));

//===----------------------------------------------------------------------===//
// Determinism and fallback
//===----------------------------------------------------------------------===//

TEST(ParallelChecker, RepeatedRunsAreIdentical) {
  std::vector<parsers::CaseStudy> Studies = parsers::allCaseStudies();
  const parsers::CaseStudy &Study = Studies[0]; // State Rearrangement.
  smt::BitBlastSolver S1, S2;
  CheckResult A = runStudy(Study, 3, S1, 300);
  CheckResult B = runStudy(Study, 3, S2, 300);
  expectIdenticalDecisions(Study.Name.c_str(), A, B);
}

/// A backend that cannot spawn workers: Jobs > 1 must silently fall back
/// to the sequential loop (which poses every query to this instance)
/// rather than crash or ignore the custom backend.
class NoSpawnSolver : public smt::SmtSolver {
public:
  smt::SatResult checkSat(const smt::BvFormulaRef &F,
                          smt::Model *M) override {
    return Inner.checkSat(F, M);
  }

private:
  smt::BitBlastSolver Inner;
};

TEST(ParallelChecker, BackendWithoutWorkersFallsBackToSequential) {
  std::vector<parsers::CaseStudy> Studies = parsers::allCaseStudies();
  const parsers::CaseStudy &Study = Studies[2]; // Header initialization.

  smt::BitBlastSolver Baseline;
  CheckResult Seq = runStudy(Study, 1, Baseline, 300);

  NoSpawnSolver Custom;
  CheckOptions O;
  O.MaxIterations = 300;
  O.Solver = &Custom;
  O.Jobs = 4;
  O.RecordTrace = true;
  CheckResult Par = checkLanguageEquivalence(
      Study.Left, Study.LeftStart, Study.Right, Study.RightStart, O);

  expectIdenticalDecisions(Study.Name.c_str(), Seq, Par);
  // The custom backend answered the queries itself — the fallback did
  // not quietly swap in internal BitBlastSolvers. (Its own Queries
  // counter stays zero because checkSat delegates, but the sessions the
  // sequential loop opened on it are its.)
  EXPECT_GT(Custom.stats().SessionQueries, 0u);
}

/// Session limits apply per worker: a cap small enough to trip the
/// unlimited run's peak must trip restarts in some worker, and the
/// decisions still match the unlimited parallel run.
TEST(ParallelChecker, SessionLimitsApplyPerWorker) {
  std::vector<parsers::CaseStudy> Studies = parsers::allCaseStudies();
  const parsers::CaseStudy &Study = Studies[3]; // Speculative loop.

  smt::BitBlastSolver Unlimited, Limited;
  CheckOptions O;
  O.MaxIterations = 300;
  O.Jobs = 2;
  O.RecordTrace = true;
  O.Solver = &Unlimited;
  CheckResult A = checkLanguageEquivalence(
      Study.Left, Study.LeftStart, Study.Right, Study.RightStart, O);

  O.Solver = &Limited;
  O.Limits.MaxLearnts = 4;
  CheckResult B = checkLanguageEquivalence(
      Study.Left, Study.LeftStart, Study.Right, Study.RightStart, O);

  expectIdenticalDecisions(Study.Name.c_str(), A, B);
  if (Unlimited.stats().PeakLearnts > O.Limits.MaxLearnts) {
    EXPECT_GT(Limited.stats().SessionRestarts, 0u);
  }
}

} // namespace
