//===- SchedulerTest.cpp - Scheduler-adversarial pipelining battery -------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The pipelined engine makes three promises the barrier engine never had
// to: (1) a generation's merge re-derives the exact sequential decision
// stream while the *next* generation is already being decided against a
// frozen premise prefix; (2) entailment-query batching folds adjacent
// same-template-pair goals into shared solver round-trips without moving
// a single decision; (3) every schedule knob (Jobs, Pipeline, Chunk,
// GoalBatch) is performance-only. This battery attacks those promises:
//
//  - a pipelined-vs-sequential differential over every registry study
//    AND every corpus pair at jobs ∈ {2, 4}, comparing verdict, failure
//    text, stats, the full decision stream, the relation conjunct by
//    conjunct, and the *serialized certificate bytes* (relation
//    certificates are schedule-independent by construction; proof-slice
//    streams at jobs ≥ 2 are legitimately schedule-dependent and are
//    serialized separately, so they are not compared here);
//
//  - a throttled-worker run that provably overlaps merge and decide —
//    and pins that the parallel.overlap_micros counter sees it while
//    barrier mode records the same work as pure stall;
//
//  - batched-vs-unbatched differentials pinning that RoundTrips (the
//    physical solve-call counter) strictly drops while every decision
//    byte stays put — on the in-repo bit-blaster and, for the ≥30%
//    acceptance bar, on the external SMT-LIB shim;
//
//  - a seeded schedule-perturbation fuzz over the full knob product,
//    scaled 100x by the nightly LEAPFROG_FUZZ_ITERS setting.
//
//===----------------------------------------------------------------------===//

#include "FuzzSupport.h"
#include "core/CertificateIo.h"
#include "core/Checker.h"
#include "core/FrontierKey.h"
#include "frontend/Elaborate.h"
#include "frontend/Text.h"
#include "obs/Metrics.h"
#include "parsers/CaseStudies.h"
#include "smt/SmtLibSolver.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace leapfrog;
using namespace leapfrog::core;

namespace {

//===----------------------------------------------------------------------===//
// Shared comparison helpers (ParallelTest's idiom, plus certificate bytes)
//===----------------------------------------------------------------------===//

std::string traceKey(const TraceStep &T) {
  const char *Kind = T.K == TraceStep::Kind::Skip     ? "skip"
                     : T.K == TraceStep::Kind::Extend ? "extend"
                                                      : "done";
  return std::string(Kind) + "/" + std::to_string(T.WpCount) + " " +
         detail::formulaKey(T.Psi);
}

/// Everything that must be bit-identical across schedules. SmtQueries and
/// the times are deliberately absent: batching and pipelining change how
/// many physical queries answer the same decisions.
void expectIdenticalDecisions(const std::string &Name, const CheckResult &A,
                              const CheckResult &B) {
  EXPECT_EQ(A.V, B.V) << Name << ": " << A.FailureReason << " vs "
                      << B.FailureReason;
  EXPECT_EQ(A.FailureReason, B.FailureReason) << Name;
  EXPECT_EQ(A.Stats.Iterations, B.Stats.Iterations) << Name;
  EXPECT_EQ(A.Stats.Extends, B.Stats.Extends) << Name;
  EXPECT_EQ(A.Stats.Skips, B.Stats.Skips) << Name;
  EXPECT_EQ(A.Stats.FinalConjuncts, B.Stats.FinalConjuncts) << Name;
  EXPECT_EQ(A.Stats.PeakFrontier, B.Stats.PeakFrontier) << Name;
  EXPECT_EQ(A.Stats.FormulaNodes, B.Stats.FormulaNodes) << Name;

  ASSERT_EQ(A.Trace.size(), B.Trace.size()) << Name;
  for (size_t I = 0; I < A.Trace.size(); ++I)
    ASSERT_EQ(traceKey(A.Trace[I]), traceKey(B.Trace[I]))
        << Name << ": decision stream diverges at step " << I;

  ASSERT_EQ(A.Certificate.Relation.size(), B.Certificate.Relation.size())
      << Name;
  for (size_t I = 0; I < A.Certificate.Relation.size(); ++I)
    ASSERT_EQ(detail::formulaKey(A.Certificate.Relation[I]),
              detail::formulaKey(B.Certificate.Relation[I]))
        << Name << ": relation diverges at conjunct " << I;
}

/// The serialized relation certificate — byte-for-byte. Proof streams are
/// deliberately not captured here (jobs ≥ 2 slices are schedule-dependent
/// and concatenated in worker order); the relation text is the
/// schedule-independent artifact.
std::string certBytes(const p4a::Automaton &L, const p4a::Automaton &R,
                      const CheckResult &Res) {
  return serializeCertificate(L, R, Res.Certificate, nullptr, "");
}

struct RunConfig {
  size_t Jobs = 1;
  bool Pipeline = true;
  size_t Chunk = 0;
  size_t GoalBatch = 1;
  size_t MaxIterations = 300;
};

CheckResult runPair(const p4a::Automaton &L, const std::string &LS,
                    const p4a::Automaton &R, const std::string &RS,
                    smt::SmtSolver &Solver, const RunConfig &C) {
  CheckOptions O;
  O.MaxIterations = C.MaxIterations;
  O.Solver = &Solver;
  O.Jobs = C.Jobs;
  O.Pipeline = C.Pipeline;
  O.Chunk = C.Chunk;
  O.GoalBatch = C.GoalBatch;
  O.RecordTrace = true;
  return checkLanguageEquivalence(L, LS, R, RS, O);
}

CheckResult runStudy(const parsers::CaseStudy &S, smt::SmtSolver &Solver,
                     const RunConfig &C) {
  return runPair(S.Left, S.LeftStart, S.Right, S.RightStart, Solver, C);
}

//===----------------------------------------------------------------------===//
// Registry differential: pipelined, barrier, batched — all vs sequential
//===----------------------------------------------------------------------===//

class PipelinedDifferential : public ::testing::TestWithParam<size_t> {};

TEST_P(PipelinedDifferential, SchedulesMatchSequential) {
  std::vector<parsers::CaseStudy> Studies = parsers::allCaseStudies();
  ASSERT_LT(GetParam(), Studies.size());
  const parsers::CaseStudy &Study = Studies[GetParam()];

  smt::BitBlastSolver SeqSolver;
  RunConfig Seq;
  CheckResult Baseline = runStudy(Study, SeqSolver, Seq);
  std::string BaselineCert;
  if (Baseline.equivalent())
    BaselineCert = certBytes(Study.Left, Study.Right, Baseline);

  struct Variant {
    const char *Tag;
    RunConfig C;
  } Variants[] = {
      {"jobs=2 pipelined", {2, true, 0, 1, 300}},
      {"jobs=4 pipelined", {4, true, 0, 1, 300}},
      {"jobs=2 barrier", {2, false, 0, 1, 300}},
      {"jobs=2 pipelined chunk=3", {2, true, 3, 1, 300}},
      {"jobs=2 pipelined goal-batch=8", {2, true, 0, 8, 300}},
  };
  for (const Variant &V : Variants) {
    SCOPED_TRACE(V.Tag);
    smt::BitBlastSolver Solver;
    CheckResult Res = runStudy(Study, Solver, V.C);
    expectIdenticalDecisions(Study.Name, Baseline, Res);
    if (Baseline.equivalent()) {
      EXPECT_EQ(BaselineCert, certBytes(Study.Left, Study.Right, Res))
          << Study.Name << ": certificate bytes diverge (" << V.Tag << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Registry, PipelinedDifferential,
                         ::testing::Range<size_t>(0, 10));

//===----------------------------------------------------------------------===//
// Corpus differential: every .lfp pair through the pipelined schedules
//===----------------------------------------------------------------------===//

std::string corpusDir() {
  const char *Env = std::getenv("LEAPFROG_CORPUS_DIR");
  return Env && *Env ? Env : "";
}

/// Must match tools/corpus-gen.cpp (and CorpusTest), which name the files.
std::string slugify(const std::string &Name) {
  std::string Slug;
  for (char C : Name) {
    if (std::isalnum(static_cast<unsigned char>(C)))
      Slug += char(std::tolower(static_cast<unsigned char>(C)));
    else if (!Slug.empty() && Slug.back() != '_')
      Slug += '_';
  }
  while (!Slug.empty() && Slug.back() == '_')
    Slug.pop_back();
  return Slug;
}

frontend::ElaborationResult loadLfp(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot read " << Path;
  std::ostringstream Ss;
  Ss << In.rdbuf();
  frontend::TextParseResult Parsed = frontend::parseSurface(Ss.str());
  for (const std::string &E : Parsed.Errors)
    ADD_FAILURE() << Path << ":" << E;
  frontend::ElaborationResult Elab = frontend::elaborate(Parsed.Program);
  for (const std::string &E : Elab.Errors)
    ADD_FAILURE() << Path << ": " << E;
  return Elab;
}

/// The 20 corpus pairs: the 10 registry twin pairs (left vs right file)
/// plus the 5 protocol studies' opt and bug comparisons.
struct CorpusPair {
  std::string Name;
  std::string LeftFile, RightFile;
  size_t MaxIterations;
};

std::vector<CorpusPair> corpusPairs() {
  std::vector<CorpusPair> Pairs;
  for (const parsers::CaseStudy &S : parsers::allCaseStudies()) {
    std::string Slug = slugify(S.Name);
    // The registry twins mirror the registry studies; the same modest
    // iteration cap keeps the applicability self-comparisons affordable
    // (a ResourceLimit run diffs exactly like a completed one).
    Pairs.push_back(
        {Slug, Slug + "_left.lfp", Slug + "_right.lfp", 300});
  }
  for (const char *Stem :
       {"ipv6_chain", "vlan_qinq", "tunnel", "quic_varint", "tlv_fanin"}) {
    Pairs.push_back({std::string(Stem) + "_opt", std::string(Stem) + ".lfp",
                     std::string(Stem) + "_opt.lfp", 20000});
    Pairs.push_back({std::string(Stem) + "_bug", std::string(Stem) + ".lfp",
                     std::string(Stem) + "_bug.lfp", 20000});
  }
  return Pairs;
}

class CorpusScheduling : public ::testing::TestWithParam<size_t> {};

TEST_P(CorpusScheduling, PipelinedMatchesSequential) {
  std::string Dir = corpusDir();
  if (Dir.empty())
    GTEST_SKIP() << "LEAPFROG_CORPUS_DIR not set (run under ctest)";
  std::vector<CorpusPair> Pairs = corpusPairs();
  ASSERT_LT(GetParam(), Pairs.size());
  const CorpusPair &P = Pairs[GetParam()];

  frontend::ElaborationResult L = loadLfp(Dir + "/" + P.LeftFile);
  frontend::ElaborationResult R = loadLfp(Dir + "/" + P.RightFile);
  ASSERT_TRUE(L.ok() && R.ok());

  RunConfig Seq;
  Seq.MaxIterations = P.MaxIterations;
  smt::BitBlastSolver SeqSolver;
  CheckResult Baseline = runPair(L.Aut, L.Entry, R.Aut, R.Entry, SeqSolver, Seq);
  std::string BaselineCert;
  if (Baseline.equivalent())
    BaselineCert = certBytes(L.Aut, R.Aut, Baseline);

  for (size_t Jobs : {2u, 4u}) {
    SCOPED_TRACE("jobs=" + std::to_string(Jobs));
    RunConfig C;
    C.Jobs = Jobs;
    C.MaxIterations = P.MaxIterations;
    // Batch on the wider run so the corpus also exercises the parallel
    // unit-batching path, not just the plain pipelined one.
    C.GoalBatch = Jobs == 4 ? 4 : 1;
    smt::BitBlastSolver Solver;
    CheckResult Res = runPair(L.Aut, L.Entry, R.Aut, R.Entry, Solver, C);
    expectIdenticalDecisions(P.Name, Baseline, Res);
    if (Baseline.equivalent()) {
      EXPECT_EQ(BaselineCert, certBytes(L.Aut, R.Aut, Res))
          << P.Name << ": certificate bytes diverge at jobs=" << Jobs;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, CorpusScheduling,
                         ::testing::Range<size_t>(0, 20),
                         [](const ::testing::TestParamInfo<size_t> &Info) {
                           return corpusPairs()[Info.param].Name;
                         });

//===----------------------------------------------------------------------===//
// Merge/decide overlap: throttled workers force the pipeline to show
//===----------------------------------------------------------------------===//

/// Wraps a session so every query dwells long enough for the merge of the
/// previous chunk to run entirely inside the epoch. The shared budget
/// bounds total added latency.
class ThrottledSession : public smt::SmtSolver::IncrementalSession {
public:
  ThrottledSession(std::unique_ptr<IncrementalSession> Inner,
                   std::atomic<int> *Budget)
      : Inner(std::move(Inner)), Budget(Budget) {}

  void assertPremise(const smt::BvFormulaRef &F) override {
    Inner->assertPremise(F);
  }
  smt::SatResult checkSatUnderPremises(const smt::BvFormulaRef &Goal,
                                       smt::Model *M) override {
    dwell();
    return Inner->checkSatUnderPremises(Goal, M);
  }
  void checkSatBatch(const std::vector<smt::BvFormulaRef> &Goals,
                     std::vector<smt::SatResult> &Out) override {
    dwell();
    Inner->checkSatBatch(Goals, Out);
  }

private:
  void dwell() {
    if (Budget->fetch_add(-1) > 0)
      std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  std::unique_ptr<IncrementalSession> Inner;
  std::atomic<int> *Budget;
};

/// A bit-blaster whose *workers* are slow: the primary (merge-side)
/// sessions run at full speed, so any overlap the counters report really
/// is merge work racing decide work, not a throttled merge.
class SlowWorkerSolver : public smt::BitBlastSolver {
public:
  explicit SlowWorkerSolver(std::atomic<int> *Budget, bool Throttled = false)
      : Budget(Budget), Throttled(Throttled) {}

  std::unique_ptr<IncrementalSession>
  openSession(const smt::SessionLimits &Limits) override {
    auto Inner = smt::BitBlastSolver::openSession(Limits);
    if (!Throttled)
      return Inner;
    return std::make_unique<ThrottledSession>(std::move(Inner), Budget);
  }
  using smt::SmtSolver::openSession;

  std::unique_ptr<smt::SmtSolver> spawnWorker() override {
    return std::make_unique<SlowWorkerSolver>(Budget, /*Throttled=*/true);
  }

private:
  std::atomic<int> *Budget;
  bool Throttled;
};

TEST(PipelineOverlap, MergeRunsWhileNextChunkDecides) {
  std::vector<parsers::CaseStudy> Studies = parsers::allCaseStudies();
  const parsers::CaseStudy &Study = Studies[3]; // Speculative loop.

  smt::BitBlastSolver Plain;
  RunConfig Seq;
  CheckResult Baseline = runStudy(Study, Plain, Seq);

  // Pipelined: chunk size 1 maximizes chunk count, the 500µs dwell keeps
  // every next-chunk epoch in flight across the previous chunk's merge,
  // and the overlap counter must see it.
  uint64_t Overlap0 =
      obs::metrics().snapshot().counter("parallel.overlap_micros");
  uint64_t Epochs0 = obs::metrics().snapshot().counter("parallel.epochs");
  std::atomic<int> Budget{2000};
  {
    SlowWorkerSolver S(&Budget);
    RunConfig C;
    C.Jobs = 2;
    C.Chunk = 1;
    CheckResult Res = runStudy(Study, S, C);
    expectIdenticalDecisions(Study.Name, Baseline, Res);
  }
  uint64_t Overlap1 =
      obs::metrics().snapshot().counter("parallel.overlap_micros");
  uint64_t Epochs1 = obs::metrics().snapshot().counter("parallel.epochs");
  EXPECT_GT(Epochs1, Epochs0) << "pipelined run posted no epochs";
  EXPECT_GT(Overlap1, Overlap0)
      << "merge and decide never overlapped under a throttled worker — "
         "the skip-ahead launch is not happening";

  // Barrier mode on the same workload: merge time is pure stall, the
  // overlap counter must not move (the pin that barrier accounting stays
  // honest rather than flattering).
  uint64_t Stall0 =
      obs::metrics().snapshot().counter("parallel.merge_stall_micros");
  Budget.store(2000);
  {
    SlowWorkerSolver S(&Budget);
    RunConfig C;
    C.Jobs = 2;
    C.Chunk = 1;
    C.Pipeline = false;
    CheckResult Res = runStudy(Study, S, C);
    expectIdenticalDecisions(Study.Name, Baseline, Res);
  }
  uint64_t Overlap2 =
      obs::metrics().snapshot().counter("parallel.overlap_micros");
  uint64_t Stall1 =
      obs::metrics().snapshot().counter("parallel.merge_stall_micros");
  EXPECT_EQ(Overlap2, Overlap1)
      << "barrier mode credited itself with overlap";
  EXPECT_GE(Stall1, Stall0);
}

//===----------------------------------------------------------------------===//
// Batching: identical decisions, strictly fewer physical round-trips
//===----------------------------------------------------------------------===//

TEST(BatchingDifferential, WindowedMatchesClassicAndCutsRoundTrips) {
  uint64_t Unbatched = 0, Batched = 0;
  for (const parsers::CaseStudy &Study : parsers::allCaseStudies()) {
    smt::BitBlastSolver A, B;
    RunConfig Plain;
    CheckResult ResA = runStudy(Study, A, Plain);
    RunConfig Windowed;
    Windowed.GoalBatch = 8;
    CheckResult ResB = runStudy(Study, B, Windowed);
    expectIdenticalDecisions(Study.Name, ResA, ResB);
    Unbatched += A.stats().RoundTrips;
    Batched += B.stats().RoundTrips;
  }
  // The aggregate pin: batching may locally re-query (a stale frozen
  // answer), but across the registry the shared round-trips must win
  // outright.
  RecordProperty("round_trips_unbatched", std::to_string(Unbatched));
  RecordProperty("round_trips_batched", std::to_string(Batched));
  EXPECT_LT(Batched, Unbatched);
}

TEST(BatchingDifferential, ParallelBatchingMatchesAndCutsRoundTrips) {
  uint64_t Unbatched = 0, Batched = 0;
  for (const parsers::CaseStudy &Study : parsers::allCaseStudies()) {
    smt::BitBlastSolver A, B;
    RunConfig Plain;
    Plain.Jobs = 2;
    CheckResult ResA = runStudy(Study, A, Plain);
    RunConfig Unit;
    Unit.Jobs = 2;
    Unit.GoalBatch = 8;
    CheckResult ResB = runStudy(Study, B, Unit);
    expectIdenticalDecisions(Study.Name, ResA, ResB);
    Unbatched += A.stats().RoundTrips;
    Batched += B.stats().RoundTrips;
  }
  RecordProperty("round_trips_unbatched", std::to_string(Unbatched));
  RecordProperty("round_trips_batched", std::to_string(Batched));
  EXPECT_LT(Batched, Unbatched);
}

/// The acceptance bar: on the external SMT-LIB pipeline (where a
/// round-trip is a real wire exchange) batching must cut external
/// round-trips by at least 30% across the fast registry studies.
TEST(BatchingDifferential, ShimExternalRoundTripsDropThirtyPercent) {
  const char *Env = std::getenv("LEAPFROG_SMTLIB_SHIM");
  if (!Env || !*Env)
    GTEST_SKIP() << "LEAPFROG_SMTLIB_SHIM not set (run under ctest)";

  auto MakeSolver = [&] {
    smt::SmtLibConfig C;
    C.Argv = smt::SmtLibSolver::splitCommand(Env);
    C.QueryTimeoutMs = 20000;
    C.WarnOnFallback = false;
    return std::make_unique<smt::SmtLibSolver>(C);
  };
  // One probe so a broken shim skips rather than mis-measures fallbacks.
  {
    auto Probe = MakeSolver();
    smt::BvTermRef X = smt::BvTerm::mkVar("probe", 2);
    (void)Probe->checkSat(smt::BvFormula::mkEq(X, X), nullptr);
    if (Probe->extStats().ExternalQueries != 1)
      GTEST_SKIP() << "shim not runnable";
  }

  std::string Dir = corpusDir();
  if (Dir.empty())
    GTEST_SKIP() << "LEAPFROG_CORPUS_DIR not set (run under ctest)";

  // The acceptance workload: skip-heavy protocol pairs, run to
  // completion. Batching folds entailed (Skip) goals of one guard into
  // shared check-sat rounds, so the drop scales with the Skip fraction
  // and the same-guard frontier density — tlv_fanin is built to maximize
  // both (fourteen option states merging into one), and the chain-shaped
  // pairs ride along to keep the number from resting on a single parser
  // shape. Extend-heavy pairs (the capped registry twins, edge/
  // datacenter) are covered by WindowedMatchesClassicAndCutsRoundTrips
  // above: batching still wins there, but no fixed percentage is honest.
  uint64_t Unbatched = 0, Batched = 0;
  for (const char *Stem : {"tlv_fanin", "ipv6_chain", "quic_varint"}) {
    std::string Name(Stem);
    frontend::ElaborationResult L = loadLfp(Dir + "/" + Name + ".lfp");
    frontend::ElaborationResult R = loadLfp(Dir + "/" + Name + "_opt.lfp");
    ASSERT_TRUE(L.ok() && R.ok());
    auto A = MakeSolver();
    auto B = MakeSolver();
    RunConfig Plain;
    Plain.MaxIterations = 20000;
    CheckResult ResA = runPair(L.Aut, L.Entry, R.Aut, R.Entry, *A, Plain);
    RunConfig Windowed;
    Windowed.MaxIterations = 20000;
    Windowed.GoalBatch = 8;
    CheckResult ResB = runPair(L.Aut, L.Entry, R.Aut, R.Entry, *B, Windowed);
    expectIdenticalDecisions(Name, ResA, ResB);
    EXPECT_EQ(A->extStats().FallbackQueries, 0u) << Name;
    EXPECT_EQ(B->extStats().FallbackQueries, 0u) << Name;
    Unbatched += A->stats().RoundTrips;
    Batched += B->stats().RoundTrips;
  }
  RecordProperty("round_trips_unbatched", std::to_string(Unbatched));
  RecordProperty("round_trips_batched", std::to_string(Batched));
  ASSERT_GT(Unbatched, 0u);
  EXPECT_LE(Batched * 10, Unbatched * 7)
      << "batched external round-trips (" << Batched
      << ") did not drop >=30% vs unbatched (" << Unbatched << ")";
}

//===----------------------------------------------------------------------===//
// Seeded schedule-perturbation fuzz (nightly runs it 100x deeper)
//===----------------------------------------------------------------------===//

struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed * 0x9e3779b97f4a7c15ull + 1) {}
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
  size_t below(size_t N) { return size_t(next() % N); }
};

TEST(ScheduleFuzz, PerturbedSchedulesMatchSequential) {
  const uint64_t Seed = 0x5EEDC0DE;
  int Iters = leapfrog::testing::fuzzIters(8);
  leapfrog::testing::reportFuzzConfig("ScheduleFuzz", Iters, Seed);

  std::vector<parsers::CaseStudy> Studies = parsers::allCaseStudies();
  const size_t Cap = 150;
  std::map<size_t, CheckResult> Baselines;
  Rng R(Seed);
  for (int I = 0; I < Iters; ++I) {
    size_t Idx = R.below(Studies.size());
    const parsers::CaseStudy &Study = Studies[Idx];
    if (!Baselines.count(Idx)) {
      smt::BitBlastSolver S;
      RunConfig Seq;
      Seq.MaxIterations = Cap;
      Baselines.emplace(Idx, runStudy(Study, S, Seq));
    }

    RunConfig C;
    C.MaxIterations = Cap;
    C.Jobs = 1 + R.below(4);        // 1..4 (1 exercises window batching).
    C.Pipeline = R.below(2) == 0;   // Pipelined and barrier alike.
    C.Chunk = 1 + R.below(40);      // Adversarial epoch boundaries.
    C.GoalBatch = 1 + R.below(8);   // 1..8 goals per shared round-trip.
    // Every fourth schedule also swaps in a portfolio backend — racing
    // legs must be as decision-invisible as the schedule knobs. The shim
    // leg joins when the env provides it (the nightly fuzz entry does).
    std::string Backend;
    if (R.below(4) == 0) {
      const char *Shim = std::getenv("LEAPFROG_SMTLIB_SHIM");
      Backend = Shim && *Shim && R.below(2) == 0
                    ? std::string("portfolio:bitblast,smtlib:") + Shim
                    : std::string("portfolio:bitblast,bitblast");
    }
    SCOPED_TRACE("iter " + std::to_string(I) + ": " + Study.Name +
                 " jobs=" + std::to_string(C.Jobs) +
                 " pipeline=" + std::to_string(C.Pipeline) +
                 " chunk=" + std::to_string(C.Chunk) +
                 " goal-batch=" + std::to_string(C.GoalBatch) +
                 (Backend.empty() ? "" : " backend=" + Backend));
    std::unique_ptr<smt::SmtSolver> Racing;
    smt::BitBlastSolver Plain;
    smt::SmtSolver *S = &Plain;
    if (!Backend.empty()) {
      std::string Err;
      Racing = smt::createSolverBackend(Backend, &Err);
      ASSERT_NE(Racing, nullptr) << Err;
      S = Racing.get();
    }
    CheckResult Res = runStudy(Study, *S, C);
    expectIdenticalDecisions(Study.Name, Baselines.at(Idx), Res);
  }
}

} // namespace
