//===- CheckerTest.cpp - End-to-end equivalence checker tests -------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates Algorithm 1 end to end: the utility case studies of §7.1 (on
/// the real parsers), hand-built toy automata cross-checked against the
/// concrete Hopcroft–Karp oracle, deliberate inequivalences (the paper's
/// §7.1 "sanity check"), and a parameterized sweep over all optimization
/// configurations (leaps × reachability, §5.3) asserting identical
/// verdicts.
///
//===----------------------------------------------------------------------===//

#include "core/Checker.h"

#include "p4a/Concrete.h"
#include "p4a/Parser.h"
#include "p4a/Typing.h"
#include "parsers/CaseStudies.h"

#include "FuzzSupport.h"

#include <gtest/gtest.h>

using namespace leapfrog;
using namespace leapfrog::core;

namespace {

CheckOptions fastOptions() {
  CheckOptions O;
  O.MaxIterations = 1u << 16;
  return O;
}

/// Runs both the symbolic checker and the concrete oracle and asserts
/// they agree; returns the symbolic verdict.
bool checkAgainstOracle(const p4a::Automaton &L, const std::string &QL,
                        const p4a::Automaton &R, const std::string &QR,
                        const CheckOptions &Options = fastOptions()) {
  CheckResult Res = checkLanguageEquivalence(L, QL, R, QR, Options);
  EXPECT_NE(Res.V, Verdict::ResourceLimit) << Res.FailureReason;
  bool Oracle = p4a::concrete::stateEquivAllStores(
      L, p4a::StateRef::normal(*L.findState(QL)), R,
      p4a::StateRef::normal(*R.findState(QR)));
  EXPECT_EQ(Res.equivalent(), Oracle)
      << "symbolic checker disagrees with concrete oracle: "
      << Res.FailureReason;
  return Res.equivalent();
}

//===----------------------------------------------------------------------===//
// Paper case studies (§7.1)
//===----------------------------------------------------------------------===//

TEST(CheckerCaseStudies, SpeculativeLoopMpls) {
  // Figure 1: the running example. Too many store bits for the oracle;
  // the verdict is validated by the paper and by certificate replay.
  p4a::Automaton L = parsers::mplsReference();
  p4a::Automaton R = parsers::mplsVectorized();
  CheckResult Res = checkLanguageEquivalence(L, "q1", R, "q3");
  EXPECT_TRUE(Res.equivalent()) << Res.FailureReason;
  EXPECT_GT(Res.Stats.FinalConjuncts, 0u);
}

TEST(CheckerCaseStudies, StateRearrangement) {
  p4a::Automaton L = parsers::rearrangeReference();
  p4a::Automaton R = parsers::rearrangeCombined();
  CheckResult Res =
      checkLanguageEquivalence(L, "parse_ip", R, "parse_combined");
  EXPECT_TRUE(Res.equivalent()) << Res.FailureReason;
}

TEST(CheckerCaseStudies, HeaderInitializationSelfEquivalence) {
  // Self-comparison with independently chosen initial stores proves the
  // accepted language does not depend on uninitialized headers.
  p4a::Automaton P = parsers::vlanParser();
  p4a::Automaton P2 = parsers::vlanParser();
  CheckResult Res = checkLanguageEquivalence(P, "parse_eth", P2, "parse_eth");
  EXPECT_TRUE(Res.equivalent()) << Res.FailureReason;
}

TEST(CheckerCaseStudies, HeaderInitializationCatchesBug) {
  // The buggy variant branches on the uninitialized vlan header on the
  // default path, so acceptance depends on the initial store and the
  // self-comparison must fail.
  p4a::Automaton P = parsers::vlanParserBuggy();
  p4a::Automaton P2 = parsers::vlanParserBuggy();
  CheckResult Res = checkLanguageEquivalence(P, "parse_eth", P2, "parse_eth");
  EXPECT_EQ(Res.V, Verdict::NotEquivalent) << "uninitialized-header bug "
                                              "was not detected";
}

TEST(CheckerCaseStudies, SloppyVsStrictNotEquivalent) {
  // The paper's sanity check: inequivalent parsers must not be "proved".
  // The proof search must terminate and fail at the final (Done) check.
  p4a::Automaton L = parsers::sloppyEthernetIp();
  p4a::Automaton R = parsers::strictEthernetIp();
  CheckResult Res = checkLanguageEquivalence(L, "parse_eth", R, "parse_eth");
  EXPECT_EQ(Res.V, Verdict::NotEquivalent);
  EXPECT_FALSE(Res.FailureReason.empty());
}

TEST(CheckerCaseStudies, ExternalFiltering) {
  // §7.1: the lenient parser composed with an external filter that drops
  // packets whose final Ethernet type is neither IPv4 nor IPv6 accepts
  // exactly the strict parser's packets. Acceptance on the sloppy side is
  // qualified by the filter predicate.
  p4a::Automaton L = parsers::sloppyEthernetIp();
  p4a::Automaton R = parsers::strictEthernetIp();

  auto TypeField = [](logic::Side S, const p4a::Automaton &Aut) {
    auto H = Aut.findHeader("ether");
    return logic::BitExpr::mkSlice(logic::BitExpr::mkHdr(S, *H), 96, 111);
  };
  auto LitV6 = logic::BitExpr::mkLit(Bitvector::fromUint(0x86dd, 16));
  auto LitV4 = logic::BitExpr::mkLit(Bitvector::fromUint(0x8600, 16));

  InitialSpec Spec = languageEquivalenceSpec(
      L, p4a::StateRef::normal(*L.findState("parse_eth")), R,
      p4a::StateRef::normal(*R.findState("parse_eth")));
  Spec.Mode = AcceptanceMode::Qualified;
  Spec.LeftQualifier = logic::Pure::mkOr(
      logic::Pure::mkEq(TypeField(logic::Side::Left, L), LitV6),
      logic::Pure::mkEq(TypeField(logic::Side::Left, L), LitV4));
  Spec.RightQualifier = logic::Pure::mkTrue();

  CheckResult Res = checkWithSpec(L, R, Spec);
  EXPECT_TRUE(Res.equivalent()) << Res.FailureReason;
}

TEST(CheckerCaseStudies, RelationalStoreCorrespondence) {
  // §7.1 relational verification: whenever sloppy and strict both accept,
  // their ether headers agree (custom initial relation; languages differ,
  // so Standard mode would refute).
  p4a::Automaton L = parsers::sloppyEthernetIp();
  p4a::Automaton R = parsers::strictEthernetIp();

  InitialSpec Spec = languageEquivalenceSpec(
      L, p4a::StateRef::normal(*L.findState("parse_eth")), R,
      p4a::StateRef::normal(*R.findState("parse_eth")));
  Spec.Mode = AcceptanceMode::Custom;
  logic::TemplatePair AccAcc{logic::Template::accept(),
                             logic::Template::accept()};
  auto HL = logic::BitExpr::mkHdr(logic::Side::Left, *L.findHeader("ether"));
  auto HR = logic::BitExpr::mkHdr(logic::Side::Right,
                                  *R.findHeader("ether"));
  Spec.ExtraInitial.push_back(
      logic::GuardedFormula{AccAcc, logic::Pure::mkEq(HL, HR)});

  CheckResult Res = checkWithSpec(L, R, Spec);
  EXPECT_TRUE(Res.equivalent()) << Res.FailureReason;
}

//===----------------------------------------------------------------------===//
// Toy automata cross-checked against the concrete oracle
//===----------------------------------------------------------------------===//

TEST(CheckerOracle, IdenticalTinyParsers) {
  const char *Src = R"(
    state s {
      extract(a, 2);
      select(a[0:0]) { 0 => accept  1 => reject }
    }
  )";
  p4a::Automaton L = p4a::parseAutomatonOrDie(Src);
  p4a::Automaton R = p4a::parseAutomatonOrDie(Src);
  EXPECT_TRUE(checkAgainstOracle(L, "s", R, "s"));
}

TEST(CheckerOracle, ChunkingDifference) {
  // One state reading 2 bits vs two states reading 1 bit each: equivalent
  // languages reached through different buffering.
  p4a::Automaton L = p4a::parseAutomatonOrDie(R"(
    state s { extract(a, 2); goto accept }
  )");
  p4a::Automaton R = p4a::parseAutomatonOrDie(R"(
    state t1 { extract(b, 1); goto t2 }
    state t2 { extract(c, 1); goto accept }
  )");
  EXPECT_TRUE(checkAgainstOracle(L, "s", R, "t1"));
}

TEST(CheckerOracle, AcceptVsReject) {
  p4a::Automaton L = p4a::parseAutomatonOrDie(R"(
    state s { extract(a, 1); goto accept }
  )");
  p4a::Automaton R = p4a::parseAutomatonOrDie(R"(
    state s { extract(a, 1); goto reject }
  )");
  EXPECT_FALSE(checkAgainstOracle(L, "s", R, "s"));
}

TEST(CheckerOracle, PatternOverlapFirstMatchWins) {
  // First-match semantics: the wildcard case below shadows nothing here,
  // but the second parser lists cases in the opposite order, changing the
  // language.
  p4a::Automaton L = p4a::parseAutomatonOrDie(R"(
    state s {
      extract(a, 2);
      select(a[0:1]) { 00 => accept  _ => reject }
    }
  )");
  p4a::Automaton R = p4a::parseAutomatonOrDie(R"(
    state s {
      extract(a, 2);
      select(a[0:1]) { _ => reject  00 => accept }
    }
  )");
  EXPECT_FALSE(checkAgainstOracle(L, "s", R, "s"));
}

TEST(CheckerOracle, AssignmentRewiring) {
  // The second parser stores the two packet bits in swapped headers but
  // branches on the swapped copy, accepting the same language.
  p4a::Automaton L = p4a::parseAutomatonOrDie(R"(
    state s {
      extract(a, 1);
      extract(b, 1);
      select(a[0:0]) { 0 => accept  1 => reject }
    }
  )");
  p4a::Automaton R = p4a::parseAutomatonOrDie(R"(
    header c : 2;
    state s {
      extract(b, 1);
      extract(a, 1);
      c := b ++ a;
      select(c[0:0]) { 0 => accept  1 => reject }
    }
  )");
  EXPECT_TRUE(checkAgainstOracle(L, "s", R, "s"));
}

TEST(CheckerOracle, LoopUnrolling) {
  // A 1-bit loop vs its 2-unrolled form; mirrors Figure 1 in miniature.
  p4a::Automaton L = p4a::parseAutomatonOrDie(R"(
    state s {
      extract(a, 1);
      select(a[0:0]) { 0 => s  1 => accept }
    }
  )");
  p4a::Automaton R = p4a::parseAutomatonOrDie(R"(
    state t {
      extract(a, 1);
      extract(b, 1);
      select(a[0:0], b[0:0]) {
        (0, 0) => t
        (0, 1) => accept
        (1, _) => u
      }
    }
    state u {
      extract(c, 1);
      goto accept
    }
  )");
  // Not equivalent: L accepts "1" (odd length) which R cannot accept at
  // that length... except R's (1,_) path accepts 1xc of length 3. L
  // accepts 0^k 1; R accepts even-prefixed forms only. The oracle decides.
  checkAgainstOracle(L, "s", R, "t");
}

//===----------------------------------------------------------------------===//
// Optimization sweep: all four configurations agree (§5.3)
//===----------------------------------------------------------------------===//

struct SweepCase {
  const char *Name;
  const char *LeftSrc;
  const char *LeftStart;
  const char *RightSrc;
  const char *RightStart;
};

class OptimizationSweep
    : public ::testing::TestWithParam<std::tuple<SweepCase, bool, bool>> {};

TEST_P(OptimizationSweep, VerdictMatchesOracle) {
  const auto &[Case, UseLeaps, UseReach] = GetParam();
  p4a::Automaton L = p4a::parseAutomatonOrDie(Case.LeftSrc);
  p4a::Automaton R = p4a::parseAutomatonOrDie(Case.RightSrc);
  CheckOptions O = fastOptions();
  O.UseLeaps = UseLeaps;
  O.UseReachability = UseReach;
  CheckResult Res =
      checkLanguageEquivalence(L, Case.LeftStart, R, Case.RightStart, O);
  ASSERT_NE(Res.V, Verdict::ResourceLimit) << Res.FailureReason;
  bool Oracle = p4a::concrete::stateEquivAllStores(
      L, p4a::StateRef::normal(*L.findState(Case.LeftStart)), R,
      p4a::StateRef::normal(*R.findState(Case.RightStart)));
  EXPECT_EQ(Res.equivalent(), Oracle) << Case.Name;
}

const SweepCase SweepCases[] = {
    {"chunking", "state s { extract(a, 2); goto accept }", "s",
     "state t1 { extract(b, 1); goto t2 }\n"
     "state t2 { extract(c, 1); goto accept }",
     "t1"},
    {"branch_equal",
     "state s { extract(a, 2); select(a[0:0]) { 0 => accept 1 => reject } }",
     "s",
     "state s { extract(a, 2); select(a[0:0]) { 1 => reject _ => accept } }",
     "s"},
    {"branch_diff",
     "state s { extract(a, 2); select(a[0:0]) { 0 => accept 1 => reject } }",
     "s",
     "state s { extract(a, 2); select(a[1:1]) { 0 => accept 1 => reject } }",
     "s"},
    {"assign_loop",
     "state s { extract(a, 1); select(a[0:0]) { 1 => accept 0 => s } }", "s",
     "header c : 1;\n"
     "state s { extract(b, 1); c := b; select(c[0:0]) { 0 => s 1 => accept "
     "} }",
     "s"},
    {"store_dependent",
     "state s { extract(a, 1); select(init[0:0]) { 0 => accept 1 => reject "
     "} }\nheader init : 1;",
     "s", "state s { extract(a, 1); goto accept }", "s"},
};

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, OptimizationSweep,
    ::testing::Combine(::testing::ValuesIn(SweepCases), ::testing::Bool(),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<OptimizationSweep::ParamType> &Info) {
      return std::string(std::get<0>(Info.param).Name) +
             (std::get<1>(Info.param) ? "_leaps" : "_bits") +
             (std::get<2>(Info.param) ? "_reach" : "_full");
    });

//===----------------------------------------------------------------------===//
// Randomized sweep against the oracle
//===----------------------------------------------------------------------===//

/// Deterministic xorshift generator so failures reproduce.
struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed * 2654435761u + 1) {}
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
  size_t below(size_t N) { return size_t(next() % N); }
};

/// Builds a random well-typed automaton with 1–3 states over 1–2 headers
/// of 1–2 bits. Small enough for the concrete oracle, rich enough to
/// exercise loops, selects and assignments.
p4a::Automaton randomAutomaton(Rng &R) {
  p4a::Automaton Aut;
  size_t NumHeaders = 1 + R.below(2);
  std::vector<p4a::HeaderId> Hs;
  for (size_t H = 0; H < NumHeaders; ++H)
    Hs.push_back(
        Aut.addHeader("h" + std::to_string(H), 1 + R.below(2)));
  size_t NumStates = 1 + R.below(3);
  std::vector<p4a::StateId> Qs;
  for (size_t Q = 0; Q < NumStates; ++Q)
    Qs.push_back(Aut.declareState("q" + std::to_string(Q)));

  auto RandomTarget = [&]() -> p4a::StateRef {
    size_t Pick = R.below(NumStates + 2);
    if (Pick < NumStates)
      return p4a::StateRef::normal(Qs[Pick]);
    return Pick == NumStates ? p4a::StateRef::accept()
                             : p4a::StateRef::reject();
  };

  for (size_t Q = 0; Q < NumStates; ++Q) {
    std::vector<p4a::Op> Ops;
    // At least one extract (⊢A).
    Ops.push_back(p4a::Op::extract(Hs[R.below(NumHeaders)]));
    if (R.below(2))
      Ops.push_back(p4a::Op::extract(Hs[R.below(NumHeaders)]));
    if (R.below(2)) {
      // Random width-correct assignment: target := slice of some header
      // padded with literal bits as needed.
      p4a::HeaderId Target = Hs[R.below(NumHeaders)];
      p4a::HeaderId Source = Hs[R.below(NumHeaders)];
      size_t TW = Aut.headerSize(Target);
      size_t SW = Aut.headerSize(Source);
      p4a::ExprRef E;
      if (SW >= TW) {
        E = p4a::Expr::mkSlice(p4a::Expr::mkHeader(Source), 0, TW - 1);
      } else {
        E = p4a::Expr::mkConcat(
            p4a::Expr::mkHeader(Source),
            p4a::Expr::mkLiteral(Bitvector(TW - SW)));
      }
      Ops.push_back(p4a::Op::assign(Target, E));
    }

    p4a::Transition Tz;
    if (R.below(3) == 0) {
      Tz = p4a::Transition::mkGoto(RandomTarget());
    } else {
      p4a::HeaderId D = Hs[R.below(NumHeaders)];
      auto Discr = p4a::Expr::mkSlice(p4a::Expr::mkHeader(D), 0, 0);
      std::vector<p4a::SelectCase> Cases;
      size_t NumCases = 1 + R.below(2);
      for (size_t I = 0; I < NumCases; ++I) {
        p4a::SelectCase C;
        C.Pats.push_back(R.below(3) == 0
                             ? p4a::Pattern::wildcard()
                             : p4a::Pattern::exact(
                                   Bitvector::fromUint(R.below(2), 1)));
        C.Target = RandomTarget();
        Cases.push_back(std::move(C));
      }
      Tz = p4a::Transition::mkSelect({Discr}, std::move(Cases));
    }
    Aut.setState(Qs[Q], std::move(Ops), std::move(Tz));
  }
  return Aut;
}

class RandomAutomataSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomAutomataSweep, AgreesWithOracle) {
  leapfrog::testing::reportFuzzConfig(
      "RandomAutomataSweep", leapfrog::testing::fuzzIters(60),
      uint64_t(GetParam()));
  Rng R{uint64_t(GetParam())};
  p4a::Automaton A = randomAutomaton(R);
  p4a::Automaton B = randomAutomaton(R);
  ASSERT_TRUE(p4a::isWellTyped(A));
  ASSERT_TRUE(p4a::isWellTyped(B));
  if (A.totalHeaderBits() + B.totalHeaderBits() > 8)
    GTEST_SKIP() << "oracle would enumerate too many stores";
  CheckResult Res = checkLanguageEquivalence(
      A, p4a::StateRef::normal(0), B, p4a::StateRef::normal(0),
      fastOptions());
  ASSERT_NE(Res.V, Verdict::ResourceLimit) << Res.FailureReason;
  bool Oracle = p4a::concrete::stateEquivAllStores(
      A, p4a::StateRef::normal(0), B, p4a::StateRef::normal(0));
  EXPECT_EQ(Res.equivalent(), Oracle)
      << "seed " << GetParam() << ": " << Res.FailureReason << "\nleft:\n"
      << A.print() << "right:\n"
      << B.print();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAutomataSweep,
                         ::testing::Range(0, leapfrog::testing::fuzzIters(60)));

//===----------------------------------------------------------------------===//
// Incremental vs monolithic entailment (differential over the registry)
//===----------------------------------------------------------------------===//

/// Every registered case study, run through the checker twice — once with
/// the incremental solver sessions (the default) and once with per-query
/// monolithic lowering — must take the identical Skip/Extend decision
/// sequence and reach the identical verdict. A modest iteration cap keeps
/// the applicability self-comparisons affordable while still diffing
/// hundreds of live entailment queries per study; with a shared cap,
/// identical decisions imply identical stats, so any divergence in a
/// single entailment answer is caught.
class IncrementalDifferential : public ::testing::TestWithParam<size_t> {};

TEST_P(IncrementalDifferential, DecisionsMatchMonolithic) {
  std::vector<parsers::CaseStudy> Studies = parsers::allCaseStudies();
  ASSERT_LT(GetParam(), Studies.size());
  const parsers::CaseStudy &Study = Studies[GetParam()];

  CheckOptions O;
  O.MaxIterations = 500;

  smt::BitBlastSolver IncrementalSolver, MonolithicSolver;
  O.Solver = &IncrementalSolver;
  O.UseIncremental = true;
  CheckResult Inc = checkLanguageEquivalence(
      Study.Left, Study.LeftStart, Study.Right, Study.RightStart, O);

  O.Solver = &MonolithicSolver;
  O.UseIncremental = false;
  CheckResult Mono = checkLanguageEquivalence(
      Study.Left, Study.LeftStart, Study.Right, Study.RightStart, O);

  EXPECT_EQ(Inc.V, Mono.V) << Study.Name << ": " << Inc.FailureReason
                           << " vs " << Mono.FailureReason;
  EXPECT_EQ(Inc.Stats.Iterations, Mono.Stats.Iterations) << Study.Name;
  EXPECT_EQ(Inc.Stats.Extends, Mono.Stats.Extends) << Study.Name;
  EXPECT_EQ(Inc.Stats.Skips, Mono.Stats.Skips) << Study.Name;
  EXPECT_EQ(Inc.Stats.FinalConjuncts, Mono.Stats.FinalConjuncts)
      << Study.Name;
  // The incremental run really went through sessions (unless every
  // entailment folded to a constant before reaching the solver).
  if (Inc.Stats.SmtQueries > 0) {
    EXPECT_GT(IncrementalSolver.stats().SessionQueries, 0u) << Study.Name;
  }
  EXPECT_EQ(MonolithicSolver.stats().SessionQueries, 0u) << Study.Name;
}

INSTANTIATE_TEST_SUITE_P(Registry, IncrementalDifferential,
                         ::testing::Range<size_t>(0, 10));

//===----------------------------------------------------------------------===//
// Frontier deduplication must use exact identity, not hashes
//===----------------------------------------------------------------------===//

TEST(CheckerDedup, HashCollisionPairsStayDistinct) {
  // Found by the deep run of RandomAutomataSweep (seed 4257): the
  // template pairs ⟨q0,2⟩·⟨q0,0⟩ and ⟨q0,3⟩·⟨q1,0⟩ collide under
  // TemplatePair::hash() (boost-style hashCombine cancels on correlated
  // small-int deltas). The frontier dedup key used to embed that hash,
  // so the WP chain propagating "false" back to the spec pair was
  // silently swallowed at the collision and the checker reported these
  // inequivalent parsers equivalent. The left parser accepts every
  // 6-bit word; the right one loops q0 ↔ q1 forever and accepts
  // nothing.
  using logic::Template;
  using logic::TemplatePair;
  TemplatePair A{Template{p4a::StateRef::normal(0), 2},
                 Template{p4a::StateRef::normal(0), 0}};
  TemplatePair B{Template{p4a::StateRef::normal(0), 3},
                 Template{p4a::StateRef::normal(1), 0}};
  ASSERT_FALSE(A == B);
  // The collision that triggered the bug. If a hash change makes these
  // distinct again, this assert goes first — replace the pair with a
  // fresh collision (search small K/Id/N combos) rather than deleting
  // the test: the property under test is that dedup survives *some*
  // collision, and the checker run below keeps proving that end to end.
  ASSERT_EQ(A.hash(), B.hash());

  p4a::Automaton L = p4a::parseAutomatonOrDie(R"(
    state q0 { extract(h0, 2); extract(h0, 2); h0 := h0[0:1]; goto q2 }
    state q1 { extract(h0, 2); extract(h0, 2); goto q2 }
    state q2 { extract(h0, 2); h0 := h0[0:1]; select(h0[0:0]) { _ => accept } }
  )");
  p4a::Automaton R = p4a::parseAutomatonOrDie(R"(
    state q0 { extract(h1, 1); h0 := h0[0:1]; goto q1 }
    state q1 { extract(h1, 1); select(h0[0:0]) { _ => q0 } }
    header h0 : 2;
  )");
  EXPECT_FALSE(checkAgainstOracle(L, "q0", R, "q0"));
}

//===----------------------------------------------------------------------===//
// Session-restart equivalence (bounded-memory sessions, differential)
//===----------------------------------------------------------------------===//

/// Every registered case study, run once with unlimited sessions and once
/// with a deliberately tiny MaxLearnts — small enough that the
/// session-restart backstop trips constantly — must take the identical
/// Skip/Extend decision sequence and reach the identical verdict. With a
/// shared iteration cap, identical decisions imply identical stats, so
/// one divergent entailment answer anywhere in the run fails the test.
/// This is the regression fence around session teardown/rebuild: a
/// restart may change memory, never answers.
class SessionRestartDifferential : public ::testing::TestWithParam<size_t> {
};

TEST_P(SessionRestartDifferential, DecisionsMatchUnlimited) {
  std::vector<parsers::CaseStudy> Studies = parsers::allCaseStudies();
  ASSERT_LT(GetParam(), Studies.size());
  const parsers::CaseStudy &Study = Studies[GetParam()];

  CheckOptions O;
  O.MaxIterations = 400;

  smt::BitBlastSolver UnlimitedSolver, LimitedSolver;
  O.Solver = &UnlimitedSolver;
  CheckResult Unlimited = checkLanguageEquivalence(
      Study.Left, Study.LeftStart, Study.Right, Study.RightStart, O);

  O.Solver = &LimitedSolver;
  O.Limits.MaxLearnts = 4;
  CheckResult Limited = checkLanguageEquivalence(
      Study.Left, Study.LeftStart, Study.Right, Study.RightStart, O);

  EXPECT_EQ(Limited.V, Unlimited.V)
      << Study.Name << ": " << Limited.FailureReason << " vs "
      << Unlimited.FailureReason;
  EXPECT_EQ(Limited.Stats.Iterations, Unlimited.Stats.Iterations)
      << Study.Name;
  EXPECT_EQ(Limited.Stats.Extends, Unlimited.Stats.Extends) << Study.Name;
  EXPECT_EQ(Limited.Stats.Skips, Unlimited.Stats.Skips) << Study.Name;
  EXPECT_EQ(Limited.Stats.FinalConjuncts, Unlimited.Stats.FinalConjuncts)
      << Study.Name;
  EXPECT_EQ(Limited.Stats.SmtQueries, Unlimited.Stats.SmtQueries)
      << Study.Name;

  // The bound really bit whenever the unlimited run's sessions ever held
  // more learned clauses than the cap — self-calibrating, so studies
  // whose queries never learn past the cap don't fail spuriously.
  EXPECT_EQ(UnlimitedSolver.stats().SessionRestarts, 0u) << Study.Name;
  if (UnlimitedSolver.stats().PeakLearnts > O.Limits.MaxLearnts) {
    EXPECT_GT(LimitedSolver.stats().SessionRestarts, 0u) << Study.Name;
  }
}

INSTANTIATE_TEST_SUITE_P(Registry, SessionRestartDifferential,
                         ::testing::Range<size_t>(0, 10));

} // namespace
