//===- GenerateTest.cpp - Generator-driven differential battery -----------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The random surface-parser generator (frontend/Generate.h) and the
// differential battery built on it. Three layers:
//
//  1. Invariants — every generated program is well-typed by construction:
//     elaborate() succeeds, the result type-checks, and the program
//     survives a print -> parse -> print fixpoint (so any failing seed
//     can be dumped as .lfp text that reproduces byte-identically).
//
//  2. Positive control — renameStates() twins are equivalent by
//     construction and the checker must say so.
//
//  3. Differential fuzz — for each seed, the (program, mutant) pair is
//     checked under every (jobs, backend) configuration; all runs must
//     return the same verdict, and the parallel engine must reproduce
//     the sequential decision stream bit-for-bit. On any mismatch the
//     harness prints the seed and dumps both sides as .lfp files, so
//     `leapfrog-cli --file` replays the exact failing pair.
//
// Iteration counts scale with LEAPFROG_FUZZ_ITERS (tests/FuzzSupport.h);
// the nightly fuzz job runs this battery 100x deeper.
//
//===----------------------------------------------------------------------===//

#include "cert/CertVerify.h"
#include "core/CertificateIo.h"
#include "core/Checker.h"
#include "frontend/Elaborate.h"
#include "frontend/Generate.h"
#include "frontend/Text.h"
#include "p4a/Typing.h"
#include "smt/SmtLibSolver.h"

#include "FuzzSupport.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

using namespace leapfrog;
using namespace leapfrog::frontend;
using leapfrog::testing::fuzzIters;
using leapfrog::testing::reportFuzzConfig;

namespace {

/// The SMT-LIB shim command, probed once (same idiom as ExtSolverTest):
/// "" means the env var is unset or the binary does not answer, and the
/// external-backend leg of the differential matrix is skipped.
std::string shimCommand() {
  const char *Env = std::getenv("LEAPFROG_SMTLIB_SHIM");
  if (!Env || !*Env)
    return "";
  static std::string Probed = [&]() -> std::string {
    smt::SmtLibConfig C;
    C.Argv = smt::SmtLibSolver::splitCommand(Env);
    C.QueryTimeoutMs = 20000;
    C.WarnOnFallback = false;
    smt::SmtLibSolver Probe(C);
    smt::BvTermRef X = smt::BvTerm::mkVar("probe", 2);
    (void)Probe.checkSat(smt::BvFormula::mkEq(X, X), nullptr);
    return Probe.extStats().ExternalQueries == 1 ? std::string(Env)
                                                 : std::string();
  }();
  return Probed;
}

/// Elaborates \p Program, asserting success; failures print the full
/// surface text so the seed reproduces without a debugger.
ElaborationResult elaborateChecked(const SurfaceProgram &Program,
                                   uint64_t Seed, const char *Role) {
  ElaborationResult E = elaborate(Program);
  if (!E.ok()) {
    ADD_FAILURE() << Role << " of seed " << Seed << " failed to elaborate:";
    for (const std::string &Err : E.Errors)
      ADD_FAILURE() << "  " << Err;
    ADD_FAILURE() << "program:\n" << printSurface(Program);
  }
  return E;
}

/// Writes \p Program next to the test binary as <stem>.lfp and returns
/// the path, so a differential mismatch leaves a ready-to-replay pair.
std::string dumpProgram(const SurfaceProgram &Program,
                        const std::string &Stem) {
  std::string Path = Stem + ".lfp";
  std::ofstream Out(Path);
  Out << printSurface(Program);
  return Path;
}

/// \p MaxIterations defaults tight: the differential layer only asserts
/// that every (jobs, backend) configuration *agrees*, which holds for
/// ResourceLimit runs too, and a tight budget keeps the 4-way matrix
/// fast at nightly depth. The positive control (RenamedTwinSweep) must
/// actually converge to Equivalent, so it passes the big budget — rare
/// seeds (first at 5128, nightly depth) need tens of thousands of
/// iterations.
core::CheckResult runCheck(const ElaborationResult &L,
                           const ElaborationResult &R, size_t Jobs,
                           const std::string &Backend,
                           size_t MaxIterations = 2000,
                           bool Certify = false) {
  core::CheckOptions Options;
  Options.MaxIterations = MaxIterations;
  Options.Jobs = Jobs;
  Options.Backend = Backend;
  Options.RecordTrace = true;
  Options.Certify = Certify;
  return core::checkLanguageEquivalence(
      L.Aut, p4a::StateRef::normal(*L.Aut.findState(L.Entry)), R.Aut,
      p4a::StateRef::normal(*R.Aut.findState(R.Entry)), Options);
}

/// Serializes an Equivalent certified result to LFCERT and runs the
/// engine-free verifier over it; any rejection fails the calling test
/// with the seed and the verifier's located diagnostic.
void expectCertificateVerifies(const ElaborationResult &L,
                               const ElaborationResult &R,
                               const core::CheckResult &Res, uint64_t Seed) {
  ASSERT_EQ(Res.V, core::Verdict::Equivalent);
  ASSERT_NE(Res.Proof, nullptr) << "seed " << Seed << ": certified run "
                                << "produced no proof log";
  std::string Text = core::serializeCertificate(L.Aut, R.Aut, Res.Certificate,
                                                Res.Proof.get(), "-");
  cert::VerifyResult V = cert::verifyCertificate(Text, {});
  EXPECT_TRUE(V.Ok) << "seed " << Seed << ": " << V.Diagnostic;
  EXPECT_EQ(V.Stats.RelationConjuncts, Res.Certificate.Relation.size())
      << "seed " << Seed;
}

const char *verdictName(core::Verdict V) {
  switch (V) {
  case core::Verdict::Equivalent:
    return "EQUIVALENT";
  case core::Verdict::NotEquivalent:
    return "NOT_EQUIVALENT";
  case core::Verdict::ResourceLimit:
    return "RESOURCE_LIMIT";
  case core::Verdict::BadRequest:
    return "BAD_REQUEST";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Layer 1: generated programs are well-typed by construction.
//===----------------------------------------------------------------------===//

class GeneratorInvariants : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorInvariants, GeneratedProgramsElaborateAndRoundTrip) {
  const uint64_t Seed = uint64_t(GetParam());
  reportFuzzConfig("GeneratorInvariants", fuzzIters(60), Seed);

  SurfaceProgram P = generateProgram(Seed);
  ElaborationResult E = elaborateChecked(P, Seed, "program");
  ASSERT_TRUE(E.ok());
  EXPECT_TRUE(p4a::isWellTyped(E.Aut)) << "seed " << Seed;

  // Determinism: the same seed yields byte-identical text.
  EXPECT_EQ(printSurface(P), printSurface(generateProgram(Seed)));

  // Textual fixpoint: print -> parse -> print is the identity, so any
  // failing seed can be shipped as a .lfp file.
  TextParseResult Parsed = parseSurface(printSurface(P));
  ASSERT_TRUE(Parsed.ok()) << "seed " << Seed << " did not re-parse: "
                           << (Parsed.Errors.empty() ? ""
                                                     : Parsed.Errors.front());
  EXPECT_EQ(printSurface(P), printSurface(Parsed.Program)) << "seed " << Seed;

  // The twin and the mutant must stay inside the well-typed fragment.
  ElaborationResult Twin =
      elaborateChecked(renameStates(P, "_r"), Seed, "renamed twin");
  EXPECT_TRUE(Twin.ok());
  ElaborationResult Mutant =
      elaborateChecked(mutateProgram(P, Seed), Seed, "mutant");
  EXPECT_TRUE(Mutant.ok());
}

INSTANTIATE_TEST_SUITE_P(Sweep, GeneratorInvariants,
                         ::testing::Range(0, fuzzIters(60)));

//===----------------------------------------------------------------------===//
// Layer 2: positive control — a renamed twin is equivalent.
//===----------------------------------------------------------------------===//

class RenamedTwinSweep : public ::testing::TestWithParam<int> {};

TEST_P(RenamedTwinSweep, RenamedTwinIsEquivalent) {
  const uint64_t Seed = uint64_t(GetParam()) + 5000;
  reportFuzzConfig("RenamedTwinSweep", fuzzIters(15), Seed);

  SurfaceProgram P = generateProgram(Seed);
  ElaborationResult L = elaborateChecked(P, Seed, "program");
  ElaborationResult R =
      elaborateChecked(renameStates(P, "_r"), Seed, "renamed twin");
  ASSERT_TRUE(L.ok() && R.ok());

  core::CheckResult Res = runCheck(L, R, 1, "bitblast", 50000);
  ASSERT_EQ(Res.V, core::Verdict::Equivalent)
      << "seed " << Seed << " verdict " << verdictName(Res.V) << "\n"
      << printSurface(P);

  // The certified re-run must make the same decisions bit for bit and
  // stream a certificate the engine-free verifier accepts — every
  // generated Equivalent pair carries its proof, nightly depth included.
  core::CheckResult Certified =
      runCheck(L, R, 1, "bitblast", 50000, /*Certify=*/true);
  EXPECT_EQ(Certified.V, Res.V) << "seed " << Seed;
  EXPECT_EQ(Certified.Stats.Iterations, Res.Stats.Iterations)
      << "seed " << Seed;
  EXPECT_EQ(Certified.Stats.Extends, Res.Stats.Extends) << "seed " << Seed;
  EXPECT_EQ(Certified.Stats.Skips, Res.Stats.Skips) << "seed " << Seed;
  EXPECT_EQ(Certified.Certificate.str(L.Aut, R.Aut),
            Res.Certificate.str(L.Aut, R.Aut))
      << "seed " << Seed;
  expectCertificateVerifies(L, R, Certified, Seed);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RenamedTwinSweep,
                         ::testing::Range(0, fuzzIters(15)));

//===----------------------------------------------------------------------===//
// Layer 3: differential fuzz across (jobs, backend) configurations.
//===----------------------------------------------------------------------===//

class DifferentialFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialFuzz, AllConfigurationsAgreeOnMutantPairs) {
  const uint64_t Seed = uint64_t(GetParam()) + 9000;
  reportFuzzConfig("DifferentialFuzz", fuzzIters(10), Seed);

  SurfaceProgram P = generateProgram(Seed);
  SurfaceProgram M = mutateProgram(P, Seed * 0x9e3779b97f4a7c15ull + 1);
  ElaborationResult L = elaborateChecked(P, Seed, "program");
  ElaborationResult R = elaborateChecked(M, Seed, "mutant");
  ASSERT_TRUE(L.ok() && R.ok());

  // The reference run: sequential, in-repo backend.
  core::CheckResult Ref = runCheck(L, R, 1, "bitblast");

  struct Config {
    size_t Jobs;
    std::string Backend;
  };
  std::vector<Config> Matrix = {{2, "bitblast"}};
  std::string Shim = shimCommand();
  if (!Shim.empty()) {
    Matrix.push_back({1, "smtlib:" + Shim});
    Matrix.push_back({2, "smtlib:" + Shim});
  }

  for (const Config &C : Matrix) {
    core::CheckResult Res = runCheck(L, R, C.Jobs, C.Backend);
    bool Agrees = Res.V == Ref.V;
    // The parallel engine's whole contract is a bit-identical decision
    // stream, and backends may change performance but never answers —
    // so the deterministic counters must match too, not just verdicts.
    Agrees = Agrees && Res.Stats.Iterations == Ref.Stats.Iterations &&
             Res.Stats.Extends == Ref.Stats.Extends &&
             Res.Stats.Skips == Ref.Stats.Skips &&
             Res.Stats.FinalConjuncts == Ref.Stats.FinalConjuncts &&
             Res.FailureReason == Ref.FailureReason;
    if (!Agrees) {
      std::string LeftPath =
          dumpProgram(P, "generate_fail_" + std::to_string(Seed) + "_left");
      std::string RightPath =
          dumpProgram(M, "generate_fail_" + std::to_string(Seed) + "_right");
      ADD_FAILURE() << "seed " << Seed << ": jobs=" << C.Jobs << " backend="
                    << C.Backend << " returned " << verdictName(Res.V)
                    << " (iters=" << Res.Stats.Iterations
                    << ", extends=" << Res.Stats.Extends
                    << ", skips=" << Res.Stats.Skips << "), reference "
                    << "jobs=1 backend=bitblast returned "
                    << verdictName(Ref.V)
                    << " (iters=" << Ref.Stats.Iterations
                    << ", extends=" << Ref.Stats.Extends
                    << ", skips=" << Ref.Stats.Skips << ")\n"
                    << "pair dumped to " << LeftPath << " / " << RightPath
                    << "\nreplay: leapfrog-cli --file " << LeftPath << " "
                    << RightPath;
    }
  }

  // The certified leg: recording DRUP slices must not perturb a single
  // decision, and when the mutant happens to be equivalent the streamed
  // certificate must survive the engine-free verifier.
  core::CheckResult Certified =
      runCheck(L, R, 1, "bitblast", 2000, /*Certify=*/true);
  EXPECT_EQ(Certified.V, Ref.V) << "seed " << Seed;
  EXPECT_EQ(Certified.Stats.Iterations, Ref.Stats.Iterations)
      << "seed " << Seed;
  EXPECT_EQ(Certified.FailureReason, Ref.FailureReason) << "seed " << Seed;
  if (Certified.V == core::Verdict::Equivalent)
    expectCertificateVerifies(L, R, Certified, Seed);

  // Skipping the shim leg silently would make a green nightly claim more
  // coverage than it ran; say so once per process.
  if (Shim.empty()) {
    static bool Warned = false;
    if (!Warned) {
      Warned = true;
      std::fprintf(stderr, "[fuzz] DifferentialFuzz: LEAPFROG_SMTLIB_SHIM "
                           "unset — external-backend leg skipped\n");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DifferentialFuzz,
                         ::testing::Range(0, fuzzIters(10)));

//===----------------------------------------------------------------------===//
// Mutation machinery details.
//===----------------------------------------------------------------------===//

TEST(Generate, MutationsChangeTheProgramText) {
  // Across a seed sweep, mutants must (a) differ textually from their
  // base almost always — a mutation that prints identically is a no-op
  // and weakens the battery — and (b) differ across mutation seeds at
  // least sometimes.
  int Changed = 0;
  for (uint64_t Seed = 0; Seed < 40; ++Seed) {
    SurfaceProgram P = generateProgram(Seed);
    if (printSurface(mutateProgram(P, Seed + 1)) != printSurface(P))
      ++Changed;
  }
  EXPECT_GE(Changed, 35) << "mutations are mostly no-ops";
}

TEST(Generate, RenameStatesRewritesEveryReference) {
  for (uint64_t Seed = 0; Seed < 25; ++Seed) {
    SurfaceProgram P = generateProgram(Seed);
    SurfaceProgram T = renameStates(P, "_x");
    EXPECT_EQ(T.entry(), P.entry() + "_x") << "seed " << Seed;
    ASSERT_EQ(T.mainStates().size(), P.mainStates().size());
    for (size_t I = 0; I < T.mainStates().size(); ++I)
      EXPECT_EQ(T.mainStates()[I].Name, P.mainStates()[I].Name + "_x");
    // Subparsers keep their names; only main-scope states are renamed.
    ASSERT_EQ(T.subParsers().size(), P.subParsers().size());
    for (size_t I = 0; I < T.subParsers().size(); ++I)
      EXPECT_EQ(T.subParsers()[I].Name, P.subParsers()[I].Name);
  }
}

TEST(Generate, GeneratedProgramsExerciseTheFeatureSet) {
  // The generator must actually emit the surface features it advertises;
  // a regression that silently stops emitting stacks or subparsers would
  // hollow out the battery without failing any other test.
  bool SawStack = false, SawSub = false, SawSelect = false, SawAssign = false,
       SawLookahead = false;
  for (uint64_t Seed = 0; Seed < 80; ++Seed) {
    SurfaceProgram P = generateProgram(Seed);
    SawStack |= !P.stacks().empty();
    SawSub |= !P.subParsers().empty();
    for (const SurfaceState &S : P.mainStates()) {
      SawSelect |= !S.Tz.IsGoto;
      for (const SurfaceOp &Op : S.Ops) {
        SawAssign |= Op.K == SurfaceOp::Kind::Assign;
        SawLookahead |= Op.K == SurfaceOp::Kind::Lookahead;
      }
    }
  }
  EXPECT_TRUE(SawStack);
  EXPECT_TRUE(SawSub);
  EXPECT_TRUE(SawSelect);
  EXPECT_TRUE(SawAssign);
  EXPECT_TRUE(SawLookahead);
}

} // namespace
