//===- LogicTest.cpp - ConfRel and lowering chain tests -------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the configuration-relation logic (Figure 3 / Definition 4.3) and
/// the full Figure 6 lowering chain: context-dependent widths, concrete
/// evaluation, substitution, α-renaming, the ctx-aware smart
/// constructors, template filtering, FOL(Conf) compilation, and store
/// elimination. Lowering correctness is also checked by a randomized
/// round trip: a pure formula's concrete truth value on random
/// configuration pairs must equal its lowered FOL(BV) evaluation under
/// the corresponding flat-variable assignment.
///
//===----------------------------------------------------------------------===//

#include "logic/Lower.h"

#include "p4a/Parser.h"

#include <functional>
#include <gtest/gtest.h>

using namespace leapfrog;
using namespace leapfrog::logic;

namespace {

Bitvector bv(const std::string &S) { return Bitvector::fromString(S); }

/// Fixture: left automaton has headers a(4), b(2); right has c(3).
/// Guard: left in (s, 2) — buffer width 2 — right in (t, 0).
class ConfRelFixture : public ::testing::Test {
protected:
  void SetUp() override {
    Left = p4a::parseAutomatonOrDie(R"(
      state s { extract(a, 4); extract(b, 2); goto accept }
    )");
    Right = p4a::parseAutomatonOrDie(R"(
      state t { extract(c, 3); goto accept }
    )");
    TP = TemplatePair{
        Template{p4a::StateRef::normal(0), 2},
        Template{p4a::StateRef::normal(0), 0},
    };
    C = Ctx{&Left, &Right, TP};

    CL.Q = p4a::StateRef::normal(0);
    CL.S = p4a::Store(Left);
    CL.S.set(*Left.findHeader("a"), bv("1010"));
    CL.S.set(*Left.findHeader("b"), bv("01"));
    CL.Buf = bv("11");

    CR.Q = p4a::StateRef::normal(0);
    CR.S = p4a::Store(Right);
    CR.S.set(*Right.findHeader("c"), bv("110"));
    CR.Buf = Bitvector();
  }

  p4a::Automaton Left, Right;
  TemplatePair TP;
  Ctx C;
  p4a::Config CL, CR;
};

//===----------------------------------------------------------------------===//
// Widths and evaluation (Definition 4.3)
//===----------------------------------------------------------------------===//

TEST_F(ConfRelFixture, WidthsFollowTheGuard) {
  EXPECT_EQ(widthUnder(C, BitExpr::mkBuf(Side::Left)), 2u);
  EXPECT_EQ(widthUnder(C, BitExpr::mkBuf(Side::Right)), 0u);
  EXPECT_EQ(widthUnder(C, BitExpr::mkHdr(Side::Left, 0)), 4u);
  EXPECT_EQ(widthUnder(C, BitExpr::mkHdr(Side::Right, 0)), 3u);
  EXPECT_EQ(widthUnder(C, BitExpr::mkVar("x", 5)), 5u);
  // Clamped slice width.
  EXPECT_EQ(
      widthUnder(C, BitExpr::mkSlice(BitExpr::mkHdr(Side::Left, 0), 2, 99)),
      2u);
}

TEST_F(ConfRelFixture, EvalReadsBothSides) {
  Valuation Sigma{{"x", bv("0")}};
  EXPECT_EQ(evalBitExpr(C, BitExpr::mkBuf(Side::Left), CL, CR, Sigma),
            bv("11"));
  EXPECT_EQ(evalBitExpr(C, BitExpr::mkHdr(Side::Right, 0), CL, CR, Sigma),
            bv("110"));
  auto E = BitExpr::mkConcat(BitExpr::mkVar("x", 1),
                             BitExpr::mkSlice(BitExpr::mkHdr(Side::Left, 0),
                                              0, 1));
  EXPECT_EQ(evalBitExpr(C, E, CL, CR, Sigma), bv("010"));
}

TEST_F(ConfRelFixture, PureEvalConnectives) {
  Valuation Sigma;
  PureRef Eq = Pure::mkEq(BitExpr::mkSlice(BitExpr::mkHdr(Side::Left, 0), 0,
                                           2),
                          BitExpr::mkHdr(Side::Right, 0));
  // a[0:2] = 101, c = 110: not equal.
  EXPECT_FALSE(evalPure(C, Eq, CL, CR, Sigma));
  EXPECT_TRUE(evalPure(C, Pure::mkNot(Eq), CL, CR, Sigma));
  EXPECT_TRUE(evalPure(C, Pure::mkImplies(Eq, Pure::mkFalse()), CL, CR,
                       Sigma));
}

TEST_F(ConfRelFixture, HoldsConcretelyRespectsGuard) {
  GuardedFormula G{TP, Pure::mkFalse()};
  // Matching configurations: ⊥ fails.
  EXPECT_FALSE(holdsConcretely(Left, Right, G, CL, CR));
  // Non-matching buffer length: guard false, formula holds vacuously.
  p4a::Config CLShort = CL;
  CLShort.Buf = bv("1");
  EXPECT_TRUE(holdsConcretely(Left, Right, G, CLShort, CR));
}

TEST_F(ConfRelFixture, HoldsConcretelyQuantifiesRigidVars) {
  // x = buf< is not true for every x; x = x is.
  GuardedFormula G1{TP, Pure::mkEq(BitExpr::mkVar("x", 2),
                                   BitExpr::mkBuf(Side::Left))};
  EXPECT_FALSE(holdsConcretely(Left, Right, G1, CL, CR));
  auto X = BitExpr::mkVar("x", 2);
  GuardedFormula G2{TP, Pure::mkEq(X, X)};
  EXPECT_TRUE(holdsConcretely(Left, Right, G2, CL, CR));
}

//===----------------------------------------------------------------------===//
// Substitution
//===----------------------------------------------------------------------===//

TEST_F(ConfRelFixture, SubstitutionRewritesBufAndHeaders) {
  // F: buf< = a<[0:1]. Substitute buf< -> x ++ buf<, a -> 0b0000.
  PureRef F = Pure::mkEq(BitExpr::mkBuf(Side::Left),
                         BitExpr::mkSlice(BitExpr::mkHdr(Side::Left, 0), 0,
                                          1));
  SideSubst L;
  L.Buf = BitExpr::mkConcat(BitExpr::mkVar("x", 1),
                            BitExpr::mkBuf(Side::Left));
  L.Headers = {BitExpr::mkLit(bv("0000")),
               BitExpr::mkHdr(Side::Left, 1)};
  SideSubst R;
  R.Buf = BitExpr::mkBuf(Side::Right);
  R.Headers = {BitExpr::mkHdr(Side::Right, 0)};
  PureRef F2 = substitute(F, L, R);
  EXPECT_EQ(F2->str(),
            Pure::mkEq(L.Buf, BitExpr::mkSlice(BitExpr::mkLit(bv("0000")),
                                               0, 1))
                ->str());
}

TEST_F(ConfRelFixture, SubstitutionLeavesRigidVarsAlone) {
  PureRef F = Pure::mkEq(BitExpr::mkVar("x", 3),
                         BitExpr::mkHdr(Side::Right, 0));
  SideSubst L{BitExpr::mkBuf(Side::Left),
              {BitExpr::mkHdr(Side::Left, 0), BitExpr::mkHdr(Side::Left, 1)}};
  SideSubst R{BitExpr::mkBuf(Side::Right), {BitExpr::mkLit(bv("000"))}};
  PureRef F2 = substitute(F, L, R);
  auto Vars = collectRigidVars(F2);
  ASSERT_EQ(Vars.size(), 1u);
  EXPECT_EQ(Vars[0].first, "x");
}

//===----------------------------------------------------------------------===//
// α-renaming / canonicalization
//===----------------------------------------------------------------------===//

TEST_F(ConfRelFixture, CanonicalizeIsAlphaInvariant) {
  auto Mk = [&](const std::string &N1, const std::string &N2) {
    return GuardedFormula{
        TP, Pure::mkAnd(Pure::mkEq(BitExpr::mkVar(N1, 2),
                                   BitExpr::mkBuf(Side::Left)),
                        Pure::mkEq(BitExpr::mkVar(N2, 3),
                                   BitExpr::mkHdr(Side::Right, 0)))};
  };
  GuardedFormula A = Mk("x7", "x9");
  GuardedFormula B = Mk("y1", "zz");
  EXPECT_EQ(canonicalize(A).Phi->str(), canonicalize(B).Phi->str());
  // Different structure ⇒ different canonical form.
  GuardedFormula C2 = Mk("x9", "x7");
  EXPECT_EQ(canonicalize(A).Phi->str(), canonicalize(C2).Phi->str())
      << "canonicalization is positional, names do not matter";
}

TEST_F(ConfRelFixture, CanonicalNamesEncodeWidths) {
  GuardedFormula G{TP, Pure::mkEq(BitExpr::mkVar("a", 2),
                                  BitExpr::mkBuf(Side::Left))};
  auto Vars = collectRigidVars(canonicalize(G).Phi);
  ASSERT_EQ(Vars.size(), 1u);
  EXPECT_EQ(Vars[0].first, "v0w2");
}

//===----------------------------------------------------------------------===//
// Smart constructors (§6.2 stage 1)
//===----------------------------------------------------------------------===//

TEST_F(ConfRelFixture, SmartSliceClampsAndFolds) {
  auto A = BitExpr::mkHdr(Side::Left, 0); // 4 bits.
  // Full width → identity.
  EXPECT_EQ(mkSliceS(C, A, 0, 3), A);
  EXPECT_EQ(mkSliceS(C, A, 0, 99), A);
  // Slice of literal folds.
  auto L = mkSliceS(C, BitExpr::mkLit(bv("1100")), 1, 2);
  ASSERT_EQ(L->kind(), BitExpr::Kind::Lit);
  EXPECT_EQ(L->literal(), bv("10"));
  // Inverted bounds → ε.
  EXPECT_EQ(widthUnder(C, mkSliceS(C, A, 3, 1)), 0u);
}

TEST_F(ConfRelFixture, SmartSlicePushesThroughConcat) {
  auto A = BitExpr::mkHdr(Side::Left, 0); // 4 bits.
  auto B = BitExpr::mkHdr(Side::Left, 1); // 2 bits.
  auto AB = mkConcatS(C, A, B);
  // Inside left.
  EXPECT_EQ(mkSliceS(C, AB, 1, 3)->str(), mkSliceS(C, A, 1, 3)->str());
  // Inside right.
  EXPECT_EQ(mkSliceS(C, AB, 4, 5)->str(), B->str());
  // Straddling → concat of slices.
  auto S = mkSliceS(C, AB, 3, 4);
  ASSERT_EQ(S->kind(), BitExpr::Kind::Concat);
}

TEST_F(ConfRelFixture, SmartConcatDropsEpsilonBuffer) {
  // buf> has width 0 under this guard: it vanishes from concatenations.
  auto E = mkConcatS(C, BitExpr::mkBuf(Side::Right),
                     BitExpr::mkHdr(Side::Right, 0));
  EXPECT_EQ(E->kind(), BitExpr::Kind::Hdr);
}

TEST_F(ConfRelFixture, SmartConstructorsPreserveSemantics) {
  // mkSliceS/mkConcatS must be semantics-preserving under the same ctx.
  Valuation Sigma;
  auto A = BitExpr::mkHdr(Side::Left, 0);
  auto B = BitExpr::mkBuf(Side::Left);
  auto Plain = BitExpr::mkSlice(BitExpr::mkConcat(A, B), 2, 5);
  auto Smart = mkSliceS(C, mkConcatS(C, A, B), 2, 5);
  EXPECT_EQ(evalBitExpr(C, Plain, CL, CR, Sigma),
            evalBitExpr(C, Smart, CL, CR, Sigma));
}

//===----------------------------------------------------------------------===//
// The Figure 6 chain
//===----------------------------------------------------------------------===//

TEST_F(ConfRelFixture, TemplateFilteringDiscardsOtherGuards) {
  TemplatePair OtherTP{Template::accept(), Template::accept()};
  std::vector<GuardedFormula> Premises{
      {TP, Pure::mkEq(BitExpr::mkBuf(Side::Left), BitExpr::mkLit(bv("11")))},
      {OtherTP, Pure::mkFalse()},
      {TP, Pure::mkEq(BitExpr::mkHdr(Side::Right, 0),
                      BitExpr::mkLit(bv("110")))},
  };
  GuardedFormula Goal{TP, Pure::mkFalse()};
  LowerResult Res = lowerEntailment(Left, Right, Premises, Goal);
  EXPECT_EQ(Res.PremisesTotal, 3u);
  EXPECT_EQ(Res.PremisesKept, 2u);
}

TEST_F(ConfRelFixture, FolConfExactifiesSlices) {
  // buf<[0:99] clamps to [0:1] under the guard; the FOL(Conf) term must
  // carry the exact bounds.
  PureRef F = Pure::mkEq(
      BitExpr::mkSlice(BitExpr::mkBuf(Side::Left), 0, 99),
      BitExpr::mkLit(bv("11")));
  folconf::FormulaRef FC = folconf::fromPure(C, F);
  ASSERT_EQ(FC->kind(), folconf::Formula::Kind::Eq);
  EXPECT_EQ(FC->eqLhs()->width(), 2u);
}

TEST_F(ConfRelFixture, StoreEliminationNamesSidesDistinctly) {
  PureRef F = Pure::mkEq(
      BitExpr::mkSlice(BitExpr::mkHdr(Side::Left, 0), 0, 2),
      BitExpr::mkHdr(Side::Right, 0));
  smt::BvFormulaRef Q = lowerPure(Left, Right, TP, F);
  auto Vars = smt::collectVars(Q);
  ASSERT_EQ(Vars.size(), 2u);
  EXPECT_EQ(Vars[0].first, "h<a");
  EXPECT_EQ(Vars[1].first, "h>c");
}

TEST_F(ConfRelFixture, EpsilonBufferLowersToEmptyConstant) {
  // buf> (width 0) = ε must lower to True rather than a 0-width variable.
  PureRef F = Pure::mkEq(BitExpr::mkBuf(Side::Right),
                         BitExpr::mkLit(Bitvector()));
  smt::BvFormulaRef Q = lowerPure(Left, Right, TP, F);
  EXPECT_EQ(Q->kind(), smt::BvFormula::Kind::True);
}

//===----------------------------------------------------------------------===//
// Randomized lowering round trip
//===----------------------------------------------------------------------===//

struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed * 0x9e3779b97f4a7c15ull + 1) {}
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
  size_t below(size_t N) { return size_t(next() % N); }
};

class LoweringRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(LoweringRoundTrip, ConcreteEvalMatchesLoweredEval) {
  Rng R{uint64_t(GetParam())};
  p4a::Automaton Left = p4a::parseAutomatonOrDie(
      "state s { extract(a, 4); extract(b, 2); goto accept }");
  p4a::Automaton Right =
      p4a::parseAutomatonOrDie("state t { extract(c, 3); goto accept }");
  TemplatePair TP{Template{p4a::StateRef::normal(0), 1 + R.below(5)},
                  Template{p4a::StateRef::normal(0), R.below(3)}};
  Ctx C{&Left, &Right, TP};

  // Random pure formula over both sides' headers, buffers, and one var.
  std::function<BitExprRef(int)> RandExpr = [&](int Depth) -> BitExprRef {
    switch (Depth == 0 ? R.below(4) : R.below(6)) {
    case 0:
      return BitExpr::mkHdr(Side::Left, p4a::HeaderId(R.below(2)));
    case 1:
      return BitExpr::mkHdr(Side::Right, 0);
    case 2:
      return BitExpr::mkBuf(R.below(2) ? Side::Left : Side::Right);
    case 3:
      return BitExpr::mkVar("x", 2);
    case 4:
      return BitExpr::mkConcat(RandExpr(Depth - 1), RandExpr(Depth - 1));
    default:
      return BitExpr::mkSlice(RandExpr(Depth - 1), R.below(4), R.below(8));
    }
  };
  BitExprRef A = RandExpr(2);
  BitExprRef B = RandExpr(2);
  size_t WA = widthUnder(C, A), WB = widthUnder(C, B);
  // Make widths equal by slicing the wider one (clamped slice semantics).
  if (WA < WB)
    B = WA == 0 ? BitExpr::mkLit(Bitvector()) : mkSliceS(C, B, 0, WA - 1);
  else if (WB < WA)
    A = WB == 0 ? BitExpr::mkLit(Bitvector()) : mkSliceS(C, A, 0, WB - 1);
  PureRef F = Pure::mkEq(A, B);
  if (R.below(2))
    F = Pure::mkNot(F);

  smt::BvFormulaRef Lowered = lowerPure(Left, Right, TP, F);

  // Random configurations matching the guard, random valuation.
  for (int Trial = 0; Trial < 8; ++Trial) {
    p4a::Config CL{p4a::StateRef::normal(0),
                   p4a::Store::fromBits(Left,
                                        Bitvector::fromUint(R.next(), 6)),
                   Bitvector::fromUint(R.next(), TP.L.N)};
    p4a::Config CR{p4a::StateRef::normal(0),
                   p4a::Store::fromBits(Right,
                                        Bitvector::fromUint(R.next(), 3)),
                   Bitvector::fromUint(R.next(), TP.R.N)};
    Valuation Sigma{{"x", Bitvector::fromUint(R.next(), 2)}};
    bool Concrete = evalPure(C, F, CL, CR, Sigma);

    // Corresponding flat assignment for the lowered formula.
    std::vector<std::pair<std::string, Bitvector>> Flat{
        {"h<a", CL.S.get(0)}, {"h<b", CL.S.get(1)}, {"h>c", CR.S.get(0)},
        {"$x", Sigma[0].second}};
    if (TP.L.N > 0)
      Flat.emplace_back("buf<", CL.Buf);
    if (TP.R.N > 0)
      Flat.emplace_back("buf>", CR.Buf);
    bool Low = smt::evalFormula(Lowered, Flat);
    ASSERT_EQ(Concrete, Low)
        << "lowering changed the meaning of " << F->str() << " (seed "
        << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Random, LoweringRoundTrip, ::testing::Range(0, 80));

} // namespace
