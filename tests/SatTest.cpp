//===- SatTest.cpp - CDCL SAT solver tests --------------------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests and randomized differential tests for the CDCL solver. The
/// reference oracle is a tiny recursive DPLL over the same clause set, so
/// any divergence (wrong SAT/UNSAT, bogus model) is caught on thousands
/// of random instances around the phase-transition clause density.
///
//===----------------------------------------------------------------------===//

#include "smt/Sat.h"

#include "FuzzSupport.h"

#include <gtest/gtest.h>

using namespace leapfrog;
using namespace leapfrog::smt;
using leapfrog::testing::fuzzIters;

namespace {

Lit pos(Var V) { return Lit::mk(V, false); }
Lit neg(Var V) { return Lit::mk(V, true); }

TEST(Sat, EmptyInstanceIsSat) {
  SatSolver S;
  EXPECT_TRUE(S.solve());
}

TEST(Sat, SingleUnit) {
  SatSolver S;
  Var A = S.newVar();
  EXPECT_TRUE(S.addClause(pos(A)));
  EXPECT_TRUE(S.solve());
  EXPECT_TRUE(S.modelValue(A));
}

TEST(Sat, ContradictoryUnitsAreUnsat) {
  SatSolver S;
  Var A = S.newVar();
  S.addClause(pos(A));
  EXPECT_FALSE(S.addClause(neg(A)));
  EXPECT_FALSE(S.solve());
}

TEST(Sat, EmptyClauseIsUnsat) {
  SatSolver S;
  (void)S.newVar();
  EXPECT_FALSE(S.addClause(std::vector<Lit>{}));
  EXPECT_FALSE(S.solve());
}

TEST(Sat, TautologicalClauseIgnored) {
  SatSolver S;
  Var A = S.newVar();
  EXPECT_TRUE(S.addClause(std::vector<Lit>{pos(A), neg(A)}));
  EXPECT_TRUE(S.solve());
}

TEST(Sat, DuplicateLiteralsCollapse) {
  SatSolver S;
  Var A = S.newVar();
  Var B = S.newVar();
  EXPECT_TRUE(S.addClause(std::vector<Lit>{pos(A), pos(A), pos(B)}));
  S.addClause(neg(A));
  S.addClause(neg(B));
  EXPECT_FALSE(S.solve());
}

TEST(Sat, PropagationChain) {
  // a, a->b, b->c, c->d: all forced true without a single decision.
  SatSolver S;
  Var A = S.newVar(), B = S.newVar(), C = S.newVar(), D = S.newVar();
  S.addClause(pos(A));
  S.addClause(neg(A), pos(B));
  S.addClause(neg(B), pos(C));
  S.addClause(neg(C), pos(D));
  ASSERT_TRUE(S.solve());
  EXPECT_TRUE(S.modelValue(A));
  EXPECT_TRUE(S.modelValue(B));
  EXPECT_TRUE(S.modelValue(C));
  EXPECT_TRUE(S.modelValue(D));
  EXPECT_EQ(S.stats().Decisions, 0u);
}

TEST(Sat, PigeonHole3Into2IsUnsat) {
  // PHP(3,2): classic small UNSAT instance requiring real search.
  SatSolver S;
  Var P[3][2];
  for (auto &Row : P)
    for (Var &V : Row)
      V = S.newVar();
  for (int I = 0; I < 3; ++I)
    S.addClause(pos(P[I][0]), pos(P[I][1]));
  for (int H = 0; H < 2; ++H)
    for (int I = 0; I < 3; ++I)
      for (int J = I + 1; J < 3; ++J)
        S.addClause(neg(P[I][H]), neg(P[J][H]));
  EXPECT_FALSE(S.solve());
}

TEST(Sat, XorChainForcesManyConflicts) {
  // x1 xor x2 xor ... xor x10 = 1 together with all-equal constraints is
  // satisfiable only with all-true for odd chain lengths; checks learning
  // across restarts (this shape triggered the Luby regression).
  SatSolver S;
  constexpr int N = 9;
  Var X[N];
  for (Var &V : X)
    V = S.newVar();
  // Equality chain.
  for (int I = 0; I + 1 < N; ++I) {
    S.addClause(neg(X[I]), pos(X[I + 1]));
    S.addClause(pos(X[I]), neg(X[I + 1]));
  }
  S.addClause(pos(X[0]));
  ASSERT_TRUE(S.solve());
  for (Var V : X)
    EXPECT_TRUE(S.modelValue(V));
}

//===----------------------------------------------------------------------===//
// Incremental solving under assumptions
//===----------------------------------------------------------------------===//

/// True iff \p L occurs in \p Lits.
bool contains(const std::vector<Lit> &Lits, Lit L) {
  for (Lit X : Lits)
    if (X == L)
      return true;
  return false;
}

TEST(SatAssumptions, SolveUnderAssumptionsBasic) {
  SatSolver S;
  Var X = S.newVar(), Y = S.newVar();
  S.addClause(pos(X), pos(Y));
  ASSERT_TRUE(S.solveUnderAssumptions({neg(X)}));
  EXPECT_FALSE(S.modelValue(X));
  EXPECT_TRUE(S.modelValue(Y));
  ASSERT_FALSE(S.solveUnderAssumptions({neg(X), neg(Y)}));
  // The failed set is a subset of the assumptions that is jointly
  // unsatisfiable with the clauses — here it must name both.
  EXPECT_TRUE(contains(S.failedAssumptions(), neg(X)));
  EXPECT_TRUE(contains(S.failedAssumptions(), neg(Y)));
  // Assumptions are transient: the instance itself is still satisfiable.
  EXPECT_TRUE(S.solve());
}

TEST(SatAssumptions, FailedSetOmitsIrrelevantAssumptions) {
  SatSolver S;
  Var A = S.newVar(), B = S.newVar(), C = S.newVar();
  S.addClause(neg(A), pos(B)); // a → b
  ASSERT_FALSE(S.solveUnderAssumptions({pos(A), neg(B), pos(C)}));
  const std::vector<Lit> &Failed = S.failedAssumptions();
  EXPECT_EQ(Failed.size(), 2u);
  EXPECT_TRUE(contains(Failed, pos(A)));
  EXPECT_TRUE(contains(Failed, neg(B)));
  EXPECT_FALSE(contains(Failed, pos(C)));
}

TEST(SatAssumptions, GloballyUnsatReportsEmptyFailedSet) {
  SatSolver S;
  Var X = S.newVar(), Y = S.newVar();
  S.addClause(pos(X));
  EXPECT_FALSE(S.addClause(neg(X)));
  EXPECT_FALSE(S.solveUnderAssumptions({pos(Y)}));
  // Empty set: the clauses alone are unsatisfiable, no assumption needed.
  EXPECT_TRUE(S.failedAssumptions().empty());
}

TEST(SatAssumptions, ContradictoryAssumptionsFail) {
  SatSolver S;
  Var X = S.newVar();
  ASSERT_FALSE(S.solveUnderAssumptions({pos(X), neg(X)}));
  EXPECT_TRUE(contains(S.failedAssumptions(), pos(X)));
  EXPECT_TRUE(contains(S.failedAssumptions(), neg(X)));
  EXPECT_TRUE(S.solve());
}

// The next three suites pin edge-case behavior the parallel frontier
// engine now exercises from every worker thread: each worker's sessions
// drive solveUnderAssumptions through exactly these shapes (no
// assumptions on premise-only solves, repeated activation literals,
// assumptions colliding with level-0 retirement facts), so the contract
// is frozen here before it runs under N schedules.

TEST(SatAssumptions, EmptyAssumptionSetBehavesLikeSolve) {
  SatSolver S;
  Var X = S.newVar(), Y = S.newVar();
  S.addClause(pos(X), pos(Y));
  S.addClause(neg(X));
  ASSERT_TRUE(S.solveUnderAssumptions({}));
  EXPECT_FALSE(S.modelValue(X));
  EXPECT_TRUE(S.modelValue(Y));
  // On an unsatisfiable instance the failed set is empty — there is no
  // assumption to blame, the clauses alone conflict.
  S.addClause(neg(Y));
  EXPECT_FALSE(S.solveUnderAssumptions({}));
  EXPECT_TRUE(S.failedAssumptions().empty());
  // And the instance-level UNSAT is sticky, exactly as with solve().
  EXPECT_FALSE(S.solve());
}

TEST(SatAssumptions, DuplicatedAssumptionsAreHarmless) {
  // MiniSat's planting scheme gives assumption k decision level k+1; a
  // duplicate is already true when its turn comes and must open a dummy
  // level, not conflict with itself or shift later assumptions.
  SatSolver S;
  Var A = S.newVar(), B = S.newVar();
  S.addClause(neg(A), pos(B)); // a → b
  ASSERT_TRUE(S.solveUnderAssumptions({pos(A), pos(A), pos(A)}));
  EXPECT_TRUE(S.modelValue(A));
  EXPECT_TRUE(S.modelValue(B));
  // Duplicates interleaved with a conflicting tail: the failed set still
  // names the genuinely conflicting assumptions.
  ASSERT_FALSE(S.solveUnderAssumptions({pos(A), pos(A), neg(B)}));
  EXPECT_TRUE(contains(S.failedAssumptions(), neg(B)));
  EXPECT_TRUE(S.solve());
}

TEST(SatAssumptions, AssumptionAgreeingWithLevel0FactIsSatisfied) {
  // The session retirement pattern plants unit clauses (¬act); a later
  // assumption equal to such a level-0 fixed literal is already true at
  // plant time and must cost nothing.
  SatSolver S;
  Var X = S.newVar(), Y = S.newVar();
  S.addClause(pos(X)); // x fixed at level 0.
  S.addClause(neg(X), pos(Y));
  ASSERT_TRUE(S.solveUnderAssumptions({pos(X)}));
  EXPECT_TRUE(S.modelValue(X));
  EXPECT_TRUE(S.modelValue(Y));
}

TEST(SatAssumptions, AssumptionContradictingLevel0FactFailsAlone) {
  // The flip side: assuming the negation of a level-0 fixed literal is
  // doomed before any search. Current (pinned) behavior: the failed set
  // is exactly {assumption} — analyzeFinal sees the conflict at level 0
  // and blames no other assumption — and the instance stays usable.
  SatSolver S;
  Var X = S.newVar(), Y = S.newVar();
  S.addClause(pos(X)); // x fixed at level 0 (a retired activation, say).
  S.addClause(pos(Y), neg(Y)); // Keep Y mentioned but unconstrained.
  ASSERT_FALSE(S.solveUnderAssumptions({neg(X)}));
  ASSERT_EQ(S.failedAssumptions().size(), 1u);
  EXPECT_TRUE(contains(S.failedAssumptions(), neg(X)));
  // Order independence: buried in the middle, the verdict is the same
  // and the failed set still pins the level-0 contradiction.
  ASSERT_FALSE(S.solveUnderAssumptions({pos(Y), neg(X), neg(Y)}));
  EXPECT_TRUE(contains(S.failedAssumptions(), neg(X)));
  // The contradiction was assumption-local, not clause-level: no UNSAT
  // stickiness.
  EXPECT_TRUE(S.solve());
  EXPECT_TRUE(S.solveUnderAssumptions({pos(X)}));
}

TEST(SatAssumptions, AssumptionImpliedByPropagationIsSkipped) {
  // An assumption already true when planted opens a dummy decision level;
  // the remaining assumptions must still line up correctly.
  SatSolver S;
  Var A = S.newVar(), B = S.newVar(), C = S.newVar();
  S.addClause(pos(A));           // a holds at level 0.
  S.addClause(neg(B), pos(C));   // b → c
  ASSERT_TRUE(S.solveUnderAssumptions({pos(A), pos(B)}));
  EXPECT_TRUE(S.modelValue(B));
  EXPECT_TRUE(S.modelValue(C));
  ASSERT_FALSE(S.solveUnderAssumptions({pos(A), pos(B), neg(C)}));
  EXPECT_FALSE(contains(S.failedAssumptions(), pos(A)));
}

/// Gates PHP(\p Pigeons, \p Pigeons - 1) behind an activation literal so
/// the hard UNSAT core is reusable across queries.
Var addGatedPigeonHole(SatSolver &S, int Pigeons) {
  int Holes = Pigeons - 1;
  Var Act = S.newVar();
  std::vector<std::vector<Var>> P(Pigeons, std::vector<Var>(Holes));
  for (auto &Row : P)
    for (Var &V : Row)
      V = S.newVar();
  for (int I = 0; I < Pigeons; ++I) {
    std::vector<Lit> C{neg(Act)};
    for (int H = 0; H < Holes; ++H)
      C.push_back(pos(P[I][H]));
    S.addClause(C);
  }
  for (int H = 0; H < Holes; ++H)
    for (int I = 0; I < Pigeons; ++I)
      for (int J = I + 1; J < Pigeons; ++J)
        S.addClause(std::vector<Lit>{neg(Act), neg(P[I][H]), neg(P[J][H])});
  return Act;
}

TEST(SatAssumptions, LearnedClausesSpeedUpRepeatedQueries) {
  SatSolver S;
  Var Act = addGatedPigeonHole(S, 5);
  size_t ClausesBefore = S.numClauses();

  ASSERT_FALSE(S.solveUnderAssumptions({pos(Act)}));
  EXPECT_EQ(S.failedAssumptions(), std::vector<Lit>{pos(Act)});
  uint64_t FirstConflicts = S.stats().Conflicts;
  EXPECT_GT(FirstConflicts, 0u);
  // Learned clauses were retained across the call.
  EXPECT_GT(S.numClauses(), ClausesBefore);

  // The same query again: the learned clauses (and eventually a level-0
  // unit ¬act) make the rerun strictly cheaper than the first solve.
  ASSERT_FALSE(S.solveUnderAssumptions({pos(Act)}));
  uint64_t SecondConflicts = S.stats().Conflicts - FirstConflicts;
  EXPECT_LT(SecondConflicts, FirstConflicts);

  // Without the activation literal the instance stays satisfiable.
  EXPECT_TRUE(S.solve());
}

TEST(SatAssumptions, SurvivesRestartsAndPhaseSaving) {
  // PHP(6,5) forces well over the 64-conflict restart threshold, so the
  // assumption-planting loop must re-plant across restarts; afterwards the
  // solver must still answer fresh queries on the same instance.
  SatSolver S;
  Var Act = addGatedPigeonHole(S, 6);
  ASSERT_FALSE(S.solveUnderAssumptions({pos(Act)}));
  EXPECT_GT(S.stats().Restarts, 0u);
  EXPECT_EQ(S.failedAssumptions(), std::vector<Lit>{pos(Act)});
  EXPECT_TRUE(S.solveUnderAssumptions({neg(Act)}));
  EXPECT_FALSE(S.modelValue(Act));
}

TEST(SatIncremental, ClausesMayBeAddedBetweenSolves) {
  // Enumerate the three models of (x ∨ y) by blocking each in turn — the
  // activation-free form of the checker's retire-and-continue pattern.
  SatSolver S;
  Var X = S.newVar(), Y = S.newVar();
  S.addClause(pos(X), pos(Y));
  int Models = 0;
  while (S.solve()) {
    std::vector<Lit> Block{Lit::mk(X, S.modelValue(X)),
                           Lit::mk(Y, S.modelValue(Y))};
    ++Models;
    ASSERT_LE(Models, 3);
    S.addClause(Block);
  }
  EXPECT_EQ(Models, 3);
}

TEST(SatIncremental, RetiredActivationLiteralFreesLaterQueries) {
  SatSolver S;
  Var X = S.newVar();
  Var Act = S.newVar();
  S.addClause(neg(Act), pos(X)); // act → x
  ASSERT_TRUE(S.solveUnderAssumptions({pos(Act)}));
  EXPECT_TRUE(S.modelValue(X));
  S.addClause(neg(Act)); // Retire.
  // x is unconstrained again: both phases must be satisfiable.
  EXPECT_TRUE(S.solveUnderAssumptions({neg(X)}));
  EXPECT_TRUE(S.solveUnderAssumptions({pos(X)}));
}

TEST(SatAssumptions, AnalyzeFinalLeavesNoStaleSeenBits) {
  // Regression: analyzeFinal must not re-mark a propagated variable via
  // its own literal in its reason clause. A leaked Seen bit makes a later
  // analyze() skip that variable during resolution and learn an unsound
  // clause, turning a satisfiable assumption query UNSAT.
  SatSolver S;
  Var A = S.newVar(), B = S.newVar(), C = S.newVar();
  S.addClause(neg(A), pos(B)); // a → b
  S.addClause(neg(B), pos(C)); // b → c
  // UNSAT under {a, ¬c}; the analyzeFinal walk resolves through b.
  ASSERT_FALSE(S.solveUnderAssumptions({pos(A), neg(C)}));
  EXPECT_TRUE(contains(S.failedAssumptions(), pos(A)));
  EXPECT_TRUE(contains(S.failedAssumptions(), neg(C)));

  Var X = S.newVar(), Y = S.newVar();
  S.addClause(neg(B), neg(X), pos(Y)); // b ∧ x → y
  S.addClause(neg(B), neg(X), neg(Y)); // b ∧ x → ¬y
  // Forces a conflict whose learned clause must retain ¬b.
  ASSERT_FALSE(S.solveUnderAssumptions({pos(A), pos(X)}));
  // x alone is satisfiable (x = 1, b = 0); a stale Seen[b] bit made this
  // wrongly UNSAT before the fix.
  EXPECT_TRUE(S.solveUnderAssumptions({pos(X)}));
  EXPECT_TRUE(S.solve());
}

TEST(SatIncremental, NewVarsMayBeAddedBetweenSolves) {
  SatSolver S;
  Var X = S.newVar();
  S.addClause(pos(X));
  ASSERT_TRUE(S.solve());
  Var Y = S.newVar();
  S.addClause(neg(Y));
  ASSERT_TRUE(S.solve());
  EXPECT_TRUE(S.modelValue(X));
  EXPECT_FALSE(S.modelValue(Y));
}

//===----------------------------------------------------------------------===//
// Clause-database management: reduceDB and simplify
//===----------------------------------------------------------------------===//

SatSolver::ReducePolicy aggressivePolicy() {
  // Reduce at every opportunity: first run after a single learnt, no
  // geometric growth. The production default would almost never fire on
  // test-sized instances; this schedule fires constantly, which is the
  // point — any unsoundness in deletion shows up immediately.
  SatSolver::ReducePolicy P;
  P.Enabled = true;
  P.FirstReduce = 1;
  P.Growth = 1.0;
  return P;
}

SatSolver::ReducePolicy disabledPolicy() {
  SatSolver::ReducePolicy P;
  P.Enabled = false;
  return P;
}

TEST(SatReduce, DeletesColdLearntsAndStaysCorrect) {
  SatSolver S;
  SatSolver::ReducePolicy P;
  P.FirstReduce = 16; // PHP(7,6) learns far more than 16 clauses.
  P.Growth = 1.1;
  S.setReducePolicy(P);
  Var Act = addGatedPigeonHole(S, 7);
  ASSERT_FALSE(S.solveUnderAssumptions({pos(Act)}));
  EXPECT_EQ(S.failedAssumptions(), std::vector<Lit>{pos(Act)});
  EXPECT_GT(S.stats().ReduceDbRuns, 0u);
  EXPECT_GT(S.stats().ClausesDeleted, 0u);
  EXPECT_GT(S.stats().ArenaBytesPeak, 0u);
  EXPECT_GE(S.stats().LearntPeak, S.numLearntClauses());
  // The instance (without the activation) is still satisfiable, and the
  // hard core is still UNSAT on a rerun over the reduced database.
  EXPECT_TRUE(S.solveUnderAssumptions({neg(Act)}));
  EXPECT_FALSE(S.solveUnderAssumptions({pos(Act)}));
}

TEST(SatReduce, ScheduleGatesOnThreshold) {
  // PHP(6,5) restarts several times (the reduce opportunity) and learns
  // hundreds of clauses — but a threshold it never reaches must keep
  // reduceDB idle, while the aggressive schedule must fire.
  auto RunWith = [](SatSolver::ReducePolicy P) {
    SatSolver S;
    S.setReducePolicy(P);
    Var Act = addGatedPigeonHole(S, 6);
    EXPECT_FALSE(S.solveUnderAssumptions({pos(Act)}));
    EXPECT_GT(S.stats().Restarts, 0u);
    return S.stats().ReduceDbRuns;
  };
  SatSolver::ReducePolicy Never;
  Never.FirstReduce = 1u << 30;
  EXPECT_EQ(RunWith(Never), 0u);
  EXPECT_EQ(RunWith(disabledPolicy()), 0u);
  EXPECT_GT(RunWith(aggressivePolicy()), 0u);
}

TEST(SatReduce, SimplifyRemovesRetiredActivationGroup) {
  SatSolver S;
  S.setReducePolicy(disabledPolicy());
  Var X = S.newVar(), Y = S.newVar();
  S.addClause(pos(X), pos(Y));
  size_t Base = S.numClauses();
  Var Act = S.newVar();
  S.addClause(neg(Act), pos(X));
  S.addClause(neg(Act), neg(Y), pos(X));
  ASSERT_TRUE(S.solveUnderAssumptions({pos(Act)}));
  EXPECT_TRUE(S.modelValue(X));
  // Retire and hard-delete: the database returns to its pre-goal size and
  // X is unconstrained again.
  S.addClause(neg(Act));
  S.simplify();
  EXPECT_EQ(S.numClauses(), Base);
  EXPECT_EQ(S.stats().ClausesDeleted, 2u);
  EXPECT_TRUE(S.solveUnderAssumptions({neg(X), pos(Y)}));
  EXPECT_TRUE(S.solveUnderAssumptions({pos(X)}));
}

TEST(SatReduce, SimplifyDropsLearntsDerivedFromRetiredGroup) {
  // Lemmas whose derivation used an act-guarded clause contain ¬act (act
  // never occurs positively in any clause, so resolution cannot remove
  // it); after retirement simplify() must delete them too, leaving no
  // clause that mentions the goal's variables.
  SatSolver S;
  S.setReducePolicy(disabledPolicy());
  Var Act = addGatedPigeonHole(S, 5);
  ASSERT_FALSE(S.solveUnderAssumptions({pos(Act)}));
  EXPECT_GT(S.numLearntClauses(), 0u);
  S.addClause(neg(Act));
  S.simplify();
  // Every clause of the gated group contained ¬act, and every lemma the
  // UNSAT proof learned resolved through the group: nothing survives.
  EXPECT_EQ(S.numClauses(), 0u);
  EXPECT_EQ(S.numLearntClauses(), 0u);
  EXPECT_TRUE(S.solve());
}

TEST(SatReduce, ArenaBytesTrackLiveClauses) {
  SatSolver S;
  EXPECT_EQ(S.arenaBytes(), 0u);
  Var A = S.newVar(), B = S.newVar(), C = S.newVar();
  S.addClause(pos(A), pos(B), pos(C));
  uint64_t One = S.arenaBytes();
  EXPECT_GT(One, 0u);
  S.addClause(neg(A), pos(B));
  EXPECT_GT(S.arenaBytes(), One);
  EXPECT_EQ(S.stats().ArenaBytesPeak, S.arenaBytes());
  // Unit clauses are enqueued, not stored: no arena growth.
  uint64_t BeforeUnit = S.arenaBytes();
  S.addClause(pos(A));
  EXPECT_EQ(S.arenaBytes(), BeforeUnit);
  // Deleting the now-satisfied clauses returns their bytes; the peak
  // stays where it was.
  uint64_t Peak = S.stats().ArenaBytesPeak;
  S.simplify();
  EXPECT_LT(S.arenaBytes(), BeforeUnit);
  EXPECT_EQ(S.stats().ArenaBytesPeak, Peak);
}

TEST(SatReduce, CountersAreMonotoneAcrossQueries) {
  SatSolver S;
  S.setReducePolicy(aggressivePolicy());
  Var Act = addGatedPigeonHole(S, 6);
  uint64_t Deleted = 0, Runs = 0, Arena = 0, Learnts = 0;
  for (int I = 0; I < 4; ++I) {
    EXPECT_FALSE(S.solveUnderAssumptions({pos(Act)}));
    const SatSolver::Stats &St = S.stats();
    EXPECT_GE(St.ClausesDeleted, Deleted);
    EXPECT_GE(St.ReduceDbRuns, Runs);
    EXPECT_GE(St.ArenaBytesPeak, Arena);
    EXPECT_GE(St.LearntPeak, Learnts);
    Deleted = St.ClausesDeleted;
    Runs = St.ReduceDbRuns;
    Arena = St.ArenaBytesPeak;
    Learnts = St.LearntPeak;
  }
  EXPECT_GT(Runs, 0u);
  EXPECT_GT(Deleted, 0u);
}

//===----------------------------------------------------------------------===//
// Differential fuzzing against a reference DPLL
//===----------------------------------------------------------------------===//

/// Minimal, obviously-correct DPLL with unit propagation.
class Dpll {
public:
  Dpll(std::vector<std::vector<Lit>> Clauses, int NumVars)
      : Clauses(std::move(Clauses)), Assign(NumVars, -1) {}

  bool solve() { return search(); }

private:
  enum ClauseState { Satisfied, Falsified, UnitAt, Unresolved };

  ClauseState classify(const std::vector<Lit> &C, Lit &Unit) const {
    size_t Free = 0;
    for (Lit L : C) {
      int V = Assign[L.var()];
      if (V < 0) {
        ++Free;
        Unit = L;
        continue;
      }
      if (bool(V) != L.negated())
        return Satisfied; // Literal true.
    }
    if (Free == 0)
      return Falsified;
    return Free == 1 ? UnitAt : Unresolved;
  }

  bool search() {
    // Propagate to fixpoint.
    std::vector<int> Trail;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const auto &C : Clauses) {
        Lit Unit = Lit::undef();
        switch (classify(C, Unit)) {
        case Falsified:
          for (int V : Trail)
            Assign[V] = -1;
          return false;
        case UnitAt:
          Assign[Unit.var()] = Unit.negated() ? 0 : 1;
          Trail.push_back(Unit.var());
          Changed = true;
          break;
        case Satisfied:
        case Unresolved:
          break;
        }
      }
    }
    int Branch = -1;
    for (size_t V = 0; V < Assign.size(); ++V)
      if (Assign[V] < 0) {
        Branch = int(V);
        break;
      }
    if (Branch < 0) {
      for (int V : Trail)
        Assign[V] = -1;
      return true;
    }
    for (int Value : {0, 1}) {
      Assign[Branch] = Value;
      if (search()) {
        for (int V : Trail)
          Assign[V] = -1;
        Assign[Branch] = -1;
        return true;
      }
    }
    Assign[Branch] = -1;
    for (int V : Trail)
      Assign[V] = -1;
    return false;
  }

  std::vector<std::vector<Lit>> Clauses;
  std::vector<int> Assign; ///< -1 unassigned, else 0/1.
};

struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed * 0x9e3779b97f4a7c15ull + 1) {}
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
  size_t below(size_t N) { return size_t(next() % N); }
};

class SatFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SatFuzz, MatchesDpllAndModelsCheck) {
  leapfrog::testing::reportFuzzConfig("SatFuzz", fuzzIters(400),
                                      uint64_t(GetParam()));
  Rng R{uint64_t(GetParam())};
  int NumVars = 4 + int(R.below(9));
  // Around the 3-SAT phase transition (ratio ~4.3) plus denser instances.
  size_t NumClauses = size_t(NumVars) * (3 + R.below(3));
  std::vector<std::vector<Lit>> Clauses;
  for (size_t I = 0; I < NumClauses; ++I) {
    std::vector<Lit> C;
    size_t Len = 1 + R.below(3);
    for (size_t K = 0; K < Len; ++K)
      C.push_back(Lit::mk(Var(R.below(NumVars)), R.below(2)));
    Clauses.push_back(std::move(C));
  }

  SatSolver S;
  for (int V = 0; V < NumVars; ++V)
    (void)S.newVar();
  bool AddOk = true;
  for (const auto &C : Clauses)
    AddOk &= S.addClause(C);
  bool Cdcl = AddOk && S.solve();
  bool Reference = Dpll(Clauses, NumVars).solve();
  ASSERT_EQ(Cdcl, Reference) << "CDCL disagrees with DPLL on seed "
                             << GetParam();
  if (!Cdcl)
    return;
  // The model must satisfy every clause.
  for (const auto &C : Clauses) {
    bool Satisfied = false;
    for (Lit L : C)
      Satisfied |= S.modelValue(L.var()) != L.negated();
    EXPECT_TRUE(Satisfied) << "model does not satisfy a clause, seed "
                           << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Random, SatFuzz,
                         ::testing::Range(0, fuzzIters(400)));

/// Incremental differential fuzz: one long-lived CDCL instance answers a
/// sequence of assumption queries interleaved with clause additions; every
/// answer is checked against a fresh DPLL run on (clauses + assumptions as
/// units), and every UNSAT failed-assumption set is re-validated to be
/// genuinely unsatisfiable with the clauses. This is exactly the usage
/// profile of the entailment sessions in smt/Solver.h.
class SatIncrementalFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SatIncrementalFuzz, MatchesDpllAcrossQuerySequence) {
  leapfrog::testing::reportFuzzConfig("SatIncrementalFuzz", fuzzIters(200),
                                      uint64_t(GetParam()) + 12345);
  Rng R{uint64_t(GetParam()) + 12345};
  int NumVars = 5 + int(R.below(8));
  SatSolver S;
  for (int V = 0; V < NumVars; ++V)
    (void)S.newVar();
  std::vector<std::vector<Lit>> Clauses;
  bool AddOk = true;

  auto AddRandomClauses = [&](size_t Count) {
    for (size_t I = 0; I < Count; ++I) {
      std::vector<Lit> C;
      size_t Len = 1 + R.below(3);
      for (size_t K = 0; K < Len; ++K)
        C.push_back(Lit::mk(Var(R.below(NumVars)), R.below(2)));
      Clauses.push_back(C);
      AddOk &= S.addClause(C);
    }
  };

  AddRandomClauses(size_t(NumVars) * 2);
  for (int Round = 0; Round < 10; ++Round) {
    // A random assumption set (possibly with duplicates/contradictions);
    // always ≥1 so every round exercises the multi-assumption machinery,
    // including analyzeFinal's Seen-bit hygiene across calls.
    std::vector<Lit> Assumptions;
    for (size_t K = 1 + R.below(4); K > 0; --K)
      Assumptions.push_back(Lit::mk(Var(R.below(NumVars)), R.below(2)));

    std::vector<std::vector<Lit>> WithUnits = Clauses;
    for (Lit A : Assumptions)
      WithUnits.push_back({A});
    bool Reference = Dpll(WithUnits, NumVars).solve();
    bool Cdcl = AddOk && S.solveUnderAssumptions(Assumptions);
    ASSERT_EQ(Cdcl, Reference)
        << "incremental CDCL disagrees with DPLL, seed " << GetParam()
        << " round " << Round;

    if (Cdcl) {
      for (const auto &C : Clauses) {
        bool Satisfied = false;
        for (Lit L : C)
          Satisfied |= S.modelValue(L.var()) != L.negated();
        EXPECT_TRUE(Satisfied) << "model violates a clause, seed "
                               << GetParam() << " round " << Round;
      }
      for (Lit A : Assumptions)
        EXPECT_TRUE(S.modelValue(A.var()) != A.negated())
            << "model violates an assumption, seed " << GetParam();
    } else if (AddOk && !S.failedAssumptions().empty()) {
      // The failed set must (a) be a subset of the assumptions and
      // (b) be jointly unsatisfiable with the clauses.
      std::vector<std::vector<Lit>> Core = Clauses;
      for (Lit F : S.failedAssumptions()) {
        bool IsAssumption = false;
        for (Lit A : Assumptions)
          IsAssumption |= A == F;
        EXPECT_TRUE(IsAssumption)
            << "failed set contains a non-assumption, seed " << GetParam();
        Core.push_back({F});
      }
      EXPECT_FALSE(Dpll(Core, NumVars).solve())
          << "failed-assumption set is not an unsat core, seed "
          << GetParam() << " round " << Round;
    }
    // Grow the instance between queries (the checker's R keeps growing).
    AddRandomClauses(1 + R.below(3));
  }
}

INSTANTIATE_TEST_SUITE_P(Random, SatIncrementalFuzz,
                         ::testing::Range(0, fuzzIters(200)));

/// Clause-DB management differential fuzz: the same random incremental
/// workload — clause additions, assumption queries, activation-guarded
/// clause groups that get retired and hard-deleted — is solved by one
/// solver with reduceDB forced onto the aggressive schedule and one with
/// reduction disabled. Both must agree with each other and with a DPLL
/// run over the full logical clause set (retired groups stay in the DPLL
/// set: their guards are falsified by the retirement units, so agreement
/// proves deletion changed no answer); every UNSAT failed-assumption set
/// is re-validated as a genuine core, and every model is checked against
/// every clause ever added — including ones the solvers deleted.
class SatReduceFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SatReduceFuzz, ReductionAndPurgeChangeNoAnswer) {
  leapfrog::testing::reportFuzzConfig("SatReduceFuzz", fuzzIters(200),
                                      uint64_t(GetParam()) + 424242);
  Rng R{uint64_t(GetParam()) + 424242};
  int NumVars = 6 + int(R.below(8));
  SatSolver Reducing, Plain;
  Reducing.setReducePolicy(aggressivePolicy());
  Plain.setReducePolicy(disabledPolicy());
  // Variable allocation must stay aligned between the two solvers.
  auto NewVar = [&]() {
    Var V = Reducing.newVar();
    Var V2 = Plain.newVar();
    EXPECT_EQ(V, V2);
    return V;
  };
  for (int V = 0; V < NumVars; ++V)
    (void)NewVar();

  std::vector<std::vector<Lit>> AllClauses; ///< The logical clause set.
  bool AddOk = true;
  auto Add = [&](std::vector<Lit> C) {
    AllClauses.push_back(C);
    AddOk &= Reducing.addClause(C);
    AddOk &= Plain.addClause(std::move(C));
  };
  auto RandomLit = [&]() {
    return Lit::mk(Var(R.below(size_t(NumVars))), R.below(2));
  };
  auto AddRandomClauses = [&](size_t Count, Lit Guard) {
    for (size_t I = 0; I < Count; ++I) {
      std::vector<Lit> C;
      if (Guard != Lit::undef())
        C.push_back(~Guard);
      for (size_t K = 1 + R.below(3); K > 0; --K)
        C.push_back(RandomLit());
      Add(std::move(C));
    }
  };

  AddRandomClauses(size_t(NumVars) * 2, Lit::undef());
  std::vector<Lit> LiveGroups; ///< Activation literals not yet retired.
  int TotalVars = NumVars;
  for (int Round = 0; Round < 12; ++Round) {
    // Open a fresh activation-guarded group some rounds; its clauses are
    // only in force while its activation literal is assumed.
    if (R.below(2) == 0) {
      Lit Act = Lit::mk(NewVar(), false);
      ++TotalVars;
      AddRandomClauses(1 + R.below(4), Act);
      LiveGroups.push_back(Act);
    }

    // Query under random assumptions plus every live group's activation.
    std::vector<Lit> Assumptions = LiveGroups;
    for (size_t K = R.below(3); K > 0; --K)
      Assumptions.push_back(RandomLit());

    std::vector<std::vector<Lit>> WithUnits = AllClauses;
    for (Lit A : Assumptions)
      WithUnits.push_back({A});
    bool Reference = Dpll(WithUnits, TotalVars).solve();
    bool GotReducing = AddOk && Reducing.solveUnderAssumptions(Assumptions);
    bool GotPlain = AddOk && Plain.solveUnderAssumptions(Assumptions);
    ASSERT_EQ(GotReducing, Reference)
        << "reduceDB solver diverges from DPLL, seed " << GetParam()
        << " round " << Round;
    ASSERT_EQ(GotPlain, Reference)
        << "reduce-off solver diverges from DPLL, seed " << GetParam()
        << " round " << Round;

    for (SatSolver *S : {&Reducing, &Plain}) {
      if (Reference) {
        // The model must satisfy every clause ever added — deleted ones
        // included, which is precisely what makes deletion sound: they
        // are all satisfied by the retirement units the model contains.
        for (const auto &C : AllClauses) {
          bool Satisfied = false;
          for (Lit L : C)
            Satisfied |= S->modelValue(L.var()) != L.negated();
          EXPECT_TRUE(Satisfied)
              << "model violates a clause, seed " << GetParam() << " round "
              << Round;
        }
        for (Lit A : Assumptions)
          EXPECT_TRUE(S->modelValue(A.var()) != A.negated())
              << "model violates an assumption, seed " << GetParam();
      } else if (AddOk && !S->failedAssumptions().empty()) {
        std::vector<std::vector<Lit>> Core = AllClauses;
        for (Lit F : S->failedAssumptions()) {
          bool IsAssumption = false;
          for (Lit A : Assumptions)
            IsAssumption |= A == F;
          EXPECT_TRUE(IsAssumption)
              << "failed set contains a non-assumption, seed " << GetParam();
          Core.push_back({F});
        }
        EXPECT_FALSE(Dpll(Core, TotalVars).solve())
            << "failed-assumption set is not an unsat core, seed "
            << GetParam() << " round " << Round;
      }
    }

    // Retire a group now and then: both solvers hard-delete everything
    // the activation literal guarded; the logical set keeps the clauses
    // and gains the retirement unit.
    if (!LiveGroups.empty() && R.below(3) == 0) {
      size_t Pick = R.below(LiveGroups.size());
      Lit Act = LiveGroups[Pick];
      LiveGroups.erase(LiveGroups.begin() + long(Pick));
      Add({~Act});
      Reducing.simplify();
      Plain.simplify();
    }
    AddRandomClauses(R.below(3), Lit::undef());
  }
}

INSTANTIATE_TEST_SUITE_P(Random, SatReduceFuzz,
                         ::testing::Range(0, fuzzIters(200)));

} // namespace
