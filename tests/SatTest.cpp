//===- SatTest.cpp - CDCL SAT solver tests --------------------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests and randomized differential tests for the CDCL solver. The
/// reference oracle is a tiny recursive DPLL over the same clause set, so
/// any divergence (wrong SAT/UNSAT, bogus model) is caught on thousands
/// of random instances around the phase-transition clause density.
///
//===----------------------------------------------------------------------===//

#include "smt/Sat.h"

#include <gtest/gtest.h>

using namespace leapfrog;
using namespace leapfrog::smt;

namespace {

Lit pos(Var V) { return Lit::mk(V, false); }
Lit neg(Var V) { return Lit::mk(V, true); }

TEST(Sat, EmptyInstanceIsSat) {
  SatSolver S;
  EXPECT_TRUE(S.solve());
}

TEST(Sat, SingleUnit) {
  SatSolver S;
  Var A = S.newVar();
  EXPECT_TRUE(S.addClause(pos(A)));
  EXPECT_TRUE(S.solve());
  EXPECT_TRUE(S.modelValue(A));
}

TEST(Sat, ContradictoryUnitsAreUnsat) {
  SatSolver S;
  Var A = S.newVar();
  S.addClause(pos(A));
  EXPECT_FALSE(S.addClause(neg(A)));
  EXPECT_FALSE(S.solve());
}

TEST(Sat, EmptyClauseIsUnsat) {
  SatSolver S;
  (void)S.newVar();
  EXPECT_FALSE(S.addClause(std::vector<Lit>{}));
  EXPECT_FALSE(S.solve());
}

TEST(Sat, TautologicalClauseIgnored) {
  SatSolver S;
  Var A = S.newVar();
  EXPECT_TRUE(S.addClause(std::vector<Lit>{pos(A), neg(A)}));
  EXPECT_TRUE(S.solve());
}

TEST(Sat, DuplicateLiteralsCollapse) {
  SatSolver S;
  Var A = S.newVar();
  Var B = S.newVar();
  EXPECT_TRUE(S.addClause(std::vector<Lit>{pos(A), pos(A), pos(B)}));
  S.addClause(neg(A));
  S.addClause(neg(B));
  EXPECT_FALSE(S.solve());
}

TEST(Sat, PropagationChain) {
  // a, a->b, b->c, c->d: all forced true without a single decision.
  SatSolver S;
  Var A = S.newVar(), B = S.newVar(), C = S.newVar(), D = S.newVar();
  S.addClause(pos(A));
  S.addClause(neg(A), pos(B));
  S.addClause(neg(B), pos(C));
  S.addClause(neg(C), pos(D));
  ASSERT_TRUE(S.solve());
  EXPECT_TRUE(S.modelValue(A));
  EXPECT_TRUE(S.modelValue(B));
  EXPECT_TRUE(S.modelValue(C));
  EXPECT_TRUE(S.modelValue(D));
  EXPECT_EQ(S.stats().Decisions, 0u);
}

TEST(Sat, PigeonHole3Into2IsUnsat) {
  // PHP(3,2): classic small UNSAT instance requiring real search.
  SatSolver S;
  Var P[3][2];
  for (auto &Row : P)
    for (Var &V : Row)
      V = S.newVar();
  for (int I = 0; I < 3; ++I)
    S.addClause(pos(P[I][0]), pos(P[I][1]));
  for (int H = 0; H < 2; ++H)
    for (int I = 0; I < 3; ++I)
      for (int J = I + 1; J < 3; ++J)
        S.addClause(neg(P[I][H]), neg(P[J][H]));
  EXPECT_FALSE(S.solve());
}

TEST(Sat, XorChainForcesManyConflicts) {
  // x1 xor x2 xor ... xor x10 = 1 together with all-equal constraints is
  // satisfiable only with all-true for odd chain lengths; checks learning
  // across restarts (this shape triggered the Luby regression).
  SatSolver S;
  constexpr int N = 9;
  Var X[N];
  for (Var &V : X)
    V = S.newVar();
  // Equality chain.
  for (int I = 0; I + 1 < N; ++I) {
    S.addClause(neg(X[I]), pos(X[I + 1]));
    S.addClause(pos(X[I]), neg(X[I + 1]));
  }
  S.addClause(pos(X[0]));
  ASSERT_TRUE(S.solve());
  for (Var V : X)
    EXPECT_TRUE(S.modelValue(V));
}

//===----------------------------------------------------------------------===//
// Differential fuzzing against a reference DPLL
//===----------------------------------------------------------------------===//

/// Minimal, obviously-correct DPLL with unit propagation.
class Dpll {
public:
  Dpll(std::vector<std::vector<Lit>> Clauses, int NumVars)
      : Clauses(std::move(Clauses)), Assign(NumVars, -1) {}

  bool solve() { return search(); }

private:
  enum ClauseState { Satisfied, Falsified, UnitAt, Unresolved };

  ClauseState classify(const std::vector<Lit> &C, Lit &Unit) const {
    size_t Free = 0;
    for (Lit L : C) {
      int V = Assign[L.var()];
      if (V < 0) {
        ++Free;
        Unit = L;
        continue;
      }
      if (bool(V) != L.negated())
        return Satisfied; // Literal true.
    }
    if (Free == 0)
      return Falsified;
    return Free == 1 ? UnitAt : Unresolved;
  }

  bool search() {
    // Propagate to fixpoint.
    std::vector<int> Trail;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const auto &C : Clauses) {
        Lit Unit = Lit::undef();
        switch (classify(C, Unit)) {
        case Falsified:
          for (int V : Trail)
            Assign[V] = -1;
          return false;
        case UnitAt:
          Assign[Unit.var()] = Unit.negated() ? 0 : 1;
          Trail.push_back(Unit.var());
          Changed = true;
          break;
        case Satisfied:
        case Unresolved:
          break;
        }
      }
    }
    int Branch = -1;
    for (size_t V = 0; V < Assign.size(); ++V)
      if (Assign[V] < 0) {
        Branch = int(V);
        break;
      }
    if (Branch < 0) {
      for (int V : Trail)
        Assign[V] = -1;
      return true;
    }
    for (int Value : {0, 1}) {
      Assign[Branch] = Value;
      if (search()) {
        for (int V : Trail)
          Assign[V] = -1;
        Assign[Branch] = -1;
        return true;
      }
    }
    Assign[Branch] = -1;
    for (int V : Trail)
      Assign[V] = -1;
    return false;
  }

  std::vector<std::vector<Lit>> Clauses;
  std::vector<int> Assign; ///< -1 unassigned, else 0/1.
};

struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed * 0x9e3779b97f4a7c15ull + 1) {}
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
  size_t below(size_t N) { return size_t(next() % N); }
};

class SatFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SatFuzz, MatchesDpllAndModelsCheck) {
  Rng R{uint64_t(GetParam())};
  int NumVars = 4 + int(R.below(9));
  // Around the 3-SAT phase transition (ratio ~4.3) plus denser instances.
  size_t NumClauses = size_t(NumVars) * (3 + R.below(3));
  std::vector<std::vector<Lit>> Clauses;
  for (size_t I = 0; I < NumClauses; ++I) {
    std::vector<Lit> C;
    size_t Len = 1 + R.below(3);
    for (size_t K = 0; K < Len; ++K)
      C.push_back(Lit::mk(Var(R.below(NumVars)), R.below(2)));
    Clauses.push_back(std::move(C));
  }

  SatSolver S;
  for (int V = 0; V < NumVars; ++V)
    (void)S.newVar();
  bool AddOk = true;
  for (const auto &C : Clauses)
    AddOk &= S.addClause(C);
  bool Cdcl = AddOk && S.solve();
  bool Reference = Dpll(Clauses, NumVars).solve();
  ASSERT_EQ(Cdcl, Reference) << "CDCL disagrees with DPLL on seed "
                             << GetParam();
  if (!Cdcl)
    return;
  // The model must satisfy every clause.
  for (const auto &C : Clauses) {
    bool Satisfied = false;
    for (Lit L : C)
      Satisfied |= S.modelValue(L.var()) != L.negated();
    EXPECT_TRUE(Satisfied) << "model does not satisfy a clause, seed "
                           << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Random, SatFuzz, ::testing::Range(0, 400));

} // namespace
