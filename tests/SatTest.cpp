//===- SatTest.cpp - CDCL SAT solver tests --------------------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests and randomized differential tests for the CDCL solver. The
/// reference oracle is a tiny recursive DPLL over the same clause set, so
/// any divergence (wrong SAT/UNSAT, bogus model) is caught on thousands
/// of random instances around the phase-transition clause density.
///
//===----------------------------------------------------------------------===//

#include "smt/Sat.h"

#include <gtest/gtest.h>

using namespace leapfrog;
using namespace leapfrog::smt;

namespace {

Lit pos(Var V) { return Lit::mk(V, false); }
Lit neg(Var V) { return Lit::mk(V, true); }

TEST(Sat, EmptyInstanceIsSat) {
  SatSolver S;
  EXPECT_TRUE(S.solve());
}

TEST(Sat, SingleUnit) {
  SatSolver S;
  Var A = S.newVar();
  EXPECT_TRUE(S.addClause(pos(A)));
  EXPECT_TRUE(S.solve());
  EXPECT_TRUE(S.modelValue(A));
}

TEST(Sat, ContradictoryUnitsAreUnsat) {
  SatSolver S;
  Var A = S.newVar();
  S.addClause(pos(A));
  EXPECT_FALSE(S.addClause(neg(A)));
  EXPECT_FALSE(S.solve());
}

TEST(Sat, EmptyClauseIsUnsat) {
  SatSolver S;
  (void)S.newVar();
  EXPECT_FALSE(S.addClause(std::vector<Lit>{}));
  EXPECT_FALSE(S.solve());
}

TEST(Sat, TautologicalClauseIgnored) {
  SatSolver S;
  Var A = S.newVar();
  EXPECT_TRUE(S.addClause(std::vector<Lit>{pos(A), neg(A)}));
  EXPECT_TRUE(S.solve());
}

TEST(Sat, DuplicateLiteralsCollapse) {
  SatSolver S;
  Var A = S.newVar();
  Var B = S.newVar();
  EXPECT_TRUE(S.addClause(std::vector<Lit>{pos(A), pos(A), pos(B)}));
  S.addClause(neg(A));
  S.addClause(neg(B));
  EXPECT_FALSE(S.solve());
}

TEST(Sat, PropagationChain) {
  // a, a->b, b->c, c->d: all forced true without a single decision.
  SatSolver S;
  Var A = S.newVar(), B = S.newVar(), C = S.newVar(), D = S.newVar();
  S.addClause(pos(A));
  S.addClause(neg(A), pos(B));
  S.addClause(neg(B), pos(C));
  S.addClause(neg(C), pos(D));
  ASSERT_TRUE(S.solve());
  EXPECT_TRUE(S.modelValue(A));
  EXPECT_TRUE(S.modelValue(B));
  EXPECT_TRUE(S.modelValue(C));
  EXPECT_TRUE(S.modelValue(D));
  EXPECT_EQ(S.stats().Decisions, 0u);
}

TEST(Sat, PigeonHole3Into2IsUnsat) {
  // PHP(3,2): classic small UNSAT instance requiring real search.
  SatSolver S;
  Var P[3][2];
  for (auto &Row : P)
    for (Var &V : Row)
      V = S.newVar();
  for (int I = 0; I < 3; ++I)
    S.addClause(pos(P[I][0]), pos(P[I][1]));
  for (int H = 0; H < 2; ++H)
    for (int I = 0; I < 3; ++I)
      for (int J = I + 1; J < 3; ++J)
        S.addClause(neg(P[I][H]), neg(P[J][H]));
  EXPECT_FALSE(S.solve());
}

TEST(Sat, XorChainForcesManyConflicts) {
  // x1 xor x2 xor ... xor x10 = 1 together with all-equal constraints is
  // satisfiable only with all-true for odd chain lengths; checks learning
  // across restarts (this shape triggered the Luby regression).
  SatSolver S;
  constexpr int N = 9;
  Var X[N];
  for (Var &V : X)
    V = S.newVar();
  // Equality chain.
  for (int I = 0; I + 1 < N; ++I) {
    S.addClause(neg(X[I]), pos(X[I + 1]));
    S.addClause(pos(X[I]), neg(X[I + 1]));
  }
  S.addClause(pos(X[0]));
  ASSERT_TRUE(S.solve());
  for (Var V : X)
    EXPECT_TRUE(S.modelValue(V));
}

//===----------------------------------------------------------------------===//
// Incremental solving under assumptions
//===----------------------------------------------------------------------===//

/// True iff \p L occurs in \p Lits.
bool contains(const std::vector<Lit> &Lits, Lit L) {
  for (Lit X : Lits)
    if (X == L)
      return true;
  return false;
}

TEST(SatAssumptions, SolveUnderAssumptionsBasic) {
  SatSolver S;
  Var X = S.newVar(), Y = S.newVar();
  S.addClause(pos(X), pos(Y));
  ASSERT_TRUE(S.solveUnderAssumptions({neg(X)}));
  EXPECT_FALSE(S.modelValue(X));
  EXPECT_TRUE(S.modelValue(Y));
  ASSERT_FALSE(S.solveUnderAssumptions({neg(X), neg(Y)}));
  // The failed set is a subset of the assumptions that is jointly
  // unsatisfiable with the clauses — here it must name both.
  EXPECT_TRUE(contains(S.failedAssumptions(), neg(X)));
  EXPECT_TRUE(contains(S.failedAssumptions(), neg(Y)));
  // Assumptions are transient: the instance itself is still satisfiable.
  EXPECT_TRUE(S.solve());
}

TEST(SatAssumptions, FailedSetOmitsIrrelevantAssumptions) {
  SatSolver S;
  Var A = S.newVar(), B = S.newVar(), C = S.newVar();
  S.addClause(neg(A), pos(B)); // a → b
  ASSERT_FALSE(S.solveUnderAssumptions({pos(A), neg(B), pos(C)}));
  const std::vector<Lit> &Failed = S.failedAssumptions();
  EXPECT_EQ(Failed.size(), 2u);
  EXPECT_TRUE(contains(Failed, pos(A)));
  EXPECT_TRUE(contains(Failed, neg(B)));
  EXPECT_FALSE(contains(Failed, pos(C)));
}

TEST(SatAssumptions, GloballyUnsatReportsEmptyFailedSet) {
  SatSolver S;
  Var X = S.newVar(), Y = S.newVar();
  S.addClause(pos(X));
  EXPECT_FALSE(S.addClause(neg(X)));
  EXPECT_FALSE(S.solveUnderAssumptions({pos(Y)}));
  // Empty set: the clauses alone are unsatisfiable, no assumption needed.
  EXPECT_TRUE(S.failedAssumptions().empty());
}

TEST(SatAssumptions, ContradictoryAssumptionsFail) {
  SatSolver S;
  Var X = S.newVar();
  ASSERT_FALSE(S.solveUnderAssumptions({pos(X), neg(X)}));
  EXPECT_TRUE(contains(S.failedAssumptions(), pos(X)));
  EXPECT_TRUE(contains(S.failedAssumptions(), neg(X)));
  EXPECT_TRUE(S.solve());
}

TEST(SatAssumptions, AssumptionImpliedByPropagationIsSkipped) {
  // An assumption already true when planted opens a dummy decision level;
  // the remaining assumptions must still line up correctly.
  SatSolver S;
  Var A = S.newVar(), B = S.newVar(), C = S.newVar();
  S.addClause(pos(A));           // a holds at level 0.
  S.addClause(neg(B), pos(C));   // b → c
  ASSERT_TRUE(S.solveUnderAssumptions({pos(A), pos(B)}));
  EXPECT_TRUE(S.modelValue(B));
  EXPECT_TRUE(S.modelValue(C));
  ASSERT_FALSE(S.solveUnderAssumptions({pos(A), pos(B), neg(C)}));
  EXPECT_FALSE(contains(S.failedAssumptions(), pos(A)));
}

/// Gates PHP(\p Pigeons, \p Pigeons - 1) behind an activation literal so
/// the hard UNSAT core is reusable across queries.
Var addGatedPigeonHole(SatSolver &S, int Pigeons) {
  int Holes = Pigeons - 1;
  Var Act = S.newVar();
  std::vector<std::vector<Var>> P(Pigeons, std::vector<Var>(Holes));
  for (auto &Row : P)
    for (Var &V : Row)
      V = S.newVar();
  for (int I = 0; I < Pigeons; ++I) {
    std::vector<Lit> C{neg(Act)};
    for (int H = 0; H < Holes; ++H)
      C.push_back(pos(P[I][H]));
    S.addClause(C);
  }
  for (int H = 0; H < Holes; ++H)
    for (int I = 0; I < Pigeons; ++I)
      for (int J = I + 1; J < Pigeons; ++J)
        S.addClause(std::vector<Lit>{neg(Act), neg(P[I][H]), neg(P[J][H])});
  return Act;
}

TEST(SatAssumptions, LearnedClausesSpeedUpRepeatedQueries) {
  SatSolver S;
  Var Act = addGatedPigeonHole(S, 5);
  size_t ClausesBefore = S.numClauses();

  ASSERT_FALSE(S.solveUnderAssumptions({pos(Act)}));
  EXPECT_EQ(S.failedAssumptions(), std::vector<Lit>{pos(Act)});
  uint64_t FirstConflicts = S.stats().Conflicts;
  EXPECT_GT(FirstConflicts, 0u);
  // Learned clauses were retained across the call.
  EXPECT_GT(S.numClauses(), ClausesBefore);

  // The same query again: the learned clauses (and eventually a level-0
  // unit ¬act) make the rerun strictly cheaper than the first solve.
  ASSERT_FALSE(S.solveUnderAssumptions({pos(Act)}));
  uint64_t SecondConflicts = S.stats().Conflicts - FirstConflicts;
  EXPECT_LT(SecondConflicts, FirstConflicts);

  // Without the activation literal the instance stays satisfiable.
  EXPECT_TRUE(S.solve());
}

TEST(SatAssumptions, SurvivesRestartsAndPhaseSaving) {
  // PHP(6,5) forces well over the 64-conflict restart threshold, so the
  // assumption-planting loop must re-plant across restarts; afterwards the
  // solver must still answer fresh queries on the same instance.
  SatSolver S;
  Var Act = addGatedPigeonHole(S, 6);
  ASSERT_FALSE(S.solveUnderAssumptions({pos(Act)}));
  EXPECT_GT(S.stats().Restarts, 0u);
  EXPECT_EQ(S.failedAssumptions(), std::vector<Lit>{pos(Act)});
  EXPECT_TRUE(S.solveUnderAssumptions({neg(Act)}));
  EXPECT_FALSE(S.modelValue(Act));
}

TEST(SatIncremental, ClausesMayBeAddedBetweenSolves) {
  // Enumerate the three models of (x ∨ y) by blocking each in turn — the
  // activation-free form of the checker's retire-and-continue pattern.
  SatSolver S;
  Var X = S.newVar(), Y = S.newVar();
  S.addClause(pos(X), pos(Y));
  int Models = 0;
  while (S.solve()) {
    std::vector<Lit> Block{Lit::mk(X, S.modelValue(X)),
                           Lit::mk(Y, S.modelValue(Y))};
    ++Models;
    ASSERT_LE(Models, 3);
    S.addClause(Block);
  }
  EXPECT_EQ(Models, 3);
}

TEST(SatIncremental, RetiredActivationLiteralFreesLaterQueries) {
  SatSolver S;
  Var X = S.newVar();
  Var Act = S.newVar();
  S.addClause(neg(Act), pos(X)); // act → x
  ASSERT_TRUE(S.solveUnderAssumptions({pos(Act)}));
  EXPECT_TRUE(S.modelValue(X));
  S.addClause(neg(Act)); // Retire.
  // x is unconstrained again: both phases must be satisfiable.
  EXPECT_TRUE(S.solveUnderAssumptions({neg(X)}));
  EXPECT_TRUE(S.solveUnderAssumptions({pos(X)}));
}

TEST(SatAssumptions, AnalyzeFinalLeavesNoStaleSeenBits) {
  // Regression: analyzeFinal must not re-mark a propagated variable via
  // its own literal in its reason clause. A leaked Seen bit makes a later
  // analyze() skip that variable during resolution and learn an unsound
  // clause, turning a satisfiable assumption query UNSAT.
  SatSolver S;
  Var A = S.newVar(), B = S.newVar(), C = S.newVar();
  S.addClause(neg(A), pos(B)); // a → b
  S.addClause(neg(B), pos(C)); // b → c
  // UNSAT under {a, ¬c}; the analyzeFinal walk resolves through b.
  ASSERT_FALSE(S.solveUnderAssumptions({pos(A), neg(C)}));
  EXPECT_TRUE(contains(S.failedAssumptions(), pos(A)));
  EXPECT_TRUE(contains(S.failedAssumptions(), neg(C)));

  Var X = S.newVar(), Y = S.newVar();
  S.addClause(neg(B), neg(X), pos(Y)); // b ∧ x → y
  S.addClause(neg(B), neg(X), neg(Y)); // b ∧ x → ¬y
  // Forces a conflict whose learned clause must retain ¬b.
  ASSERT_FALSE(S.solveUnderAssumptions({pos(A), pos(X)}));
  // x alone is satisfiable (x = 1, b = 0); a stale Seen[b] bit made this
  // wrongly UNSAT before the fix.
  EXPECT_TRUE(S.solveUnderAssumptions({pos(X)}));
  EXPECT_TRUE(S.solve());
}

TEST(SatIncremental, NewVarsMayBeAddedBetweenSolves) {
  SatSolver S;
  Var X = S.newVar();
  S.addClause(pos(X));
  ASSERT_TRUE(S.solve());
  Var Y = S.newVar();
  S.addClause(neg(Y));
  ASSERT_TRUE(S.solve());
  EXPECT_TRUE(S.modelValue(X));
  EXPECT_FALSE(S.modelValue(Y));
}

//===----------------------------------------------------------------------===//
// Differential fuzzing against a reference DPLL
//===----------------------------------------------------------------------===//

/// Minimal, obviously-correct DPLL with unit propagation.
class Dpll {
public:
  Dpll(std::vector<std::vector<Lit>> Clauses, int NumVars)
      : Clauses(std::move(Clauses)), Assign(NumVars, -1) {}

  bool solve() { return search(); }

private:
  enum ClauseState { Satisfied, Falsified, UnitAt, Unresolved };

  ClauseState classify(const std::vector<Lit> &C, Lit &Unit) const {
    size_t Free = 0;
    for (Lit L : C) {
      int V = Assign[L.var()];
      if (V < 0) {
        ++Free;
        Unit = L;
        continue;
      }
      if (bool(V) != L.negated())
        return Satisfied; // Literal true.
    }
    if (Free == 0)
      return Falsified;
    return Free == 1 ? UnitAt : Unresolved;
  }

  bool search() {
    // Propagate to fixpoint.
    std::vector<int> Trail;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const auto &C : Clauses) {
        Lit Unit = Lit::undef();
        switch (classify(C, Unit)) {
        case Falsified:
          for (int V : Trail)
            Assign[V] = -1;
          return false;
        case UnitAt:
          Assign[Unit.var()] = Unit.negated() ? 0 : 1;
          Trail.push_back(Unit.var());
          Changed = true;
          break;
        case Satisfied:
        case Unresolved:
          break;
        }
      }
    }
    int Branch = -1;
    for (size_t V = 0; V < Assign.size(); ++V)
      if (Assign[V] < 0) {
        Branch = int(V);
        break;
      }
    if (Branch < 0) {
      for (int V : Trail)
        Assign[V] = -1;
      return true;
    }
    for (int Value : {0, 1}) {
      Assign[Branch] = Value;
      if (search()) {
        for (int V : Trail)
          Assign[V] = -1;
        Assign[Branch] = -1;
        return true;
      }
    }
    Assign[Branch] = -1;
    for (int V : Trail)
      Assign[V] = -1;
    return false;
  }

  std::vector<std::vector<Lit>> Clauses;
  std::vector<int> Assign; ///< -1 unassigned, else 0/1.
};

struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed * 0x9e3779b97f4a7c15ull + 1) {}
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
  size_t below(size_t N) { return size_t(next() % N); }
};

class SatFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SatFuzz, MatchesDpllAndModelsCheck) {
  Rng R{uint64_t(GetParam())};
  int NumVars = 4 + int(R.below(9));
  // Around the 3-SAT phase transition (ratio ~4.3) plus denser instances.
  size_t NumClauses = size_t(NumVars) * (3 + R.below(3));
  std::vector<std::vector<Lit>> Clauses;
  for (size_t I = 0; I < NumClauses; ++I) {
    std::vector<Lit> C;
    size_t Len = 1 + R.below(3);
    for (size_t K = 0; K < Len; ++K)
      C.push_back(Lit::mk(Var(R.below(NumVars)), R.below(2)));
    Clauses.push_back(std::move(C));
  }

  SatSolver S;
  for (int V = 0; V < NumVars; ++V)
    (void)S.newVar();
  bool AddOk = true;
  for (const auto &C : Clauses)
    AddOk &= S.addClause(C);
  bool Cdcl = AddOk && S.solve();
  bool Reference = Dpll(Clauses, NumVars).solve();
  ASSERT_EQ(Cdcl, Reference) << "CDCL disagrees with DPLL on seed "
                             << GetParam();
  if (!Cdcl)
    return;
  // The model must satisfy every clause.
  for (const auto &C : Clauses) {
    bool Satisfied = false;
    for (Lit L : C)
      Satisfied |= S.modelValue(L.var()) != L.negated();
    EXPECT_TRUE(Satisfied) << "model does not satisfy a clause, seed "
                           << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Random, SatFuzz, ::testing::Range(0, 400));

/// Incremental differential fuzz: one long-lived CDCL instance answers a
/// sequence of assumption queries interleaved with clause additions; every
/// answer is checked against a fresh DPLL run on (clauses + assumptions as
/// units), and every UNSAT failed-assumption set is re-validated to be
/// genuinely unsatisfiable with the clauses. This is exactly the usage
/// profile of the entailment sessions in smt/Solver.h.
class SatIncrementalFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SatIncrementalFuzz, MatchesDpllAcrossQuerySequence) {
  Rng R{uint64_t(GetParam()) + 12345};
  int NumVars = 5 + int(R.below(8));
  SatSolver S;
  for (int V = 0; V < NumVars; ++V)
    (void)S.newVar();
  std::vector<std::vector<Lit>> Clauses;
  bool AddOk = true;

  auto AddRandomClauses = [&](size_t Count) {
    for (size_t I = 0; I < Count; ++I) {
      std::vector<Lit> C;
      size_t Len = 1 + R.below(3);
      for (size_t K = 0; K < Len; ++K)
        C.push_back(Lit::mk(Var(R.below(NumVars)), R.below(2)));
      Clauses.push_back(C);
      AddOk &= S.addClause(C);
    }
  };

  AddRandomClauses(size_t(NumVars) * 2);
  for (int Round = 0; Round < 10; ++Round) {
    // A random assumption set (possibly with duplicates/contradictions);
    // always ≥1 so every round exercises the multi-assumption machinery,
    // including analyzeFinal's Seen-bit hygiene across calls.
    std::vector<Lit> Assumptions;
    for (size_t K = 1 + R.below(4); K > 0; --K)
      Assumptions.push_back(Lit::mk(Var(R.below(NumVars)), R.below(2)));

    std::vector<std::vector<Lit>> WithUnits = Clauses;
    for (Lit A : Assumptions)
      WithUnits.push_back({A});
    bool Reference = Dpll(WithUnits, NumVars).solve();
    bool Cdcl = AddOk && S.solveUnderAssumptions(Assumptions);
    ASSERT_EQ(Cdcl, Reference)
        << "incremental CDCL disagrees with DPLL, seed " << GetParam()
        << " round " << Round;

    if (Cdcl) {
      for (const auto &C : Clauses) {
        bool Satisfied = false;
        for (Lit L : C)
          Satisfied |= S.modelValue(L.var()) != L.negated();
        EXPECT_TRUE(Satisfied) << "model violates a clause, seed "
                               << GetParam() << " round " << Round;
      }
      for (Lit A : Assumptions)
        EXPECT_TRUE(S.modelValue(A.var()) != A.negated())
            << "model violates an assumption, seed " << GetParam();
    } else if (AddOk && !S.failedAssumptions().empty()) {
      // The failed set must (a) be a subset of the assumptions and
      // (b) be jointly unsatisfiable with the clauses.
      std::vector<std::vector<Lit>> Core = Clauses;
      for (Lit F : S.failedAssumptions()) {
        bool IsAssumption = false;
        for (Lit A : Assumptions)
          IsAssumption |= A == F;
        EXPECT_TRUE(IsAssumption)
            << "failed set contains a non-assumption, seed " << GetParam();
        Core.push_back({F});
      }
      EXPECT_FALSE(Dpll(Core, NumVars).solve())
          << "failed-assumption set is not an unsat core, seed "
          << GetParam() << " round " << Round;
    }
    // Grow the instance between queries (the checker's R keeps growing).
    AddRandomClauses(1 + R.below(3));
  }
}

INSTANTIATE_TEST_SUITE_P(Random, SatIncrementalFuzz,
                         ::testing::Range(0, 200));

} // namespace
