//===- ServeTest.cpp - The leapfrog-serve service layer -------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Tier-1 coverage for the service stack, bottom up:
//
//  * serve::Json — parse/serialize round trips, escapes, error paths.
//  * serve::ResultCache — the never-hash-only probe discipline, pinned
//    with a *forced* fingerprint collision (equal 128-bit hash, distinct
//    canonical text): the collision must read as a miss, not a hit.
//  * core::Engine — structured rejection of unresolvable backend specs
//    (construction AND the checkWithSpec inline path), warm per-worker
//    solver reuse: N requests through a Jobs=2 engine over the external
//    shim leave exactly one solver process per worker.
//  * serve::CheckService — cache hits bit-identical to the cold check,
//    concurrent submissions of the same pair computing exactly once,
//    budget clamping keying on effective options, queue-full rejection.
//  * serve::Server — the JSON protocol as a function (handleLine), plus
//    one AF_UNIX end-to-end with a real client socket.
//  * The corpus sweep: every bench_corpus pair submitted cold then warm;
//    the warm answer must be a cache hit with verdict and every stat
//    field identical.
//
//===----------------------------------------------------------------------===//

#include "cert/CertVerify.h"
#include "core/Engine.h"
#include "frontend/Elaborate.h"
#include "frontend/Text.h"
#include "serve/Cache.h"
#include "serve/Json.h"
#include "serve/Server.h"
#include "serve/Service.h"
#include "smt/SmtLibSolver.h"
#include "support/Compress.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace leapfrog;

namespace {

//===----------------------------------------------------------------------===//
// Shared fixtures: tiny .lfp programs and environment probes.
//===----------------------------------------------------------------------===//

// A pair of obviously equivalent two-state parsers that differ only in
// state names (the checker still needs real SMT queries to decide them).
const char *LfpA = "header h : 8;\n"
                   "entry start;\n"
                   "state start {\n"
                   "  extract(h);\n"
                   "  select(h[0:7]) {\n"
                   "    (0b00000000) => accept;\n"
                   "    (_) => next;\n"
                   "  }\n"
                   "}\n"
                   "state next {\n"
                   "  extract(h);\n"
                   "  goto accept;\n"
                   "}\n";

const char *LfpB = "header h : 8;\n"
                   "entry s0;\n"
                   "state s0 {\n"
                   "  extract(h);\n"
                   "  select(h[0:7]) {\n"
                   "    (0b00000000) => accept;\n"
                   "    (_) => s1;\n"
                   "  }\n"
                   "}\n"
                   "state s1 {\n"
                   "  extract(h);\n"
                   "  goto accept;\n"
                   "}\n";

// Refuted twin: the wildcard arm rejects instead of extending.
const char *LfpBug = "header h : 8;\n"
                     "entry s0;\n"
                     "state s0 {\n"
                     "  extract(h);\n"
                     "  select(h[0:7]) {\n"
                     "    (0b00000000) => accept;\n"
                     "    (_) => reject;\n"
                     "  }\n"
                     "}\n";

std::string corpusDir() {
  const char *Env = std::getenv("LEAPFROG_CORPUS_DIR");
  return Env && *Env ? Env : "";
}

std::string shimPath() {
  const char *Env = std::getenv("LEAPFROG_SMTLIB_SHIM");
  return Env && *Env ? Env : "";
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream Ss;
  Ss << In.rdbuf();
  Out = Ss.str();
  return true;
}

core::CheckRequest requestFor(const char *Left, const char *Right,
                              core::CheckOptions Options = {}) {
  core::CheckRequest Req;
  std::vector<std::string> Errors;
  bool Ok =
      core::checkRequestFromSurface(Left, Right, Options, Req, Errors);
  EXPECT_TRUE(Ok) << (Errors.empty() ? "?" : Errors.front());
  return Req;
}

void expectStatsEqual(const core::CheckStats &A, const core::CheckStats &B) {
  EXPECT_EQ(A.Iterations, B.Iterations);
  EXPECT_EQ(A.Extends, B.Extends);
  EXPECT_EQ(A.Skips, B.Skips);
  EXPECT_EQ(A.SmtQueries, B.SmtQueries);
  EXPECT_EQ(A.ReachPairs, B.ReachPairs);
  EXPECT_EQ(A.TemplatesLeft, B.TemplatesLeft);
  EXPECT_EQ(A.TemplatesRight, B.TemplatesRight);
  EXPECT_EQ(A.FinalConjuncts, B.FinalConjuncts);
  EXPECT_EQ(A.PeakFrontier, B.PeakFrontier);
  EXPECT_EQ(A.FormulaNodes, B.FormulaNodes);
  // WallMicros/SolverMicros intentionally included: a cache hit returns
  // the cached record verbatim, clocks and all.
  EXPECT_EQ(A.WallMicros, B.WallMicros);
  EXPECT_EQ(A.SolverMicros, B.SolverMicros);
}

//===----------------------------------------------------------------------===//
// Json
//===----------------------------------------------------------------------===//

TEST(Json, ScalarRoundTrips) {
  serve::Json V;
  std::string Err;
  ASSERT_TRUE(serve::Json::parse("  {\"a\": [1, -2, 3.5, true, false, "
                                 "null, \"x\\n\\\"y\\\"\"]}  ",
                                 V, &Err))
      << Err;
  ASSERT_TRUE(V.isObject());
  const serve::Json &A = V.get("a");
  ASSERT_TRUE(A.isArray());
  ASSERT_EQ(A.items().size(), 7u);
  EXPECT_TRUE(A.items()[0].isInt());
  EXPECT_EQ(A.items()[0].asInt(), 1);
  EXPECT_EQ(A.items()[1].asInt(), -2);
  EXPECT_TRUE(A.items()[2].isNumber());
  EXPECT_DOUBLE_EQ(A.items()[2].asDouble(), 3.5);
  EXPECT_TRUE(A.items()[3].asBool());
  EXPECT_FALSE(A.items()[4].asBool());
  EXPECT_TRUE(A.items()[5].isNull());
  EXPECT_EQ(A.items()[6].asString(), "x\n\"y\"");

  // serialize(parse(x)) must re-parse to the same structure.
  serve::Json Again;
  ASSERT_TRUE(serve::Json::parse(V.serialize(), Again, &Err)) << Err;
  EXPECT_EQ(V.serialize(), Again.serialize());
}

TEST(Json, IntegersSurviveExactly) {
  // A 2^60-scale counter must not decay to a double on the way through.
  serve::Json V = serve::Json::object();
  V.set("micros", serve::Json::unsignedInt(1152921504606846975ull));
  serve::Json Back;
  ASSERT_TRUE(serve::Json::parse(V.serialize(), Back, nullptr));
  EXPECT_TRUE(Back.get("micros").isInt());
  EXPECT_EQ(Back.get("micros").asUnsigned(), 1152921504606846975ull);
}

TEST(Json, EscapesAndUnicode) {
  serve::Json V;
  ASSERT_TRUE(serve::Json::parse("\"a\\u0041\\u00e9\\ud83d\\ude00b\"", V,
                                 nullptr));
  EXPECT_EQ(V.asString(), "aA\xc3\xa9\xf0\x9f\x98\x80"
                          "b");
  // Control characters esc on the way out, reparse cleanly.
  serve::Json S = serve::Json::str(std::string("x\x01y\n", 4));
  serve::Json Back;
  ASSERT_TRUE(serve::Json::parse(S.serialize(), Back, nullptr));
  EXPECT_EQ(Back.asString(), S.asString());
  EXPECT_EQ(S.serialize().find('\n'), std::string::npos);
}

TEST(Json, MalformedInputsAreErrorsNotCrashes) {
  const char *Bad[] = {"",       "{",        "[1,",      "{\"a\"}",
                       "trve",   "\"unterm", "{\"a\":}", "[1 2]",
                       "{} {}",  "nul",      "--3",      "\"\\q\""};
  for (const char *Text : Bad) {
    serve::Json V;
    std::string Err;
    EXPECT_FALSE(serve::Json::parse(Text, V, &Err)) << Text;
    EXPECT_FALSE(Err.empty()) << Text;
  }
}

//===----------------------------------------------------------------------===//
// ResultCache: the never-hash-only discipline.
//===----------------------------------------------------------------------===//

TEST(ResultCache, HitRequiresCanonicalEquality) {
  serve::ResultCache Cache;
  auto Entry = std::make_shared<serve::CacheEntry>();
  Entry->Key.FP = p4a::fingerprintBytes("the real request");
  Entry->Key.Canonical = "the real request";
  Entry->Result.V = core::Verdict::Equivalent;
  Cache.insert(Entry);

  // Same canonical text: hit.
  serve::CacheKey Probe = Entry->Key;
  EXPECT_NE(Cache.find(Probe), nullptr);

  // FORCED collision: identical fingerprint, different canonical text —
  // exactly the situation PR 3's dedup bug served a wrong answer in.
  // The cache must treat it as a miss and count the collision.
  serve::CacheKey Forged;
  Forged.FP = Entry->Key.FP;
  Forged.Canonical = "a different request that happens to share the hash";
  EXPECT_EQ(Cache.find(Forged), nullptr);

  serve::ResultCache::Stats S = Cache.stats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_GE(S.Collisions, 1u);
  EXPECT_EQ(S.Entries, 1u);
}

TEST(ResultCache, CollidingEntriesCoexist) {
  // Both sides of a forced collision can live in the cache at once, each
  // served only to its own canonical text.
  serve::ResultCache Cache;
  auto A = std::make_shared<serve::CacheEntry>();
  A->Key.FP = p4a::fingerprintBytes("key");
  A->Key.Canonical = "request A";
  A->Result.V = core::Verdict::Equivalent;
  auto B = std::make_shared<serve::CacheEntry>();
  B->Key.FP = A->Key.FP;
  B->Key.Canonical = "request B";
  B->Result.V = core::Verdict::NotEquivalent;
  Cache.insert(A);
  Cache.insert(B);

  auto HitA = Cache.find(A->Key);
  auto HitB = Cache.find(B->Key);
  ASSERT_NE(HitA, nullptr);
  ASSERT_NE(HitB, nullptr);
  EXPECT_EQ(HitA->Result.V, core::Verdict::Equivalent);
  EXPECT_EQ(HitB->Result.V, core::Verdict::NotEquivalent);
}

TEST(ResultCache, KeySeparatesOptionsButNotJobs) {
  core::CheckRequest Req = requestFor(LfpA, LfpB);
  serve::CacheKey Base = serve::makeCacheKey(Req);

  core::CheckRequest Budgeted = requestFor(LfpA, LfpB);
  Budgeted.Options.MaxIterations = 7;
  EXPECT_NE(serve::makeCacheKey(Budgeted).Canonical, Base.Canonical);

  core::CheckRequest Ablated = requestFor(LfpA, LfpB);
  Ablated.Options.UseLeaps = false;
  EXPECT_NE(serve::makeCacheKey(Ablated).Canonical, Base.Canonical);

  // Jobs and Backend change schedules and solvers, never verdicts or
  // deterministic stats — they must NOT split the key.
  core::CheckRequest Parallel = requestFor(LfpA, LfpB);
  Parallel.Options.Jobs = 4;
  Parallel.Options.Backend = "crosscheck";
  EXPECT_EQ(serve::makeCacheKey(Parallel).Canonical, Base.Canonical);
  EXPECT_EQ(serve::makeCacheKey(Parallel).FP, Base.FP);
}

//===----------------------------------------------------------------------===//
// Engine: structured rejection + warm workers.
//===----------------------------------------------------------------------===//

TEST(Engine, UnresolvableBackendIsAStructuredError) {
  core::EngineConfig Cfg;
  Cfg.Backend = "quantum-annealer";
  std::string Err;
  EXPECT_EQ(core::Engine::create(Cfg, &Err), nullptr);
  EXPECT_NE(Err.find("quantum-annealer"), std::string::npos) << Err;
}

TEST(Engine, CheckWithSpecRejectsBadBackendInline) {
  // The one-shot path must reject the same way the engine does — not
  // warn on stderr and silently run bitblast (the pre-redesign
  // behavior).
  core::CheckRequest Req = requestFor(LfpA, LfpB);
  Req.Options.Backend = "quantum-annealer";
  core::CheckResult Res =
      core::checkWithSpec(Req.Left, Req.Right, Req.Spec, Req.Options);
  EXPECT_EQ(Res.V, core::Verdict::BadRequest);
  EXPECT_NE(Res.FailureReason.find("quantum-annealer"), std::string::npos)
      << Res.FailureReason;
  EXPECT_EQ(Res.Stats.SmtQueries, 0u) << "the search must never have run";
}

TEST(Engine, MatchesOneShotCheckerBitForBit) {
  core::CheckRequest Req = requestFor(LfpA, LfpB);
  std::unique_ptr<core::Engine> Engine =
      core::Engine::create(core::EngineConfig(), nullptr);
  ASSERT_NE(Engine, nullptr);
  core::CheckResult Warm1 = Engine->check(Req);
  core::CheckResult Warm2 = Engine->check(Req);
  core::CheckResult Cold =
      core::checkWithSpec(Req.Left, Req.Right, Req.Spec, Req.Options);
  EXPECT_EQ(Warm1.V, core::Verdict::Equivalent);
  EXPECT_EQ(Warm1.V, Cold.V);
  EXPECT_EQ(Warm2.V, Cold.V);
  // Deterministic stats agree between engine runs and the free function
  // (clocks excluded — they are wall time, not decisions).
  EXPECT_EQ(Warm1.Stats.Iterations, Cold.Stats.Iterations);
  EXPECT_EQ(Warm1.Stats.FinalConjuncts, Cold.Stats.FinalConjuncts);
  EXPECT_EQ(Warm2.Stats.Iterations, Cold.Stats.Iterations);
  EXPECT_EQ(Warm1.Certificate.str(Req.Left, Req.Right),
            Cold.Certificate.str(Req.Left, Req.Right));
}

TEST(Engine, WarmWorkersSpawnOneSolverProcessEach) {
  std::string Shim = shimPath();
  if (Shim.empty())
    GTEST_SKIP() << "LEAPFROG_SMTLIB_SHIM unset (run under ctest)";

  core::EngineConfig Cfg;
  Cfg.Backend = "smtlib:" + Shim;
  Cfg.Jobs = 2;
  std::string Err;
  std::unique_ptr<core::Engine> Engine = core::Engine::create(Cfg, &Err);
  ASSERT_NE(Engine, nullptr) << Err;

  // Three different requests through the same engine: the per-worker
  // backends (and their external processes) must be spawned once and
  // reused, not respawned per request.
  core::CheckResult R1 = Engine->check(requestFor(LfpA, LfpB));
  core::CheckResult R2 = Engine->check(requestFor(LfpA, LfpBug));
  core::CheckResult R3 = Engine->check(requestFor(LfpB, LfpBug));
  EXPECT_EQ(R1.V, core::Verdict::Equivalent);
  EXPECT_EQ(R2.V, core::Verdict::NotEquivalent);
  EXPECT_EQ(R3.V, core::Verdict::NotEquivalent);

  ASSERT_EQ(Engine->warmWorkerCount(), 2u);
  for (size_t W = 0; W < Engine->warmWorkerCount(); ++W) {
    auto *Ext = dynamic_cast<smt::SmtLibSolver *>(Engine->warmWorker(W));
    ASSERT_NE(Ext, nullptr) << "worker " << W;
    EXPECT_EQ(size_t(Ext->extStats().Spawns), 1u)
        << "worker " << W << " respawned its solver process";
    EXPECT_GT(size_t(Ext->extStats().ExternalQueries), 0u)
        << "worker " << W << " never reached the external solver";
  }
}

//===----------------------------------------------------------------------===//
// CheckService
//===----------------------------------------------------------------------===//

serve::ServiceConfig basicConfig() {
  serve::ServiceConfig Cfg;
  Cfg.Lanes = 1;
  return Cfg;
}

TEST(CheckService, CacheHitIsBitIdenticalToColdCheck) {
  std::string Err;
  auto Svc = serve::CheckService::create(basicConfig(), &Err);
  ASSERT_NE(Svc, nullptr) << Err;

  core::CheckRequest Req = requestFor(LfpA, LfpB);
  serve::CheckService::Outcome Cold = Svc->submit(Req);
  ASSERT_FALSE(Cold.rejected());
  EXPECT_FALSE(Cold.CacheHit);
  EXPECT_EQ(Cold.Result.V, core::Verdict::Equivalent);
  EXPECT_FALSE(Cold.CertificateText.empty());

  serve::CheckService::Outcome Warm = Svc->submit(Req);
  ASSERT_FALSE(Warm.rejected());
  EXPECT_TRUE(Warm.CacheHit);
  EXPECT_EQ(Warm.Result.V, Cold.Result.V);
  EXPECT_EQ(Warm.FP, Cold.FP);
  EXPECT_EQ(Warm.CertificateText, Cold.CertificateText);
  expectStatsEqual(Warm.Result.Stats, Cold.Result.Stats);

  serve::CheckService::Stats S = Svc->stats();
  EXPECT_EQ(S.Submitted, 2u);
  EXPECT_EQ(S.Computed, 1u);
  EXPECT_EQ(S.Cache.Hits, 1u);
  EXPECT_EQ(S.Cache.Entries, 1u);
}

TEST(CheckService, EquivalentTextsWithDifferentNamesShareOneEntry) {
  // LfpA and LfpB differ only in state names; canonicalization erases
  // names, so (A, B) and (B, A)... are different ordered pairs — but
  // (A, B) submitted via *different textual spellings of A* must hit.
  std::string Renamed(LfpA);
  // A textual variant of LfpA: rename 'start'/'next' to 'p'/'q'.
  size_t Pos;
  while ((Pos = Renamed.find("start")) != std::string::npos)
    Renamed.replace(Pos, 5, "p");
  while ((Pos = Renamed.find("next")) != std::string::npos)
    Renamed.replace(Pos, 4, "q");

  std::string Err;
  auto Svc = serve::CheckService::create(basicConfig(), &Err);
  ASSERT_NE(Svc, nullptr) << Err;
  serve::CheckService::Outcome First =
      Svc->submit(requestFor(LfpA, LfpBug));
  serve::CheckService::Outcome Second =
      Svc->submit(requestFor(Renamed.c_str(), LfpBug));
  ASSERT_FALSE(First.rejected());
  ASSERT_FALSE(Second.rejected());
  EXPECT_FALSE(First.CacheHit);
  EXPECT_TRUE(Second.CacheHit) << "renaming states must not split the key";
  EXPECT_EQ(First.FP, Second.FP);
}

TEST(CheckService, BudgetClampKeysOnEffectiveOptions) {
  serve::ServiceConfig Cfg = basicConfig();
  Cfg.MaxIterationsCap = 50;
  std::string Err;
  auto Svc = serve::CheckService::create(Cfg, &Err);
  ASSERT_NE(Svc, nullptr) << Err;

  // An over-budget request is clamped to the cap...
  core::CheckRequest Greedy = requestFor(LfpA, LfpB);
  Greedy.Options.MaxIterations = 1u << 20;
  serve::CheckService::Outcome First = Svc->submit(Greedy);
  ASSERT_FALSE(First.rejected());

  // ...so a request asking for exactly the cap is the same key: hit.
  core::CheckRequest Exact = requestFor(LfpA, LfpB);
  Exact.Options.MaxIterations = 50;
  serve::CheckService::Outcome Second = Svc->submit(Exact);
  ASSERT_FALSE(Second.rejected());
  EXPECT_TRUE(Second.CacheHit);
  expectStatsEqual(Second.Result.Stats, First.Result.Stats);
}

TEST(CheckService, ConcurrentSameRequestComputesOnce) {
  std::string Err;
  auto Svc = serve::CheckService::create(basicConfig(), &Err);
  ASSERT_NE(Svc, nullptr) << Err;

  const size_t N = 8;
  std::vector<serve::CheckService::Outcome> Outcomes(N);
  {
    std::vector<std::thread> Threads;
    for (size_t T = 0; T < N; ++T)
      Threads.emplace_back([&, T] {
        core::CheckRequest Req = requestFor(LfpA, LfpB);
        Outcomes[T] = Svc->submit(Req);
      });
    for (std::thread &T : Threads)
      T.join();
  }

  // However the schedule fell out, the check ran exactly once: every
  // other submission either coalesced onto the in-flight computation or
  // hit the completed cache entry, and all answers are the same record.
  serve::CheckService::Stats S = Svc->stats();
  EXPECT_EQ(S.Computed, 1u);
  EXPECT_EQ(S.Cache.Entries, 1u);
  EXPECT_EQ(S.Submitted, N);
  EXPECT_EQ(S.Coalesced + S.Cache.Hits, N - 1);
  for (const serve::CheckService::Outcome &O : Outcomes) {
    ASSERT_FALSE(O.rejected());
    EXPECT_EQ(O.Result.V, core::Verdict::Equivalent);
    expectStatsEqual(O.Result.Stats, Outcomes[0].Result.Stats);
  }
}

/// A backend whose first checkSat blocks until released — how the tests
/// hold a lane busy deterministically.
class GateSolver : public smt::SmtSolver {
public:
  smt::SatResult checkSat(const smt::BvFormulaRef &F,
                          smt::Model *M) override {
    Entered.fetch_add(1);
    std::unique_lock<std::mutex> Lock(Mu);
    CV.wait(Lock, [&] { return Open; });
    return Inner.checkSat(F, M);
  }
  void release() {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Open = true;
    }
    CV.notify_all();
  }
  std::atomic<size_t> Entered{0};

private:
  smt::BitBlastSolver Inner;
  std::mutex Mu;
  std::condition_variable CV;
  bool Open = false;
};

TEST(CheckService, QueueFullRejectsInsteadOfQueueingUnboundedly) {
  GateSolver Gate;
  serve::ServiceConfig Cfg = basicConfig();
  Cfg.Engine.Solver = &Gate;
  Cfg.MaxQueue = 0; // Reject unless a lane is free right now.
  std::string Err;
  auto Svc = serve::CheckService::create(Cfg, &Err);
  ASSERT_NE(Svc, nullptr) << Err;

  serve::CheckService::Outcome Held;
  std::thread Holder([&] { Held = Svc->submit(requestFor(LfpA, LfpB)); });
  // Wait until the check owns the lane (it is inside the solver).
  while (Gate.Entered.load() == 0)
    std::this_thread::yield();

  // A *different* request now finds the one lane busy and zero queue
  // capacity: structured rejection, not a hang.
  serve::CheckService::Outcome Turned =
      Svc->submit(requestFor(LfpA, LfpBug));
  EXPECT_TRUE(Turned.rejected());
  EXPECT_NE(Turned.Error.find("queue full"), std::string::npos)
      << Turned.Error;

  Gate.release();
  Holder.join();
  ASSERT_FALSE(Held.rejected());
  EXPECT_EQ(Held.Result.V, core::Verdict::Equivalent);
  EXPECT_EQ(Svc->stats().RejectedQueueFull, 1u);
}

//===----------------------------------------------------------------------===//
// Server: the protocol as a function.
//===----------------------------------------------------------------------===//

serve::Json handle(serve::Server &S, const std::string &Line) {
  serve::Json R;
  std::string Err;
  EXPECT_TRUE(serve::Json::parse(S.handleLine(Line), R, &Err)) << Err;
  return R;
}

std::unique_ptr<serve::Server> basicServer() {
  std::string Err;
  auto S = serve::Server::create(basicConfig(), &Err);
  EXPECT_NE(S, nullptr) << Err;
  return S;
}

serve::Json checkRequestLine(const char *Left, const char *Right,
                             const char *Id = "t1") {
  serve::Json Req = serve::Json::object();
  Req.set("op", serve::Json::str("check"));
  Req.set("left", serve::Json::str(Left));
  Req.set("right", serve::Json::str(Right));
  Req.set("id", serve::Json::str(Id));
  return Req;
}

TEST(Server, PingStatsAndUnknownOps) {
  auto S = basicServer();
  serve::Json Pong = handle(*S, "{\"op\":\"ping\"}");
  EXPECT_TRUE(Pong.getBool("ok", false));
  EXPECT_TRUE(Pong.getBool("pong", false));

  serve::Json Stats = handle(*S, "{\"op\":\"stats\"}");
  EXPECT_TRUE(Stats.getBool("ok", false));
  EXPECT_TRUE(Stats.get("cache").isObject());
  EXPECT_EQ(Stats.get("config").getUnsigned("lanes", 0), 1u);

  serve::Json Bad = handle(*S, "{\"op\":\"transmogrify\"}");
  EXPECT_FALSE(Bad.getBool("ok", true));
  EXPECT_NE(Bad.getString("error").find("unknown op"), std::string::npos);

  serve::Json Garbage = handle(*S, "this is not json");
  EXPECT_FALSE(Garbage.getBool("ok", true));
}

TEST(Server, CheckMissThenHitWithCertificate) {
  auto S = basicServer();
  serve::Json First = handle(*S, checkRequestLine(LfpA, LfpB).serialize());
  ASSERT_TRUE(First.getBool("ok", false)) << First.serialize();
  EXPECT_EQ(First.getString("verdict"), "equivalent");
  EXPECT_EQ(First.getString("cache"), "miss");
  EXPECT_EQ(First.getString("id"), "t1");
  EXPECT_EQ(First.getString("fingerprint").size(), 32u);

  serve::Json Second =
      handle(*S, checkRequestLine(LfpA, LfpB, "t2").serialize());
  ASSERT_TRUE(Second.getBool("ok", false));
  EXPECT_EQ(Second.getString("cache"), "hit");
  EXPECT_EQ(Second.getString("id"), "t2");
  EXPECT_EQ(Second.getString("fingerprint"), First.getString("fingerprint"));
  // Bit-identical stats over the wire.
  EXPECT_EQ(Second.get("stats").serialize(), First.get("stats").serialize());

  // The certificate is retrievable under the returned handle.
  std::string Key = First.getString("certificate_key");
  ASSERT_EQ(Key.size(), 32u);
  serve::Json Cert =
      handle(*S, "{\"op\":\"cert\",\"key\":\"" + Key + "\"}");
  ASSERT_TRUE(Cert.getBool("ok", false)) << Cert.serialize();
  EXPECT_FALSE(Cert.getString("certificate").empty());

  serve::Json NoCert =
      handle(*S, "{\"op\":\"cert\",\"key\":\"00000000000000000000000000000000\"}");
  EXPECT_FALSE(NoCert.getBool("ok", true));
}

TEST(Server, RefutedPairReportsFailureReason) {
  auto S = basicServer();
  serve::Json R = handle(*S, checkRequestLine(LfpA, LfpBug).serialize());
  ASSERT_TRUE(R.getBool("ok", false));
  EXPECT_EQ(R.getString("verdict"), "not_equivalent");
  EXPECT_FALSE(R.getString("failure_reason").empty());
  EXPECT_FALSE(R.has("certificate_key"));
}

TEST(Server, ParserDiagnosticsComeBackStructured) {
  auto S = basicServer();
  serve::Json Req = checkRequestLine("header h : 8;\nentry nowhere;\n", LfpB);
  serve::Json R = handle(*S, Req.serialize());
  EXPECT_FALSE(R.getBool("ok", true));
  ASSERT_TRUE(R.get("diagnostics").isArray());
  EXPECT_GT(R.get("diagnostics").items().size(), 0u);
  // Diagnostics carry the side name ("left:"), so a client knows which
  // text to fix.
  EXPECT_NE(R.get("diagnostics").items()[0].asString().find("left"),
            std::string::npos);
}

TEST(Server, EngineLevelOptionsAreRejectedPerRequest) {
  auto S = basicServer();
  serve::Json Req = checkRequestLine(LfpA, LfpB);
  serve::Json Opts = serve::Json::object();
  Opts.set("jobs", serve::Json::integer(4));
  Req.set("options", Opts);
  serve::Json R = handle(*S, Req.serialize());
  EXPECT_FALSE(R.getBool("ok", true));
  EXPECT_NE(R.getString("error").find("engine-level"), std::string::npos);
}

TEST(Server, PerRequestOptionsSplitTheKey) {
  auto S = basicServer();
  serve::Json Plain = checkRequestLine(LfpA, LfpB);
  serve::Json First = handle(*S, Plain.serialize());
  ASSERT_TRUE(First.getBool("ok", false));

  serve::Json Budgeted = checkRequestLine(LfpA, LfpB);
  serve::Json Opts = serve::Json::object();
  Opts.set("max_iterations", serve::Json::integer(3));
  Budgeted.set("options", Opts);
  serve::Json R = handle(*S, Budgeted.serialize());
  ASSERT_TRUE(R.getBool("ok", false));
  EXPECT_EQ(R.getString("cache"), "miss")
      << "a different budget must not reuse the unbudgeted result";
  EXPECT_EQ(R.getString("verdict"), "resource_limit");
}

TEST(Server, ShutdownAcknowledgesAndSetsFlag) {
  auto S = basicServer();
  EXPECT_FALSE(S->shutdownRequested());
  serve::Json R = handle(*S, "{\"op\":\"shutdown\"}");
  EXPECT_TRUE(R.getBool("ok", false));
  EXPECT_TRUE(S->shutdownRequested());
}

TEST(Server, StdioLoopServesUntilEof) {
  auto S = basicServer();
  std::istringstream In("{\"op\":\"ping\"}\n" +
                        checkRequestLine(LfpA, LfpBug).serialize() + "\n");
  std::ostringstream Out;
  EXPECT_EQ(S->runStdio(In, Out), 0);
  std::istringstream Lines(Out.str());
  std::string L1, L2;
  ASSERT_TRUE(std::getline(Lines, L1));
  ASSERT_TRUE(std::getline(Lines, L2));
  serve::Json R1, R2;
  ASSERT_TRUE(serve::Json::parse(L1, R1, nullptr));
  ASSERT_TRUE(serve::Json::parse(L2, R2, nullptr));
  EXPECT_TRUE(R1.getBool("pong", false));
  EXPECT_EQ(R2.getString("verdict"), "not_equivalent");
}

TEST(Server, SocketEndToEnd) {
  auto S = basicServer();
  const std::string Path = "servetest.sock";
  std::thread ServerThread([&] { EXPECT_EQ(S->runSocket(Path), 0); });

  // Connect (retrying while the listener comes up).
  int Fd = -1;
  for (int Attempt = 0; Attempt < 200; ++Attempt) {
    Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(Fd, 0);
    sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) == 0)
      break;
    ::close(Fd);
    Fd = -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(Fd, 0) << "could not connect to " << Path;

  auto roundTrip = [&](const std::string &Line) {
    std::string Out = Line + "\n";
    EXPECT_EQ(::write(Fd, Out.data(), Out.size()), ssize_t(Out.size()));
    std::string Buf;
    char C;
    while (::read(Fd, &C, 1) == 1 && C != '\n')
      Buf += C;
    serve::Json R;
    std::string Err;
    EXPECT_TRUE(serve::Json::parse(Buf, R, &Err)) << Err << ": " << Buf;
    return R;
  };

  serve::Json Pong = roundTrip("{\"op\":\"ping\"}");
  EXPECT_TRUE(Pong.getBool("pong", false));
  serve::Json Check = roundTrip(checkRequestLine(LfpA, LfpB).serialize());
  EXPECT_EQ(Check.getString("verdict"), "equivalent");
  serve::Json Again = roundTrip(checkRequestLine(LfpA, LfpB).serialize());
  EXPECT_EQ(Again.getString("cache"), "hit");
  serve::Json Bye = roundTrip("{\"op\":\"shutdown\"}");
  EXPECT_TRUE(Bye.getBool("bye", false));

  ::close(Fd);
  ServerThread.join();
}

//===----------------------------------------------------------------------===//
// The corpus sweep: warm answers bit-identical to cold, pair by pair.
//===----------------------------------------------------------------------===//

struct CorpusPair {
  const char *Label;
  const char *LeftFile;
  const char *RightFile;
  bool Budgeted; ///< Applicability self-pairs: tight budget, any verdict.
};

// The bench_corpus table (bench/bench_corpus.cpp), with the big
// Applicability self-pairs under a deliberately tiny budget: a fast,
// deterministic ResourceLimit exercises cache bit-identity just as well
// as a decided verdict.
const CorpusPair CorpusPairs[] = {
    {"state_rearrangement", "state_rearrangement_left.lfp",
     "state_rearrangement_right.lfp", false},
    {"variable_length_parsing", "variable_length_parsing_left.lfp",
     "variable_length_parsing_right.lfp", false},
    {"header_initialization", "header_initialization_left.lfp",
     "header_initialization_right.lfp", false},
    {"speculative_loop", "speculative_loop_left.lfp",
     "speculative_loop_right.lfp", false},
    {"relational_verification", "relational_verification_left.lfp",
     "relational_verification_right.lfp", true},
    {"external_filtering", "external_filtering_left.lfp",
     "external_filtering_right.lfp", true},
    {"edge", "edge_left.lfp", "edge_right.lfp", true},
    {"service_provider", "service_provider_left.lfp",
     "service_provider_right.lfp", true},
    {"datacenter", "datacenter_left.lfp", "datacenter_right.lfp", true},
    {"enterprise", "enterprise_left.lfp", "enterprise_right.lfp", true},
    {"ipv6_chain vs opt", "ipv6_chain.lfp", "ipv6_chain_opt.lfp", false},
    {"ipv6_chain vs bug", "ipv6_chain.lfp", "ipv6_chain_bug.lfp", false},
    {"vlan_qinq vs opt", "vlan_qinq.lfp", "vlan_qinq_opt.lfp", false},
    {"vlan_qinq vs bug", "vlan_qinq.lfp", "vlan_qinq_bug.lfp", false},
    {"tunnel vs opt", "tunnel.lfp", "tunnel_opt.lfp", false},
    {"tunnel vs bug", "tunnel.lfp", "tunnel_bug.lfp", false},
    {"quic_varint vs opt", "quic_varint.lfp", "quic_varint_opt.lfp", false},
    {"quic_varint vs bug", "quic_varint.lfp", "quic_varint_bug.lfp", false},
};

TEST(CorpusSweep, EveryPairHitsWarmWithIdenticalResults) {
  std::string Dir = corpusDir();
  if (Dir.empty())
    GTEST_SKIP() << "LEAPFROG_CORPUS_DIR not set (run under ctest)";

  std::string Err;
  auto Svc = serve::CheckService::create(basicConfig(), &Err);
  ASSERT_NE(Svc, nullptr) << Err;

  // Corpus entries are distinct *files* but not necessarily distinct
  // *requests*: relational_verification and external_filtering commit the
  // same parsers (they differ in their §7.1 specs, which the plain
  // language-equivalence pipeline does not consult), so the service is
  // right to serve the later entry from the earlier one's cache line.
  // Track keys so the test asserts exactly that.
  std::set<std::string> Seen;
  size_t Pairs = 0, Duplicates = 0;
  for (const CorpusPair &P : CorpusPairs) {
    std::string LeftText, RightText;
    ASSERT_TRUE(readFile(Dir + "/" + P.LeftFile, LeftText)) << P.Label;
    ASSERT_TRUE(readFile(Dir + "/" + P.RightFile, RightText)) << P.Label;

    core::CheckOptions Options;
    Options.MaxIterations = P.Budgeted ? 500 : 20000;
    core::CheckRequest Req;
    std::vector<std::string> Errors;
    ASSERT_TRUE(core::checkRequestFromSurface(LeftText, RightText, Options,
                                              Req, Errors, P.LeftFile,
                                              P.RightFile))
        << P.Label << ": " << (Errors.empty() ? "?" : Errors.front());

    bool Dup = !Seen.insert(serve::makeCacheKey(Req).Canonical).second;
    Duplicates += Dup;
    serve::CheckService::Outcome Cold = Svc->submit(Req);
    ASSERT_FALSE(Cold.rejected()) << P.Label;
    EXPECT_EQ(Cold.CacheHit, Dup) << P.Label;

    serve::CheckService::Outcome Warm = Svc->submit(Req);
    ASSERT_FALSE(Warm.rejected()) << P.Label;
    EXPECT_TRUE(Warm.CacheHit) << P.Label;
    EXPECT_EQ(Warm.Result.V, Cold.Result.V) << P.Label;
    EXPECT_EQ(Warm.Result.FailureReason, Cold.Result.FailureReason)
        << P.Label;
    EXPECT_EQ(Warm.CertificateText, Cold.CertificateText) << P.Label;
    expectStatsEqual(Warm.Result.Stats, Cold.Result.Stats);
    ++Pairs;
  }
  ASSERT_EQ(Pairs, sizeof(CorpusPairs) / sizeof(CorpusPairs[0]));

  serve::CheckService::Stats S = Svc->stats();
  EXPECT_EQ(S.Computed, Pairs - Duplicates);
  EXPECT_EQ(S.Cache.Hits, Pairs + Duplicates);
  EXPECT_EQ(S.Cache.Collisions, 0u);
}

//===----------------------------------------------------------------------===//
// Streaming certificates through the service: the `cert` op end to end
// over a real socket, structured misses, and the on-disk store surviving
// a daemon restart.
//===----------------------------------------------------------------------===//

std::string certcheckPath() {
  const char *Env = std::getenv("LEAPFROG_CERTCHECK");
  return Env && *Env ? Env : "";
}

/// Pipes \p CertText through the standalone leapfrog-certcheck binary,
/// pinned to \p ExpectFp; returns its exit status or -1 when CTest did
/// not export the binary's path.
int pipeThroughCertcheck(const std::string &CertText,
                         const std::string &ExpectFp) {
  std::string Bin = certcheckPath();
  if (Bin.empty())
    return -1;
  std::string TmpFile = ::testing::TempDir() + "servetest_cert.lfc";
  {
    std::ofstream Out(TmpFile, std::ios::binary | std::ios::trunc);
    Out.write(CertText.data(), std::streamsize(CertText.size()));
  }
  std::string Cmd =
      Bin + " --quiet --fingerprint " + ExpectFp + " " + TmpFile +
      " 2>/dev/null";
  int Status = std::system(Cmd.c_str());
  std::remove(TmpFile.c_str());
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : 127;
}

TEST(Server, CertifiedCheckServesVerifiableCertificateOverSocket) {
  serve::ServiceConfig Cfg = basicConfig();
  Cfg.Engine.Certify = true;
  std::string Err;
  auto S = serve::Server::create(Cfg, &Err);
  ASSERT_NE(S, nullptr) << Err;

  const std::string Path = "servetest-cert.sock";
  std::thread ServerThread([&] { EXPECT_EQ(S->runSocket(Path), 0); });

  int Fd = -1;
  for (int Attempt = 0; Attempt < 200; ++Attempt) {
    Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(Fd, 0);
    sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) == 0)
      break;
    ::close(Fd);
    Fd = -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(Fd, 0) << "could not connect to " << Path;

  auto roundTrip = [&](const std::string &Line) {
    std::string Out = Line + "\n";
    EXPECT_EQ(::write(Fd, Out.data(), Out.size()), ssize_t(Out.size()));
    std::string Buf;
    char C;
    while (::read(Fd, &C, 1) == 1 && C != '\n')
      Buf += C;
    serve::Json R;
    std::string ParseErr;
    EXPECT_TRUE(serve::Json::parse(Buf, R, &ParseErr)) << ParseErr;
    return R;
  };

  serve::Json Check = roundTrip(checkRequestLine(LfpA, LfpB).serialize());
  ASSERT_TRUE(Check.getBool("ok", false)) << Check.serialize();
  EXPECT_EQ(Check.getString("verdict"), "equivalent");
  std::string Key = Check.getString("certificate_key");
  ASSERT_EQ(Key.size(), 32u);

  // Fetch the certificate over the same connection; the wire carries the
  // raw LFCERT text, which the engine-free verifier must accept pinned
  // to the key it was fetched under.
  serve::Json Cert = roundTrip("{\"op\":\"cert\",\"key\":\"" + Key + "\"}");
  ASSERT_TRUE(Cert.getBool("ok", false)) << Cert.serialize();
  std::string Text = Cert.getString("certificate");
  ASSERT_FALSE(Text.empty());
  EXPECT_EQ(Text.compare(0, 7, "LFCERT "), 0);
  cert::VerifyOptions Pin;
  Pin.ExpectFingerprintHex = Key;
  cert::VerifyResult V = cert::verifyCertificate(Text, Pin);
  EXPECT_TRUE(V.Ok) << V.Diagnostic;
  EXPECT_GT(V.Stats.Goals, 0u);

  // And through the standalone binary, when CTest exported it.
  int Exit = pipeThroughCertcheck(Text, Key);
  if (Exit >= 0) {
    EXPECT_EQ(Exit, 0) << "leapfrog-certcheck rejected the served cert";
  }

  // Structured misses keep the connection alive: an unknown key and a
  // refuted pair (which caches a result but never a certificate).
  serve::Json Unknown = roundTrip(
      "{\"op\":\"cert\",\"key\":\"00000000000000000000000000000000\"}");
  EXPECT_FALSE(Unknown.getBool("ok", true));
  EXPECT_NE(Unknown.getString("error").find("no certificate cached"),
            std::string::npos);

  serve::Json Refuted = roundTrip(checkRequestLine(LfpA, LfpBug).serialize());
  ASSERT_TRUE(Refuted.getBool("ok", false));
  EXPECT_EQ(Refuted.getString("verdict"), "not_equivalent");
  EXPECT_FALSE(Refuted.has("certificate_key"));
  std::string RefutedFp = Refuted.getString("fingerprint");
  ASSERT_EQ(RefutedFp.size(), 32u);
  serve::Json RefutedCert =
      roundTrip("{\"op\":\"cert\",\"key\":\"" + RefutedFp + "\"}");
  EXPECT_FALSE(RefutedCert.getBool("ok", true));
  EXPECT_NE(RefutedCert.getString("error").find("no certificate cached"),
            std::string::npos);

  serve::Json Bye = roundTrip("{\"op\":\"shutdown\"}");
  EXPECT_TRUE(Bye.getBool("bye", false));
  ::close(Fd);
  ServerThread.join();
}

TEST(CheckService, RestartedServiceServesStoredCertificate) {
  std::string StoreDir = ::testing::TempDir() + "servetest-certstore";
  serve::ServiceConfig Cfg = basicConfig();
  Cfg.CertStoreDir = StoreDir;

  core::CheckRequest Req = requestFor(LfpA, LfpB);
  std::string FpHex, FirstText;
  {
    std::string Err;
    auto Svc = serve::CheckService::create(Cfg, &Err);
    ASSERT_NE(Svc, nullptr) << Err;
    serve::CheckService::Outcome O = Svc->submit(Req);
    ASSERT_FALSE(O.rejected()) << O.Error;
    ASSERT_EQ(O.Result.V, core::Verdict::Equivalent);
    // A store dir implies certified checks even with Engine.Certify
    // left off in the config.
    ASSERT_FALSE(O.CertificateText.empty());
    FpHex = O.FP.hex();
    FirstText = Svc->certificateByHex(FpHex);
    ASSERT_EQ(FirstText, O.CertificateText);

    // The store holds the LFCZ1-compressed form under <fp>.lfc.
    std::string OnDisk;
    ASSERT_TRUE(readFile(StoreDir + "/" + FpHex + ".lfc", OnDisk));
    EXPECT_TRUE(support::looksCompressed(OnDisk));
    EXPECT_LT(OnDisk.size(), FirstText.size());
  } // daemon goes down; only the store survives

  std::string Err;
  auto Restarted = serve::CheckService::create(Cfg, &Err);
  ASSERT_NE(Restarted, nullptr) << Err;
  // No check ran in this incarnation — the certificate comes off disk,
  // decompressed, bit-identical to what the first daemon served.
  std::string SecondText = Restarted->certificateByHex(FpHex);
  ASSERT_FALSE(SecondText.empty());
  EXPECT_EQ(SecondText, FirstText);

  cert::VerifyOptions Pin;
  Pin.ExpectFingerprintHex = FpHex;
  cert::VerifyResult V = cert::verifyCertificate(SecondText, Pin);
  EXPECT_TRUE(V.Ok) << V.Diagnostic;

  // Unknown keys miss the store too (and never touch the filesystem
  // with anything but a 32-hex-digit name).
  EXPECT_TRUE(
      Restarted->certificateByHex(std::string(32, '0')).empty());
  EXPECT_TRUE(Restarted->certificateByHex("../../etc/passwd").empty());
}

} // namespace
