//===- SpecTest.cpp - Initial-relation spec and support tests -------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the initial-relation builders of core/Spec.h (Lemma 4.10 and the
/// §7.1 qualified/custom generalizations), checker option plumbing (trace
/// recording, iteration limits, solver injection), and the small support
/// utilities (string helpers, hashing).
///
//===----------------------------------------------------------------------===//

#include "core/Checker.h"
#include "core/Spec.h"

#include "p4a/Parser.h"
#include "parsers/CaseStudies.h"
#include "support/Hashing.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

using namespace leapfrog;
using namespace leapfrog::core;
using namespace leapfrog::logic;

namespace {

//===----------------------------------------------------------------------===//
// buildInitialConjuncts
//===----------------------------------------------------------------------===//

std::vector<TemplatePair> smallDomain() {
  Template Run{p4a::StateRef::normal(0), 0};
  return {
      {Template::accept(), Template::accept()},
      {Template::accept(), Template::reject()},
      {Template::reject(), Template::accept()},
      {Template::reject(), Template::reject()},
      {Run, Template::accept()},
      {Template::accept(), Run},
      {Run, Run},
  };
}

TEST(Spec, StandardModeIsLemma410) {
  InitialSpec Spec;
  Spec.Mode = AcceptanceMode::Standard;
  auto I = buildInitialConjuncts(Spec, smallDomain());
  // Exactly the pairs where exactly one side accepts: (acc,rej),
  // (rej,acc), (run,acc), (acc,run).
  ASSERT_EQ(I.size(), 4u);
  for (const GuardedFormula &G : I) {
    EXPECT_NE(G.TP.L.isAccept(), G.TP.R.isAccept());
    EXPECT_EQ(G.Phi->kind(), Pure::Kind::False);
  }
}

TEST(Spec, QualifiedModeEmitsQualifierConjuncts) {
  InitialSpec Spec;
  Spec.Mode = AcceptanceMode::Qualified;
  PureRef Q = Pure::mkEq(BitExpr::mkVar("q", 1),
                         BitExpr::mkLit(Bitvector::fromUint(1, 1)));
  Spec.LeftQualifier = Q;
  Spec.RightQualifier = Pure::mkTrue();
  auto I = buildInitialConjuncts(Spec, smallDomain());
  // (acc,acc): qualL ⟺ True = qualL; (acc, non-acc): ¬qualL;
  // (non-acc, acc): ¬True = ⊥.
  size_t AccAcc = 0, AccOther = 0, OtherAcc = 0;
  for (const GuardedFormula &G : I) {
    if (G.TP.L.isAccept() && G.TP.R.isAccept()) {
      ++AccAcc;
      EXPECT_NE(G.Phi->kind(), Pure::Kind::False);
    } else if (G.TP.L.isAccept()) {
      ++AccOther;
      EXPECT_EQ(G.Phi->kind(), Pure::Kind::Not);
    } else if (G.TP.R.isAccept()) {
      ++OtherAcc;
      EXPECT_EQ(G.Phi->kind(), Pure::Kind::False);
    }
  }
  EXPECT_EQ(AccAcc, 1u);
  EXPECT_EQ(AccOther, 2u);
  EXPECT_EQ(OtherAcc, 2u);
}

TEST(Spec, CustomModeUsesOnlyExtraInitial) {
  InitialSpec Spec;
  Spec.Mode = AcceptanceMode::Custom;
  Spec.ExtraInitial.push_back(GuardedFormula{
      TemplatePair{Template::accept(), Template::accept()}, Pure::mkFalse()});
  auto I = buildInitialConjuncts(Spec, smallDomain());
  ASSERT_EQ(I.size(), 1u);
  EXPECT_TRUE(I[0].TP.L.isAccept());
}

TEST(Spec, ExtraInitialAppendsInEveryMode) {
  InitialSpec Spec;
  Spec.Mode = AcceptanceMode::Standard;
  Spec.ExtraInitial.push_back(GuardedFormula{
      TemplatePair{Template::accept(), Template::accept()},
      Pure::mkEq(BitExpr::mkVar("x", 1), BitExpr::mkVar("x", 1))});
  auto I = buildInitialConjuncts(Spec, smallDomain());
  EXPECT_EQ(I.size(), 5u); // 4 standard + 1 extra.
}

//===----------------------------------------------------------------------===//
// Checker options plumbing
//===----------------------------------------------------------------------===//

TEST(CheckerOptions, TraceRecordsSkipExtendDone) {
  p4a::Automaton L = parsers::rearrangeReference();
  p4a::Automaton R = parsers::rearrangeCombined();
  CheckOptions O;
  O.RecordTrace = true;
  CheckResult Res =
      checkLanguageEquivalence(L, "parse_ip", R, "parse_combined", O);
  ASSERT_TRUE(Res.equivalent());
  ASSERT_FALSE(Res.Trace.empty());
  EXPECT_EQ(Res.Trace.back().K, TraceStep::Kind::Done);
  size_t Extends = 0, Skips = 0;
  for (const TraceStep &T : Res.Trace) {
    Extends += T.K == TraceStep::Kind::Extend;
    Skips += T.K == TraceStep::Kind::Skip;
  }
  EXPECT_EQ(Extends, Res.Stats.Extends);
  EXPECT_EQ(Skips, Res.Stats.Skips);
}

TEST(CheckerOptions, IterationLimitReportsResourceLimit) {
  p4a::Automaton L = parsers::mplsReference();
  p4a::Automaton R = parsers::mplsVectorized();
  CheckOptions O;
  O.MaxIterations = 3;
  CheckResult Res = checkLanguageEquivalence(L, "q1", R, "q3", O);
  EXPECT_EQ(Res.V, Verdict::ResourceLimit);
  EXPECT_FALSE(Res.FailureReason.empty());
}

TEST(CheckerOptions, InjectedSolverReceivesAllQueries) {
  p4a::Automaton L = parsers::rearrangeReference();
  p4a::Automaton R = parsers::rearrangeCombined();
  smt::BitBlastSolver Private;
  CheckOptions O;
  O.Solver = &Private;
  CheckResult Res =
      checkLanguageEquivalence(L, "parse_ip", R, "parse_combined", O);
  ASSERT_TRUE(Res.equivalent());
  EXPECT_EQ(Private.stats().Queries, Res.Stats.SmtQueries);
}

TEST(CheckerOptions, StatsAreInternallyConsistent) {
  p4a::Automaton L = parsers::rearrangeReference();
  p4a::Automaton R = parsers::rearrangeCombined();
  CheckResult Res =
      checkLanguageEquivalence(L, "parse_ip", R, "parse_combined");
  EXPECT_EQ(Res.Stats.Iterations, Res.Stats.Extends + Res.Stats.Skips);
  EXPECT_EQ(Res.Stats.FinalConjuncts, Res.Stats.Extends);
  EXPECT_EQ(Res.Certificate.Relation.size(), Res.Stats.FinalConjuncts);
  EXPECT_GT(Res.Stats.ReachPairs, 0u);
  EXPECT_GT(Res.Stats.TemplatesLeft, 0u);
}

//===----------------------------------------------------------------------===//
// Support utilities
//===----------------------------------------------------------------------===//

TEST(Support, Join) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, " ++ "), "a ++ b ++ c");
}

TEST(Support, Trim) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim("z"), "z");
}

TEST(Support, SplitAndTrim) {
  auto Parts = splitAndTrim(" a, b ;; c ", ",;");
  ASSERT_EQ(Parts.size(), 3u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[1], "b");
  EXPECT_EQ(Parts[2], "c");
}

TEST(Support, StartsWith) {
  EXPECT_TRUE(startsWith("foobar", "foo"));
  EXPECT_FALSE(startsWith("fo", "foo"));
  EXPECT_TRUE(startsWith("x", ""));
}

TEST(Support, HashCombineSpreads) {
  // Different orderings of the same values hash differently.
  EXPECT_NE(hashAll(1, 2), hashAll(2, 1));
  EXPECT_EQ(hashAll(size_t(7), size_t(9)), hashAll(size_t(7), size_t(9)));
  PairHash PH;
  EXPECT_NE(PH(std::make_pair(1, 2)), PH(std::make_pair(1, 3)));
}

TEST(Support, TemplateHashingDistinguishes) {
  Template A{p4a::StateRef::normal(3), 7};
  Template B{p4a::StateRef::normal(3), 8};
  Template C{p4a::StateRef::normal(4), 7};
  EXPECT_NE(A.hash(), B.hash());
  EXPECT_NE(A.hash(), C.hash());
  EXPECT_NE(Template::accept().hash(), Template::reject().hash());
}

} // namespace
