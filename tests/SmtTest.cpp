//===- SmtTest.cpp - FOL(BV), bit-blasting, SMT-LIB tests -----------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the FOL(BV) layer: term/formula smart constructors, the solver
/// facade (SAT with model validation / UNSAT), a randomized differential
/// test of the bit-blaster against brute-force evaluation, and the
/// SMT-LIB2 printer (including the MSB/LSB index translation and symbol
/// sanitization).
///
//===----------------------------------------------------------------------===//

#include "smt/BitBlast.h"
#include "smt/BvFormula.h"
#include "smt/SmtLib.h"
#include "smt/Solver.h"

#include "FuzzSupport.h"

#include <gtest/gtest.h>

using namespace leapfrog;
using namespace leapfrog::smt;
using leapfrog::testing::fuzzIters;

namespace {

BvTermRef var(const std::string &N, size_t W) { return BvTerm::mkVar(N, W); }
BvTermRef lit(const std::string &Bits) {
  return BvTerm::mkConst(Bitvector::fromString(Bits));
}

//===----------------------------------------------------------------------===//
// Smart constructors
//===----------------------------------------------------------------------===//

TEST(BvTerm, ConcatFoldsConstants) {
  BvTermRef T = BvTerm::mkConcat(lit("10"), lit("01"));
  ASSERT_EQ(T->kind(), BvTerm::Kind::Const);
  EXPECT_EQ(T->constValue().str(), "1001");
}

TEST(BvTerm, ConcatDropsEpsilon) {
  BvTermRef X = var("x", 3);
  EXPECT_EQ(BvTerm::mkConcat(lit(""), X), X);
  EXPECT_EQ(BvTerm::mkConcat(X, lit("")), X);
}

TEST(BvTerm, ExtractFullWidthIsIdentity) {
  BvTermRef X = var("x", 5);
  EXPECT_EQ(BvTerm::mkExtract(X, 0, 4), X);
}

TEST(BvTerm, ExtractOfConstFolds) {
  BvTermRef T = BvTerm::mkExtract(lit("110101"), 1, 3);
  ASSERT_EQ(T->kind(), BvTerm::Kind::Const);
  EXPECT_EQ(T->constValue().str(), "101");
}

TEST(BvTerm, ExtractOfExtractComposes) {
  BvTermRef X = var("x", 10);
  BvTermRef T = BvTerm::mkExtract(BvTerm::mkExtract(X, 2, 8), 1, 3);
  ASSERT_EQ(T->kind(), BvTerm::Kind::Extract);
  EXPECT_EQ(T->extractOperand(), X);
  EXPECT_EQ(T->extractLo(), 3u);
  EXPECT_EQ(T->extractHi(), 5u);
}

TEST(BvTerm, ExtractDistributesOverConcat) {
  BvTermRef X = var("x", 4), Y = var("y", 4);
  BvTermRef C = BvTerm::mkConcat(X, Y);
  // Fully inside the left operand.
  BvTermRef L = BvTerm::mkExtract(C, 1, 3);
  ASSERT_EQ(L->kind(), BvTerm::Kind::Extract);
  EXPECT_EQ(L->extractOperand(), X);
  // Fully inside the right operand.
  BvTermRef R = BvTerm::mkExtract(C, 5, 7);
  ASSERT_EQ(R->kind(), BvTerm::Kind::Extract);
  EXPECT_EQ(R->extractOperand(), Y);
  // Straddling: becomes a concat of two extracts.
  BvTermRef M = BvTerm::mkExtract(C, 2, 5);
  ASSERT_EQ(M->kind(), BvTerm::Kind::Concat);
}

TEST(BvFormula, EqFoldsConstants) {
  EXPECT_EQ(BvFormula::mkEq(lit("101"), lit("101"))->kind(),
            BvFormula::Kind::True);
  EXPECT_EQ(BvFormula::mkEq(lit("101"), lit("100"))->kind(),
            BvFormula::Kind::False);
  EXPECT_EQ(BvFormula::mkEq(lit(""), lit(""))->kind(),
            BvFormula::Kind::True);
}

TEST(BvFormula, ConnectiveIdentities) {
  BvFormulaRef P = BvFormula::mkEq(var("x", 2), lit("10"));
  EXPECT_EQ(BvFormula::mkAnd(BvFormula::mkTrue(), P), P);
  EXPECT_EQ(BvFormula::mkOr(BvFormula::mkFalse(), P), P);
  EXPECT_EQ(BvFormula::mkImplies(P, BvFormula::mkTrue())->kind(),
            BvFormula::Kind::True);
  EXPECT_EQ(BvFormula::mkNot(BvFormula::mkNot(P)), P);
}

//===----------------------------------------------------------------------===//
// Solver facade
//===----------------------------------------------------------------------===//

TEST(Solver, SatWithModel) {
  // x ++ y = 1001 with |x|=|y|=2 forces x=10, y=01.
  BitBlastSolver S;
  BvFormulaRef F = BvFormula::mkEq(
      BvTerm::mkConcat(var("x", 2), var("y", 2)), lit("1001"));
  Model M;
  ASSERT_EQ(S.checkSat(F, &M), SatResult::Sat);
  ASSERT_EQ(M.size(), 2u);
  EXPECT_TRUE(evalFormula(F, M));
}

TEST(Solver, UnsatSliceConflict) {
  // x[0:0] = 1 and x[0:0] = 0 cannot both hold.
  BitBlastSolver S;
  BvTermRef X = var("x", 3);
  BvFormulaRef F = BvFormula::mkAnd(
      BvFormula::mkEq(BvTerm::mkExtract(X, 0, 0), lit("1")),
      BvFormula::mkEq(BvTerm::mkExtract(X, 0, 0), lit("0")));
  EXPECT_EQ(S.checkSat(F, nullptr), SatResult::Unsat);
}

TEST(Solver, ValidityOfSelfEquality) {
  BitBlastSolver S;
  BvTermRef X = var("x", 64);
  EXPECT_TRUE(S.isValid(BvFormula::mkEq(X, X)));
  EXPECT_FALSE(S.isValid(BvFormula::mkEq(X, var("y", 64))));
}

TEST(Solver, ConcatSliceRoundTripIsValid) {
  // (x ++ y)[0:|x|-1] = x is valid for all x, y.
  BitBlastSolver S;
  BvTermRef X = var("x", 5), Y = var("y", 3);
  BvFormulaRef F = BvFormula::mkEq(
      BvTerm::mkExtract(BvTerm::mkConcat(X, Y), 0, 4), X);
  EXPECT_TRUE(S.isValid(F));
}

TEST(Solver, CountsQueries) {
  BitBlastSolver S;
  BvTermRef X = var("x", 4);
  S.isValid(BvFormula::mkEq(X, X));
  S.checkSat(BvFormula::mkEq(X, lit("1010")), nullptr);
  EXPECT_EQ(S.stats().Queries, 2u);
  EXPECT_EQ(S.stats().QueryMicros.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Differential fuzz: bit-blasting vs brute-force evaluation
//===----------------------------------------------------------------------===//

struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed * 0x9e3779b97f4a7c15ull + 1) {}
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
  size_t below(size_t N) { return size_t(next() % N); }
};

/// Random term over variables x (3 bits) and y (2 bits).
BvTermRef randomTerm(Rng &R, int Depth) {
  if (Depth == 0 || R.below(3) == 0) {
    switch (R.below(3)) {
    case 0:
      return var("x", 3);
    case 1:
      return var("y", 2);
    default: {
      Bitvector BV;
      size_t Len = 1 + R.below(3);
      for (size_t I = 0; I < Len; ++I)
        BV.pushBack(R.below(2));
      return BvTerm::mkConst(BV);
    }
    }
  }
  if (R.below(2) == 0)
    return BvTerm::mkConcat(randomTerm(R, Depth - 1),
                            randomTerm(R, Depth - 1));
  BvTermRef Op = randomTerm(R, Depth - 1);
  if (Op->width() == 0)
    return Op;
  size_t Lo = R.below(Op->width());
  size_t Hi = Lo + R.below(Op->width() - Lo);
  return BvTerm::mkExtract(Op, Lo, Hi);
}

BvFormulaRef randomFormula(Rng &R, int Depth) {
  if (Depth == 0 || R.below(4) == 0) {
    BvTermRef A = randomTerm(R, 2);
    // Force matching widths by slicing both to the min width, or comparing
    // to a constant of the right width.
    Bitvector BV;
    for (size_t I = 0; I < A->width(); ++I)
      BV.pushBack(R.below(2));
    return BvFormula::mkEq(A, BvTerm::mkConst(BV));
  }
  switch (R.below(4)) {
  case 0:
    return BvFormula::mkNot(randomFormula(R, Depth - 1));
  case 1:
    return BvFormula::mkAnd(randomFormula(R, Depth - 1),
                            randomFormula(R, Depth - 1));
  case 2:
    return BvFormula::mkOr(randomFormula(R, Depth - 1),
                           randomFormula(R, Depth - 1));
  default:
    return BvFormula::mkImplies(randomFormula(R, Depth - 1),
                                randomFormula(R, Depth - 1));
  }
}

class BlastFuzz : public ::testing::TestWithParam<int> {};

TEST_P(BlastFuzz, AgreesWithEnumeration) {
  leapfrog::testing::reportFuzzConfig("BlastFuzz", fuzzIters(300),
                                      uint64_t(GetParam()));
  Rng R{uint64_t(GetParam())};
  BvFormulaRef F = randomFormula(R, 3);

  // Brute force over all assignments of x (3 bits) and y (2 bits). Note
  // the formula may mention neither, either, or both.
  bool AnySat = false;
  for (uint64_t X = 0; X < 8; ++X)
    for (uint64_t Y = 0; Y < 4; ++Y) {
      std::vector<std::pair<std::string, Bitvector>> Assign{
          {"x", Bitvector::fromUint(X, 3)}, {"y", Bitvector::fromUint(Y, 2)}};
      AnySat |= evalFormula(F, Assign);
    }

  BitBlastSolver S;
  Model M;
  SatResult Res = S.checkSat(F, &M);
  ASSERT_EQ(Res == SatResult::Sat, AnySat) << F->str();
  if (Res == SatResult::Sat) {
    // Extend the model with defaults for unconstrained variables and
    // check it truly satisfies F.
    auto Has = [&M](const std::string &N) {
      for (auto &[Name, V] : M)
        if (Name == N)
          return true;
      return false;
    };
    if (!Has("x"))
      M.emplace_back("x", Bitvector(3));
    if (!Has("y"))
      M.emplace_back("y", Bitvector(2));
    EXPECT_TRUE(evalFormula(F, M)) << F->str();
  }
}

INSTANTIATE_TEST_SUITE_P(Random, BlastFuzz,
                         ::testing::Range(0, fuzzIters(300)));

//===----------------------------------------------------------------------===//
// Incremental sessions
//===----------------------------------------------------------------------===//

TEST(Session, EntailmentAgainstGrowingPremises) {
  BitBlastSolver S;
  auto Sess = S.openSession();
  BvTermRef X = var("x", 4);
  // No premises yet: x = 1010 is not entailed.
  EXPECT_FALSE(Sess->isEntailed(BvFormula::mkEq(X, lit("1010"))));
  Sess->assertPremise(BvFormula::mkEq(X, lit("1010")));
  EXPECT_TRUE(Sess->isEntailed(BvFormula::mkEq(X, lit("1010"))));
  // And a consequence via slicing, not syntactic identity.
  EXPECT_TRUE(
      Sess->isEntailed(BvFormula::mkEq(BvTerm::mkExtract(X, 0, 1), lit("10"))));
  EXPECT_FALSE(
      Sess->isEntailed(BvFormula::mkEq(BvTerm::mkExtract(X, 0, 1), lit("11"))));
}

TEST(Session, PremiseCacheDeduplicatesStructurally) {
  BitBlastSolver S;
  auto Sess = S.openSession();
  BvTermRef X = var("x", 4);
  // Structurally identical premises built as distinct nodes.
  Sess->assertPremise(BvFormula::mkEq(var("x", 4), lit("1010")));
  Sess->assertPremise(BvFormula::mkEq(var("x", 4), lit("1010")));
  EXPECT_EQ(S.stats().SessionPremises, 1u);
  EXPECT_EQ(S.stats().PremiseCacheHits, 1u);
  EXPECT_TRUE(Sess->isEntailed(BvFormula::mkEq(X, lit("1010"))));
  EXPECT_EQ(S.stats().SessionQueries, 1u);
  EXPECT_EQ(S.stats().SessionsOpened, 1u);
}

TEST(Session, UnsatPremisesEntailEverything) {
  BitBlastSolver S;
  auto Sess = S.openSession();
  BvTermRef X = var("x", 2);
  Sess->assertPremise(BvFormula::mkEq(X, lit("00")));
  Sess->assertPremise(BvFormula::mkEq(X, lit("11")));
  EXPECT_TRUE(Sess->isEntailed(BvFormula::mkEq(var("y", 2), lit("01"))));
  EXPECT_TRUE(Sess->isEntailed(BvFormula::mkFalse()));
}

//===----------------------------------------------------------------------===//
// Batched goals (IncrementalSession::checkSatBatch)
//===----------------------------------------------------------------------===//

TEST(SessionBatch, AnswersMatchPerGoalQueries) {
  // The contract: Out[i] == checkSatUnderPremises(Goals[i], nullptr),
  // independent of batch composition. Pose the same goals to a batched
  // and an unbatched session over identical premises and compare.
  BvTermRef X = var("x", 4);
  std::vector<BvFormulaRef> Goals = {
      BvFormula::mkNot(BvFormula::mkEq(X, lit("1010"))), // Unsat (entailed)
      BvFormula::mkNot(
          BvFormula::mkEq(BvTerm::mkExtract(X, 0, 1), lit("10"))), // Unsat
      BvFormula::mkEq(var("y", 4), lit("0001")),                   // Sat
      BvFormula::mkNot(
          BvFormula::mkEq(BvTerm::mkExtract(X, 2, 3), lit("10"))), // Unsat
  };
  BitBlastSolver Batched, PerGoal;
  auto BS = Batched.openSession();
  auto PS = PerGoal.openSession();
  BS->assertPremise(BvFormula::mkEq(X, lit("1010")));
  PS->assertPremise(BvFormula::mkEq(X, lit("1010")));
  std::vector<SatResult> Out;
  BS->checkSatBatch(Goals, Out);
  ASSERT_EQ(Out.size(), Goals.size());
  for (size_t I = 0; I < Goals.size(); ++I)
    EXPECT_EQ(Out[I], PS->checkSatUnderPremises(Goals[I], nullptr))
        << "batched answer diverges at goal " << I;
  // Three entailed goals and one satisfiable one: the batch needs at
  // most one SAT refinement round plus one closing UNSAT round, strictly
  // fewer than the four physical solves the per-goal session paid.
  EXPECT_LT(Batched.stats().RoundTrips, PerGoal.stats().RoundTrips);
}

TEST(SessionBatch, AllEntailedGoalsShareOneRoundTrip) {
  BvTermRef X = var("x", 4);
  BitBlastSolver S;
  auto Sess = S.openSession();
  Sess->assertPremise(BvFormula::mkEq(X, lit("1010")));
  uint64_t Before = S.stats().RoundTrips;
  std::vector<BvFormulaRef> Goals;
  for (size_t Lo = 0; Lo < 4; ++Lo)
    Goals.push_back(BvFormula::mkNot(BvFormula::mkEq(
        BvTerm::mkExtract(X, Lo, Lo), lit(Lo % 2 ? "0" : "1"))));
  std::vector<SatResult> Out;
  Sess->checkSatBatch(Goals, Out);
  for (size_t I = 0; I < Goals.size(); ++I)
    EXPECT_EQ(Out[I], SatResult::Unsat) << "goal " << I;
  // One failed-assumption round attributes Unsat to all four goals.
  EXPECT_EQ(S.stats().RoundTrips - Before, 1u);
}

TEST(SessionBatch, GoalsFailingForDifferentPremiseSubsetsAttributeRight) {
  // Two batched goals each refuted by a *different* premise (and one
  // satisfiable bystander): attribution must be per-goal, not whichever
  // core the shared round happens to surface.
  BvTermRef A = var("a", 2), B = var("b", 2);
  BitBlastSolver S;
  auto Sess = S.openSession();
  Sess->assertPremise(BvFormula::mkEq(A, lit("01")));
  Sess->assertPremise(BvFormula::mkEq(B, lit("10")));
  std::vector<BvFormulaRef> Goals = {
      BvFormula::mkNot(BvFormula::mkEq(A, lit("01"))), // needs premise 1
      BvFormula::mkEq(var("c", 2), lit("11")),         // Sat bystander
      BvFormula::mkNot(BvFormula::mkEq(B, lit("10"))), // needs premise 2
  };
  std::vector<SatResult> Out;
  Sess->checkSatBatch(Goals, Out);
  EXPECT_EQ(Out[0], SatResult::Unsat);
  EXPECT_EQ(Out[1], SatResult::Sat);
  EXPECT_EQ(Out[2], SatResult::Unsat);
}

TEST(SessionBatch, AnswersAreOrderIndependent) {
  BvTermRef X = var("x", 4);
  std::vector<BvFormulaRef> Goals = {
      BvFormula::mkNot(BvFormula::mkEq(X, lit("1010"))),
      BvFormula::mkEq(var("y", 4), lit("0001")),
      BvFormula::mkNot(BvFormula::mkEq(BvTerm::mkExtract(X, 0, 1), lit("11"))),
      BvFormula::mkEq(var("z", 2), lit("10")),
  };
  std::vector<size_t> Perm = {2, 0, 3, 1};
  BitBlastSolver SA, SB;
  auto SessA = SA.openSession();
  auto SessB = SB.openSession();
  SessA->assertPremise(BvFormula::mkEq(X, lit("1010")));
  SessB->assertPremise(BvFormula::mkEq(X, lit("1010")));
  std::vector<SatResult> OutA;
  SessA->checkSatBatch(Goals, OutA);
  std::vector<BvFormulaRef> Permuted;
  for (size_t I : Perm)
    Permuted.push_back(Goals[I]);
  std::vector<SatResult> OutB;
  SessB->checkSatBatch(Permuted, OutB);
  for (size_t K = 0; K < Perm.size(); ++K)
    EXPECT_EQ(OutB[K], OutA[Perm[K]])
        << "permuted batch diverges at position " << K;
}

TEST(SessionBatch, SingletonBatchMatchesDirectQuery) {
  BvTermRef X = var("x", 4);
  BitBlastSolver S;
  auto Sess = S.openSession();
  Sess->assertPremise(BvFormula::mkEq(X, lit("1010")));
  std::vector<BvFormulaRef> One = {
      BvFormula::mkNot(BvFormula::mkEq(X, lit("1010")))};
  std::vector<SatResult> Out;
  Sess->checkSatBatch(One, Out);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0], SatResult::Unsat);
  // A size-1 batch degrades to the plain per-goal path: exactly one
  // physical solve, no selector machinery.
  EXPECT_EQ(S.stats().RoundTrips, 1u);
}

TEST(Session, ModelCoversPremiseAndGoalVariables) {
  BitBlastSolver S;
  auto Sess = S.openSession();
  Sess->assertPremise(BvFormula::mkEq(var("x", 3), lit("101")));
  Model M;
  ASSERT_EQ(Sess->checkSatUnderPremises(
                BvFormula::mkEq(var("y", 2), lit("01")), &M),
            SatResult::Sat);
  ASSERT_EQ(M.size(), 2u);
  std::vector<std::pair<std::string, Bitvector>> Assign(M.begin(), M.end());
  EXPECT_TRUE(evalFormula(BvFormula::mkEq(var("x", 3), lit("101")), Assign));
  EXPECT_TRUE(evalFormula(BvFormula::mkEq(var("y", 2), lit("01")), Assign));
}

TEST(Session, CertifyingSolverFallsBackToMonolithic) {
  BitBlastSolver S;
  S.CertifyUnsat = true;
  auto Sess = S.openSession();
  BvTermRef X = var("x", 4);
  Sess->assertPremise(BvFormula::mkEq(X, lit("1010")));
  EXPECT_TRUE(Sess->isEntailed(BvFormula::mkEq(X, lit("1010"))));
  // The UNSAT answer behind the entailment was proof-checked, which only
  // the monolithic path can do (a DRUP proof spans one solve).
  EXPECT_GE(S.stats().CertifiedUnsat, 1u);
  EXPECT_EQ(S.stats().ReusedClauses, 0u);
}

TEST(Session, TwoSolverInstancesShareNoState) {
  // Regression for the Solver.h threading contract: explicit instances
  // must be fully independent — premises asserted into one must never
  // leak into the other, and statistics are per-instance.
  BitBlastSolver A, B;
  auto SessA = A.openSession();
  auto SessB = B.openSession();
  BvTermRef X = var("x", 2);
  SessA->assertPremise(BvFormula::mkEq(X, lit("10")));
  // B has no premises: nothing non-trivial is entailed there.
  EXPECT_FALSE(SessB->isEntailed(BvFormula::mkEq(X, lit("10"))));
  EXPECT_TRUE(SessA->isEntailed(BvFormula::mkEq(X, lit("10"))));
  // B can even assert the contradictory premise without affecting A.
  SessB->assertPremise(BvFormula::mkEq(X, lit("01")));
  EXPECT_TRUE(SessB->isEntailed(BvFormula::mkEq(X, lit("01"))));
  EXPECT_FALSE(SessA->isEntailed(BvFormula::mkEq(X, lit("01"))));
  EXPECT_EQ(A.stats().SessionPremises, 1u);
  EXPECT_EQ(B.stats().SessionPremises, 1u);
  EXPECT_EQ(A.stats().SessionsOpened, 1u);
  EXPECT_EQ(B.stats().SessionsOpened, 1u);
}

//===----------------------------------------------------------------------===//
// Session memory management: retirement purges, limits, restarts
//===----------------------------------------------------------------------===//

TEST(SessionMemory, RetiredGoalsAreHardDeleted) {
  // Each goal's guard + Tseitin clauses are physically removed at
  // retirement, so a long query sequence shows up in ClausesDeleted
  // while the premise CNF alone persists.
  BitBlastSolver S;
  S.SessionPurgeBatch = 1; // Purge at every opportunity.
  auto Sess = S.openSession();
  BvTermRef X = var("x", 8);
  Sess->assertPremise(BvFormula::mkEq(BvTerm::mkExtract(X, 0, 3),
                                      lit("1010")));
  for (int I = 0; I < 10; ++I) {
    EXPECT_TRUE(Sess->isEntailed(
        BvFormula::mkEq(BvTerm::mkExtract(X, 0, 1), lit("10"))));
    EXPECT_FALSE(Sess->isEntailed(
        BvFormula::mkEq(BvTerm::mkExtract(X, 4, 7), lit("0000"))));
  }
  EXPECT_GT(S.stats().ClausesDeleted, 0u);
  EXPECT_GT(S.stats().ArenaBytesPeak, 0u);
  EXPECT_EQ(S.stats().SessionRestarts, 0u); // No limits set.
  EXPECT_EQ(S.stats().PremisesGcd, 0u);
}

TEST(SessionMemory, LimitsTripRestartsWithoutChangingAnswers) {
  // A one-byte arena bound trips after every query: the session is torn
  // down and rebuilt from its premises each time, and the answers must
  // be exactly those of an unlimited session.
  BitBlastSolver Limited, Unlimited;
  SessionLimits Tight;
  Tight.MaxArenaBytes = 1;
  auto SessL = Limited.openSession(Tight);
  auto SessU = Unlimited.openSession();
  BvTermRef X = var("x", 6);
  auto Premise = BvFormula::mkEq(BvTerm::mkExtract(X, 0, 2), lit("101"));
  SessL->assertPremise(Premise);
  SessU->assertPremise(Premise);
  for (int I = 0; I < 6; ++I) {
    Bitvector Probe = Bitvector::fromUint(uint64_t(I), 3);
    BvFormulaRef Goal = BvFormula::mkEq(BvTerm::mkExtract(X, 3, 5),
                                        BvTerm::mkConst(Probe));
    EXPECT_EQ(SessL->isEntailed(Goal), SessU->isEntailed(Goal)) << I;
    // Entailed consequences of the premise survive every rebuild.
    EXPECT_TRUE(SessL->isEntailed(
        BvFormula::mkEq(BvTerm::mkExtract(X, 0, 0), lit("1"))));
  }
  EXPECT_GT(Limited.stats().SessionRestarts, 0u);
  EXPECT_GT(Limited.stats().PremisesGcd, 0u);
  EXPECT_EQ(Unlimited.stats().SessionRestarts, 0u);
  EXPECT_EQ(Unlimited.stats().PremisesGcd, 0u);
  // Restarts re-blast premises but never re-count them: both backends
  // report the same single distinct premise conjunct.
  EXPECT_EQ(Limited.stats().SessionPremises,
            Unlimited.stats().SessionPremises);
  EXPECT_EQ(Limited.stats().SessionPremises, 1u);
}

TEST(SessionMemory, MaxLearntsLimitTrips) {
  // A peak of more than one simultaneous learned clause trips the
  // MaxLearnts = 1 backstop. Pairwise-distinct variables force real
  // search — unit propagation alone cannot refute a wrong probe of this
  // premise set, so conflicts (and therefore learned clauses) happen.
  BitBlastSolver S;
  SessionLimits Tight;
  Tight.MaxLearnts = 1;
  auto Sess = S.openSession(Tight);
  BvTermRef A = var("a", 2), B = var("b", 2), C = var("c", 2),
            D = var("d", 2);
  const BvTermRef Vars[] = {A, B, C, D};
  for (size_t I = 0; I < 4; ++I)
    for (size_t J = I + 1; J < 4; ++J)
      Sess->assertPremise(BvFormula::mkNot(BvFormula::mkEq(Vars[I], Vars[J])));
  // Four pairwise-distinct 2-bit values use up the whole domain, so 'a'
  // can take any value but the assignment of the rest is forced around
  // it; probing all combinations of two variables forces conflicts.
  for (int I = 0; I < 4; ++I)
    for (int J = 0; J < 4; ++J) {
      BvFormulaRef Goal = BvFormula::mkAnd(
          BvFormula::mkEq(A, BvTerm::mkConst(
                                 Bitvector::fromUint(uint64_t(I), 2))),
          BvFormula::mkEq(B, BvTerm::mkConst(
                                 Bitvector::fromUint(uint64_t(J), 2))));
      (void)Sess->checkSatUnderPremises(Goal, nullptr);
    }
  EXPECT_GT(S.stats().SessionRestarts, 0u);
  // Each restart collects every premise group's blast state.
  EXPECT_GE(S.stats().PremisesGcd, 6 * S.stats().SessionRestarts);
}

TEST(SessionMemory, StatsMonotoneAcrossQueriesAndRestarts) {
  BitBlastSolver S;
  S.SessionPurgeBatch = 1; // Purge at every opportunity.
  SessionLimits Tight;
  Tight.MaxArenaBytes = 1;
  auto Sess = S.openSession(Tight);
  BvTermRef X = var("x", 5);
  Sess->assertPremise(BvFormula::mkEq(BvTerm::mkExtract(X, 0, 1),
                                      lit("01")));
  uint64_t Deleted = 0, Gcd = 0, Restarts = 0, Arena = 0, Learnts = 0;
  for (int I = 0; I < 6; ++I) {
    Bitvector Probe = Bitvector::fromUint(uint64_t(I), 3);
    (void)Sess->checkSatUnderPremises(
        BvFormula::mkEq(BvTerm::mkExtract(X, 2, 4), BvTerm::mkConst(Probe)),
        nullptr);
    const SolverStats &St = S.stats();
    EXPECT_GE(St.ClausesDeleted, Deleted);
    EXPECT_GE(St.PremisesGcd, Gcd);
    EXPECT_GE(St.SessionRestarts, Restarts);
    EXPECT_GE(St.ArenaBytesPeak, Arena);
    EXPECT_GE(St.PeakLearnts, Learnts);
    Deleted = St.ClausesDeleted;
    Gcd = St.PremisesGcd;
    Restarts = St.SessionRestarts;
    Arena = St.ArenaBytesPeak;
    Learnts = St.PeakLearnts;
  }
  EXPECT_GT(Deleted, 0u);
  EXPECT_GT(Restarts, 0u);
}

TEST(SessionMemory, CertifyingSessionsStayIncremental) {
  // Regression: CertifyUnsat used to force openSession onto the
  // stateless monolithic fallback, silently discarding every session
  // benefit the moment certification was requested. A certifying
  // session must be a *real* session — session counters move, arena
  // state exists — while every UNSAT answer is still proof-validated.
  BitBlastSolver Certifying;
  Certifying.CertifyUnsat = true;
  auto Sess = Certifying.openSession();
  BvTermRef X = var("x", 4);
  Sess->assertPremise(BvFormula::mkEq(X, lit("1010")));
  EXPECT_TRUE(Sess->isEntailed(BvFormula::mkEq(X, lit("1010"))));
  EXPECT_FALSE(Sess->isEntailed(BvFormula::mkEq(var("y", 4), lit("1010"))));
  const SolverStats &St = Certifying.stats();
  EXPECT_EQ(St.SessionsOpened, 1u);
  EXPECT_EQ(St.SessionQueries, 2u);
  EXPECT_GT(St.SessionPremises, 0u);
  EXPECT_GT(St.ArenaBytesPeak, 0u);
  // isEntailed(goal) asks UNSAT(premises & !goal); the entailed goal's
  // UNSAT answer must have been replayed through the validator.
  EXPECT_GT(St.CertifiedUnsat, 0u);
}

TEST(SessionMemory, AggressiveReductionKeepsAnswers) {
  // Force reduceDB onto the aggressive schedule inside one session's
  // CDCL solver, disable all clause-DB management (no reduction, no
  // retired-goal purge — the grow-only PR-2 baseline) in another, and
  // diff a query sequence across them.
  BitBlastSolver Reducing, Plain;
  Reducing.SessionReduce.FirstReduce = 1;
  Reducing.SessionReduce.Growth = 1.0;
  Plain.SessionReduce.Enabled = false;
  Plain.SessionHardRetire = false;
  auto SessR = Reducing.openSession();
  auto SessP = Plain.openSession();
  BvTermRef A = var("a", 10), B = var("b", 10);
  for (const auto &P :
       {BvFormula::mkEq(A, B),
        BvFormula::mkEq(BvTerm::mkExtract(A, 0, 4), lit("11010"))}) {
    SessR->assertPremise(P);
    SessP->assertPremise(P);
  }
  for (int I = 0; I < 16; ++I) {
    Bitvector Probe = Bitvector::fromUint(uint64_t(I * 3), 5);
    BvFormulaRef Goal = BvFormula::mkEq(BvTerm::mkExtract(B, 5, 9),
                                        BvTerm::mkConst(Probe));
    EXPECT_EQ(SessR->isEntailed(Goal), SessP->isEntailed(Goal)) << I;
  }
  EXPECT_EQ(Plain.stats().ReduceDbRuns, 0u);
  EXPECT_EQ(Plain.stats().ClausesDeleted, 0u);
}

/// Differential fuzz: a session posed a random premise/goal sequence must
/// agree query-for-query with monolithic checkSat on the conjunction.
class SessionFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SessionFuzz, AgreesWithMonolithicConjunction) {
  leapfrog::testing::reportFuzzConfig("SessionFuzz", fuzzIters(200),
                                      uint64_t(GetParam()) + 777);
  Rng R{uint64_t(GetParam()) + 777};
  BitBlastSolver Incremental, Monolithic;
  auto Sess = Incremental.openSession();
  std::vector<BvFormulaRef> Premises;
  for (int Round = 0; Round < 8; ++Round) {
    if (R.below(2) == 0) {
      BvFormulaRef P = randomFormula(R, 2);
      Premises.push_back(P);
      Sess->assertPremise(P);
    }
    BvFormulaRef Goal = randomFormula(R, 2);
    BvFormulaRef Conj = Goal;
    for (size_t I = Premises.size(); I > 0; --I)
      Conj = BvFormula::mkAnd(Premises[I - 1], Conj);
    Model M;
    SatResult Inc = Sess->checkSatUnderPremises(Goal, &M);
    SatResult Mono = Monolithic.checkSat(Conj, nullptr);
    ASSERT_EQ(Inc == SatResult::Sat, Mono == SatResult::Sat)
        << "session diverges from monolithic, seed " << GetParam()
        << " round " << Round << " goal " << Goal->str();
    if (Inc == SatResult::Sat) {
      auto Has = [&M](const std::string &N) {
        for (auto &[Name, V] : M)
          if (Name == N)
            return true;
        return false;
      };
      if (!Has("x"))
        M.emplace_back("x", Bitvector(3));
      if (!Has("y"))
        M.emplace_back("y", Bitvector(2));
      EXPECT_TRUE(evalFormula(Conj, M))
          << "session model violates premises∧goal, seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, SessionFuzz,
                         ::testing::Range(0, fuzzIters(200)));

/// Limits fuzz: the same random premise/goal sequences, but the session
/// runs under deliberately tiny memory limits (restarting constantly)
/// and an aggressive in-solver reduction schedule, and must still agree
/// query-for-query with the monolithic conjunction.
class SessionLimitsFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SessionLimitsFuzz, AgreesWithMonolithicUnderTinyLimits) {
  leapfrog::testing::reportFuzzConfig("SessionLimitsFuzz", fuzzIters(100),
                                      uint64_t(GetParam()) + 31337);
  Rng R{uint64_t(GetParam()) + 31337};
  BitBlastSolver Incremental, Monolithic;
  Incremental.SessionReduce.FirstReduce = 1;
  Incremental.SessionReduce.Growth = 1.0;
  SessionLimits Tight;
  // Alternate which limit bites; both paths end in the same rebuild.
  if (GetParam() % 2 == 0)
    Tight.MaxArenaBytes = 1 + R.below(4096);
  else
    Tight.MaxLearnts = 1 + R.below(4);
  auto Sess = Incremental.openSession(Tight);
  std::vector<BvFormulaRef> Premises;
  for (int Round = 0; Round < 8; ++Round) {
    if (R.below(2) == 0) {
      BvFormulaRef P = randomFormula(R, 2);
      Premises.push_back(P);
      Sess->assertPremise(P);
    }
    BvFormulaRef Goal = randomFormula(R, 2);
    BvFormulaRef Conj = Goal;
    for (size_t I = Premises.size(); I > 0; --I)
      Conj = BvFormula::mkAnd(Premises[I - 1], Conj);
    SatResult Inc = Sess->checkSatUnderPremises(Goal, nullptr);
    SatResult Mono = Monolithic.checkSat(Conj, nullptr);
    ASSERT_EQ(Inc == SatResult::Sat, Mono == SatResult::Sat)
        << "limited session diverges from monolithic, seed " << GetParam()
        << " round " << Round << " goal " << Goal->str();
  }
}

INSTANTIATE_TEST_SUITE_P(Random, SessionLimitsFuzz,
                         ::testing::Range(0, fuzzIters(100)));

//===----------------------------------------------------------------------===//
// SMT-LIB printing
//===----------------------------------------------------------------------===//

TEST(SmtLib, TermSyntax) {
  BvTermRef X = var("x", 8);
  EXPECT_EQ(toSmtLibTerm(X), "x");
  EXPECT_EQ(toSmtLibTerm(lit("1010")), "#b1010");
  EXPECT_EQ(toSmtLibTerm(BvTerm::mkConcat(X, var("y", 4))),
            "(concat x y)");
}

TEST(SmtLib, ExtractTranslatesMsbFirstToLsbIndices) {
  // Our [1:3] on an 8-bit term covers bits 1..3 from the MSB; SMT-LIB
  // indexes from the LSB, so that is (_ extract 6 4).
  BvTermRef X = var("x", 8);
  EXPECT_EQ(toSmtLibTerm(BvTerm::mkExtract(X, 1, 3)),
            "((_ extract 6 4) x)");
}

TEST(SmtLib, FormulaSyntax) {
  // mkImplies(P, False) folds to (not P) — the §6.2 simplifications apply
  // before printing, so the emitted script is already reduced.
  BvFormulaRef P = BvFormula::mkEq(var("a", 2), lit("01"));
  EXPECT_EQ(toSmtLibFormula(BvFormula::mkImplies(P, BvFormula::mkFalse())),
            "(not (= a #b01))");
  BvFormulaRef Q = BvFormula::mkEq(var("b", 2), lit("10"));
  EXPECT_EQ(toSmtLibFormula(BvFormula::mkImplies(P, Q)),
            "(=> (= a #b01) (= b #b10))");
  EXPECT_EQ(toSmtLibFormula(BvFormula::mkAnd(P, Q)),
            "(and (= a #b01) (= b #b10))");
  EXPECT_EQ(toSmtLibFormula(BvFormula::mkOr(P, Q)),
            "(or (= a #b01) (= b #b10))");
}

TEST(SmtLib, ScriptDeclaresAllVarsOnce) {
  BvFormulaRef F = BvFormula::mkAnd(
      BvFormula::mkEq(var("a", 2), var("b", 2)),
      BvFormula::mkEq(var("a", 2), lit("11")));
  std::string Script = toSmtLibScript(F);
  EXPECT_NE(Script.find("(set-logic QF_BV)"), std::string::npos);
  EXPECT_NE(Script.find("(declare-const a (_ BitVec 2))"),
            std::string::npos);
  EXPECT_NE(Script.find("(declare-const b (_ BitVec 2))"),
            std::string::npos);
  EXPECT_NE(Script.find("(check-sat)"), std::string::npos);
  // 'a' is declared exactly once.
  size_t First = Script.find("declare-const a");
  EXPECT_EQ(Script.find("declare-const a", First + 1), std::string::npos);
}

TEST(SmtLib, SanitizesStoreEliminationNames) {
  // The store-elimination pass produces names like "h<mpls" and "buf>".
  std::string S1 = sanitizeSymbol("h<mpls");
  std::string S2 = sanitizeSymbol("h>mpls");
  std::string S3 = sanitizeSymbol("buf<");
  EXPECT_NE(S1, S2);
  for (char C : S1 + S2 + S3)
    EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
                C == '.' || C == '-' || C == '!')
        << C;
  // Leading digits are guarded.
  EXPECT_FALSE(std::isdigit(
      static_cast<unsigned char>(sanitizeSymbol("0weird")[0])));
}

TEST(SmtLib, DesanitizeInvertsSanitize) {
  // The external backend maps model symbols back through this inverse, so
  // it must hold on exactly the names this project mints: store-
  // elimination names, fresh-variable counters, session/query prefixes.
  const std::string Names[] = {"h<mpls", "h>mpls", "buf<",       "buf>",
                               "x",      "_wp!17", "0weird",     "s3!h<udp",
                               "q12!y",  "a!b!c",  "weird name", "3cx",
                               "",       "!",      "v!x"};
  for (const std::string &Name : Names)
    EXPECT_EQ(desanitizeSymbol(sanitizeSymbol(Name)), Name) << Name;
  // Distinct names stay distinct through the round trip (spot-check the
  // classic guard-collision pair).
  EXPECT_NE(sanitizeSymbol("3cx"), sanitizeSymbol("v<x"));
}

//===----------------------------------------------------------------------===//
// Model-reply parsing (the receive side of the solver pipe)
//===----------------------------------------------------------------------===//

TEST(SmtLibModel, ParsesZ3AndSpecShapes) {
  std::vector<std::pair<std::string, Bitvector>> M;
  // z3's (model …) wrapper.
  ASSERT_TRUE(parseModelReply("(model\n"
                              "  (define-fun x () (_ BitVec 4) #b1010)\n"
                              "  (define-fun y () (_ BitVec 8) #x2a)\n"
                              ")",
                              M));
  ASSERT_EQ(M.size(), 2u);
  EXPECT_EQ(M[0].first, "x");
  EXPECT_EQ(M[0].second.str(), "1010");
  EXPECT_EQ(M[1].second.str(), "00101010");
  // The bare-list shape (the SMT-LIB standard, cvc5), with the indexed
  // decimal value form.
  ASSERT_TRUE(parseModelReply("((define-fun z () (_ BitVec 6) (_ bv5 6)))",
                              M));
  ASSERT_EQ(M.size(), 1u);
  EXPECT_EQ(M[0].second.str(), "000101");
}

TEST(SmtLibModel, SkipsBoolEntries) {
  // Sessions multiplex through Bool activation constants; their model
  // entries are not bit-vectors and must be skipped, not rejected.
  std::vector<std::pair<std::string, Bitvector>> M;
  ASSERT_TRUE(parseModelReply("((define-fun act-s0 () Bool true)\n"
                              " (define-fun x () (_ BitVec 2) #b01))",
                              M));
  ASSERT_EQ(M.size(), 1u);
  EXPECT_EQ(M[0].first, "x");
}

TEST(SmtLibModel, RejectsMalformedReplies) {
  std::vector<std::pair<std::string, Bitvector>> M;
  std::string Err;
  // Not an s-expression at all.
  EXPECT_FALSE(parseModelReply("sat", M, &Err));
  EXPECT_FALSE(Err.empty());
  // Unbalanced parens.
  EXPECT_FALSE(parseModelReply("((define-fun x () (_ BitVec 2) #b01)", M));
  // A bare atom where an entry belongs.
  EXPECT_FALSE(parseModelReply("(model garbage)", M, &Err));
  // Wrong arity / not define-fun.
  EXPECT_FALSE(parseModelReply("((define-fun x (_ BitVec 2) #b01))", M));
  EXPECT_FALSE(parseModelReply("((definitely-fun x () (_ BitVec 2) #b01))",
                               M));
  // Nonzero arity (a function, not a constant).
  EXPECT_FALSE(parseModelReply(
      "((define-fun f ((a (_ BitVec 2))) (_ BitVec 2) #b01))", M, &Err));
  EXPECT_NE(Err.find("arguments"), std::string::npos);
}

TEST(SmtLibModel, RejectsNegativeAndOverlongLiterals) {
  std::vector<std::pair<std::string, Bitvector>> M;
  std::string Err;
  // Overlong binary literal for the declared sort.
  EXPECT_FALSE(parseModelReply(
      "((define-fun x () (_ BitVec 4) #b10100))", M, &Err));
  EXPECT_NE(Err.find("bits"), std::string::npos);
  // Too-short binary literal.
  EXPECT_FALSE(parseModelReply(
      "((define-fun x () (_ BitVec 4) #b101))", M));
  // Hex on a width not divisible by four.
  EXPECT_FALSE(parseModelReply(
      "((define-fun x () (_ BitVec 6) #x2a))", M));
  // Negative decimal value.
  EXPECT_FALSE(parseModelReply(
      "((define-fun x () (_ BitVec 4) (_ bv-5 4)))", M, &Err));
  // Decimal value that does not fit the width.
  EXPECT_FALSE(parseModelReply(
      "((define-fun x () (_ BitVec 3) (_ bv9 3)))", M));
  // Decimal value whose own width index disagrees with the sort.
  EXPECT_FALSE(parseModelReply(
      "((define-fun x () (_ BitVec 4) (_ bv5 3)))", M));
  // Garbage literal kinds.
  EXPECT_FALSE(parseModelReply(
      "((define-fun x () (_ BitVec 4) #o17))", M));
  EXPECT_FALSE(parseModelReply(
      "((define-fun x () (_ BitVec 4) twelve))", M));
}

TEST(SmtLibModel, DeeplyNestedReplyFailsInsteadOfOverflowing) {
  // A hostile/corrupt reply nested hundreds of thousands deep must fail
  // the parse (→ protocol-error fallback in the backend), not blow the
  // recursion stack.
  std::string Bomb(500000, '(');
  Bomb += std::string(500000, ')');
  std::vector<std::pair<std::string, Bitvector>> M;
  std::string Err;
  EXPECT_FALSE(parseModelReply(Bomb, M, &Err));
}

TEST(SmtLibModel, BvLiteralEdgeCases) {
  Bitvector BV;
  ASSERT_TRUE(parseBvLiteral("#b0", BV));
  EXPECT_EQ(BV.str(), "0");
  ASSERT_TRUE(parseBvLiteral("#xFf", BV));
  EXPECT_EQ(BV.str(), "11111111");
  EXPECT_FALSE(parseBvLiteral("#b", BV));
  EXPECT_FALSE(parseBvLiteral("#b012", BV));
  EXPECT_FALSE(parseBvLiteral("#xg", BV));
  EXPECT_FALSE(parseBvLiteral("1010", BV));
  EXPECT_FALSE(parseBvLiteral("", BV));
}

TEST(SmtLibModel, RoundTripCounterexampleRefalsifiesFormula) {
  // The full export/import pin: print a validity query, let a "solver"
  // (the in-repo backend standing in for the mock) produce the model,
  // echo it in SMT-LIB syntax, parse it back, desanitize the names — and
  // the reconstructed counterexample must re-falsify the original
  // formula. This is the exact loop SmtLibSolver runs over its pipe.
  BvTermRef X = var("x", 4);
  BvTermRef Y = var("y<odd", 4); // Needs sanitization both ways.
  BvFormulaRef G = BvFormula::mkEq(X, Y); // Not valid.
  BvFormulaRef Query = BvFormula::mkNot(G);
  // The printed script must carry the sanitized name.
  std::string Script = toSmtLibScript(Query, /*GetModel=*/true);
  EXPECT_NE(Script.find(sanitizeSymbol("y<odd")), std::string::npos);
  EXPECT_NE(Script.find("(get-model)"), std::string::npos);
  // "Solver side": solve the query and typeset the model as a reply.
  BitBlastSolver S;
  Model SolverModel;
  ASSERT_EQ(S.checkSat(Query, &SolverModel), SatResult::Sat);
  std::string Reply = "(model\n";
  for (const auto &[Name, Value] : SolverModel)
    Reply += "  (define-fun " + sanitizeSymbol(Name) + " () (_ BitVec " +
             std::to_string(Value.size()) + ") #b" + Value.str() + ")\n";
  Reply += ")";
  // "Checker side": parse, desanitize, and re-evaluate.
  std::vector<std::pair<std::string, Bitvector>> Parsed;
  ASSERT_TRUE(parseModelReply(Reply, Parsed));
  Model Counterexample;
  for (const auto &[Sym, Value] : Parsed)
    Counterexample.emplace_back(desanitizeSymbol(Sym), Value);
  ASSERT_EQ(Counterexample.size(), 2u);
  EXPECT_TRUE(evalFormula(Query, Counterexample));
  EXPECT_FALSE(evalFormula(G, Counterexample)); // Re-falsifies ∀x⃗.G.
}

} // namespace
