//===- P4aTest.cpp - P4 automaton model tests ------------------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the parser model of §3: expression/operation/transition semantics
/// (Definitions 3.1–3.3), the configuration dynamics (Definitions
/// 3.4–3.6), the typing judgements, the textual front-end (round trip),
/// and the concrete-language behaviour of the Figure 1 parsers.
///
//===----------------------------------------------------------------------===//

#include "frontend/Elaborate.h"
#include "frontend/Generate.h"
#include "frontend/Text.h"
#include "p4a/Concrete.h"
#include "p4a/Fingerprint.h"
#include "p4a/Parser.h"
#include "p4a/Semantics.h"
#include "p4a/Typing.h"
#include "parsers/CaseStudies.h"

#include <gtest/gtest.h>

using namespace leapfrog;
using namespace leapfrog::p4a;

namespace {

Bitvector bv(const std::string &S) { return Bitvector::fromString(S); }

//===----------------------------------------------------------------------===//
// Expression semantics (Definition 3.1)
//===----------------------------------------------------------------------===//

class ExprFixture : public ::testing::Test {
protected:
  void SetUp() override {
    A = Aut.addHeader("a", 4);
    B = Aut.addHeader("b", 2);
    S = Store(Aut);
    S.set(A, bv("1010"));
    S.set(B, bv("11"));
  }
  Automaton Aut;
  HeaderId A = 0, B = 0;
  Store S;
};

TEST_F(ExprFixture, HeaderReadsStore) {
  EXPECT_EQ(evalExpr(Aut, S, Expr::mkHeader(A)), bv("1010"));
}

TEST_F(ExprFixture, LiteralIsItself) {
  EXPECT_EQ(evalExpr(Aut, S, Expr::mkLiteral(bv("001"))), bv("001"));
}

TEST_F(ExprFixture, SliceClampsLikeThePaper) {
  auto H = Expr::mkHeader(A);
  EXPECT_EQ(evalExpr(Aut, S, Expr::mkSlice(H, 1, 2)), bv("01"));
  EXPECT_EQ(evalExpr(Aut, S, Expr::mkSlice(H, 2, 99)), bv("10"));
  EXPECT_EQ(evalExpr(Aut, S, Expr::mkSlice(H, 99, 99)), bv("0"));
}

TEST_F(ExprFixture, ConcatJoins) {
  auto E = Expr::mkConcat(Expr::mkHeader(B), Expr::mkHeader(A));
  EXPECT_EQ(evalExpr(Aut, S, E), bv("111010"));
}

TEST_F(ExprFixture, WidthMatchesEval) {
  auto E = Expr::mkConcat(Expr::mkSlice(Expr::mkHeader(A), 1, 3),
                          Expr::mkLiteral(bv("0")));
  auto W = exprWidth(Aut, E);
  ASSERT_TRUE(W.has_value());
  EXPECT_EQ(*W, evalExpr(Aut, S, E).size());
}

//===----------------------------------------------------------------------===//
// Operation semantics (Definition 3.2)
//===----------------------------------------------------------------------===//

TEST_F(ExprFixture, ExtractSplitsInput) {
  std::vector<Op> Ops{Op::extract(B), Op::extract(A)};
  Store S2 = evalOps(Aut, Ops, S, bv("011100"));
  EXPECT_EQ(S2.get(B), bv("01"));
  EXPECT_EQ(S2.get(A), bv("1100"));
}

TEST_F(ExprFixture, AssignSeesEarlierExtracts) {
  // extract(b); a := b ++ b — the assignment reads the just-extracted b.
  std::vector<Op> Ops{
      Op::extract(B),
      Op::assign(A, Expr::mkConcat(Expr::mkHeader(B), Expr::mkHeader(B)))};
  Store S2 = evalOps(Aut, Ops, S, bv("01"));
  EXPECT_EQ(S2.get(A), bv("0101"));
}

TEST_F(ExprFixture, AssignThenExtractOverwrites) {
  std::vector<Op> Ops{Op::assign(B, Expr::mkLiteral(bv("00"))),
                      Op::extract(B)};
  Store S2 = evalOps(Aut, Ops, S, bv("11"));
  EXPECT_EQ(S2.get(B), bv("11"));
}

//===----------------------------------------------------------------------===//
// Transition semantics (Definition 3.3)
//===----------------------------------------------------------------------===//

TEST_F(ExprFixture, SelectFirstMatchWins) {
  StateId Q1 = Aut.declareState("q1");
  StateId Q2 = Aut.declareState("q2");
  std::vector<SelectCase> Cases;
  Cases.push_back({{Pattern::exact(bv("10"))}, StateRef::normal(Q1)});
  Cases.push_back({{Pattern::wildcard()}, StateRef::normal(Q2)});
  Transition Tz = Transition::mkSelect(
      {Expr::mkSlice(Expr::mkHeader(A), 0, 1)}, Cases);
  // a = 1010, slice [0:1] = "10": first case matches.
  EXPECT_EQ(evalTransition(Aut, Tz, S), StateRef::normal(Q1));
  S.set(A, bv("0110"));
  EXPECT_EQ(evalTransition(Aut, Tz, S), StateRef::normal(Q2));
}

TEST_F(ExprFixture, SelectFallsThroughToReject) {
  Transition Tz = Transition::mkSelect(
      {Expr::mkHeader(B)},
      {{{Pattern::exact(bv("00"))}, StateRef::accept()}});
  // b = 11: no case matches.
  EXPECT_EQ(evalTransition(Aut, Tz, S), StateRef::reject());
}

TEST_F(ExprFixture, SelectTupleNeedsAllPatterns) {
  Transition Tz = Transition::mkSelect(
      {Expr::mkHeader(B), Expr::mkSlice(Expr::mkHeader(A), 0, 0)},
      {{{Pattern::exact(bv("11")), Pattern::exact(bv("1"))},
        StateRef::accept()}});
  EXPECT_EQ(evalTransition(Aut, Tz, S), StateRef::accept());
  S.set(A, bv("0010"));
  EXPECT_EQ(evalTransition(Aut, Tz, S), StateRef::reject());
}

//===----------------------------------------------------------------------===//
// Configuration dynamics (Definitions 3.4–3.6)
//===----------------------------------------------------------------------===//

TEST(Dynamics, BuffersUntilBlockFills) {
  Automaton Aut = parseAutomatonOrDie(R"(
    state s { extract(h, 3); goto accept }
  )");
  Config C = initialConfig(StateRef::normal(0), Store(Aut));
  C = step(Aut, C, true);
  EXPECT_TRUE(C.Q.isNormal());
  EXPECT_EQ(C.Buf.size(), 1u);
  C = step(Aut, C, false);
  EXPECT_EQ(C.Buf.size(), 2u);
  // The third bit fills ||op|| = 3: the block runs and accept is reached
  // with an empty buffer.
  C = step(Aut, C, true);
  EXPECT_TRUE(C.Q.isAccept());
  EXPECT_TRUE(C.Buf.empty());
  EXPECT_EQ(C.S.get(0), bv("101"));
}

TEST(Dynamics, AcceptStepsToReject) {
  // "Accepting states should not parse any further input."
  Automaton Aut = parseAutomatonOrDie(R"(
    state s { extract(h, 1); goto accept }
  )");
  Config C = initialConfig(StateRef::accept(), Store(Aut));
  EXPECT_TRUE(C.accepting());
  C = step(Aut, C, false);
  EXPECT_TRUE(C.Q.isReject());
  C = step(Aut, C, true);
  EXPECT_TRUE(C.Q.isReject());
}

TEST(Dynamics, AcceptanceRequiresExactLength) {
  Automaton Aut = parseAutomatonOrDie(R"(
    state s { extract(h, 2); goto accept }
  )");
  Store S(Aut);
  StateRef Q = StateRef::normal(0);
  EXPECT_FALSE(accepts(Aut, Q, S, bv("1")));
  EXPECT_TRUE(accepts(Aut, Q, S, bv("10")));
  EXPECT_FALSE(accepts(Aut, Q, S, bv("101")));
}

TEST(Dynamics, Figure1ReferenceLanguage) {
  // L(q1) = B0* B1 U64 where B0/B1 are 32-bit labels with bit 23 clear/set
  // — checked here on representative packets.
  Automaton Aut = parsers::mplsReference();
  Store S(Aut);
  StateRef Q = StateRef::normal(*Aut.findState("q1"));

  auto Label = [](bool Bottom) {
    Bitvector L(32);
    L.setBit(23, Bottom);
    return L;
  };
  Bitvector Udp(64);

  EXPECT_TRUE(accepts(Aut, Q, S, Label(true).concat(Udp)));
  EXPECT_TRUE(
      accepts(Aut, Q, S, Label(false).concat(Label(true)).concat(Udp)));
  // Missing UDP payload.
  EXPECT_FALSE(accepts(Aut, Q, S, Label(true)));
  // No bottom-of-stack marker.
  EXPECT_FALSE(accepts(Aut, Q, S, Label(false).concat(Udp)));
  // Wrong UDP length.
  EXPECT_FALSE(accepts(Aut, Q, S, Label(true).concat(Bitvector(63))));
}

TEST(Dynamics, Figure1VectorizedMarshalsUdp) {
  // In q5 the overshot label plus the next 32 bits land in udp.
  Automaton Aut = parsers::mplsVectorized();
  Store S(Aut);
  StateRef Q = StateRef::normal(*Aut.findState("q3"));

  Bitvector First(32);
  First.setBit(23, true); // Bottom-of-stack in the first label.
  Bitvector Second = Bitvector::fromUint(0xdeadbeef, 32);
  Bitvector Tail = Bitvector::fromUint(0xcafef00d, 32);
  Config C = multiStep(Aut, initialConfig(Q, S),
                       First.concat(Second).concat(Tail));
  ASSERT_TRUE(C.accepting());
  EXPECT_EQ(C.S.get(*Aut.findHeader("udp")), Second.concat(Tail));
}

//===----------------------------------------------------------------------===//
// Typing (⊢A)
//===----------------------------------------------------------------------===//

TEST(Typing, AcceptsTheCaseStudies) {
  EXPECT_TRUE(isWellTyped(parsers::mplsReference()));
  EXPECT_TRUE(isWellTyped(parsers::mplsVectorized()));
  EXPECT_TRUE(isWellTyped(parsers::vlanParser()));
  EXPECT_TRUE(isWellTyped(parsers::ipOptionsGeneric(2)));
  EXPECT_TRUE(isWellTyped(parsers::ipOptionsTimestamp(2)));
  EXPECT_TRUE(isWellTyped(parsers::gibbEdge()));
  EXPECT_TRUE(isWellTyped(parsers::gibbServiceProvider()));
  EXPECT_TRUE(isWellTyped(parsers::gibbDatacenter()));
  EXPECT_TRUE(isWellTyped(parsers::gibbEnterprise()));
}

TEST(Typing, RejectsZeroExtractState) {
  // A state with no extract cannot actuate its transition (footnote 4).
  Automaton Aut;
  HeaderId H = Aut.addHeader("h", 2);
  StateId Q = Aut.declareState("q");
  Aut.setState(Q, {Op::assign(H, Expr::mkLiteral(bv("00")))},
               Transition::mkGoto(StateRef::accept()));
  EXPECT_FALSE(isWellTyped(Aut));
}

TEST(Typing, RejectsWidthMismatchedAssignment) {
  Automaton Aut;
  HeaderId H = Aut.addHeader("h", 3);
  StateId Q = Aut.declareState("q");
  Aut.setState(Q,
               {Op::extract(H), Op::assign(H, Expr::mkLiteral(bv("1")))},
               Transition::mkGoto(StateRef::accept()));
  EXPECT_FALSE(isWellTyped(Aut));
}

TEST(Typing, RejectsWidthMismatchedPattern) {
  Automaton Aut;
  HeaderId H = Aut.addHeader("h", 3);
  StateId Q = Aut.declareState("q");
  Aut.setState(Q, {Op::extract(H)},
               Transition::mkSelect({Expr::mkHeader(H)},
                                    {{{Pattern::exact(bv("1"))},
                                      StateRef::accept()}}));
  EXPECT_FALSE(isWellTyped(Aut));
}

TEST(Typing, RejectsSelectArityMismatch) {
  Automaton Aut;
  HeaderId H = Aut.addHeader("h", 1);
  StateId Q = Aut.declareState("q");
  Aut.setState(
      Q, {Op::extract(H)},
      Transition::mkSelect({Expr::mkHeader(H)},
                           {{{Pattern::exact(bv("1")),
                              Pattern::exact(bv("0"))},
                             StateRef::accept()}}));
  EXPECT_FALSE(isWellTyped(Aut));
}

//===----------------------------------------------------------------------===//
// Textual front-end
//===----------------------------------------------------------------------===//

TEST(Parser, RoundTripsThroughPrint) {
  Automaton A = parsers::mplsVectorized();
  ParseResult Re = parseAutomaton(A.print());
  ASSERT_TRUE(Re.ok()) << (Re.Errors.empty() ? "" : Re.Errors[0]);
  // Same shape...
  ASSERT_EQ(Re.Aut.numStates(), A.numStates());
  ASSERT_EQ(Re.Aut.numHeaders(), A.numHeaders());
  // ...and the same language on sample packets.
  Store S1(A), S2(Re.Aut);
  for (uint64_t Raw = 0; Raw < 16; ++Raw) {
    Bitvector First = Bitvector::fromUint(Raw, 32);
    Bitvector Pkt = First.concat(Bitvector::fromUint(~Raw, 32))
                        .concat(Bitvector(64));
    EXPECT_EQ(
        accepts(A, StateRef::normal(0), S1, Pkt),
        accepts(Re.Aut, StateRef::normal(0), S2, Pkt));
  }
}

TEST(Parser, HexAndBinaryLiterals) {
  Automaton A = parseAutomatonOrDie(R"(
    state s {
      extract(h, 16);
      select(h[0:15]) {
        0x86dd => accept
        0b1000011000000000 => reject
        _ => s
      }
    }
  )");
  const State &St = A.state(0);
  ASSERT_FALSE(St.Tz.IsGoto);
  ASSERT_EQ(St.Tz.Cases.size(), 3u);
  EXPECT_EQ(St.Tz.Cases[0].Pats[0].Exact->toUint(), 0x86ddu);
  EXPECT_EQ(St.Tz.Cases[1].Pats[0].Exact->toUint(), 0x8600u);
  EXPECT_TRUE(St.Tz.Cases[2].Pats[0].isWildcard());
}

TEST(Parser, ReportsUnknownHeaderInExpression) {
  ParseResult R = parseAutomaton(R"(
    state s { extract(a, 2); b := nope; goto accept }
  )");
  EXPECT_FALSE(R.ok());
}

TEST(Parser, ReportsMissingTransition) {
  ParseResult R = parseAutomaton("state s { extract(a, 2); }");
  EXPECT_FALSE(R.ok());
}

TEST(Parser, ReportsConflictingHeaderSizes) {
  ParseResult R = parseAutomaton(R"(
    state s { extract(a, 2); goto t }
    state t { extract(a, 3); goto accept }
  )");
  EXPECT_FALSE(R.ok());
}

//===----------------------------------------------------------------------===//
// Structural metrics used by the Table 2 harness
//===----------------------------------------------------------------------===//

TEST(Metrics, Figure1Counts) {
  Automaton L = parsers::mplsReference();
  EXPECT_EQ(L.numStates(), 2u);
  EXPECT_EQ(L.totalHeaderBits(), 96u); // mpls 32 + udp 64.
  EXPECT_EQ(L.branchedBits(), 1u);     // select on mpls[23:23].
  EXPECT_EQ(L.opBits(*L.findState("q1")), 32u);
  EXPECT_EQ(L.opBits(*L.findState("q2")), 64u);
}

TEST(Metrics, SuccessorsIncludeFallThrough) {
  Automaton L = parsers::mplsReference();
  auto Succs = L.successors(*L.findState("q1"));
  // q1, q2, and the implicit fall-through reject.
  EXPECT_EQ(Succs.size(), 3u);
}

TEST(Metrics, CatchAllSuppressesFallThrough) {
  Automaton A = parseAutomatonOrDie(R"(
    state s { extract(h, 1); select(h[0:0]) { 0 => accept  _ => s } }
  )");
  auto Succs = A.successors(0);
  ASSERT_EQ(Succs.size(), 2u); // accept and s; no reject.
  for (StateRef R : Succs)
    EXPECT_FALSE(R.isReject());
}

//===----------------------------------------------------------------------===//
// Concrete oracle self-checks
//===----------------------------------------------------------------------===//

TEST(Concrete, AcceptedWordsMatchAccepts) {
  Automaton A = parseAutomatonOrDie(R"(
    state s { extract(h, 2); select(h[0:0]) { 1 => accept  0 => s } }
  )");
  Store S(A);
  auto Words = p4a::concrete::acceptedWords(A, StateRef::normal(0), S, 6);
  // Accepted words: 1x, 0x1y, 0x0y1z... of even length with last pair
  // starting in 1.
  EXPECT_FALSE(Words.empty());
  for (const Bitvector &W : Words)
    EXPECT_TRUE(accepts(A, StateRef::normal(0), S, W)) << W.str();
  // Count: lengths 2,4,6 contribute 2, 4, 8 words.
  EXPECT_EQ(Words.size(), 2u + 4u + 8u);
}

//===----------------------------------------------------------------------===//
// Canonical fingerprints (the service cache key; p4a/Fingerprint.h)
//===----------------------------------------------------------------------===//

// Elaborates a surface program and returns (automaton, rooted entry).
std::pair<Automaton, StateRef>
elaborated(const frontend::SurfaceProgram &P) {
  frontend::ElaborationResult E = frontend::elaborate(P);
  EXPECT_TRUE(E.Errors.empty())
      << (E.Errors.empty() ? "" : E.Errors.front());
  auto Id = E.Aut.findState(E.Entry);
  EXPECT_TRUE(Id.has_value()) << E.Entry;
  return {std::move(E.Aut), StateRef::normal(Id.value_or(0))};
}

TEST(Fingerprint, StableAcrossPrintParseRoundTrips) {
  // The key property the cache depends on: the same parser resubmitted
  // as text — printed, reparsed, re-elaborated, any number of times —
  // keys to the same fingerprint.
  const Automaton Cases[] = {parsers::mplsReference(),
                             parsers::mplsVectorized(),
                             parsers::vlanParser(), parsers::gibbEdge()};
  for (const Automaton &A : Cases) {
    ASSERT_GT(A.numStates(), 0u);
    StateRef Root = StateRef::normal(0);
    Fingerprint Orig = fingerprint(A, Root);

    frontend::SurfaceProgram P =
        frontend::surfaceFromP4a(A, A.state(0).Name);
    auto First = elaborated(frontend::parseSurfaceOrDie(
        frontend::printSurface(P)));
    EXPECT_EQ(canonicalForm(First.first, First.second),
              canonicalForm(A, Root));
    EXPECT_EQ(fingerprint(First.first, First.second), Orig);

    // And once more around the loop.
    auto Second = elaborated(frontend::parseSurfaceOrDie(
        frontend::printSurface(frontend::surfaceFromP4a(
            First.first, First.first.state(First.second.Id).Name))));
    EXPECT_EQ(fingerprint(Second.first, Second.second), Orig);
  }
}

TEST(Fingerprint, InsensitiveToStateAndHeaderNumbering) {
  // renameStates() twins elaborate to automata whose states (and, in
  // elaboration order, headers) are numbered differently — yet they are
  // the same parser, so they must key identically.
  for (uint64_t Seed = 1; Seed <= 24; ++Seed) {
    frontend::SurfaceProgram P = frontend::generateProgram(Seed);
    frontend::SurfaceProgram Twin = frontend::renameStates(P, "_renamed");
    auto A = elaborated(P);
    auto B = elaborated(Twin);
    EXPECT_EQ(canonicalForm(A.first, A.second),
              canonicalForm(B.first, B.second))
        << "seed " << Seed;
    EXPECT_EQ(fingerprint(A.first, A.second),
              fingerprint(B.first, B.second))
        << "seed " << Seed;
    EXPECT_EQ(fingerprint(A.first), fingerprint(B.first))
        << "seed " << Seed;
  }
}

TEST(Fingerprint, SensitiveToEverySemanticMutation) {
  // Every mutation kind mutateProgram() can produce (flipped pattern
  // bits, swapped/dropped cases, retargeted transitions, shifted
  // slices) must move the fingerprint whenever it moves the canonical
  // form — a fingerprint that missed a mutation would let the cache
  // serve a stale verdict for an edited parser.
  size_t Changed = 0, Checked = 0;
  for (uint64_t Seed = 1; Seed <= 24; ++Seed) {
    frontend::SurfaceProgram P = frontend::generateProgram(Seed);
    auto Base = elaborated(P);
    std::string BaseForm = canonicalForm(Base.first, Base.second);
    for (uint64_t M = 1; M <= 8; ++M) {
      auto Mut = elaborated(frontend::mutateProgram(P, Seed * 1000 + M));
      std::string MutForm = canonicalForm(Mut.first, Mut.second);
      ++Checked;
      if (MutForm == BaseForm) {
        // The mutation landed in an unreachable fragment (or cancelled
        // out): equal forms must mean equal fingerprints.
        EXPECT_EQ(fingerprint(Mut.first, Mut.second),
                  fingerprint(Base.first, Base.second));
      } else {
        ++Changed;
        EXPECT_NE(fingerprint(Mut.first, Mut.second),
                  fingerprint(Base.first, Base.second))
            << "seed " << Seed << " mutation " << M
            << ": canonical forms differ but fingerprints collide";
      }
    }
  }
  // The sweep must actually have exercised the sensitive direction.
  EXPECT_GT(Changed, Checked / 2);
}

TEST(Fingerprint, TerminalEntriesAndUnreachableStates) {
  // Terminal roots have canonical forms too (the service accepts
  // degenerate parsers), and unreachable states never affect the key.
  Automaton A = parseAutomatonOrDie(R"(
    state s { extract(h, 1); goto accept }
    state dead { extract(h, 1); goto reject }
  )");
  Automaton B = parseAutomatonOrDie(R"(
    state s { extract(h, 1); goto accept }
  )");
  EXPECT_EQ(fingerprint(A, StateRef::normal(*A.findState("s"))),
            fingerprint(B, StateRef::normal(0)));
  EXPECT_EQ(fingerprint(A, StateRef::accept()),
            fingerprint(B, StateRef::accept()));
  EXPECT_NE(fingerprint(A, StateRef::accept()),
            fingerprint(A, StateRef::reject()));
}

TEST(Fingerprint, CombineIsOrderSensitive) {
  Fingerprint L = fingerprintBytes("left parser");
  Fingerprint R = fingerprintBytes("right parser");
  EXPECT_NE(combineFingerprints(L, R), combineFingerprints(R, L));
  EXPECT_NE(combineFingerprints(L, R), L);
  EXPECT_NE(combineFingerprints(L, R), R);
}

TEST(Fingerprint, BytesAndHex) {
  Fingerprint A = fingerprintBytes("abc");
  Fingerprint B = fingerprintBytes("abd");
  Fingerprint Empty = fingerprintBytes("");
  EXPECT_NE(A, B);
  EXPECT_NE(A, Empty);
  EXPECT_EQ(A, fingerprintBytes("abc"));
  EXPECT_EQ(A.hex().size(), 32u);
  EXPECT_EQ(A.hex().find_first_not_of("0123456789abcdef"),
            std::string::npos);
  EXPECT_NE(A.hex(), B.hex());
}

TEST(Concrete, ReachableConfigCountIsFinite) {
  Automaton A = parseAutomatonOrDie(R"(
    state s { extract(h, 2); select(h[0:0]) { 1 => accept  0 => s } }
  )");
  size_t N = p4a::concrete::reachableConfigCount(A, StateRef::normal(0),
                                                 Store(A));
  // s with buffers ε/0/1 × store values reached, plus accept/reject sinks.
  EXPECT_GT(N, 3u);
  EXPECT_LT(N, 40u);
}

} // namespace
