#!/bin/sh
# A deliberately misbehaving "SMT solver" for the process-lifecycle tests
# in tests/ExtSolverTest.cpp. The first argument selects the failure mode;
# SmtLibSolver must survive every one of them by falling back to the
# in-repo bit-blaster without changing any answer.
#
#   eof          exit immediately (binary "crashes" on startup)
#   hang         accept stdin but never reply (reply-timeout path)
#   garbage      reply nonsense to check-sat (protocol-error path)
#   error        reply (error "...") to check-sat
#   always-sat   claim sat for everything, with an empty model — a *lying*
#                solver, which only the crosscheck backend can expose
#   always-unsat claim unsat for everything — lies in the other direction
#   slow         sleep before every check-sat reply, then claim unsat — a
#                leg that loses every portfolio race but never errors
#
# The script speaks just enough protocol for the handshake: every command
# that is not a check-sat/get-model/exit draws "success" (matching
# :print-success true, which SmtLibSolver always sets first).
#
# When LEAPFROG_MOCK_PIDFILE is set, the script appends its own PID to
# that file on startup — the portfolio lifecycle tests read it back to
# assert that every spawned leg is really dead (no zombies) after the
# race is over.

mode="$1"

if [ -n "$LEAPFROG_MOCK_PIDFILE" ]; then
  echo $$ >> "$LEAPFROG_MOCK_PIDFILE"
fi

case "$mode" in
  eof)  exit 0 ;;
  hang) exec sleep 3600 ;;
esac

while IFS= read -r line; do
  case "$line" in
    "(check-sat"*)
      case "$mode" in
        always-sat)   echo "sat" ;;
        always-unsat) echo "unsat" ;;
        slow)         sleep "${LEAPFROG_MOCK_SLOW_SECS:-2}"; echo "unsat" ;;
        error)        echo "(error \"mock solver refuses\")" ;;
        *)            echo "flurble grumble" ;;
      esac ;;
    "(get-model)"*)
      echo "(model)" ;;
    "(exit)"*)
      exit 0 ;;
    *)
      echo "success" ;;
  esac
done
exit 0
