//===- ExtSolverTest.cpp - External SMT-LIB backend tests -----------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the out-of-process SMT-LIB2 backend (smt/SmtLibSolver.h) end to
/// end without external dependencies, on two instruments:
///
///  - `leapfrog-smtlib-shim` (tools/smtlib-shim.cpp), an SMT-LIB REPL
///    answered by the in-repo bit-blaster — located through the
///    LEAPFROG_SMTLIB_SHIM environment variable that CMake sets on this
///    test. With it, the subprocess pipeline (pipes, handshake,
///    incremental sessions, get-model parse-back, crosscheck) runs for
///    real in tier-1.
///
///  - `tests/mock_solver.sh` (LEAPFROG_MOCK_SOLVER), a deliberately
///    misbehaving solver: instant EOF, hangs, garbage replies, and
///    *lying* sat/unsat answers. The backend must degrade gracefully to
///    the in-repo solver on all of them — answers never change — and the
///    crosscheck backend must expose the liars.
///
/// The ExternalSolver* suite at the bottom runs only when a real solver
/// binary is present (LEAPFROG_EXT_SOLVER, default "z3 -in"): it skips
/// cleanly when the binary is missing, unless LEAPFROG_REQUIRE_EXT is set
/// (the CI smt-external job sets it so a broken z3 install cannot pass
/// silently).
///
//===----------------------------------------------------------------------===//

#include "core/Checker.h"
#include "parsers/CaseStudies.h"
#include "smt/Portfolio.h"
#include "smt/SmtLibSolver.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <dirent.h>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace leapfrog;
using namespace leapfrog::smt;

namespace {

BvTermRef var(const std::string &N, size_t W) { return BvTerm::mkVar(N, W); }
BvTermRef lit(const std::string &Bits) {
  return BvTerm::mkConst(Bitvector::fromString(Bits));
}

/// The shim command — probed with one trivial query so a wrong path or
/// a non-executable file skips the suite (with a loud reason) instead of
/// failing every fallback-count assertion. "" = skip.
std::string shimCommand() {
  const char *Env = std::getenv("LEAPFROG_SMTLIB_SHIM");
  if (!Env || !*Env)
    return "";
  static std::string Probed = [&]() -> std::string {
    SmtLibConfig C;
    C.Argv = SmtLibSolver::splitCommand(Env);
    C.QueryTimeoutMs = 20000;
    C.WarnOnFallback = false;
    SmtLibSolver Probe(C);
    BvTermRef X = BvTerm::mkVar("probe", 2);
    (void)Probe.checkSat(BvFormula::mkEq(X, X), nullptr);
    return Probe.extStats().ExternalQueries == 1 ? std::string(Env)
                                                 : std::string();
  }();
  return Probed;
}

/// The mock-solver command for failure mode \p Mode.
std::string mockCommand(const std::string &Mode) {
  const char *Env = std::getenv("LEAPFROG_MOCK_SOLVER");
  if (!Env)
    return "";
  return std::string("sh ") + Env + " " + Mode;
}

SmtLibConfig configFor(const std::string &Cmd, int TimeoutMs = 20000) {
  SmtLibConfig C;
  C.Argv = SmtLibSolver::splitCommand(Cmd);
  C.QueryTimeoutMs = TimeoutMs;
  C.WarnOnFallback = false; // Tests provoke fallbacks on purpose.
  return C;
}

#define REQUIRE_SHIM(ShimVar)                                              \
  std::string ShimVar = shimCommand();                                     \
  if (ShimVar.empty())                                                     \
    GTEST_SKIP() << "LEAPFROG_SMTLIB_SHIM unset or not runnable (run "     \
                    "under ctest after a full build)";

#define REQUIRE_MOCK(MockVar, Mode)                                        \
  std::string MockVar = mockCommand(Mode);                                 \
  if (MockVar.empty())                                                     \
    GTEST_SKIP() << "LEAPFROG_MOCK_SOLVER not set (run under ctest)";

/// Xorshift RNG + random formula generator over x (3 bits) and y (2
/// bits) — the same distribution SmtTest's blaster fuzz uses, so the
/// external pipeline is exercised on formulas known to stress the
/// printer (constant folding, nested extracts, straddling concats).
struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed * 0x9e3779b97f4a7c15ull + 1) {}
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
  size_t below(size_t N) { return size_t(next() % N); }
};

BvTermRef randomTerm(Rng &R, int Depth) {
  if (Depth == 0 || R.below(3) == 0) {
    switch (R.below(3)) {
    case 0:
      return var("x", 3);
    case 1:
      return var("y", 2);
    default: {
      Bitvector BV;
      size_t Len = 1 + R.below(3);
      for (size_t I = 0; I < Len; ++I)
        BV.pushBack(R.below(2));
      return BvTerm::mkConst(BV);
    }
    }
  }
  if (R.below(2) == 0)
    return BvTerm::mkConcat(randomTerm(R, Depth - 1),
                            randomTerm(R, Depth - 1));
  BvTermRef Op = randomTerm(R, Depth - 1);
  if (Op->width() == 0)
    return Op;
  size_t Lo = R.below(Op->width());
  size_t Hi = Lo + R.below(Op->width() - Lo);
  return BvTerm::mkExtract(Op, Lo, Hi);
}

BvFormulaRef randomFormula(Rng &R, int Depth) {
  if (Depth == 0 || R.below(4) == 0) {
    BvTermRef A = randomTerm(R, 2);
    Bitvector BV;
    for (size_t I = 0; I < A->width(); ++I)
      BV.pushBack(R.below(2));
    return BvFormula::mkEq(A, BvTerm::mkConst(BV));
  }
  switch (R.below(4)) {
  case 0:
    return BvFormula::mkNot(randomFormula(R, Depth - 1));
  case 1:
    return BvFormula::mkAnd(randomFormula(R, Depth - 1),
                            randomFormula(R, Depth - 1));
  case 2:
    return BvFormula::mkOr(randomFormula(R, Depth - 1),
                           randomFormula(R, Depth - 1));
  default:
    return BvFormula::mkImplies(randomFormula(R, Depth - 1),
                                randomFormula(R, Depth - 1));
  }
}

/// The fast registry studies (sub-second rows of Table 2) the checker
/// differentials run on; the big Applicability self-comparisons belong to
/// the z3-gated registry sweep, budget-capped.
std::vector<parsers::CaseStudy> smallStudies() {
  std::vector<parsers::CaseStudy> Out;
  for (parsers::CaseStudy &S : parsers::allCaseStudies()) {
    if (S.Name == "State Rearrangement" ||
        S.Name == "Header initialization" || S.Name == "Speculative loop" ||
        S.Name == "Relational verification" || S.Name == "External filtering")
      Out.push_back(std::move(S));
  }
  return Out;
}

/// Runs one study through the checker on \p Solver.
core::CheckResult runStudy(const parsers::CaseStudy &S,
                           smt::SmtSolver &Solver, size_t Jobs = 1) {
  core::CheckOptions O;
  O.Solver = &Solver;
  O.Jobs = Jobs;
  return core::checkLanguageEquivalence(S.Left, S.LeftStart, S.Right,
                                        S.RightStart, O);
}

void expectSameDecisions(const core::CheckResult &A,
                         const core::CheckResult &B,
                         const std::string &Study) {
  EXPECT_EQ(A.V, B.V) << Study;
  EXPECT_EQ(A.Stats.Iterations, B.Stats.Iterations) << Study;
  EXPECT_EQ(A.Stats.Skips, B.Stats.Skips) << Study;
  EXPECT_EQ(A.Stats.Extends, B.Stats.Extends) << Study;
  EXPECT_EQ(A.Stats.FinalConjuncts, B.Stats.FinalConjuncts) << Study;
}

//===----------------------------------------------------------------------===//
// Backend factory
//===----------------------------------------------------------------------===//

TEST(BackendFactory, ParsesSpecs) {
  std::string Err;
  EXPECT_NE(createSolverBackend("bitblast", &Err), nullptr);
  EXPECT_NE(createSolverBackend("", &Err), nullptr);
  EXPECT_NE(createSolverBackend("smtlib:z3 -in", &Err), nullptr);
  EXPECT_NE(createSolverBackend("crosscheck", &Err), nullptr);
  EXPECT_NE(createSolverBackend("crosscheck:cvc5 --incremental", &Err),
            nullptr);
  EXPECT_EQ(createSolverBackend("smtlib:", &Err), nullptr);
  EXPECT_FALSE(Err.empty());
  EXPECT_EQ(createSolverBackend("crosscheck:", &Err), nullptr);
  EXPECT_EQ(createSolverBackend("qbf:magic", &Err), nullptr);
}

TEST(BackendFactory, SplitCommand) {
  auto Argv = SmtLibSolver::splitCommand("  z3   -in\t-smt2 ");
  ASSERT_EQ(Argv.size(), 3u);
  EXPECT_EQ(Argv[0], "z3");
  EXPECT_EQ(Argv[1], "-in");
  EXPECT_EQ(Argv[2], "-smt2");
  EXPECT_TRUE(SmtLibSolver::splitCommand("").empty());
}

TEST(BackendFactory, CheckOptionsBackendSpecIsResolved) {
  // The checker resolves CheckOptions::Backend through the factory; an
  // invalid spec degrades to bitblast (with a warning) rather than
  // changing any verdict.
  auto Studies = smallStudies();
  ASSERT_FALSE(Studies.empty());
  const parsers::CaseStudy &S = Studies.front();
  core::CheckOptions O;
  O.Backend = "bitblast";
  core::CheckResult ViaSpec = core::checkLanguageEquivalence(
      S.Left, S.LeftStart, S.Right, S.RightStart, O);
  smt::BitBlastSolver Direct;
  core::CheckResult ViaInstance = runStudy(S, Direct);
  expectSameDecisions(ViaSpec, ViaInstance, S.Name);
}

//===----------------------------------------------------------------------===//
// Shim-backed: the real pipeline, no external dependency
//===----------------------------------------------------------------------===//

TEST(ShimBackend, OneShotAgreesWithBitBlast) {
  REQUIRE_SHIM(Shim);
  SmtLibSolver Plain(configFor(Shim));
  BitBlastSolver Ref;
  for (int Seed = 0; Seed < 60; ++Seed) {
    Rng R{uint64_t(Seed) + 99};
    BvFormulaRef F = randomFormula(R, 3);
    Model M;
    SatResult ExtR = Plain.checkSat(F, &M);
    SatResult RefR = Ref.checkSat(F, nullptr);
    ASSERT_EQ(ExtR, RefR) << "seed " << Seed << ": " << F->str();
    if (ExtR == SatResult::Sat) {
      // The parsed-back external model must actually satisfy F.
      auto Has = [&M](const std::string &N) {
        for (auto &[Name, V] : M)
          if (Name == N)
            return true;
        return false;
      };
      if (!Has("x"))
        M.emplace_back("x", Bitvector(3));
      if (!Has("y"))
        M.emplace_back("y", Bitvector(2));
      EXPECT_TRUE(evalFormula(F, M)) << "seed " << Seed;
    }
  }
  EXPECT_EQ(Plain.extStats().FallbackQueries, 0u);
  EXPECT_GT(Plain.extStats().ExternalQueries, 0u);
  EXPECT_EQ(Plain.extStats().Spawns, 1u); // One process, many queries.
  EXPECT_FALSE(Plain.permanentFallback());
}

TEST(ShimBackend, SessionAgreesWithMonolithic) {
  REQUIRE_SHIM(Shim);
  SmtLibSolver Ext(configFor(Shim));
  BitBlastSolver Ref;
  for (int Seed = 0; Seed < 12; ++Seed) {
    Rng R{uint64_t(Seed) + 4242};
    auto Sess = Ext.openSession();
    std::vector<BvFormulaRef> Premises;
    for (int Round = 0; Round < 6; ++Round) {
      if (R.below(2) == 0) {
        BvFormulaRef P = randomFormula(R, 2);
        Premises.push_back(P);
        Sess->assertPremise(P);
      }
      BvFormulaRef Goal = randomFormula(R, 2);
      BvFormulaRef Conj = Goal;
      for (size_t I = Premises.size(); I > 0; --I)
        Conj = BvFormula::mkAnd(Premises[I - 1], Conj);
      Model M;
      SatResult Inc = Sess->checkSatUnderPremises(Goal, &M);
      SatResult Mono = Ref.checkSat(Conj, nullptr);
      ASSERT_EQ(Inc, Mono) << "seed " << Seed << " round " << Round;
      if (Inc == SatResult::Sat) {
        auto Has = [&M](const std::string &N) {
          for (auto &[Name, V] : M)
            if (Name == N)
              return true;
          return false;
        };
        if (!Has("x"))
          M.emplace_back("x", Bitvector(3));
        if (!Has("y"))
          M.emplace_back("y", Bitvector(2));
        EXPECT_TRUE(evalFormula(Conj, M))
            << "external session model violates premises, seed " << Seed;
      }
    }
  }
  EXPECT_EQ(Ext.extStats().FallbackQueries, 0u);
  // All sessions multiplex one process.
  EXPECT_EQ(Ext.extStats().Spawns, 1u);
}

TEST(ShimBackend, CheckerDifferentialOnSmallStudies) {
  REQUIRE_SHIM(Shim);
  for (const parsers::CaseStudy &S : smallStudies()) {
    SmtLibSolver Ext(configFor(Shim));
    BitBlastSolver Ref;
    core::CheckResult ExtRes = runStudy(S, Ext);
    core::CheckResult RefRes = runStudy(S, Ref);
    expectSameDecisions(ExtRes, RefRes, S.Name);
    EXPECT_EQ(Ext.extStats().FallbackQueries, 0u) << S.Name;
    EXPECT_GT(Ext.extStats().ExternalQueries, 0u) << S.Name;
  }
}

TEST(ShimBackend, CrossCheckReportsZeroDivergences) {
  REQUIRE_SHIM(Shim);
  for (const parsers::CaseStudy &S : smallStudies()) {
    auto Solver = createSolverBackend("crosscheck:" + Shim, nullptr);
    ASSERT_NE(Solver, nullptr);
    auto *Cross = dynamic_cast<CrossCheckSolver *>(Solver.get());
    ASSERT_NE(Cross, nullptr);
    core::CheckResult Res = runStudy(S, *Solver);
    (void)Res;
    EXPECT_GT(Cross->crossStats().Checked, 0u) << S.Name;
    EXPECT_EQ(Cross->crossStats().Divergences, 0u) << S.Name;
    auto *Ext = dynamic_cast<SmtLibSolver *>(&Cross->external());
    ASSERT_NE(Ext, nullptr);
    EXPECT_EQ(Ext->extStats().FallbackQueries, 0u) << S.Name;
  }
}

TEST(ShimBackend, ParallelWorkersGetTheirOwnProcess) {
  REQUIRE_SHIM(Shim);
  // jobs=2 exercises SmtSolver::spawnWorker on the external backend: each
  // worker must get an independent SmtLibSolver (hence process), and the
  // decision stream must stay bit-identical to the sequential run.
  auto Studies = smallStudies();
  ASSERT_FALSE(Studies.empty());
  const parsers::CaseStudy &S = Studies.front();
  SmtLibSolver Seq(configFor(Shim));
  core::CheckResult SeqRes = runStudy(S, Seq);
  SmtLibSolver Par(configFor(Shim));
  core::CheckResult ParRes = runStudy(S, Par, /*Jobs=*/2);
  expectSameDecisions(SeqRes, ParRes, S.Name);
}

TEST(ShimBackend, SpawnWorkerSharesNoState) {
  REQUIRE_SHIM(Shim);
  SmtLibSolver Primary(configFor(Shim));
  std::unique_ptr<SmtSolver> Worker = Primary.spawnWorker();
  ASSERT_NE(Worker, nullptr);
  BvTermRef X = var("x", 2);
  EXPECT_EQ(Primary.checkSat(BvFormula::mkEq(X, lit("10")), nullptr),
            SatResult::Sat);
  EXPECT_EQ(Worker->checkSat(BvFormula::mkEq(X, lit("01")), nullptr),
            SatResult::Sat);
  // Independent statistics: one query each.
  EXPECT_EQ(Primary.stats().Queries, 1u);
  EXPECT_EQ(Worker->stats().Queries, 1u);
  auto *W = dynamic_cast<SmtLibSolver *>(Worker.get());
  ASSERT_NE(W, nullptr);
  EXPECT_EQ(W->extStats().Spawns, 1u);
  EXPECT_EQ(Primary.extStats().Spawns, 1u);
}

//===----------------------------------------------------------------------===//
// Process lifecycle: every failure mode degrades, no answer changes
//===----------------------------------------------------------------------===//

/// The answers any backend must give on this pair of fixed queries.
void expectCorrectAnswers(SmtSolver &S) {
  BvTermRef X = var("x", 3);
  // Unsat: x[0:0] = 1 ∧ x[0:0] = 0.
  BvFormulaRef Unsat = BvFormula::mkAnd(
      BvFormula::mkEq(BvTerm::mkExtract(X, 0, 0), lit("1")),
      BvFormula::mkEq(BvTerm::mkExtract(X, 0, 0), lit("0")));
  EXPECT_EQ(S.checkSat(Unsat, nullptr), SatResult::Unsat);
  // Sat, with a checked model.
  BvFormulaRef Sat = BvFormula::mkEq(X, lit("101"));
  Model M;
  ASSERT_EQ(S.checkSat(Sat, &M), SatResult::Sat);
  EXPECT_TRUE(evalFormula(Sat, M));
}

TEST(ProcessLifecycle, MissingBinaryFallsBack) {
  SmtLibSolver S(configFor("leapfrog-no-such-solver-binary --flag"));
  expectCorrectAnswers(S);
  EXPECT_EQ(S.extStats().ExternalQueries, 0u);
  EXPECT_GE(S.extStats().FallbackQueries, 2u);
}

TEST(ProcessLifecycle, EofOnStartupFallsBack) {
  REQUIRE_MOCK(Mock, "eof");
  SmtLibConfig C = configFor(Mock);
  C.MaxProcessFailures = 2; // One failure per query here; two queries.
  SmtLibSolver S(C);
  expectCorrectAnswers(S);
  EXPECT_EQ(S.extStats().ExternalQueries, 0u);
  EXPECT_GE(S.extStats().FallbackQueries, 2u);
  EXPECT_GT(S.extStats().Eofs, 0u);
  // The failure budget caps respawn attempts for good.
  EXPECT_TRUE(S.permanentFallback());
  EXPECT_LE(S.extStats().Spawns, 2u);
  // Later queries stay correct without any new spawn.
  expectCorrectAnswers(S);
  EXPECT_LE(S.extStats().Spawns, 2u);
}

TEST(ProcessLifecycle, HangingSolverTimesOut) {
  REQUIRE_MOCK(Mock, "hang");
  SmtLibConfig C = configFor(Mock, /*TimeoutMs=*/200);
  C.MaxProcessFailures = 2;
  SmtLibSolver S(C);
  expectCorrectAnswers(S);
  EXPECT_GT(S.extStats().Timeouts, 0u);
  EXPECT_EQ(S.extStats().ExternalQueries, 0u);
  EXPECT_TRUE(S.permanentFallback());
}

TEST(ProcessLifecycle, GarbageReplyIsAProtocolError) {
  REQUIRE_MOCK(Mock, "garbage");
  SmtLibSolver S(configFor(Mock));
  expectCorrectAnswers(S);
  EXPECT_GT(S.extStats().ProtocolErrors, 0u);
  EXPECT_EQ(S.extStats().ExternalQueries, 0u);
}

TEST(ProcessLifecycle, ErrorReplyIsAProtocolError) {
  REQUIRE_MOCK(Mock, "error");
  SmtLibSolver S(configFor(Mock));
  expectCorrectAnswers(S);
  EXPECT_GT(S.extStats().ProtocolErrors, 0u);
  EXPECT_EQ(S.extStats().ExternalQueries, 0u);
}

TEST(ProcessLifecycle, SessionsSurviveProcessDeath) {
  REQUIRE_MOCK(Mock, "garbage");
  // A session on a dying backend must answer every query correctly
  // through its mirrored in-repo fallback session.
  SmtLibSolver S(configFor(Mock));
  auto Sess = S.openSession();
  BvTermRef X = var("x", 4);
  Sess->assertPremise(BvFormula::mkEq(X, lit("1010")));
  EXPECT_TRUE(Sess->isEntailed(BvFormula::mkEq(X, lit("1010"))));
  EXPECT_FALSE(Sess->isEntailed(BvFormula::mkEq(X, lit("1111"))));
  EXPECT_TRUE(Sess->isEntailed(
      BvFormula::mkEq(BvTerm::mkExtract(X, 0, 1), lit("10"))));
  EXPECT_GE(S.extStats().FallbackQueries, 3u);
}

TEST(ProcessLifecycle, LyingSatSolverIsCaughtByModelValidation) {
  REQUIRE_MOCK(MockSat, "always-sat");
  // A solver that answers sat on everything cannot substantiate the
  // claim: model validation (on by default) evaluates the parsed-back
  // model against the query, fails, and demotes the answer to the
  // in-repo fallback — so even the *plain* smtlib backend keeps correct
  // answers against a sat-lying solver, no crosscheck needed.
  SmtLibSolver S(configFor(MockSat));
  BvTermRef X = var("x", 2);
  BvFormulaRef Unsat = BvFormula::mkAnd(BvFormula::mkEq(X, lit("00")),
                                        BvFormula::mkEq(X, lit("11")));
  EXPECT_EQ(S.checkSat(Unsat, nullptr), SatResult::Unsat);
  EXPECT_GT(S.extStats().ProtocolErrors, 0u);
  EXPECT_EQ(S.extStats().ExternalQueries, 0u);
}

TEST(ProcessLifecycle, LyingSatSolverIsExposedByCrossCheckWhenUnvalidated) {
  REQUIRE_MOCK(MockSat, "always-sat");
  // With model validation explicitly off, a sat-lying solver does pass
  // through the plain backend (that is what trusting a solver means) —
  // and the crosscheck backend then flags the divergence on the first
  // unsat query.
  SmtLibConfig C = configFor(MockSat);
  C.ValidateModels = false;
  auto Cross = std::make_unique<CrossCheckSolver>(
      std::make_unique<BitBlastSolver>(),
      std::make_unique<SmtLibSolver>(C));
  Cross->AbortOnDivergence = false; // Count, don't abort, for the test.
  BvTermRef X = var("x", 2);
  BvFormulaRef Unsat = BvFormula::mkAnd(BvFormula::mkEq(X, lit("00")),
                                        BvFormula::mkEq(X, lit("11")));
  ::testing::internal::CaptureStderr(); // The divergence dump is expected.
  EXPECT_EQ(Cross->checkSat(Unsat, nullptr), SatResult::Unsat);
  std::string Dump = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(Cross->crossStats().Divergences, 1u);
  EXPECT_NE(Dump.find("SOLVER DIVERGENCE"), std::string::npos);
  // Sat queries agree (the mock is right by accident) — no new report.
  EXPECT_EQ(Cross->checkSat(BvFormula::mkEq(X, lit("01")), nullptr),
            SatResult::Sat);
  EXPECT_EQ(Cross->crossStats().Divergences, 1u);
}

TEST(ProcessLifecycle, LyingUnsatSolverIsExposedInSessions) {
  REQUIRE_MOCK(MockUnsat, "always-unsat");
  auto Cross = std::make_unique<CrossCheckSolver>(
      std::make_unique<BitBlastSolver>(),
      std::make_unique<SmtLibSolver>(configFor(MockUnsat)));
  Cross->AbortOnDivergence = false;
  auto Sess = Cross->openSession();
  BvTermRef X = var("x", 2);
  Sess->assertPremise(BvFormula::mkEq(X, lit("10")));
  ::testing::internal::CaptureStderr();
  // Premise ∧ (x = 10) is sat; the mock claims unsat → divergence, and
  // the reference answer is what the caller sees.
  EXPECT_EQ(Sess->checkSatUnderPremises(BvFormula::mkEq(X, lit("10")),
                                        nullptr),
            SatResult::Sat);
  std::string Dump = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(Cross->crossStats().Divergences, 1u);
  // The dump folds the premises in, so the script reproduces standalone.
  EXPECT_NE(Dump.find("(check-sat)"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Portfolio lifecycle: races decided, losers cancelled, no leaks
//===----------------------------------------------------------------------===//

/// Open file-descriptor count of this process — the leak check bracket
/// around portfolio construction/destruction.
size_t openFdCount() {
  DIR *D = opendir("/proc/self/fd");
  if (!D)
    return 0; // Not a procfs platform; the bracket degrades to 0 == 0.
  size_t N = 0;
  while (struct dirent *E = readdir(D))
    if (E->d_name[0] != '.')
      ++N;
  closedir(D);
  return N;
}

/// PIDs the mock solver appended to \p Path (LEAPFROG_MOCK_PIDFILE).
std::vector<pid_t> readPidFile(const std::string &Path) {
  std::vector<pid_t> Pids;
  std::ifstream In(Path);
  long Pid;
  while (In >> Pid)
    Pids.push_back(static_cast<pid_t>(Pid));
  return Pids;
}

/// True when every PID in \p Pids is gone (neither running nor zombie).
/// Retries for up to ~5 s: the loser's teardown is asynchronous to the
/// race result, but must complete promptly.
bool allDeadWithin5s(const std::vector<pid_t> &Pids) {
  for (int Tries = 0; Tries < 500; ++Tries) {
    bool AllDead = true;
    for (pid_t P : Pids) {
      // A zombie still answers kill(P, 0) — only a fully reaped child
      // reports ESRCH, which is exactly the no-zombie claim.
      if (kill(P, 0) == 0 || errno != ESRCH) {
        AllDead = false;
        break;
      }
    }
    if (AllDead)
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

TEST(PortfolioBackend, FactoryParsesSpecs) {
  std::string Err;
  EXPECT_NE(createSolverBackend("portfolio:bitblast,bitblast", &Err),
            nullptr);
  EXPECT_NE(createSolverBackend("portfolio:bitblast,smtlib:z3 -in", &Err),
            nullptr);
  // A one-leg portfolio is a pointless but legal pass-through.
  EXPECT_NE(createSolverBackend("portfolio:bitblast", &Err), nullptr);
  EXPECT_EQ(createSolverBackend("portfolio:", &Err), nullptr);
  EXPECT_EQ(createSolverBackend("portfolio:bitblast,", &Err), nullptr);
  EXPECT_EQ(createSolverBackend("portfolio:,bitblast", &Err), nullptr);
  EXPECT_EQ(
      createSolverBackend("portfolio:bitblast,portfolio:bitblast", &Err),
      nullptr);
  EXPECT_EQ(createSolverBackend("portfolio:bitblast,qbf:magic", &Err),
            nullptr);
}

TEST(PortfolioBackend, FastLegWinsSlowLegCancelledNoZombiesNoFdLeak) {
  REQUIRE_SHIM(Shim);
  REQUIRE_MOCK(MockSlow, "slow");
  std::string PidFile =
      ::testing::TempDir() + "portfolio_slow_pids_" +
      std::to_string(static_cast<long>(getpid())) + ".txt";
  std::remove(PidFile.c_str());
  setenv("LEAPFROG_MOCK_PIDFILE", PidFile.c_str(), 1);
  setenv("LEAPFROG_MOCK_SLOW_SECS", "1", 1);
  size_t FdsBefore = openFdCount();
  std::vector<pid_t> Pids;
  {
    // Leg 0: the shim (answers in milliseconds). Leg 1: the mock in slow
    // mode — sleeps before every reply, so it loses every race but never
    // errors. Note the PID file records *both* legs' processes (the shim
    // ignores the variable; the mock writes it) — dead-process assertions
    // below only read the file after both processes must have spawned.
    std::vector<std::unique_ptr<SmtSolver>> LegSolvers;
    LegSolvers.push_back(std::make_unique<SmtLibSolver>(configFor(Shim)));
    LegSolvers.push_back(
        std::make_unique<SmtLibSolver>(configFor(MockSlow)));
    PortfolioSolver Portfolio(std::move(LegSolvers));
    expectCorrectAnswers(Portfolio);
    // The shim answered first every time; the slow leg was interrupted
    // mid-sleep at least once.
    const PortfolioSolver::PStats &PS = Portfolio.portfolioStats();
    ASSERT_EQ(PS.Wins.size(), 2u);
    EXPECT_GT(PS.Wins[0], 0u);
    EXPECT_EQ(PS.Wins[1], 0u);
    EXPECT_GT(PS.Cancelled, 0u);
    // The mock's lying unsat answers never surfaced: expectCorrectAnswers
    // saw the shim's (validated) answers only.
    Pids = readPidFile(PidFile);
    EXPECT_FALSE(Pids.empty()) << "mock solver never spawned";
  }
  // Portfolio destroyed: every leg process must be fully reaped — not
  // running, not a zombie — and every pipe fd closed.
  EXPECT_TRUE(allDeadWithin5s(Pids)) << "leg process still alive/zombie";
  EXPECT_EQ(openFdCount(), FdsBefore) << "portfolio leaked an fd";
  unsetenv("LEAPFROG_MOCK_PIDFILE");
  unsetenv("LEAPFROG_MOCK_SLOW_SECS");
  std::remove(PidFile.c_str());
}

TEST(PortfolioBackend, DegenerateLegsDegradeWithoutChangingAnswers) {
  // Legs that crash on startup, hang, or talk garbage: the SmtLibSolver
  // inside the leg falls back to its in-repo mirror, so the leg still
  // reports a *correct* answer — the portfolio's job is merely to keep
  // racing through the noise. The hang leg gets a short reply timeout so
  // its fallback (not the healthy leg's win) is what bounds the test.
  for (const char *Mode : {"eof", "garbage", "hang"}) {
    SCOPED_TRACE(Mode);
    REQUIRE_MOCK(Mock, Mode);
    std::vector<std::unique_ptr<SmtSolver>> LegSolvers;
    LegSolvers.push_back(std::make_unique<BitBlastSolver>());
    LegSolvers.push_back(std::make_unique<SmtLibSolver>(
        configFor(Mock, /*TimeoutMs=*/200)));
    PortfolioSolver Portfolio(std::move(LegSolvers));
    expectCorrectAnswers(Portfolio);
    const PortfolioSolver::PStats &PS = Portfolio.portfolioStats();
    EXPECT_GT(PS.Wins[0] + PS.Wins[1], 0u);
  }
}

TEST(PortfolioBackend, LyingLegIsExposedByStackedCrossCheck) {
  REQUIRE_MOCK(MockSlow, "slow");
  REQUIRE_MOCK(MockUnsat, "always-unsat");
  setenv("LEAPFROG_MOCK_SLOW_SECS", "1", 1);
  // Leg 0 is slow (loses every race); leg 1 stacks crosscheck over an
  // unsat-lying mock, with validation off so the lie reaches the
  // crosscheck layer. The portfolio takes leg 1's answer — which is the
  // crosscheck *reference* answer, the divergence having been counted —
  // so a lying leg inside a portfolio still cannot flip a verdict.
  std::vector<std::unique_ptr<SmtSolver>> LegSolvers;
  LegSolvers.push_back(
      std::make_unique<SmtLibSolver>(configFor(MockSlow)));
  SmtLibConfig LiarCfg = configFor(MockUnsat);
  LiarCfg.ValidateModels = false;
  auto Cross = std::make_unique<CrossCheckSolver>(
      std::make_unique<BitBlastSolver>(),
      std::make_unique<SmtLibSolver>(LiarCfg));
  Cross->AbortOnDivergence = false;
  LegSolvers.push_back(std::move(Cross));
  PortfolioSolver Portfolio(std::move(LegSolvers));
  BvTermRef X = var("x", 2);
  ::testing::internal::CaptureStderr(); // The divergence dump is expected.
  EXPECT_EQ(Portfolio.checkSat(BvFormula::mkEq(X, lit("10")), nullptr),
            SatResult::Sat);
  std::string Dump = ::testing::internal::GetCapturedStderr();
  auto *Leg1 = dynamic_cast<CrossCheckSolver *>(&Portfolio.leg(1));
  ASSERT_NE(Leg1, nullptr);
  EXPECT_EQ(Leg1->crossStats().Divergences, 1u);
  EXPECT_NE(Dump.find("SOLVER DIVERGENCE"), std::string::npos);
  EXPECT_GT(Portfolio.portfolioStats().Wins[1], 0u);
  unsetenv("LEAPFROG_MOCK_SLOW_SECS");
}

TEST(PortfolioBackend, SessionGoalsAndBatchesAreRaced) {
  REQUIRE_SHIM(Shim);
  std::vector<std::unique_ptr<SmtSolver>> LegSolvers;
  LegSolvers.push_back(std::make_unique<BitBlastSolver>());
  LegSolvers.push_back(std::make_unique<SmtLibSolver>(configFor(Shim)));
  PortfolioSolver Portfolio(std::move(LegSolvers));
  auto Sess = Portfolio.openSession();
  BvTermRef X = var("x", 4);
  Sess->assertPremise(BvFormula::mkEq(X, lit("1010")));
  EXPECT_TRUE(Sess->isEntailed(BvFormula::mkEq(X, lit("1010"))));
  EXPECT_FALSE(
      Sess->isEntailed(BvFormula::mkEq(BvTerm::mkExtract(X, 0, 1), lit("11"))));
  // Batches race as one unit: answers must still be per-goal exact.
  std::vector<BvFormulaRef> Goals = {
      BvFormula::mkNot(BvFormula::mkEq(X, lit("1010"))),
      BvFormula::mkEq(var("y", 2), lit("01")),
      BvFormula::mkNot(
          BvFormula::mkEq(BvTerm::mkExtract(X, 2, 3), lit("10"))),
  };
  std::vector<SatResult> Out;
  Sess->checkSatBatch(Goals, Out);
  ASSERT_EQ(Out.size(), 3u);
  EXPECT_EQ(Out[0], SatResult::Unsat);
  EXPECT_EQ(Out[1], SatResult::Sat);
  EXPECT_EQ(Out[2], SatResult::Unsat);
}

TEST(PortfolioBackend, ParallelWorkersRacePortfolioLegs) {
  REQUIRE_SHIM(Shim);
  // jobs=2 over a portfolio backend: every worker races its own pair of
  // leg workers (PortfolioSolver::spawnWorker), and the decision stream
  // must stay bit-identical to the plain sequential bitblast run.
  auto Studies = smallStudies();
  ASSERT_FALSE(Studies.empty());
  const parsers::CaseStudy &S = Studies.front();
  BitBlastSolver Ref;
  core::CheckResult RefRes = runStudy(S, Ref);
  auto Portfolio =
      createSolverBackend("portfolio:bitblast,smtlib:" + Shim, nullptr);
  ASSERT_NE(Portfolio, nullptr);
  core::CheckResult ParRes = runStudy(S, *Portfolio, /*Jobs=*/2);
  expectSameDecisions(RefRes, ParRes, S.Name);
}

//===----------------------------------------------------------------------===//
// ExternalSolver*: gated on a real solver binary (z3 by default)
//===----------------------------------------------------------------------===//

/// The external solver command ("z3 -in" unless LEAPFROG_EXT_SOLVER
/// overrides) — or "" when the binary does not answer a probe query, in
/// which case the ExternalSolver tests skip (or fail loudly under
/// LEAPFROG_REQUIRE_EXT=1, the CI smt-external job's setting).
std::string externalCommandOrSkipReason(std::string &Skip) {
  const char *Env = std::getenv("LEAPFROG_EXT_SOLVER");
  std::string Cmd = Env && *Env ? Env : "z3 -in";
  SmtLibSolver Probe(configFor(Cmd, /*TimeoutMs=*/10000));
  BvTermRef X = BvTerm::mkVar("probe", 2);
  (void)Probe.checkSat(BvFormula::mkEq(X, X), nullptr);
  if (Probe.extStats().ExternalQueries == 1)
    return Cmd;
  Skip = "external solver '" + Cmd + "' not available";
  return "";
}

#define REQUIRE_EXTERNAL(CmdVar)                                           \
  std::string CmdVar;                                                      \
  {                                                                        \
    std::string Skip;                                                      \
    CmdVar = externalCommandOrSkipReason(Skip);                            \
    if (CmdVar.empty()) {                                                  \
      const char *Req = std::getenv("LEAPFROG_REQUIRE_EXT");               \
      if (Req && *Req && std::string(Req) != "0")                          \
        FAIL() << Skip << " but LEAPFROG_REQUIRE_EXT is set";              \
      GTEST_SKIP() << Skip;                                                \
    }                                                                      \
  }

TEST(ExternalSolver, OneShotAgreesWithBitBlast) {
  REQUIRE_EXTERNAL(Cmd);
  SmtLibSolver Ext(configFor(Cmd));
  BitBlastSolver Ref;
  for (int Seed = 0; Seed < 40; ++Seed) {
    Rng R{uint64_t(Seed) + 7};
    BvFormulaRef F = randomFormula(R, 3);
    Model M;
    SatResult ExtR = Ext.checkSat(F, &M);
    ASSERT_EQ(ExtR, Ref.checkSat(F, nullptr))
        << "seed " << Seed << ": " << F->str();
    if (ExtR == SatResult::Sat) {
      auto Has = [&M](const std::string &N) {
        for (auto &[Name, V] : M)
          if (Name == N)
            return true;
        return false;
      };
      if (!Has("x"))
        M.emplace_back("x", Bitvector(3));
      if (!Has("y"))
        M.emplace_back("y", Bitvector(2));
      EXPECT_TRUE(evalFormula(F, M)) << "seed " << Seed;
    }
  }
  EXPECT_EQ(Ext.extStats().FallbackQueries, 0u);
}

TEST(ExternalSolver, CrossCheckSmallStudies) {
  REQUIRE_EXTERNAL(Cmd);
  for (const parsers::CaseStudy &S : smallStudies()) {
    auto Solver = createSolverBackend("crosscheck:" + Cmd, nullptr);
    ASSERT_NE(Solver, nullptr);
    auto *Cross = dynamic_cast<CrossCheckSolver *>(Solver.get());
    core::CheckResult Res = runStudy(S, *Solver);
    (void)Res;
    EXPECT_GT(Cross->crossStats().Checked, 0u) << S.Name;
    EXPECT_EQ(Cross->crossStats().Divergences, 0u) << S.Name;
    auto *Ext = dynamic_cast<SmtLibSolver *>(&Cross->external());
    EXPECT_EQ(Ext->extStats().FallbackQueries, 0u) << S.Name;
  }
}

TEST(ExternalSolver, CrossCheckRegistrySweepBudgeted) {
  REQUIRE_EXTERNAL(Cmd);
  // All 10 registry studies under an iteration budget: the point is
  // divergence-freedom over a large, diverse query stream, not finishing
  // the big self-comparisons (ResourceLimit verdicts are expected and
  // fine — every query posed before the budget still got cross-checked).
  for (const parsers::CaseStudy &S : parsers::allCaseStudies()) {
    auto Solver = createSolverBackend("crosscheck:" + Cmd, nullptr);
    ASSERT_NE(Solver, nullptr);
    auto *Cross = dynamic_cast<CrossCheckSolver *>(Solver.get());
    core::CheckOptions O;
    O.Solver = Solver.get();
    O.MaxIterations = 300;
    core::CheckResult Res = core::checkLanguageEquivalence(
        S.Left, S.LeftStart, S.Right, S.RightStart, O);
    (void)Res;
    EXPECT_GT(Cross->crossStats().Checked, 0u) << S.Name;
    EXPECT_EQ(Cross->crossStats().Divergences, 0u) << S.Name;
  }
}

TEST(ExternalSolver, CheckerDifferentialOnSmallStudies) {
  REQUIRE_EXTERNAL(Cmd);
  for (const parsers::CaseStudy &S : smallStudies()) {
    SmtLibSolver Ext(configFor(Cmd));
    BitBlastSolver Ref;
    core::CheckResult ExtRes = runStudy(S, Ext);
    core::CheckResult RefRes = runStudy(S, Ref);
    expectSameDecisions(ExtRes, RefRes, S.Name);
    EXPECT_EQ(Ext.extStats().FallbackQueries, 0u) << S.Name;
  }
}

} // namespace
