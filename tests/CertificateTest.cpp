//===- CertificateTest.cpp - Certificate replay tests ---------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the certificate story of §6.4: a successful check yields a
/// certificate the independent replay checker validates; tampering with
/// the relation (dropping conjuncts, weakening a conjunct, changing the
/// spec) is rejected; and — the paper's TCB point — a search run over a
/// deliberately unsound solver produces "proofs" that replay with a sound
/// solver refuses to accept.
///
//===----------------------------------------------------------------------===//

#include "core/Certificate.h"
#include "core/Checker.h"

#include "p4a/Parser.h"
#include "parsers/CaseStudies.h"

#include <gtest/gtest.h>

using namespace leapfrog;
using namespace leapfrog::core;
using namespace leapfrog::logic;

namespace {

TEST(Certificate, ReplaysOnCaseStudies) {
  struct {
    p4a::Automaton L, R;
    const char *QL, *QR;
  } Cases[] = {
      {parsers::mplsReference(), parsers::mplsVectorized(), "q1", "q3"},
      {parsers::rearrangeReference(), parsers::rearrangeCombined(),
       "parse_ip", "parse_combined"},
      {parsers::vlanParser(), parsers::vlanParser(), "parse_eth",
       "parse_eth"},
  };
  for (auto &C : Cases) {
    CheckResult Res = checkLanguageEquivalence(C.L, C.QL, C.R, C.QR);
    ASSERT_TRUE(Res.equivalent()) << Res.FailureReason;
    ReplayResult Replay = replayCertificate(C.L, C.R, Res.Certificate);
    EXPECT_TRUE(Replay.Valid) << Replay.FailureReason;
    EXPECT_GT(Replay.ObligationsChecked, 0u);
  }
}

TEST(Certificate, ReplayMatchesAblationModes) {
  p4a::Automaton L = parsers::rearrangeReference();
  p4a::Automaton R = parsers::rearrangeCombined();
  for (bool Leaps : {false, true}) {
    CheckOptions O;
    O.UseLeaps = Leaps;
    CheckResult Res =
        checkLanguageEquivalence(L, "parse_ip", R, "parse_combined", O);
    ASSERT_TRUE(Res.equivalent()) << "leaps=" << Leaps;
    ReplayResult Replay = replayCertificate(L, R, Res.Certificate);
    EXPECT_TRUE(Replay.Valid)
        << "leaps=" << Leaps << ": " << Replay.FailureReason;
  }
}

TEST(Certificate, RejectsDroppedConjunct) {
  p4a::Automaton L = parsers::mplsReference();
  p4a::Automaton R = parsers::mplsVectorized();
  CheckResult Res = checkLanguageEquivalence(L, "q1", R, "q3");
  ASSERT_TRUE(Res.equivalent());
  ASSERT_GT(Res.Certificate.Relation.size(), 1u);

  // Dropping a load-bearing conjunct must break initiation or consecution.
  // Not every single conjunct is individually load-bearing, so check that
  // at least one removal is caught (in practice: most).
  size_t Caught = 0;
  for (size_t I = 0; I < Res.Certificate.Relation.size(); ++I) {
    EquivalenceCertificate Tampered = Res.Certificate;
    Tampered.Relation.erase(Tampered.Relation.begin() + I);
    if (!replayCertificate(L, R, Tampered).Valid)
      ++Caught;
  }
  EXPECT_GT(Caught, Res.Certificate.Relation.size() / 2);
}

TEST(Certificate, RejectsEmptiedRelation) {
  p4a::Automaton L = parsers::mplsReference();
  p4a::Automaton R = parsers::mplsVectorized();
  CheckResult Res = checkLanguageEquivalence(L, "q1", R, "q3");
  ASSERT_TRUE(Res.equivalent());
  EquivalenceCertificate Tampered = Res.Certificate;
  Tampered.Relation.clear();
  ReplayResult Replay = replayCertificate(L, R, Tampered);
  EXPECT_FALSE(Replay.Valid);
  EXPECT_NE(Replay.FailureReason.find("initiation"), std::string::npos);
}

TEST(Certificate, RejectsForeignAutomata) {
  // A certificate for the MPLS pair must not validate the (inequivalent)
  // sloppy/strict pair.
  p4a::Automaton L = parsers::mplsReference();
  p4a::Automaton R = parsers::mplsVectorized();
  CheckResult Res = checkLanguageEquivalence(L, "q1", R, "q3");
  ASSERT_TRUE(Res.equivalent());

  p4a::Automaton L2 = parsers::sloppyEthernetIp();
  p4a::Automaton R2 = parsers::strictEthernetIp();
  // Same state ids exist (both have a state 0), so replay runs — and must
  // fail some obligation.
  ReplayResult Replay = replayCertificate(L2, R2, Res.Certificate);
  EXPECT_FALSE(Replay.Valid);
}

//===----------------------------------------------------------------------===//
// The unsound-solver experiment (§6.4: the solver is trusted — a lying
// solver must be caught by replay with a sound one)
//===----------------------------------------------------------------------===//

/// A solver that calls everything valid: isValid() == true for every
/// query, i.e. checkSat answers Unsat unconditionally.
class YesManSolver : public smt::SmtSolver {
public:
  smt::SatResult checkSat(const smt::BvFormulaRef &F,
                          smt::Model *M) override {
    (void)F;
    (void)M;
    ++Stats.Queries;
    return smt::SatResult::Unsat;
  }
};

TEST(Certificate, UnsoundSolverProofIsRejectedOnReplay) {
  // With a yes-man solver the checker "proves" the inequivalent
  // sloppy/strict pair: every entailment check succeeds, so the initial
  // conjuncts are skipped and R stays trivially small.
  p4a::Automaton L = parsers::sloppyEthernetIp();
  p4a::Automaton R = parsers::strictEthernetIp();
  YesManSolver Liar;
  CheckOptions O;
  O.Solver = &Liar;
  CheckResult Res = checkLanguageEquivalence(L, "parse_eth", R, "parse_eth", O);
  ASSERT_TRUE(Res.equivalent()) << "the unsound solver should have lied";

  // Replay with the sound default solver rejects the fabricated proof.
  ReplayResult Replay = replayCertificate(L, R, Res.Certificate);
  EXPECT_FALSE(Replay.Valid);
  EXPECT_FALSE(Replay.FailureReason.empty());
}

TEST(Certificate, QualifiedSpecReplaysWithItsOwnMode) {
  // External filtering: the certificate must remember the qualified
  // acceptance mode; replaying it re-derives the same initial relation.
  p4a::Automaton L = parsers::sloppyEthernetIp();
  p4a::Automaton R = parsers::strictEthernetIp();
  auto Field = BitExpr::mkSlice(
      BitExpr::mkHdr(Side::Left, *L.findHeader("ether")), 96, 111);
  InitialSpec Spec = languageEquivalenceSpec(
      L, p4a::StateRef::normal(*L.findState("parse_eth")), R,
      p4a::StateRef::normal(*R.findState("parse_eth")));
  Spec.Mode = AcceptanceMode::Qualified;
  Spec.LeftQualifier = Pure::mkOr(
      Pure::mkEq(Field, BitExpr::mkLit(Bitvector::fromUint(0x86dd, 16))),
      Pure::mkEq(Field, BitExpr::mkLit(Bitvector::fromUint(0x8600, 16))));
  Spec.RightQualifier = Pure::mkTrue();

  CheckResult Res = checkWithSpec(L, R, Spec);
  ASSERT_TRUE(Res.equivalent()) << Res.FailureReason;
  ReplayResult Replay = replayCertificate(L, R, Res.Certificate);
  EXPECT_TRUE(Replay.Valid) << Replay.FailureReason;

  // Flipping the mode back to Standard must refute the same relation.
  EquivalenceCertificate Tampered = Res.Certificate;
  Tampered.Spec.Mode = AcceptanceMode::Standard;
  EXPECT_FALSE(replayCertificate(L, R, Tampered).Valid);
}

TEST(Certificate, RendersHumanReadably) {
  p4a::Automaton L = parsers::rearrangeReference();
  p4a::Automaton R = parsers::rearrangeCombined();
  CheckResult Res =
      checkLanguageEquivalence(L, "parse_ip", R, "parse_combined");
  ASSERT_TRUE(Res.equivalent());
  std::string S = Res.Certificate.str(L, R);
  EXPECT_NE(S.find("certificate for phi"), std::string::npos);
  EXPECT_NE(S.find("parse_ip"), std::string::npos);
  EXPECT_NE(S.find("conjuncts"), std::string::npos);
}

} // namespace
