//===- CertificateTest.cpp - Certificate replay tests ---------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the certificate story of §6.4: a successful check yields a
/// certificate the independent replay checker validates; tampering with
/// the relation (dropping conjuncts, weakening a conjunct, changing the
/// spec) is rejected; and — the paper's TCB point — a search run over a
/// deliberately unsound solver produces "proofs" that replay with a sound
/// solver refuses to accept.
///
//===----------------------------------------------------------------------===//

#include "core/Certificate.h"
#include "core/CertificateIo.h"
#include "core/Checker.h"
#include "core/Engine.h"

#include "cert/CertVerify.h"
#include "p4a/Parser.h"
#include "parsers/CaseStudies.h"
#include "smt/ProofLog.h"
#include "support/Compress.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <sys/wait.h>
#include <vector>

using namespace leapfrog;
using namespace leapfrog::core;
using namespace leapfrog::logic;

namespace {

TEST(Certificate, ReplaysOnCaseStudies) {
  struct {
    p4a::Automaton L, R;
    const char *QL, *QR;
  } Cases[] = {
      {parsers::mplsReference(), parsers::mplsVectorized(), "q1", "q3"},
      {parsers::rearrangeReference(), parsers::rearrangeCombined(),
       "parse_ip", "parse_combined"},
      {parsers::vlanParser(), parsers::vlanParser(), "parse_eth",
       "parse_eth"},
  };
  for (auto &C : Cases) {
    CheckResult Res = checkLanguageEquivalence(C.L, C.QL, C.R, C.QR);
    ASSERT_TRUE(Res.equivalent()) << Res.FailureReason;
    ReplayResult Replay = replayCertificate(C.L, C.R, Res.Certificate);
    EXPECT_TRUE(Replay.Valid) << Replay.FailureReason;
    EXPECT_GT(Replay.ObligationsChecked, 0u);
  }
}

TEST(Certificate, ReplayMatchesAblationModes) {
  p4a::Automaton L = parsers::rearrangeReference();
  p4a::Automaton R = parsers::rearrangeCombined();
  for (bool Leaps : {false, true}) {
    CheckOptions O;
    O.UseLeaps = Leaps;
    CheckResult Res =
        checkLanguageEquivalence(L, "parse_ip", R, "parse_combined", O);
    ASSERT_TRUE(Res.equivalent()) << "leaps=" << Leaps;
    ReplayResult Replay = replayCertificate(L, R, Res.Certificate);
    EXPECT_TRUE(Replay.Valid)
        << "leaps=" << Leaps << ": " << Replay.FailureReason;
  }
}

TEST(Certificate, RejectsDroppedConjunct) {
  p4a::Automaton L = parsers::mplsReference();
  p4a::Automaton R = parsers::mplsVectorized();
  CheckResult Res = checkLanguageEquivalence(L, "q1", R, "q3");
  ASSERT_TRUE(Res.equivalent());
  ASSERT_GT(Res.Certificate.Relation.size(), 1u);

  // Dropping a load-bearing conjunct must break initiation or consecution.
  // Not every single conjunct is individually load-bearing, so check that
  // at least one removal is caught (in practice: most).
  size_t Caught = 0;
  for (size_t I = 0; I < Res.Certificate.Relation.size(); ++I) {
    EquivalenceCertificate Tampered = Res.Certificate;
    Tampered.Relation.erase(Tampered.Relation.begin() + I);
    if (!replayCertificate(L, R, Tampered).Valid)
      ++Caught;
  }
  EXPECT_GT(Caught, Res.Certificate.Relation.size() / 2);
}

TEST(Certificate, RejectsEmptiedRelation) {
  p4a::Automaton L = parsers::mplsReference();
  p4a::Automaton R = parsers::mplsVectorized();
  CheckResult Res = checkLanguageEquivalence(L, "q1", R, "q3");
  ASSERT_TRUE(Res.equivalent());
  EquivalenceCertificate Tampered = Res.Certificate;
  Tampered.Relation.clear();
  ReplayResult Replay = replayCertificate(L, R, Tampered);
  EXPECT_FALSE(Replay.Valid);
  EXPECT_NE(Replay.FailureReason.find("initiation"), std::string::npos);
}

TEST(Certificate, RejectsForeignAutomata) {
  // A certificate for the MPLS pair must not validate the (inequivalent)
  // sloppy/strict pair.
  p4a::Automaton L = parsers::mplsReference();
  p4a::Automaton R = parsers::mplsVectorized();
  CheckResult Res = checkLanguageEquivalence(L, "q1", R, "q3");
  ASSERT_TRUE(Res.equivalent());

  p4a::Automaton L2 = parsers::sloppyEthernetIp();
  p4a::Automaton R2 = parsers::strictEthernetIp();
  // Same state ids exist (both have a state 0), so replay runs — and must
  // fail some obligation.
  ReplayResult Replay = replayCertificate(L2, R2, Res.Certificate);
  EXPECT_FALSE(Replay.Valid);
}

//===----------------------------------------------------------------------===//
// The unsound-solver experiment (§6.4: the solver is trusted — a lying
// solver must be caught by replay with a sound one)
//===----------------------------------------------------------------------===//

/// A solver that calls everything valid: isValid() == true for every
/// query, i.e. checkSat answers Unsat unconditionally.
class YesManSolver : public smt::SmtSolver {
public:
  smt::SatResult checkSat(const smt::BvFormulaRef &F,
                          smt::Model *M) override {
    (void)F;
    (void)M;
    ++Stats.Queries;
    return smt::SatResult::Unsat;
  }
};

TEST(Certificate, UnsoundSolverProofIsRejectedOnReplay) {
  // With a yes-man solver the checker "proves" the inequivalent
  // sloppy/strict pair: every entailment check succeeds, so the initial
  // conjuncts are skipped and R stays trivially small.
  p4a::Automaton L = parsers::sloppyEthernetIp();
  p4a::Automaton R = parsers::strictEthernetIp();
  YesManSolver Liar;
  CheckOptions O;
  O.Solver = &Liar;
  CheckResult Res = checkLanguageEquivalence(L, "parse_eth", R, "parse_eth", O);
  ASSERT_TRUE(Res.equivalent()) << "the unsound solver should have lied";

  // Replay with the sound default solver rejects the fabricated proof.
  ReplayResult Replay = replayCertificate(L, R, Res.Certificate);
  EXPECT_FALSE(Replay.Valid);
  EXPECT_FALSE(Replay.FailureReason.empty());
}

TEST(Certificate, QualifiedSpecReplaysWithItsOwnMode) {
  // External filtering: the certificate must remember the qualified
  // acceptance mode; replaying it re-derives the same initial relation.
  p4a::Automaton L = parsers::sloppyEthernetIp();
  p4a::Automaton R = parsers::strictEthernetIp();
  auto Field = BitExpr::mkSlice(
      BitExpr::mkHdr(Side::Left, *L.findHeader("ether")), 96, 111);
  InitialSpec Spec = languageEquivalenceSpec(
      L, p4a::StateRef::normal(*L.findState("parse_eth")), R,
      p4a::StateRef::normal(*R.findState("parse_eth")));
  Spec.Mode = AcceptanceMode::Qualified;
  Spec.LeftQualifier = Pure::mkOr(
      Pure::mkEq(Field, BitExpr::mkLit(Bitvector::fromUint(0x86dd, 16))),
      Pure::mkEq(Field, BitExpr::mkLit(Bitvector::fromUint(0x8600, 16))));
  Spec.RightQualifier = Pure::mkTrue();

  CheckResult Res = checkWithSpec(L, R, Spec);
  ASSERT_TRUE(Res.equivalent()) << Res.FailureReason;
  ReplayResult Replay = replayCertificate(L, R, Res.Certificate);
  EXPECT_TRUE(Replay.Valid) << Replay.FailureReason;

  // Flipping the mode back to Standard must refute the same relation.
  EquivalenceCertificate Tampered = Res.Certificate;
  Tampered.Spec.Mode = AcceptanceMode::Standard;
  EXPECT_FALSE(replayCertificate(L, R, Tampered).Valid);
}

TEST(Certificate, RendersHumanReadably) {
  p4a::Automaton L = parsers::rearrangeReference();
  p4a::Automaton R = parsers::rearrangeCombined();
  CheckResult Res =
      checkLanguageEquivalence(L, "parse_ip", R, "parse_combined");
  ASSERT_TRUE(Res.equivalent());
  std::string S = Res.Certificate.str(L, R);
  EXPECT_NE(S.find("certificate for phi"), std::string::npos);
  EXPECT_NE(S.find("parse_ip"), std::string::npos);
  EXPECT_NE(S.find("conjuncts"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Streaming certificates: LFCERT emission, the independent verifier, the
// adversarial tamper battery, and the differential acceptance sweep.
//===----------------------------------------------------------------------===//

std::string corpusDir() {
  const char *Env = std::getenv("LEAPFROG_CORPUS_DIR");
  return Env && *Env ? Env : "";
}

std::string shimPath() {
  const char *Env = std::getenv("LEAPFROG_SMTLIB_SHIM");
  return Env && *Env ? Env : "";
}

std::string certcheckPath() {
  const char *Env = std::getenv("LEAPFROG_CERTCHECK");
  return Env && *Env ? Env : "";
}

bool readFileAll(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Ss;
  Ss << In.rdbuf();
  Out = Ss.str();
  return true;
}

/// Runs a certified check (any jobs count, any backend spec) through the
/// same engine API the CLI and service use, and returns the result plus
/// the serialized LFCERT text for Equivalent verdicts.
struct CertifiedRun {
  CheckResult Res;
  std::string CertText;
  std::string FingerprintHex;
};

CertifiedRun runCertified(const CheckRequest &Req, size_t Jobs,
                          const std::string &Backend) {
  EngineConfig Cfg;
  Cfg.Backend = Backend;
  Cfg.Jobs = Jobs;
  Cfg.Certify = true;
  std::string Err;
  std::unique_ptr<Engine> E = Engine::create(Cfg, &Err);
  EXPECT_NE(E, nullptr) << Err;
  CertifiedRun Run;
  if (!E)
    return Run;
  Run.Res = E->check(Req);
  Run.FingerprintHex = requestFingerprint(Req).hex();
  if (Run.Res.V == Verdict::Equivalent) {
    EXPECT_NE(Run.Res.Proof, nullptr)
        << "certified Equivalent verdict without a proof log";
    Run.CertText = serializeCertificate(Req.Left, Req.Right,
                                        Run.Res.Certificate,
                                        Run.Res.Proof.get(),
                                        Run.FingerprintHex);
  }
  return Run;
}

CheckRequest registryRequest(const parsers::CaseStudy &Study,
                             CheckOptions Options) {
  // CaseStudy holds the automata by value; copy so the request owns its
  // own pair (the study vector is rebuilt per call anyway).
  return makeLanguageEquivalenceRequest(
      Study.Left, p4a::StateRef::normal(*Study.Left.findState(Study.LeftStart)),
      Study.Right,
      p4a::StateRef::normal(*Study.Right.findState(Study.RightStart)),
      std::move(Options));
}

/// Pipes \p CertText through the leapfrog-certcheck binary (when CTest
/// exported its path) and returns its exit status, or -1 when the binary
/// is unavailable. The binary shares no code with this test's linkage of
/// the engine — that independence is what the exercise pins.
int runCertcheckBinary(const std::string &CertText,
                       const std::string &ExpectFp = "") {
  std::string Bin = certcheckPath();
  if (Bin.empty())
    return -1;
  std::string TmpFile = ::testing::TempDir() + "certcheck_input.lfc";
  {
    std::ofstream Out(TmpFile, std::ios::binary | std::ios::trunc);
    Out.write(CertText.data(), std::streamsize(CertText.size()));
  }
  std::string Cmd = Bin + " --quiet";
  if (!ExpectFp.empty())
    Cmd += " --fingerprint " + ExpectFp;
  Cmd += " " + TmpFile + " 2>/dev/null";
  int Status = std::system(Cmd.c_str());
  std::remove(TmpFile.c_str());
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : 127;
}

TEST(CertStream, EmitsVerifiableCertificate) {
  p4a::Automaton L = parsers::mplsReference();
  p4a::Automaton R = parsers::mplsVectorized();
  CheckRequest Req = makeLanguageEquivalenceRequest(
      L, p4a::StateRef::normal(*L.findState("q1")), R,
      p4a::StateRef::normal(*R.findState("q3")), {});
  CertifiedRun Run = runCertified(Req, 1, "bitblast");
  ASSERT_TRUE(Run.Res.equivalent()) << Run.Res.FailureReason;
  ASSERT_FALSE(Run.CertText.empty());

  cert::VerifyResult V = cert::verifyCertificate(Run.CertText, {});
  EXPECT_TRUE(V.Ok) << V.Diagnostic;
  EXPECT_EQ(V.FingerprintHex, Run.FingerprintHex);
  EXPECT_GT(V.Stats.Streams, 0u);
  EXPECT_GT(V.Stats.UnsatGoals, 0u);
  EXPECT_EQ(V.Stats.RelationConjuncts, Run.Res.Certificate.Relation.size());

  // Fingerprint pinning: the right pin passes, a foreign pin fails.
  cert::VerifyOptions Pin;
  Pin.ExpectFingerprintHex = Run.FingerprintHex;
  EXPECT_TRUE(cert::verifyCertificate(Run.CertText, Pin).Ok);
  Pin.ExpectFingerprintHex = std::string(32, '0');
  EXPECT_FALSE(cert::verifyCertificate(Run.CertText, Pin).Ok);

  // The compressed (on-disk store) form verifies identically.
  cert::VerifyResult VC =
      cert::verifyCertificate(compressCertificate(Run.CertText), {});
  EXPECT_TRUE(VC.Ok) << VC.Diagnostic;
  EXPECT_EQ(VC.Stats.Inputs, V.Stats.Inputs);
}

//===----------------------------------------------------------------------===//
// The adversarial tamper battery: seven distinct corruptions, each of
// which the verifier must reject with a diagnostic locating the damage.
// Zero acceptances allowed.
//===----------------------------------------------------------------------===//

/// Replaces the first line matching \p Pred with \p replace(line); returns
/// false if no line matched (the corruption could not be applied).
bool editFirstLine(std::string &Text,
                   const std::function<bool(const std::string &)> &Pred,
                   const std::function<std::string(const std::string &)>
                       &Replace) {
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    if (Eol == std::string::npos)
      Eol = Text.size();
    std::string Line = Text.substr(Pos, Eol - Pos);
    if (Pred(Line)) {
      Text = Text.substr(0, Pos) + Replace(Line) + Text.substr(Eol);
      return true;
    }
    Pos = Eol + 1;
  }
  return false;
}

TEST(CertStream, TamperBatteryRejectsEveryCorruption) {
  p4a::Automaton L = parsers::mplsReference();
  p4a::Automaton R = parsers::mplsVectorized();
  CheckRequest Req = makeLanguageEquivalenceRequest(
      L, p4a::StateRef::normal(*L.findState("q1")), R,
      p4a::StateRef::normal(*R.findState("q3")), {});
  CertifiedRun Run = runCertified(Req, 1, "bitblast");
  ASSERT_TRUE(Run.Res.equivalent());
  const std::string &Good = Run.CertText;
  ASSERT_TRUE(cert::verifyCertificate(Good, {}).Ok);

  struct Tamper {
    const char *Name;
    std::function<bool(std::string &)> Apply;
  };

  auto startsWith = [](const std::string &S, const char *P) {
    return S.rfind(P, 0) == 0;
  };

  std::vector<Tamper> Battery;
  // 1. Drop a relation conjunct: the count (and the chained relation
  // hash) no longer match.
  Battery.push_back({"drop-relation-conjunct", [&](std::string &T) {
                       size_t C = T.find("\nc ");
                       if (C == std::string::npos)
                         return false;
                       size_t Eol = T.find('\n', C + 1);
                       T.erase(C, Eol - C);
                       return true;
                     }});
  // 2. Edit a lemma in a DRUP slice: flip its first literal, so the
  // clause stops being a unit-propagation consequence.
  Battery.push_back({"edit-drup-lemma", [&](std::string &T) {
                       return editFirstLine(
                           T,
                           [&](const std::string &Ln) {
                             return startsWith(Ln, "l ") && Ln.size() > 4;
                           },
                           [](const std::string &Ln) {
                             std::string Out = "l ";
                             size_t P = 2;
                             if (Ln[P] == '-')
                               ++P; // negate: drop the sign …
                             else
                               Out += '-'; // … or add it
                             Out += Ln.substr(P);
                             return Out;
                           });
                     }});
  // 3. Truncate the artifact: everything after the last stream header is
  // cut, so the end mark never arrives.
  Battery.push_back({"truncate-tail", [&](std::string &T) {
                       size_t S = T.rfind("\nstream ");
                       if (S == std::string::npos)
                         return false;
                       T.resize(S + 1);
                       return true;
                     }});
  // 4. Reorder a DRUP slice: move a goal's first event after its end,
  // here by swapping the 'g' open with the line that follows it.
  Battery.push_back({"reorder-slice", [&](std::string &T) {
                       size_t G = T.find("\ng ");
                       if (G == std::string::npos)
                         return false;
                       size_t GEnd = T.find('\n', G + 1);
                       size_t NEnd = T.find('\n', GEnd + 1);
                       if (GEnd == std::string::npos ||
                           NEnd == std::string::npos)
                         return false;
                       std::string GoalLn = T.substr(G + 1, GEnd - G - 1);
                       std::string NextLn =
                           T.substr(GEnd + 1, NEnd - GEnd - 1);
                       T = T.substr(0, G + 1) + NextLn + "\n" + GoalLn +
                           T.substr(NEnd);
                       return true;
                     }});
  // 5. Swap goal ids: rewrite a later goal's id to an id already used,
  // breaking the strictly-increasing discipline restarts rely on.
  Battery.push_back({"swap-goal-ids", [&](std::string &T) {
                       size_t First = T.find("\ng ");
                       if (First == std::string::npos)
                         return false;
                       size_t Second = T.find("\ng ", First + 1);
                       if (Second == std::string::npos)
                         return false;
                       size_t IdEnd = T.find(' ', Second + 3);
                       T = T.substr(0, Second + 3) + "1" + T.substr(IdEnd);
                       return true;
                     }});
  // 6. Flip a literal in an UNSAT core: the core must contain exactly
  // the goal's negated activation literal.
  Battery.push_back({"flip-core-literal", [&](std::string &T) {
                       return editFirstLine(
                           T,
                           [&](const std::string &Ln) {
                             return startsWith(Ln, "u ") &&
                                    Ln.find(" -") != std::string::npos;
                           },
                           [](const std::string &Ln) {
                             std::string Out = Ln;
                             size_t Neg = Out.find(" -");
                             Out.erase(Neg + 1, 1); // "-N" -> "N"
                             return Out;
                           });
                     }});
  // 7. Stale fingerprint: the header claims a different request key than
  // the trailer (the shape a stale store entry would have).
  Battery.push_back({"stale-fingerprint", [&](std::string &T) {
                       return editFirstLine(
                           T,
                           [&](const std::string &Ln) {
                             return startsWith(Ln, "fingerprint ");
                           },
                           [](const std::string &) {
                             return std::string("fingerprint ") +
                                    std::string(32, 'f');
                           });
                     }});

  size_t Accepted = 0;
  for (const Tamper &Tm : Battery) {
    std::string Bad = Good;
    ASSERT_TRUE(Tm.Apply(Bad)) << Tm.Name << ": corruption not applicable";
    ASSERT_NE(Bad, Good) << Tm.Name;
    cert::VerifyResult V = cert::verifyCertificate(Bad, {});
    if (V.Ok)
      ++Accepted;
    EXPECT_FALSE(V.Ok) << Tm.Name << " was accepted";
    // Located diagnostic: every rejection names the damaged line.
    EXPECT_NE(V.Diagnostic.find("line "), std::string::npos)
        << Tm.Name << ": diagnostic carries no location: " << V.Diagnostic;

    // The standalone binary agrees (exit 1 = rejected), when available.
    int Exit = runCertcheckBinary(Bad);
    if (Exit >= 0) {
      EXPECT_EQ(Exit, 1) << Tm.Name << " through leapfrog-certcheck";
    }
  }
  EXPECT_EQ(Accepted, 0u);

  // And the untampered artifact still passes the binary (exit 0), pinned.
  int Exit = runCertcheckBinary(Good, Run.FingerprintHex);
  if (Exit >= 0) {
    EXPECT_EQ(Exit, 0);
  }
}

//===----------------------------------------------------------------------===//
// Differential acceptance sweep: registry studies + the corpus pairs,
// across jobs x backend. Every Equivalent verdict must carry a
// certcheck-accepted certificate, and the certified decision stream must
// be bit-identical to the uncertified one.
//===----------------------------------------------------------------------===//

struct SweepConfig {
  size_t Jobs;
  bool Shim; ///< false = bitblast, true = smtlib:<shim> (certify promotes
             ///< it to crosscheck around the same shim).
};

void expectDecisionIdentical(const CheckRequest &Req, const CheckResult &A,
                             const CheckResult &B, const std::string &Label) {
  EXPECT_EQ(A.V, B.V) << Label;
  EXPECT_EQ(A.FailureReason, B.FailureReason) << Label;
  EXPECT_EQ(A.Stats.Iterations, B.Stats.Iterations) << Label;
  EXPECT_EQ(A.Stats.Extends, B.Stats.Extends) << Label;
  EXPECT_EQ(A.Stats.Skips, B.Stats.Skips) << Label;
  EXPECT_EQ(A.Stats.FinalConjuncts, B.Stats.FinalConjuncts) << Label;
  if (A.V == Verdict::Equivalent) {
    EXPECT_EQ(A.Certificate.str(Req.Left, Req.Right),
              B.Certificate.str(Req.Left, Req.Right))
        << Label;
  }
}

/// Runs every sweep configuration (jobs {1,2} x backend {bitblast,
/// smtlib:shim}) over \p Req, asserting that certified decisions are
/// bit-identical to the uncertified baseline and that every Equivalent
/// verdict yields a verifying certificate. \p ShimCap, when nonzero,
/// caps MaxIterations for the shim legs (and their baselines): the
/// external pipe re-solves the whole multiplexed assertion set per
/// query, so search-heavy pairs would take minutes per leg there while
/// a deterministic ResourceLimit exercises the same certified pipeline.
void sweepOnePair(const std::string &Label, const CheckRequest &Req,
                  size_t ShimCap, size_t &Equivalents) {
  const SweepConfig Configs[] = {
      {1, false}, {2, false}, {1, true}, {2, true}};
  std::string Shim = shimPath();

  CheckRequest ShimReq = Req;
  if (ShimCap)
    ShimReq.Options.MaxIterations = ShimCap;

  // The uncertified baselines, per jobs level and budget (backend never
  // changes decisions; crosscheck asserts that internally per query).
  CheckResult Baseline[3], ShimBaseline[3];
  for (size_t J : {size_t(1), size_t(2)}) {
    EngineConfig Cfg;
    Cfg.Jobs = J;
    std::string Err;
    std::unique_ptr<Engine> E = Engine::create(Cfg, &Err);
    ASSERT_NE(E, nullptr) << Err;
    Baseline[J] = E->check(Req);
    ShimBaseline[J] = ShimCap ? E->check(ShimReq) : Baseline[J];
  }
  expectDecisionIdentical(Req, Baseline[1], Baseline[2],
                          Label + " jobs 1 vs 2, uncertified");

  for (const SweepConfig &C : Configs) {
    if (C.Shim && Shim.empty())
      continue; // the shim leg needs the binary CTest exports
    std::string Backend = C.Shim ? "smtlib:" + Shim : "bitblast";
    std::string CfgLabel = Label + " [jobs=" + std::to_string(C.Jobs) +
                           " backend=" + (C.Shim ? "smtlib:shim" : "bitblast") +
                           "]";
    if (std::getenv("LEAPFROG_SWEEP_TRACE"))
      std::fprintf(stderr, "sweep: %s\n", CfgLabel.c_str());
    const CheckRequest &CfgReq = C.Shim ? ShimReq : Req;
    CertifiedRun Run = runCertified(CfgReq, C.Jobs, Backend);

    // Certified decisions == uncertified decisions, bit for bit.
    expectDecisionIdentical(CfgReq, Run.Res,
                            C.Shim ? ShimBaseline[C.Jobs] : Baseline[C.Jobs],
                            CfgLabel);

    if (Run.Res.V != Verdict::Equivalent)
      continue;
    ++Equivalents;
    ASSERT_FALSE(Run.CertText.empty()) << CfgLabel;
    cert::VerifyOptions Pin;
    Pin.ExpectFingerprintHex = Run.FingerprintHex;
    cert::VerifyResult V = cert::verifyCertificate(Run.CertText, Pin);
    EXPECT_TRUE(V.Ok) << CfgLabel << ": " << V.Diagnostic;
    EXPECT_GT(V.Stats.Goals, 0u) << CfgLabel;
  }
}

TEST(CertStream, AcceptanceSweepRegistryStudies) {
  size_t Equivalents = 0;
  for (const parsers::CaseStudy &Study : parsers::allCaseStudies()) {
    CheckOptions Options;
    // The big Applicability self-pairs get the ServeTest sweep's tiny
    // budget: a deterministic ResourceLimit exercises the certified
    // pipeline's bit-identity just as well, in a fraction of the time.
    Options.MaxIterations = Study.Category == "Applicability" ? 300 : 20000;
    // Variable-length parsing needs ~6600 queries — fine in-process,
    // minutes through the external pipe, hence the shim-leg cap.
    size_t ShimCap = Study.Name == "Variable-length parsing" ? 300 : 0;
    sweepOnePair(Study.Name, registryRequest(Study, Options), ShimCap,
                 Equivalents);
  }
  // The sweep must not be vacuous: the Utility studies decide Equivalent
  // under every configuration.
  EXPECT_GE(Equivalents, 8u);
}

TEST(CertStream, AcceptanceSweepCorpusPairs) {
  std::string Dir = corpusDir();
  if (Dir.empty())
    GTEST_SKIP() << "LEAPFROG_CORPUS_DIR not set (run under ctest)";

  struct Pair {
    const char *Label, *L, *R;
    bool Budgeted;
    size_t ShimCap;
  };
  // The 18-pair bench_corpus table (see tests/ServeTest.cpp): registry
  // twins plus the hand-written protocol studies' opt/bug variants.
  const Pair Pairs[] = {
      {"state_rearrangement", "state_rearrangement_left.lfp",
       "state_rearrangement_right.lfp", false, 0},
      {"variable_length_parsing", "variable_length_parsing_left.lfp",
       "variable_length_parsing_right.lfp", false, 300},
      {"header_initialization", "header_initialization_left.lfp",
       "header_initialization_right.lfp", false, 0},
      {"speculative_loop", "speculative_loop_left.lfp",
       "speculative_loop_right.lfp", false, 0},
      {"relational_verification", "relational_verification_left.lfp",
       "relational_verification_right.lfp", true, 0},
      {"external_filtering", "external_filtering_left.lfp",
       "external_filtering_right.lfp", true, 0},
      {"edge", "edge_left.lfp", "edge_right.lfp", true, 0},
      {"service_provider", "service_provider_left.lfp",
       "service_provider_right.lfp", true, 0},
      {"datacenter", "datacenter_left.lfp", "datacenter_right.lfp", true, 0},
      {"enterprise", "enterprise_left.lfp", "enterprise_right.lfp", true, 0},
      {"ipv6_chain vs opt", "ipv6_chain.lfp", "ipv6_chain_opt.lfp", false, 0},
      {"ipv6_chain vs bug", "ipv6_chain.lfp", "ipv6_chain_bug.lfp", false, 0},
      {"vlan_qinq vs opt", "vlan_qinq.lfp", "vlan_qinq_opt.lfp", false, 0},
      {"vlan_qinq vs bug", "vlan_qinq.lfp", "vlan_qinq_bug.lfp", false, 0},
      {"tunnel vs opt", "tunnel.lfp", "tunnel_opt.lfp", false, 0},
      {"tunnel vs bug", "tunnel.lfp", "tunnel_bug.lfp", false, 0},
      {"quic_varint vs opt", "quic_varint.lfp", "quic_varint_opt.lfp", false,
       0},
      {"quic_varint vs bug", "quic_varint.lfp", "quic_varint_bug.lfp", false,
       0},
  };

  size_t Equivalents = 0;
  for (const Pair &P : Pairs) {
    std::string LText, RText;
    ASSERT_TRUE(readFileAll(Dir + "/" + P.L, LText)) << P.Label;
    ASSERT_TRUE(readFileAll(Dir + "/" + P.R, RText)) << P.Label;
    CheckOptions Options;
    Options.MaxIterations = P.Budgeted ? 300 : 20000;
    CheckRequest Req;
    std::vector<std::string> Errors;
    ASSERT_TRUE(core::checkRequestFromSurface(LText, RText, Options, Req,
                                              Errors, P.L, P.R))
        << P.Label << ": " << (Errors.empty() ? "?" : Errors.front());
    sweepOnePair(P.Label, Req, P.ShimCap, Equivalents);
  }
  // Every equivalent corpus pair, under every configuration, produced a
  // verified certificate; the refuted/budgeted ones exercised the
  // no-certificate path.
  EXPECT_GE(Equivalents, 16u);
}

} // namespace
