//===- PgenTest.cpp - Hardware substrate and Figure 8 pipeline tests ------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the parser-gen substrate: TCAM entry matching, the table
/// interpreter, the compiler from P4 automata (including the state-merge
/// transformation for cross-state select dependencies), the
/// back-translation to P4 automata, and differential tests establishing
/// that every stage preserves the packet language on random packets —
/// the concrete counterpart of the symbolic translation-validation
/// experiment (§7.2, Figure 8).
///
//===----------------------------------------------------------------------===//

#include "pgen/TranslationValidation.h"

#include "core/Checker.h"
#include "p4a/Typing.h"

#include "p4a/Parser.h"
#include "p4a/Semantics.h"
#include "parsers/CaseStudies.h"

#include <gtest/gtest.h>

using namespace leapfrog;
using namespace leapfrog::pgen;

namespace {

//===----------------------------------------------------------------------===//
// TCAM primitives
//===----------------------------------------------------------------------===//

TEST(Tcam, EntryMatchingRespectsMask) {
  TcamEntry E;
  E.State = 3;
  E.MatchMask = {0xf0, 0x00};
  E.MatchValue = {0xa0, 0xff}; // Second byte is don't-care.
  E.AdvanceBytes = 2;
  std::vector<uint8_t> Bytes{0xab, 0x12, 0x34};
  EXPECT_TRUE(E.matches(3, Bytes, 0));
  EXPECT_FALSE(E.matches(2, Bytes, 0)); // Wrong state.
  EXPECT_FALSE(E.matches(3, Bytes, 1)); // 0x12 & f0 = 10 != a0.
  EXPECT_FALSE(E.matches(3, Bytes, 2)); // Would consume past the end.
}

TEST(Tcam, InterpreterRunsSimpleTable) {
  // State 0: first byte 0xff -> accept after 2 bytes; else reject.
  HwTable T;
  T.NumStates = 1;
  TcamEntry Accept;
  Accept.State = 0;
  Accept.MatchMask = {0xff, 0x00};
  Accept.MatchValue = {0xff, 0x00};
  Accept.NextState = HwAccept;
  Accept.AdvanceBytes = 2;
  T.Entries.push_back(Accept);

  auto Packet = [](std::initializer_list<uint8_t> Bytes) {
    Bitvector BV;
    for (uint8_t B : Bytes)
      BV = BV.concat(Bitvector::fromUint(B, 8));
    return BV;
  };
  EXPECT_TRUE(hwAccepts(T, Packet({0xff, 0x01})));
  EXPECT_FALSE(hwAccepts(T, Packet({0xfe, 0x01})));   // TCAM miss.
  EXPECT_FALSE(hwAccepts(T, Packet({0xff})));         // Truncated.
  EXPECT_FALSE(hwAccepts(T, Packet({0xff, 0x01, 0x02}))); // Trailing data.
}

TEST(Tcam, PrintLooksLikeFigure8) {
  HwTable T;
  TcamEntry E;
  E.State = 0;
  E.MatchMask = {0xff};
  E.MatchValue = {0x08};
  E.NextState = 3;
  E.AdvanceBytes = 14;
  T.Entries.push_back(E);
  std::string S = T.print();
  EXPECT_NE(S.find("Match:"), std::string::npos);
  EXPECT_NE(S.find("Next-State: 3/255"), std::string::npos);
  EXPECT_NE(S.find("Adv: 14"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Compiler
//===----------------------------------------------------------------------===//

/// Differential harness: P4A acceptance vs compiled-table acceptance on
/// exhaustive-or-random byte packets.
void expectLanguagePreserved(const p4a::Automaton &Aut,
                             const std::string &Start, size_t MaxBytes,
                             size_t SamplesPerLen = 64) {
  auto StartId = Aut.findState(Start);
  ASSERT_TRUE(StartId.has_value());
  CompileResult CR = compileToHw(Aut, *StartId);
  ASSERT_TRUE(CR.ok()) << CR.Diagnostics[0];

  uint64_t Seed = 0x5eed;
  for (size_t Len = 0; Len <= MaxBytes; ++Len) {
    for (size_t I = 0; I < SamplesPerLen; ++I) {
      // Deterministic pseudo-random packet.
      Bitvector Pkt;
      for (size_t B = 0; B < Len * 8; ++B) {
        Seed ^= Seed << 13;
        Seed ^= Seed >> 7;
        Seed ^= Seed << 17;
        Pkt.pushBack(Seed & 1);
      }
      bool P4 = p4a::accepts(Aut, p4a::StateRef::normal(*StartId),
                             p4a::Store(Aut), Pkt);
      bool Hw = hwAccepts(CR.Table, Pkt);
      ASSERT_EQ(P4, Hw) << "divergence on packet " << Pkt.str();
    }
  }
}

TEST(Compile, SimpleByteParser) {
  p4a::Automaton A = p4a::parseAutomatonOrDie(R"(
    state s {
      extract(h, 8);
      select(h[0:7]) { 0xff => accept  0x01 => t }
    }
    state t { extract(g, 8); goto accept }
  )");
  CompileResult CR = compileToHw(A, 0);
  ASSERT_TRUE(CR.ok());
  // Entries: two cases + fall-through reject for s; one for t.
  EXPECT_EQ(CR.Table.Entries.size(), 4u);
  expectLanguagePreserved(A, "s", 3);
}

TEST(Compile, MergesCrossStateSelectDependency) {
  // u selects on a header extracted by s: the compiler must merge u into
  // s's paths, widening the window to 2 bytes.
  p4a::Automaton A = p4a::parseAutomatonOrDie(R"(
    state s {
      extract(h, 8);
      select(h[0:0]) { 1 => u  0 => accept }
    }
    state u {
      extract(g, 8);
      select(h[7:7]) { 1 => accept  0 => reject }
    }
  )");
  CompileResult CR = compileToHw(A, 0);
  ASSERT_TRUE(CR.ok()) << CR.Diagnostics[0];
  // Some entry must have a 2-byte window (the merged s+u path).
  size_t MaxAdv = 0;
  for (const TcamEntry &E : CR.Table.Entries)
    MaxAdv = std::max(MaxAdv, E.AdvanceBytes);
  EXPECT_EQ(MaxAdv, 2u);
  expectLanguagePreserved(A, "s", 3, 256);
}

TEST(Compile, MergedShortPacketStillRejectsLikeAutomaton) {
  // The "commit" entries: a packet long enough to choose the merged case
  // but too short for the merged window must reject in both semantics.
  p4a::Automaton A = p4a::parseAutomatonOrDie(R"(
    state s {
      extract(h, 8);
      select(h[0:0]) { 1 => u  _ => accept }
    }
    state u {
      extract(g, 16);
      select(h[7:7]) { 1 => accept }
    }
  )");
  CompileResult CR = compileToHw(A, 0);
  ASSERT_TRUE(CR.ok()) << CR.Diagnostics[0];
  // 1 byte with the merge bit set: P4A commits to u then starves.
  Bitvector Pkt = Bitvector::fromUint(0x81, 8);
  EXPECT_FALSE(p4a::accepts(A, p4a::StateRef::normal(0), p4a::Store(A), Pkt));
  EXPECT_FALSE(hwAccepts(CR.Table, Pkt));
  expectLanguagePreserved(A, "s", 4, 128);
}

TEST(Compile, DiagnosesNonByteAlignment) {
  p4a::Automaton A = p4a::parseAutomatonOrDie(
      "state s { extract(h, 5); goto accept }");
  CompileResult CR = compileToHw(A, 0);
  EXPECT_FALSE(CR.ok());
}

TEST(Compile, DiagnosesAssignments) {
  p4a::Automaton A = p4a::parseAutomatonOrDie(R"(
    header g : 8;
    state s { extract(h, 8); g := h; goto accept }
  )");
  CompileResult CR = compileToHw(A, 0);
  EXPECT_FALSE(CR.ok());
}

TEST(Compile, EdgeParserCompiles) {
  p4a::Automaton A = parsers::gibbEdge();
  CompileResult CR = compileToHw(A, *A.findState("eth"));
  ASSERT_TRUE(CR.ok()) << CR.Diagnostics[0];
  // The merges multiply entries well beyond the state count.
  EXPECT_GT(CR.Table.Entries.size(), A.numStates());
  // Spot-check the language on random packets (short lengths cover the
  // eth/vlan/mpls prefixes).
  expectLanguagePreserved(A, "eth", 20, 16);
}

//===----------------------------------------------------------------------===//
// Back-translation
//===----------------------------------------------------------------------===//

void expectRoundTripPreserved(const p4a::Automaton &Aut,
                              const std::string &Start, size_t MaxBytes,
                              size_t SamplesPerLen = 32) {
  TranslationValidation TV = buildTranslationValidation(Aut, Start);
  ASSERT_TRUE(TV.ok()) << TV.Diagnostics[0];
  ASSERT_TRUE(p4a::isWellTyped(TV.Reconstructed));
  auto StartId = Aut.findState(Start);
  auto RecStart = TV.Reconstructed.findState(TV.ReconstructedStart);
  ASSERT_TRUE(RecStart.has_value());

  uint64_t Seed = 0xfeedface;
  for (size_t Len = 0; Len <= MaxBytes; ++Len)
    for (size_t I = 0; I < SamplesPerLen; ++I) {
      Bitvector Pkt;
      for (size_t B = 0; B < Len * 8; ++B) {
        Seed ^= Seed << 13;
        Seed ^= Seed >> 7;
        Seed ^= Seed << 17;
        Pkt.pushBack(Seed & 1);
      }
      bool Orig = p4a::accepts(Aut, p4a::StateRef::normal(*StartId),
                               p4a::Store(Aut), Pkt);
      bool Rec = p4a::accepts(TV.Reconstructed,
                              p4a::StateRef::normal(*RecStart),
                              p4a::Store(TV.Reconstructed), Pkt);
      ASSERT_EQ(Orig, Rec) << "round-trip divergence on " << Pkt.str();
    }
}

TEST(BackTranslate, SimpleParserRoundTrips) {
  p4a::Automaton A = p4a::parseAutomatonOrDie(R"(
    state s {
      extract(h, 8);
      select(h[0:7]) { 0xff => accept  0x01 => t }
    }
    state t { extract(g, 8); goto accept }
  )");
  expectRoundTripPreserved(A, "s", 3, 256);
}

TEST(BackTranslate, MergedParserRoundTrips) {
  p4a::Automaton A = p4a::parseAutomatonOrDie(R"(
    state s {
      extract(h, 8);
      select(h[0:0]) { 1 => u  0 => accept }
    }
    state u {
      extract(g, 8);
      select(h[7:7]) { 1 => accept  0 => reject }
    }
  )");
  expectRoundTripPreserved(A, "s", 3, 256);
}

TEST(BackTranslate, ReconstructionHasChunkStructure) {
  // The reconstructed Edge parser has continuation (chunk) states for the
  // merged ipv4+options windows.
  TranslationValidation TV = buildEdgeTranslationValidation();
  ASSERT_TRUE(TV.ok());
  bool HasContinuation = false;
  for (p4a::StateId Q = 0; Q < TV.Reconstructed.numStates(); ++Q)
    HasContinuation |= TV.Reconstructed.stateName(Q).find("_x") !=
                       std::string::npos;
  EXPECT_TRUE(HasContinuation);
}

TEST(BackTranslate, EdgeRoundTripsOnPackets) {
  // Concrete counterpart of the §7.2 experiment; the symbolic equivalence
  // proof lives in the bench harness (it takes minutes).
  expectRoundTripPreserved(parsers::gibbEdge(), "eth", 20, 8);
}

//===----------------------------------------------------------------------===//
// Symbolic translation validation on a small parser (fast end-to-end)
//===----------------------------------------------------------------------===//

TEST(TranslationValidation, SymbolicEquivalenceOnSmallParser) {
  p4a::Automaton A = p4a::parseAutomatonOrDie(R"(
    state s {
      extract(h, 8);
      select(h[0:0]) { 1 => u  0 => accept }
    }
    state u {
      extract(g, 8);
      select(h[7:7]) { 1 => accept  0 => reject }
    }
  )");
  TranslationValidation TV = buildTranslationValidation(A, "s");
  ASSERT_TRUE(TV.ok());
  core::CheckResult Res = core::checkLanguageEquivalence(
      TV.Original, TV.OriginalStart, TV.Reconstructed,
      TV.ReconstructedStart);
  EXPECT_TRUE(Res.equivalent()) << Res.FailureReason;
}

TEST(TranslationValidation, CatchesMiscompilation) {
  // Corrupt one table entry's next-state; back-translation then yields a
  // parser the checker must distinguish from the original.
  p4a::Automaton A = p4a::parseAutomatonOrDie(R"(
    state s {
      extract(h, 8);
      select(h[0:7]) { 0xff => accept  0x01 => t }
    }
    state t { extract(g, 8); goto accept }
  )");
  CompileResult CR = compileToHw(A, 0);
  ASSERT_TRUE(CR.ok());
  // Flip the first accept into a reject.
  bool Flipped = false;
  for (TcamEntry &E : CR.Table.Entries)
    if (!Flipped && E.NextState == HwAccept) {
      E.NextState = HwReject;
      Flipped = true;
    }
  ASSERT_TRUE(Flipped);
  BackTranslateResult Back = backTranslate(CR.Table);
  ASSERT_TRUE(Back.ok());
  core::CheckResult Res = core::checkLanguageEquivalence(
      A, "s", Back.Aut, Back.StartState);
  EXPECT_EQ(Res.V, core::Verdict::NotEquivalent)
      << "the miscompilation went undetected";
}

} // namespace
