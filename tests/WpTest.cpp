//===- WpTest.cpp - Weakest precondition and reachability tests -----------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the two pillars under Algorithm 1: the template abstraction of
/// §5.1 (leap sizes, abstract successors, reachability) and the symbolic
/// weakest precondition of Lemmas 4.8/4.9 and Theorem 5.7. The central
/// property test is the WP characterization itself, checked concretely:
///
///   c1 ⟦⋀WP(ψ)⟧ c2   ⟺   ∀w ∈ {0,1}^♯(c1,c2): δ*(c1,w) ⟦ψ⟧ δ*(c2,w)
///
/// on random configurations of small automata, in both leap and bit-level
/// modes.
///
//===----------------------------------------------------------------------===//

#include "core/WeakestPrecondition.h"

#include "p4a/Parser.h"

#include <gtest/gtest.h>

using namespace leapfrog;
using namespace leapfrog::core;
using namespace leapfrog::logic;

namespace {

//===----------------------------------------------------------------------===//
// Templates and leap sizes (Definitions 4.7, 5.3)
//===----------------------------------------------------------------------===//

TEST(Templates, EnumerationCoversBufferLengths) {
  p4a::Automaton A = p4a::parseAutomatonOrDie(R"(
    state s { extract(h, 3); goto t }
    state t { extract(g, 2); goto accept }
  )");
  auto Ts = allTemplates(A);
  // 3 (s) + 2 (t) + accept + reject.
  EXPECT_EQ(Ts.size(), 7u);
}

TEST(Templates, LeapSizeCases) {
  p4a::Automaton A = p4a::parseAutomatonOrDie(
      "state s { extract(h, 5); goto accept }");
  p4a::Automaton B = p4a::parseAutomatonOrDie(
      "state t { extract(g, 3); goto accept }");
  auto NS = [](size_t N) { return Template{p4a::StateRef::normal(0), N}; };

  // Both running: min of deficits.
  EXPECT_EQ(leapSize(A, B, {NS(0), NS(0)}), 3u);
  EXPECT_EQ(leapSize(A, B, {NS(4), NS(0)}), 1u);
  EXPECT_EQ(leapSize(A, B, {NS(2), NS(2)}), 1u);
  // One side terminal: the other side's deficit.
  EXPECT_EQ(leapSize(A, B, {Template::accept(), NS(1)}), 2u);
  EXPECT_EQ(leapSize(A, B, {NS(1), Template::reject()}), 4u);
  // Both terminal: one step.
  EXPECT_EQ(leapSize(A, B, {Template::accept(), Template::reject()}), 1u);
}

TEST(Templates, SuccessorsBufferOrTransition) {
  p4a::Automaton A = p4a::parseAutomatonOrDie(R"(
    state s { extract(h, 3); select(h[0:0]) { 0 => s  1 => accept } }
  )");
  Template S0{p4a::StateRef::normal(0), 0};
  // Buffering: one deterministic successor.
  auto Buf = templateSuccessors(A, S0, 2);
  ASSERT_EQ(Buf.size(), 1u);
  EXPECT_EQ(Buf[0].N, 2u);
  // Filling: all syntactic successors at buffer 0 (incl. fall-through
  // reject suppressed? h[0:0] covers 0/1 but select fall-through is only
  // suppressed by a wildcard case, so reject appears).
  auto Fill = templateSuccessors(A, S0, 3);
  EXPECT_EQ(Fill.size(), 3u);
  // Terminal: collapses to reject.
  auto Term = templateSuccessors(A, Template::accept(), 1);
  ASSERT_EQ(Term.size(), 1u);
  EXPECT_TRUE(Term[0].Q.isReject());
}

TEST(Templates, ReachSoundOnConcreteRuns) {
  // Every concrete joint run's template pair must appear in reach.
  p4a::Automaton A = p4a::parseAutomatonOrDie(R"(
    state s { extract(h, 2); select(h[0:0]) { 0 => s  1 => accept } }
  )");
  p4a::Automaton B = p4a::parseAutomatonOrDie(R"(
    state t { extract(g, 1); goto u }
    state u { extract(f, 1); select(f[0:0]) { 0 => t  _ => accept } }
  )");
  TemplatePair Start{Template{p4a::StateRef::normal(0), 0},
                     Template{p4a::StateRef::normal(0), 0}};
  for (bool Leaps : {false, true}) {
    auto Reach = computeReach(A, B, Start, Leaps);
    auto Contains = [&Reach](TemplatePair TP) {
      for (TemplatePair P : Reach)
        if (P == TP)
          return true;
      return false;
    };
    // Walk all packets of length ≤ 6 from zero stores; at leap boundaries
    // the joint floor must be in the reach set. (Bit-level reach covers
    // every intermediate floor, so check each step in that mode.)
    for (uint64_t Raw = 0; Raw < 64; ++Raw) {
      Bitvector W = Bitvector::fromUint(Raw, 6);
      p4a::Config C1 = p4a::initialConfig(p4a::StateRef::normal(0),
                                          p4a::Store(A));
      p4a::Config C2 = p4a::initialConfig(p4a::StateRef::normal(0),
                                          p4a::Store(B));
      size_t I = 0;
      while (I < W.size()) {
        size_t K = Leaps ? leapSize(A, B, TemplatePair{
                                              Template::ofConfig(C1),
                                              Template::ofConfig(C2)})
                         : 1;
        for (size_t J = 0; J < K && I < W.size(); ++J, ++I) {
          C1 = p4a::step(A, C1, W.bit(I));
          C2 = p4a::step(B, C2, W.bit(I));
        }
        if (I <= W.size()) {
          EXPECT_TRUE(Contains(TemplatePair{Template::ofConfig(C1),
                                            Template::ofConfig(C2)}))
              << "missing floor after " << I << " bits of " << W.str()
              << (Leaps ? " (leaps)" : " (bit)");
        }
      }
    }
  }
}

TEST(Templates, AllPairsIsFullProduct) {
  p4a::Automaton A = p4a::parseAutomatonOrDie(
      "state s { extract(h, 2); goto accept }");
  EXPECT_EQ(allPairs(A, A).size(), 16u); // (2+2)^2 templates.
}

//===----------------------------------------------------------------------===//
// Symbolic execution helpers
//===----------------------------------------------------------------------===//

TEST(SymExec, PostStoreReflectsExtractsAndAssigns) {
  p4a::Automaton A = p4a::parseAutomatonOrDie(R"(
    header c : 4;
    state s { extract(a, 2); extract(b, 2); c := b ++ a; goto accept }
  )");
  Ctx C{&A, &A, TemplatePair{Template{p4a::StateRef::normal(0), 0},
                             Template{p4a::StateRef::normal(0), 0}}};
  BitExprRef Input = BitExpr::mkVar("in", 4);
  auto Post = symExecOps(C, Side::Left, A, 0, Input);
  // a = in[0:1], b = in[2:3], c = b ++ a = in[2:3] ++ in[0:1].
  EXPECT_EQ(Post[*A.findHeader("a")]->str(), "$in[0:1]");
  EXPECT_EQ(Post[*A.findHeader("b")]->str(), "$in[2:3]");
  EXPECT_EQ(Post[*A.findHeader("c")]->str(), "($in[2:3] ++ $in[0:1])");
}

TEST(SymExec, TransitionConditionFirstMatch) {
  p4a::Automaton A = p4a::parseAutomatonOrDie(R"(
    state s {
      extract(h, 2);
      select(h[0:0]) { 0 => accept  _ => s }
    }
  )");
  Ctx C{&A, &A, TemplatePair{Template{p4a::StateRef::normal(0), 0},
                             Template{p4a::StateRef::normal(0), 0}}};
  std::vector<BitExprRef> Post{
      BitExpr::mkSlice(BitExpr::mkVar("in", 2), 0, 1)};
  PureRef ToAccept =
      transitionCondition(C, Side::Left, A, 0, Post, p4a::StateRef::accept());
  PureRef ToS = transitionCondition(C, Side::Left, A, 0, Post,
                                    p4a::StateRef::normal(0));
  PureRef ToReject =
      transitionCondition(C, Side::Left, A, 0, Post, p4a::StateRef::reject());
  // The wildcard catch-all makes fall-through unreachable.
  EXPECT_EQ(ToReject->kind(), Pure::Kind::False);
  // First-match: s is reached only when the first case does NOT match.
  EXPECT_NE(ToAccept->kind(), Pure::Kind::False);
  EXPECT_NE(ToS->kind(), Pure::Kind::True);
}

TEST(SymExec, GotoConditionIsConstant) {
  p4a::Automaton A = p4a::parseAutomatonOrDie(
      "state s { extract(h, 2); goto accept }");
  Ctx C{&A, &A, TemplatePair{Template{p4a::StateRef::normal(0), 0},
                             Template{p4a::StateRef::normal(0), 0}}};
  std::vector<BitExprRef> Post{BitExpr::mkVar("in", 2)};
  EXPECT_EQ(transitionCondition(C, Side::Left, A, 0, Post,
                                p4a::StateRef::accept())
                ->kind(),
            Pure::Kind::True);
  EXPECT_EQ(transitionCondition(C, Side::Left, A, 0, Post,
                                p4a::StateRef::reject())
                ->kind(),
            Pure::Kind::False);
}

//===----------------------------------------------------------------------===//
// The WP characterization, checked concretely (Lemma 4.9 / Theorem 5.7)
//===----------------------------------------------------------------------===//

struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed * 0x9e3779b97f4a7c15ull + 1) {}
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
  size_t below(size_t N) { return size_t(next() % N); }
};

class WpCharacterization
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(WpCharacterization, MatchesMultiStepSemantics) {
  auto [Seed, UseLeaps] = GetParam();
  Rng R{uint64_t(Seed)};

  p4a::Automaton A = p4a::parseAutomatonOrDie(R"(
    state s { extract(a, 2); select(a[0:0]) { 0 => s  1 => accept } }
  )");
  p4a::Automaton B = p4a::parseAutomatonOrDie(R"(
    header d : 1;
    state t { extract(c, 1); d := c; select(d[0:0]) { 1 => accept  _ => t } }
  )");

  // A random goal over a random guard.
  auto TemplatesA = allTemplates(A);
  auto TemplatesB = allTemplates(B);
  TemplatePair GoalTP{TemplatesA[R.below(TemplatesA.size())],
                      TemplatesB[R.below(TemplatesB.size())]};
  // Goal: either ⊥ or an equation between a left-header slice and a
  // right-header (padded), both meaningful under any guard.
  PureRef Phi;
  if (R.below(3) == 0) {
    Phi = Pure::mkFalse();
  } else {
    Phi = Pure::mkEq(
        BitExpr::mkSlice(BitExpr::mkHdr(Side::Left, 0), 0, 0),
        BitExpr::mkHdr(Side::Right, *B.findHeader("d")));
  }
  GuardedFormula Goal{GoalTP, Phi};

  std::vector<TemplatePair> Sources = allPairs(A, B);
  size_t Fresh = 0;
  std::vector<GuardedFormula> Wp =
      weakestPrecondition(A, B, Goal, Sources, UseLeaps, Fresh);

  // Concrete check on random configurations.
  for (int Trial = 0; Trial < 40; ++Trial) {
    // Random configuration pair (uniform over templates, stores, buffers).
    Template TL = TemplatesA[R.below(TemplatesA.size())];
    Template TR = TemplatesB[R.below(TemplatesB.size())];
    p4a::Config C1{TL.Q, p4a::Store::fromBits(
                             A, Bitvector::fromUint(R.next(), 2)),
                   Bitvector::fromUint(R.next(), TL.N)};
    p4a::Config C2{TR.Q, p4a::Store::fromBits(
                             B, Bitvector::fromUint(R.next(), 2)),
                   Bitvector::fromUint(R.next(), TR.N)};

    size_t K = UseLeaps ? leapSize(A, B, TemplatePair{TL, TR}) : 1;

    // Right side of the characterization: all K-bit continuations land in
    // ψ-satisfying pairs.
    bool AllSteps = true;
    for (uint64_t W = 0; W < (uint64_t(1) << K); ++W) {
      Bitvector Word = Bitvector::fromUint(W, K);
      p4a::Config D1 = p4a::multiStep(A, C1, Word);
      p4a::Config D2 = p4a::multiStep(B, C2, Word);
      AllSteps &= holdsConcretely(A, B, Goal, D1, D2);
    }

    // Left side: the configuration pair satisfies every WP formula.
    bool AllWp = true;
    for (const GuardedFormula &G : Wp)
      AllWp &= holdsConcretely(A, B, G, C1, C2);

    ASSERT_EQ(AllWp, AllSteps)
        << "WP characterization violated (seed " << Seed << ", leaps "
        << UseLeaps << ", trial " << Trial << ") at guard ["
        << A.refName(TL.Q) << "," << TL.N << "]x[" << B.refName(TR.Q) << ","
        << TR.N << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, WpCharacterization,
    ::testing::Combine(::testing::Range(0, 40), ::testing::Bool()),
    [](const ::testing::TestParamInfo<WpCharacterization::ParamType> &Info) {
      return "seed" + std::to_string(std::get<0>(Info.param)) +
             (std::get<1>(Info.param) ? "_leaps" : "_bit");
    });

} // namespace
