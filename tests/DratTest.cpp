//===- DratTest.cpp - DRUP proof logging/checking tests --------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the proof-reconstruction layer (paper §6.4's future-work item):
/// UNSAT answers of the CDCL solver must come with DRUP proofs that an
/// independent checker accepts, bogus proofs must be rejected, and the
/// certifying solver must carry a full equivalence-checking run.
///
//===----------------------------------------------------------------------===//

#include "smt/Drat.h"

#include "core/Checker.h"
#include "parsers/CaseStudies.h"
#include "smt/Solver.h"

#include <gtest/gtest.h>

using namespace leapfrog;
using namespace leapfrog::smt;

namespace {

Lit pos(Var V) { return Lit::mk(V, false); }
Lit neg(Var V) { return Lit::mk(V, true); }

/// Solves with proof logging and returns the proof; asserts the expected
/// verdict on the way.
DratProof proveUnsat(size_t NumVars,
                     const std::vector<std::vector<Lit>> &Clauses) {
  SatSolver S;
  DratProof P;
  S.setProofLog(&P);
  for (size_t I = 0; I < NumVars; ++I)
    (void)S.newVar();
  bool Ok = true;
  for (const auto &C : Clauses)
    Ok = S.addClause(C) && Ok;
  EXPECT_FALSE(Ok && S.solve()) << "instance is unexpectedly satisfiable";
  return P;
}

TEST(Drat, ContradictoryUnitsProduceCheckingProof) {
  DratProof P = proveUnsat(1, {{pos(0)}, {neg(0)}});
  EXPECT_TRUE(P.claimsUnsat());
  DratChecker C;
  std::string Error;
  EXPECT_TRUE(C.check(P, &Error)) << Error;
}

TEST(Drat, PropagationConflictProducesCheckingProof) {
  // a; a->b; a->~b — conflict is reached by pure propagation.
  DratProof P =
      proveUnsat(2, {{pos(0)}, {neg(0), pos(1)}, {neg(0), neg(1)}});
  EXPECT_TRUE(P.claimsUnsat());
  DratChecker C;
  std::string Error;
  EXPECT_TRUE(C.check(P, &Error)) << Error;
}

TEST(Drat, PigeonHoleProofChecks) {
  // PHP(4,3): needs genuine clause learning, so the proof has real lemmas.
  std::vector<std::vector<Lit>> Clauses;
  auto P = [](int I, int H) { return Var(I * 3 + H); };
  for (int I = 0; I < 4; ++I)
    Clauses.push_back({pos(P(I, 0)), pos(P(I, 1)), pos(P(I, 2))});
  for (int H = 0; H < 3; ++H)
    for (int I = 0; I < 4; ++I)
      for (int J = I + 1; J < 4; ++J)
        Clauses.push_back({neg(P(I, H)), neg(P(J, H))});
  DratProof Proof = proveUnsat(12, Clauses);
  EXPECT_TRUE(Proof.claimsUnsat());
  EXPECT_GT(Proof.Lemmas.size(), 1u) << "expected learnt clauses";
  DratChecker C;
  std::string Error;
  EXPECT_TRUE(C.check(Proof, &Error)) << Error;
  EXPECT_GT(C.stats().LemmasChecked, 0u);
}

TEST(Drat, SatInstanceClaimsNoUnsat) {
  SatSolver S;
  DratProof P;
  S.setProofLog(&P);
  Var A = S.newVar(), B = S.newVar();
  S.addClause(pos(A), pos(B));
  S.addClause(neg(A), pos(B));
  EXPECT_TRUE(S.solve());
  EXPECT_FALSE(P.claimsUnsat());
}

TEST(Drat, ProofWithoutEmptyClauseIsRejected) {
  DratProof P;
  P.Inputs = {{pos(0), pos(1)}};
  P.Lemmas = {};
  DratChecker C;
  std::string Error;
  EXPECT_FALSE(C.check(P, &Error));
  EXPECT_NE(Error.find("no empty clause"), std::string::npos) << Error;
}

TEST(Drat, NonRupLemmaIsRejected) {
  // {a ∨ b} does not entail {a}; a proof asserting it must fail.
  DratProof P;
  P.Inputs = {{pos(0), pos(1)}};
  P.Lemmas = {{pos(0)}, {}};
  DratChecker C;
  std::string Error;
  EXPECT_FALSE(C.check(P, &Error));
  EXPECT_NE(Error.find("not RUP"), std::string::npos) << Error;
}

TEST(Drat, UnjustifiedEmptyClauseIsRejected) {
  // The database is satisfiable; claiming the empty clause is bogus.
  DratProof P;
  P.Inputs = {{pos(0), pos(1)}};
  P.Lemmas = {{}};
  DratChecker C;
  std::string Error;
  EXPECT_FALSE(C.check(P, &Error));
  EXPECT_NE(Error.find("empty clause"), std::string::npos) << Error;
}

TEST(Drat, TamperedLemmaLiteralIsCaught) {
  // Take a genuine proof and flip a literal inside the first real lemma;
  // the mutated lemma (or a later one depending on it) must fail RUP.
  std::vector<std::vector<Lit>> Clauses = {
      {pos(0), pos(1)}, {pos(0), neg(1)}, {neg(0), pos(1)}, {neg(0), neg(1)}};
  DratProof P = proveUnsat(2, Clauses);
  ASSERT_TRUE(P.claimsUnsat());
  DratChecker C;
  std::string Error;
  ASSERT_TRUE(C.check(P, &Error)) << Error;

  // Replace every lemma with an unjustified unit over a fresh variable.
  DratProof Tampered = P;
  bool Mutated = false;
  for (auto &L : Tampered.Lemmas) {
    if (!L.empty()) {
      L = {pos(7)};
      Mutated = true;
      break;
    }
  }
  if (!Mutated)
    GTEST_SKIP() << "proof has only the empty clause; nothing to tamper";
  EXPECT_FALSE(C.check(Tampered, &Error));
}

TEST(Drat, TautologicalLemmaIsAccepted) {
  // x ∨ ¬x is vacuously RUP (assuming its negation is itself a conflict);
  // accepting it must not corrupt the remaining replay.
  DratProof P;
  P.Inputs = {{pos(0)}, {neg(0)}};
  P.Lemmas = {{pos(1), neg(1)}, {}};
  DratChecker C;
  std::string Error;
  EXPECT_TRUE(C.check(P, &Error)) << Error;
}

TEST(Drat, TextualFormatIsDimacsLike) {
  DratProof P;
  P.Inputs = {{pos(0)}, {neg(0)}};
  P.Lemmas = {{neg(1), pos(2)}, {}};
  std::string Text = P.str();
  EXPECT_NE(Text.find("c DRUP proof"), std::string::npos);
  EXPECT_NE(Text.find("-2 3 0"), std::string::npos);
  // The empty clause renders as a bare terminating zero.
  EXPECT_NE(Text.find("\n0\n"), std::string::npos);
}

TEST(Drat, SolveWithCheckedProofWrapper) {
  DratProof P;
  bool Sat = solveWithCheckedProof(
      1, {{pos(0)}, {neg(0)}}, &P);
  EXPECT_FALSE(Sat);
  EXPECT_TRUE(P.claimsUnsat());
  EXPECT_TRUE(solveWithCheckedProof(2, {{pos(0), pos(1)}}));
}

//===----------------------------------------------------------------------===//
// Randomized: every UNSAT verdict must come with a checking proof
//===----------------------------------------------------------------------===//

struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed * 0x9e3779b97f4a7c15ull + 1) {}
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
  size_t below(size_t N) { return size_t(next() % N); }
};

class DratFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DratFuzz, UnsatAnswersCarryCheckingProofs) {
  Rng R{uint64_t(GetParam())};
  int NumVars = 4 + int(R.below(8));
  // Denser than the phase transition so a good share comes out UNSAT.
  size_t NumClauses = size_t(NumVars) * (4 + R.below(3));
  std::vector<std::vector<Lit>> Clauses;
  for (size_t I = 0; I < NumClauses; ++I) {
    std::vector<Lit> C;
    size_t Len = 1 + R.below(3);
    for (size_t K = 0; K < Len; ++K)
      C.push_back(Lit::mk(Var(R.below(NumVars)), R.below(2)));
    Clauses.push_back(std::move(C));
  }

  SatSolver S;
  DratProof P;
  S.setProofLog(&P);
  for (int V = 0; V < NumVars; ++V)
    (void)S.newVar();
  bool Ok = true;
  for (const auto &C : Clauses)
    Ok = S.addClause(C) && Ok;
  if (Ok && S.solve())
    return; // SAT: model correctness is covered by SatTest.
  ASSERT_TRUE(P.claimsUnsat())
      << "UNSAT answer without an empty-clause lemma, seed " << GetParam();
  DratChecker C;
  std::string Error;
  EXPECT_TRUE(C.check(P, &Error))
      << "seed " << GetParam() << ": " << Error;
}

INSTANTIATE_TEST_SUITE_P(Random, DratFuzz, ::testing::Range(0, 300));

//===----------------------------------------------------------------------===//
// End-to-end: a certifying solver underneath the equivalence checker
//===----------------------------------------------------------------------===//

TEST(Drat, CertifyingSolverCarriesEquivalenceRun) {
  BitBlastSolver Solver;
  Solver.CertifyUnsat = true;
  core::CheckOptions O;
  O.Solver = &Solver;
  core::CheckResult Res = core::checkLanguageEquivalence(
      parsers::mplsReference(), "q1", parsers::mplsVectorized(), "q3", O);
  EXPECT_TRUE(Res.equivalent());
  // Every validity answer is an UNSAT answer underneath, so certification
  // must have fired and every proof must have replayed (a failure aborts).
  EXPECT_GT(Solver.stats().CertifiedUnsat, 0u);
  EXPECT_EQ(Solver.stats().CertifiedUnsat, Solver.stats().UnsatAnswers);
}

TEST(Drat, CertifyingSolverAgreesOnInequivalence) {
  BitBlastSolver Solver;
  Solver.CertifyUnsat = true;
  core::CheckOptions O;
  O.Solver = &Solver;
  core::CheckResult Res = core::checkLanguageEquivalence(
      parsers::sloppyEthernetIp(), "parse_eth", parsers::strictEthernetIp(),
      "parse_eth", O);
  EXPECT_EQ(Res.V, core::Verdict::NotEquivalent);
}

} // namespace
