//===- header_initialization.cpp - Catching uninitialized-header reads ----===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Reproduces the "Header initialization" case study (§7.1, Figure 9): a
// parser for Ethernet with an optional VLAN tag. When the tag is absent
// the parser assigns a default value before the common parse_udp state
// branches on it. The property — "the set of accepted packets is
// independent of the initial store" — is exactly self-equivalence with
// independently quantified initial stores, which is what
// checkLanguageEquivalence(P, q, P, q) asks.
//
// The buggy variant omits the default assignment; its accept/reject
// decision can then leak bits of the uninitialized header, and the
// self-comparison fails. This is the class of bug behind the router DoS
// story in the paper's introduction: state influenced by data the
// programmer never initialized.
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"
#include "parsers/CaseStudies.h"

#include <cstdio>

using namespace leapfrog;

static void report(const char *Name, const core::CheckResult &Res) {
  std::printf("%-24s %s", Name,
              Res.equivalent()
                  ? "store-independent (accepts the same packets for every "
                    "initial store)\n"
                  : "DEPENDS on uninitialized headers\n");
  if (!Res.equivalent())
    std::printf("  %s\n", Res.FailureReason.c_str());
}

int main() {
  // The correct parser: default_vlan assigns vlan := 0 on the untagged
  // path, so parse_udp's branch reads initialized data on every path.
  {
    p4a::Automaton P = parsers::vlanParser();
    core::CheckResult Res =
        core::checkLanguageEquivalence(P, "parse_eth", P, "parse_eth");
    report("vlanParser:", Res);
    if (!Res.equivalent())
      return 1;
    // The proof is a reusable certificate.
    core::ReplayResult Replay = core::replayCertificate(P, P,
                                                        Res.Certificate);
    std::printf("  certificate: %s (%zu obligations)\n",
                Replay.Valid ? "replayed OK" : "REJECTED",
                Replay.ObligationsChecked);
  }

  // The buggy parser: no default assignment. Two runs from different
  // initial stores can disagree on the same packet — the checker finds
  // the offending conjunct.
  {
    p4a::Automaton P = parsers::vlanParserBuggy();
    core::CheckResult Res =
        core::checkLanguageEquivalence(P, "parse_eth", P, "parse_eth");
    report("vlanParserBuggy:", Res);
    if (Res.equivalent())
      return 1; // The bug went undetected — that would be a real failure.
  }
  return 0;
}
