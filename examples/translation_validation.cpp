//===- translation_validation.cpp - The Figure 8 pipeline, end to end -----===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Reproduces the paper's flagship case study (§7.2, Figure 8) on a
// digestible parser: compile a P4 automaton to TCAM-style hardware parser
// tables with an untrusted compiler, translate the tables back into a P4
// automaton, and let the equivalence checker validate the round trip.
// Then inject a miscompilation into the table and show the checker
// catching it — the scenario translation validation exists for.
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"
#include "p4a/Parser.h"
#include "pgen/TranslationValidation.h"

#include <cstdio>

using namespace leapfrog;

int main() {
  // A two-protocol parser whose second state branches on a field
  // extracted by the *first* state — exactly the shape that forces the
  // hardware compiler to merge states and widen its lookup window.
  p4a::Automaton Parser = p4a::parseAutomatonOrDie(R"(
    state ether {
      extract(dst, 8);
      extract(type, 8);
      select(type[0:7]) {
        0x08 => ipv4
        0x86 => ipv6
      }
    }
    state ipv4 {
      extract(v4, 16);
      select(dst[0:0]) {     # branches on ether's header!
        0 => accept
        1 => reject
      }
    }
    state ipv6 {
      extract(v6, 32);
      goto accept
    }
  )");

  pgen::TranslationValidation TV =
      pgen::buildTranslationValidation(Parser, "ether");
  if (!TV.ok()) {
    for (const std::string &D : TV.Diagnostics)
      std::printf("pipeline error: %s\n", D.c_str());
    return 1;
  }

  std::printf("=== compiled TCAM program (%zu entries) ===\n",
              TV.Table.Entries.size());
  std::printf("%s\n", TV.Table.print().c_str());

  std::printf("=== back-translated parser ===\n%s\n",
              TV.Reconstructed.print().c_str());

  core::CheckResult Res = core::checkLanguageEquivalence(
      TV.Original, TV.OriginalStart, TV.Reconstructed,
      TV.ReconstructedStart);
  std::printf("translation validation: %s (%zu conjuncts, %zu queries)\n",
              Res.equivalent() ? "PASSED" : "FAILED",
              Res.Stats.FinalConjuncts, Res.Stats.SmtQueries);
  if (!Res.equivalent())
    return 1;

  // Now sabotage the compiler output: reroute the first IPv6 entry to the
  // IPv4 hardware state, and re-validate.
  pgen::HwTable Bad = TV.Table;
  for (pgen::TcamEntry &E : Bad.Entries)
    if (E.AdvanceBytes == 4) { // The ipv6 window.
      E.AdvanceBytes = 2;
      break;
    }
  pgen::BackTranslateResult Back = pgen::backTranslate(Bad);
  if (!Back.ok()) {
    std::printf("(sabotaged table no longer back-translates: %s)\n",
                Back.Diagnostics[0].c_str());
    return 0;
  }
  core::CheckResult Bad2 = core::checkLanguageEquivalence(
      TV.Original, TV.OriginalStart, Back.Aut, Back.StartState);
  std::printf("sabotaged table: %s\n",
              Bad2.equivalent()
                  ? "NOT CAUGHT (this is a bug!)"
                  : "miscompilation caught by the checker");
  return Bad2.equivalent() ? 1 : 0;
}
