//===- external_filtering.cpp - Equivalence modulo a packet filter --------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Reproduces the "External filtering" and "Relational verification" case
// studies (§7.1, Figure 10). A lenient parser treats every non-IPv4
// Ethernet type as IPv6; a strict parser rejects unknown types. As plain
// languages they differ — the checker says so. But the lenient parser is
// deployed behind a filter that drops packets whose final Ethernet type
// is neither IPv4 nor IPv6, and *modulo that filter* the two parsers
// agree: acceptance on the lenient side is qualified by a store
// predicate (AcceptanceMode::Qualified).
//
// The same machinery proves a store-relational property: whenever both
// parsers accept, their ether headers hold the same bits
// (AcceptanceMode::Custom with a correspondence conjunct).
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"
#include "parsers/CaseStudies.h"

#include <cstdio>

using namespace leapfrog;
using namespace leapfrog::core;
using namespace leapfrog::logic;

int main() {
  p4a::Automaton Lenient = parsers::sloppyEthernetIp();
  p4a::Automaton Strict = parsers::strictEthernetIp();
  auto Start = [](const p4a::Automaton &A) {
    return p4a::StateRef::normal(*A.findState("parse_eth"));
  };

  // 1. Plain language equivalence fails — the lenient parser accepts
  //    packets with unknown Ethernet types.
  {
    CheckResult Res = checkLanguageEquivalence(Lenient, "parse_eth", Strict,
                                               "parse_eth");
    std::printf("plain equivalence:    %s (expected: not equivalent)\n",
                Res.equivalent() ? "equivalent" : "not equivalent");
    if (Res.equivalent())
      return 1;
  }

  // 2. Equivalence modulo the filter: a lenient-side accept only counts
  //    if the final store's type field is IPv4 or IPv6.
  auto TypeField = BitExpr::mkSlice(
      BitExpr::mkHdr(Side::Left, *Lenient.findHeader("ether")), 96, 111);
  PureRef GoodType = Pure::mkOr(
      Pure::mkEq(TypeField, BitExpr::mkLit(Bitvector::fromUint(0x86dd, 16))),
      Pure::mkEq(TypeField, BitExpr::mkLit(Bitvector::fromUint(0x8600, 16))));
  {
    InitialSpec Spec =
        languageEquivalenceSpec(Lenient, Start(Lenient), Strict,
                                Start(Strict));
    Spec.Mode = AcceptanceMode::Qualified;
    Spec.LeftQualifier = GoodType;
    Spec.RightQualifier = Pure::mkTrue();
    CheckResult Res = checkWithSpec(Lenient, Strict, Spec);
    std::printf("modulo the filter:    %s (expected: equivalent)\n",
                Res.equivalent() ? "equivalent" : "not equivalent");
    if (!Res.equivalent()) {
      std::printf("  %s\n", Res.FailureReason.c_str());
      return 1;
    }
    ReplayResult Replay = replayCertificate(Lenient, Strict,
                                            Res.Certificate);
    std::printf("  certificate: %s\n",
                Replay.Valid ? "replayed OK" : "REJECTED");
  }

  // 3. Relational property: joint acceptance implies equal ether headers.
  {
    InitialSpec Spec =
        languageEquivalenceSpec(Lenient, Start(Lenient), Strict,
                                Start(Strict));
    Spec.Mode = AcceptanceMode::Custom;
    TemplatePair AccAcc{Template::accept(), Template::accept()};
    auto HL = BitExpr::mkHdr(Side::Left, *Lenient.findHeader("ether"));
    auto HR = BitExpr::mkHdr(Side::Right, *Strict.findHeader("ether"));
    Spec.ExtraInitial.push_back(GuardedFormula{AccAcc, Pure::mkEq(HL, HR)});
    CheckResult Res = checkWithSpec(Lenient, Strict, Spec);
    std::printf("store correspondence: %s (expected: holds)\n",
                Res.equivalent() ? "holds" : "fails");
    if (!Res.equivalent())
      return 1;
  }
  return 0;
}
