//===- header_stacks.cpp - Surface extensions end to end ------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The paper's §2 stores MPLS labels by overwriting one header because "our
// language does not support header stacks directly, although they can be
// emulated", and §7.3 lists header stacks, subparser calls and lookahead
// as future work. This example exercises all three through the surface
// front-end:
//
//  * the MPLS label chomper is a *recursive subparser* call,
//  * labels land in a real *header stack* (lbl[0], lbl[1], ...),
//  * the UDP state peeks its type nibble with *lookahead*.
//
// Elaboration compiles the surface program to a plain P4 automaton, and the
// ordinary symbolic checker then proves it equivalent to a hand-unrolled
// reference — so every theorem the checker produces extends to surface
// parsers for free.
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"
#include "frontend/Elaborate.h"
#include "p4a/Parser.h"

#include <cstdio>

using namespace leapfrog;
using namespace leapfrog::frontend;

namespace {

/// Builds the surface program: MPLS labels into a 3-slot stack via a
/// recursive subparser, then UDP with a lookahead on the type nibble.
SurfaceProgram buildSurfaceParser() {
  SurfaceProgram P;
  P.addHeader("eth", 8);
  P.addStack("lbl", /*Slots=*/3, /*Bits=*/8);
  P.addHeader("ty", 4);
  P.addHeader("udp", 16);

  // Main: ethernet-ish prefix, then call the label chomper; its accept
  // resumes at parse_udp.
  SurfaceState Start;
  Start.Name = "start";
  Start.Ops = {SurfaceOp::extract("eth")};
  Start.Tz = SurfaceTransition::mkGoto(
      SurfaceTarget::call("mpls", "parse_udp"));
  P.addState(std::move(Start));

  SurfaceState Udp;
  Udp.Name = "parse_udp";
  // Peek the first nibble without consuming, then extract the full UDP
  // header; accept only type 0b0101.
  Udp.Ops = {SurfaceOp::lookahead("ty"), SurfaceOp::extract("udp")};
  Udp.Tz = SurfaceTransition::mkSelect(
      {SExpr::mkHeader("ty")},
      {{{p4a::Pattern::exact(Bitvector::fromString("0101"))},
        SurfaceTarget::accept()},
       {{p4a::Pattern::wildcard()}, SurfaceTarget::reject()}});
  P.addState(std::move(Udp));
  P.setEntry("start");

  // The chomper: extract a label into the next stack slot; bit 0 set
  // means bottom-of-stack (accept, i.e. resume in the caller), otherwise
  // recurse. Extracting a fourth label overflows the stack and rejects.
  SubParser Mpls;
  Mpls.Name = "mpls";
  Mpls.Entry = "chomp";
  SurfaceState Chomp;
  Chomp.Name = "chomp";
  Chomp.Ops = {SurfaceOp::extractNext("lbl")};
  Chomp.Tz = SurfaceTransition::mkSelect(
      {SExpr::mkSlice(SExpr::mkStackLast("lbl"), 0, 0)},
      {{{p4a::Pattern::exact(Bitvector::fromString("1"))},
        SurfaceTarget::accept()},
       {{p4a::Pattern::wildcard()}, SurfaceTarget::call("mpls")}});
  Mpls.States.push_back(std::move(Chomp));
  P.addSubParser(std::move(Mpls));
  return P;
}

} // namespace

int main() {
  std::printf("== Surface extensions: header stacks, subparser calls, "
              "lookahead ==\n\n");

  SurfaceProgram Surface = buildSurfaceParser();
  ElaborationResult Elab = elaborate(Surface);
  if (!Elab.ok()) {
    for (const std::string &E : Elab.Errors)
      std::fprintf(stderr, "error: %s\n", E.c_str());
    return 1;
  }
  std::printf("surface program elaborated to a plain P4 automaton:\n"
              "  entry state: %s\n  states: %zu   headers: %zu   store "
              "bits: %zu\n\n",
              Elab.Entry.c_str(), Elab.Aut.numStates(),
              Elab.Aut.numHeaders(), Elab.Aut.totalHeaderBits());
  std::printf("%s\n", Elab.Aut.print().c_str());

  // The hand-unrolled reference a P4 programmer would write today: one
  // state per stack slot, an explicit overflow state, no lookahead.
  p4a::Automaton Reference = p4a::parseAutomatonOrDie(R"(
    state start { extract(eth, 8); goto l0 }
    state l0 {
      extract(a, 8);
      select(a[0:0]) {
        1 => parse_udp
        _ => l1
      }
    }
    state l1 {
      extract(b, 8);
      select(b[0:0]) {
        1 => parse_udp
        _ => l2
      }
    }
    state l2 {
      extract(c, 8);
      select(c[0:0]) {
        1 => parse_udp
        _ => overflow
      }
    }
    state overflow { extract(spill, 8); goto reject }
    state parse_udp {
      extract(udp, 16);
      select(udp[0:3]) {
        0101 => accept
        _ => reject
      }
    }
  )");

  std::printf("checking equivalence against the hand-unrolled reference "
              "parser...\n");
  core::CheckResult Res = core::checkLanguageEquivalence(
      Elab.Aut, Elab.Entry, Reference, "start");
  if (!Res.equivalent()) {
    std::printf("NOT equivalent: %s\n", Res.FailureReason.c_str());
    return 1;
  }
  std::printf("equivalent. (%zu iterations, %zu SMT queries, %.2f s)\n",
              Res.Stats.Iterations, Res.Stats.SmtQueries,
              double(Res.Stats.WallMicros) / 1e6);
  std::printf("\nthe elaborated parser carries the same certificate "
              "machinery as any\nother P4A: %zu conjuncts in the "
              "bisimulation.\n",
              Res.Certificate.Relation.size());
  return 0;
}
