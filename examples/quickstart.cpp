//===- quickstart.cpp - Leapfrog-cc in five minutes -----------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Reproduces the paper's running example (Figure 1): a reference MPLS/UDP
// parser versus a hand-vectorized one that speculatively reads two labels
// per iteration. The checker proves they accept exactly the same packets,
// for every initial store, and emits a certificate that is then replayed
// by the independent checker.
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"
#include "p4a/Parser.h"

#include <cstdio>

using namespace leapfrog;

int main() {
  // Parsers can be written in the paper's surface syntax. This is the
  // reference parser: one 32-bit MPLS label at a time, bit 23 marking the
  // bottom of the label stack, then an 8-byte UDP header.
  p4a::Automaton Reference = p4a::parseAutomatonOrDie(R"(
    state q1 {
      extract(mpls, 32);
      select(mpls[23:23]) {
        0 => q1
        1 => q2
      }
    }
    state q2 {
      extract(udp, 64);
      goto accept
    }
  )");

  // The vectorized parser reads two labels per step; when it overshoots,
  // state q5 re-marshals the surplus label into the UDP header.
  p4a::Automaton Vectorized = p4a::parseAutomatonOrDie(R"(
    state q3 {
      extract(old, 32);
      extract(new, 32);
      select(old[23:23], new[23:23]) {
        (0, 0) => q3
        (0, 1) => q4
        (1, _) => q5
      }
    }
    state q4 {
      extract(udp, 64);
      goto accept
    }
    state q5 {
      extract(tmp, 32);
      udp := new ++ tmp;
      goto accept
    }
  )");

  // Prove L(q1, s1) = L(q3, s2) for all initial stores s1, s2.
  core::CheckResult Result =
      core::checkLanguageEquivalence(Reference, "q1", Vectorized, "q3");

  std::printf("verdict:        %s\n",
              Result.equivalent() ? "equivalent" : "NOT equivalent");
  std::printf("conjuncts in R: %zu\n", Result.Stats.FinalConjuncts);
  std::printf("SMT queries:    %zu\n", Result.Stats.SmtQueries);
  std::printf("wall time:      %.1f ms\n",
              double(Result.Stats.WallMicros) / 1000.0);
  if (!Result.equivalent()) {
    std::printf("reason: %s\n", Result.FailureReason.c_str());
    return 1;
  }

  // The result is not just a boolean: it is a certificate — the symbolic
  // bisimulation itself — that an independent checker re-validates.
  core::ReplayResult Replay =
      core::replayCertificate(Reference, Vectorized, Result.Certificate);
  std::printf("certificate:    %s (%zu obligations)\n",
              Replay.Valid ? "replayed OK" : "REJECTED",
              Replay.ObligationsChecked);
  if (!Replay.Valid) {
    std::printf("reason: %s\n", Replay.FailureReason.c_str());
    return 1;
  }
  return 0;
}
