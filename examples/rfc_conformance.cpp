//===- rfc_conformance.cpp - RFC conformance via equivalence ---------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The paper's closing future-work paragraph:
//
//   "one could imagine writing a library of reference implementations for
//    protocols defined in RFCs, and checking that real-world
//    implementations conform to those standards."
//
// This example does exactly that. The reference parser is composed from
// the RFC library (Ethernet II per RFC 894, IPv4 per RFC 791 with the full
// IHL-driven options handling, UDP per RFC 768). The "vendor" parser is an
// independently written, hand-optimized implementation that fuses the
// Ethernet and no-options IPv4 headers into a single 272-bit extraction —
// the state-merging idiom hardware compilers use (paper Figure 7). The
// checker proves the optimization sound; a second vendor variant with a
// subtle IHL bug is refuted.
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"
#include "frontend/Elaborate.h"
#include "p4a/Parser.h"
#include "parsers/Rfc.h"

#include <cstdio>

using namespace leapfrog;
using namespace leapfrog::rfc;
using namespace leapfrog::frontend;

namespace {

/// Ethernet → IPv4 (with options) → UDP, from the RFC library.
ElaborationResult referenceParser() {
  SurfaceProgram P;
  addEthernet(P, "eth", "ether",
              {{ethertype::Ipv4, SurfaceTarget::state("ip")}});
  addIpv4(P, "ip", "ip4", {{ipproto::Udp, SurfaceTarget::state("udp")}});
  addUdp(P, "udp", "udp_hdr");
  P.setEntry("eth");
  return elaborateOrDie(P);
}

/// The vendor's fused fast path. \p BuggyIhl additionally lets IHL = 4
/// through on the fast path — the kind of off-by-one a hand-written
/// bounds check invites.
p4a::Automaton vendorParser(bool BuggyIhl) {
  std::string Src = R"(
    state fast {
      extract(eth_ip, 272);
      select(eth_ip[96:111], eth_ip[116:119], eth_ip[184:191]) {
        (0000100000000000, 0101, 00010001) => parse_udp
  )";
  if (BuggyIhl)
    Src += "        (0000100000000000, 0100, 00010001) => parse_udp\n";
  for (int Ihl = 6; Ihl <= 15; ++Ihl)
    Src += "        (0000100000000000, " + beBits(uint64_t(Ihl), 4).str() +
           ", 00010001) => opt" + std::to_string(Ihl) + "\n";
  Src += R"(
        (_, _, _) => reject
      }
    }
  )";
  for (int Ihl = 6; Ihl <= 15; ++Ihl)
    Src += "state opt" + std::to_string(Ihl) + " {\n  extract(opts" +
           std::to_string(Ihl) + ", " + std::to_string((Ihl - 5) * 32) +
           ");\n  goto parse_udp\n}\n";
  Src += R"(
    state parse_udp {
      extract(udp, 64);
      goto accept
    }
  )";
  return p4a::parseAutomatonOrDie(Src);
}

} // namespace

int main() {
  std::printf("== RFC conformance checking ==\n\n");

  ElaborationResult Ref = referenceParser();
  std::printf("reference (RFC 894 + RFC 791 + RFC 768): %zu states, %zu "
              "store bits\n",
              Ref.Aut.numStates(), Ref.Aut.totalHeaderBits());

  p4a::Automaton Good = vendorParser(/*BuggyIhl=*/false);
  std::printf("vendor fast-path parser: %zu states (Ethernet+IPv4 fused "
              "into one 272-bit read)\n\n",
              Good.numStates());

  std::printf("[1/2] proving the vendor optimization conforms...\n");
  core::CheckResult Res =
      core::checkLanguageEquivalence(Ref.Aut, Ref.Entry, Good, "fast");
  if (!Res.equivalent()) {
    std::printf("  UNEXPECTED: %s\n", Res.FailureReason.c_str());
    return 1;
  }
  std::printf("  conformant: accepts exactly the RFC language "
              "(%zu iterations, %zu SMT queries, %.2f s)\n\n",
              Res.Stats.Iterations, Res.Stats.SmtQueries,
              double(Res.Stats.WallMicros) / 1e6);

  std::printf("[2/2] seeding an IHL bounds bug (IHL=4 accepted on the "
              "fast path)...\n");
  p4a::Automaton Bad = vendorParser(/*BuggyIhl=*/true);
  core::CheckResult BadRes =
      core::checkLanguageEquivalence(Ref.Aut, Ref.Entry, Bad, "fast");
  if (BadRes.V != core::Verdict::NotEquivalent) {
    std::printf("  UNEXPECTED: bug not caught\n");
    return 1;
  }
  std::printf("  caught: %s\n", BadRes.FailureReason.c_str());
  std::printf("\nThe reference library turns RFC prose into checkable "
              "automata; any parser\nthat claims to implement the "
              "standard can be validated push-button.\n");
  return 0;
}
