//===- Cache.h - Fingerprint-keyed result cache -----------------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The service's result cache: completed CheckResults keyed by the
/// canonical identity of (parser pair, effective options). Equivalence
/// checks cost seconds to minutes; a repeat submission — a CI job
/// re-verifying an unchanged parser, a client retrying after a timeout —
/// should cost a hash probe and a string compare.
///
/// The key is two-layered, and the layering is the collision-safety
/// argument:
///
///  1. A 128-bit pair fingerprint (p4a/Fingerprint.h: rooted canonical
///     forms of both sides, combined order-sensitively) selects the
///     bucket. This is the fast path and the wire-visible handle.
///  2. The *full canonical text* — both canonical forms plus a rendering
///     of every verdict-relevant option — is stored beside each entry
///     and compared byte-for-byte on every probe. A hash match with a
///     text mismatch is a detected collision (counted, never served),
///     not a wrong answer.
///
/// Layer 2 is not optional paranoia. PR 3's frontier dedup served a
/// stale decision off a 64-bit hash equality and produced a wrong
/// verdict on a generated pair; the fix — compare the real key, always —
/// is cheap (the canonical text is already in memory, and mismatching
/// texts diverge within a few bytes) and turns a correctness bug into a
/// counter increment. A service that answers "equivalent" from a cache
/// must never let a hash stand in for the equality it approximates.
///
/// Verdict-relevant options in the key: the ablation switches (UseLeaps,
/// UseReachability — they change what ResourceLimit budgets mean and
/// which pairs terminate), the budgets themselves (MaxIterations,
/// MaxWallMicros — a ResourceLimit under a small budget says nothing
/// about a larger one), UseIncremental and the session Limits (answers
/// are identical by contract, but stats are not, and the cache promises
/// bit-identical stats), RecordTrace, and the schedule knobs (Pipeline,
/// GoalBatch, Chunk — verdict-identical by construction, but GoalBatch
/// folds adjacent goals into shared solver calls and so shifts the
/// SmtQueries stat). Excluded: Jobs (the parallel
/// engine is bit-identical to sequential by construction — that is PR 4's
/// theorem) and the backend (backends change performance, never
/// verdicts; and the backend is engine-level, fixed for the service's
/// lifetime). MaxWallMicros is a key component *and* inherently racy —
/// the same pair under the same wall budget can finish or not on a
/// loaded machine; the cache makes repeat answers deterministic, which
/// is strictly better than re-racing the clock.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_SERVE_CACHE_H
#define LEAPFROG_SERVE_CACHE_H

#include "core/Engine.h"
#include "p4a/Fingerprint.h"

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace leapfrog {
namespace serve {

/// The two-layer cache key (see the file comment). FP is always the
/// fingerprint *of Canonical* — makeCacheKey maintains this; tests
/// constructing keys by hand to force collisions deliberately break it.
struct CacheKey {
  p4a::Fingerprint FP;
  std::string Canonical;
};

/// Builds the canonical key of \p Req: both sides' rooted canonical
/// forms plus the verdict-relevant option rendering, fingerprinted as
/// one byte string. Pure; call it outside any lock.
CacheKey makeCacheKey(const core::CheckRequest &Req);

/// A completed check, immutable once inserted. Shared out to concurrent
/// readers by pointer, so a hit never copies the (possibly large) trace
/// or certificate.
struct CacheEntry {
  CacheKey Key;
  core::CheckResult Result;
  /// The certificate rendered once at insert time (empty unless the
  /// verdict is Equivalent) — what the `cert` protocol op returns.
  std::string CertificateText;
};

/// Thread-safe fingerprint-keyed store. Unbounded: an entry is a few
/// kilobytes and the service's working set is a corpus, not the
/// internet; an eviction policy can bolt on later without touching the
/// probe discipline.
class ResultCache {
public:
  struct Stats {
    size_t Hits = 0;
    size_t Misses = 0;
    /// Probes whose fingerprint matched an entry but whose canonical
    /// text did not — detected collisions, never served.
    size_t Collisions = 0;
    size_t Entries = 0;
  };

  /// Probes for \p Key. A hit requires fingerprint equality AND full
  /// canonical-text equality — never hash-only.
  std::shared_ptr<const CacheEntry> find(const CacheKey &Key);

  /// Inserts a completed entry (no-op if an entry with the same
  /// canonical text is already present — the single-flight layer above
  /// makes that rare but shutdown races make it possible).
  void insert(std::shared_ptr<const CacheEntry> Entry);

  /// First entry whose pair fingerprint renders as \p Hex (the wire
  /// handle of the `cert` op). Null when absent.
  std::shared_ptr<const CacheEntry> findByHex(const std::string &Hex);

  Stats stats() const;

private:
  mutable std::mutex M;
  /// Buckets: fingerprint -> entries whose keys share it. More than one
  /// entry per bucket means a live collision.
  std::unordered_map<p4a::Fingerprint,
                     std::vector<std::shared_ptr<const CacheEntry>>,
                     p4a::FingerprintHasher>
      Map;
  Stats St;
};

} // namespace serve
} // namespace leapfrog

#endif // LEAPFROG_SERVE_CACHE_H
