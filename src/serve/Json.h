//===- Json.h - Minimal JSON values for the wire protocol -------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, dependency-free JSON value type for the leapfrog-serve line
/// protocol (serve/Server.h): parse one request object per line, build
/// one response object per line. Deliberately minimal — no SAX layer, no
/// custom allocators, no document model — because a protocol whose
/// requests are two parser texts and a handful of option scalars needs
/// none of that, and the repo's no-new-dependencies rule rules out
/// vendoring one.
///
/// Numbers keep integer/double identity: integral literals parse to a
/// 64-bit integer lane and serialize back without a decimal point, so
/// stat counters (iterations, query counts, microsecond clocks) survive
/// a serialize→parse round trip bit-identically — which the service's
/// cache-hit tests assert. Objects are ordered maps, so serialization is
/// deterministic. Strings are byte sequences; escapes (including \uXXXX,
/// encoded to UTF-8) are handled on both sides.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_SERVE_JSON_H
#define LEAPFROG_SERVE_JSON_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace leapfrog {
namespace serve {

/// One JSON value. Value type with deep copies; cheap enough for a
/// protocol whose payloads top out at a few kilobytes of parser text.
class Json {
public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  Json() = default;

  static Json null() { return Json(); }
  static Json boolean(bool B) {
    Json J;
    J.K = Kind::Bool;
    J.B = B;
    return J;
  }
  static Json integer(int64_t I) {
    Json J;
    J.K = Kind::Int;
    J.I = I;
    return J;
  }
  /// Unsigned counters (stats, microsecond clocks). Asserts the value
  /// fits the signed lane — 9.2e18 µs is ~292k years, so it does.
  static Json unsignedInt(uint64_t U);
  static Json number(double D) {
    Json J;
    J.K = Kind::Double;
    J.D = D;
    return J;
  }
  static Json str(std::string S) {
    Json J;
    J.K = Kind::String;
    J.S = std::move(S);
    return J;
  }
  static Json array() {
    Json J;
    J.K = Kind::Array;
    return J;
  }
  static Json object() {
    Json J;
    J.K = Kind::Object;
    return J;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isInt() const { return K == Kind::Int; }
  bool isNumber() const { return K == Kind::Int || K == Kind::Double; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return B; }
  int64_t asInt() const { return K == Kind::Double ? int64_t(D) : I; }
  uint64_t asUnsigned() const;
  double asDouble() const { return K == Kind::Int ? double(I) : D; }
  const std::string &asString() const { return S; }

  const std::vector<Json> &items() const { return Arr; }
  void push(Json J) { Arr.push_back(std::move(J)); }

  const std::map<std::string, Json> &fields() const { return Obj; }
  bool has(const std::string &Key) const { return Obj.count(Key) != 0; }
  /// Member lookup; a missing key reads as null (the protocol treats
  /// absent and null options identically).
  const Json &get(const std::string &Key) const;
  void set(const std::string &Key, Json J) { Obj[Key] = std::move(J); }

  /// Typed convenience getters with defaults, for option decoding.
  bool getBool(const std::string &Key, bool Default) const;
  uint64_t getUnsigned(const std::string &Key, uint64_t Default) const;
  std::string getString(const std::string &Key,
                        const std::string &Default = "") const;

  /// Compact single-line rendering (the protocol is line-oriented, so no
  /// pretty printing — a serialized value never contains a raw newline;
  /// control characters are escaped).
  std::string serialize() const;

  /// Parses \p Text as one JSON value (surrounding whitespace allowed,
  /// trailing garbage is an error). Returns false and sets \p Error with
  /// a byte offset on malformed input.
  static bool parse(const std::string &Text, Json &Out, std::string *Error);

private:
  Kind K = Kind::Null;
  bool B = false;
  int64_t I = 0;
  double D = 0;
  std::string S;
  std::vector<Json> Arr;
  std::map<std::string, Json> Obj;
};

} // namespace serve
} // namespace leapfrog

#endif // LEAPFROG_SERVE_JSON_H
