//===- Server.cpp - Line-protocol front end of leapfrog-serve -------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "obs/Metrics.h"
#include "serve/Json.h"

#include <cstdio>
#include <cstring>
#include <istream>
#include <ostream>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace leapfrog;
using namespace leapfrog::serve;

Server::Server(std::unique_ptr<CheckService> S) : Svc(std::move(S)) {}
Server::~Server() = default;

std::unique_ptr<Server> Server::create(const ServiceConfig &Config,
                                       std::string *Error) {
  std::unique_ptr<CheckService> Svc = CheckService::create(Config, Error);
  if (!Svc)
    return nullptr;
  return std::unique_ptr<Server>(new Server(std::move(Svc)));
}

CheckService &Server::service() { return *Svc; }

bool Server::shutdownRequested() const { return Shutdown.load(); }

namespace {

Json errorResponse(const std::string &Msg) {
  Json R = Json::object();
  R.set("ok", Json::boolean(false));
  R.set("error", Json::str(Msg));
  return R;
}

const char *verdictName(core::Verdict V) {
  switch (V) {
  case core::Verdict::Equivalent:
    return "equivalent";
  case core::Verdict::NotEquivalent:
    return "not_equivalent";
  case core::Verdict::ResourceLimit:
    return "resource_limit";
  case core::Verdict::BadRequest:
    return "bad_request";
  }
  return "unknown";
}

Json statsJson(const core::CheckStats &S) {
  Json J = Json::object();
  J.set("iterations", Json::unsignedInt(S.Iterations));
  J.set("extends", Json::unsignedInt(S.Extends));
  J.set("skips", Json::unsignedInt(S.Skips));
  J.set("smt_queries", Json::unsignedInt(S.SmtQueries));
  J.set("reach_pairs", Json::unsignedInt(S.ReachPairs));
  J.set("templates_left", Json::unsignedInt(S.TemplatesLeft));
  J.set("templates_right", Json::unsignedInt(S.TemplatesRight));
  J.set("final_conjuncts", Json::unsignedInt(S.FinalConjuncts));
  J.set("peak_frontier", Json::unsignedInt(S.PeakFrontier));
  J.set("formula_nodes", Json::unsignedInt(S.FormulaNodes));
  J.set("wall_micros", Json::unsignedInt(S.WallMicros));
  J.set("solver_micros", Json::unsignedInt(S.SolverMicros));
  return J;
}

/// Decodes the per-request option subset the protocol exposes. Unknown
/// fields are ignored (forward compatibility); engine-level fields
/// (backend, jobs) are server-side flags, not request fields, so their
/// presence here is a client error worth rejecting loudly.
bool decodeOptions(const Json &J, core::CheckOptions &O, std::string &Err) {
  if (J.isNull())
    return true;
  if (!J.isObject()) {
    Err = "\"options\" must be an object";
    return false;
  }
  if (J.has("backend") || J.has("jobs") || J.has("solver")) {
    Err = "\"options\" may not set engine-level fields (backend, jobs); "
          "those are fixed when the server starts";
    return false;
  }
  O.UseLeaps = J.getBool("use_leaps", O.UseLeaps);
  O.UseReachability = J.getBool("use_reachability", O.UseReachability);
  O.UseIncremental = J.getBool("use_incremental", O.UseIncremental);
  O.RecordTrace = J.getBool("record_trace", O.RecordTrace);
  O.MaxIterations = size_t(J.getUnsigned("max_iterations", O.MaxIterations));
  O.MaxWallMicros = J.getUnsigned("max_wall_micros", O.MaxWallMicros);
  O.Limits.MaxLearnts =
      size_t(J.getUnsigned("max_learnts", O.Limits.MaxLearnts));
  O.Limits.MaxArenaBytes =
      size_t(J.getUnsigned("max_arena_bytes", O.Limits.MaxArenaBytes));
  O.Pipeline = J.getBool("pipeline", O.Pipeline);
  O.GoalBatch = size_t(J.getUnsigned("goal_batch", O.GoalBatch));
  if (O.GoalBatch < 1)
    O.GoalBatch = 1;
  O.Chunk = size_t(J.getUnsigned("chunk", O.Chunk));
  return true;
}

} // namespace

std::string Server::handleLine(const std::string &Line) {
  // Blank lines are keep-alives: answer nothing-shaped but valid.
  std::string Trimmed = Line;
  while (!Trimmed.empty() && (Trimmed.back() == '\r' || Trimmed.back() == '\n'))
    Trimmed.pop_back();
  if (Trimmed.empty()) {
    Json R = Json::object();
    R.set("ok", Json::boolean(true));
    return R.serialize();
  }

  Json Req;
  std::string ParseErr;
  if (!Json::parse(Trimmed, Req, &ParseErr))
    return errorResponse("bad JSON: " + ParseErr).serialize();
  if (!Req.isObject())
    return errorResponse("request must be a JSON object").serialize();

  const std::string Op = Req.getString("op");
  Json R = Json::object();
  // Echo the client's correlation id verbatim on every op that has one.
  if (Req.has("id"))
    R.set("id", Req.get("id"));

  if (Op == "ping") {
    R.set("ok", Json::boolean(true));
    R.set("pong", Json::boolean(true));
    return R.serialize();
  }

  if (Op == "shutdown") {
    Shutdown.store(true);
    // Nudge the accept loop out of accept(2) by closing the listener.
    int Fd = ListenFd.exchange(-1);
    if (Fd >= 0)
      ::shutdown(Fd, SHUT_RDWR);
    R.set("ok", Json::boolean(true));
    R.set("bye", Json::boolean(true));
    return R.serialize();
  }

  if (Op == "stats") {
    CheckService::Stats S = Svc->stats();
    R.set("ok", Json::boolean(true));
    R.set("submitted", Json::unsignedInt(S.Submitted));
    R.set("computed", Json::unsignedInt(S.Computed));
    R.set("coalesced", Json::unsignedInt(S.Coalesced));
    R.set("rejected_queue_full", Json::unsignedInt(S.RejectedQueueFull));
    Json Cache = Json::object();
    Cache.set("hits", Json::unsignedInt(S.Cache.Hits));
    Cache.set("misses", Json::unsignedInt(S.Cache.Misses));
    Cache.set("collisions", Json::unsignedInt(S.Cache.Collisions));
    Cache.set("entries", Json::unsignedInt(S.Cache.Entries));
    R.set("cache", Cache);
    Json Cfg = Json::object();
    Cfg.set("lanes", Json::unsignedInt(Svc->config().Lanes));
    Cfg.set("jobs", Json::unsignedInt(Svc->config().Engine.Jobs));
    Cfg.set("backend", Json::str(Svc->config().Engine.Backend));
    Cfg.set("max_queue", Json::unsignedInt(Svc->config().MaxQueue));
    Cfg.set("max_iterations_cap",
            Json::unsignedInt(Svc->config().MaxIterationsCap));
    Cfg.set("max_wall_micros_cap",
            Json::unsignedInt(Svc->config().MaxWallMicrosCap));
    Cfg.set("certify", Json::boolean(Svc->config().Engine.Certify));
    Cfg.set("cert_store", Json::str(Svc->config().CertStoreDir));
    R.set("config", Cfg);
    return R.serialize();
  }

  if (Op == "metrics") {
    // The full process-wide registry, in both machine forms: the JSON
    // snapshot (obs::MetricsSnapshot::toJson is itself valid JSON, so it
    // is re-parsed and embedded structurally — a client sees real nested
    // objects, not a quoted blob) and the Prometheus text exposition for
    // scrapers that want to relay it verbatim.
    obs::MetricsSnapshot Snap = obs::metrics().snapshot();
    Json Registry;
    std::string SnapErr;
    if (!Json::parse(Snap.toJson(), Registry, &SnapErr))
      return errorResponse("metrics snapshot failed to serialize: " +
                           SnapErr)
          .serialize();
    R.set("ok", Json::boolean(true));
    R.set("metrics", Registry);
    R.set("prometheus", Json::str(Snap.toPrometheus()));
    return R.serialize();
  }

  if (Op == "cert") {
    const std::string Hex = Req.getString("key");
    if (Hex.empty())
      return errorResponse("cert requires \"key\" (32 hex digits)")
          .serialize();
    std::string Text = Svc->certificateByHex(Hex);
    if (Text.empty())
      return errorResponse("no certificate cached under key " + Hex)
          .serialize();
    R.set("ok", Json::boolean(true));
    R.set("key", Json::str(Hex));
    R.set("certificate", Json::str(Text));
    return R.serialize();
  }

  if (Op != "check")
    return errorResponse("unknown op '" + Op +
                         "' (expected check|ping|stats|metrics|cert|shutdown)")
        .serialize();

  if (!Req.get("left").isString() || !Req.get("right").isString())
    return errorResponse(
               "check requires string fields \"left\" and \"right\" "
               "holding .lfp parser text")
        .serialize();

  core::CheckOptions Opts;
  std::string OptErr;
  if (!decodeOptions(Req.get("options"), Opts, OptErr))
    return errorResponse(OptErr).serialize();

  core::CheckRequest CheckReq;
  std::vector<std::string> Errors;
  if (!core::checkRequestFromSurface(Req.get("left").asString(),
                                     Req.get("right").asString(), Opts,
                                     CheckReq, Errors)) {
    std::string Msg = "parser text rejected";
    Json ErrList = Json::array();
    for (const std::string &E : Errors)
      ErrList.push(Json::str(E));
    Json Bad = errorResponse(Msg);
    Bad.set("diagnostics", ErrList);
    return Bad.serialize();
  }

  CheckService::Outcome O = Svc->submit(CheckReq);
  if (O.rejected()) {
    Json Rej = errorResponse(O.Error);
    if (Req.has("id"))
      Rej.set("id", Req.get("id"));
    Rej.set("rejected", Json::boolean(true));
    return Rej.serialize();
  }

  R.set("ok", Json::boolean(true));
  R.set("verdict", Json::str(verdictName(O.Result.V)));
  R.set("cache", Json::str(O.CacheHit ? "hit"
                           : O.Shared ? "shared"
                                      : "miss"));
  R.set("fingerprint", Json::str(O.FP.hex()));
  R.set("stats", statsJson(O.Result.Stats));
  R.set("micros", Json::unsignedInt(O.TotalMicros));
  if (!O.Result.FailureReason.empty())
    R.set("failure_reason", Json::str(O.Result.FailureReason));
  if (O.Result.V == core::Verdict::Equivalent)
    R.set("certificate_key", Json::str(O.FP.hex()));
  return R.serialize();
}

int Server::runStdio(std::istream &In, std::ostream &Out) {
  std::string Line;
  while (!Shutdown.load() && std::getline(In, Line)) {
    Out << handleLine(Line) << "\n";
    Out.flush();
  }
  return 0;
}

namespace {

/// One connection: length-unbounded line reader over a socket fd.
void serveConnection(Server *S, int Fd) {
  std::string Buf;
  char Chunk[4096];
  for (;;) {
    size_t Nl;
    while ((Nl = Buf.find('\n')) == std::string::npos) {
      ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
      if (N <= 0) {
        ::close(Fd);
        return;
      }
      Buf.append(Chunk, size_t(N));
    }
    std::string Line = Buf.substr(0, Nl);
    Buf.erase(0, Nl + 1);
    std::string Resp = S->handleLine(Line) + "\n";
    size_t Off = 0;
    while (Off < Resp.size()) {
      ssize_t N = ::write(Fd, Resp.data() + Off, Resp.size() - Off);
      if (N <= 0) {
        ::close(Fd);
        return;
      }
      Off += size_t(N);
    }
    if (S->shutdownRequested()) {
      ::close(Fd);
      return;
    }
  }
}

} // namespace

int Server::runSocket(const std::string &Path) {
  if (Path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    std::fprintf(stderr, "leapfrog-serve: socket path too long: %s\n",
                 Path.c_str());
    return 1;
  }
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    std::perror("leapfrog-serve: socket");
    return 1;
  }
  ::unlink(Path.c_str());
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    std::perror("leapfrog-serve: bind");
    ::close(Fd);
    return 1;
  }
  if (::listen(Fd, 64) < 0) {
    std::perror("leapfrog-serve: listen");
    ::close(Fd);
    return 1;
  }
  ListenFd.store(Fd);

  std::vector<std::thread> Conns;
  while (!Shutdown.load()) {
    int Client = ::accept(Fd, nullptr, nullptr);
    if (Client < 0) {
      if (Shutdown.load())
        break;
      continue;
    }
    Conns.emplace_back(serveConnection, this, Client);
  }
  for (std::thread &T : Conns)
    T.join();
  // The shutdown op only shuts the listener down (to break accept(2)
  // loose); the fd itself is closed here, once, whatever the exit path.
  ListenFd.store(-1);
  ::close(Fd);
  ::unlink(Path.c_str());
  return 0;
}
