//===- Json.cpp - Minimal JSON values for the wire protocol ---------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "serve/Json.h"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace leapfrog;
using namespace leapfrog::serve;

Json Json::unsignedInt(uint64_t U) {
  assert(U <= uint64_t(INT64_MAX) && "counter exceeds the JSON integer lane");
  return integer(int64_t(U));
}

uint64_t Json::asUnsigned() const {
  int64_t V = asInt();
  return V < 0 ? 0 : uint64_t(V);
}

const Json &Json::get(const std::string &Key) const {
  static const Json Null;
  auto It = Obj.find(Key);
  return It == Obj.end() ? Null : It->second;
}

bool Json::getBool(const std::string &Key, bool Default) const {
  const Json &J = get(Key);
  return J.isBool() ? J.asBool() : Default;
}

uint64_t Json::getUnsigned(const std::string &Key, uint64_t Default) const {
  const Json &J = get(Key);
  return J.isNumber() ? J.asUnsigned() : Default;
}

std::string Json::getString(const std::string &Key,
                            const std::string &Default) const {
  const Json &J = get(Key);
  return J.isString() ? J.asString() : Default;
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

namespace {

void appendEscaped(std::string &Out, const std::string &S) {
  Out += '"';
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += char(C);
      }
    }
  }
  Out += '"';
}

void serializeInto(const Json &J, std::string &Out) {
  switch (J.kind()) {
  case Json::Kind::Null:
    Out += "null";
    break;
  case Json::Kind::Bool:
    Out += J.asBool() ? "true" : "false";
    break;
  case Json::Kind::Int:
    Out += std::to_string(J.asInt());
    break;
  case Json::Kind::Double: {
    // %.17g round-trips every double; rendered infinities/NaNs are not
    // valid JSON, so clamp them to null (the protocol never emits them).
    double D = J.asDouble();
    if (!std::isfinite(D)) {
      Out += "null";
      break;
    }
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.17g", D);
    Out += Buf;
    break;
  }
  case Json::Kind::String:
    appendEscaped(Out, J.asString());
    break;
  case Json::Kind::Array: {
    Out += '[';
    bool First = true;
    for (const Json &E : J.items()) {
      if (!First)
        Out += ',';
      First = false;
      serializeInto(E, Out);
    }
    Out += ']';
    break;
  }
  case Json::Kind::Object: {
    Out += '{';
    bool First = true;
    for (const auto &KV : J.fields()) {
      if (!First)
        Out += ',';
      First = false;
      appendEscaped(Out, KV.first);
      Out += ':';
      serializeInto(KV.second, Out);
    }
    Out += '}';
    break;
  }
  }
}

} // namespace

std::string Json::serialize() const {
  std::string Out;
  serializeInto(*this, Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

namespace {

class Parser {
public:
  Parser(const std::string &Text) : Text(Text) {}

  bool run(Json &Out, std::string *Error) {
    skipWs();
    if (!value(Out))
      return fail(Error);
    skipWs();
    if (Pos != Text.size()) {
      Err = "trailing characters after value";
      return fail(Error);
    }
    return true;
  }

private:
  bool fail(std::string *Error) {
    if (Error)
      *Error = (Err.empty() ? std::string("malformed input") : Err) +
               " at byte " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Word) {
    size_t Len = std::string(Word).size();
    if (Text.compare(Pos, Len, Word) != 0) {
      Err = std::string("expected '") + Word + "'";
      return false;
    }
    Pos += Len;
    return true;
  }

  bool value(Json &Out) {
    if (Pos >= Text.size()) {
      Err = "unexpected end of input";
      return false;
    }
    switch (Text[Pos]) {
    case 'n':
      if (!literal("null"))
        return false;
      Out = Json::null();
      return true;
    case 't':
      if (!literal("true"))
        return false;
      Out = Json::boolean(true);
      return true;
    case 'f':
      if (!literal("false"))
        return false;
      Out = Json::boolean(false);
      return true;
    case '"': {
      std::string S;
      if (!string(S))
        return false;
      Out = Json::str(std::move(S));
      return true;
    }
    case '[':
      return array(Out);
    case '{':
      return object(Out);
    default:
      return number(Out);
    }
  }

  bool array(Json &Out) {
    ++Pos; // '['
    Out = Json::array();
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      Json E;
      skipWs();
      if (!value(E))
        return false;
      Out.push(std::move(E));
      skipWs();
      if (Pos >= Text.size()) {
        Err = "unterminated array";
        return false;
      }
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      Err = "expected ',' or ']'";
      return false;
    }
  }

  bool object(Json &Out) {
    ++Pos; // '{'
    Out = Json::object();
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"') {
        Err = "expected object key";
        return false;
      }
      std::string Key;
      if (!string(Key))
        return false;
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != ':') {
        Err = "expected ':'";
        return false;
      }
      ++Pos;
      skipWs();
      Json V;
      if (!value(V))
        return false;
      Out.set(Key, std::move(V));
      skipWs();
      if (Pos >= Text.size()) {
        Err = "unterminated object";
        return false;
      }
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      Err = "expected ',' or '}'";
      return false;
    }
  }

  bool hex4(unsigned &Out) {
    if (Pos + 4 > Text.size()) {
      Err = "truncated \\u escape";
      return false;
    }
    Out = 0;
    for (int I = 0; I < 4; ++I) {
      char C = Text[Pos + I];
      Out <<= 4;
      if (C >= '0' && C <= '9')
        Out |= unsigned(C - '0');
      else if (C >= 'a' && C <= 'f')
        Out |= unsigned(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Out |= unsigned(C - 'A' + 10);
      else {
        Err = "bad \\u escape digit";
        return false;
      }
    }
    Pos += 4;
    return true;
  }

  void appendUtf8(std::string &S, unsigned Cp) {
    if (Cp < 0x80) {
      S += char(Cp);
    } else if (Cp < 0x800) {
      S += char(0xc0 | (Cp >> 6));
      S += char(0x80 | (Cp & 0x3f));
    } else if (Cp < 0x10000) {
      S += char(0xe0 | (Cp >> 12));
      S += char(0x80 | ((Cp >> 6) & 0x3f));
      S += char(0x80 | (Cp & 0x3f));
    } else {
      S += char(0xf0 | (Cp >> 18));
      S += char(0x80 | ((Cp >> 12) & 0x3f));
      S += char(0x80 | ((Cp >> 6) & 0x3f));
      S += char(0x80 | (Cp & 0x3f));
    }
  }

  bool string(std::string &Out) {
    ++Pos; // opening quote
    while (true) {
      if (Pos >= Text.size()) {
        Err = "unterminated string";
        return false;
      }
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size()) {
        Err = "unterminated escape";
        return false;
      }
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        unsigned Cp;
        if (!hex4(Cp))
          return false;
        // Surrogate pair: a high surrogate must be followed by \uDC00-
        // \uDFFF; combine into one code point.
        if (Cp >= 0xd800 && Cp <= 0xdbff && Pos + 1 < Text.size() &&
            Text[Pos] == '\\' && Text[Pos + 1] == 'u') {
          size_t Save = Pos;
          Pos += 2;
          unsigned Lo;
          if (!hex4(Lo))
            return false;
          if (Lo >= 0xdc00 && Lo <= 0xdfff)
            Cp = 0x10000 + ((Cp - 0xd800) << 10) + (Lo - 0xdc00);
          else
            Pos = Save; // Not a pair; emit the lone surrogate below.
        }
        appendUtf8(Out, Cp);
        break;
      }
      default:
        Err = "unknown escape";
        return false;
      }
    }
  }

  bool number(Json &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    bool Integral = true;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-')) {
      if (Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E')
        Integral = false;
      ++Pos;
    }
    if (Pos == Start || (Pos == Start + 1 && Text[Start] == '-')) {
      Err = "expected a value";
      return false;
    }
    std::string Num = Text.substr(Start, Pos - Start);
    if (Integral) {
      errno = 0;
      char *End = nullptr;
      long long V = std::strtoll(Num.c_str(), &End, 10);
      if (errno == 0 && End && *End == '\0') {
        Out = Json::integer(V);
        return true;
      }
      // Out of int64 range: fall through to the double lane.
    }
    char *End = nullptr;
    double D = std::strtod(Num.c_str(), &End);
    if (!End || *End != '\0') {
      Err = "malformed number";
      Pos = Start;
      return false;
    }
    Out = Json::number(D);
    return true;
  }

  const std::string &Text;
  size_t Pos = 0;
  std::string Err;
};

} // namespace

bool Json::parse(const std::string &Text, Json &Out, std::string *Error) {
  return Parser(Text).run(Out, Error);
}
