//===- Service.cpp - The equivalence-checking service ---------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "serve/Service.h"

#include "core/CertificateIo.h"
#include "obs/Clock.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "serve/Json.h"
#include "support/Compress.h"

#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <sys/stat.h>
#include <unordered_map>
#include <vector>

using namespace leapfrog;
using namespace leapfrog::serve;

namespace {

/// Store keys come off the wire; only a canonical fingerprint hex (32
/// lowercase hex digits, see p4a::Fingerprint::hex) may touch the
/// filesystem.
bool isStoreKey(const std::string &Hex) {
  if (Hex.size() != 32)
    return false;
  for (char C : Hex)
    if (!((C >= '0' && C <= '9') || (C >= 'a' && C <= 'f')))
      return false;
  return true;
}

std::string storePath(const std::string &Dir, const std::string &Hex) {
  return Dir + "/" + Hex + ".lfc";
}

bool readFileAll(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

/// tmp + rename so a concurrent reader (or a crash mid-write) never
/// observes a torn certificate; last write wins, which is fine — every
/// writer under one key serializes the same check.
void writeFileAtomic(const std::string &Path, const std::string &Data) {
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return;
    Out.write(Data.data(), std::streamsize(Data.size()));
    if (!Out)
      return;
  }
  std::rename(Tmp.c_str(), Path.c_str());
}

/// A computation in progress: late arrivals with the same canonical key
/// park here instead of running their own copy.
struct InFlight {
  std::condition_variable CV;
  bool Finished = false;
  /// The completed entry (null if the computing thread died without
  /// finishing — waiters then resubmit is not attempted; they surface a
  /// rejection, which cannot happen in the current single-process
  /// lifecycle but keeps the wait loop total).
  std::shared_ptr<const CacheEntry> Entry;
};

} // namespace

struct CheckService::Impl {
  ServiceConfig Config;
  ResultCache Cache;

  mutable std::mutex M;
  std::condition_variable LaneCV;
  /// Lane engines; Busy[i] marks lane i as running a check. Engines are
  /// only ever driven by the thread that marked their lane busy, which
  /// is core::Engine's single-threaded contract.
  std::vector<std::unique_ptr<core::Engine>> Lanes;
  std::vector<bool> Busy;
  size_t WaitingForLane = 0;
  /// Serializes slow-query log lines (never nested with M).
  std::mutex SlowLogM;
  /// Single-flight table, keyed by the full canonical text (not the
  /// fingerprint — the same never-hash-only discipline as the cache).
  std::unordered_map<std::string, std::shared_ptr<InFlight>> Running;

  Stats St;

  size_t acquireLaneLocked(std::unique_lock<std::mutex> &Lock) {
    static obs::Gauge &QueueDepth =
        obs::metrics().gauge("serve.lane_queue_depth");
    ++WaitingForLane;
    QueueDepth.set(int64_t(WaitingForLane));
    for (;;) {
      for (size_t L = 0; L < Lanes.size(); ++L) {
        if (!Busy[L]) {
          Busy[L] = true;
          --WaitingForLane;
          QueueDepth.set(int64_t(WaitingForLane));
          return L;
        }
      }
      LaneCV.wait(Lock);
    }
  }

  void releaseLane(size_t Lane) {
    {
      std::lock_guard<std::mutex> Lock(M);
      Busy[Lane] = false;
    }
    LaneCV.notify_one();
  }
};

CheckService::CheckService() : I(std::make_unique<Impl>()) {}
CheckService::~CheckService() = default;

std::unique_ptr<CheckService> CheckService::create(const ServiceConfig &Config,
                                                   std::string *Error) {
  std::unique_ptr<CheckService> S(new CheckService());
  S->I->Config = Config;
  if (S->I->Config.Lanes == 0)
    S->I->Config.Lanes = 1;
  if (!S->I->Config.CertStoreDir.empty()) {
    // A store without certified checks would have nothing to put in it.
    S->I->Config.Engine.Certify = true;
    ::mkdir(S->I->Config.CertStoreDir.c_str(), 0755);
  }
  for (size_t L = 0; L < S->I->Config.Lanes; ++L) {
    std::unique_ptr<core::Engine> E =
        core::Engine::create(S->I->Config.Engine, Error);
    if (!E)
      return nullptr; // Error already carries the resolver diagnostic.
    S->I->Lanes.push_back(std::move(E));
  }
  S->I->Busy.assign(S->I->Config.Lanes, false);
  return S;
}

CheckService::Outcome CheckService::submit(const core::CheckRequest &Req) {
  obs::ScopedSpan Span("serve.request", "serve");
  obs::StopWatch Watch;
  auto finish = [&](Outcome O) {
    O.TotalMicros = Watch.elapsedMicros();
    recordOutcome(O);
    return O;
  };

  // 1. Clamp budgets to the service ceilings BEFORE keying: the key must
  // describe the check that actually runs.
  const ServiceConfig &C = I->Config;
  bool ClampIter =
      C.MaxIterationsCap != 0 && (Req.Options.MaxIterations == 0 ||
                                  Req.Options.MaxIterations > C.MaxIterationsCap);
  bool ClampWall =
      C.MaxWallMicrosCap != 0 && (Req.Options.MaxWallMicros == 0 ||
                                  Req.Options.MaxWallMicros > C.MaxWallMicrosCap);
  core::CheckOptions Opts = Req.Options;
  if (ClampIter)
    Opts.MaxIterations = C.MaxIterationsCap;
  if (ClampWall)
    Opts.MaxWallMicros = C.MaxWallMicrosCap;

  // 2. Key on the effective request (outside any lock; canonicalization
  // walks both automata). The automaton copies are cheap relative to any
  // check and keep makeCacheKey's signature simple.
  CacheKey Key;
  {
    core::CheckRequest Probe;
    Probe.Left = Req.Left;
    Probe.Right = Req.Right;
    Probe.LeftStart = Req.LeftStart;
    Probe.RightStart = Req.RightStart;
    Probe.Options = Opts;
    Key = makeCacheKey(Probe);
  }

  std::shared_ptr<InFlight> Flight;
  size_t Lane = 0;
  {
    std::unique_lock<std::mutex> Lock(I->M);
    ++I->St.Submitted;

    // 3. Cache probe.
    if (std::shared_ptr<const CacheEntry> Hit = I->Cache.find(Key)) {
      Outcome O;
      O.CacheHit = true;
      O.FP = Key.FP;
      O.Result = Hit->Result;
      O.CertificateText = Hit->CertificateText;
      return finish(O);
    }

    // 4. Single-flight: park on a computation already running this key.
    auto It = I->Running.find(Key.Canonical);
    if (It != I->Running.end()) {
      std::shared_ptr<InFlight> F = It->second;
      ++I->St.Coalesced;
      F->CV.wait(Lock, [&] { return F->Finished; });
      Outcome O;
      O.Shared = true;
      O.FP = Key.FP;
      if (F->Entry) {
        O.Result = F->Entry->Result;
        O.CertificateText = F->Entry->CertificateText;
      } else {
        O.S = Outcome::Status::Rejected;
        O.Error = "shared computation aborted";
      }
      return finish(O);
    }

    // 5. Admission: bounded waiting room.
    if (I->WaitingForLane >= I->Config.MaxQueue) {
      bool LaneFree = false;
      for (size_t L = 0; L < I->Lanes.size(); ++L)
        LaneFree = LaneFree || !I->Busy[L];
      if (!LaneFree) {
        ++I->St.RejectedQueueFull;
        Outcome O;
        O.S = Outcome::Status::Rejected;
        O.FP = Key.FP;
        O.Error = "queue full: " + std::to_string(I->WaitingForLane) +
                  " requests already waiting for " +
                  std::to_string(I->Lanes.size()) + " lanes";
        return finish(O);
      }
    }

    Flight = std::make_shared<InFlight>();
    I->Running.emplace(Key.Canonical, Flight);
    Lane = I->acquireLaneLocked(Lock);
    ++I->St.Computed;
  }

  // 6. Compute, outside every lock, on the lane's warm engine.
  core::CheckResult Result =
      I->Lanes[Lane]->check(Req.Left, Req.Right, Req.Spec, Opts);
  I->releaseLane(Lane);

  auto Entry = std::make_shared<CacheEntry>();
  Entry->Key = Key;
  Entry->Result = Result;
  if (Result.V == core::Verdict::Equivalent) {
    if (I->Config.Engine.Certify) {
      // The checkable artifact: full LFCERT text, streams included,
      // pinned to the cache-key fingerprint the `cert` op looks up.
      Entry->CertificateText = core::serializeCertificate(
          Req.Left, Req.Right, Result.Certificate, Result.Proof.get(),
          Key.FP.hex());
      if (!I->Config.CertStoreDir.empty())
        writeFileAtomic(storePath(I->Config.CertStoreDir, Key.FP.hex()),
                        core::compressCertificate(Entry->CertificateText));
    } else {
      Entry->CertificateText = Result.Certificate.str(Req.Left, Req.Right);
    }
  }

  {
    std::lock_guard<std::mutex> Lock(I->M);
    // BadRequest means the request never ran — nothing worth caching,
    // and admitting it to the cache would let a transient misconfig
    // shadow a later valid run under the same key.
    if (Result.V != core::Verdict::BadRequest)
      I->Cache.insert(Entry);
    Flight->Entry = Entry;
    Flight->Finished = true;
    I->Running.erase(Key.Canonical);
  }
  Flight->CV.notify_all();

  Outcome O;
  O.FP = Key.FP;
  O.Result = std::move(Result);
  O.CertificateText = Entry->CertificateText;
  return finish(O);
}

void CheckService::recordOutcome(const Outcome &O) {
  obs::Registry &M = obs::metrics();
  static obs::Histogram &RequestLatency =
      M.histogram("serve.request_micros");
  static obs::Counter &CacheHits = M.counter("serve.cache_hits");
  static obs::Counter &CacheMisses = M.counter("serve.cache_misses");
  static obs::Counter &Coalesced = M.counter("serve.coalesced");
  static obs::Counter &Rejected = M.counter("serve.rejected");
  static obs::Counter &SlowQueries = M.counter("serve.slow_queries");
  RequestLatency.observe(O.TotalMicros);
  if (O.rejected())
    Rejected.add();
  else if (O.CacheHit)
    CacheHits.add();
  else if (O.Shared)
    Coalesced.add();
  else
    CacheMisses.add();

  if (I->Config.SlowMicros == 0 || O.TotalMicros < I->Config.SlowMicros)
    return;
  SlowQueries.add();
  // One structured line per slow submission (docs/SERVICE.md). The write
  // is serialized under its own mutex (finish() runs with the service
  // mutex held on the cache-hit and coalesced paths) so concurrent lanes
  // cannot interleave bytes within a line.
  Json Line = Json::object();
  Line.set("slow_query", Json::boolean(true));
  Line.set("micros", Json::unsignedInt(O.TotalMicros));
  Line.set("threshold_micros", Json::unsignedInt(I->Config.SlowMicros));
  Line.set("source", Json::str(O.rejected()   ? "rejected"
                               : O.CacheHit   ? "cache_hit"
                               : O.Shared     ? "coalesced"
                                              : "computed"));
  Line.set("fingerprint", Json::str(O.FP.hex()));
  if (!O.rejected()) {
    const char *V = "bad_request";
    switch (O.Result.V) {
    case core::Verdict::Equivalent:
      V = "equivalent";
      break;
    case core::Verdict::NotEquivalent:
      V = "not_equivalent";
      break;
    case core::Verdict::ResourceLimit:
      V = "resource_limit";
      break;
    case core::Verdict::BadRequest:
      V = "bad_request";
      break;
    }
    Line.set("verdict", Json::str(V));
    Line.set("iterations", Json::unsignedInt(O.Result.Stats.Iterations));
    Line.set("smt_queries", Json::unsignedInt(O.Result.Stats.SmtQueries));
  } else {
    Line.set("error", Json::str(O.Error));
  }
  std::ostream &Out = I->Config.SlowLog ? *I->Config.SlowLog : std::cerr;
  std::lock_guard<std::mutex> Lock(I->SlowLogM);
  Out << Line.serialize() << "\n";
  Out.flush();
}

std::string CheckService::certificateByHex(const std::string &Hex) {
  std::shared_ptr<const CacheEntry> E = I->Cache.findByHex(Hex);
  if (E && !E->CertificateText.empty())
    return E->CertificateText;
  // Disk fallback: a restarted daemon has an empty cache but a full
  // store. Serve the decompressed text — the wire is always textual.
  if (!I->Config.CertStoreDir.empty() && isStoreKey(Hex)) {
    std::string Blob;
    if (readFileAll(storePath(I->Config.CertStoreDir, Hex), Blob)) {
      if (!support::looksCompressed(Blob))
        return Blob;
      std::string Raw;
      if (support::decompress(Blob, Raw, nullptr))
        return Raw;
    }
  }
  return std::string();
}

CheckService::Stats CheckService::stats() const {
  std::lock_guard<std::mutex> Lock(I->M);
  Stats S = I->St;
  S.Cache = I->Cache.stats();
  return S;
}

const ServiceConfig &CheckService::config() const { return I->Config; }

core::Engine &CheckService::laneEngine(size_t Lane) { return *I->Lanes[Lane]; }
