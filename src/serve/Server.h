//===- Server.h - Line-protocol front end of leapfrog-serve -----*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire layer of leapfrog-serve: newline-delimited JSON, one request
/// object in, one response object out, over stdin/stdout or an AF_UNIX
/// socket. The full protocol reference lives in docs/SERVICE.md; the
/// short form:
///
///   {"op":"check","left":"<.lfp text>","right":"<.lfp text>",
///    "options":{...},"id":"<echoed>"}       -> verdict + stats + handle
///   {"op":"ping"}                            -> {"ok":true,"pong":true}
///   {"op":"stats"}                           -> service + cache counters
///   {"op":"cert","key":"<32 hex digits>"}    -> cached certificate text
///   {"op":"shutdown"}                        -> ack, then the loop exits
///
/// Every response carries "ok"; protocol-level failures (bad JSON, bad
/// op, unparseable parser text) are {"ok":false,"error":...} — the
/// connection survives, only the request dies. handleLine() is the whole
/// protocol as a pure-ish function (string in, string out), which is how
/// the tests drive it without sockets; runStdio()/runSocket() are thin
/// transports over it.
///
/// Transport notes: the AF_UNIX listener serves each connection on its
/// own thread (CheckService::submit is thread-safe and does the
/// single-flight coalescing), so N clients submitting the same pair
/// compute it once. Socket paths are unlinked on startup and shutdown.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_SERVE_SERVER_H
#define LEAPFROG_SERVE_SERVER_H

#include "serve/Service.h"

#include <atomic>
#include <iosfwd>
#include <memory>
#include <string>

namespace leapfrog {
namespace serve {

class Server {
public:
  /// Fails (nullptr + \p Error) only on an unresolvable backend spec —
  /// the structured rejection the Engine redesign is for.
  static std::unique_ptr<Server> create(const ServiceConfig &Config,
                                        std::string *Error);

  ~Server();

  /// Handles one protocol line; returns the serialized response object
  /// (no trailing newline). Never throws; malformed anything becomes an
  /// {"ok":false} response. Thread-safe.
  std::string handleLine(const std::string &Line);

  /// True once a shutdown op has been accepted.
  bool shutdownRequested() const;

  /// Serves \p In line-by-line until EOF or shutdown, writing one
  /// response per line to \p Out (flushed per response — the peer is a
  /// program waiting on a pipe). Returns 0 on clean exit.
  int runStdio(std::istream &In, std::ostream &Out);

  /// Binds \p Path (AF_UNIX, unlinked first), accepts until shutdown,
  /// one thread per connection. Returns 0 on clean shutdown, 1 on
  /// socket-layer failure (diagnostic on stderr).
  int runSocket(const std::string &Path);

  CheckService &service();

private:
  explicit Server(std::unique_ptr<CheckService> Svc);

  std::unique_ptr<CheckService> Svc;
  std::atomic<bool> Shutdown{false};
  std::atomic<int> ListenFd{-1};
};

} // namespace serve
} // namespace leapfrog

#endif // LEAPFROG_SERVE_SERVER_H
