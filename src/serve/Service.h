//===- Service.h - The equivalence-checking service -------------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The service layer between the wire protocol (serve/Server.h) and the
/// engine API (core/Engine.h): a CheckService owns a fixed set of warm
/// engine *lanes*, the result cache, and the single-flight table, and
/// turns concurrent submit() calls into at-most-one computation per
/// canonical request.
///
/// The submit() pipeline, in order:
///
///   1. Budget clamping — per-request budgets are capped by the service
///      configuration *before* the cache key is built, so a request
///      asking for more than the service allows keys on what it will
///      actually get.
///   2. Cache probe — full canonical comparison (serve/Cache.h).
///   3. Single-flight — a second submission of a request already being
///      computed parks on the in-flight entry's condition variable and
///      shares its result ("computed once" is observable: the entry is
///      inserted into the cache exactly once).
///   4. Admission — if more submissions are waiting for a lane than
///      MaxQueue allows, reject now with a structured error rather than
///      queue without bound; a rejected request costs the client a
///      resubmit, an unbounded queue costs the operator the process.
///   5. Lane acquisition + compute — one engine per lane, each with its
///      warm backend and workers; the check runs outside every lock.
///
/// Thread-safety: submit() may be called from any number of threads
/// (the socket server runs one per connection); each *lane* is single-
/// threaded by construction, which is exactly the threading contract
/// core::Engine demands.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_SERVE_SERVICE_H
#define LEAPFROG_SERVE_SERVICE_H

#include "core/Engine.h"
#include "serve/Cache.h"

#include <iosfwd>
#include <memory>
#include <string>

namespace leapfrog {
namespace serve {

struct ServiceConfig {
  /// Backend spec + jobs for every lane engine (lanes are homogeneous;
  /// an unresolvable backend fails CheckService::create, structured).
  core::EngineConfig Engine;
  /// Concurrent computations (one warm engine each). Lanes multiply
  /// resident solver processes: total externals = Lanes x Jobs.
  size_t Lanes = 1;
  /// Service-side ceilings on per-request budgets; 0 = no ceiling. A
  /// request asking for 0 (= unlimited) or more than the cap is clamped
  /// *down* to the cap before keying and running.
  size_t MaxIterationsCap = 0;
  uint64_t MaxWallMicrosCap = 0;
  /// Admission bound: maximum submissions allowed to wait for a lane
  /// (excludes the ones running and the ones sharing an in-flight
  /// computation, which hold no lane). 0 = reject unless a lane is free.
  size_t MaxQueue = 64;
  /// Slow-query log threshold: a submit() whose end-to-end wall time
  /// reaches this many microseconds is reported as one structured JSON
  /// line (docs/SERVICE.md). 0 disables the log entirely.
  uint64_t SlowMicros = 0;
  /// Where slow-query lines go; nullptr means stderr. Tests point this
  /// at a string stream to pin the line format deterministically.
  std::ostream *SlowLog = nullptr;
  /// On-disk certificate store. Non-empty implies certified checks
  /// (Engine.Certify is forced on): every Equivalent verdict is rendered
  /// to LFCERT text pinned to its cache-key fingerprint, compressed to
  /// LFCZ1 and written to `<CertStoreDir>/<fphex>.lfc` (tmp + rename, so
  /// readers never see a torn file). certificateByHex falls back to this
  /// store when the in-memory cache misses — a restarted daemon serves
  /// the bit-identical certificate it wrote before going down.
  std::string CertStoreDir;
};

class CheckService {
public:
  /// What one submission came back with.
  struct Outcome {
    enum class Status {
      Done,    ///< Result is meaningful (any verdict, BadRequest included).
      Rejected ///< Admission control refused to run it; Error says why.
    };
    Status S = Status::Done;
    std::string Error;
    /// Served from the completed-result cache (full canonical match).
    bool CacheHit = false;
    /// Coalesced onto a computation another submission started.
    bool Shared = false;
    /// The cache-key fingerprint — the wire handle for `cert` lookups.
    p4a::Fingerprint FP;
    core::CheckResult Result;
    std::string CertificateText;
    /// Wall time of this submit() call end to end (the cache-hit latency
    /// the acceptance criteria compare against cold checks).
    uint64_t TotalMicros = 0;

    bool rejected() const { return S == Status::Rejected; }
  };

  struct Stats {
    ResultCache::Stats Cache;
    size_t Submitted = 0;
    size_t Computed = 0; ///< Ran on a lane (== cache inserts attempted).
    size_t Coalesced = 0;
    size_t RejectedQueueFull = 0;
  };

  /// Builds the lanes (resolving the backend Lanes times — each lane
  /// owns its engine). Fails with a structured error on an unresolvable
  /// backend spec; never warns-and-degrades.
  static std::unique_ptr<CheckService> create(const ServiceConfig &Config,
                                              std::string *Error);

  ~CheckService();

  /// Decides \p Req (or serves it from cache / an in-flight twin).
  /// Blocks until the result is available or admission rejects it.
  Outcome submit(const core::CheckRequest &Req);

  /// Certificate text by cache-key fingerprint hex; empty when unknown
  /// (or the cached verdict carries no certificate). With a CertStoreDir
  /// configured, an in-memory miss falls back to the on-disk store and
  /// returns the decompressed LFCERT text — the wire always carries the
  /// textual form; only the store is compressed.
  std::string certificateByHex(const std::string &Hex);

  Stats stats() const;
  const ServiceConfig &config() const;

  /// Lane 0's engine, for tests that pin warm-worker lifecycles.
  core::Engine &laneEngine(size_t Lane);

private:
  CheckService();
  /// Metrics + slow-query log for one finished submission (every submit
  /// exit path funnels through here). Purely observational.
  void recordOutcome(const Outcome &O);
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace serve
} // namespace leapfrog

#endif // LEAPFROG_SERVE_SERVICE_H
