//===- Cache.cpp - Fingerprint-keyed result cache -------------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "serve/Cache.h"

using namespace leapfrog;
using namespace leapfrog::serve;

CacheKey serve::makeCacheKey(const core::CheckRequest &Req) {
  // One byte string: left canonical form, right canonical form, then the
  // verdict-relevant options (see the header comment for what is in and
  // what is deliberately out). Each section is delimited so no
  // concatenation of a different split can render identically.
  std::string Canonical;
  Canonical += "=left\n";
  Canonical += p4a::canonicalForm(Req.Left, Req.LeftStart);
  Canonical += "=right\n";
  Canonical += p4a::canonicalForm(Req.Right, Req.RightStart);
  const core::CheckOptions &O = Req.Options;
  Canonical += "=options\n";
  Canonical += "leaps=" + std::to_string(O.UseLeaps ? 1 : 0);
  Canonical += ";reach=" + std::to_string(O.UseReachability ? 1 : 0);
  Canonical += ";incremental=" + std::to_string(O.UseIncremental ? 1 : 0);
  Canonical += ";max_iterations=" + std::to_string(O.MaxIterations);
  Canonical += ";max_wall_micros=" + std::to_string(O.MaxWallMicros);
  Canonical += ";max_learnts=" + std::to_string(O.Limits.MaxLearnts);
  Canonical += ";max_arena_bytes=" + std::to_string(O.Limits.MaxArenaBytes);
  Canonical += ";trace=" + std::to_string(O.RecordTrace ? 1 : 0);
  // Schedule knobs: verdict-identical by construction, but GoalBatch
  // changes SmtQueries and the cache promises bit-identical stats.
  Canonical += ";pipeline=" + std::to_string(O.Pipeline ? 1 : 0);
  Canonical += ";goal_batch=" + std::to_string(O.GoalBatch);
  Canonical += ";chunk=" + std::to_string(O.Chunk);
  Canonical += "\n";

  CacheKey Key;
  Key.FP = p4a::fingerprintBytes(Canonical);
  Key.Canonical = std::move(Canonical);
  return Key;
}

std::shared_ptr<const CacheEntry> ResultCache::find(const CacheKey &Key) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Map.find(Key.FP);
  if (It == Map.end()) {
    ++St.Misses;
    return nullptr;
  }
  bool SawCollision = false;
  for (const std::shared_ptr<const CacheEntry> &E : It->second) {
    // The load-bearing line: fingerprint equality alone never serves an
    // answer — the full canonical text must match too.
    if (E->Key.Canonical == Key.Canonical) {
      if (SawCollision)
        ++St.Collisions;
      ++St.Hits;
      return E;
    }
    SawCollision = true;
  }
  ++St.Collisions;
  ++St.Misses;
  return nullptr;
}

void ResultCache::insert(std::shared_ptr<const CacheEntry> Entry) {
  std::lock_guard<std::mutex> Lock(M);
  std::vector<std::shared_ptr<const CacheEntry>> &Bucket = Map[Entry->Key.FP];
  for (const std::shared_ptr<const CacheEntry> &E : Bucket)
    if (E->Key.Canonical == Entry->Key.Canonical)
      return; // Lost a benign race; the existing entry is equivalent.
  Bucket.push_back(std::move(Entry));
  ++St.Entries;
}

std::shared_ptr<const CacheEntry>
ResultCache::findByHex(const std::string &Hex) {
  std::lock_guard<std::mutex> Lock(M);
  for (const auto &KV : Map)
    for (const std::shared_ptr<const CacheEntry> &E : KV.second)
      if (E->Key.FP.hex() == Hex)
        return E;
  return nullptr;
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  return St;
}
