//===- Syntax.cpp - P4 automaton abstract syntax --------------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "p4a/Syntax.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace leapfrog;
using namespace leapfrog::p4a;

ExprRef Expr::mkHeader(HeaderId H) {
  auto E = std::shared_ptr<Expr>(new Expr());
  E->K = Kind::Header;
  E->Hdr = H;
  return E;
}

ExprRef Expr::mkLiteral(Bitvector BV) {
  auto E = std::shared_ptr<Expr>(new Expr());
  E->K = Kind::Literal;
  E->Lit = std::move(BV);
  return E;
}

ExprRef Expr::mkSlice(ExprRef Operand, size_t Lo, size_t Hi) {
  assert(Operand && "slice of null expression");
  auto E = std::shared_ptr<Expr>(new Expr());
  E->K = Kind::Slice;
  E->Lhs = std::move(Operand);
  E->Lo = Lo;
  E->Hi = Hi;
  return E;
}

ExprRef Expr::mkConcat(ExprRef L, ExprRef R) {
  assert(L && R && "concat of null expression");
  auto E = std::shared_ptr<Expr>(new Expr());
  E->K = Kind::Concat;
  E->Lhs = std::move(L);
  E->Rhs = std::move(R);
  return E;
}

HeaderId Automaton::addHeader(const std::string &Name, size_t Bits) {
  assert(Bits > 0 && "headers must have positive size (sz : H -> N+)");
  auto It = HeaderIndex.find(Name);
  if (It != HeaderIndex.end()) {
    assert(HeaderSizes[It->second] == Bits &&
           "conflicting size for re-declared header");
    return It->second;
  }
  HeaderId Id = static_cast<HeaderId>(HeaderNames.size());
  HeaderNames.push_back(Name);
  HeaderSizes.push_back(Bits);
  HeaderIndex.emplace(Name, Id);
  return Id;
}

StateId Automaton::addState(State S) {
  assert(!StateIndex.count(S.Name) && "duplicate state name");
  StateId Id = static_cast<StateId>(States.size());
  StateIndex.emplace(S.Name, Id);
  States.push_back(std::move(S));
  return Id;
}

StateId Automaton::declareState(const std::string &Name) {
  auto It = StateIndex.find(Name);
  if (It != StateIndex.end())
    return It->second;
  State S;
  S.Name = Name;
  return addState(std::move(S));
}

void Automaton::setState(StateId Id, std::vector<Op> Ops, Transition Tz) {
  assert(Id < States.size() && "state id out of range");
  States[Id].Ops = std::move(Ops);
  States[Id].Tz = std::move(Tz);
}

std::string Automaton::refName(StateRef R) const {
  switch (R.K) {
  case StateRef::Kind::Accept:
    return "accept";
  case StateRef::Kind::Reject:
    return "reject";
  case StateRef::Kind::Normal:
    return stateName(R.Id);
  }
  assert(false && "unknown state ref kind");
  return "";
}

std::optional<StateId> Automaton::findState(const std::string &Name) const {
  auto It = StateIndex.find(Name);
  if (It == StateIndex.end())
    return std::nullopt;
  return It->second;
}

std::optional<HeaderId> Automaton::findHeader(const std::string &Name) const {
  auto It = HeaderIndex.find(Name);
  if (It == HeaderIndex.end())
    return std::nullopt;
  return It->second;
}

size_t Automaton::opBits(StateId Id) const {
  size_t Bits = 0;
  for (const Op &O : state(Id).Ops)
    if (O.K == Op::Kind::Extract)
      Bits += headerSize(O.Target);
  return Bits;
}

std::vector<StateRef> Automaton::successors(StateId Id) const {
  std::vector<StateRef> Succs;
  auto Add = [&Succs](StateRef R) {
    if (std::find(Succs.begin(), Succs.end(), R) == Succs.end())
      Succs.push_back(R);
  };
  const Transition &Tz = state(Id).Tz;
  if (Tz.IsGoto) {
    Add(Tz.GotoTarget);
    return Succs;
  }
  for (const SelectCase &C : Tz.Cases)
    Add(C.Target);
  // A select can always fall through to reject when no case matches, unless
  // some case is all-wildcards (then matching stops there).
  bool HasCatchAll = false;
  for (const SelectCase &C : Tz.Cases) {
    bool AllWild = true;
    for (const Pattern &P : C.Pats)
      AllWild &= P.isWildcard();
    if (AllWild) {
      HasCatchAll = true;
      break;
    }
  }
  if (!HasCatchAll)
    Add(StateRef::reject());
  return Succs;
}

size_t Automaton::totalHeaderBits() const {
  size_t Total = 0;
  for (size_t Sz : HeaderSizes)
    Total += Sz;
  return Total;
}

size_t Automaton::branchedBits() const {
  size_t Total = 0;
  for (const State &S : States) {
    if (S.Tz.IsGoto)
      continue;
    for (const ExprRef &E : S.Tz.Discriminants)
      if (auto W = exprWidth(*this, E))
        Total += *W;
  }
  return Total;
}

std::optional<size_t> p4a::exprWidth(const Automaton &Aut, const ExprRef &E) {
  if (!E)
    return std::nullopt;
  switch (E->kind()) {
  case Expr::Kind::Header:
    if (E->header() >= Aut.numHeaders())
      return std::nullopt;
    return Aut.headerSize(E->header());
  case Expr::Kind::Literal:
    return E->literal().size();
  case Expr::Kind::Slice: {
    auto W = exprWidth(Aut, E->sliceOperand());
    if (!W)
      return std::nullopt;
    if (*W == 0)
      return size_t(0);
    size_t Lo = std::min(E->sliceLo(), *W - 1);
    size_t Hi = std::min(E->sliceHi(), *W - 1);
    if (Lo > Hi)
      return size_t(0);
    return Hi - Lo + 1;
  }
  case Expr::Kind::Concat: {
    auto L = exprWidth(Aut, E->concatLhs());
    auto R = exprWidth(Aut, E->concatRhs());
    if (!L || !R)
      return std::nullopt;
    return *L + *R;
  }
  }
  return std::nullopt;
}

std::string p4a::printExpr(const Automaton &Aut, const ExprRef &E) {
  if (!E)
    return "<null>";
  switch (E->kind()) {
  case Expr::Kind::Header:
    return Aut.headerName(E->header());
  case Expr::Kind::Literal:
    return "0b" + E->literal().str();
  case Expr::Kind::Slice:
    return printExpr(Aut, E->sliceOperand()) + "[" +
           std::to_string(E->sliceLo()) + ":" + std::to_string(E->sliceHi()) +
           "]";
  case Expr::Kind::Concat:
    return "(" + printExpr(Aut, E->concatLhs()) + " ++ " +
           printExpr(Aut, E->concatRhs()) + ")";
  }
  return "<unknown>";
}

std::string Automaton::print() const {
  std::string Out;
  for (const State &S : States) {
    Out += "state " + S.Name + " {\n";
    for (const Op &O : S.Ops) {
      if (O.K == Op::Kind::Extract) {
        Out += "  extract(" + headerName(O.Target) + ", " +
               std::to_string(headerSize(O.Target)) + ");\n";
      } else {
        Out += "  " + headerName(O.Target) + " := " +
               printExpr(*this, O.Value) + ";\n";
      }
    }
    if (S.Tz.IsGoto) {
      Out += "  goto " + refName(S.Tz.GotoTarget) + "\n";
    } else {
      std::vector<std::string> Ds;
      for (const ExprRef &E : S.Tz.Discriminants)
        Ds.push_back(printExpr(*this, E));
      Out += "  select(" + join(Ds, ", ") + ") {\n";
      for (const SelectCase &C : S.Tz.Cases) {
        std::vector<std::string> Ps;
        for (const Pattern &P : C.Pats)
          Ps.push_back(P.isWildcard() ? "_" : "0b" + P.Exact->str());
        Out += "    (" + join(Ps, ", ") + ") => " + refName(C.Target) + "\n";
      }
      Out += "  }\n";
    }
    Out += "}\n";
  }
  return Out;
}
