//===- Syntax.h - P4 automaton abstract syntax ------------------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax of P4 automata (P4As), the parser model of paper §3 and
/// Figure 2. A P4A is a finite state machine whose states run a block of
/// operations (bit extraction and header assignment) over a store of
/// fixed-width bitvector headers and then transition — unconditionally via
/// goto, or by matching header expressions against patterns via select.
///
/// Headers and states are interned: the Automaton owns the name tables and
/// all syntax refers to them by dense integer ids, which keeps the symbolic
/// checker's hot paths allocation-free.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_P4A_SYNTAX_H
#define LEAPFROG_P4A_SYNTAX_H

#include "support/Bitvector.h"

#include <cassert>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace leapfrog {
namespace p4a {

/// Dense id of a header variable within one Automaton.
using HeaderId = unsigned;

/// Dense id of a user state within one Automaton.
using StateId = unsigned;

/// A reference to a state, including the two distinguished terminal states.
/// The paper's transition targets range over Q ∪ {accept, reject}.
struct StateRef {
  enum class Kind { Normal, Accept, Reject };

  Kind K = Kind::Reject;
  StateId Id = 0; ///< Valid only when K == Kind::Normal.

  static StateRef normal(StateId Id) {
    return StateRef{Kind::Normal, Id};
  }
  static StateRef accept() { return StateRef{Kind::Accept, 0}; }
  static StateRef reject() { return StateRef{Kind::Reject, 0}; }

  bool isNormal() const { return K == Kind::Normal; }
  bool isAccept() const { return K == Kind::Accept; }
  bool isReject() const { return K == Kind::Reject; }
  bool isTerminal() const { return !isNormal(); }

  bool operator==(const StateRef &O) const {
    return K == O.K && (K != Kind::Normal || Id == O.Id);
  }
  bool operator!=(const StateRef &O) const { return !(*this == O); }
  bool operator<(const StateRef &O) const {
    if (K != O.K)
      return K < O.K;
    return K == Kind::Normal && Id < O.Id;
  }
};

class Expr;
using ExprRef = std::shared_ptr<const Expr>;

/// A header expression (Figure 2): headers, bitvector literals, slices and
/// concatenations. Immutable; shared via ExprRef.
class Expr {
public:
  enum class Kind { Header, Literal, Slice, Concat };

  Kind kind() const { return K; }

  /// The header referenced; valid only for Kind::Header.
  HeaderId header() const {
    assert(K == Kind::Header && "not a header expression");
    return Hdr;
  }

  /// The literal value; valid only for Kind::Literal.
  const Bitvector &literal() const {
    assert(K == Kind::Literal && "not a literal expression");
    return Lit;
  }

  /// Slice operand / bounds; valid only for Kind::Slice. Bounds follow the
  /// paper's inclusive, clamped e[lo:hi] convention (Definition 3.1).
  const ExprRef &sliceOperand() const {
    assert(K == Kind::Slice && "not a slice expression");
    return Lhs;
  }
  size_t sliceLo() const {
    assert(K == Kind::Slice && "not a slice expression");
    return Lo;
  }
  size_t sliceHi() const {
    assert(K == Kind::Slice && "not a slice expression");
    return Hi;
  }

  /// Concat operands; valid only for Kind::Concat. In e1 ++ e2, the bits of
  /// e1 come first.
  const ExprRef &concatLhs() const {
    assert(K == Kind::Concat && "not a concat expression");
    return Lhs;
  }
  const ExprRef &concatRhs() const {
    assert(K == Kind::Concat && "not a concat expression");
    return Rhs;
  }

  static ExprRef mkHeader(HeaderId H);
  static ExprRef mkLiteral(Bitvector BV);
  static ExprRef mkSlice(ExprRef E, size_t Lo, size_t Hi);
  static ExprRef mkConcat(ExprRef L, ExprRef R);

private:
  Expr() = default;

  Kind K = Kind::Literal;
  HeaderId Hdr = 0;
  Bitvector Lit;
  ExprRef Lhs, Rhs;
  size_t Lo = 0, Hi = 0;
};

/// A select pattern: an exact bitvector match or the wildcard `_`
/// (Figure 2; Definition 3.3 gives ⟦bv⟧P = {bv} and ⟦_⟧P = {0,1}*).
struct Pattern {
  std::optional<Bitvector> Exact; ///< nullopt = wildcard.

  static Pattern wildcard() { return Pattern{std::nullopt}; }
  static Pattern exact(Bitvector BV) { return Pattern{std::move(BV)}; }

  bool isWildcard() const { return !Exact.has_value(); }

  /// True if \p Value is in the pattern's denotation.
  bool matches(const Bitvector &Value) const {
    return isWildcard() || *Exact == Value;
  }
};

/// One case of a select statement: a tuple of patterns and a target state.
struct SelectCase {
  std::vector<Pattern> Pats;
  StateRef Target;
};

/// A single operation: extract(h) or h := e. Sequencing is represented by
/// the order of operations inside a state's block.
struct Op {
  enum class Kind { Extract, Assign };

  Kind K;
  HeaderId Target;
  ExprRef Value; ///< Valid only for Kind::Assign.

  static Op extract(HeaderId H) { return Op{Kind::Extract, H, nullptr}; }
  static Op assign(HeaderId H, ExprRef E) {
    return Op{Kind::Assign, H, std::move(E)};
  }
};

/// A transition block: goto(q) or select(e1,..,ek){cases}. A select whose
/// cases all fail transitions to reject (Definition 3.3).
struct Transition {
  bool IsGoto = true;
  StateRef GotoTarget = StateRef::reject();
  std::vector<ExprRef> Discriminants; ///< Select scrutinee tuple.
  std::vector<SelectCase> Cases;

  static Transition mkGoto(StateRef Target) {
    Transition T;
    T.IsGoto = true;
    T.GotoTarget = Target;
    return T;
  }
  static Transition mkSelect(std::vector<ExprRef> Discriminants,
                             std::vector<SelectCase> Cases) {
    Transition T;
    T.IsGoto = false;
    T.Discriminants = std::move(Discriminants);
    T.Cases = std::move(Cases);
    return T;
  }
};

/// A named state with its operation block and transition block.
struct State {
  std::string Name;
  std::vector<Op> Ops;
  Transition Tz;
};

/// A P4 automaton: header declarations plus states. Corresponds to `aut`
/// in Figure 2 and `Syntax.t` in the paper's Coq development (Table 1).
class Automaton {
public:
  /// Declares (or re-finds) a header named \p Name of \p Bits bits.
  /// Asserts the size is positive and consistent with prior declarations.
  HeaderId addHeader(const std::string &Name, size_t Bits);

  /// Adds a state; returns its id. State names must be unique.
  StateId addState(State S);

  /// Declares an empty named state up front so transitions can forward-
  /// reference it; the body must be filled in later via setState.
  StateId declareState(const std::string &Name);
  void setState(StateId Id, std::vector<Op> Ops, Transition Tz);

  size_t numStates() const { return States.size(); }
  size_t numHeaders() const { return HeaderSizes.size(); }

  const State &state(StateId Id) const {
    assert(Id < States.size() && "state id out of range");
    return States[Id];
  }
  const std::string &stateName(StateId Id) const { return state(Id).Name; }

  /// Pretty name for any StateRef, including accept/reject.
  std::string refName(StateRef R) const;

  size_t headerSize(HeaderId H) const {
    assert(H < HeaderSizes.size() && "header id out of range");
    return HeaderSizes[H];
  }
  const std::string &headerName(HeaderId H) const {
    assert(H < HeaderNames.size() && "header id out of range");
    return HeaderNames[H];
  }

  std::optional<StateId> findState(const std::string &Name) const;
  std::optional<HeaderId> findHeader(const std::string &Name) const;

  /// ||op(q)||: the number of packet bits state \p Id consumes
  /// (Definition 3.2). Every well-typed state has opBits >= 1.
  size_t opBits(StateId Id) const;

  /// ρ(tz(q)): the set of states reachable in one transition from \p Id
  /// (§5.1). Includes terminal targets.
  std::vector<StateRef> successors(StateId Id) const;

  /// Total store width in bits (Σ sz(h)); the "Total" column of Table 2
  /// counts this over both automata.
  size_t totalHeaderBits() const;

  /// Number of bits inspected by select discriminants across all states;
  /// the "Branched" column of Table 2.
  size_t branchedBits() const;

  /// Renders the automaton in the textual DSL accepted by p4a::parseAutomaton.
  std::string print() const;

private:
  std::vector<std::string> HeaderNames;
  std::vector<size_t> HeaderSizes;
  std::unordered_map<std::string, HeaderId> HeaderIndex;

  std::vector<State> States;
  std::unordered_map<std::string, StateId> StateIndex;
};

/// Width of \p E under \p Aut's header sizes, or nullopt if ill-formed
/// (the typing judgement ⊢E of Definition 3.1).
std::optional<size_t> exprWidth(const Automaton &Aut, const ExprRef &E);

/// Renders \p E using \p Aut's header names.
std::string printExpr(const Automaton &Aut, const ExprRef &E);

} // namespace p4a
} // namespace leapfrog

#endif // LEAPFROG_P4A_SYNTAX_H
