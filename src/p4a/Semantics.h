//===- Semantics.h - P4 automaton concrete semantics ------------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concrete (reference) semantics of P4 automata: stores, expression
/// and operation evaluation, transition selection, and the bit-by-bit
/// configuration dynamics of Definitions 3.1–3.6. This is the ground truth
/// the symbolic checker is validated against in the test suite.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_P4A_SEMANTICS_H
#define LEAPFROG_P4A_SEMANTICS_H

#include "p4a/Syntax.h"
#include "support/Hashing.h"

#include <vector>

namespace leapfrog {
namespace p4a {

/// A store s : H → {0,1}* with |s(h)| = sz(h), represented densely.
class Store {
public:
  Store() = default;

  /// Builds the all-zero store for \p Aut.
  explicit Store(const Automaton &Aut);

  /// Builds a store whose headers are filled from \p Raw, header 0 first.
  /// \p Raw supplies totalHeaderBits() bits; missing bits default to zero.
  static Store fromBits(const Automaton &Aut, const Bitvector &Raw);

  const Bitvector &get(HeaderId H) const {
    assert(H < Values.size() && "header id out of range");
    return Values[H];
  }

  /// s[v/h] (Definition 3.2): functional update in place.
  void set(HeaderId H, Bitvector V) {
    assert(H < Values.size() && "header id out of range");
    assert(V.size() == Values[H].size() && "assigned value has wrong width");
    Values[H] = std::move(V);
  }

  size_t numHeaders() const { return Values.size(); }

  /// All header bits concatenated, header 0 first (inverse of fromBits).
  Bitvector toBits() const;

  bool operator==(const Store &O) const { return Values == O.Values; }
  size_t hash() const;

private:
  std::vector<Bitvector> Values;
};

/// Evaluates expression \p E in store \p S (⟦e⟧E, Definition 3.1).
Bitvector evalExpr(const Automaton &Aut, const Store &S, const ExprRef &E);

/// Runs a state's operation block on (\p S, \p Input) where \p Input has
/// exactly opBits worth of data; returns the updated store (⟦op⟧O,
/// Definition 3.2; the leftover bitstring is always epsilon for well-typed
/// inputs, so it is not returned).
Store evalOps(const Automaton &Aut, const std::vector<Op> &Ops, Store S,
              const Bitvector &Input);

/// Evaluates a transition block in \p S (⟦tz⟧T, Definition 3.3).
StateRef evalTransition(const Automaton &Aut, const Transition &Tz,
                        const Store &S);

/// A configuration ⟨q, s, w⟩ (Definition 3.4): the current state, the store,
/// and the buffer of bits read since the last transition. Invariant:
/// |w| < ||op(q)|| when q is a user state; w = ε when q is terminal.
struct Config {
  StateRef Q;
  Store S;
  Bitvector Buf;

  bool accepting() const { return Q.isAccept() && Buf.empty(); }

  bool operator==(const Config &O) const {
    return Q == O.Q && S == O.S && Buf == O.Buf;
  }
  size_t hash() const {
    return hashAll(static_cast<int>(Q.K), Q.Id, S.hash(), Buf.hash());
  }
};

/// The step function δ : C × {0,1} → C (Definition 3.5). Reads one bit:
/// either buffers it, or — when the buffer fills ||op(q)|| — runs the state
/// block and actuates the transition. Terminal states step to reject.
Config step(const Automaton &Aut, Config C, bool Bit);

/// δ* (Definition 3.6): runs \p Word through \p C bit by bit.
Config multiStep(const Automaton &Aut, Config C, const Bitvector &Word);

/// True iff \p Word ∈ L(⟨Q, S, ε⟩) (Definition 3.6).
bool accepts(const Automaton &Aut, StateRef Q, const Store &S,
             const Bitvector &Word);

/// Initial configuration ⟨Q, S, ε⟩.
inline Config initialConfig(StateRef Q, Store S) {
  return Config{Q, std::move(S), Bitvector()};
}

} // namespace p4a
} // namespace leapfrog

#endif // LEAPFROG_P4A_SEMANTICS_H
