//===- Parser.cpp - Textual front-end for P4 automata ---------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "p4a/Parser.h"

#include "p4a/Typing.h"

#include <cctype>
#include <cstdio>

using namespace leapfrog;
using namespace leapfrog::p4a;

namespace {

struct Token {
  enum class Kind {
    Ident,   // state names, header names, keywords
    Number,  // decimal number
    Binary,  // bare or 0b binary literal
    Hex,     // 0x literal
    Punct,   // single punctuation or multi-char operator
    End,
  };

  Kind K = Kind::End;
  std::string Text;
  int Line = 0;
};

class Lexer {
public:
  explicit Lexer(const std::string &Source) : Src(Source) { advance(); }

  const Token &peek() const { return Current; }

  Token take() {
    Token T = Current;
    advance();
    return T;
  }

private:
  void advance() {
    skipTrivia();
    Current.Line = Line;
    if (Pos >= Src.size()) {
      Current.K = Token::Kind::End;
      Current.Text.clear();
      return;
    }
    char C = Src[Pos];
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Begin = Pos;
      while (Pos < Src.size() &&
             (std::isalnum(static_cast<unsigned char>(Src[Pos])) ||
              Src[Pos] == '_'))
        ++Pos;
      Current.K = Token::Kind::Ident;
      Current.Text = Src.substr(Begin, Pos - Begin);
      // A bare `_` is punctuation (the wildcard pattern).
      if (Current.Text == "_")
        Current.K = Token::Kind::Punct;
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      lexNumber();
      return;
    }
    // Multi-character operators.
    for (const char *Op : {"++", ":=", "=>"}) {
      size_t Len = 2;
      if (Src.compare(Pos, Len, Op) == 0) {
        Current.K = Token::Kind::Punct;
        Current.Text = Op;
        Pos += Len;
        return;
      }
    }
    Current.K = Token::Kind::Punct;
    Current.Text = std::string(1, C);
    ++Pos;
  }

  void lexNumber() {
    size_t Begin = Pos;
    if (Src.compare(Pos, 2, "0b") == 0 || Src.compare(Pos, 2, "0B") == 0) {
      Pos += 2;
      while (Pos < Src.size() && (Src[Pos] == '0' || Src[Pos] == '1' ||
                                  Src[Pos] == '_'))
        ++Pos;
      Current.K = Token::Kind::Binary;
      Current.Text = Src.substr(Begin + 2, Pos - Begin - 2);
      return;
    }
    if (Src.compare(Pos, 2, "0x") == 0 || Src.compare(Pos, 2, "0X") == 0) {
      Pos += 2;
      while (Pos < Src.size() &&
             (std::isxdigit(static_cast<unsigned char>(Src[Pos])) ||
              Src[Pos] == '_'))
        ++Pos;
      Current.K = Token::Kind::Hex;
      Current.Text = Src.substr(Begin + 2, Pos - Begin - 2);
      return;
    }
    while (Pos < Src.size() &&
           std::isdigit(static_cast<unsigned char>(Src[Pos])))
      ++Pos;
    std::string Digits = Src.substr(Begin, Pos - Begin);
    // Bare digit strings of only 0/1 are binary literals in pattern and
    // expression positions (matching the paper's `(0001) => ...` style),
    // but plain decimal in width positions; the parser decides from
    // context, so report both facets: Kind::Number with the raw text.
    Current.K = Token::Kind::Number;
    Current.Text = Digits;
  }

  void skipTrivia() {
    while (Pos < Src.size()) {
      char C = Src[Pos];
      if (std::isspace(static_cast<unsigned char>(C))) {
        if (C == '\n')
          ++Line;
        ++Pos;
        continue;
      }
      if (C == '#' || (C == '/' && Pos + 1 < Src.size() &&
                       Src[Pos + 1] == '/')) {
        while (Pos < Src.size() && Src[Pos] != '\n')
          ++Pos;
        continue;
      }
      break;
    }
  }

  const std::string &Src;
  size_t Pos = 0;
  int Line = 1;
  Token Current;
};

/// Recursive-descent parser for the DSL. Collects errors instead of
/// throwing; on error it attempts to resynchronize at the next state.
class Parser {
public:
  explicit Parser(const std::string &Source) : Lex(Source) {}

  ParseResult run() {
    // Pass 1 fills in header sizes and state names so bodies can forward-
    // reference both; it is folded into construction: headers are declared
    // by `header` items and by `extract(h, n)` when first seen, and states
    // via declareState. To let an assignment mention a header that is only
    // extracted *later*, we pre-scan for extracts and header declarations.
    prescan();
    while (!atEnd() && Result.Errors.size() < 20) {
      if (peekIdent("state")) {
        parseState();
        continue;
      }
      if (peekIdent("header")) {
        parseHeaderDecl();
        continue;
      }
      error("expected 'state' or 'header'");
      Lex.take();
    }
    if (Result.ok())
      for (const std::string &D : typeCheck(Result.Aut))
        Result.Errors.push_back("type error: " + D);
    return std::move(Result);
  }

private:
  void prescan() {
    // A light re-lex of the whole source looking for `extract(ident, num)`
    // and `header ident : num`.
    Lexer Scan = Lex;
    Token A = Scan.take();
    Token B = Scan.take();
    Token C = Scan.take();
    Token D = Scan.take();
    Token E = Scan.take();
    auto Shift = [&]() {
      A = B;
      B = C;
      C = D;
      D = E;
      E = Scan.take();
    };
    while (A.K != Token::Kind::End) {
      if (A.K == Token::Kind::Ident && A.Text == "extract" &&
          B.Text == "(" && C.K == Token::Kind::Ident && D.Text == "," &&
          E.K == Token::Kind::Number)
        declareHeader(C.Text, std::stoul(E.Text), C.Line);
      if (A.K == Token::Kind::Ident && A.Text == "header" &&
          B.K == Token::Kind::Ident && C.Text == ":" &&
          D.K == Token::Kind::Number)
        declareHeader(B.Text, std::stoul(D.Text), B.Line);
      if (A.K == Token::Kind::Ident && A.Text == "state" &&
          B.K == Token::Kind::Ident)
        Result.Aut.declareState(B.Text);
      Shift();
    }
  }

  bool atEnd() const { return Lex.peek().K == Token::Kind::End; }

  /// Declares (or re-finds) a header, diagnosing size conflicts instead of
  /// tripping the Automaton-level assertion.
  std::optional<HeaderId> declareHeader(const std::string &Name,
                                        size_t Bits, int Line) {
    if (auto H = Result.Aut.findHeader(Name)) {
      if (Result.Aut.headerSize(*H) != Bits) {
        Result.Errors.push_back(
            "line " + std::to_string(Line) + ": header '" + Name +
            "' redeclared with size " + std::to_string(Bits) +
            " (previously " +
            std::to_string(Result.Aut.headerSize(*H)) + ")");
        return std::nullopt;
      }
      return H;
    }
    return Result.Aut.addHeader(Name, Bits);
  }

  bool peekIdent(const std::string &S) const {
    return Lex.peek().K == Token::Kind::Ident && Lex.peek().Text == S;
  }

  bool peekPunct(const std::string &S) const {
    return Lex.peek().K == Token::Kind::Punct && Lex.peek().Text == S;
  }

  void error(const std::string &Msg) {
    Result.Errors.push_back("line " + std::to_string(Lex.peek().Line) +
                            ": " + Msg +
                            (Lex.peek().Text.empty()
                                 ? ""
                                 : " (at '" + Lex.peek().Text + "')"));
  }

  bool expectPunct(const std::string &S) {
    if (peekPunct(S)) {
      Lex.take();
      return true;
    }
    error("expected '" + S + "'");
    return false;
  }

  std::string expectIdent() {
    if (Lex.peek().K == Token::Kind::Ident)
      return Lex.take().Text;
    error("expected identifier");
    return "";
  }

  size_t expectNumber() {
    if (Lex.peek().K == Token::Kind::Number)
      return std::stoul(Lex.take().Text);
    error("expected number");
    return 0;
  }

  void parseHeaderDecl() {
    Lex.take(); // 'header'
    std::string Name = expectIdent();
    expectPunct(":");
    size_t Bits = expectNumber();
    expectPunct(";");
    if (!Name.empty() && Bits > 0)
      declareHeader(Name, Bits, Lex.peek().Line);
  }

  StateRef parseTarget() {
    if (peekIdent("accept")) {
      Lex.take();
      return StateRef::accept();
    }
    if (peekIdent("reject")) {
      Lex.take();
      return StateRef::reject();
    }
    std::string Name = expectIdent();
    if (Name.empty())
      return StateRef::reject();
    return StateRef::normal(Result.Aut.declareState(Name));
  }

  /// Parses a literal token into a bitvector; bare digit runs are binary.
  std::optional<Bitvector> parseLiteralToken() {
    const Token &T = Lex.peek();
    if (T.K == Token::Kind::Binary) {
      Bitvector BV = Bitvector::fromString(Lex.take().Text);
      return BV;
    }
    if (T.K == Token::Kind::Hex) {
      std::string Hex = Lex.take().Text;
      Bitvector BV;
      for (char C : Hex) {
        if (C == '_')
          continue;
        int V = std::isdigit(static_cast<unsigned char>(C))
                    ? C - '0'
                    : std::tolower(static_cast<unsigned char>(C)) - 'a' + 10;
        BV = BV.concat(Bitvector::fromUint(uint64_t(V), 4));
      }
      return BV;
    }
    if (T.K == Token::Kind::Number) {
      // In literal position a bare digit run must be binary.
      std::string Digits = Lex.take().Text;
      for (char C : Digits)
        if (C != '0' && C != '1') {
          error("bare numeric literal '" + Digits +
                "' contains non-binary digits; use 0b or 0x");
          return std::nullopt;
        }
      return Bitvector::fromString(Digits);
    }
    return std::nullopt;
  }

  ExprRef parsePrimary() {
    if (peekPunct("(")) {
      Lex.take();
      ExprRef E = parseExpr();
      expectPunct(")");
      return E;
    }
    if (Lex.peek().K == Token::Kind::Ident) {
      std::string Name = Lex.take().Text;
      auto H = Result.Aut.findHeader(Name);
      if (!H) {
        error("unknown header '" + Name + "'");
        return nullptr;
      }
      return Expr::mkHeader(*H);
    }
    if (auto BV = parseLiteralToken())
      return Expr::mkLiteral(std::move(*BV));
    error("expected expression");
    return nullptr;
  }

  ExprRef parseAtom() {
    ExprRef E = parsePrimary();
    while (E && peekPunct("[")) {
      Lex.take();
      size_t Lo = expectNumber();
      expectPunct(":");
      size_t Hi = expectNumber();
      expectPunct("]");
      E = Expr::mkSlice(E, Lo, Hi);
    }
    return E;
  }

  ExprRef parseExpr() {
    ExprRef E = parseAtom();
    while (E && peekPunct("++")) {
      Lex.take();
      ExprRef R = parseAtom();
      if (!R)
        return nullptr;
      E = Expr::mkConcat(E, R);
    }
    return E;
  }

  Pattern parsePattern() {
    if (peekPunct("_")) {
      Lex.take();
      return Pattern::wildcard();
    }
    if (auto BV = parseLiteralToken())
      return Pattern::exact(std::move(*BV));
    error("expected pattern (literal or '_')");
    Lex.take();
    return Pattern::wildcard();
  }

  std::vector<Pattern> parsePatternTuple() {
    std::vector<Pattern> Pats;
    if (peekPunct("(")) {
      Lex.take();
      Pats.push_back(parsePattern());
      while (peekPunct(",")) {
        Lex.take();
        Pats.push_back(parsePattern());
      }
      expectPunct(")");
      return Pats;
    }
    Pats.push_back(parsePattern());
    return Pats;
  }

  Transition parseTransition() {
    if (peekIdent("goto")) {
      Lex.take();
      return Transition::mkGoto(parseTarget());
    }
    // select(e1, .., ek) { cases }
    Lex.take(); // 'select'
    expectPunct("(");
    std::vector<ExprRef> Ds;
    Ds.push_back(parseExpr());
    while (peekPunct(",")) {
      Lex.take();
      Ds.push_back(parseExpr());
    }
    expectPunct(")");
    expectPunct("{");
    std::vector<SelectCase> Cases;
    while (!peekPunct("}") && !atEnd()) {
      SelectCase C;
      C.Pats = parsePatternTuple();
      expectPunct("=>");
      C.Target = parseTarget();
      Cases.push_back(std::move(C));
    }
    expectPunct("}");
    return Transition::mkSelect(std::move(Ds), std::move(Cases));
  }

  void parseState() {
    Lex.take(); // 'state'
    std::string Name = expectIdent();
    if (Name.empty())
      return;
    StateId Id = Result.Aut.declareState(Name);
    expectPunct("{");
    std::vector<Op> Ops;
    Transition Tz = Transition::mkGoto(StateRef::reject());
    bool SawTransition = false;
    while (!peekPunct("}") && !atEnd()) {
      if (peekIdent("extract")) {
        Lex.take();
        expectPunct("(");
        std::string H = expectIdent();
        expectPunct(",");
        size_t Bits = expectNumber();
        expectPunct(")");
        expectPunct(";");
        if (!H.empty() && Bits > 0)
          if (auto Id = declareHeader(H, Bits, Lex.peek().Line))
            Ops.push_back(Op::extract(*Id));
        continue;
      }
      if (peekIdent("goto") || peekIdent("select")) {
        Tz = parseTransition();
        SawTransition = true;
        break;
      }
      // Assignment: ident := expr ;
      std::string H = expectIdent();
      if (H.empty()) {
        Lex.take();
        continue;
      }
      auto HId = Result.Aut.findHeader(H);
      if (!HId)
        error("assignment to unknown header '" + H + "'");
      expectPunct(":=");
      ExprRef E = parseExpr();
      expectPunct(";");
      if (HId && E)
        Ops.push_back(Op::assign(*HId, std::move(E)));
    }
    if (!SawTransition)
      error("state '" + Name + "' has no goto/select transition");
    expectPunct("}");
    Result.Aut.setState(Id, std::move(Ops), std::move(Tz));
  }

  Lexer Lex;
  ParseResult Result;
};

} // namespace

ParseResult p4a::parseAutomaton(const std::string &Source) {
  return Parser(Source).run();
}

Automaton p4a::parseAutomatonOrDie(const std::string &Source) {
  ParseResult R = parseAutomaton(Source);
  if (!R.ok()) {
    for (const std::string &E : R.Errors)
      std::fprintf(stderr, "p4a parse error: %s\n", E.c_str());
    assert(false && "parseAutomatonOrDie failed; see stderr");
  }
  return std::move(R.Aut);
}
