//===- Semantics.cpp - P4 automaton concrete semantics --------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "p4a/Semantics.h"

using namespace leapfrog;
using namespace leapfrog::p4a;

Store::Store(const Automaton &Aut) {
  Values.reserve(Aut.numHeaders());
  for (HeaderId H = 0; H < Aut.numHeaders(); ++H)
    Values.emplace_back(Aut.headerSize(H));
}

Store Store::fromBits(const Automaton &Aut, const Bitvector &Raw) {
  Store S(Aut);
  size_t Offset = 0;
  for (HeaderId H = 0; H < Aut.numHeaders(); ++H) {
    size_t Sz = Aut.headerSize(H);
    Bitvector V(Sz);
    for (size_t I = 0; I < Sz; ++I)
      if (Offset + I < Raw.size())
        V.setBit(I, Raw.bit(Offset + I));
    S.Values[H] = std::move(V);
    Offset += Sz;
  }
  return S;
}

Bitvector Store::toBits() const {
  Bitvector All;
  for (const Bitvector &V : Values)
    All = All.concat(V);
  return All;
}

size_t Store::hash() const {
  size_t H = 0;
  for (const Bitvector &V : Values)
    hashCombine(H, V.hash());
  return H;
}

Bitvector p4a::evalExpr(const Automaton &Aut, const Store &S,
                        const ExprRef &E) {
  assert(E && "evaluating null expression");
  switch (E->kind()) {
  case Expr::Kind::Header:
    return S.get(E->header());
  case Expr::Kind::Literal:
    return E->literal();
  case Expr::Kind::Slice:
    return evalExpr(Aut, S, E->sliceOperand()).slice(E->sliceLo(),
                                                     E->sliceHi());
  case Expr::Kind::Concat:
    return evalExpr(Aut, S, E->concatLhs())
        .concat(evalExpr(Aut, S, E->concatRhs()));
  }
  assert(false && "unknown expression kind");
  return Bitvector();
}

Store p4a::evalOps(const Automaton &Aut, const std::vector<Op> &Ops, Store S,
                   const Bitvector &Input) {
  size_t Cursor = 0;
  for (const Op &O : Ops) {
    if (O.K == Op::Kind::Extract) {
      size_t Sz = Aut.headerSize(O.Target);
      assert(Cursor + Sz <= Input.size() &&
             "operation block given too few bits (⊢O violated)");
      S.set(O.Target, Input.extract(Cursor, Cursor + Sz));
      Cursor += Sz;
    } else {
      Bitvector V = evalExpr(Aut, S, O.Value);
      assert(V.size() == Aut.headerSize(O.Target) &&
             "assignment width mismatch (⊢O violated)");
      S.set(O.Target, std::move(V));
    }
  }
  assert(Cursor == Input.size() &&
         "operation block left unconsumed bits (⊢O violated)");
  return S;
}

StateRef p4a::evalTransition(const Automaton &Aut, const Transition &Tz,
                             const Store &S) {
  if (Tz.IsGoto)
    return Tz.GotoTarget;
  std::vector<Bitvector> Values;
  Values.reserve(Tz.Discriminants.size());
  for (const ExprRef &E : Tz.Discriminants)
    Values.push_back(evalExpr(Aut, S, E));
  for (const SelectCase &C : Tz.Cases) {
    assert(C.Pats.size() == Values.size() &&
           "select case arity mismatch (⊢T violated)");
    bool All = true;
    for (size_t I = 0; I < Values.size(); ++I)
      All &= C.Pats[I].matches(Values[I]);
    if (All)
      return C.Target;
  }
  return StateRef::reject();
}

Config p4a::step(const Automaton &Aut, Config C, bool Bit) {
  // Terminal configurations step unconditionally to reject (accept must not
  // parse further input; see the remark after Definition 3.5).
  if (C.Q.isTerminal()) {
    C.Q = StateRef::reject();
    return C;
  }
  size_t Needed = Aut.opBits(C.Q.Id);
  C.Buf.pushBack(Bit);
  if (C.Buf.size() < Needed)
    return C;
  assert(C.Buf.size() == Needed && "buffer overran the operation block");
  const State &St = Aut.state(C.Q.Id);
  Store S2 = evalOps(Aut, St.Ops, std::move(C.S), C.Buf);
  StateRef Next = evalTransition(Aut, St.Tz, S2);
  return Config{Next, std::move(S2), Bitvector()};
}

Config p4a::multiStep(const Automaton &Aut, Config C, const Bitvector &Word) {
  for (size_t I = 0; I < Word.size(); ++I)
    C = step(Aut, std::move(C), Word.bit(I));
  return C;
}

bool p4a::accepts(const Automaton &Aut, StateRef Q, const Store &S,
                  const Bitvector &Word) {
  return multiStep(Aut, initialConfig(Q, S), Word).accepting();
}
