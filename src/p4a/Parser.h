//===- Parser.h - Textual front-end for P4 automata -------------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A parser for the surface syntax used throughout the paper's figures, so
/// case studies can be transcribed verbatim:
///
/// \code
///   state q1 {
///     extract(mpls, 32);
///     select(mpls[23:23]) {
///       0 => q1
///       1 => q2
///     }
///   }
///   state q2 {
///     extract(udp, 64);
///     goto accept
///   }
/// \endcode
///
/// Literals: `0b0101`, `0x86dd` (4 bits/digit), or bare binary `0001`.
/// Assignments are written `h := e`; concatenation is `e1 ++ e2`; slices
/// are `e[lo:hi]` with the paper's inclusive bounds. Optional
/// `header name : bits;` declarations allow assigning to headers that are
/// never extracted. `//` and `#` start line comments.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_P4A_PARSER_H
#define LEAPFROG_P4A_PARSER_H

#include "p4a/Syntax.h"

#include <string>
#include <vector>

namespace leapfrog {
namespace p4a {

/// Result of parsing: the automaton (valid only if Errors is empty) plus
/// any diagnostics, each prefixed with a line number.
struct ParseResult {
  Automaton Aut;
  std::vector<std::string> Errors;

  bool ok() const { return Errors.empty(); }
};

/// Parses \p Source into a P4 automaton. On success the result also
/// type-checks (⊢A); typing violations are reported as errors.
ParseResult parseAutomaton(const std::string &Source);

/// Convenience for tests and the built-in case studies: parses \p Source
/// and asserts success, printing diagnostics to stderr on failure.
Automaton parseAutomatonOrDie(const std::string &Source);

} // namespace p4a
} // namespace leapfrog

#endif // LEAPFROG_P4A_PARSER_H
