//===- Fingerprint.cpp - Canonical structural fingerprints ----------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "p4a/Fingerprint.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <vector>

using namespace leapfrog;
using namespace leapfrog::p4a;

namespace {

/// The canonical renderer: one BFS over the reachable fragment, assigning
/// canonical indices to states and headers on first reference. All output
/// is positional — no names, no original ids — so any id permutation of
/// the same structure renders identically.
class Canonicalizer {
public:
  explicit Canonicalizer(const Automaton &A) : A(A) {}

  std::string run(StateRef Entry) {
    std::string Out;
    if (!Entry.isNormal())
      return Entry.isAccept() ? "entry accept\n" : "entry reject\n";

    Out += "entry s0\n";
    stateIndex(Entry.Id); // Seeds the queue with canonical state 0.
    // Queue order == canonical numbering order == first-reference order:
    // processing states in index order while referencing successors in
    // transition order is exactly BFS discovery order.
    for (size_t Next = 0; Next < Order.size(); ++Next) {
      StateId Id = Order[Next];
      const State &S = A.state(Id);
      Out += "s" + std::to_string(Next) + "{";
      for (const Op &O : S.Ops) {
        if (O.K == Op::Kind::Extract) {
          Out += "x(h" + std::to_string(headerIndex(O.Target)) + ");";
        } else {
          Out += "h" + std::to_string(headerIndex(O.Target)) +
                 ":=" + renderExpr(O.Value) + ";";
        }
      }
      Out += renderTransition(S.Tz);
      Out += "}\n";
    }
    // Header table last: canonical ids are assigned during the traversal
    // above, widths are what gives extract/assign their semantics.
    for (size_t I = 0; I < HeaderOrder.size(); ++I)
      Out += "hdr h" + std::to_string(I) + ":" +
             std::to_string(A.headerSize(HeaderOrder[I])) + "\n";
    return Out;
  }

private:
  size_t stateIndex(StateId Id) {
    auto It = StateCanon.find(Id);
    if (It != StateCanon.end())
      return It->second;
    size_t Idx = Order.size();
    StateCanon.emplace(Id, Idx);
    Order.push_back(Id);
    return Idx;
  }

  size_t headerIndex(HeaderId Id) {
    auto It = HeaderCanon.find(Id);
    if (It != HeaderCanon.end())
      return It->second;
    size_t Idx = HeaderOrder.size();
    HeaderCanon.emplace(Id, Idx);
    HeaderOrder.push_back(Id);
    return Idx;
  }

  std::string renderTarget(StateRef R) {
    if (R.isAccept())
      return "@A";
    if (R.isReject())
      return "@R";
    return "s" + std::to_string(stateIndex(R.Id));
  }

  std::string renderExpr(const ExprRef &E) {
    switch (E->kind()) {
    case Expr::Kind::Header:
      return "h" + std::to_string(headerIndex(E->header()));
    case Expr::Kind::Literal:
      return "#" + E->literal().str();
    case Expr::Kind::Slice:
      return "sl(" + renderExpr(E->sliceOperand()) + "," +
             std::to_string(E->sliceLo()) + "," +
             std::to_string(E->sliceHi()) + ")";
    case Expr::Kind::Concat:
      return "cat(" + renderExpr(E->concatLhs()) + "," +
             renderExpr(E->concatRhs()) + ")";
    }
    return "?";
  }

  std::string renderTransition(const Transition &Tz) {
    if (Tz.IsGoto)
      return "goto " + renderTarget(Tz.GotoTarget);
    std::string Out = "sel(";
    for (size_t I = 0; I < Tz.Discriminants.size(); ++I) {
      if (I)
        Out += ",";
      Out += renderExpr(Tz.Discriminants[I]);
    }
    Out += "){";
    for (const SelectCase &C : Tz.Cases) {
      for (size_t I = 0; I < C.Pats.size(); ++I) {
        if (I)
          Out += ",";
        Out += C.Pats[I].isWildcard() ? "*" : "#" + C.Pats[I].Exact->str();
      }
      Out += "=>" + renderTarget(C.Target) + ";";
    }
    Out += "}";
    return Out;
  }

  const Automaton &A;
  std::unordered_map<StateId, size_t> StateCanon;
  std::vector<StateId> Order;
  std::unordered_map<HeaderId, size_t> HeaderCanon;
  std::vector<HeaderId> HeaderOrder;
};

/// FNV-1a-64 over \p S from a caller-chosen basis. Two streams with
/// independent bases (and a final avalanche) give the 128-bit hash; the
/// algorithm is fixed here — not std::hash — so fingerprints are stable
/// across platforms, processes, and library versions, which a durable
/// cache key must be.
uint64_t fnv1a(const std::string &S, uint64_t Basis) {
  uint64_t H = Basis;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  // splitmix64 finalizer: decorrelates the two streams beyond their
  // differing bases.
  H += 0x9e3779b97f4a7c15ull;
  H = (H ^ (H >> 30)) * 0xbf58476d1ce4e5b9ull;
  H = (H ^ (H >> 27)) * 0x94d049bb133111ebull;
  return H ^ (H >> 31);
}

Fingerprint hashCanonical(const std::string &Canonical) {
  Fingerprint FP;
  FP.Hi = fnv1a(Canonical, 14695981039346656037ull);
  FP.Lo = fnv1a(Canonical, 0x6c62272e07bb0142ull);
  return FP;
}

} // namespace

std::string Fingerprint::hex() const {
  static const char Digits[] = "0123456789abcdef";
  std::string Out(32, '0');
  for (int I = 0; I < 16; ++I)
    Out[15 - I] = Digits[(Hi >> (4 * I)) & 0xf];
  for (int I = 0; I < 16; ++I)
    Out[31 - I] = Digits[(Lo >> (4 * I)) & 0xf];
  return Out;
}

std::string p4a::canonicalForm(const Automaton &A, StateRef Entry) {
  return Canonicalizer(A).run(Entry);
}

Fingerprint p4a::fingerprint(const Automaton &A, StateRef Entry) {
  return hashCanonical(canonicalForm(A, Entry));
}

Fingerprint p4a::fingerprint(const Automaton &A) {
  // No distinguished root: fingerprint every state's reachable fragment
  // and fold the sorted multiset, so the result is invariant under any
  // permutation of state ids. Terminal roots contribute one constant each
  // (included so the empty automaton still has a defined value).
  std::vector<Fingerprint> Roots;
  Roots.reserve(A.numStates() + 1);
  for (StateId Id = 0; Id < A.numStates(); ++Id)
    Roots.push_back(fingerprint(A, StateRef::normal(Id)));
  Roots.push_back(fingerprint(A, StateRef::accept()));
  std::sort(Roots.begin(), Roots.end());
  Fingerprint Out = hashCanonical("whole-automaton");
  for (const Fingerprint &R : Roots)
    Out = combineFingerprints(Out, R);
  return Out;
}

Fingerprint p4a::fingerprintBytes(const std::string &Bytes) {
  return hashCanonical(Bytes);
}

Fingerprint p4a::combineFingerprints(const Fingerprint &L,
                                     const Fingerprint &R) {
  // An order-sensitive mix (boost::hash_combine-style) in both lanes:
  // combine(a, b) != combine(b, a), as a left/right pair requires.
  Fingerprint Out;
  Out.Hi = L.Hi ^ (R.Hi + 0x9e3779b97f4a7c15ull + (L.Hi << 6) + (L.Hi >> 2));
  Out.Lo = L.Lo ^ (R.Lo + 0xc2b2ae3d27d4eb4full + (L.Lo << 6) + (L.Lo >> 2));
  return Out;
}
