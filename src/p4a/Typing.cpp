//===- Typing.cpp - P4 automaton well-formedness checks -------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "p4a/Typing.h"

using namespace leapfrog;
using namespace leapfrog::p4a;

namespace {

void checkState(const Automaton &Aut, StateId Id,
                std::vector<std::string> &Diags) {
  const State &S = Aut.state(Id);
  auto Emit = [&](const std::string &Msg) {
    Diags.push_back("state '" + S.Name + "': " + Msg);
  };

  // ⊢A requires every state to consume at least one bit (footnote 4):
  // transitions fire on the final buffered bit, so a zero-bit state could
  // never actuate its transition.
  size_t Extracted = 0;
  for (const Op &O : S.Ops) {
    if (O.K == Op::Kind::Extract) {
      if (O.Target >= Aut.numHeaders()) {
        Emit("extract references unknown header");
        continue;
      }
      Extracted += Aut.headerSize(O.Target);
      continue;
    }
    // Assignment: ⊢O requires the value width to equal the target's size.
    if (O.Target >= Aut.numHeaders()) {
      Emit("assignment targets unknown header");
      continue;
    }
    auto W = exprWidth(Aut, O.Value);
    if (!W) {
      Emit("assignment value is ill-formed");
      continue;
    }
    if (*W != Aut.headerSize(O.Target))
      Emit("assignment to '" + Aut.headerName(O.Target) + "' has width " +
           std::to_string(*W) + " but the header is " +
           std::to_string(Aut.headerSize(O.Target)) + " bits");
  }
  if (Extracted == 0)
    Emit("must extract at least one bit (||op(q)|| >= 1)");

  // ⊢T: select discriminants must be well-formed; every case must have
  // matching arity and pattern widths; goto targets must exist.
  auto CheckTarget = [&](StateRef R) {
    if (R.isNormal() && R.Id >= Aut.numStates())
      Emit("transition targets unknown state id " + std::to_string(R.Id));
  };
  const Transition &Tz = S.Tz;
  if (Tz.IsGoto) {
    CheckTarget(Tz.GotoTarget);
    return;
  }
  std::vector<size_t> Widths;
  for (const ExprRef &E : Tz.Discriminants) {
    auto W = exprWidth(Aut, E);
    if (!W) {
      Emit("select discriminant is ill-formed");
      Widths.push_back(0);
    } else {
      Widths.push_back(*W);
    }
  }
  for (const SelectCase &C : Tz.Cases) {
    CheckTarget(C.Target);
    if (C.Pats.size() != Tz.Discriminants.size()) {
      Emit("select case arity " + std::to_string(C.Pats.size()) +
           " does not match discriminant arity " +
           std::to_string(Tz.Discriminants.size()));
      continue;
    }
    for (size_t I = 0; I < C.Pats.size(); ++I) {
      const Pattern &P = C.Pats[I];
      if (!P.isWildcard() && P.Exact->size() != Widths[I])
        Emit("pattern width " + std::to_string(P.Exact->size()) +
             " does not match discriminant width " +
             std::to_string(Widths[I]));
    }
  }
}

} // namespace

std::vector<std::string> p4a::typeCheck(const Automaton &Aut) {
  std::vector<std::string> Diags;
  if (Aut.numStates() == 0)
    Diags.push_back("automaton has no states");
  for (StateId Id = 0; Id < Aut.numStates(); ++Id)
    checkState(Aut, Id, Diags);
  return Diags;
}

bool p4a::isWellTyped(const Automaton &Aut) { return typeCheck(Aut).empty(); }
