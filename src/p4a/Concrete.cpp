//===- Concrete.cpp - Brute-force equivalence oracle ----------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "p4a/Concrete.h"

#include <deque>
#include <unordered_map>

using namespace leapfrog;
using namespace leapfrog::p4a;

namespace {

/// Interns configurations of one side (automaton) into dense ids.
class ConfigTable {
public:
  size_t intern(const Config &C) {
    auto [It, Inserted] = Index.emplace(Key{C}, Configs.size());
    if (Inserted)
      Configs.push_back(C);
    return It->second;
  }

  const Config &get(size_t Id) const { return Configs[Id]; }

private:
  struct Key {
    Config C;
    bool operator==(const Key &O) const { return C == O.C; }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const { return K.C.hash(); }
  };

  std::vector<Config> Configs;
  std::unordered_map<Key, size_t, KeyHash> Index;
};

/// Union-find over (side, config-id) pairs; side 0 = left automaton.
class UnionFind {
public:
  size_t node(int Side, size_t Id) {
    auto [It, Inserted] = Index.emplace(std::make_pair(Side, Id),
                                        Parent.size());
    if (Inserted)
      Parent.push_back(Parent.size());
    return It->second;
  }

  size_t find(size_t X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  }

  /// Returns false if already merged.
  bool merge(size_t A, size_t B) {
    A = find(A);
    B = find(B);
    if (A == B)
      return false;
    Parent[A] = B;
    return true;
  }

private:
  std::vector<size_t> Parent;
  std::unordered_map<std::pair<int, size_t>, size_t, PairHash> Index;
};

} // namespace

bool concrete::configEquiv(const Automaton &A1, const Config &C1,
                           const Automaton &A2, const Config &C2) {
  ConfigTable T1, T2;
  UnionFind UF;
  std::deque<std::pair<size_t, size_t>> Work;
  Work.emplace_back(T1.intern(C1), T2.intern(C2));
  UF.merge(UF.node(0, Work.front().first), UF.node(1, Work.front().second));

  while (!Work.empty()) {
    auto [I1, I2] = Work.front();
    Work.pop_front();
    // Copy: interning below may grow the tables and move their storage.
    Config L = T1.get(I1);
    Config R = T2.get(I2);
    if (L.accepting() != R.accepting())
      return false;
    // Both-rejecting sink configurations have empty languages; stepping
    // them further cannot distinguish anything and would loop over stores.
    if (L.Q.isReject() && R.Q.isReject())
      continue;
    for (bool Bit : {false, true}) {
      size_t N1 = T1.intern(step(A1, L, Bit));
      size_t N2 = T2.intern(step(A2, R, Bit));
      if (UF.merge(UF.node(0, N1), UF.node(1, N2)))
        Work.emplace_back(N1, N2);
    }
  }
  return true;
}

bool concrete::stateEquivAllStores(const Automaton &A1, StateRef Q1,
                                   const Automaton &A2, StateRef Q2,
                                   size_t MaxStoreBits) {
  size_t B1 = A1.totalHeaderBits();
  size_t B2 = A2.totalHeaderBits();
  assert(B1 + B2 <= MaxStoreBits &&
         "store enumeration would explode; use the symbolic checker");
  (void)MaxStoreBits;
  for (uint64_t V1 = 0; V1 < (uint64_t(1) << B1); ++V1) {
    Store S1 = Store::fromBits(A1, Bitvector::fromUint(V1, B1));
    for (uint64_t V2 = 0; V2 < (uint64_t(1) << B2); ++V2) {
      Store S2 = Store::fromBits(A2, Bitvector::fromUint(V2, B2));
      if (!configEquiv(A1, initialConfig(Q1, S1), A2, initialConfig(Q2, S2)))
        return false;
    }
  }
  return true;
}

std::vector<Bitvector> concrete::acceptedWords(const Automaton &Aut,
                                               StateRef Q, const Store &S,
                                               size_t MaxLen) {
  std::vector<Bitvector> Accepted;
  // BFS over (config, word) frontier, extending one bit at a time; we keep
  // explicit words because acceptance depends on exact length.
  std::vector<std::pair<Config, Bitvector>> Frontier;
  Frontier.emplace_back(initialConfig(Q, S), Bitvector());
  if (Frontier.front().first.accepting())
    Accepted.push_back(Bitvector());
  for (size_t Len = 1; Len <= MaxLen; ++Len) {
    std::vector<std::pair<Config, Bitvector>> Next;
    Next.reserve(Frontier.size() * 2);
    for (const auto &[C, W] : Frontier) {
      // Reject sinks can never accept again; prune.
      if (C.Q.isReject())
        continue;
      for (bool Bit : {false, true}) {
        Config C2 = step(Aut, C, Bit);
        Bitvector W2 = W;
        W2.pushBack(Bit);
        if (C2.accepting())
          Accepted.push_back(W2);
        Next.emplace_back(std::move(C2), std::move(W2));
      }
    }
    Frontier = std::move(Next);
  }
  return Accepted;
}

size_t concrete::reachableConfigCount(const Automaton &Aut, StateRef Q,
                                      const Store &S, size_t Limit) {
  struct Key {
    Config C;
    bool operator==(const Key &O) const { return C == O.C; }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const { return K.C.hash(); }
  };
  std::unordered_map<Key, bool, KeyHash> Seen;
  std::deque<Config> Work;
  Config C0 = initialConfig(Q, S);
  Seen.emplace(Key{C0}, true);
  Work.push_back(C0);
  while (!Work.empty() && Seen.size() < Limit) {
    Config C = Work.front();
    Work.pop_front();
    for (bool Bit : {false, true}) {
      Config N = step(Aut, C, Bit);
      auto [It, Inserted] = Seen.emplace(Key{N}, true);
      (void)It;
      if (Inserted)
        Work.push_back(N);
    }
  }
  return Seen.size();
}
