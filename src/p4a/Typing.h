//===- Typing.h - P4 automaton well-formedness checks -----------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The typing judgements of §3 (⊢E, ⊢O, ⊢T, ⊢A), realized as a diagnostic
/// pass. ⊢A guarantees that the configuration step function δ is total:
/// every state extracts at least one bit (so transitions can actuate,
/// footnote 4), assignments are width-correct, and select patterns match
/// their discriminants' widths.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_P4A_TYPING_H
#define LEAPFROG_P4A_TYPING_H

#include "p4a/Syntax.h"

#include <string>
#include <vector>

namespace leapfrog {
namespace p4a {

/// Checks ⊢A for \p Aut. Returns a list of human-readable diagnostics;
/// empty means the automaton is well-typed.
std::vector<std::string> typeCheck(const Automaton &Aut);

/// Convenience wrapper: true iff typeCheck(Aut) is empty.
bool isWellTyped(const Automaton &Aut);

} // namespace p4a
} // namespace leapfrog

#endif // LEAPFROG_P4A_TYPING_H
