//===- Concrete.h - Brute-force equivalence oracle ---------------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete decision procedures over the configuration DFA ⟨C, δ, F⟩ of §3.2.
/// These enumerate configurations explicitly, so they only scale to the tiny
/// automata used in tests — exactly the state-space explosion the paper's
/// symbolic algorithm exists to avoid (§4: "|C| ≥ 10^38" for Figure 1).
/// They serve as the trusted oracle for validating the symbolic checker,
/// and as the paper's framing baseline for the benchmark ablations.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_P4A_CONCRETE_H
#define LEAPFROG_P4A_CONCRETE_H

#include "p4a/Semantics.h"

#include <vector>

namespace leapfrog {
namespace p4a {
namespace concrete {

/// Decides L(C1) = L(C2) exactly, via Hopcroft–Karp's almost-linear
/// union-find algorithm [Hopcroft & Karp 1971] run over the configurations
/// reachable from the pair. Terminates because C is finite.
bool configEquiv(const Automaton &A1, const Config &C1, const Automaton &A2,
                 const Config &C2);

/// Decides ∀s1 ∈ S1, s2 ∈ S2: L(⟨Q1,s1,ε⟩) = L(⟨Q2,s2,ε⟩) by enumerating
/// every pair of initial stores — the concrete meaning of the checker's
/// initial formula q1< ∧ 0< ∧ q2> ∧ 0> (§5.1). Asserts the two automata
/// have at most \p MaxStoreBits header bits combined (default 14) to bound
/// the enumeration.
bool stateEquivAllStores(const Automaton &A1, StateRef Q1,
                         const Automaton &A2, StateRef Q2,
                         size_t MaxStoreBits = 14);

/// All accepted words of length at most \p MaxLen from ⟨Q, S, ε⟩, in
/// length-then-lexicographic order. Exponential; for tests only.
std::vector<Bitvector> acceptedWords(const Automaton &Aut, StateRef Q,
                                     const Store &S, size_t MaxLen);

/// Counts configurations reachable from ⟨Q, S, ε⟩ (diagnostic for tests and
/// the state-space numbers quoted in benchmark output).
size_t reachableConfigCount(const Automaton &Aut, StateRef Q, const Store &S,
                            size_t Limit = 1u << 20);

} // namespace concrete
} // namespace p4a
} // namespace leapfrog

#endif // LEAPFROG_P4A_CONCRETE_H
