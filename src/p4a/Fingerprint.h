//===- Fingerprint.h - Canonical structural fingerprints --------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical structural fingerprints of P4 automata — the cache key of the
/// equivalence-checking service (serve/): a parser pair resubmitted to
/// `leapfrog-serve` must map to the same key no matter how its states and
/// headers happened to be numbered or named, while any semantic change
/// (a flipped pattern bit, a retargeted transition, a shifted slice) must
/// change the key.
///
/// The construction is a *rooted canonical form*: starting from an entry
/// state, states are renumbered in BFS discovery order (successor order =
/// the order targets appear in each transition, which is itself semantic),
/// headers are renumbered by first occurrence in that traversal, and the
/// reachable fragment is rendered into a byte string using only canonical
/// indices — never names, never original ids. Two automata have equal
/// canonical forms iff their reachable fragments are isomorphic as labeled
/// transition structures, which implies equal languages from the roots.
/// States and headers unreachable from the entry are excluded: they cannot
/// influence any run, so including them would only split cache keys that
/// answer identically.
///
/// fingerprint() hashes the canonical form into 128 bits. A hash equality
/// is *not* proof of structural equality — the service's result cache
/// stores the full canonical form next to every entry and compares it on
/// every probe (serve/Cache.h), the lesson of the PR 3 frontier-dedup
/// collision bug: never let a hash equality stand in for the equality it
/// approximates.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_P4A_FINGERPRINT_H
#define LEAPFROG_P4A_FINGERPRINT_H

#include "p4a/Syntax.h"

#include <cstdint>
#include <string>

namespace leapfrog {
namespace p4a {

/// A 128-bit structural hash. Value type; compare, hash, or render as 32
/// hex digits. The width makes *accidental* collisions astronomically
/// unlikely, but consumers that would be wrong under a collision must
/// still compare canonical forms (see the file comment).
struct Fingerprint {
  uint64_t Hi = 0;
  uint64_t Lo = 0;

  bool operator==(const Fingerprint &O) const {
    return Hi == O.Hi && Lo == O.Lo;
  }
  bool operator!=(const Fingerprint &O) const { return !(*this == O); }
  bool operator<(const Fingerprint &O) const {
    return Hi != O.Hi ? Hi < O.Hi : Lo < O.Lo;
  }

  /// 32 lowercase hex digits (Hi first) — the service's certificate
  /// handle and wire representation.
  std::string hex() const;
};

/// std::unordered_map-compatible hasher.
struct FingerprintHasher {
  size_t operator()(const Fingerprint &FP) const {
    // The fingerprint is already a high-quality hash; fold the halves.
    return size_t(FP.Hi ^ (FP.Lo * 0x9e3779b97f4a7c15ull));
  }
};

/// Renders the fragment of \p A reachable from \p Entry in canonical
/// form (see the file comment). Deterministic, name-free, and invariant
/// under any renumbering of \p A's state and header ids. Terminal entries
/// render to the one-line forms "entry accept" / "entry reject".
std::string canonicalForm(const Automaton &A, StateRef Entry);

/// 128-bit hash (two independent FNV-1a streams) of
/// canonicalForm(A, Entry).
Fingerprint fingerprint(const Automaton &A, StateRef Entry);

/// Whole-automaton fingerprint: the order-insensitive combination of the
/// rooted fingerprints of every state (plus accept). Insensitive to state
/// and header numbering with no distinguished root, at O(states) rooted
/// traversals — fine for elaborated parsers (tens to hundreds of states);
/// pair-keyed consumers like the service cache use the rooted form, which
/// is one traversal per side.
Fingerprint fingerprint(const Automaton &A);

/// Mixes two fingerprints order-*sensitively* (a left/right parser pair
/// is ordered; check(L, R) and check(R, L) are different requests).
Fingerprint combineFingerprints(const Fingerprint &L, const Fingerprint &R);

/// 128-bit hash of an arbitrary byte string — the same two-stream
/// construction the automaton fingerprints use. For composite keys built
/// *from* canonical forms (the service cache hashes "canonical pair text
/// + option rendering" as one string; serve/Cache.h).
Fingerprint fingerprintBytes(const std::string &Bytes);

} // namespace p4a
} // namespace leapfrog

#endif // LEAPFROG_P4A_FINGERPRINT_H
