//===- Lower.h - The ConfRel → SMT compilation chain ------------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The complete lowering pipeline of Figure 6, from a high-level ConfRel
/// entailment ⋀R ⊨ ψ down to a FOL(BV) validity query:
///
///   1. algebraic simplifications — applied by the smart constructors
///      during formula construction (ConfRel.h);
///   2. template filtering (ConfRel → ConfRelSimp) — premises whose guard
///      differs from the goal's guard hold vacuously on every
///      configuration pair the goal constrains, so they are discarded;
///   3. FOL compilation (ConfRelSimp → FOL(Conf)) — state and buffer-
///      length assertions are resolved against the guard and slices are
///      exactified (FolConf.h);
///   4. store elimination (FOL(Conf) → FOL(BV)) — finite-map selections
///      become flat bitvector variables (FolConf.h).
///
/// The resulting query's *validity over all variable assignments* is the
/// truth of the entailment; the solver decides it as UNSAT of the
/// negation.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_LOGIC_LOWER_H
#define LEAPFROG_LOGIC_LOWER_H

#include "logic/FolConf.h"

namespace leapfrog {
namespace logic {

/// Artifacts of lowering one entailment; the intermediate stages are kept
/// for inspection, testing and the bench harness's size reporting.
struct LowerResult {
  /// Valid (over all assignments) iff the entailment holds.
  smt::BvFormulaRef Query;
  /// Stage 2 output: the filtered premise conjunction (ConfRelSimp).
  PureRef FilteredPremise;
  /// Stage 3 output for the full implication premise ⇒ goal.
  folconf::FormulaRef Intermediate;
  /// How many premises the goal's guard kept vs. received.
  size_t PremisesKept = 0;
  size_t PremisesTotal = 0;
};

/// Lowers the entailment  ⋀Premises ⊨ (Goal.TP ⇒ Goal.Phi)  to FOL(BV).
/// Premises may carry arbitrary guards; only those matching Goal.TP
/// survive filtering.
LowerResult lowerEntailment(const p4a::Automaton &Left,
                            const p4a::Automaton &Right,
                            const std::vector<GuardedFormula> &Premises,
                            const GuardedFormula &Goal);

/// Lowers a single pure formula under \p TP to FOL(BV) (used for the final
/// φ ⊨ ⋀R check, where φ's premise implies each matching conjunct).
smt::BvFormulaRef lowerPure(const p4a::Automaton &Left,
                            const p4a::Automaton &Right, TemplatePair TP,
                            const PureRef &F);

} // namespace logic
} // namespace leapfrog

#endif // LEAPFROG_LOGIC_LOWER_H
