//===- Lower.h - The ConfRel → SMT compilation chain ------------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The complete lowering pipeline of Figure 6, from a high-level ConfRel
/// entailment ⋀R ⊨ ψ down to a FOL(BV) validity query:
///
///   1. algebraic simplifications — applied by the smart constructors
///      during formula construction (ConfRel.h);
///   2. template filtering (ConfRel → ConfRelSimp) — premises whose guard
///      differs from the goal's guard hold vacuously on every
///      configuration pair the goal constrains, so they are discarded;
///   3. FOL compilation (ConfRelSimp → FOL(Conf)) — state and buffer-
///      length assertions are resolved against the guard and slices are
///      exactified (FolConf.h);
///   4. store elimination (FOL(Conf) → FOL(BV)) — finite-map selections
///      become flat bitvector variables (FolConf.h).
///
/// The resulting query's *validity over all variable assignments* is the
/// truth of the entailment; the solver decides it as UNSAT of the
/// negation.
///
/// **Compositionality invariant.** Stages 3 and 4 are homomorphic in the
/// boolean structure, and store elimination names variables purely as a
/// function of (automata, guard template pair): `h≶name` for header
/// selections, `buf≶` for buffers, `$name` for WP rigids. Consequently
/// lowering a conjunction equals the conjunction of the lowerings, and
/// lowering premises *one at a time* under a fixed guard produces the
/// same FOL(BV) semantics as lowering the whole implication at once.
/// The checker's incremental solver sessions (core/Checker.cpp,
/// smt/Solver.h) are built on this: each conjunct of ⋀R is lowered via
/// lowerPure() and asserted once, then goals are posed against the
/// accumulated premise set. Any future lowering stage that mints
/// context-dependent fresh names (per-call counters, per-query renaming)
/// would silently break that path — extend the differential tests in
/// CheckerTest (IncrementalDifferential) if you change the naming
/// scheme.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_LOGIC_LOWER_H
#define LEAPFROG_LOGIC_LOWER_H

#include "logic/FolConf.h"

namespace leapfrog {
namespace logic {

/// Artifacts of lowering one entailment; the intermediate stages are kept
/// for inspection, testing and the bench harness's size reporting.
struct LowerResult {
  /// Valid (over all assignments) iff the entailment holds.
  smt::BvFormulaRef Query;
  /// Stage 2 output: the filtered premise conjunction (ConfRelSimp).
  PureRef FilteredPremise;
  /// Stage 3 output for the full implication premise ⇒ goal.
  folconf::FormulaRef Intermediate;
  /// How many premises the goal's guard kept vs. received.
  size_t PremisesKept = 0;
  size_t PremisesTotal = 0;
};

/// Lowers the entailment  ⋀Premises ⊨ (Goal.TP ⇒ Goal.Phi)  to FOL(BV).
/// Premises may carry arbitrary guards; only those matching Goal.TP
/// survive filtering.
LowerResult lowerEntailment(const p4a::Automaton &Left,
                            const p4a::Automaton &Right,
                            const std::vector<GuardedFormula> &Premises,
                            const GuardedFormula &Goal);

/// Lowers a single pure formula under \p TP to FOL(BV) (used for the final
/// φ ⊨ ⋀R check, where φ's premise implies each matching conjunct).
smt::BvFormulaRef lowerPure(const p4a::Automaton &Left,
                            const p4a::Automaton &Right, TemplatePair TP,
                            const PureRef &F);

} // namespace logic
} // namespace leapfrog

#endif // LEAPFROG_LOGIC_LOWER_H
