//===- FolConf.cpp - First-order logic over configurations ----------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "logic/FolConf.h"

#include <algorithm>

using namespace leapfrog;
using namespace leapfrog::logic;
using namespace leapfrog::logic::folconf;

//===----------------------------------------------------------------------===//
// Terms
//===----------------------------------------------------------------------===//

TermRef Term::mkStoreSelect(Side S, p4a::HeaderId H, size_t Width) {
  assert(Width > 0 && "zero-width header");
  auto T = std::shared_ptr<Term>(new Term());
  T->K = Kind::StoreSelect;
  T->Width = Width;
  T->S = S;
  T->Hdr = H;
  return T;
}

TermRef Term::mkBufVar(Side S, size_t Width) {
  auto T = std::shared_ptr<Term>(new Term());
  T->K = Kind::BufVar;
  T->Width = Width;
  T->S = S;
  return T;
}

TermRef Term::mkRigidVar(std::string Name, size_t Width) {
  assert(Width > 0 && "zero-width rigid variable");
  auto T = std::shared_ptr<Term>(new Term());
  T->K = Kind::RigidVar;
  T->Width = Width;
  T->Name = std::move(Name);
  return T;
}

TermRef Term::mkConst(Bitvector Value) {
  auto T = std::shared_ptr<Term>(new Term());
  T->K = Kind::Const;
  T->Width = Value.size();
  T->Value = std::move(Value);
  return T;
}

TermRef Term::mkConcat(TermRef L, TermRef R) {
  assert(L && R && "concat of null term");
  if (L->width() == 0)
    return R;
  if (R->width() == 0)
    return L;
  if (L->kind() == Kind::Const && R->kind() == Kind::Const)
    return mkConst(L->constValue().concat(R->constValue()));
  auto T = std::shared_ptr<Term>(new Term());
  T->K = Kind::Concat;
  T->Width = L->width() + R->width();
  T->L = std::move(L);
  T->R = std::move(R);
  return T;
}

TermRef Term::mkExtract(TermRef Operand, size_t Lo, size_t Hi) {
  assert(Operand && "extract of null term");
  assert(Lo <= Hi && Hi < Operand->width() && "extract out of bounds");
  if (Lo == 0 && Hi + 1 == Operand->width())
    return Operand;
  if (Operand->kind() == Kind::Const)
    return mkConst(Operand->constValue().extract(Lo, Hi + 1));
  auto T = std::shared_ptr<Term>(new Term());
  T->K = Kind::Extract;
  T->Width = Hi - Lo + 1;
  T->L = std::move(Operand);
  T->Lo = Lo;
  T->Hi = Hi;
  return T;
}

std::string Term::str() const {
  switch (K) {
  case Kind::StoreSelect:
    return std::string("store") + sideMark(S) + "(h" + std::to_string(Hdr) +
           ")";
  case Kind::BufVar:
    return std::string("buf") + sideMark(S);
  case Kind::RigidVar:
    return "$" + Name;
  case Kind::Const:
    return "#b" + Value.str();
  case Kind::Concat:
    return "(" + L->str() + " ++ " + R->str() + ")";
  case Kind::Extract:
    return L->str() + "[" + std::to_string(Lo) + ":" + std::to_string(Hi) +
           "]";
  }
  return "<term>";
}

//===----------------------------------------------------------------------===//
// Formulas
//===----------------------------------------------------------------------===//

FormulaRef Formula::mkTrue() {
  auto F = std::shared_ptr<Formula>(new Formula());
  F->K = Kind::True;
  return F;
}

FormulaRef Formula::mkFalse() {
  auto F = std::shared_ptr<Formula>(new Formula());
  F->K = Kind::False;
  return F;
}

FormulaRef Formula::mkEq(TermRef L, TermRef R) {
  assert(L && R && "equality over null term");
  assert(L->width() == R->width() && "equality width mismatch");
  if (L->width() == 0)
    return mkTrue();
  if (L->kind() == Term::Kind::Const && R->kind() == Term::Kind::Const)
    return L->constValue() == R->constValue() ? mkTrue() : mkFalse();
  auto F = std::shared_ptr<Formula>(new Formula());
  F->K = Kind::Eq;
  F->TL = std::move(L);
  F->TR = std::move(R);
  return F;
}

FormulaRef Formula::mkNot(FormulaRef Sub) {
  assert(Sub && "negation of null formula");
  if (Sub->kind() == Kind::True)
    return mkFalse();
  if (Sub->kind() == Kind::False)
    return mkTrue();
  if (Sub->kind() == Kind::Not)
    return Sub->sub();
  auto F = std::shared_ptr<Formula>(new Formula());
  F->K = Kind::Not;
  F->FL = std::move(Sub);
  return F;
}

FormulaRef Formula::mkAnd(FormulaRef L, FormulaRef R) {
  assert(L && R && "conjunction of null formula");
  if (L->kind() == Kind::False || R->kind() == Kind::False)
    return mkFalse();
  if (L->kind() == Kind::True)
    return R;
  if (R->kind() == Kind::True)
    return L;
  auto F = std::shared_ptr<Formula>(new Formula());
  F->K = Kind::And;
  F->FL = std::move(L);
  F->FR = std::move(R);
  return F;
}

FormulaRef Formula::mkOr(FormulaRef L, FormulaRef R) {
  assert(L && R && "disjunction of null formula");
  if (L->kind() == Kind::True || R->kind() == Kind::True)
    return mkTrue();
  if (L->kind() == Kind::False)
    return R;
  if (R->kind() == Kind::False)
    return L;
  auto F = std::shared_ptr<Formula>(new Formula());
  F->K = Kind::Or;
  F->FL = std::move(L);
  F->FR = std::move(R);
  return F;
}

FormulaRef Formula::mkImplies(FormulaRef L, FormulaRef R) {
  assert(L && R && "implication of null formula");
  if (L->kind() == Kind::False || R->kind() == Kind::True)
    return mkTrue();
  if (L->kind() == Kind::True)
    return R;
  if (R->kind() == Kind::False)
    return mkNot(std::move(L));
  auto F = std::shared_ptr<Formula>(new Formula());
  F->K = Kind::Implies;
  F->FL = std::move(L);
  F->FR = std::move(R);
  return F;
}

std::string Formula::str() const {
  switch (K) {
  case Kind::True:
    return "true";
  case Kind::False:
    return "false";
  case Kind::Eq:
    return "(" + TL->str() + " = " + TR->str() + ")";
  case Kind::Not:
    return "!" + FL->str();
  case Kind::And:
    return "(" + FL->str() + " & " + FR->str() + ")";
  case Kind::Or:
    return "(" + FL->str() + " | " + FR->str() + ")";
  case Kind::Implies:
    return "(" + FL->str() + " -> " + FR->str() + ")";
  }
  return "<formula>";
}

//===----------------------------------------------------------------------===//
// ConfRelSimp → FOL(Conf)
//===----------------------------------------------------------------------===//

namespace {

TermRef compileExpr(const Ctx &C, const BitExprRef &E) {
  switch (E->kind()) {
  case BitExpr::Kind::Lit:
    return Term::mkConst(E->literal());
  case BitExpr::Kind::Buf:
    return Term::mkBufVar(E->side(), C.bufWidth(E->side()));
  case BitExpr::Kind::Hdr:
    return Term::mkStoreSelect(E->side(), E->header(),
                               C.aut(E->side()).headerSize(E->header()));
  case BitExpr::Kind::Var:
    return Term::mkRigidVar(E->varName(), E->varWidth());
  case BitExpr::Kind::Slice: {
    TermRef Op = compileExpr(C, E->sliceOperand());
    size_t W = Op->width();
    // Exactify the clamped slice (Definition 3.1) now that the operand
    // width is static.
    if (W == 0)
      return Term::mkConst(Bitvector());
    size_t Lo = std::min(E->sliceLo(), W - 1);
    size_t Hi = std::min(E->sliceHi(), W - 1);
    if (Lo > Hi)
      return Term::mkConst(Bitvector());
    return Term::mkExtract(std::move(Op), Lo, Hi);
  }
  case BitExpr::Kind::Concat:
    return Term::mkConcat(compileExpr(C, E->concatLhs()),
                          compileExpr(C, E->concatRhs()));
  }
  assert(false && "unknown expression kind");
  return nullptr;
}

} // namespace

FormulaRef folconf::fromPure(const Ctx &C, const PureRef &F) {
  switch (F->kind()) {
  case Pure::Kind::True:
    return Formula::mkTrue();
  case Pure::Kind::False:
    return Formula::mkFalse();
  case Pure::Kind::Eq: {
    TermRef L = compileExpr(C, F->eqLhs());
    TermRef R = compileExpr(C, F->eqRhs());
    assert(L->width() == R->width() &&
           "ill-width equality survived to FOL compilation");
    return Formula::mkEq(std::move(L), std::move(R));
  }
  case Pure::Kind::Not:
    return Formula::mkNot(fromPure(C, F->sub()));
  case Pure::Kind::And:
    return Formula::mkAnd(fromPure(C, F->lhs()), fromPure(C, F->rhs()));
  case Pure::Kind::Or:
    return Formula::mkOr(fromPure(C, F->lhs()), fromPure(C, F->rhs()));
  case Pure::Kind::Implies:
    return Formula::mkImplies(fromPure(C, F->lhs()), fromPure(C, F->rhs()));
  }
  assert(false && "unknown formula kind");
  return nullptr;
}

//===----------------------------------------------------------------------===//
// FOL(Conf) → FOL(BV): store elimination
//===----------------------------------------------------------------------===//

namespace {

smt::BvTermRef eliminateTerm(const Ctx &C, const TermRef &T) {
  switch (T->kind()) {
  case Term::Kind::StoreSelect: {
    const std::string &HdrName = C.aut(T->side()).headerName(T->header());
    return smt::BvTerm::mkVar(std::string("h") + sideMark(T->side()) +
                                  HdrName,
                              T->width());
  }
  case Term::Kind::BufVar:
    if (T->width() == 0)
      return smt::BvTerm::mkConst(Bitvector());
    return smt::BvTerm::mkVar(std::string("buf") + sideMark(T->side()),
                              T->width());
  case Term::Kind::RigidVar:
    return smt::BvTerm::mkVar("$" + T->rigidName(), T->width());
  case Term::Kind::Const:
    return smt::BvTerm::mkConst(T->constValue());
  case Term::Kind::Concat:
    return smt::BvTerm::mkConcat(eliminateTerm(C, T->lhs()),
                                 eliminateTerm(C, T->rhs()));
  case Term::Kind::Extract:
    return smt::BvTerm::mkExtract(eliminateTerm(C, T->extractOperand()),
                                  T->extractLo(), T->extractHi());
  }
  assert(false && "unknown term kind");
  return nullptr;
}

} // namespace

smt::BvFormulaRef folconf::eliminateStores(const Ctx &C,
                                           const FormulaRef &F) {
  using smt::BvFormula;
  switch (F->kind()) {
  case Formula::Kind::True:
    return BvFormula::mkTrue();
  case Formula::Kind::False:
    return BvFormula::mkFalse();
  case Formula::Kind::Eq:
    return BvFormula::mkEq(eliminateTerm(C, F->eqLhs()),
                           eliminateTerm(C, F->eqRhs()));
  case Formula::Kind::Not:
    return BvFormula::mkNot(eliminateStores(C, F->sub()));
  case Formula::Kind::And:
    return BvFormula::mkAnd(eliminateStores(C, F->lhs()),
                            eliminateStores(C, F->rhs()));
  case Formula::Kind::Or:
    return BvFormula::mkOr(eliminateStores(C, F->lhs()),
                           eliminateStores(C, F->rhs()));
  case Formula::Kind::Implies:
    return BvFormula::mkImplies(eliminateStores(C, F->lhs()),
                                eliminateStores(C, F->rhs()));
  }
  assert(false && "unknown formula kind");
  return nullptr;
}
