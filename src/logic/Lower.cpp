//===- Lower.cpp - The ConfRel → SMT compilation chain --------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "logic/Lower.h"

using namespace leapfrog;
using namespace leapfrog::logic;

LowerResult logic::lowerEntailment(const p4a::Automaton &Left,
                                   const p4a::Automaton &Right,
                                   const std::vector<GuardedFormula> &Premises,
                                   const GuardedFormula &Goal) {
  LowerResult Result;
  Result.PremisesTotal = Premises.size();

  // Stage 2: template filtering. A premise guarded by a different template
  // pair is vacuously true on every configuration pair with floor Goal.TP,
  // so it contributes nothing to this entailment (§6.2).
  PureRef Premise = Pure::mkTrue();
  for (const GuardedFormula &P : Premises) {
    if (P.TP != Goal.TP)
      continue;
    Premise = Pure::mkAnd(Premise, P.Phi);
    ++Result.PremisesKept;
  }
  Result.FilteredPremise = Premise;

  // Stage 3: FOL compilation of the full implication under the guard.
  Ctx C{&Left, &Right, Goal.TP};
  folconf::FormulaRef Impl =
      folconf::fromPure(C, Pure::mkImplies(Premise, Goal.Phi));
  Result.Intermediate = Impl;

  // Stage 4: store elimination.
  Result.Query = folconf::eliminateStores(C, Impl);
  return Result;
}

smt::BvFormulaRef logic::lowerPure(const p4a::Automaton &Left,
                                   const p4a::Automaton &Right,
                                   TemplatePair TP, const PureRef &F) {
  Ctx C{&Left, &Right, TP};
  return folconf::eliminateStores(C, folconf::fromPure(C, F));
}
