//===- ConfRel.h - The configuration-relation logic -------------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The high-level logic of relations on configuration pairs (paper §4.1,
/// Figure 3). Formulas talk about a *pair* of configurations — one from a
/// "left" automaton and one from a "right" automaton — via:
///
///   - bitvector expressions over the left/right buffers (buf<, buf>), the
///     left/right header variables (h<, h>), rigid variables x ∈ Var, plus
///     literals, slices and concatenation;
///   - atomic predicates: bitvector equality, state assertions (q<, q>),
///     and buffer-length assertions (n<, n>);
///   - boolean structure.
///
/// Following §4.3, the equivalence checker works exclusively with
/// *template-guarded* formulas  t1< ∧ t2> ⇒ ψ  where t = ⟨q, n⟩ is a
/// template (Definition 4.7) and ψ is *pure* (no state or buffer-length
/// assertions). We therefore represent the guard structurally — a
/// TemplatePair — and only the pure part as an AST. Purity means a
/// formula's buffer widths are fully determined by its guard, which is
/// what makes the slice/width bookkeeping tractable (§4.3).
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_LOGIC_CONFREL_H
#define LEAPFROG_LOGIC_CONFREL_H

#include "p4a/Semantics.h"
#include "support/Hashing.h"

#include <memory>
#include <string>
#include <vector>

namespace leapfrog {
namespace logic {

/// Which side of the configuration pair an expression refers to.
enum class Side { Left, Right };

inline const char *sideMark(Side S) { return S == Side::Left ? "<" : ">"; }

/// A template ⟨q, n⟩ (Definition 4.7): a state together with a buffer
/// length, with n < ||op(q)|| for user states and n = 0 for terminals.
struct Template {
  p4a::StateRef Q;
  size_t N = 0;

  static Template accept() { return Template{p4a::StateRef::accept(), 0}; }
  static Template reject() { return Template{p4a::StateRef::reject(), 0}; }

  bool isAccept() const { return Q.isAccept(); }

  bool operator==(const Template &O) const { return Q == O.Q && N == O.N; }
  bool operator!=(const Template &O) const { return !(*this == O); }
  bool operator<(const Template &O) const {
    if (!(Q == O.Q))
      return Q < O.Q;
    return N < O.N;
  }

  size_t hash() const { return hashAll(int(Q.K), Q.Id, N); }

  /// ⌊c⌋: the unique template describing configuration \p C (§5.1).
  static Template ofConfig(const p4a::Config &C) {
    return Template{C.Q, C.Buf.size()};
  }
};

/// A pair of templates, guarding one conjunct of the symbolic relation.
struct TemplatePair {
  Template L, R;

  bool operator==(const TemplatePair &O) const {
    return L == O.L && R == O.R;
  }
  bool operator!=(const TemplatePair &O) const { return !(*this == O); }
  bool operator<(const TemplatePair &O) const {
    if (L != O.L)
      return L < O.L;
    return R < O.R;
  }
  size_t hash() const { return hashAll(L.hash(), R.hash()); }
};

/// Hash adapter for keying unordered containers by TemplatePair.
struct TemplatePairHasher {
  size_t operator()(const TemplatePair &TP) const { return TP.hash(); }
};

class BitExpr;
using BitExprRef = std::shared_ptr<const BitExpr>;

/// A bitvector expression over a configuration pair (the `be` grammar of
/// Figure 3). Slices use the paper's clamped inclusive semantics, so the
/// width of an expression depends on the widths of buf< / buf>, i.e. on
/// the guard template pair; see widthUnder().
class BitExpr {
public:
  enum class Kind { Lit, Buf, Hdr, Var, Slice, Concat };

  Kind kind() const { return K; }

  const Bitvector &literal() const {
    assert(K == Kind::Lit && "not a literal");
    return Lit;
  }
  Side side() const {
    assert((K == Kind::Buf || K == Kind::Hdr) && "expression has no side");
    return S;
  }
  p4a::HeaderId header() const {
    assert(K == Kind::Hdr && "not a header");
    return Hdr;
  }
  const std::string &varName() const {
    assert(K == Kind::Var && "not a variable");
    return Name;
  }
  size_t varWidth() const {
    assert(K == Kind::Var && "not a variable");
    return VarW;
  }
  const BitExprRef &sliceOperand() const {
    assert(K == Kind::Slice && "not a slice");
    return A;
  }
  size_t sliceLo() const {
    assert(K == Kind::Slice && "not a slice");
    return Lo;
  }
  size_t sliceHi() const {
    assert(K == Kind::Slice && "not a slice");
    return Hi;
  }
  const BitExprRef &concatLhs() const {
    assert(K == Kind::Concat && "not a concat");
    return A;
  }
  const BitExprRef &concatRhs() const {
    assert(K == Kind::Concat && "not a concat");
    return B;
  }

  static BitExprRef mkLit(Bitvector BV);
  static BitExprRef mkBuf(Side S);
  static BitExprRef mkHdr(Side S, p4a::HeaderId H);
  /// Rigid variable (paper Var; generalized to arbitrary width so one leap
  /// variable can stand for several consecutive packet bits, §5.2).
  static BitExprRef mkVar(std::string Name, size_t Width);
  static BitExprRef mkSlice(BitExprRef E, size_t Lo, size_t Hi);
  static BitExprRef mkConcat(BitExprRef L, BitExprRef R);

  std::string str() const;

private:
  BitExpr() = default;

  Kind K = Kind::Lit;
  Bitvector Lit;
  Side S = Side::Left;
  p4a::HeaderId Hdr = 0;
  std::string Name;
  size_t VarW = 0;
  BitExprRef A, B;
  size_t Lo = 0, Hi = 0;
};

class Pure;
using PureRef = std::shared_ptr<const Pure>;

/// A pure formula: boolean structure over bitvector equalities, with no
/// state or buffer-length assertions (Definition 4.7). The paper derives
/// ∧/∨ from ⇒/⊥; we provide them as first-class constructors with the
/// same semantics.
class Pure {
public:
  enum class Kind { True, False, Eq, Not, And, Or, Implies };

  Kind kind() const { return K; }

  const BitExprRef &eqLhs() const {
    assert(K == Kind::Eq && "not an equality");
    return TL;
  }
  const BitExprRef &eqRhs() const {
    assert(K == Kind::Eq && "not an equality");
    return TR;
  }
  const PureRef &sub() const {
    assert(K == Kind::Not && "not a negation");
    return FL;
  }
  const PureRef &lhs() const {
    assert((K == Kind::And || K == Kind::Or || K == Kind::Implies) &&
           "not a binary connective");
    return FL;
  }
  const PureRef &rhs() const {
    assert((K == Kind::And || K == Kind::Or || K == Kind::Implies) &&
           "not a binary connective");
    return FR;
  }

  static PureRef mkTrue();
  static PureRef mkFalse();
  static PureRef mkEq(BitExprRef L, BitExprRef R);
  static PureRef mkNot(PureRef F);
  static PureRef mkAnd(PureRef L, PureRef R);
  static PureRef mkOr(PureRef L, PureRef R);
  static PureRef mkImplies(PureRef L, PureRef R);
  static PureRef mkAndAll(const std::vector<PureRef> &Fs);
  static PureRef mkOrAll(const std::vector<PureRef> &Fs);

  std::string str() const;

  /// Structural size (node count), used to report formula growth in the
  /// benchmark harness (§6.2 motivates the smart constructors with it).
  size_t size() const;

private:
  Pure() = default;

  Kind K = Kind::True;
  BitExprRef TL, TR;
  PureRef FL, FR;
};

/// A template-guarded formula t1< ∧ t2> ⇒ ψ — `conf_rel` in the paper's
/// Coq development (Table 1). The conjunction of a set of these is the
/// checker's symbolic relation.
struct GuardedFormula {
  TemplatePair TP;
  PureRef Phi;

  std::string str(const p4a::Automaton &Left,
                  const p4a::Automaton &Right) const;
};

/// Everything needed to interpret a pure formula: the two automata and the
/// guard fixing buffer widths.
struct Ctx {
  const p4a::Automaton *Left = nullptr;
  const p4a::Automaton *Right = nullptr;
  TemplatePair TP;

  const p4a::Automaton &aut(Side S) const {
    return S == Side::Left ? *Left : *Right;
  }
  size_t bufWidth(Side S) const {
    return S == Side::Left ? TP.L.N : TP.R.N;
  }
};

/// Width of \p E under \p C (clamped slice semantics; see Definition 3.1).
/// Precondition: every header mentioned by \p E exists in its side's
/// automaton in \p C. O(|E|).
size_t widthUnder(const Ctx &C, const BitExprRef &E);

/// A valuation σ : Var → bitvectors (Definition 4.3, generalized to
/// multi-bit rigid variables).
using Valuation = std::vector<std::pair<std::string, Bitvector>>;

/// Concrete semantics ⟦be⟧σ_B(c<, c>) (Definition 4.3). Used by the test
/// oracle; the checker itself stays symbolic.
Bitvector evalBitExpr(const Ctx &C, const BitExprRef &E,
                      const p4a::Config &CL, const p4a::Config &CR,
                      const Valuation &Sigma);

/// Concrete semantics of a pure formula on a configuration pair.
bool evalPure(const Ctx &C, const PureRef &F, const p4a::Config &CL,
              const p4a::Config &CR, const Valuation &Sigma);

/// True iff ⟨CL, CR⟩ ∈ ⟦G⟧ for all valuations of the rigid variables in G.
/// Enumerates all 2^b valuations for b total rigid-variable bits — a test
/// oracle only, asserting b is small; the checker itself never calls this.
bool holdsConcretely(const p4a::Automaton &Left, const p4a::Automaton &Right,
                     const GuardedFormula &G, const p4a::Config &CL,
                     const p4a::Config &CR);

/// Per-side substitution for weakest preconditions: what to replace this
/// side's buffer and each of its headers with.
struct SideSubst {
  BitExprRef Buf;                   ///< Replacement for buf on this side.
  std::vector<BitExprRef> Headers;  ///< Replacement per HeaderId.
};

/// Capture-free substitution of both sides' buffers and headers in \p F.
/// Rigid variables are untouched. \p LeftS / \p RightS must cover every
/// header of the respective automaton (indexed by HeaderId); replacement
/// expressions must have the width of what they replace under the target
/// guard, or downstream lowering asserts. Runs in O(|F|) node visits;
/// unchanged subtrees are shared, not copied.
PureRef substitute(const PureRef &F, const SideSubst &LeftS,
                   const SideSubst &RightS);

/// ctx-aware smart slice: clamps bounds, folds slice-of-slice,
/// slice-of-concat, slice-of-literal and full-width slices (the §6.2
/// "algebraic simplifications" that keep WP output small).
BitExprRef mkSliceS(const Ctx &C, BitExprRef E, size_t Lo, size_t Hi);

/// ctx-aware smart concat: drops ε operands and folds literals.
BitExprRef mkConcatS(const Ctx &C, BitExprRef L, BitExprRef R);

/// Collects the rigid variables of \p F (name → width, first-occurrence
/// order).
std::vector<std::pair<std::string, size_t>> collectRigidVars(const PureRef &F);

/// Renames every rigid variable per \p Renaming (old name → new name);
/// names absent from the map are kept.
PureRef renameRigidVars(
    const PureRef &F,
    const std::vector<std::pair<std::string, std::string>> &Renaming);

/// α-canonicalization: renames rigid variables to v0, v1, ... in first-
/// occurrence order. Formulas are individually universally closed
/// (Definition 4.3), so this preserves their denotation; it makes
/// α-equivalent conjuncts syntactically equal, which lets the checker's
/// frontier deduplicate them and lets the entailment check discharge a
/// goal against an α-equivalent premise (the WP operator mints fresh
/// variables on every application, so without canonicalization the
/// frontier would never converge on relational properties). O(|G.Phi|).
GuardedFormula canonicalize(const GuardedFormula &G);

} // namespace logic
} // namespace leapfrog

#endif // LEAPFROG_LOGIC_CONFREL_H
