//===- ConfRel.cpp - The configuration-relation logic ---------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "logic/ConfRel.h"

#include <algorithm>

using namespace leapfrog;
using namespace leapfrog::logic;

//===----------------------------------------------------------------------===//
// BitExpr constructors
//===----------------------------------------------------------------------===//

BitExprRef BitExpr::mkLit(Bitvector BV) {
  auto E = std::shared_ptr<BitExpr>(new BitExpr());
  E->K = Kind::Lit;
  E->Lit = std::move(BV);
  return E;
}

BitExprRef BitExpr::mkBuf(Side S) {
  auto E = std::shared_ptr<BitExpr>(new BitExpr());
  E->K = Kind::Buf;
  E->S = S;
  return E;
}

BitExprRef BitExpr::mkHdr(Side S, p4a::HeaderId H) {
  auto E = std::shared_ptr<BitExpr>(new BitExpr());
  E->K = Kind::Hdr;
  E->S = S;
  E->Hdr = H;
  return E;
}

BitExprRef BitExpr::mkVar(std::string Name, size_t Width) {
  assert(Width > 0 && "zero-width rigid variable");
  auto E = std::shared_ptr<BitExpr>(new BitExpr());
  E->K = Kind::Var;
  E->Name = std::move(Name);
  E->VarW = Width;
  return E;
}

BitExprRef BitExpr::mkSlice(BitExprRef Operand, size_t Lo, size_t Hi) {
  assert(Operand && "slice of null expression");
  auto E = std::shared_ptr<BitExpr>(new BitExpr());
  E->K = Kind::Slice;
  E->A = std::move(Operand);
  E->Lo = Lo;
  E->Hi = Hi;
  return E;
}

BitExprRef BitExpr::mkConcat(BitExprRef L, BitExprRef R) {
  assert(L && R && "concat of null expression");
  auto E = std::shared_ptr<BitExpr>(new BitExpr());
  E->K = Kind::Concat;
  E->A = std::move(L);
  E->B = std::move(R);
  return E;
}

std::string BitExpr::str() const {
  switch (K) {
  case Kind::Lit:
    return "0b" + Lit.str();
  case Kind::Buf:
    return std::string("buf") + sideMark(S);
  case Kind::Hdr:
    return "h" + std::to_string(Hdr) + sideMark(S);
  case Kind::Var:
    return "$" + Name;
  case Kind::Slice:
    return A->str() + "[" + std::to_string(Lo) + ":" + std::to_string(Hi) +
           "]";
  case Kind::Concat:
    return "(" + A->str() + " ++ " + B->str() + ")";
  }
  return "<bitexpr>";
}

//===----------------------------------------------------------------------===//
// Pure formula constructors (with the cheap folds that are sound without a
// width context; the ctx-aware rewrites live in mkSliceS / mkConcatS)
//===----------------------------------------------------------------------===//

PureRef Pure::mkTrue() {
  auto F = std::shared_ptr<Pure>(new Pure());
  F->K = Kind::True;
  return F;
}

PureRef Pure::mkFalse() {
  auto F = std::shared_ptr<Pure>(new Pure());
  F->K = Kind::False;
  return F;
}

PureRef Pure::mkEq(BitExprRef L, BitExprRef R) {
  assert(L && R && "equality over null expression");
  if (L->kind() == BitExpr::Kind::Lit && R->kind() == BitExpr::Kind::Lit)
    return L->literal() == R->literal() ? mkTrue() : mkFalse();
  auto F = std::shared_ptr<Pure>(new Pure());
  F->K = Kind::Eq;
  F->TL = std::move(L);
  F->TR = std::move(R);
  return F;
}

PureRef Pure::mkNot(PureRef Sub) {
  assert(Sub && "negation of null formula");
  if (Sub->kind() == Kind::True)
    return mkFalse();
  if (Sub->kind() == Kind::False)
    return mkTrue();
  if (Sub->kind() == Kind::Not)
    return Sub->sub();
  auto F = std::shared_ptr<Pure>(new Pure());
  F->K = Kind::Not;
  F->FL = std::move(Sub);
  return F;
}

PureRef Pure::mkAnd(PureRef L, PureRef R) {
  assert(L && R && "conjunction of null formula");
  if (L->kind() == Kind::False || R->kind() == Kind::False)
    return mkFalse();
  if (L->kind() == Kind::True)
    return R;
  if (R->kind() == Kind::True)
    return L;
  auto F = std::shared_ptr<Pure>(new Pure());
  F->K = Kind::And;
  F->FL = std::move(L);
  F->FR = std::move(R);
  return F;
}

PureRef Pure::mkOr(PureRef L, PureRef R) {
  assert(L && R && "disjunction of null formula");
  if (L->kind() == Kind::True || R->kind() == Kind::True)
    return mkTrue();
  if (L->kind() == Kind::False)
    return R;
  if (R->kind() == Kind::False)
    return L;
  auto F = std::shared_ptr<Pure>(new Pure());
  F->K = Kind::Or;
  F->FL = std::move(L);
  F->FR = std::move(R);
  return F;
}

PureRef Pure::mkImplies(PureRef L, PureRef R) {
  assert(L && R && "implication of null formula");
  if (L->kind() == Kind::False || R->kind() == Kind::True)
    return mkTrue();
  if (L->kind() == Kind::True)
    return R;
  if (R->kind() == Kind::False)
    return mkNot(std::move(L));
  auto F = std::shared_ptr<Pure>(new Pure());
  F->K = Kind::Implies;
  F->FL = std::move(L);
  F->FR = std::move(R);
  return F;
}

PureRef Pure::mkAndAll(const std::vector<PureRef> &Fs) {
  PureRef Acc = mkTrue();
  for (const PureRef &F : Fs)
    Acc = mkAnd(Acc, F);
  return Acc;
}

PureRef Pure::mkOrAll(const std::vector<PureRef> &Fs) {
  PureRef Acc = mkFalse();
  for (const PureRef &F : Fs)
    Acc = mkOr(Acc, F);
  return Acc;
}

std::string Pure::str() const {
  switch (K) {
  case Kind::True:
    return "true";
  case Kind::False:
    return "false";
  case Kind::Eq:
    return "(" + TL->str() + " = " + TR->str() + ")";
  case Kind::Not:
    return "!" + FL->str();
  case Kind::And:
    return "(" + FL->str() + " & " + FR->str() + ")";
  case Kind::Or:
    return "(" + FL->str() + " | " + FR->str() + ")";
  case Kind::Implies:
    return "(" + FL->str() + " -> " + FR->str() + ")";
  }
  return "<pure>";
}

size_t Pure::size() const {
  switch (K) {
  case Kind::True:
  case Kind::False:
    return 1;
  case Kind::Eq:
    return 1;
  case Kind::Not:
    return 1 + FL->size();
  case Kind::And:
  case Kind::Or:
  case Kind::Implies:
    return 1 + FL->size() + FR->size();
  }
  return 1;
}

std::string GuardedFormula::str(const p4a::Automaton &Left,
                                const p4a::Automaton &Right) const {
  return "[" + Left.refName(TP.L.Q) + "," + std::to_string(TP.L.N) + "]< & [" +
         Right.refName(TP.R.Q) + "," + std::to_string(TP.R.N) +
         "]> => " + Phi->str();
}

//===----------------------------------------------------------------------===//
// Widths and concrete semantics
//===----------------------------------------------------------------------===//

size_t logic::widthUnder(const Ctx &C, const BitExprRef &E) {
  switch (E->kind()) {
  case BitExpr::Kind::Lit:
    return E->literal().size();
  case BitExpr::Kind::Buf:
    return C.bufWidth(E->side());
  case BitExpr::Kind::Hdr:
    return C.aut(E->side()).headerSize(E->header());
  case BitExpr::Kind::Var:
    return E->varWidth();
  case BitExpr::Kind::Slice: {
    size_t W = widthUnder(C, E->sliceOperand());
    if (W == 0)
      return 0;
    size_t Lo = std::min(E->sliceLo(), W - 1);
    size_t Hi = std::min(E->sliceHi(), W - 1);
    return Lo > Hi ? 0 : Hi - Lo + 1;
  }
  case BitExpr::Kind::Concat:
    return widthUnder(C, E->concatLhs()) + widthUnder(C, E->concatRhs());
  }
  return 0;
}

Bitvector logic::evalBitExpr(const Ctx &C, const BitExprRef &E,
                             const p4a::Config &CL, const p4a::Config &CR,
                             const Valuation &Sigma) {
  switch (E->kind()) {
  case BitExpr::Kind::Lit:
    return E->literal();
  case BitExpr::Kind::Buf:
    return E->side() == Side::Left ? CL.Buf : CR.Buf;
  case BitExpr::Kind::Hdr:
    return (E->side() == Side::Left ? CL.S : CR.S).get(E->header());
  case BitExpr::Kind::Var: {
    for (const auto &[Name, Value] : Sigma)
      if (Name == E->varName()) {
        assert(Value.size() == E->varWidth() && "valuation width mismatch");
        return Value;
      }
    assert(false && "rigid variable missing from valuation");
    return Bitvector();
  }
  case BitExpr::Kind::Slice:
    return evalBitExpr(C, E->sliceOperand(), CL, CR, Sigma)
        .slice(E->sliceLo(), E->sliceHi());
  case BitExpr::Kind::Concat:
    return evalBitExpr(C, E->concatLhs(), CL, CR, Sigma)
        .concat(evalBitExpr(C, E->concatRhs(), CL, CR, Sigma));
  }
  assert(false && "unknown expression kind");
  return Bitvector();
}

bool logic::evalPure(const Ctx &C, const PureRef &F, const p4a::Config &CL,
                     const p4a::Config &CR, const Valuation &Sigma) {
  switch (F->kind()) {
  case Pure::Kind::True:
    return true;
  case Pure::Kind::False:
    return false;
  case Pure::Kind::Eq:
    return evalBitExpr(C, F->eqLhs(), CL, CR, Sigma) ==
           evalBitExpr(C, F->eqRhs(), CL, CR, Sigma);
  case Pure::Kind::Not:
    return !evalPure(C, F->sub(), CL, CR, Sigma);
  case Pure::Kind::And:
    return evalPure(C, F->lhs(), CL, CR, Sigma) &&
           evalPure(C, F->rhs(), CL, CR, Sigma);
  case Pure::Kind::Or:
    return evalPure(C, F->lhs(), CL, CR, Sigma) ||
           evalPure(C, F->rhs(), CL, CR, Sigma);
  case Pure::Kind::Implies:
    return !evalPure(C, F->lhs(), CL, CR, Sigma) ||
           evalPure(C, F->rhs(), CL, CR, Sigma);
  }
  assert(false && "unknown formula kind");
  return false;
}

namespace {

void collectExprVars(const BitExprRef &E,
                     std::vector<std::pair<std::string, size_t>> &Vars) {
  switch (E->kind()) {
  case BitExpr::Kind::Var: {
    for (auto &[Name, Width] : Vars)
      if (Name == E->varName()) {
        assert(Width == E->varWidth() && "variable used at two widths");
        (void)Width;
        return;
      }
    Vars.emplace_back(E->varName(), E->varWidth());
    return;
  }
  case BitExpr::Kind::Lit:
  case BitExpr::Kind::Buf:
  case BitExpr::Kind::Hdr:
    return;
  case BitExpr::Kind::Slice:
    collectExprVars(E->sliceOperand(), Vars);
    return;
  case BitExpr::Kind::Concat:
    collectExprVars(E->concatLhs(), Vars);
    collectExprVars(E->concatRhs(), Vars);
    return;
  }
}

void collectPureVars(const PureRef &F,
                     std::vector<std::pair<std::string, size_t>> &Vars) {
  switch (F->kind()) {
  case Pure::Kind::True:
  case Pure::Kind::False:
    return;
  case Pure::Kind::Eq:
    collectExprVars(F->eqLhs(), Vars);
    collectExprVars(F->eqRhs(), Vars);
    return;
  case Pure::Kind::Not:
    collectPureVars(F->sub(), Vars);
    return;
  case Pure::Kind::And:
  case Pure::Kind::Or:
  case Pure::Kind::Implies:
    collectPureVars(F->lhs(), Vars);
    collectPureVars(F->rhs(), Vars);
    return;
  }
}

} // namespace

std::vector<std::pair<std::string, size_t>>
logic::collectRigidVars(const PureRef &F) {
  std::vector<std::pair<std::string, size_t>> Vars;
  collectPureVars(F, Vars);
  return Vars;
}

bool logic::holdsConcretely(const p4a::Automaton &Left,
                            const p4a::Automaton &Right,
                            const GuardedFormula &G, const p4a::Config &CL,
                            const p4a::Config &CR) {
  // Guard: if the configurations do not match the template pair, the
  // implication holds vacuously.
  if (Template::ofConfig(CL) != G.TP.L || Template::ofConfig(CR) != G.TP.R)
    return true;
  Ctx C{&Left, &Right, G.TP};
  // Enumerate all valuations of the rigid variables.
  auto Vars = collectRigidVars(G.Phi);
  size_t TotalBits = 0;
  for (const auto &[Name, Width] : Vars)
    TotalBits += Width;
  assert(TotalBits <= 16 && "valuation enumeration would explode");
  for (uint64_t V = 0; V < (uint64_t(1) << TotalBits); ++V) {
    Valuation Sigma;
    size_t Shift = 0;
    for (const auto &[Name, Width] : Vars) {
      Sigma.emplace_back(Name,
                         Bitvector::fromUint(V >> Shift, Width));
      Shift += Width;
    }
    if (!evalPure(C, G.Phi, CL, CR, Sigma))
      return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Substitution
//===----------------------------------------------------------------------===//

namespace {

BitExprRef substExpr(const BitExprRef &E, const SideSubst &LeftS,
                     const SideSubst &RightS) {
  switch (E->kind()) {
  case BitExpr::Kind::Lit:
  case BitExpr::Kind::Var:
    return E;
  case BitExpr::Kind::Buf: {
    const SideSubst &S = E->side() == Side::Left ? LeftS : RightS;
    assert(S.Buf && "substitution missing buffer replacement");
    return S.Buf;
  }
  case BitExpr::Kind::Hdr: {
    const SideSubst &S = E->side() == Side::Left ? LeftS : RightS;
    assert(E->header() < S.Headers.size() && S.Headers[E->header()] &&
           "substitution missing header replacement");
    return S.Headers[E->header()];
  }
  case BitExpr::Kind::Slice: {
    BitExprRef A = substExpr(E->sliceOperand(), LeftS, RightS);
    if (A == E->sliceOperand())
      return E;
    // Slicing acts on values, so re-slicing the substituted operand with
    // the same (clamped) bounds is semantics-preserving.
    return BitExpr::mkSlice(std::move(A), E->sliceLo(), E->sliceHi());
  }
  case BitExpr::Kind::Concat: {
    BitExprRef A = substExpr(E->concatLhs(), LeftS, RightS);
    BitExprRef B = substExpr(E->concatRhs(), LeftS, RightS);
    if (A == E->concatLhs() && B == E->concatRhs())
      return E;
    return BitExpr::mkConcat(std::move(A), std::move(B));
  }
  }
  assert(false && "unknown expression kind");
  return E;
}

} // namespace

PureRef logic::substitute(const PureRef &F, const SideSubst &LeftS,
                          const SideSubst &RightS) {
  switch (F->kind()) {
  case Pure::Kind::True:
  case Pure::Kind::False:
    return F;
  case Pure::Kind::Eq:
    return Pure::mkEq(substExpr(F->eqLhs(), LeftS, RightS),
                      substExpr(F->eqRhs(), LeftS, RightS));
  case Pure::Kind::Not:
    return Pure::mkNot(substitute(F->sub(), LeftS, RightS));
  case Pure::Kind::And:
    return Pure::mkAnd(substitute(F->lhs(), LeftS, RightS),
                       substitute(F->rhs(), LeftS, RightS));
  case Pure::Kind::Or:
    return Pure::mkOr(substitute(F->lhs(), LeftS, RightS),
                      substitute(F->rhs(), LeftS, RightS));
  case Pure::Kind::Implies:
    return Pure::mkImplies(substitute(F->lhs(), LeftS, RightS),
                           substitute(F->rhs(), LeftS, RightS));
  }
  assert(false && "unknown formula kind");
  return F;
}

//===----------------------------------------------------------------------===//
// ctx-aware smart constructors (§6.2 algebraic simplifications)
//===----------------------------------------------------------------------===//

BitExprRef logic::mkConcatS(const Ctx &C, BitExprRef L, BitExprRef R) {
  if (widthUnder(C, L) == 0)
    return R;
  if (widthUnder(C, R) == 0)
    return L;
  if (L->kind() == BitExpr::Kind::Lit && R->kind() == BitExpr::Kind::Lit)
    return BitExpr::mkLit(L->literal().concat(R->literal()));
  return BitExpr::mkConcat(std::move(L), std::move(R));
}

BitExprRef logic::mkSliceS(const Ctx &C, BitExprRef E, size_t Lo, size_t Hi) {
  size_t W = widthUnder(C, E);
  if (W == 0)
    return BitExpr::mkLit(Bitvector());
  // Clamp to the operand width (Definition 3.1).
  Lo = std::min(Lo, W - 1);
  Hi = std::min(Hi, W - 1);
  if (Lo > Hi)
    return BitExpr::mkLit(Bitvector());
  if (Lo == 0 && Hi == W - 1)
    return E;
  switch (E->kind()) {
  case BitExpr::Kind::Lit:
    return BitExpr::mkLit(E->literal().extract(Lo, Hi + 1));
  case BitExpr::Kind::Slice: {
    // Bounds on the inner operand; already clamped, so they nest exactly.
    size_t InnerW = widthUnder(C, E->sliceOperand());
    size_t Base = std::min(E->sliceLo(), InnerW - 1);
    return mkSliceS(C, E->sliceOperand(), Base + Lo, Base + Hi);
  }
  case BitExpr::Kind::Concat: {
    size_t LW = widthUnder(C, E->concatLhs());
    if (Hi < LW)
      return mkSliceS(C, E->concatLhs(), Lo, Hi);
    if (Lo >= LW)
      return mkSliceS(C, E->concatRhs(), Lo - LW, Hi - LW);
    return mkConcatS(C, mkSliceS(C, E->concatLhs(), Lo, LW - 1),
                     mkSliceS(C, E->concatRhs(), 0, Hi - LW));
  }
  case BitExpr::Kind::Buf:
  case BitExpr::Kind::Hdr:
  case BitExpr::Kind::Var:
    break;
  }
  return BitExpr::mkSlice(std::move(E), Lo, Hi);
}

//===----------------------------------------------------------------------===//
// α-renaming and canonicalization
//===----------------------------------------------------------------------===//

namespace {

using Renaming = std::vector<std::pair<std::string, std::string>>;

BitExprRef renameExpr(const BitExprRef &E, const Renaming &Map) {
  switch (E->kind()) {
  case BitExpr::Kind::Lit:
  case BitExpr::Kind::Buf:
  case BitExpr::Kind::Hdr:
    return E;
  case BitExpr::Kind::Var: {
    for (const auto &[From, To] : Map)
      if (From == E->varName())
        return BitExpr::mkVar(To, E->varWidth());
    return E;
  }
  case BitExpr::Kind::Slice: {
    BitExprRef A = renameExpr(E->sliceOperand(), Map);
    if (A == E->sliceOperand())
      return E;
    return BitExpr::mkSlice(std::move(A), E->sliceLo(), E->sliceHi());
  }
  case BitExpr::Kind::Concat: {
    BitExprRef A = renameExpr(E->concatLhs(), Map);
    BitExprRef B = renameExpr(E->concatRhs(), Map);
    if (A == E->concatLhs() && B == E->concatRhs())
      return E;
    return BitExpr::mkConcat(std::move(A), std::move(B));
  }
  }
  assert(false && "unknown expression kind");
  return E;
}

} // namespace

PureRef logic::renameRigidVars(const PureRef &F, const Renaming &Map) {
  switch (F->kind()) {
  case Pure::Kind::True:
  case Pure::Kind::False:
    return F;
  case Pure::Kind::Eq:
    return Pure::mkEq(renameExpr(F->eqLhs(), Map),
                      renameExpr(F->eqRhs(), Map));
  case Pure::Kind::Not:
    return Pure::mkNot(renameRigidVars(F->sub(), Map));
  case Pure::Kind::And:
    return Pure::mkAnd(renameRigidVars(F->lhs(), Map),
                       renameRigidVars(F->rhs(), Map));
  case Pure::Kind::Or:
    return Pure::mkOr(renameRigidVars(F->lhs(), Map),
                      renameRigidVars(F->rhs(), Map));
  case Pure::Kind::Implies:
    return Pure::mkImplies(renameRigidVars(F->lhs(), Map),
                           renameRigidVars(F->rhs(), Map));
  }
  assert(false && "unknown formula kind");
  return F;
}

GuardedFormula logic::canonicalize(const GuardedFormula &G) {
  // Canonical names carry the width: conjuncts of one entailment share a
  // namespace (sound — ∀ distributes over ∧ — and deliberate, so a goal
  // can be discharged against an α-equivalent premise), so names must
  // never be reused at a different width.
  Renaming Map;
  size_t Counter = 0;
  for (const auto &[Name, Width] : collectRigidVars(G.Phi))
    Map.emplace_back(Name, "v" + std::to_string(Counter++) + "w" +
                               std::to_string(Width));
  return GuardedFormula{G.TP, renameRigidVars(G.Phi, Map)};
}
