//===- FolConf.h - First-order logic over configurations --------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FOL(Conf), the intermediate logic of the paper's compilation chain
/// (Figure 6): the first-order theory of bitvectors *and finite maps*.
/// Terms may select a header out of a store treated as a finite map
/// (`store<(h)`), while buffers and the rigid variables of weakest
/// preconditions appear as plain bitvector variables. State and
/// buffer-length assertions have already been compiled away by this point
/// (they are resolved by template filtering), and every slice has been
/// exactified — widths are static here, unlike ConfRel's clamped slices.
///
/// The store-elimination pass (eliminateStores) completes the chain by
/// turning each finite-map selection into a first-order bitvector
/// variable, producing FOL(BV), "necessary because some SMT solvers we
/// targeted do not support the theory of finite maps" (§6.2).
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_LOGIC_FOLCONF_H
#define LEAPFROG_LOGIC_FOLCONF_H

#include "logic/ConfRel.h"
#include "smt/BvFormula.h"

#include <memory>

namespace leapfrog {
namespace logic {
namespace folconf {

class Term;
using TermRef = std::shared_ptr<const Term>;

/// A FOL(Conf) term with static width.
class Term {
public:
  enum class Kind { StoreSelect, BufVar, RigidVar, Const, Concat, Extract };

  Kind kind() const { return K; }
  size_t width() const { return Width; }

  Side side() const {
    assert((K == Kind::StoreSelect || K == Kind::BufVar) &&
           "term has no side");
    return S;
  }
  p4a::HeaderId header() const {
    assert(K == Kind::StoreSelect && "not a store selection");
    return Hdr;
  }
  const std::string &rigidName() const {
    assert(K == Kind::RigidVar && "not a rigid variable");
    return Name;
  }
  const Bitvector &constValue() const {
    assert(K == Kind::Const && "not a constant");
    return Value;
  }
  const TermRef &lhs() const {
    assert(K == Kind::Concat && "not a concat");
    return L;
  }
  const TermRef &rhs() const {
    assert(K == Kind::Concat && "not a concat");
    return R;
  }
  const TermRef &extractOperand() const {
    assert(K == Kind::Extract && "not an extract");
    return L;
  }
  size_t extractLo() const {
    assert(K == Kind::Extract && "not an extract");
    return Lo;
  }
  size_t extractHi() const {
    assert(K == Kind::Extract && "not an extract");
    return Hi;
  }

  /// store≶(h): selection of header \p H from the side-\p S store.
  static TermRef mkStoreSelect(Side S, p4a::HeaderId H, size_t Width);
  static TermRef mkBufVar(Side S, size_t Width);
  static TermRef mkRigidVar(std::string Name, size_t Width);
  static TermRef mkConst(Bitvector Value);
  static TermRef mkConcat(TermRef L, TermRef R);
  /// Exact inclusive extraction; asserts in-bounds (widths are static in
  /// FOL(Conf), unlike ConfRel's clamped slices).
  static TermRef mkExtract(TermRef Operand, size_t Lo, size_t Hi);

  std::string str() const;

private:
  Term() = default;

  Kind K = Kind::Const;
  size_t Width = 0;
  Side S = Side::Left;
  p4a::HeaderId Hdr = 0;
  std::string Name;
  Bitvector Value;
  TermRef L, R;
  size_t Lo = 0, Hi = 0;
};

class Formula;
using FormulaRef = std::shared_ptr<const Formula>;

/// A FOL(Conf) formula: boolean structure over term equalities.
class Formula {
public:
  enum class Kind { True, False, Eq, Not, And, Or, Implies };

  Kind kind() const { return K; }

  const TermRef &eqLhs() const {
    assert(K == Kind::Eq && "not an equality");
    return TL;
  }
  const TermRef &eqRhs() const {
    assert(K == Kind::Eq && "not an equality");
    return TR;
  }
  const FormulaRef &sub() const {
    assert(K == Kind::Not && "not a negation");
    return FL;
  }
  const FormulaRef &lhs() const {
    assert((K == Kind::And || K == Kind::Or || K == Kind::Implies) &&
           "not a binary connective");
    return FL;
  }
  const FormulaRef &rhs() const {
    assert((K == Kind::And || K == Kind::Or || K == Kind::Implies) &&
           "not a binary connective");
    return FR;
  }

  static FormulaRef mkTrue();
  static FormulaRef mkFalse();
  static FormulaRef mkEq(TermRef L, TermRef R);
  static FormulaRef mkNot(FormulaRef F);
  static FormulaRef mkAnd(FormulaRef L, FormulaRef R);
  static FormulaRef mkOr(FormulaRef L, FormulaRef R);
  static FormulaRef mkImplies(FormulaRef L, FormulaRef R);

  std::string str() const;

private:
  Formula() = default;

  Kind K = Kind::True;
  TermRef TL, TR;
  FormulaRef FL, FR;
};

/// ConfRelSimp → FOL(Conf): embeds a pure formula interpreted under \p C
/// into FOL(Conf), resolving buffer widths from the guard and exactifying
/// every clamped slice. This is the "FOL compilation" step of §6.2.
FormulaRef fromPure(const Ctx &C, const PureRef &F);

/// FOL(Conf) → FOL(BV): eliminates finite maps by naming each store
/// selection as a first-order bitvector variable ("h<name" / "h>name"),
/// and buffers as "buf<" / "buf>" (§6.2 store elimination). \p C supplies
/// header names for readable variable names.
smt::BvFormulaRef eliminateStores(const Ctx &C, const FormulaRef &F);

} // namespace folconf
} // namespace logic
} // namespace leapfrog

#endif // LEAPFROG_LOGIC_FOLCONF_H
