//===- Dfa.h - Explicit configuration DFAs ----------------------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Explicit deterministic finite automata over the binary alphabet, plus
/// extraction of the configuration DFA ⟨C, δ, F⟩ of paper §3.2 from a P4
/// automaton. The paper's central scaling argument (§2, §4) is that this
/// DFA is astronomically large for realistic parsers — "the automata in
/// Figure 1 have a joint configuration space on the order of 2^128" — so
/// classical algorithms that need it materialized cannot apply. This module
/// materializes it anyway, within an explicit budget, to power:
///
///  * the classical-algorithm baselines of §7.3's future-work discussion
///    (Moore, Hopcroft, Hopcroft–Karp, Paige–Tarjan; see Minimize.h and
///    HopcroftKarp.h), and
///  * the crossover benchmark showing exactly where explicit-state methods
///    stop scaling and the symbolic checker keeps going.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_ALGORITHMS_DFA_H
#define LEAPFROG_ALGORITHMS_DFA_H

#include "p4a/Concrete.h"
#include "p4a/Semantics.h"

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

namespace leapfrog {
namespace algorithms {

/// An explicit, complete DFA over {0,1}. States are dense indices; every
/// state has both successors (the configuration dynamics are total, Def.
/// 3.5, so extraction always yields complete automata).
struct Dfa {
  /// Next[S][B] is δ(S, B).
  std::vector<std::array<uint32_t, 2>> Next;
  /// Accepting[S] iff S ∈ F.
  std::vector<bool> Accepting;
  /// Start state.
  uint32_t Initial = 0;

  size_t numStates() const { return Next.size(); }

  /// δ*(From, Word).
  uint32_t run(uint32_t From, const Bitvector &Word) const;

  /// Word ∈ L(Initial)?
  bool accepts(const Bitvector &Word) const {
    return Accepting[run(Initial, Word)];
  }

  /// Structural sanity: every edge targets a valid state.
  bool wellFormed() const;
};

/// Result of materializing the configuration DFA reachable from an initial
/// configuration.
struct DfaExtraction {
  Dfa D;
  /// States[I] is the configuration realizing DFA state I; States[0] is
  /// the initial configuration.
  std::vector<p4a::Config> States;
  /// False when the state budget was exhausted before closure; D is then
  /// meaningless for language questions.
  bool Complete = true;
};

/// Breadth-first materialization of the configurations reachable from
/// \p Init under δ, up to \p Limit states. The paper's |C| ≥ 2^|store|
/// lower bound makes this feasible only for deliberately small automata;
/// the Complete flag reports when the budget was the binding constraint.
DfaExtraction extractConfigDfa(const p4a::Automaton &Aut,
                               const p4a::Config &Init, size_t Limit);

/// Disjoint union of two DFAs (the construction of §4: "one can compare
/// configurations in two different P4As by taking their disjoint sum").
/// States of \p B are shifted by A.numStates(); \p OffsetB receives the
/// shift. The union's Initial is A's.
Dfa disjointUnion(const Dfa &A, const Dfa &B, uint32_t *OffsetB = nullptr);

} // namespace algorithms
} // namespace leapfrog

#endif // LEAPFROG_ALGORITHMS_DFA_H
