//===- Minimize.cpp - Partition refinement on explicit DFAs ----------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "algorithms/Minimize.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

using namespace leapfrog;
using namespace leapfrog::algorithms;

//===----------------------------------------------------------------------===//
// Moore
//===----------------------------------------------------------------------===//

Partition algorithms::mooreRefine(const Dfa &D, RefineStats *Stats) {
  size_t N = D.numStates();
  Partition P;
  P.ClassOf.resize(N);
  for (size_t S = 0; S < N; ++S)
    P.ClassOf[S] = D.Accepting[S] ? 1 : 0;
  P.NumClasses = N == 0 ? 0 : 2;

  // Refine by (class, class of 0-successor, class of 1-successor)
  // signatures until the class count stops growing. Class counts increase
  // monotonically and are bounded by N, so this terminates.
  for (;;) {
    if (Stats)
      ++Stats->Rounds;
    std::unordered_map<uint64_t, uint32_t> SigClass;
    std::vector<uint32_t> NewClass(N);
    for (size_t S = 0; S < N; ++S) {
      uint64_t Sig = P.ClassOf[S];
      Sig = Sig * 0x100000001b3ull + P.ClassOf[D.Next[S][0]];
      Sig = Sig * 0x100000001b3ull + P.ClassOf[D.Next[S][1]];
      auto [It, Inserted] =
          SigClass.emplace(Sig, uint32_t(SigClass.size()));
      NewClass[S] = It->second;
      (void)Inserted;
    }
    if (SigClass.size() == P.NumClasses)
      return P;
    if (Stats && SigClass.size() > P.NumClasses)
      Stats->Splits += SigClass.size() - P.NumClasses;
    P.ClassOf = std::move(NewClass);
    P.NumClasses = SigClass.size();
  }
}

//===----------------------------------------------------------------------===//
// Hopcroft
//===----------------------------------------------------------------------===//

namespace {

/// Mutable block partition with O(1) moves: per-block member vectors plus
/// per-state positions, so splitting moves only the touched states.
class BlockPartition {
public:
  explicit BlockPartition(const std::vector<uint32_t> &InitialBlock) {
    size_t N = InitialBlock.size();
    BlockOf = InitialBlock;
    uint32_t MaxB = 0;
    for (uint32_t B : InitialBlock)
      MaxB = std::max(MaxB, B);
    Members.resize(N == 0 ? 0 : MaxB + 1);
    Pos.resize(N);
    for (uint32_t S = 0; S < N; ++S) {
      Pos[S] = uint32_t(Members[InitialBlock[S]].size());
      Members[InitialBlock[S]].push_back(S);
    }
  }

  size_t numBlocks() const { return Members.size(); }
  size_t blockSize(uint32_t B) const { return Members[B].size(); }
  const std::vector<uint32_t> &members(uint32_t B) const {
    return Members[B];
  }
  uint32_t blockOf(uint32_t S) const { return BlockOf[S]; }

  /// Moves \p S from its block into block \p To (which must exist).
  void move(uint32_t S, uint32_t To) {
    uint32_t From = BlockOf[S];
    std::vector<uint32_t> &M = Members[From];
    uint32_t P = Pos[S];
    M[P] = M.back();
    Pos[M[P]] = P;
    M.pop_back();
    Pos[S] = uint32_t(Members[To].size());
    Members[To].push_back(S);
    BlockOf[S] = To;
  }

  /// Creates a fresh empty block and returns its index.
  uint32_t freshBlock() {
    Members.emplace_back();
    return uint32_t(Members.size()) - 1;
  }

  Partition toPartition() const {
    Partition P;
    P.ClassOf = BlockOf;
    // Blocks may be empty after splits; renumber densely.
    std::vector<uint32_t> Dense(Members.size(), UINT32_MAX);
    uint32_t Next = 0;
    for (uint32_t &C : P.ClassOf) {
      if (Dense[C] == UINT32_MAX)
        Dense[C] = Next++;
      C = Dense[C];
    }
    P.NumClasses = Next;
    return P;
  }

private:
  std::vector<std::vector<uint32_t>> Members;
  std::vector<uint32_t> BlockOf;
  std::vector<uint32_t> Pos;
};

} // namespace

Partition algorithms::hopcroftRefine(const Dfa &D, RefineStats *Stats) {
  size_t N = D.numStates();
  if (N == 0)
    return Partition{};

  // Inverse edges per letter.
  std::array<std::vector<std::vector<uint32_t>>, 2> Preds;
  for (int B = 0; B < 2; ++B)
    Preds[B].resize(N);
  for (uint32_t S = 0; S < N; ++S)
    for (int B = 0; B < 2; ++B)
      Preds[B][D.Next[S][B]].push_back(S);

  std::vector<uint32_t> Init(N);
  for (size_t S = 0; S < N; ++S)
    Init[S] = D.Accepting[S] ? 1 : 0;
  BlockPartition P(Init);

  // Worklist of (block, letter) splitters. Seeding with both initial
  // blocks (rather than only the smaller) is safe and simpler; the
  // smaller-half rule below is what carries the n log n bound.
  std::deque<std::pair<uint32_t, int>> Work;
  std::vector<std::array<bool, 2>> InWork(2, {false, false});
  auto PushWork = [&](uint32_t Block, int Letter) {
    if (InWork.size() <= Block)
      InWork.resize(Block + 1, {false, false});
    if (!InWork[Block][Letter]) {
      InWork[Block][Letter] = true;
      Work.emplace_back(Block, Letter);
    }
  };
  for (uint32_t B : {0u, 1u})
    if (B < P.numBlocks() && P.blockSize(B) > 0)
      for (int L = 0; L < 2; ++L)
        PushWork(B, L);

  std::vector<uint32_t> TouchCount; // Per block: members with an edge in.
  std::vector<uint32_t> TouchedBlocks;
  std::vector<uint32_t> TouchedStates;
  std::vector<char> IsTouched(N, 0);

  while (!Work.empty()) {
    auto [Splitter, Letter] = Work.front();
    Work.pop_front();
    InWork[Splitter][Letter] = false;
    if (Stats)
      ++Stats->Rounds;

    // X = δ⁻¹(Splitter, Letter); group by block.
    TouchedStates.clear();
    TouchedBlocks.clear();
    if (TouchCount.size() < P.numBlocks())
      TouchCount.resize(P.numBlocks(), 0);
    for (uint32_t T : P.members(Splitter)) {
      for (uint32_t S : Preds[Letter][T]) {
        if (IsTouched[S])
          continue;
        IsTouched[S] = 1;
        TouchedStates.push_back(S);
        uint32_t B = P.blockOf(S);
        if (TouchCount[B]++ == 0)
          TouchedBlocks.push_back(B);
      }
    }

    for (uint32_t B : TouchedBlocks) {
      uint32_t Cnt = TouchCount[B];
      TouchCount[B] = 0;
      if (Cnt == P.blockSize(B))
        continue; // Entirely inside X: no split.
      // Split the touched members of B out into a fresh block.
      uint32_t NewB = P.freshBlock();
      if (Stats)
        ++Stats->Splits;
      // Collect first: moving while iterating invalidates members(B).
      std::vector<uint32_t> ToMove;
      for (uint32_t S : P.members(B))
        if (IsTouched[S])
          ToMove.push_back(S);
      for (uint32_t S : ToMove)
        P.move(S, NewB);
      // Worklist update: if (B, l) is pending, both halves must be
      // processed; otherwise the smaller half suffices.
      for (int L = 0; L < 2; ++L) {
        if (InWork.size() <= B)
          InWork.resize(B + 1, {false, false});
        if (InWork[B][L]) {
          PushWork(NewB, L);
        } else {
          PushWork(P.blockSize(B) <= P.blockSize(NewB) ? B : NewB, L);
        }
      }
    }
    for (uint32_t S : TouchedStates)
      IsTouched[S] = 0;
  }
  return P.toPartition();
}

//===----------------------------------------------------------------------===//
// Paige–Tarjan
//===----------------------------------------------------------------------===//

Lts algorithms::dfaToLts(const Dfa &D) {
  Lts L;
  L.NumStates = D.numStates();
  L.Edges.resize(2);
  for (uint32_t S = 0; S < D.numStates(); ++S)
    for (int B = 0; B < 2; ++B)
      L.Edges[B].emplace_back(S, D.Next[S][B]);
  L.InitialBlock.resize(D.numStates());
  for (size_t S = 0; S < D.numStates(); ++S)
    L.InitialBlock[S] = D.Accepting[S] ? 1 : 0;
  return L;
}

namespace {

/// The Paige–Tarjan machinery: a fine partition Q of states grouped into a
/// coarse partition X of Q-blocks, with per-(state, X-block, label) edge
/// counts enabling the three-way split. Compound X-blocks (≥ 2 Q-blocks)
/// wait in a worklist; each round extracts the smaller half.
class PaigeTarjan {
public:
  PaigeTarjan(const Lts &L, RefineStats *Stats)
      : L(L), Q(normalizeInitial(L)), Stats(Stats) {
    size_t NumLabels = L.Edges.size();
    Preds.resize(NumLabels);
    for (size_t Lab = 0; Lab < NumLabels; ++Lab) {
      Preds[Lab].resize(L.NumStates);
      for (auto [From, To] : L.Edges[Lab])
        Preds[Lab][To].push_back(From);
    }
  }

  Partition run() {
    // Initial stability preprocessing: each Q-block must be stable with
    // respect to the universe, i.e. members agree per label on whether
    // they have any outgoing edge. Split by out-degree signature.
    splitByUniverseDegrees();

    // One coarse block holding every Q-block.
    uint32_t X0 = freshXBlock();
    for (uint32_t QB = 0; QB < Q.numBlocks(); ++QB)
      if (Q.blockSize(QB) > 0)
        attachQBlock(QB, X0);
    // Universe counts: count(x, X0, l) = outdegree_l(x).
    for (size_t Lab = 0; Lab < L.Edges.size(); ++Lab)
      for (auto [From, To] : L.Edges[Lab]) {
        (void)To;
        bumpCount(From, X0, Lab, 1);
      }
    maybeEnqueueCompound(X0);

    while (!Compound.empty()) {
      uint32_t S = Compound.front();
      Compound.pop_front();
      InCompound[S] = false;
      if (XMembers[S].size() < 2)
        continue;
      if (Stats)
        ++Stats->Rounds;
      refineAgainst(S);
    }
    return Q.toPartition();
  }

private:
  static std::vector<uint32_t> normalizeInitial(const Lts &L) {
    return L.InitialBlock;
  }

  uint32_t freshXBlock() {
    XMembers.emplace_back();
    InCompound.push_back(false);
    return uint32_t(XMembers.size()) - 1;
  }

  void attachQBlock(uint32_t QB, uint32_t XB) {
    if (XBlockOf.size() <= QB)
      XBlockOf.resize(QB + 1, UINT32_MAX);
    XBlockOf[QB] = XB;
    XMembers[XB].push_back(QB);
  }

  void detachQBlock(uint32_t QB, uint32_t XB) {
    std::vector<uint32_t> &M = XMembers[XB];
    auto It = std::find(M.begin(), M.end(), QB);
    assert(It != M.end() && "Q-block not in its X-block");
    *It = M.back();
    M.pop_back();
  }

  void maybeEnqueueCompound(uint32_t XB) {
    if (XMembers[XB].size() >= 2 && !InCompound[XB]) {
      InCompound[XB] = true;
      Compound.push_back(XB);
    }
  }

  uint64_t countKey(uint32_t State, uint32_t XB, size_t Label) const {
    return (uint64_t(XB) * L.Edges.size() + Label) * L.NumStates + State;
  }
  void bumpCount(uint32_t State, uint32_t XB, size_t Label, int Delta) {
    uint64_t Key = countKey(State, XB, Label);
    auto It = Counts.find(Key);
    if (It == Counts.end()) {
      if (Delta > 0)
        Counts.emplace(Key, uint32_t(Delta));
      return;
    }
    It->second = uint32_t(int(It->second) + Delta);
    if (It->second == 0)
      Counts.erase(It);
  }
  uint32_t getCount(uint32_t State, uint32_t XB, size_t Label) const {
    auto It = Counts.find(countKey(State, XB, Label));
    return It == Counts.end() ? 0 : It->second;
  }

  void splitByUniverseDegrees() {
    for (size_t Lab = 0; Lab < L.Edges.size(); ++Lab) {
      std::vector<uint32_t> OutDeg(L.NumStates, 0);
      for (auto [From, To] : L.Edges[Lab]) {
        (void)To;
        ++OutDeg[From];
      }
      // Split every Q-block by out-degree-zero vs non-zero.
      for (uint32_t QB = 0, E = uint32_t(Q.numBlocks()); QB < E; ++QB) {
        size_t WithEdges = 0;
        for (uint32_t S : Q.members(QB))
          WithEdges += OutDeg[S] > 0;
        if (WithEdges == 0 || WithEdges == Q.blockSize(QB))
          continue;
        uint32_t NewB = Q.freshBlock();
        if (Stats)
          ++Stats->Splits;
        std::vector<uint32_t> ToMove;
        for (uint32_t S : Q.members(QB))
          if (OutDeg[S] > 0)
            ToMove.push_back(S);
        for (uint32_t S : ToMove)
          Q.move(S, NewB);
      }
    }
  }

  /// One PT round: extract the smaller Q-block B from compound X-block S,
  /// then split every Q-block three ways per label against B and S \ B.
  void refineAgainst(uint32_t S) {
    // B := smaller of the first two Q-blocks of S.
    uint32_t B = XMembers[S][0];
    if (Q.blockSize(XMembers[S][1]) < Q.blockSize(B))
      B = XMembers[S][1];
    detachQBlock(B, S);
    uint32_t XB = freshXBlock();
    attachQBlock(B, XB);
    maybeEnqueueCompound(S); // S may still be compound.

    // Snapshot the splitter's state set now: the splits below may divide
    // B itself (self-edges), which changes Q-block membership but not the
    // set of states the X-block XB covers — and it is that set the counts
    // and the refinement are defined against.
    std::vector<uint32_t> BStates(Q.members(B).begin(),
                                  Q.members(B).end());

    for (size_t Lab = 0; Lab < L.Edges.size(); ++Lab) {
      // count(x, B) for predecessors of B's members.
      std::unordered_map<uint32_t, uint32_t> CountB;
      for (uint32_t T : BStates)
        for (uint32_t P : Preds[Lab][T])
          ++CountB[P];

      // Phase 1: split Q-blocks into (touched, untouched).
      std::unordered_map<uint32_t, std::vector<uint32_t>> TouchedPerBlock;
      for (auto [State, Cnt] : CountB) {
        (void)Cnt;
        TouchedPerBlock[Q.blockOf(State)].push_back(State);
      }
      std::vector<uint32_t> BlocksToThreeWay;
      for (auto &[QB, Touched] : TouchedPerBlock) {
        if (Touched.size() == Q.blockSize(QB)) {
          BlocksToThreeWay.push_back(QB);
          continue;
        }
        uint32_t NewB = splitOut(QB, Touched);
        BlocksToThreeWay.push_back(NewB);
      }

      // Phase 2 (three-way): within each fully-touched block, separate
      // states whose every l-edge into S∪B lands in B (count(x,B) ==
      // count(x, S∪B)) from states that also reach S \ B. The stored
      // counts for S are still the pre-split values count(x, S∪B).
      for (uint32_t QB : BlocksToThreeWay) {
        std::vector<uint32_t> OnlyB;
        for (uint32_t State : Q.members(QB))
          if (CountB[State] == getCount(State, S, Lab))
            OnlyB.push_back(State);
        if (!OnlyB.empty() && OnlyB.size() != Q.blockSize(QB))
          splitOut(QB, OnlyB);
      }

      // Count maintenance: count(x, S) -= count(x, B);
      // count(x, XB) = count(x, B).
      for (auto [State, Cnt] : CountB) {
        bumpCount(State, S, Lab, -int(Cnt));
        bumpCount(State, XB, Lab, int(Cnt));
      }
    }
  }

  /// Splits \p Touched out of Q-block \p QB into a fresh Q-block that
  /// joins the same X-block; enqueues the X-block if it became compound.
  uint32_t splitOut(uint32_t QB, const std::vector<uint32_t> &Touched) {
    uint32_t NewB = Q.freshBlock();
    if (Stats)
      ++Stats->Splits;
    for (uint32_t State : Touched)
      Q.move(State, NewB);
    uint32_t XB = XBlockOf[QB];
    attachQBlock(NewB, XB);
    maybeEnqueueCompound(XB);
    return NewB;
  }

  const Lts &L;
  BlockPartition Q;
  RefineStats *Stats;

  std::vector<std::vector<std::vector<uint32_t>>> Preds; ///< [label][state].
  std::vector<std::vector<uint32_t>> XMembers; ///< X-block → Q-block ids.
  std::vector<uint32_t> XBlockOf;              ///< Q-block → X-block.
  std::deque<uint32_t> Compound;
  std::vector<char> InCompound;
  std::unordered_map<uint64_t, uint32_t> Counts;
};

} // namespace

Partition algorithms::paigeTarjanRefine(const Lts &L, RefineStats *Stats) {
  if (L.NumStates == 0)
    return Partition{};
  return PaigeTarjan(L, Stats).run();
}

Dfa algorithms::quotient(const Dfa &D, const Partition &P) {
  Dfa Out;
  Out.Next.resize(P.NumClasses, {UINT32_MAX, UINT32_MAX});
  Out.Accepting.assign(P.NumClasses, false);
  std::vector<bool> Seen(P.NumClasses, false);
  for (uint32_t S = 0; S < D.numStates(); ++S) {
    uint32_t C = P.ClassOf[S];
    std::array<uint32_t, 2> Succ = {P.ClassOf[D.Next[S][0]],
                                    P.ClassOf[D.Next[S][1]]};
    if (!Seen[C]) {
      Seen[C] = true;
      Out.Next[C] = Succ;
      Out.Accepting[C] = D.Accepting[S];
    } else {
      assert(Out.Next[C] == Succ && Out.Accepting[C] == D.Accepting[S] &&
             "partition is not stable: quotient is ill-defined");
    }
  }
  Out.Initial = P.ClassOf[D.Initial];
  return Out;
}
