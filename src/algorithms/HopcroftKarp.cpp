//===- HopcroftKarp.cpp - Union-find DFA equivalence ------------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "algorithms/HopcroftKarp.h"

#include <chrono>
#include <deque>
#include <numeric>

using namespace leapfrog;
using namespace leapfrog::algorithms;

namespace {

/// Union-find with path halving and union by size.
class UnionFind {
public:
  explicit UnionFind(size_t N) : Parent(N), Size(N, 1) {
    std::iota(Parent.begin(), Parent.end(), 0);
  }

  uint32_t find(uint32_t X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  }

  /// Merges the classes of \p A and \p B; returns false if already merged.
  bool merge(uint32_t A, uint32_t B) {
    A = find(A);
    B = find(B);
    if (A == B)
      return false;
    if (Size[A] < Size[B])
      std::swap(A, B);
    Parent[B] = A;
    Size[A] += Size[B];
    return true;
  }

private:
  std::vector<uint32_t> Parent;
  std::vector<uint32_t> Size;
};

} // namespace

bool algorithms::hkEquivalent(const Dfa &D, uint32_t S1, uint32_t S2,
                              HkStats *Stats) {
  UnionFind Uf(D.numStates());
  std::deque<std::pair<uint32_t, uint32_t>> Work;
  if (Uf.merge(S1, S2))
    Work.emplace_back(S1, S2);

  while (!Work.empty()) {
    auto [A, B] = Work.front();
    Work.pop_front();
    if (Stats)
      ++Stats->Pairs;
    if (D.Accepting[A] != D.Accepting[B])
      return false;
    for (int L = 0; L < 2; ++L) {
      uint32_t TA = D.Next[A][L], TB = D.Next[B][L];
      if (Uf.merge(TA, TB)) {
        if (Stats)
          ++Stats->Unions;
        Work.emplace_back(TA, TB);
      }
    }
  }
  return true;
}

ExplicitCheckResult algorithms::checkEquivalenceExplicit(
    const p4a::Automaton &Left, const p4a::Config &InitL,
    const p4a::Automaton &Right, const p4a::Config &InitR,
    size_t ConfigLimit, ExplicitAlgorithm Algo) {
  ExplicitCheckResult Out;
  auto Start = std::chrono::steady_clock::now();
  auto Finish = [&](ExplicitCheckResult::Verdict V) {
    Out.V = V;
    auto End = std::chrono::steady_clock::now();
    Out.WallMicros = uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(End - Start)
            .count());
    return Out;
  };

  DfaExtraction L = extractConfigDfa(Left, InitL, ConfigLimit);
  if (!L.Complete)
    return Finish(ExplicitCheckResult::Verdict::ResourceLimit);
  size_t Remaining = ConfigLimit - L.States.size();
  DfaExtraction R = extractConfigDfa(Right, InitR, Remaining);
  if (!R.Complete)
    return Finish(ExplicitCheckResult::Verdict::ResourceLimit);

  uint32_t Offset = 0;
  Dfa Joint = disjointUnion(L.D, R.D, &Offset);
  Out.DfaStates = Joint.numStates();
  uint32_t I1 = L.D.Initial;
  uint32_t I2 = R.D.Initial + Offset;

  bool Equiv = false;
  switch (Algo) {
  case ExplicitAlgorithm::HopcroftKarp:
    Equiv = hkEquivalent(Joint, I1, I2, &Out.Hk);
    break;
  case ExplicitAlgorithm::Moore:
    Equiv = mooreRefine(Joint, &Out.Refine).sameClass(I1, I2);
    break;
  case ExplicitAlgorithm::Hopcroft:
    Equiv = hopcroftRefine(Joint, &Out.Refine).sameClass(I1, I2);
    break;
  case ExplicitAlgorithm::PaigeTarjan:
    Equiv = paigeTarjanRefine(dfaToLts(Joint), &Out.Refine)
                .sameClass(I1, I2);
    break;
  }
  return Finish(Equiv ? ExplicitCheckResult::Verdict::Equivalent
                      : ExplicitCheckResult::Verdict::NotEquivalent);
}
