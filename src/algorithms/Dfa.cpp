//===- Dfa.cpp - Explicit configuration DFAs --------------------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "algorithms/Dfa.h"

#include <unordered_map>

using namespace leapfrog;
using namespace leapfrog::algorithms;

uint32_t Dfa::run(uint32_t From, const Bitvector &Word) const {
  uint32_t S = From;
  for (size_t I = 0; I < Word.size(); ++I)
    S = Next[S][Word.bit(I)];
  return S;
}

bool Dfa::wellFormed() const {
  if (Accepting.size() != Next.size())
    return false;
  if (Initial >= Next.size() && !Next.empty())
    return false;
  for (const std::array<uint32_t, 2> &Edges : Next)
    for (uint32_t T : Edges)
      if (T >= Next.size())
        return false;
  return true;
}

namespace {

struct ConfigHash {
  size_t operator()(const p4a::Config &C) const { return C.hash(); }
};

} // namespace

DfaExtraction algorithms::extractConfigDfa(const p4a::Automaton &Aut,
                                           const p4a::Config &Init,
                                           size_t Limit) {
  DfaExtraction Out;
  std::unordered_map<p4a::Config, uint32_t, ConfigHash> Index;

  auto Intern = [&](const p4a::Config &C) -> std::optional<uint32_t> {
    auto It = Index.find(C);
    if (It != Index.end())
      return It->second;
    if (Out.States.size() >= Limit)
      return std::nullopt;
    uint32_t Id = uint32_t(Out.States.size());
    Index.emplace(C, Id);
    Out.States.push_back(C);
    Out.D.Next.push_back({0, 0});
    Out.D.Accepting.push_back(C.accepting());
    return Id;
  };

  std::optional<uint32_t> Start = Intern(Init);
  if (!Start) {
    Out.Complete = false;
    return Out;
  }
  Out.D.Initial = *Start;

  // BFS over the worklist of interned-but-unexpanded states. The States
  // vector doubles as the queue: expansion order is discovery order.
  for (size_t Head = 0; Head < Out.States.size(); ++Head) {
    for (int B = 0; B < 2; ++B) {
      p4a::Config Succ = p4a::step(Aut, Out.States[Head], B == 1);
      std::optional<uint32_t> Id = Intern(Succ);
      if (!Id) {
        Out.Complete = false;
        return Out;
      }
      Out.D.Next[Head][B] = *Id;
    }
  }
  return Out;
}

Dfa algorithms::disjointUnion(const Dfa &A, const Dfa &B, uint32_t *OffsetB) {
  Dfa Out = A;
  uint32_t Shift = uint32_t(A.numStates());
  if (OffsetB)
    *OffsetB = Shift;
  Out.Next.reserve(A.numStates() + B.numStates());
  for (size_t S = 0; S < B.numStates(); ++S) {
    Out.Next.push_back({B.Next[S][0] + Shift, B.Next[S][1] + Shift});
    Out.Accepting.push_back(B.Accepting[S]);
  }
  return Out;
}
