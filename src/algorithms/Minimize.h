//===- Minimize.h - Partition refinement on explicit DFAs -------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classical partition-refinement family the paper positions itself
/// against (§8: Moore [40], Hopcroft [31], Paige–Tarjan [45]) and names as
/// a possible alternative backend (§7.3: "one could imagine ... Paige and
/// Tarjan's partition refinement algorithm"). Three independent
/// implementations of the coarsest-stable-partition problem:
///
///  * mooreRefine      — Moore's O(n²) signature refinement, the concrete
///                       ancestor of the paper's symbolic Algorithm 1;
///  * hopcroftRefine   — Hopcroft's O(n log n) smaller-half splitter
///                       worklist;
///  * paigeTarjanRefine— the relational coarsest-partition algorithm of
///                       Paige & Tarjan, implemented over general labeled
///                       transition relations (Lts) with the count-based
///                       three-way split. On a DFA's per-letter functions
///                       the counts are 0/1 and the three-way split
///                       degenerates to Hopcroft's two-way split; running
///                       the general algorithm anyway gives an
///                       independently-coded oracle, and the Lts interface
///                       also decides genuine bisimilarity of NFAs.
///
/// For complete DFAs whose initial partition separates accepting from
/// rejecting states, the coarsest stable partition equals Myhill–Nerode
/// language equivalence, so all three can decide L(s1) = L(s2) by
/// comparing classes — the baseline the crossover benchmark runs against
/// the symbolic checker.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_ALGORITHMS_MINIMIZE_H
#define LEAPFROG_ALGORITHMS_MINIMIZE_H

#include "algorithms/Dfa.h"

#include <cstdint>
#include <vector>

namespace leapfrog {
namespace algorithms {

/// A partition of DFA/LTS states into equivalence classes.
struct Partition {
  /// ClassOf[S] is the class index of state S; classes are dense, 0-based.
  std::vector<uint32_t> ClassOf;
  size_t NumClasses = 0;

  bool sameClass(uint32_t A, uint32_t B) const {
    return ClassOf[A] == ClassOf[B];
  }
};

/// Refinement statistics reported by the benchmark harness.
struct RefineStats {
  size_t Rounds = 0;    ///< Outer iterations (Moore) or splitters (others).
  size_t Splits = 0;    ///< Class splits performed.
};

/// Moore's algorithm: iteratively refine by successor-class signatures
/// until a fixpoint. O(n²) worst case; the concrete counterpart of the
/// paper's Algorithm 1.
Partition mooreRefine(const Dfa &D, RefineStats *Stats = nullptr);

/// Hopcroft's algorithm: splitter worklist with the smaller-half rule,
/// O(n log n).
Partition hopcroftRefine(const Dfa &D, RefineStats *Stats = nullptr);

/// A finite labeled transition system: states 0..NumStates-1, and for each
/// label a list of directed edges. Relations, not functions — a state may
/// have any number of successors per label, so NFAs are representable.
struct Lts {
  size_t NumStates = 0;
  /// Edges[L] is the edge list for label L.
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> Edges;
  /// Initial partition seed: block index per state (e.g. accepting/not).
  std::vector<uint32_t> InitialBlock;
};

/// Paige–Tarjan relational coarsest partition: computes the coarsest
/// refinement of InitialBlock that is stable with respect to every labeled
/// edge relation — i.e. strong bisimilarity when InitialBlock separates
/// observationally distinct states. Uses the count-based three-way split
/// with smaller-half block selection.
Partition paigeTarjanRefine(const Lts &L, RefineStats *Stats = nullptr);

/// Views a DFA as an Lts with two labels and an accepting/rejecting
/// initial partition, suitable for paigeTarjanRefine.
Lts dfaToLts(const Dfa &D);

/// The quotient DFA induced by a (stable) partition: one state per class.
/// Asserts that the partition is actually stable (all members of a class
/// agree on successor classes and acceptance).
Dfa quotient(const Dfa &D, const Partition &P);

} // namespace algorithms
} // namespace leapfrog

#endif // LEAPFROG_ALGORITHMS_MINIMIZE_H
