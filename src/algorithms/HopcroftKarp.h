//===- HopcroftKarp.h - Union-find DFA equivalence --------------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hopcroft and Karp's almost-linear algorithm for DFA state equivalence
/// [Hopcroft & Karp 1971], the second alternative backend named in the
/// paper's §7.3 ("a symbolic treatment of Hopcroft and Karp's algorithm,
/// which approximates a suitable bisimulation from below"), together with
/// the end-to-end explicit-state equivalence checker used as the classical
/// baseline: materialize the configuration DFA (Dfa.h), then decide with
/// the selected classical algorithm. The point of the baseline is the
/// paper's §2 claim — "naive bisimulation-based approaches will never be
/// tractable for realistic automata" — which the crossover benchmark
/// demonstrates by scaling header widths until extraction explodes while
/// the symbolic checker's cost stays flat.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_ALGORITHMS_HOPCROFTKARP_H
#define LEAPFROG_ALGORITHMS_HOPCROFTKARP_H

#include "algorithms/Minimize.h"

#include <cstdint>

namespace leapfrog {
namespace algorithms {

/// Statistics from a Hopcroft–Karp run.
struct HkStats {
  size_t Unions = 0; ///< Merges performed (≤ pairs examined).
  size_t Pairs = 0;  ///< Pairs popped from the worklist.
};

/// Decides L(S1) = L(S2) within one DFA by tentatively merging the pair
/// and propagating merges along both letters, failing on any merge of an
/// accepting with a rejecting state. Bisimulation up to equivalence
/// closure: the union-find provides the congruence that keeps the number
/// of processed pairs almost linear.
bool hkEquivalent(const Dfa &D, uint32_t S1, uint32_t S2,
                  HkStats *Stats = nullptr);

/// Which classical algorithm decides the extracted DFA.
enum class ExplicitAlgorithm {
  HopcroftKarp, ///< Union-find equivalence of the two initial states.
  Moore,        ///< O(n²) refinement; compare classes of initial states.
  Hopcroft,     ///< O(n log n) refinement; compare classes.
  PaigeTarjan,  ///< Relational coarsest partition; compare classes.
};

/// Outcome of the explicit-state baseline.
struct ExplicitCheckResult {
  enum class Verdict { Equivalent, NotEquivalent, ResourceLimit } V =
      Verdict::ResourceLimit;
  /// States in the joint configuration DFA (when extraction completed).
  size_t DfaStates = 0;
  RefineStats Refine;
  HkStats Hk;
  uint64_t WallMicros = 0;

  bool equivalent() const { return V == Verdict::Equivalent; }
};

/// The classical baseline end to end: extract the configuration DFAs
/// reachable from ⟨QL, SL, ε⟩ and ⟨QR, SR, ε⟩ (joint budget
/// \p ConfigLimit), take their disjoint union, and decide equivalence of
/// the two initial states with \p Algo. Returns ResourceLimit when the
/// configuration space exceeds the budget — the expected outcome for
/// realistic parsers, per §4's cardinality argument.
ExplicitCheckResult checkEquivalenceExplicit(
    const p4a::Automaton &Left, const p4a::Config &InitL,
    const p4a::Automaton &Right, const p4a::Config &InitR,
    size_t ConfigLimit, ExplicitAlgorithm Algo);

} // namespace algorithms
} // namespace leapfrog

#endif // LEAPFROG_ALGORITHMS_HOPCROFTKARP_H
