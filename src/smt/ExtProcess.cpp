//===- ExtProcess.cpp - Pipe-managed external solver process --------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "smt/ExtProcess.h"

#include "obs/Clock.h"
#include "smt/SmtLib.h"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <mutex>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace leapfrog;
using namespace leapfrog::smt;

namespace {

// Deadline arithmetic is purely relative, so any fixed epoch works; pinning
// one here keeps the values small and the clock source in obs::Clock.
long long nowMs() {
  static const obs::Clock::TimePoint Epoch = obs::Clock::now();
  return static_cast<long long>(obs::Clock::microsSince(Epoch) / 1000);
}

/// A solver that exits mid-query turns our next write into SIGPIPE, which
/// would kill the whole checker; writeLine wants EPIPE instead so it can
/// report Error and let the backend fall back. Installed once, process
/// wide — SIG_IGN is inherited and composes with any later handler the
/// embedding application installs (we never un-ignore).
void ignoreSigpipeOnce() {
  static std::once_flag Once;
  std::call_once(Once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

} // namespace

ExtProcess::ExtProcess() {
  // The cancellation self-pipe lives for the whole object, across any
  // number of start()/kill() cycles, so requestInterrupt() from another
  // thread never races a closing fd. Both ends non-blocking: a full pipe
  // on request just means an interrupt is already pending, and draining
  // must never block the owning thread.
  int P[2] = {-1, -1};
  if (::pipe2(P, O_CLOEXEC) == 0) {
    ::fcntl(P[0], F_SETFL, O_NONBLOCK);
    ::fcntl(P[1], F_SETFL, O_NONBLOCK);
    IntR = P[0];
    IntW = P[1];
  }
}

ExtProcess::~ExtProcess() {
  kill();
  if (IntR >= 0)
    ::close(IntR);
  if (IntW >= 0)
    ::close(IntW);
}

void ExtProcess::requestInterrupt() {
  if (IntW < 0)
    return;
  char Byte = 1;
  // EAGAIN means the pipe already holds a pending request — equivalent.
  ssize_t Ignored = ::write(IntW, &Byte, 1);
  (void)Ignored;
}

void ExtProcess::clearInterruptRequest() {
  if (IntR < 0)
    return;
  char Sink[64];
  while (::read(IntR, Sink, sizeof(Sink)) > 0)
    ;
}

bool ExtProcess::start(const std::vector<std::string> &Argv,
                       std::string *Error) {
  auto Fail = [&](const std::string &Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  if (Pid > 0)
    return Fail("a child process is already running");
  if (Argv.empty())
    return Fail("empty command");
  ignoreSigpipeOnce();

  // O_CLOEXEC atomically: backends on different threads (--jobs) fork
  // concurrently, and a pipe end leaked into a sibling's child would
  // keep this child's stdout open after it dies — EOF detection would
  // then stall for the full reply timeout instead of failing over
  // instantly. dup2 below clears the flag on exactly the two fds the
  // child must keep.
  int ToChild[2] = {-1, -1}, FromChild[2] = {-1, -1};
  if (::pipe2(ToChild, O_CLOEXEC) != 0)
    return Fail(std::string("pipe2: ") + std::strerror(errno));
  if (::pipe2(FromChild, O_CLOEXEC) != 0) {
    ::close(ToChild[0]);
    ::close(ToChild[1]);
    return Fail(std::string("pipe2: ") + std::strerror(errno));
  }
  // Writes must honor deadlines too (a wedged solver stops draining its
  // stdin, and a large query overfills the pipe): non-blocking end plus
  // poll(POLLOUT) in writeLine.
  ::fcntl(ToChild[1], F_SETFL, O_NONBLOCK);

  std::vector<char *> Cargv;
  Cargv.reserve(Argv.size() + 1);
  for (const std::string &A : Argv)
    Cargv.push_back(const_cast<char *>(A.c_str()));
  Cargv.push_back(nullptr);

  int Child = ::fork();
  if (Child < 0) {
    for (int Fd : {ToChild[0], ToChild[1], FromChild[0], FromChild[1]})
      ::close(Fd);
    return Fail(std::string("fork: ") + std::strerror(errno));
  }
  if (Child == 0) {
    // Child: wire the pipes to stdin/stdout; stderr is inherited so solver
    // diagnostics land next to ours. dup2 clears O_CLOEXEC on the new
    // fds; the originals close themselves at exec. The child's stdin
    // must block normally — the O_NONBLOCK above was set on the file
    // *description* of the write end only, which the child does not keep.
    ::dup2(ToChild[0], STDIN_FILENO);
    ::dup2(FromChild[1], STDOUT_FILENO);
    ::execvp(Cargv[0], Cargv.data());
    // exec failed: exit without running any parent-inherited atexit state.
    ::_exit(127);
  }

  ::close(ToChild[0]);
  ::close(FromChild[1]);
  Pid = Child;
  InFd = ToChild[1];
  OutFd = FromChild[0];
  Buffer.clear();
  return true;
}

void ExtProcess::kill() {
  if (Pid <= 0)
    return;
  ::kill(Pid, SIGKILL);
  int Status = 0;
  // SIGKILL cannot be caught, so the blocking reap terminates promptly
  // (EINTR excepted, hence the loop).
  while (::waitpid(Pid, &Status, 0) < 0 && errno == EINTR)
    ;
  if (InFd >= 0)
    ::close(InFd);
  if (OutFd >= 0)
    ::close(OutFd);
  Pid = -1;
  InFd = -1;
  OutFd = -1;
  Buffer.clear();
}

ExtProcess::IoResult ExtProcess::writeLine(const std::string &Line,
                                           int TimeoutMs) {
  if (Pid <= 0)
    return IoResult::Error;
  std::string Out = Line;
  Out.push_back('\n');
  long long Deadline = nowMs() + TimeoutMs;
  size_t Off = 0;
  while (Off < Out.size()) {
    ssize_t N = ::write(InFd, Out.data() + Off, Out.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // The pipe is full because the child stopped draining its stdin
        // (wedged solver + a query larger than the pipe capacity). Wait
        // under the same deadline discipline as reads — a blocked write
        // would otherwise hang the checker with no fallback.
        long long Remaining = Deadline - nowMs();
        if (Remaining <= 0)
          return IoResult::Timeout;
        struct pollfd Pfds[2];
        Pfds[0].fd = InFd;
        Pfds[0].events = POLLOUT;
        Pfds[1].fd = IntR;
        Pfds[1].events = POLLIN;
        int PollRes = ::poll(Pfds, IntR >= 0 ? 2 : 1,
                             int(Remaining > 0x7fffffff ? 0x7fffffff
                                                        : Remaining));
        if (PollRes == 0)
          return IoResult::Timeout;
        if (PollRes < 0 && errno != EINTR)
          return IoResult::Error;
        if (PollRes > 0 && IntR >= 0 && (Pfds[1].revents & POLLIN)) {
          clearInterruptRequest();
          return IoResult::Interrupted;
        }
        continue;
      }
      return errno == EPIPE ? IoResult::Eof : IoResult::Error;
    }
    Off += size_t(N);
  }
  return IoResult::Ok;
}

ExtProcess::IoResult ExtProcess::fill(long long DeadlineMs) {
  long long Remaining = DeadlineMs - nowMs();
  if (Remaining < 0)
    Remaining = 0;
  struct pollfd Pfds[2];
  Pfds[0].fd = OutFd;
  Pfds[0].events = POLLIN;
  Pfds[1].fd = IntR;
  Pfds[1].events = POLLIN;
  int PollRes = ::poll(Pfds, IntR >= 0 ? 2 : 1,
                       int(Remaining > 0x7fffffff ? 0x7fffffff : Remaining));
  if (PollRes == 0)
    return IoResult::Timeout;
  if (PollRes < 0)
    return errno == EINTR ? IoResult::Ok : IoResult::Error;
  // Cancellation beats data: a decided race needs the leg released now,
  // and any reply bytes become moot once the process is restarted.
  if (IntR >= 0 && (Pfds[1].revents & POLLIN)) {
    clearInterruptRequest();
    return IoResult::Interrupted;
  }
  struct pollfd &Pfd = Pfds[0];
  if (!(Pfd.revents & (POLLIN | POLLHUP | POLLERR)))
    return IoResult::Ok;
  char Chunk[4096];
  ssize_t N = ::read(OutFd, Chunk, sizeof(Chunk));
  if (N == 0)
    return IoResult::Eof;
  if (N < 0)
    return errno == EINTR ? IoResult::Ok : IoResult::Error;
  Buffer.append(Chunk, size_t(N));
  return IoResult::Ok;
}

ExtProcess::IoResult ExtProcess::readReply(std::string &Out, int TimeoutMs) {
  if (Pid <= 0)
    return IoResult::Error;
  Out.clear();
  long long Deadline = nowMs() + TimeoutMs;
  // The lexical definition of "one reply" lives in SExprScanner
  // (SmtLib.h), shared with the shim's command reader so both ends of
  // the pipe frame messages identically.
  SExprScanner Scanner;
  size_t Pos = 0;   ///< Scan position within Buffer.
  size_t Start = 0; ///< First non-whitespace byte of the reply.
  for (;;) {
    while (Pos < Buffer.size()) {
      switch (Scanner.feed(Buffer[Pos])) {
      case SExprScanner::Step::Skip:
        Start = ++Pos;
        break;
      case SExprScanner::Step::Continue:
        ++Pos;
        break;
      case SExprScanner::Step::Done:
        Out = Buffer.substr(Start, Pos + 1 - Start);
        Buffer.erase(0, Pos + 1);
        return IoResult::Ok;
      case SExprScanner::Step::DoneBefore:
        Out = Buffer.substr(Start, Pos - Start);
        Buffer.erase(0, Pos);
        return IoResult::Ok;
      }
    }
    // A bare atom terminated by EOF (no trailing newline) is still a
    // complete reply; detect that before asking for more bytes.
    IoResult R = fill(Deadline);
    if (R == IoResult::Eof && Scanner.atomInProgress() &&
        Start < Buffer.size()) {
      Out = Buffer.substr(Start);
      Buffer.clear();
      return IoResult::Ok;
    }
    if (R != IoResult::Ok)
      return R;
  }
}
