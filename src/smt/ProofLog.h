//===- ProofLog.h - Streaming per-goal DRUP proof capture ------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
// Session-mode certification. The one-shot DratProof in Drat.h assumes a
// solver whose clause database only grows and that answers exactly one
// query; incremental sessions violate both (reduceDB and goal GC delete
// clauses, and one SAT solver answers thousands of entailment goals). This
// header provides the streaming counterpart:
//
//  - ProofSink: the callback interface SatSolver feeds with every clause
//    database event (input added, lemma learnt, clause deleted).
//  - ProofStream: a recorded event stream for one solver incarnation,
//    extended with the structural markers the session layer emits around
//    each entailment goal (goal begin under an activation variable, goal
//    end with an UNSAT core or a SAT answer, session restart).
//  - ProofLog: an ordered collection of streams — one per solver
//    incarnation — with stable references and an adopt() operation the
//    parallel merge uses to concatenate worker logs into the sequential
//    proof artifact.
//  - StreamingProofChecker: a deletion-aware incremental RUP checker that
//    validates a certified session's stream as it is produced, for
//    CertifyUnsat runs that do not record a log.
//
// Why per-goal slices are sound under deletion and goal GC: activation
// variables never occur positively in any clause (guarded goal clauses and
// retirement units carry the negated activation literal; the positive
// literal only ever appears as a solve-time assumption). Resolution can
// therefore never eliminate a negated activation literal, so every lemma
// whose derivation touched a goal-guarded clause still carries that goal's
// ~act. The checker invariant is that every accepted lemma and every
// root-trail literal is a consequence of ALL inputs seen so far in the
// stream — deletions only shrink the checker's working database (a
// performance mirror of the solver's reduceDB/GC), they never retract an
// input from the claim set. An UNSAT goal's core {~act_g} verified by RUP
// against that database therefore certifies: premises /\ goal-CNF is
// unsatisfiable (any model of premises and the goal bodies would extend to
// a model of every input by setting act_g true and all other activation
// variables false). docs/CERTIFICATES.md spells the argument out.
//
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_SMT_PROOFLOG_H
#define LEAPFROG_SMT_PROOFLOG_H

#include "smt/Sat.h"

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

namespace leapfrog {
namespace smt {

/// Receives every clause-database event of a SatSolver, in order. Attached
/// with SatSolver::setProofSink. All clauses are reported verbatim:
/// onInput gets the clause as the caller passed it (before normalization;
/// when normalization changed it, the solver additionally reports the
/// normalized clause as a lemma, which is RUP against the original), and
/// onDelete gets the stored clause being removed, in its current literal
/// order (watch maintenance permutes literals, so consumers must match
/// deletions up to reordering).
class ProofSink {
public:
  virtual ~ProofSink() = default;
  virtual void onInput(const std::vector<Lit> &Clause) = 0;
  virtual void onLemma(const std::vector<Lit> &Clause) = 0;
  virtual void onDelete(const std::vector<Lit> &Clause) = 0;
};

/// One event of a recorded proof stream. Lits is the clause payload for
/// Input/Lemma/Delete and the UNSAT core for GoalEndUnsat; GoalId/ActVar
/// are meaningful for the goal markers only.
struct ProofEvent {
  enum class Kind : uint8_t {
    Input,        ///< 'i' — clause asserted into the solver.
    Lemma,        ///< 'l' — learnt clause; RUP obligation for checkers.
    Delete,       ///< 'd' — stored clause removed (reduceDB, GC, simplify).
    GoalBegin,    ///< 'g' — entailment goal opened under ActVar.
    GoalEndUnsat, ///< 'u' — goal answered UNSAT with the recorded core.
    GoalEndSat,   ///< 's' — goal answered SAT (database alignment only).
    Restart,      ///< 'r' — solver incarnation replaced; database resets.
  };
  Kind K;
  std::vector<Lit> Lits;
  uint64_t GoalId = 0;
  /// Activation variable for GoalBegin, or -1 for a one-shot goal (the
  /// whole stream is the proof of a single unguarded claim).
  Var ActVar = -1;
};

/// A recorded event stream covering one solver incarnation (or a sequence
/// of incarnations separated by Restart events). Implements ProofSink so
/// it can be attached directly to a SatSolver; the session layer emits the
/// goal markers around each query. Goal ids are per-stream, strictly
/// increasing, and never reset by restarts.
class ProofStream final : public ProofSink {
public:
  std::vector<ProofEvent> Events;

  void onInput(const std::vector<Lit> &Clause) override;
  void onLemma(const std::vector<Lit> &Clause) override;
  void onDelete(const std::vector<Lit> &Clause) override;

  /// Opens a goal under activation variable \p ActVar (pass -1 for an
  /// unguarded one-shot claim) and returns its per-stream id.
  uint64_t goalBegin(Var ActVar);
  /// Closes goal \p GoalId as UNSAT; \p Core is the failed-assumption core
  /// (each literal a negated activation literal), empty when the database
  /// itself is unsatisfiable at the root.
  void goalEndUnsat(uint64_t GoalId, std::vector<Lit> Core);
  /// Closes goal \p GoalId as SAT. Recorded so checkers can keep their
  /// database aligned across the goal's learnt clauses.
  void goalEndSat(uint64_t GoalId);
  /// Marks a session rebuild: the previous incarnation's database is gone
  /// and subsequent events start from an empty solver.
  void restart();

private:
  uint64_t NextGoalId = 1;
};

/// An ordered collection of proof streams — the proof artifact for one
/// check. Sequential checks fill one stream per session (plus one-shot
/// streams for monolithic queries); the parallel engine harvests each
/// worker's log with adopt() so the final artifact lists every slice that
/// justified an UNSAT answer used by the merge. Streams have stable
/// addresses for the lifetime of the log (deque storage), so sessions keep
/// raw pointers into it while attached.
class ProofLog {
public:
  ProofStream &newStream() {
    Streams.emplace_back();
    return Streams.back();
  }
  size_t streamCount() const { return Streams.size(); }
  const ProofStream &stream(size_t I) const { return Streams[I]; }

  /// Moves every stream of \p Other to the end of this log, in order,
  /// leaving \p Other empty. Used by the parallel merge to concatenate
  /// worker logs in worker-index order.
  void adopt(ProofLog &Other) {
    for (ProofStream &S : Other.Streams)
      Streams.push_back(std::move(S));
    Other.Streams.clear();
  }

  size_t totalEvents() const {
    size_t N = 0;
    for (const ProofStream &S : Streams)
      N += S.Events.size();
    return N;
  }

private:
  std::deque<ProofStream> Streams;
};

/// Deletion-aware incremental RUP checker. Mirrors DratChecker's watched
/// propagation engine but follows a live session instead of replaying a
/// finished proof: inputs extend the database, lemmas are RUP-checked and
/// then added, deletions remove the stored clause matching the reported
/// literal multiset, and restarts reset everything. Failures latch into
/// error(); the session aborts on the first failure, matching the one-shot
/// CertifyUnsat contract.
///
/// Deleting a clause never retracts root-trail literals it helped derive:
/// the invariant is that root facts are consequences of all inputs seen so
/// far, and deletions do not shrink that set.
class StreamingProofChecker final : public ProofSink {
public:
  struct Stats {
    uint64_t LemmasChecked = 0;
    uint64_t Propagations = 0;
    uint64_t Deletions = 0;
    uint64_t DeletionsSkipped = 0;
    uint64_t Micros = 0;
  };

  void onInput(const std::vector<Lit> &Clause) override;
  void onLemma(const std::vector<Lit> &Clause) override;
  void onDelete(const std::vector<Lit> &Clause) override;

  /// Validates an UNSAT goal answer: an empty \p Core requires the
  /// database to be conflicting at the root; otherwise the core clause
  /// must be RUP. Returns false (and latches the error) on failure.
  bool goalEndUnsat(const std::vector<Lit> &Core);
  /// Resets the database for a fresh solver incarnation.
  void restart();

  bool ok() const { return Error.empty(); }
  const std::string &error() const { return Error; }
  const Stats &stats() const { return S; }

private:
  struct CClause {
    std::vector<Lit> Lits;
    bool Deleted = false;
  };

  LBool value(Lit L) const {
    LBool V = Assigns[L.var()];
    if (V == LBool::Undef)
      return LBool::Undef;
    bool B = (V == LBool::True) != L.negated();
    return B ? LBool::True : LBool::False;
  }

  void growTo(Var V);
  bool enqueue(Lit L);
  bool propagate();
  bool addClause(const std::vector<Lit> &Clause);
  bool lemmaIsRup(const std::vector<Lit> &Lemma);
  void fail(const std::string &Why);
  static std::string multisetKey(const std::vector<Lit> &Clause);

  std::vector<CClause> Clauses;
  std::vector<std::vector<int>> Watches; // indexed by Lit::index()
  std::vector<LBool> Assigns;
  std::vector<Lit> Trail;
  size_t QueueHead = 0;
  bool RootConflict = false;
  /// Live stored clauses by sorted-literal key, for deletion matching.
  std::unordered_map<std::string, std::vector<int>> ByKey;
  std::string Error;
  Stats S;
};

} // namespace smt
} // namespace leapfrog

#endif // LEAPFROG_SMT_PROOFLOG_H
