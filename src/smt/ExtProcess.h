//===- ExtProcess.h - Pipe-managed external solver process ------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A line/s-expression-oriented REPL over a child process's stdin/stdout —
/// the transport under SmtLibSolver (SmtLibSolver.h), playing the role of
/// the pipe between the paper's Coq plugin and Z3/CVC4/Boolector (§6.3).
///
/// The class owns exactly one child process at a time. Every read carries a
/// deadline; a timeout, EOF, or write failure leaves the process in a state
/// the caller must treat as dead (kill() + restart or give up). Destruction
/// kills and reaps the child, so a leaked solver process cannot outlive the
/// backend that spawned it. The threading contract matches the rest of
/// smt/: one ExtProcess belongs to exactly one backend instance, and
/// backend instances never cross threads (docs/ARCHITECTURE.md, "Threading
/// contract" — one external process per worker).
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_SMT_EXTPROCESS_H
#define LEAPFROG_SMT_EXTPROCESS_H

#include <string>
#include <vector>

namespace leapfrog {
namespace smt {

/// One child process speaking a textual REPL over pipes.
class ExtProcess {
public:
  /// Outcome of a read/write against the child.
  enum class IoResult {
    Ok,      ///< The operation completed.
    Timeout, ///< The deadline expired before a complete reply arrived.
    Eof,     ///< The child closed its stdout (it exited or crashed).
    Error,   ///< An OS-level pipe error (EPIPE on write, read failure).
    Interrupted, ///< requestInterrupt() fired while the operation waited.
  };

  ExtProcess();
  ~ExtProcess();

  ExtProcess(const ExtProcess &) = delete;
  ExtProcess &operator=(const ExtProcess &) = delete;

  /// Spawns \p Argv (argv[0] resolved through PATH). Returns false — with
  /// a diagnostic in \p Error if non-null — when the pipes or the fork
  /// fail, or when the child dies before writing anything *and* exec
  /// failed (a child that execs successfully but exits at once is only
  /// discovered by the first read returning Eof). A process is already
  /// running: returns false.
  bool start(const std::vector<std::string> &Argv, std::string *Error);

  /// True while a child has been started and not yet reaped. This is the
  /// caller-side view: a child that crashed is still "running" here until
  /// a read reports Eof and the caller kills it.
  bool started() const { return Pid > 0; }

  /// SIGKILLs and reaps the child, closing both pipes. Idempotent.
  void kill();

  /// Writes \p Line plus a newline to the child's stdin, within
  /// \p TimeoutMs milliseconds — a child that stops draining its stdin
  /// fills the pipe, and an undeadlined write would hang the caller with
  /// no fallback (the read-side timeout can never fire first).
  IoResult writeLine(const std::string &Line, int TimeoutMs);

  /// Reads one reply: either a bare atom ("sat", "success", …) or one
  /// complete parenthesis-balanced s-expression (which may span lines —
  /// get-model replies do), skipping leading whitespace. String literals
  /// inside the reply may contain parentheses; they are tracked. The
  /// whole reply must arrive within \p TimeoutMs milliseconds.
  IoResult readReply(std::string &Out, int TimeoutMs);

  /// Cooperative cancellation via a self-pipe: requestInterrupt() may be
  /// called from ANY thread (a single-byte pipe write is async-signal and
  /// thread safe) and makes the blocked read/write on the owning thread
  /// return IoResult::Interrupted promptly. The self-pipe is created once
  /// in the constructor and lives for the whole object — kill()/start()
  /// cycles don't disturb it, so a concurrent requestInterrupt() never
  /// races a closing fd. A request posted while nothing is blocked stays
  /// pending and would trip the next operation; callers re-arming for a
  /// fresh query must clearInterruptRequest() first (the portfolio leg
  /// pickup protocol does).
  void requestInterrupt();
  void clearInterruptRequest();

private:
  /// Refills Buffer from the child's stdout; respects \p DeadlineMs as an
  /// absolute monotonic deadline.
  IoResult fill(long long DeadlineMs);

  int Pid = -1;
  int InFd = -1;  ///< Write end: the child's stdin.
  int OutFd = -1; ///< Read end: the child's stdout.
  int IntR = -1;  ///< Self-pipe read end, polled alongside the child fds.
  int IntW = -1;  ///< Self-pipe write end: requestInterrupt() posts here.
  std::string Buffer; ///< Bytes read but not yet consumed by readReply.
};

} // namespace smt
} // namespace leapfrog

#endif // LEAPFROG_SMT_EXTPROCESS_H
