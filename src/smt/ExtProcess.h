//===- ExtProcess.h - Pipe-managed external solver process ------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A line/s-expression-oriented REPL over a child process's stdin/stdout —
/// the transport under SmtLibSolver (SmtLibSolver.h), playing the role of
/// the pipe between the paper's Coq plugin and Z3/CVC4/Boolector (§6.3).
///
/// The class owns exactly one child process at a time. Every read carries a
/// deadline; a timeout, EOF, or write failure leaves the process in a state
/// the caller must treat as dead (kill() + restart or give up). Destruction
/// kills and reaps the child, so a leaked solver process cannot outlive the
/// backend that spawned it. The threading contract matches the rest of
/// smt/: one ExtProcess belongs to exactly one backend instance, and
/// backend instances never cross threads (docs/ARCHITECTURE.md, "Threading
/// contract" — one external process per worker).
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_SMT_EXTPROCESS_H
#define LEAPFROG_SMT_EXTPROCESS_H

#include <string>
#include <vector>

namespace leapfrog {
namespace smt {

/// One child process speaking a textual REPL over pipes.
class ExtProcess {
public:
  /// Outcome of a read/write against the child.
  enum class IoResult {
    Ok,      ///< The operation completed.
    Timeout, ///< The deadline expired before a complete reply arrived.
    Eof,     ///< The child closed its stdout (it exited or crashed).
    Error,   ///< An OS-level pipe error (EPIPE on write, read failure).
  };

  ExtProcess() = default;
  ~ExtProcess() { kill(); }

  ExtProcess(const ExtProcess &) = delete;
  ExtProcess &operator=(const ExtProcess &) = delete;

  /// Spawns \p Argv (argv[0] resolved through PATH). Returns false — with
  /// a diagnostic in \p Error if non-null — when the pipes or the fork
  /// fail, or when the child dies before writing anything *and* exec
  /// failed (a child that execs successfully but exits at once is only
  /// discovered by the first read returning Eof). A process is already
  /// running: returns false.
  bool start(const std::vector<std::string> &Argv, std::string *Error);

  /// True while a child has been started and not yet reaped. This is the
  /// caller-side view: a child that crashed is still "running" here until
  /// a read reports Eof and the caller kills it.
  bool started() const { return Pid > 0; }

  /// SIGKILLs and reaps the child, closing both pipes. Idempotent.
  void kill();

  /// Writes \p Line plus a newline to the child's stdin, within
  /// \p TimeoutMs milliseconds — a child that stops draining its stdin
  /// fills the pipe, and an undeadlined write would hang the caller with
  /// no fallback (the read-side timeout can never fire first).
  IoResult writeLine(const std::string &Line, int TimeoutMs);

  /// Reads one reply: either a bare atom ("sat", "success", …) or one
  /// complete parenthesis-balanced s-expression (which may span lines —
  /// get-model replies do), skipping leading whitespace. String literals
  /// inside the reply may contain parentheses; they are tracked. The
  /// whole reply must arrive within \p TimeoutMs milliseconds.
  IoResult readReply(std::string &Out, int TimeoutMs);

private:
  /// Refills Buffer from the child's stdout; respects \p DeadlineMs as an
  /// absolute monotonic deadline.
  IoResult fill(long long DeadlineMs);

  int Pid = -1;
  int InFd = -1;  ///< Write end: the child's stdin.
  int OutFd = -1; ///< Read end: the child's stdout.
  std::string Buffer; ///< Bytes read but not yet consumed by readReply.
};

} // namespace smt
} // namespace leapfrog

#endif // LEAPFROG_SMT_EXTPROCESS_H
