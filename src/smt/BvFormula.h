//===- BvFormula.h - First-order bitvector logic FOL(BV) --------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The low-level logic FOL(BV) at the bottom of the paper's compilation
/// chain (Figure 6): quantifier-free first-order formulas over fixed-width
/// bitvector terms built from variables, constants, concatenation and
/// extraction. Validity of the universally-closed formula is decided by
/// bit-blasting (BitBlast.h) — the role Z3/CVC4/Boolector play in the
/// paper — and formulas can be pretty-printed to SMT-LIB2 (SmtLib.h),
/// mirroring the paper's Coq plugin.
///
/// Bit index 0 of a term is its first (most significant / earliest on the
/// wire) bit, consistent with Bitvector and the paper's slice notation.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_SMT_BVFORMULA_H
#define LEAPFROG_SMT_BVFORMULA_H

#include "support/Bitvector.h"

#include <cassert>
#include <memory>
#include <string>
#include <vector>

namespace leapfrog {
namespace smt {

class BvTerm;
using BvTermRef = std::shared_ptr<const BvTerm>;

/// A fixed-width bitvector term.
class BvTerm {
public:
  enum class Kind { Var, Const, Concat, Extract };

  Kind kind() const { return K; }
  size_t width() const { return Width; }

  const std::string &varName() const {
    assert(K == Kind::Var && "not a variable");
    return Name;
  }
  const Bitvector &constValue() const {
    assert(K == Kind::Const && "not a constant");
    return Value;
  }
  const BvTermRef &lhs() const {
    assert(K == Kind::Concat && "not a concat");
    return L;
  }
  const BvTermRef &rhs() const {
    assert(K == Kind::Concat && "not a concat");
    return R;
  }
  const BvTermRef &extractOperand() const {
    assert(K == Kind::Extract && "not an extract");
    return L;
  }
  /// Inclusive bounds on the MSB-first index (0 = first bit).
  size_t extractLo() const {
    assert(K == Kind::Extract && "not an extract");
    return Lo;
  }
  size_t extractHi() const {
    assert(K == Kind::Extract && "not an extract");
    return Hi;
  }

  /// Free variable of \p Width bits named \p Name. Equal names must be used
  /// at equal widths within one formula.
  static BvTermRef mkVar(std::string Name, size_t Width);
  static BvTermRef mkConst(Bitvector Value);
  /// lhs ++ rhs, lhs bits first. Folds adjacent constants.
  static BvTermRef mkConcat(BvTermRef Lhs, BvTermRef Rhs);
  /// Exact inclusive extraction [Lo, Hi] (asserts in-bounds). Folds
  /// extract-of-const, extract-of-extract, full-width extracts, and pushes
  /// extraction through concatenation.
  static BvTermRef mkExtract(BvTermRef Operand, size_t Lo, size_t Hi);

  /// Renders the term for diagnostics ("x[3:7]", "(a ++ b)", "#b0101").
  std::string str() const;

private:
  BvTerm() = default;

  Kind K = Kind::Const;
  size_t Width = 0;
  std::string Name;
  Bitvector Value;
  BvTermRef L, R;
  size_t Lo = 0, Hi = 0;
};

class BvFormula;
using BvFormulaRef = std::shared_ptr<const BvFormula>;

/// A quantifier-free formula over bitvector equalities.
class BvFormula {
public:
  enum class Kind { True, False, Eq, Not, And, Or, Implies };

  Kind kind() const { return K; }

  const BvTermRef &eqLhs() const {
    assert(K == Kind::Eq && "not an equality");
    return TL;
  }
  const BvTermRef &eqRhs() const {
    assert(K == Kind::Eq && "not an equality");
    return TR;
  }
  const BvFormulaRef &sub() const {
    assert(K == Kind::Not && "not a negation");
    return FL;
  }
  const BvFormulaRef &lhs() const {
    assert((K == Kind::And || K == Kind::Or || K == Kind::Implies) &&
           "not a binary connective");
    return FL;
  }
  const BvFormulaRef &rhs() const {
    assert((K == Kind::And || K == Kind::Or || K == Kind::Implies) &&
           "not a binary connective");
    return FR;
  }

  static BvFormulaRef mkTrue();
  static BvFormulaRef mkFalse();
  /// Equality; asserts equal widths. Folds constant comparisons.
  static BvFormulaRef mkEq(BvTermRef Lhs, BvTermRef Rhs);
  static BvFormulaRef mkNot(BvFormulaRef F);
  static BvFormulaRef mkAnd(BvFormulaRef L, BvFormulaRef R);
  static BvFormulaRef mkOr(BvFormulaRef L, BvFormulaRef R);
  static BvFormulaRef mkImplies(BvFormulaRef L, BvFormulaRef R);

  /// Conjunction / disjunction of a list (True / False when empty).
  static BvFormulaRef mkAndAll(const std::vector<BvFormulaRef> &Fs);
  static BvFormulaRef mkOrAll(const std::vector<BvFormulaRef> &Fs);

  std::string str() const;

private:
  BvFormula() = default;

  Kind K = Kind::True;
  BvTermRef TL, TR;
  BvFormulaRef FL, FR;
};

/// Collects the free variables of \p F (name → width) in first-occurrence
/// order; asserts consistent widths.
std::vector<std::pair<std::string, size_t>>
collectVars(const BvFormulaRef &F);

/// Evaluates \p T under \p Assignment (name → value); used by tests and
/// model validation. Asserts all variables are assigned with right widths.
Bitvector
evalTerm(const BvTermRef &T,
         const std::vector<std::pair<std::string, Bitvector>> &Assignment);

/// Evaluates \p F under \p Assignment.
bool evalFormula(
    const BvFormulaRef &F,
    const std::vector<std::pair<std::string, Bitvector>> &Assignment);

} // namespace smt
} // namespace leapfrog

#endif // LEAPFROG_SMT_BVFORMULA_H
