//===- BvFormula.cpp - First-order bitvector logic FOL(BV) ----------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "smt/BvFormula.h"

#include <algorithm>

using namespace leapfrog;
using namespace leapfrog::smt;

//===----------------------------------------------------------------------===//
// Terms
//===----------------------------------------------------------------------===//

BvTermRef BvTerm::mkVar(std::string Name, size_t Width) {
  assert(Width > 0 && "zero-width variable");
  auto T = std::shared_ptr<BvTerm>(new BvTerm());
  T->K = Kind::Var;
  T->Width = Width;
  T->Name = std::move(Name);
  return T;
}

BvTermRef BvTerm::mkConst(Bitvector Value) {
  auto T = std::shared_ptr<BvTerm>(new BvTerm());
  T->K = Kind::Const;
  T->Width = Value.size();
  T->Value = std::move(Value);
  return T;
}

BvTermRef BvTerm::mkConcat(BvTermRef Lhs, BvTermRef Rhs) {
  assert(Lhs && Rhs && "concat of null term");
  // Zero-width identities.
  if (Lhs->width() == 0)
    return Rhs;
  if (Rhs->width() == 0)
    return Lhs;
  // Constant folding (paper §6.2: smart constructors keep WP output small).
  if (Lhs->kind() == Kind::Const && Rhs->kind() == Kind::Const)
    return mkConst(Lhs->constValue().concat(Rhs->constValue()));
  auto T = std::shared_ptr<BvTerm>(new BvTerm());
  T->K = Kind::Concat;
  T->Width = Lhs->width() + Rhs->width();
  T->L = std::move(Lhs);
  T->R = std::move(Rhs);
  return T;
}

BvTermRef BvTerm::mkExtract(BvTermRef Operand, size_t Lo, size_t Hi) {
  assert(Operand && "extract of null term");
  assert(Lo <= Hi && Hi < Operand->width() && "extract out of bounds");
  // Full-width extraction is the identity.
  if (Lo == 0 && Hi + 1 == Operand->width())
    return Operand;
  switch (Operand->kind()) {
  case Kind::Const:
    return mkConst(Operand->constValue().extract(Lo, Hi + 1));
  case Kind::Extract:
    // (t[a:b])[lo:hi] = t[a+lo : a+hi].
    return mkExtract(Operand->extractOperand(), Operand->extractLo() + Lo,
                     Operand->extractLo() + Hi);
  case Kind::Concat: {
    size_t LW = Operand->lhs()->width();
    if (Hi < LW)
      return mkExtract(Operand->lhs(), Lo, Hi);
    if (Lo >= LW)
      return mkExtract(Operand->rhs(), Lo - LW, Hi - LW);
    return mkConcat(mkExtract(Operand->lhs(), Lo, LW - 1),
                    mkExtract(Operand->rhs(), 0, Hi - LW));
  }
  case Kind::Var:
    break;
  }
  auto T = std::shared_ptr<BvTerm>(new BvTerm());
  T->K = Kind::Extract;
  T->Width = Hi - Lo + 1;
  T->L = std::move(Operand);
  T->Lo = Lo;
  T->Hi = Hi;
  return T;
}

std::string BvTerm::str() const {
  switch (K) {
  case Kind::Var:
    return Name;
  case Kind::Const:
    return "#b" + Value.str();
  case Kind::Concat:
    return "(" + L->str() + " ++ " + R->str() + ")";
  case Kind::Extract:
    return L->str() + "[" + std::to_string(Lo) + ":" + std::to_string(Hi) +
           "]";
  }
  return "<term>";
}

//===----------------------------------------------------------------------===//
// Formulas
//===----------------------------------------------------------------------===//

BvFormulaRef BvFormula::mkTrue() {
  auto F = std::shared_ptr<BvFormula>(new BvFormula());
  F->K = Kind::True;
  return F;
}

BvFormulaRef BvFormula::mkFalse() {
  auto F = std::shared_ptr<BvFormula>(new BvFormula());
  F->K = Kind::False;
  return F;
}

BvFormulaRef BvFormula::mkEq(BvTermRef Lhs, BvTermRef Rhs) {
  assert(Lhs && Rhs && "equality over null term");
  assert(Lhs->width() == Rhs->width() && "equality width mismatch");
  if (Lhs->width() == 0)
    return mkTrue();
  if (Lhs->kind() == BvTerm::Kind::Const &&
      Rhs->kind() == BvTerm::Kind::Const)
    return Lhs->constValue() == Rhs->constValue() ? mkTrue() : mkFalse();
  auto F = std::shared_ptr<BvFormula>(new BvFormula());
  F->K = Kind::Eq;
  F->TL = std::move(Lhs);
  F->TR = std::move(Rhs);
  return F;
}

BvFormulaRef BvFormula::mkNot(BvFormulaRef Sub) {
  assert(Sub && "negation of null formula");
  if (Sub->kind() == Kind::True)
    return mkFalse();
  if (Sub->kind() == Kind::False)
    return mkTrue();
  if (Sub->kind() == Kind::Not)
    return Sub->sub();
  auto F = std::shared_ptr<BvFormula>(new BvFormula());
  F->K = Kind::Not;
  F->FL = std::move(Sub);
  return F;
}

BvFormulaRef BvFormula::mkAnd(BvFormulaRef L, BvFormulaRef R) {
  assert(L && R && "conjunction of null formula");
  if (L->kind() == Kind::False || R->kind() == Kind::False)
    return mkFalse();
  if (L->kind() == Kind::True)
    return R;
  if (R->kind() == Kind::True)
    return L;
  auto F = std::shared_ptr<BvFormula>(new BvFormula());
  F->K = Kind::And;
  F->FL = std::move(L);
  F->FR = std::move(R);
  return F;
}

BvFormulaRef BvFormula::mkOr(BvFormulaRef L, BvFormulaRef R) {
  assert(L && R && "disjunction of null formula");
  if (L->kind() == Kind::True || R->kind() == Kind::True)
    return mkTrue();
  if (L->kind() == Kind::False)
    return R;
  if (R->kind() == Kind::False)
    return L;
  auto F = std::shared_ptr<BvFormula>(new BvFormula());
  F->K = Kind::Or;
  F->FL = std::move(L);
  F->FR = std::move(R);
  return F;
}

BvFormulaRef BvFormula::mkImplies(BvFormulaRef L, BvFormulaRef R) {
  assert(L && R && "implication of null formula");
  if (L->kind() == Kind::False || R->kind() == Kind::True)
    return mkTrue();
  if (L->kind() == Kind::True)
    return R;
  if (R->kind() == Kind::False)
    return mkNot(std::move(L));
  auto F = std::shared_ptr<BvFormula>(new BvFormula());
  F->K = Kind::Implies;
  F->FL = std::move(L);
  F->FR = std::move(R);
  return F;
}

BvFormulaRef BvFormula::mkAndAll(const std::vector<BvFormulaRef> &Fs) {
  BvFormulaRef Acc = mkTrue();
  for (const BvFormulaRef &F : Fs)
    Acc = mkAnd(Acc, F);
  return Acc;
}

BvFormulaRef BvFormula::mkOrAll(const std::vector<BvFormulaRef> &Fs) {
  BvFormulaRef Acc = mkFalse();
  for (const BvFormulaRef &F : Fs)
    Acc = mkOr(Acc, F);
  return Acc;
}

std::string BvFormula::str() const {
  switch (K) {
  case Kind::True:
    return "true";
  case Kind::False:
    return "false";
  case Kind::Eq:
    return "(" + TL->str() + " = " + TR->str() + ")";
  case Kind::Not:
    return "!" + FL->str();
  case Kind::And:
    return "(" + FL->str() + " & " + FR->str() + ")";
  case Kind::Or:
    return "(" + FL->str() + " | " + FR->str() + ")";
  case Kind::Implies:
    return "(" + FL->str() + " -> " + FR->str() + ")";
  }
  return "<formula>";
}

//===----------------------------------------------------------------------===//
// Traversal and evaluation
//===----------------------------------------------------------------------===//

namespace {

void collectTermVars(const BvTermRef &T,
                     std::vector<std::pair<std::string, size_t>> &Vars) {
  switch (T->kind()) {
  case BvTerm::Kind::Var: {
    for (auto &[Name, Width] : Vars)
      if (Name == T->varName()) {
        assert(Width == T->width() && "variable used at two widths");
        (void)Width;
        return;
      }
    Vars.emplace_back(T->varName(), T->width());
    return;
  }
  case BvTerm::Kind::Const:
    return;
  case BvTerm::Kind::Concat:
    collectTermVars(T->lhs(), Vars);
    collectTermVars(T->rhs(), Vars);
    return;
  case BvTerm::Kind::Extract:
    collectTermVars(T->extractOperand(), Vars);
    return;
  }
}

void collectFormulaVars(const BvFormulaRef &F,
                        std::vector<std::pair<std::string, size_t>> &Vars) {
  switch (F->kind()) {
  case BvFormula::Kind::True:
  case BvFormula::Kind::False:
    return;
  case BvFormula::Kind::Eq:
    collectTermVars(F->eqLhs(), Vars);
    collectTermVars(F->eqRhs(), Vars);
    return;
  case BvFormula::Kind::Not:
    collectFormulaVars(F->sub(), Vars);
    return;
  case BvFormula::Kind::And:
  case BvFormula::Kind::Or:
  case BvFormula::Kind::Implies:
    collectFormulaVars(F->lhs(), Vars);
    collectFormulaVars(F->rhs(), Vars);
    return;
  }
}

} // namespace

std::vector<std::pair<std::string, size_t>>
smt::collectVars(const BvFormulaRef &F) {
  std::vector<std::pair<std::string, size_t>> Vars;
  collectFormulaVars(F, Vars);
  return Vars;
}

Bitvector smt::evalTerm(
    const BvTermRef &T,
    const std::vector<std::pair<std::string, Bitvector>> &Assignment) {
  switch (T->kind()) {
  case BvTerm::Kind::Var: {
    for (const auto &[Name, Value] : Assignment)
      if (Name == T->varName()) {
        assert(Value.size() == T->width() && "assignment width mismatch");
        return Value;
      }
    assert(false && "unassigned variable in evalTerm");
    return Bitvector();
  }
  case BvTerm::Kind::Const:
    return T->constValue();
  case BvTerm::Kind::Concat:
    return evalTerm(T->lhs(), Assignment)
        .concat(evalTerm(T->rhs(), Assignment));
  case BvTerm::Kind::Extract:
    return evalTerm(T->extractOperand(), Assignment)
        .extract(T->extractLo(), T->extractHi() + 1);
  }
  assert(false && "unknown term kind");
  return Bitvector();
}

bool smt::evalFormula(
    const BvFormulaRef &F,
    const std::vector<std::pair<std::string, Bitvector>> &Assignment) {
  switch (F->kind()) {
  case BvFormula::Kind::True:
    return true;
  case BvFormula::Kind::False:
    return false;
  case BvFormula::Kind::Eq:
    return evalTerm(F->eqLhs(), Assignment) ==
           evalTerm(F->eqRhs(), Assignment);
  case BvFormula::Kind::Not:
    return !evalFormula(F->sub(), Assignment);
  case BvFormula::Kind::And:
    return evalFormula(F->lhs(), Assignment) &&
           evalFormula(F->rhs(), Assignment);
  case BvFormula::Kind::Or:
    return evalFormula(F->lhs(), Assignment) ||
           evalFormula(F->rhs(), Assignment);
  case BvFormula::Kind::Implies:
    return !evalFormula(F->lhs(), Assignment) ||
           evalFormula(F->rhs(), Assignment);
  }
  assert(false && "unknown formula kind");
  return false;
}
