//===- Drat.h - DRUP proof logging and checking -----------------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Clausal proof logging for the CDCL solver and an independent proof
/// checker, addressing the paper's §6.4 trusted-computing-base discussion:
///
///   "The SMT solver and plugin [...] could be removed from the TCB by
///    implementing proof reconstruction."
///
/// The paper trusts the solver's UNSAT answers. Here every UNSAT answer can
/// instead be accompanied by a DRUP proof — the sequence of clauses the
/// solver learnt, ending in the empty clause — and replayed by
/// DratChecker, a separate unit-propagation engine that shares no solving
/// code with SatSolver. Each lemma is validated by *reverse unit
/// propagation* (RUP): asserting its negation must yield a conflict by
/// unit propagation over the input clauses and previously accepted lemmas.
/// One-shot solves never delete clauses, so for them plain DRUP (the
/// deletion-free fragment of DRAT) suffices and this grow-only proof is
/// the right shape. Incremental sessions do delete (reduceDB, retired-goal
/// GC); their streaming, deletion-aware counterpart lives in ProofLog.h.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_SMT_DRAT_H
#define LEAPFROG_SMT_DRAT_H

#include "smt/Sat.h"

#include <string>
#include <vector>

namespace leapfrog {
namespace smt {

/// A DRUP proof: the input clause set plus the derived lemmas, in
/// derivation order. A proof of unsatisfiability ends with (or contains)
/// the empty clause.
struct DratProof {
  /// Original clauses, exactly as handed to the solver.
  std::vector<std::vector<Lit>> Inputs;
  /// Derived clauses, in the order the solver produced them. Each must be
  /// RUP with respect to Inputs plus all earlier lemmas.
  std::vector<std::vector<Lit>> Lemmas;

  /// True when some lemma is the empty clause (claimed unsatisfiability).
  bool claimsUnsat() const {
    for (const std::vector<Lit> &L : Lemmas)
      if (L.empty())
        return true;
    return false;
  }

  /// Serializes in the textual DRUP format understood by standard proof
  /// checkers (one clause per line, DIMACS literals, "0" terminated).
  std::string str() const;
};

/// Replays a DratProof against its input clauses with an independent
/// watched-literal propagation engine. On success, the empty clause is
/// RUP-derivable, so the input set is unsatisfiable — regardless of any
/// bug in SatSolver.
class DratChecker {
public:
  /// Verifies \p Proof. Returns true iff every lemma is RUP with respect
  /// to the clauses before it and some lemma is empty. On failure, \p Error
  /// (if non-null) receives a diagnostic naming the offending lemma.
  bool check(const DratProof &Proof, std::string *Error = nullptr);

  /// Statistics from the last check() call.
  struct Stats {
    size_t LemmasChecked = 0;
    uint64_t Propagations = 0;
  };
  const Stats &stats() const { return S; }

private:
  /// Ensures Assigns/Watches cover variables up to \p V.
  void growTo(Var V);
  /// Loads one clause into the database; returns false on immediate
  /// root-level conflict (empty clause or contradicting unit).
  bool addClause(const std::vector<Lit> &C);
  /// Runs unit propagation from QueueHead; returns true on conflict.
  bool propagate();
  /// Checks one lemma by reverse unit propagation.
  bool lemmaIsRup(const std::vector<Lit> &Lemma);

  LBool value(Lit L) const {
    LBool V = Assigns[L.var()];
    return L.negated() ? negate(V) : V;
  }
  bool enqueue(Lit L); ///< False if L is already false (conflict).

  std::vector<std::vector<Lit>> Clauses;
  std::vector<std::vector<int>> Watches; ///< Indexed by Lit::index().
  std::vector<LBool> Assigns;
  std::vector<Lit> Trail;
  size_t QueueHead = 0;
  bool RootConflict = false;
  Stats S;
};

/// Convenience wrapper: solves \p Clauses over \p NumVars variables with
/// proof logging enabled and, on UNSAT, replays the proof. Returns the
/// SAT/UNSAT verdict; aborts via assert if the solver claims UNSAT but the
/// proof does not check (a solver soundness bug).
bool solveWithCheckedProof(size_t NumVars,
                           const std::vector<std::vector<Lit>> &Clauses,
                           DratProof *ProofOut = nullptr);

} // namespace smt
} // namespace leapfrog

#endif // LEAPFROG_SMT_DRAT_H
