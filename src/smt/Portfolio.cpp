//===- Portfolio.cpp - Racing portfolio solver backend --------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "smt/Portfolio.h"

#include "obs/Clock.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <cassert>

using namespace leapfrog;
using namespace leapfrog::smt;

PortfolioSolver::PortfolioSolver(
    std::vector<std::unique_ptr<SmtSolver>> LegSolvers) {
  assert(!LegSolvers.empty() && "portfolio needs at least one leg");
  P.Wins.assign(LegSolvers.size(), 0);
  for (std::unique_ptr<SmtSolver> &S : LegSolvers) {
    auto L = std::make_unique<Leg>();
    L->Solver = std::move(S);
    Legs.push_back(std::move(L));
  }
  for (std::unique_ptr<Leg> &L : Legs)
    L->Thread = std::thread([this, &L] { legMain(*L); });
}

PortfolioSolver::~PortfolioSolver() {
  // The race protocol waits for every leg before any public call
  // returns, so no job can be in flight here; the threads are idle.
  for (std::unique_ptr<Leg> &L : Legs) {
    {
      std::lock_guard<std::mutex> Lk(L->M);
      L->Stop = true;
    }
    L->Cv.notify_all();
  }
  for (std::unique_ptr<Leg> &L : Legs)
    L->Thread.join();
}

void PortfolioSolver::legMain(Leg &L) {
  for (;;) {
    std::function<void()> Job;
    {
      std::unique_lock<std::mutex> Lk(L.M);
      L.Cv.wait(Lk, [&] { return L.HasJob || L.Stop; });
      if (L.Stop && !L.HasJob)
        return;
      Job = std::move(L.Job);
      L.HasJob = false;
      L.Cv.notify_all(); // Free the mailbox slot for the next post.
    }
    Job();
  }
}

void PortfolioSolver::post(size_t I, std::function<void()> Job) {
  Leg &L = *Legs[I];
  {
    std::unique_lock<std::mutex> Lk(L.M);
    L.Cv.wait(Lk, [&] { return !L.HasJob; });
    L.Job = std::move(Job);
    L.HasJob = true;
  }
  L.Cv.notify_all();
}

void PortfolioSolver::report(Race &R, size_t I, bool Valid) {
  std::vector<SmtSolver *> ToCancel;
  {
    std::lock_guard<std::mutex> Lk(R.M);
    if (Valid && !R.HaveWinner) {
      R.HaveWinner = true;
      R.WinnerLeg = I;
      ++P.Wins[I];
      // Cancellation handshake, both sides sequentially consistent: the
      // Cancelled store here and each leg's Started store are ordered in
      // the one SC total order, so for every loser either (a) its
      // Started store came first — then our Started load below sees it
      // and we interrupt the running solve — or (b) our Cancelled store
      // came first — then the leg's Cancelled load at pickup sees it and
      // it aborts before solving. One path always fires; a leg can never
      // slip between them and run to completion unobserved (it may still
      // *finish* before the interrupt lands, which is a harmless lost
      // cancellation — its answer is simply discarded as a loser).
      R.Cancelled.store(true, std::memory_order_seq_cst);
      for (size_t J = 0; J < Legs.size(); ++J) {
        if (J == I || R.Done[J])
          continue;
        if (R.Started[J].load(std::memory_order_seq_cst))
          ToCancel.push_back(Legs[J]->Solver.get());
      }
      P.Cancelled += ToCancel.size();
    }
    R.Done[I] = 1;
    --R.Remaining;
  }
  R.Cv.notify_all();
  // Interrupt outside the race mutex: it is non-blocking for every
  // backend (flag store + self-pipe write), but there is no reason to
  // hold the lock other legs' reports need.
  for (SmtSolver *S : ToCancel)
    S->interrupt();
}

size_t PortfolioSolver::race(const std::function<bool(size_t)> &Run) {
  size_t N = Legs.size();
  Race R;
  R.Remaining = N;
  R.Done.assign(N, 0);
  R.Started.reset(new std::atomic<bool>[N]);
  for (size_t I = 0; I < N; ++I)
    R.Started[I].store(false, std::memory_order_relaxed);
  for (size_t I = 0; I < N; ++I) {
    post(I, [this, &R, &Run, I] {
      Leg &L = *Legs[I];
      // Pickup protocol: re-arm first (a cancellation aimed at the
      // PREVIOUS query must not kill this one), then publish Started,
      // then check Cancelled — the exact order the SC argument in
      // report() relies on.
      L.Solver->clearInterrupt();
      R.Started[I].store(true, std::memory_order_seq_cst);
      if (R.Cancelled.load(std::memory_order_seq_cst)) {
        report(R, I, false);
        return;
      }
      bool Valid = Run(I);
      if (L.Solver->interrupted())
        Valid = false;
      report(R, I, Valid);
    });
  }
  std::unique_lock<std::mutex> Lk(R.M);
  R.Cv.wait(Lk, [&] { return R.Remaining == 0; });
  // Every leg reported; with no cancellation before the first valid
  // answer, at least one leg is valid, so a winner exists.
  return R.HaveWinner ? R.WinnerLeg : 0;
}

SatResult PortfolioSolver::checkSat(const BvFormulaRef &F, Model *M) {
  obs::ScopedSpan Span("portfolio.query", "solver");
  obs::StopWatch Watch;
  size_t N = Legs.size();
  std::vector<SatResult> Answers(N, SatResult::Sat);
  std::vector<Model> Models(N);
  size_t W = race([&](size_t I) {
    Answers[I] = Legs[I]->Solver->checkSat(F, M ? &Models[I] : nullptr);
    return true;
  });
  if (M)
    *M = std::move(Models[W]);
  SatResult R = Answers[W];
  uint64_t Micros = Watch.elapsedMicros();
  ++Stats.Queries;
  Stats.TotalMicros += Micros;
  Stats.MaxMicros = std::max(Stats.MaxMicros, Micros);
  Stats.QueryMicros.push_back(Micros);
  if (R == SatResult::Sat)
    ++Stats.SatAnswers;
  else
    ++Stats.UnsatAnswers;
  return R;
}

/// One child session per leg, each living on its leg's thread for every
/// query; premises are mirrored into all of them (between races, so the
/// mailbox ordering makes the handoff safe), goals and batches race.
class PortfolioSolver::PortfolioSession
    : public SmtSolver::IncrementalSession {
public:
  PortfolioSession(PortfolioSolver &Owner, const SessionLimits &Limits)
      : Owner(Owner) {
    for (std::unique_ptr<Leg> &L : Owner.Legs)
      Sessions.push_back(L->Solver->openSession(Limits));
  }

  void assertPremise(const BvFormulaRef &F) override {
    ++Owner.Stats.SessionPremises;
    for (std::unique_ptr<IncrementalSession> &S : Sessions)
      S->assertPremise(F);
  }

  SatResult checkSatUnderPremises(const BvFormulaRef &Goal,
                                  Model *M) override {
    obs::ScopedSpan Span("portfolio.query", "solver");
    obs::StopWatch Watch;
    ++Owner.Stats.SessionQueries;
    size_t N = Sessions.size();
    std::vector<SatResult> Answers(N, SatResult::Sat);
    std::vector<Model> Models(N);
    size_t W = Owner.race([&](size_t I) {
      Answers[I] =
          Sessions[I]->checkSatUnderPremises(Goal, M ? &Models[I] : nullptr);
      return true;
    });
    if (M)
      *M = std::move(Models[W]);
    SatResult R = Answers[W];
    uint64_t Micros = Watch.elapsedMicros();
    SolverStats &St = Owner.Stats;
    ++St.Queries;
    St.TotalMicros += Micros;
    St.MaxMicros = std::max(St.MaxMicros, Micros);
    St.QueryMicros.push_back(Micros);
    if (R == SatResult::Sat)
      ++St.SatAnswers;
    else
      ++St.UnsatAnswers;
    return R;
  }

  /// Whole batches race as a unit: each leg answers all goals with its
  /// own batching strategy, and the first complete answer set wins.
  void checkSatBatch(const std::vector<BvFormulaRef> &Goals,
                     std::vector<SatResult> &Out) override {
    obs::ScopedSpan Span("portfolio.batch", "solver");
    obs::StopWatch Watch;
    size_t N = Sessions.size();
    Owner.Stats.SessionQueries += Goals.size();
    std::vector<std::vector<SatResult>> Outs(N);
    size_t W = Owner.race([&](size_t I) {
      Sessions[I]->checkSatBatch(Goals, Outs[I]);
      return true;
    });
    Out = std::move(Outs[W]);
    uint64_t Micros = Watch.elapsedMicros();
    SolverStats &St = Owner.Stats;
    St.Queries += Goals.size();
    St.TotalMicros += Micros;
    St.MaxMicros = std::max(St.MaxMicros, Micros);
    uint64_t Share = Goals.empty() ? 0 : Micros / Goals.size();
    for (SatResult R : Out) {
      St.QueryMicros.push_back(Share);
      if (R == SatResult::Sat)
        ++St.SatAnswers;
      else
        ++St.UnsatAnswers;
    }
  }

private:
  PortfolioSolver &Owner;
  std::vector<std::unique_ptr<IncrementalSession>> Sessions;
};

std::unique_ptr<SmtSolver::IncrementalSession>
PortfolioSolver::openSession(const SessionLimits &Limits) {
  ++Stats.SessionsOpened;
  return std::make_unique<PortfolioSession>(*this, Limits);
}

std::unique_ptr<SmtSolver> PortfolioSolver::spawnWorker() {
  std::vector<std::unique_ptr<SmtSolver>> Ws;
  for (std::unique_ptr<Leg> &L : Legs) {
    std::unique_ptr<SmtSolver> W = L->Solver->spawnWorker();
    if (!W)
      return nullptr;
    Ws.push_back(std::move(W));
  }
  return std::make_unique<PortfolioSolver>(std::move(Ws));
}
