//===- SmtLibSolver.cpp - External SMT-LIB2 backends ----------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "smt/SmtLibSolver.h"

#include "obs/Clock.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "smt/SmtLib.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <unordered_set>

using namespace leapfrog;
using namespace leapfrog::smt;

namespace {

// Per-query round-trip latency through the external pipe (its fallback
// included: the caller sees one number either way), plus the two failure-mode
// counters the SOLVERS.md doc tells operators to watch.
obs::Histogram &extRoundTripMetric() {
  static obs::Histogram &H = obs::metrics().histogram("ext.roundtrip_micros");
  return H;
}

obs::Counter &extFallbackMetric() {
  static obs::Counter &C = obs::metrics().counter("ext.fallback_queries");
  return C;
}

/// Rebuilds \p T with every variable renamed to Prefix+Name. Memoized on
/// node identity: formulas are DAGs and shared subterms must not blow up
/// into trees.
class VarRenamer {
public:
  explicit VarRenamer(const std::string &Prefix) : Prefix(Prefix) {}

  BvTermRef term(const BvTermRef &T) {
    auto It = Terms.find(T.get());
    if (It != Terms.end())
      return It->second;
    BvTermRef Out;
    switch (T->kind()) {
    case BvTerm::Kind::Var:
      Out = BvTerm::mkVar(Prefix + T->varName(), T->width());
      break;
    case BvTerm::Kind::Const:
      Out = T;
      break;
    case BvTerm::Kind::Concat:
      Out = BvTerm::mkConcat(term(T->lhs()), term(T->rhs()));
      break;
    case BvTerm::Kind::Extract:
      Out = BvTerm::mkExtract(term(T->extractOperand()), T->extractLo(),
                              T->extractHi());
      break;
    }
    Terms.emplace(T.get(), Out);
    return Out;
  }

  BvFormulaRef formula(const BvFormulaRef &F) {
    auto It = Formulas.find(F.get());
    if (It != Formulas.end())
      return It->second;
    BvFormulaRef Out;
    switch (F->kind()) {
    case BvFormula::Kind::True:
    case BvFormula::Kind::False:
      Out = F;
      break;
    case BvFormula::Kind::Eq:
      Out = BvFormula::mkEq(term(F->eqLhs()), term(F->eqRhs()));
      break;
    case BvFormula::Kind::Not:
      Out = BvFormula::mkNot(formula(F->sub()));
      break;
    case BvFormula::Kind::And:
      Out = BvFormula::mkAnd(formula(F->lhs()), formula(F->rhs()));
      break;
    case BvFormula::Kind::Or:
      Out = BvFormula::mkOr(formula(F->lhs()), formula(F->rhs()));
      break;
    case BvFormula::Kind::Implies:
      Out = BvFormula::mkImplies(formula(F->lhs()), formula(F->rhs()));
      break;
    }
    Formulas.emplace(F.get(), Out);
    return Out;
  }

private:
  const std::string &Prefix;
  std::unordered_map<const BvTerm *, BvTermRef> Terms;
  std::unordered_map<const BvFormula *, BvFormulaRef> Formulas;
};

/// Sanitized-symbol declarations for the renamed image of \p F.
std::vector<std::pair<std::string, size_t>>
sanitizedVars(const BvFormulaRef &RenamedF) {
  std::vector<std::pair<std::string, size_t>> Out;
  for (const auto &[Name, Width] : collectVars(RenamedF))
    Out.emplace_back(sanitizeSymbol(Name), Width);
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// SmtLibSolver: process management
//===----------------------------------------------------------------------===//

std::vector<std::string> SmtLibSolver::splitCommand(const std::string &Cmd) {
  std::vector<std::string> Argv;
  std::istringstream In(Cmd);
  std::string Tok;
  while (In >> Tok)
    Argv.push_back(Tok);
  return Argv;
}

SmtLibSolver::SmtLibSolver(SmtLibConfig Config) : Config(std::move(Config)) {
  // The smart constructors may fold a renamed formula differently than the
  // original only if renaming changed constants — it cannot — so renaming
  // is semantics- and shape-preserving by construction.
}

SmtLibSolver::~SmtLibSolver() {
  if (Proc.started())
    Proc.writeLine("(exit)", 100); // Politeness; kill() in ~ExtProcess
                                   // is the actual guarantee.
}

void SmtLibSolver::warnFallback(const char *Why) {
  if (Warned || !Config.WarnOnFallback)
    return;
  Warned = true;
  std::fprintf(stderr,
               "leapfrog: external SMT backend '%s' failed (%s); affected "
               "queries are answered by the in-repo bit-blaster (see "
               "docs/SOLVERS.md, Troubleshooting)\n",
               Config.Argv.empty() ? "<empty>" : Config.Argv[0].c_str(),
               Why);
}

void SmtLibSolver::processFailure(const char *What) {
  Proc.kill();
  Declared.clear();
  ++Failures;
  // Warn on the *first* failure with its concrete reason — by the time
  // the failure budget is exhausted the root cause is long gone.
  warnFallback(What);
  if (Failures >= Config.MaxProcessFailures)
    Permanent = true;
}

bool SmtLibSolver::exchange(const std::string &Line, std::string &Reply) {
  switch (Proc.writeLine(Line, Config.QueryTimeoutMs)) {
  case ExtProcess::IoResult::Ok:
    break;
  case ExtProcess::IoResult::Timeout:
    ++Ext.Timeouts;
    processFailure("write timeout (solver stopped reading stdin)");
    return false;
  default:
    ++Ext.Eofs;
    processFailure("write failed");
    return false;
  }
  switch (Proc.readReply(Reply, Config.QueryTimeoutMs)) {
  case ExtProcess::IoResult::Ok:
    return true;
  case ExtProcess::IoResult::Timeout:
    ++Ext.Timeouts;
    processFailure("reply timeout");
    return false;
  case ExtProcess::IoResult::Eof:
    ++Ext.Eofs;
    processFailure("process exited");
    return false;
  case ExtProcess::IoResult::Error:
    ++Ext.ProtocolErrors;
    processFailure("pipe error");
    return false;
  }
  return false;
}

bool SmtLibSolver::command(const std::string &Line) {
  std::string Reply;
  if (!exchange(Line, Reply))
    return false;
  // "unsupported" is a legal reply to set-option and harmless for the
  // options we set; anything else (errors included) means we lost the
  // plot and cannot trust the dialogue to stay in sync.
  if (Reply == "success" || Reply == "unsupported")
    return true;
  ++Ext.ProtocolErrors;
  processFailure("unexpected command reply");
  return false;
}

bool SmtLibSolver::ensureProcess() {
  if (Permanent)
    return false;
  if (Proc.started())
    return true;
  if (Config.Argv.empty()) {
    Permanent = true;
    warnFallback("empty command");
    return false;
  }
  std::string Err;
  if (!Proc.start(Config.Argv, &Err)) {
    // Warn with the concrete OS-level reason before processFailure's
    // generic one can claim the one-time notice.
    warnFallback(Err.c_str());
    processFailure("spawn failed");
    return false;
  }
  ++Ext.Spawns;
  static obs::Counter &SpawnMetric = obs::metrics().counter("ext.spawns");
  SpawnMetric.add();
  ++Epoch;
  Declared.clear();
  // Handshake. print-success first so every later command is confirmed
  // synchronously; produce-models before set-logic per the SMT-LIB
  // standard's option rules.
  if (!command("(set-option :print-success true)") ||
      !command("(set-option :produce-models true)") ||
      !command("(set-logic QF_BV)"))
    return false;
  return true;
}

bool SmtLibSolver::declareVars(
    const std::vector<std::pair<std::string, size_t>> &Vars, bool Record) {
  for (const auto &[Sym, Width] : Vars) {
    auto It = Declared.find(Sym);
    if (It != Declared.end()) {
      if (It->second != Width) {
        // Per-session prefixes make this unreachable for checker
        // workloads; a custom caller violating the equal-names/equal-
        // widths precondition lands here instead of desyncing the
        // dialogue.
        ++Ext.ProtocolErrors;
        processFailure("variable redeclared at a different width");
        return false;
      }
      continue;
    }
    if (!command("(declare-const " + Sym + " (_ BitVec " +
                 std::to_string(Width) + "))"))
      return false;
    if (Record)
      Declared.emplace(Sym, Width);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// SmtLibSolver: one-shot queries
//===----------------------------------------------------------------------===//

bool SmtLibSolver::readModel(const std::vector<BvFormulaRef> &Originals,
                             const std::string &Prefix, Model *M) {
  std::string Reply;
  if (!exchange("(get-model)", Reply))
    return false;
  std::vector<std::pair<std::string, Bitvector>> Parsed;
  std::string Err;
  if (!parseModelReply(Reply, Parsed, &Err)) {
    ++Ext.ProtocolErrors;
    processFailure("malformed get-model reply");
    return false;
  }
  std::unordered_map<std::string, const Bitvector *> BySym;
  for (const auto &[Sym, Value] : Parsed)
    BySym.emplace(Sym, &Value);
  M->clear();
  std::unordered_set<std::string> SeenVars;
  for (const BvFormulaRef &F : Originals) {
    for (const auto &[Name, Width] : collectVars(F)) {
      if (!SeenVars.insert(Name).second)
        continue;
      std::string Sym = sanitizeSymbol(Prefix + Name);
      auto It = BySym.find(Sym);
      if (It == BySym.end()) {
        // Solvers may omit don't-care variables; any value satisfies.
        M->emplace_back(Name, Bitvector(Width));
        continue;
      }
      if (It->second->size() != Width) {
        ++Ext.ProtocolErrors;
        processFailure("model value width mismatch");
        return false;
      }
      M->emplace_back(Name, *It->second);
    }
  }
  // Sat answers are checkable, so check them: the model (total over the
  // scope's variables by construction above) must satisfy every formula
  // whose conjunction the solver claimed satisfiable. A failing check
  // means the solver lied or we lost protocol sync — either way the
  // query is re-answered in-repo. Unsat answers have no such cheap
  // witness; removing trust in *that* direction is what crosscheck mode
  // is for.
  for (const BvFormulaRef &F : Originals) {
    if (!evalFormula(F, *M)) {
      ++Ext.ProtocolErrors;
      processFailure("external model does not satisfy the query");
      return false;
    }
  }
  return true;
}

bool SmtLibSolver::tryExternalCheckSat(const BvFormulaRef &F, Model *M,
                                       SatResult &R) {
  if (!ensureProcess())
    return false;
  // One-shot queries are fully scoped: a unique variable prefix keeps the
  // namespace disjoint from every session's, and declaring inside the
  // push scope lets the pop collect the declarations again.
  std::string Prefix = "q" + std::to_string(QueryCounter++) + "!";
  VarRenamer Renamer(Prefix);
  BvFormulaRef RF = Renamer.formula(F);
  if (!command("(push 1)"))
    return false;
  if (!declareVars(sanitizedVars(RF), /*Record=*/false))
    return false;
  if (!command("(assert " + toSmtLibFormula(RF) + ")"))
    return false;
  std::string Reply;
  if (!exchange("(check-sat)", Reply))
    return false;
  if (Reply == "sat") {
    if (M || Config.ValidateModels) {
      Model Local;
      if (!readModel({F}, Prefix, M ? M : &Local))
        return false;
    }
    R = SatResult::Sat;
  } else if (Reply == "unsat") {
    R = SatResult::Unsat;
  } else {
    // "unknown", "(error …)", solver chatter: all unusable. Timeouts at
    // the solver's own discretion land here too.
    ++Ext.ProtocolErrors;
    processFailure("unusable check-sat reply");
    return false;
  }
  // The answer is already in hand; a failing pop only costs the process,
  // not the query.
  command("(pop 1)");
  return true;
}

SatResult SmtLibSolver::checkSat(const BvFormulaRef &F, Model *M) {
  obs::ScopedSpan Span("ext.query", "ext");
  obs::StopWatch Watch;
  SatResult R = SatResult::Unsat;
  if (tryExternalCheckSat(F, M, R)) {
    ++Ext.ExternalQueries;
  } else {
    ++Ext.FallbackQueries;
    extFallbackMetric().add();
    warnFallback("see counters");
    R = Fallback.checkSat(F, M);
  }
  uint64_t Micros = Watch.elapsedMicros();
  extRoundTripMetric().observe(Micros);
  ++Stats.Queries;
  Stats.TotalMicros += Micros;
  Stats.MaxMicros = std::max(Stats.MaxMicros, Micros);
  Stats.QueryMicros.push_back(Micros);
  if (R == SatResult::Sat)
    ++Stats.SatAnswers;
  else
    ++Stats.UnsatAnswers;
  return R;
}

//===----------------------------------------------------------------------===//
// SmtLibSolver: incremental sessions
//===----------------------------------------------------------------------===//

/// One incremental session multiplexed onto the owner's process. The
/// premise set lives three times: as formulas here (the source of truth,
/// and what replays after a process respawn), as guarded assertions
/// `(assert (=> act-sN P))` in the external solver, and mirrored into an
/// in-repo fallback session so fallback queries keep incremental cost.
class SmtLibSolver::ExtSession : public SmtSolver::IncrementalSession {
public:
  ExtSession(SmtLibSolver &Owner, const SessionLimits &Limits)
      : Owner(Owner), Id(Owner.SessionCounter++),
        Prefix("s" + std::to_string(Id) + "!"),
        ActSym("act-s" + std::to_string(Id)),
        FbSession(Owner.Fallback.openSession(Limits)) {}

  void assertPremise(const BvFormulaRef &F) override {
    if (F->kind() == BvFormula::Kind::True)
      return;
    if (!Keys.insert(F->str()).second) {
      ++Owner.Stats.PremiseCacheHits;
      return;
    }
    ++Owner.Stats.SessionPremises;
    Premises.push_back(F);
    // Sent lazily at the next query; the fallback mirror gets it now (it
    // double-counts no stats — the fallback solver has its own record).
    FbSession->assertPremise(F);
  }

  SatResult checkSatUnderPremises(const BvFormulaRef &Goal,
                                  Model *M) override {
    obs::ScopedSpan Span("ext.query", "ext");
    obs::StopWatch Watch;
    ++Owner.Stats.SessionQueries;
    SatResult R = SatResult::Unsat;
    if (tryExternal(Goal, M, R)) {
      ++Owner.Ext.ExternalQueries;
    } else {
      ++Owner.Ext.FallbackQueries;
      extFallbackMetric().add();
      Owner.warnFallback("see counters");
      R = FbSession->checkSatUnderPremises(Goal, M);
    }
    uint64_t Micros = Watch.elapsedMicros();
    extRoundTripMetric().observe(Micros);
    SolverStats &St = Owner.Stats;
    ++St.Queries;
    St.TotalMicros += Micros;
    St.MaxMicros = std::max(St.MaxMicros, Micros);
    St.QueryMicros.push_back(Micros);
    if (R == SatResult::Sat)
      ++St.SatAnswers;
    else
      ++St.UnsatAnswers;
    return R;
  }

private:
  /// Brings the external process's view of this session up to date:
  /// after a (re)spawn, re-declare the activation constant and replay
  /// every premise; otherwise send only the premises asserted since the
  /// last query.
  bool sync() {
    if (!Owner.ensureProcess())
      return false;
    if (SyncedEpoch != Owner.Epoch) {
      SyncedEpoch = Owner.Epoch;
      Synced = 0;
      if (!Owner.command("(declare-const " + ActSym + " Bool)"))
        return false;
    }
    for (; Synced < Premises.size(); ++Synced) {
      VarRenamer Renamer(Prefix);
      BvFormulaRef RP = Renamer.formula(Premises[Synced]);
      if (!Owner.declareVars(sanitizedVars(RP), /*Record=*/true))
        return false;
      if (!Owner.command("(assert (=> " + ActSym + " " +
                         toSmtLibFormula(RP) + "))"))
        return false;
    }
    return true;
  }

  bool tryExternal(const BvFormulaRef &Goal, Model *M, SatResult &R) {
    if (!sync())
      return false;
    VarRenamer Renamer(Prefix);
    BvFormulaRef RG = Renamer.formula(Goal);
    // Goal variables are declared at the base level (before the push) so
    // they survive for later premises/goals of this session; widths are
    // consistent within a session by the lowering chain's naming rules.
    if (!Owner.declareVars(sanitizedVars(RG), /*Record=*/true))
      return false;
    if (!Owner.command("(push 1)"))
      return false;
    if (!Owner.command("(assert " + toSmtLibFormula(RG) + ")"))
      return false;
    std::string Reply;
    if (!Owner.exchange("(check-sat-assuming (" + ActSym + "))", Reply))
      return false;
    if (Reply == "sat") {
      if (M || Owner.Config.ValidateModels) {
        std::vector<BvFormulaRef> Scope;
        Scope.push_back(Goal);
        Scope.insert(Scope.end(), Premises.begin(), Premises.end());
        Model Local;
        if (!Owner.readModel(Scope, Prefix, M ? M : &Local))
          return false;
      }
      R = SatResult::Sat;
    } else if (Reply == "unsat") {
      R = SatResult::Unsat;
    } else {
      ++Owner.Ext.ProtocolErrors;
      Owner.processFailure("unusable check-sat-assuming reply");
      return false;
    }
    Owner.command("(pop 1)"); // Failure costs the process, not the answer.
    return true;
  }

  SmtLibSolver &Owner;
  size_t Id;
  std::string Prefix; ///< Renames this session's variables; namespaces
                      ///< sessions sharing the one process.
  std::string ActSym; ///< This session's Boolean activation constant.
  std::vector<BvFormulaRef> Premises;
  std::unordered_set<std::string> Keys; ///< Structural premise dedup.
  uint64_t SyncedEpoch = 0; ///< Process incarnation last synced to.
  size_t Synced = 0;        ///< Premises already sent to that incarnation.
  std::unique_ptr<SmtSolver::IncrementalSession> FbSession;
};

std::unique_ptr<SmtSolver::IncrementalSession>
SmtLibSolver::openSession(const SessionLimits &Limits) {
  ++Stats.SessionsOpened;
  return std::make_unique<ExtSession>(*this, Limits);
}

std::unique_ptr<SmtSolver> SmtLibSolver::spawnWorker() {
  return std::make_unique<SmtLibSolver>(Config);
}

//===----------------------------------------------------------------------===//
// CrossCheckSolver
//===----------------------------------------------------------------------===//

CrossCheckSolver::CrossCheckSolver(std::unique_ptr<SmtSolver> Reference,
                                   std::unique_ptr<SmtSolver> External)
    : Ref(std::move(Reference)), Extern(std::move(External)) {
  assert(Ref && Extern && "cross-check needs both backends");
}

CrossCheckSolver::~CrossCheckSolver() = default;

void CrossCheckSolver::diverged(const BvFormulaRef &Query, SatResult RefR,
                                SatResult ExtR) {
  ++X.Divergences;
  std::fprintf(stderr,
               "leapfrog: SOLVER DIVERGENCE: reference answered %s, "
               "external answered %s, on the query:\n%s",
               RefR == SatResult::Sat ? "sat" : "unsat",
               ExtR == SatResult::Sat ? "sat" : "unsat",
               toSmtLibScript(Query).c_str());
  if (AbortOnDivergence) {
    // Same policy as a failed DRUP replay (Solver.cpp): a solver
    // disagreement is a soundness bug in one of the two backends, and no
    // verdict derived from either can be trusted.
    std::fprintf(stderr, "leapfrog: aborting on solver divergence\n");
    std::abort();
  }
}

SatResult CrossCheckSolver::checkSat(const BvFormulaRef &F, Model *M) {
  obs::StopWatch Watch;
  SatResult RefR = Ref->checkSat(F, M);
  SatResult ExtR = Extern->checkSat(F, nullptr);
  ++X.Checked;
  if (RefR != ExtR)
    diverged(F, RefR, ExtR);
  uint64_t Micros = Watch.elapsedMicros();
  ++Stats.Queries;
  Stats.TotalMicros += Micros;
  Stats.MaxMicros = std::max(Stats.MaxMicros, Micros);
  Stats.QueryMicros.push_back(Micros);
  if (RefR == SatResult::Sat)
    ++Stats.SatAnswers;
  else
    ++Stats.UnsatAnswers;
  return RefR;
}

/// Mirrors premises and goals into both children's sessions and compares
/// every answer; keeps the premise formulas so a divergence can be dumped
/// as one self-contained script.
class CrossCheckSolver::CrossSession : public SmtSolver::IncrementalSession {
public:
  CrossSession(CrossCheckSolver &Owner, const SessionLimits &Limits)
      : Owner(Owner), RefSess(Owner.Ref->openSession(Limits)),
        ExtSess(Owner.Extern->openSession(Limits)) {}

  void assertPremise(const BvFormulaRef &F) override {
    ++Owner.Stats.SessionPremises;
    Premises.push_back(F);
    RefSess->assertPremise(F);
    ExtSess->assertPremise(F);
  }

  SatResult checkSatUnderPremises(const BvFormulaRef &Goal,
                                  Model *M) override {
    obs::StopWatch Watch;
    ++Owner.Stats.SessionQueries;
    SatResult RefR = RefSess->checkSatUnderPremises(Goal, M);
    SatResult ExtR = ExtSess->checkSatUnderPremises(Goal, nullptr);
    ++Owner.X.Checked;
    if (RefR != ExtR) {
      // Fold the premises into the dumped query so the script reproduces
      // the disagreement standalone.
      BvFormulaRef Conj = Goal;
      for (size_t I = Premises.size(); I > 0; --I)
        Conj = BvFormula::mkAnd(Premises[I - 1], Conj);
      Owner.diverged(Conj, RefR, ExtR);
    }
    uint64_t Micros = Watch.elapsedMicros();
    SolverStats &St = Owner.Stats;
    ++St.Queries;
    St.TotalMicros += Micros;
    St.MaxMicros = std::max(St.MaxMicros, Micros);
    St.QueryMicros.push_back(Micros);
    if (RefR == SatResult::Sat)
      ++St.SatAnswers;
    else
      ++St.UnsatAnswers;
    return RefR;
  }

private:
  CrossCheckSolver &Owner;
  std::vector<BvFormulaRef> Premises;
  std::unique_ptr<SmtSolver::IncrementalSession> RefSess, ExtSess;
};

std::unique_ptr<SmtSolver::IncrementalSession>
CrossCheckSolver::openSession(const SessionLimits &Limits) {
  ++Stats.SessionsOpened;
  return std::make_unique<CrossSession>(*this, Limits);
}

std::unique_ptr<SmtSolver> CrossCheckSolver::spawnWorker() {
  std::unique_ptr<SmtSolver> R = Ref->spawnWorker();
  std::unique_ptr<SmtSolver> E = Extern->spawnWorker();
  if (!R || !E)
    return nullptr;
  auto W = std::make_unique<CrossCheckSolver>(std::move(R), std::move(E));
  W->AbortOnDivergence = AbortOnDivergence;
  return W;
}

//===----------------------------------------------------------------------===//
// Backend factory
//===----------------------------------------------------------------------===//

std::unique_ptr<SmtSolver>
smt::createSolverBackend(const std::string &Spec, std::string *Error) {
  auto Fail = [&](const std::string &Why) -> std::unique_ptr<SmtSolver> {
    if (Error)
      *Error = Why;
    return nullptr;
  };
  auto MakeExternal = [](const std::string &Cmd) {
    SmtLibConfig Config;
    Config.Argv = SmtLibSolver::splitCommand(Cmd);
    return std::make_unique<SmtLibSolver>(std::move(Config));
  };
  if (Spec.empty() || Spec == "bitblast")
    return std::make_unique<BitBlastSolver>();
  if (Spec.rfind("smtlib:", 0) == 0) {
    std::string Cmd = Spec.substr(7);
    if (SmtLibSolver::splitCommand(Cmd).empty())
      return Fail("smtlib: needs a solver command, e.g. smtlib:z3 -in");
    return MakeExternal(Cmd);
  }
  if (Spec == "crosscheck" || Spec.rfind("crosscheck:", 0) == 0) {
    std::string Cmd =
        Spec == "crosscheck" ? std::string("z3 -in") : Spec.substr(11);
    if (SmtLibSolver::splitCommand(Cmd).empty())
      return Fail("crosscheck: needs a solver command, e.g. "
                  "crosscheck:z3 -in");
    return std::make_unique<CrossCheckSolver>(
        std::make_unique<BitBlastSolver>(), MakeExternal(Cmd));
  }
  return Fail("unknown backend '" + Spec +
              "' (expected bitblast, smtlib:<cmd>, or crosscheck[:<cmd>])");
}
