//===- SmtLibSolver.cpp - External SMT-LIB2 backends ----------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "smt/SmtLibSolver.h"

#include "obs/Clock.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "smt/Portfolio.h"
#include "smt/SmtLib.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <unordered_set>

using namespace leapfrog;
using namespace leapfrog::smt;

namespace {

// Per-query round-trip latency through the external pipe (its fallback
// included: the caller sees one number either way), plus the two failure-mode
// counters the SOLVERS.md doc tells operators to watch.
obs::Histogram &extRoundTripMetric() {
  static obs::Histogram &H = obs::metrics().histogram("ext.roundtrip_micros");
  return H;
}

obs::Counter &extFallbackMetric() {
  static obs::Counter &C = obs::metrics().counter("ext.fallback_queries");
  return C;
}

/// Rebuilds \p T with every variable renamed to Prefix+Name. Memoized on
/// node identity: formulas are DAGs and shared subterms must not blow up
/// into trees.
class VarRenamer {
public:
  explicit VarRenamer(const std::string &Prefix) : Prefix(Prefix) {}

  BvTermRef term(const BvTermRef &T) {
    auto It = Terms.find(T.get());
    if (It != Terms.end())
      return It->second;
    BvTermRef Out;
    switch (T->kind()) {
    case BvTerm::Kind::Var:
      Out = BvTerm::mkVar(Prefix + T->varName(), T->width());
      break;
    case BvTerm::Kind::Const:
      Out = T;
      break;
    case BvTerm::Kind::Concat:
      Out = BvTerm::mkConcat(term(T->lhs()), term(T->rhs()));
      break;
    case BvTerm::Kind::Extract:
      Out = BvTerm::mkExtract(term(T->extractOperand()), T->extractLo(),
                              T->extractHi());
      break;
    }
    Terms.emplace(T.get(), Out);
    return Out;
  }

  BvFormulaRef formula(const BvFormulaRef &F) {
    auto It = Formulas.find(F.get());
    if (It != Formulas.end())
      return It->second;
    BvFormulaRef Out;
    switch (F->kind()) {
    case BvFormula::Kind::True:
    case BvFormula::Kind::False:
      Out = F;
      break;
    case BvFormula::Kind::Eq:
      Out = BvFormula::mkEq(term(F->eqLhs()), term(F->eqRhs()));
      break;
    case BvFormula::Kind::Not:
      Out = BvFormula::mkNot(formula(F->sub()));
      break;
    case BvFormula::Kind::And:
      Out = BvFormula::mkAnd(formula(F->lhs()), formula(F->rhs()));
      break;
    case BvFormula::Kind::Or:
      Out = BvFormula::mkOr(formula(F->lhs()), formula(F->rhs()));
      break;
    case BvFormula::Kind::Implies:
      Out = BvFormula::mkImplies(formula(F->lhs()), formula(F->rhs()));
      break;
    }
    Formulas.emplace(F.get(), Out);
    return Out;
  }

private:
  const std::string &Prefix;
  std::unordered_map<const BvTerm *, BvTermRef> Terms;
  std::unordered_map<const BvFormula *, BvFormulaRef> Formulas;
};

/// Sanitized-symbol declarations for the renamed image of \p F.
std::vector<std::pair<std::string, size_t>>
sanitizedVars(const BvFormulaRef &RenamedF) {
  std::vector<std::pair<std::string, size_t>> Out;
  for (const auto &[Name, Width] : collectVars(RenamedF))
    Out.emplace_back(sanitizeSymbol(Name), Width);
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// SmtLibSolver: process management
//===----------------------------------------------------------------------===//

std::vector<std::string> SmtLibSolver::splitCommand(const std::string &Cmd) {
  std::vector<std::string> Argv;
  std::istringstream In(Cmd);
  std::string Tok;
  while (In >> Tok)
    Argv.push_back(Tok);
  return Argv;
}

SmtLibSolver::SmtLibSolver(SmtLibConfig Config) : Config(std::move(Config)) {
  // The smart constructors may fold a renamed formula differently than the
  // original only if renaming changed constants — it cannot — so renaming
  // is semantics- and shape-preserving by construction.
}

SmtLibSolver::~SmtLibSolver() {
  if (Proc.started())
    Proc.writeLine("(exit)", 100); // Politeness; kill() in ~ExtProcess
                                   // is the actual guarantee.
}

void SmtLibSolver::warnFallback(const char *Why) {
  if (Warned || !Config.WarnOnFallback)
    return;
  Warned = true;
  std::fprintf(stderr,
               "leapfrog: external SMT backend '%s' failed (%s); affected "
               "queries are answered by the in-repo bit-blaster (see "
               "docs/SOLVERS.md, Troubleshooting)\n",
               Config.Argv.empty() ? "<empty>" : Config.Argv[0].c_str(),
               Why);
}

void SmtLibSolver::processFailure(const char *What) {
  Proc.kill();
  Declared.clear();
  ++Failures;
  // Warn on the *first* failure with its concrete reason — by the time
  // the failure budget is exhausted the root cause is long gone.
  warnFallback(What);
  if (Failures >= Config.MaxProcessFailures)
    Permanent = true;
}

void SmtLibSolver::interruptedTeardown() {
  // A cancelled exchange leaves the dialogue desynced mid-query, so the
  // process cannot be reused — but unlike processFailure this charges no
  // failure budget and prints no warning: the portfolio cancelling a
  // losing leg is the mechanism working, not the solver misbehaving. The
  // next query respawns (ensureProcess bumps the epoch) and every session
  // replays its premises through the normal resync path.
  Proc.kill();
  Declared.clear();
}

bool SmtLibSolver::exchange(const std::string &Line, std::string &Reply) {
  switch (Proc.writeLine(Line, Config.QueryTimeoutMs)) {
  case ExtProcess::IoResult::Ok:
    break;
  case ExtProcess::IoResult::Interrupted:
    interruptedTeardown();
    return false;
  case ExtProcess::IoResult::Timeout:
    ++Ext.Timeouts;
    processFailure("write timeout (solver stopped reading stdin)");
    return false;
  default:
    ++Ext.Eofs;
    processFailure("write failed");
    return false;
  }
  switch (Proc.readReply(Reply, Config.QueryTimeoutMs)) {
  case ExtProcess::IoResult::Ok:
    return true;
  case ExtProcess::IoResult::Interrupted:
    interruptedTeardown();
    return false;
  case ExtProcess::IoResult::Timeout:
    ++Ext.Timeouts;
    processFailure("reply timeout");
    return false;
  case ExtProcess::IoResult::Eof:
    ++Ext.Eofs;
    processFailure("process exited");
    return false;
  case ExtProcess::IoResult::Error:
    ++Ext.ProtocolErrors;
    processFailure("pipe error");
    return false;
  }
  return false;
}

bool SmtLibSolver::command(const std::string &Line) {
  std::string Reply;
  if (!exchange(Line, Reply))
    return false;
  // "unsupported" is a legal reply to set-option and harmless for the
  // options we set; anything else (errors included) means we lost the
  // plot and cannot trust the dialogue to stay in sync.
  if (Reply == "success" || Reply == "unsupported")
    return true;
  ++Ext.ProtocolErrors;
  processFailure("unexpected command reply");
  return false;
}

bool SmtLibSolver::ensureProcess() {
  if (Permanent)
    return false;
  if (Proc.started())
    return true;
  if (Config.Argv.empty()) {
    Permanent = true;
    warnFallback("empty command");
    return false;
  }
  std::string Err;
  if (!Proc.start(Config.Argv, &Err)) {
    // Warn with the concrete OS-level reason before processFailure's
    // generic one can claim the one-time notice.
    warnFallback(Err.c_str());
    processFailure("spawn failed");
    return false;
  }
  ++Ext.Spawns;
  static obs::Counter &SpawnMetric = obs::metrics().counter("ext.spawns");
  SpawnMetric.add();
  ++Epoch;
  Declared.clear();
  // Handshake. print-success first so every later command is confirmed
  // synchronously; produce-models before set-logic per the SMT-LIB
  // standard's option rules.
  if (!command("(set-option :print-success true)") ||
      !command("(set-option :produce-models true)") ||
      !command("(set-logic QF_BV)"))
    return false;
  return true;
}

bool SmtLibSolver::declareVars(
    const std::vector<std::pair<std::string, size_t>> &Vars, bool Record) {
  for (const auto &[Sym, Width] : Vars) {
    auto It = Declared.find(Sym);
    if (It != Declared.end()) {
      if (It->second != Width) {
        // Per-session prefixes make this unreachable for checker
        // workloads; a custom caller violating the equal-names/equal-
        // widths precondition lands here instead of desyncing the
        // dialogue.
        ++Ext.ProtocolErrors;
        processFailure("variable redeclared at a different width");
        return false;
      }
      continue;
    }
    if (!command("(declare-const " + Sym + " (_ BitVec " +
                 std::to_string(Width) + "))"))
      return false;
    if (Record)
      Declared.emplace(Sym, Width);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// SmtLibSolver: one-shot queries
//===----------------------------------------------------------------------===//

bool SmtLibSolver::readModelRaw(const std::vector<BvFormulaRef> &Scope,
                                const std::string &Prefix, Model *M) {
  const std::vector<BvFormulaRef> &Originals = Scope;
  std::string Reply;
  if (!exchange("(get-model)", Reply))
    return false;
  std::vector<std::pair<std::string, Bitvector>> Parsed;
  std::string Err;
  if (!parseModelReply(Reply, Parsed, &Err)) {
    ++Ext.ProtocolErrors;
    processFailure("malformed get-model reply");
    return false;
  }
  std::unordered_map<std::string, const Bitvector *> BySym;
  for (const auto &[Sym, Value] : Parsed)
    BySym.emplace(Sym, &Value);
  M->clear();
  std::unordered_set<std::string> SeenVars;
  for (const BvFormulaRef &F : Originals) {
    for (const auto &[Name, Width] : collectVars(F)) {
      if (!SeenVars.insert(Name).second)
        continue;
      std::string Sym = sanitizeSymbol(Prefix + Name);
      auto It = BySym.find(Sym);
      if (It == BySym.end()) {
        // Solvers may omit don't-care variables; any value satisfies.
        M->emplace_back(Name, Bitvector(Width));
        continue;
      }
      if (It->second->size() != Width) {
        ++Ext.ProtocolErrors;
        processFailure("model value width mismatch");
        return false;
      }
      M->emplace_back(Name, *It->second);
    }
  }
  return true;
}

bool SmtLibSolver::readModel(const std::vector<BvFormulaRef> &Originals,
                             const std::string &Prefix, Model *M) {
  if (!readModelRaw(Originals, Prefix, M))
    return false;
  // Sat answers are checkable, so check them: the model (total over the
  // scope's variables by construction above) must satisfy every formula
  // whose conjunction the solver claimed satisfiable. A failing check
  // means the solver lied or we lost protocol sync — either way the
  // query is re-answered in-repo. Unsat answers have no such cheap
  // witness; removing trust in *that* direction is what crosscheck mode
  // is for.
  for (const BvFormulaRef &F : Originals) {
    if (!evalFormula(F, *M)) {
      ++Ext.ProtocolErrors;
      processFailure("external model does not satisfy the query");
      return false;
    }
  }
  return true;
}

bool SmtLibSolver::tryExternalCheckSat(const BvFormulaRef &F, Model *M,
                                       SatResult &R) {
  if (!ensureProcess())
    return false;
  // One-shot queries are fully scoped: a unique variable prefix keeps the
  // namespace disjoint from every session's, and declaring inside the
  // push scope lets the pop collect the declarations again.
  std::string Prefix = "q" + std::to_string(QueryCounter++) + "!";
  VarRenamer Renamer(Prefix);
  BvFormulaRef RF = Renamer.formula(F);
  if (!command("(push 1)"))
    return false;
  if (!declareVars(sanitizedVars(RF), /*Record=*/false))
    return false;
  if (!command("(assert " + toSmtLibFormula(RF) + ")"))
    return false;
  std::string Reply;
  if (!exchange("(check-sat)", Reply))
    return false;
  ++Stats.RoundTrips; // One completed check-sat wire exchange.
  if (Reply == "sat") {
    if (M || Config.ValidateModels) {
      Model Local;
      if (!readModel({F}, Prefix, M ? M : &Local))
        return false;
    }
    R = SatResult::Sat;
  } else if (Reply == "unsat") {
    R = SatResult::Unsat;
  } else {
    // "unknown", "(error …)", solver chatter: all unusable. Timeouts at
    // the solver's own discretion land here too.
    ++Ext.ProtocolErrors;
    processFailure("unusable check-sat reply");
    return false;
  }
  // The answer is already in hand; a failing pop only costs the process,
  // not the query.
  command("(pop 1)");
  return true;
}

SatResult SmtLibSolver::checkSat(const BvFormulaRef &F, Model *M) {
  obs::ScopedSpan Span("ext.query", "ext");
  obs::StopWatch Watch;
  SatResult R = SatResult::Unsat;
  if (tryExternalCheckSat(F, M, R)) {
    ++Ext.ExternalQueries;
  } else {
    ++Ext.FallbackQueries;
    extFallbackMetric().add();
    warnFallback("see counters");
    R = Fallback.checkSat(F, M);
    ++Stats.RoundTrips; // The fallback's physical solve.
  }
  uint64_t Micros = Watch.elapsedMicros();
  extRoundTripMetric().observe(Micros);
  ++Stats.Queries;
  Stats.TotalMicros += Micros;
  Stats.MaxMicros = std::max(Stats.MaxMicros, Micros);
  Stats.QueryMicros.push_back(Micros);
  if (R == SatResult::Sat)
    ++Stats.SatAnswers;
  else
    ++Stats.UnsatAnswers;
  return R;
}

//===----------------------------------------------------------------------===//
// SmtLibSolver: incremental sessions
//===----------------------------------------------------------------------===//

/// One incremental session multiplexed onto the owner's process. The
/// premise set lives three times: as formulas here (the source of truth,
/// and what replays after a process respawn), as guarded assertions
/// `(assert (=> act-sN P))` in the external solver, and mirrored into an
/// in-repo fallback session so fallback queries keep incremental cost.
class SmtLibSolver::ExtSession : public SmtSolver::IncrementalSession {
public:
  ExtSession(SmtLibSolver &Owner, const SessionLimits &Limits)
      : Owner(Owner), Id(Owner.SessionCounter++),
        Prefix("s" + std::to_string(Id) + "!"),
        ActSym("act-s" + std::to_string(Id)),
        FbSession(Owner.Fallback.openSession(Limits)) {}

  void assertPremise(const BvFormulaRef &F) override {
    if (F->kind() == BvFormula::Kind::True)
      return;
    if (!Keys.insert(F->str()).second) {
      ++Owner.Stats.PremiseCacheHits;
      return;
    }
    ++Owner.Stats.SessionPremises;
    Premises.push_back(F);
    // Sent lazily at the next query; the fallback mirror gets it now (it
    // double-counts no stats — the fallback solver has its own record).
    FbSession->assertPremise(F);
  }

  SatResult checkSatUnderPremises(const BvFormulaRef &Goal,
                                  Model *M) override {
    obs::ScopedSpan Span("ext.query", "ext");
    obs::StopWatch Watch;
    ++Owner.Stats.SessionQueries;
    SatResult R = SatResult::Unsat;
    if (tryExternal(Goal, M, R)) {
      ++Owner.Ext.ExternalQueries;
    } else {
      ++Owner.Ext.FallbackQueries;
      extFallbackMetric().add();
      Owner.warnFallback("see counters");
      R = FbSession->checkSatUnderPremises(Goal, M);
      ++Owner.Stats.RoundTrips; // The fallback's physical solve.
    }
    uint64_t Micros = Watch.elapsedMicros();
    extRoundTripMetric().observe(Micros);
    SolverStats &St = Owner.Stats;
    ++St.Queries;
    St.TotalMicros += Micros;
    St.MaxMicros = std::max(St.MaxMicros, Micros);
    St.QueryMicros.push_back(Micros);
    if (R == SatResult::Sat)
      ++St.SatAnswers;
    else
      ++St.UnsatAnswers;
    return R;
  }

  /// Batched goals share one premise resync and are resolved by the same
  /// disjunctive refinement loop as the bit-blast session (Solver.cpp):
  /// each goal gets a selector Boolean d_i with (=> d_i G_i) asserted in
  /// an outer push scope, and each physical round asserts (or d_pending…)
  /// in an inner scope and poses ONE (check-sat-assuming (act)). An unsat
  /// round — the failed assumption being the session activation itself,
  /// i.e. premises ∧ ⋁d_i has no model — attributes Unsat to every
  /// pending goal in a single wire round-trip; a sat round's model is
  /// fetched once and evaluated against each pending goal (evalFormula,
  /// no Boolean model parsing needed), resolving every goal it satisfies
  /// as Sat. Externally unresolved goals (process death, cancellation,
  /// protocol error) fall back to the mirrored in-repo session — batched
  /// there too.
  void checkSatBatch(const std::vector<BvFormulaRef> &Goals,
                     std::vector<SatResult> &Out) override {
    if (Goals.size() < 2) {
      Out.assign(Goals.size(), SatResult::Sat);
      for (size_t I = 0; I < Goals.size(); ++I)
        Out[I] = checkSatUnderPremises(Goals[I], nullptr);
      return;
    }
    obs::ScopedSpan Span("ext.batch", "ext");
    obs::StopWatch Watch;
    SolverStats &St = Owner.Stats;
    St.SessionQueries += Goals.size();
    Out.assign(Goals.size(), SatResult::Sat);
    std::vector<char> Resolved(Goals.size(), 0);
    tryExternalBatch(Goals, Out, Resolved);
    size_t External = 0;
    std::vector<size_t> Unresolved;
    for (size_t I = 0; I < Goals.size(); ++I) {
      if (Resolved[I])
        ++External;
      else
        Unresolved.push_back(I);
    }
    Owner.Ext.ExternalQueries += External;
    if (!Unresolved.empty()) {
      Owner.Ext.FallbackQueries += Unresolved.size();
      extFallbackMetric().add(Unresolved.size());
      Owner.warnFallback("see counters");
      std::vector<BvFormulaRef> FbGoals;
      for (size_t I : Unresolved)
        FbGoals.push_back(Goals[I]);
      // The mirror session batches natively; fold its physical solves
      // into this backend's round-trip count (its own stats record is
      // internal and never reported).
      uint64_t FbBefore = Owner.Fallback.stats().RoundTrips;
      std::vector<SatResult> FbOut;
      FbSession->checkSatBatch(FbGoals, FbOut);
      St.RoundTrips += Owner.Fallback.stats().RoundTrips - FbBefore;
      for (size_t K = 0; K < Unresolved.size(); ++K)
        Out[Unresolved[K]] = FbOut[K];
    }
    uint64_t Micros = Watch.elapsedMicros();
    extRoundTripMetric().observe(Micros);
    St.Queries += Goals.size();
    St.TotalMicros += Micros;
    St.MaxMicros = std::max(St.MaxMicros, Micros);
    uint64_t Share = Micros / Goals.size();
    for (size_t I = 0; I < Goals.size(); ++I) {
      St.QueryMicros.push_back(Share);
      if (Out[I] == SatResult::Sat)
        ++St.SatAnswers;
      else
        ++St.UnsatAnswers;
    }
  }

private:
  /// Brings the external process's view of this session up to date:
  /// after a (re)spawn, re-declare the activation constant and replay
  /// every premise; otherwise send only the premises asserted since the
  /// last query.
  bool sync() {
    if (!Owner.ensureProcess())
      return false;
    if (SyncedEpoch != Owner.Epoch) {
      SyncedEpoch = Owner.Epoch;
      Synced = 0;
      if (!Owner.command("(declare-const " + ActSym + " Bool)"))
        return false;
    }
    for (; Synced < Premises.size(); ++Synced) {
      VarRenamer Renamer(Prefix);
      BvFormulaRef RP = Renamer.formula(Premises[Synced]);
      if (!Owner.declareVars(sanitizedVars(RP), /*Record=*/true))
        return false;
      if (!Owner.command("(assert (=> " + ActSym + " " +
                         toSmtLibFormula(RP) + "))"))
        return false;
    }
    return true;
  }

  bool tryExternal(const BvFormulaRef &Goal, Model *M, SatResult &R) {
    if (!sync())
      return false;
    VarRenamer Renamer(Prefix);
    BvFormulaRef RG = Renamer.formula(Goal);
    // Goal variables are declared at the base level (before the push) so
    // they survive for later premises/goals of this session; widths are
    // consistent within a session by the lowering chain's naming rules.
    if (!Owner.declareVars(sanitizedVars(RG), /*Record=*/true))
      return false;
    if (!Owner.command("(push 1)"))
      return false;
    if (!Owner.command("(assert " + toSmtLibFormula(RG) + ")"))
      return false;
    std::string Reply;
    if (!Owner.exchange("(check-sat-assuming (" + ActSym + "))", Reply))
      return false;
    ++Owner.Stats.RoundTrips; // One completed check-sat wire exchange.
    if (Reply == "sat") {
      if (M || Owner.Config.ValidateModels) {
        std::vector<BvFormulaRef> Scope;
        Scope.push_back(Goal);
        Scope.insert(Scope.end(), Premises.begin(), Premises.end());
        Model Local;
        if (!Owner.readModel(Scope, Prefix, M ? M : &Local))
          return false;
      }
      R = SatResult::Sat;
    } else if (Reply == "unsat") {
      R = SatResult::Unsat;
    } else {
      ++Owner.Ext.ProtocolErrors;
      Owner.processFailure("unusable check-sat-assuming reply");
      return false;
    }
    Owner.command("(pop 1)"); // Failure costs the process, not the answer.
    return true;
  }

  /// The external half of checkSatBatch: marks every goal it managed to
  /// resolve in \p Resolved and writes its answer into \p Out. Returns
  /// with some goals unresolved on any transport/protocol failure; the
  /// caller falls back for exactly those.
  void tryExternalBatch(const std::vector<BvFormulaRef> &Goals,
                        std::vector<SatResult> &Out,
                        std::vector<char> &Resolved) {
    if (!sync())
      return;
    // Goal variables live at the base level (as in tryExternal) so later
    // premises/goals of the session can reuse them; renamed images are
    // rebuilt per goal for the selector assertions below.
    std::vector<BvFormulaRef> RGs(Goals.size());
    for (size_t I = 0; I < Goals.size(); ++I) {
      VarRenamer Renamer(Prefix);
      RGs[I] = Renamer.formula(Goals[I]);
      if (!Owner.declareVars(sanitizedVars(RGs[I]), /*Record=*/true))
        return;
    }
    // Outer scope: one selector Boolean per goal, popped with the scope
    // when the batch ends (so selector names can be reused next batch).
    if (!Owner.command("(push 1)"))
      return;
    std::vector<std::string> Sels(Goals.size());
    for (size_t I = 0; I < Goals.size(); ++I) {
      Sels[I] = ActSym + "-d" + std::to_string(I);
      if (!Owner.command("(declare-const " + Sels[I] + " Bool)") ||
          !Owner.command("(assert (=> " + Sels[I] + " " +
                         toSmtLibFormula(RGs[I]) + "))"))
        return;
    }
    size_t Pending = Goals.size();
    while (Pending > 0) {
      // Inner scope: this round's pending disjunction only.
      if (!Owner.command("(push 1)"))
        return;
      std::string Disj = "(assert (or";
      for (size_t I = 0; I < Goals.size(); ++I)
        if (!Resolved[I])
          Disj += " " + Sels[I];
      Disj += "))";
      if (!Owner.command(Disj))
        return;
      std::string Reply;
      if (!Owner.exchange("(check-sat-assuming (" + ActSym + "))", Reply))
        return;
      ++Owner.Stats.RoundTrips; // One wire exchange for all pending goals.
      if (Reply == "unsat") {
        // premises ∧ ⋁(pending goals) is unsatisfiable — the shared
        // failed assumption is the session activation itself — so every
        // pending goal is individually unsat with the premises.
        for (size_t I = 0; I < Goals.size(); ++I)
          if (!Resolved[I]) {
            Resolved[I] = 1;
            Out[I] = SatResult::Unsat;
          }
        Pending = 0;
        Owner.command("(pop 1)");
        break;
      }
      if (Reply != "sat") {
        ++Owner.Ext.ProtocolErrors;
        Owner.processFailure("unusable check-sat-assuming reply");
        return;
      }
      // One get-model resolves every pending goal the model satisfies.
      // The scope is disjunctive, so only the premises are *required* to
      // hold; each pending goal is evaluated individually and at least
      // one must come out true, or the solver's sat was a lie.
      std::vector<BvFormulaRef> Scope;
      for (size_t I = 0; I < Goals.size(); ++I)
        if (!Resolved[I])
          Scope.push_back(Goals[I]);
      Scope.insert(Scope.end(), Premises.begin(), Premises.end());
      Model M;
      if (!Owner.readModelRaw(Scope, Prefix, &M))
        return;
      if (Owner.Config.ValidateModels) {
        for (const BvFormulaRef &P : Premises)
          if (!evalFormula(P, M)) {
            ++Owner.Ext.ProtocolErrors;
            Owner.processFailure("external model violates a premise");
            return;
          }
      }
      size_t Newly = 0;
      for (size_t I = 0; I < Goals.size(); ++I)
        if (!Resolved[I] && evalFormula(Goals[I], M)) {
          Resolved[I] = 1;
          Out[I] = SatResult::Sat;
          ++Newly;
          --Pending;
        }
      if (Newly == 0) {
        ++Owner.Ext.ProtocolErrors;
        Owner.processFailure("external model satisfies no pending goal");
        return;
      }
      if (!Owner.command("(pop 1)"))
        return;
    }
    Owner.command("(pop 1)"); // Outer scope; failure costs the process
                              // only — every answer is already in hand.
  }

  SmtLibSolver &Owner;
  size_t Id;
  std::string Prefix; ///< Renames this session's variables; namespaces
                      ///< sessions sharing the one process.
  std::string ActSym; ///< This session's Boolean activation constant.
  std::vector<BvFormulaRef> Premises;
  std::unordered_set<std::string> Keys; ///< Structural premise dedup.
  uint64_t SyncedEpoch = 0; ///< Process incarnation last synced to.
  size_t Synced = 0;        ///< Premises already sent to that incarnation.
  std::unique_ptr<SmtSolver::IncrementalSession> FbSession;
};

std::unique_ptr<SmtSolver::IncrementalSession>
SmtLibSolver::openSession(const SessionLimits &Limits) {
  ++Stats.SessionsOpened;
  return std::make_unique<ExtSession>(*this, Limits);
}

std::unique_ptr<SmtSolver> SmtLibSolver::spawnWorker() {
  return std::make_unique<SmtLibSolver>(Config);
}

//===----------------------------------------------------------------------===//
// CrossCheckSolver
//===----------------------------------------------------------------------===//

CrossCheckSolver::CrossCheckSolver(std::unique_ptr<SmtSolver> Reference,
                                   std::unique_ptr<SmtSolver> External)
    : Ref(std::move(Reference)), Extern(std::move(External)) {
  assert(Ref && Extern && "cross-check needs both backends");
}

CrossCheckSolver::~CrossCheckSolver() = default;

void CrossCheckSolver::diverged(const BvFormulaRef &Query, SatResult RefR,
                                SatResult ExtR) {
  ++X.Divergences;
  std::fprintf(stderr,
               "leapfrog: SOLVER DIVERGENCE: reference answered %s, "
               "external answered %s, on the query:\n%s",
               RefR == SatResult::Sat ? "sat" : "unsat",
               ExtR == SatResult::Sat ? "sat" : "unsat",
               toSmtLibScript(Query).c_str());
  if (AbortOnDivergence) {
    // Same policy as a failed DRUP replay (Solver.cpp): a solver
    // disagreement is a soundness bug in one of the two backends, and no
    // verdict derived from either can be trusted.
    std::fprintf(stderr, "leapfrog: aborting on solver divergence\n");
    std::abort();
  }
}

SatResult CrossCheckSolver::checkSat(const BvFormulaRef &F, Model *M) {
  obs::StopWatch Watch;
  SatResult RefR = Ref->checkSat(F, M);
  SatResult ExtR = Extern->checkSat(F, nullptr);
  ++X.Checked;
  // A cancelled leg answers garbage by contract; comparing it would turn
  // every lost portfolio race into a spurious divergence abort.
  if (RefR != ExtR && !interrupted())
    diverged(F, RefR, ExtR);
  uint64_t Micros = Watch.elapsedMicros();
  ++Stats.Queries;
  Stats.TotalMicros += Micros;
  Stats.MaxMicros = std::max(Stats.MaxMicros, Micros);
  Stats.QueryMicros.push_back(Micros);
  if (RefR == SatResult::Sat)
    ++Stats.SatAnswers;
  else
    ++Stats.UnsatAnswers;
  return RefR;
}

/// Mirrors premises and goals into both children's sessions and compares
/// every answer; keeps the premise formulas so a divergence can be dumped
/// as one self-contained script.
class CrossCheckSolver::CrossSession : public SmtSolver::IncrementalSession {
public:
  CrossSession(CrossCheckSolver &Owner, const SessionLimits &Limits)
      : Owner(Owner), RefSess(Owner.Ref->openSession(Limits)),
        ExtSess(Owner.Extern->openSession(Limits)) {}

  void assertPremise(const BvFormulaRef &F) override {
    ++Owner.Stats.SessionPremises;
    Premises.push_back(F);
    RefSess->assertPremise(F);
    ExtSess->assertPremise(F);
  }

  SatResult checkSatUnderPremises(const BvFormulaRef &Goal,
                                  Model *M) override {
    obs::StopWatch Watch;
    ++Owner.Stats.SessionQueries;
    SatResult RefR = RefSess->checkSatUnderPremises(Goal, M);
    SatResult ExtR = ExtSess->checkSatUnderPremises(Goal, nullptr);
    ++Owner.X.Checked;
    // Cancelled legs answer garbage (see CrossCheckSolver::checkSat).
    if (RefR != ExtR && !Owner.interrupted()) {
      // Fold the premises into the dumped query so the script reproduces
      // the disagreement standalone.
      BvFormulaRef Conj = Goal;
      for (size_t I = Premises.size(); I > 0; --I)
        Conj = BvFormula::mkAnd(Premises[I - 1], Conj);
      Owner.diverged(Conj, RefR, ExtR);
    }
    uint64_t Micros = Watch.elapsedMicros();
    SolverStats &St = Owner.Stats;
    ++St.Queries;
    St.TotalMicros += Micros;
    St.MaxMicros = std::max(St.MaxMicros, Micros);
    St.QueryMicros.push_back(Micros);
    if (RefR == SatResult::Sat)
      ++St.SatAnswers;
    else
      ++St.UnsatAnswers;
    return RefR;
  }

private:
  CrossCheckSolver &Owner;
  std::vector<BvFormulaRef> Premises;
  std::unique_ptr<SmtSolver::IncrementalSession> RefSess, ExtSess;
};

std::unique_ptr<SmtSolver::IncrementalSession>
CrossCheckSolver::openSession(const SessionLimits &Limits) {
  ++Stats.SessionsOpened;
  return std::make_unique<CrossSession>(*this, Limits);
}

std::unique_ptr<SmtSolver> CrossCheckSolver::spawnWorker() {
  std::unique_ptr<SmtSolver> R = Ref->spawnWorker();
  std::unique_ptr<SmtSolver> E = Extern->spawnWorker();
  if (!R || !E)
    return nullptr;
  auto W = std::make_unique<CrossCheckSolver>(std::move(R), std::move(E));
  W->AbortOnDivergence = AbortOnDivergence;
  return W;
}

//===----------------------------------------------------------------------===//
// Backend factory
//===----------------------------------------------------------------------===//

std::unique_ptr<SmtSolver>
smt::createSolverBackend(const std::string &Spec, std::string *Error) {
  auto Fail = [&](const std::string &Why) -> std::unique_ptr<SmtSolver> {
    if (Error)
      *Error = Why;
    return nullptr;
  };
  auto MakeExternal = [](const std::string &Cmd) {
    SmtLibConfig Config;
    Config.Argv = SmtLibSolver::splitCommand(Cmd);
    return std::make_unique<SmtLibSolver>(std::move(Config));
  };
  if (Spec.empty() || Spec == "bitblast")
    return std::make_unique<BitBlastSolver>();
  if (Spec.rfind("smtlib:", 0) == 0) {
    std::string Cmd = Spec.substr(7);
    if (SmtLibSolver::splitCommand(Cmd).empty())
      return Fail("smtlib: needs a solver command, e.g. smtlib:z3 -in");
    return MakeExternal(Cmd);
  }
  if (Spec == "crosscheck" || Spec.rfind("crosscheck:", 0) == 0) {
    std::string Cmd =
        Spec == "crosscheck" ? std::string("z3 -in") : Spec.substr(11);
    if (SmtLibSolver::splitCommand(Cmd).empty())
      return Fail("crosscheck: needs a solver command, e.g. "
                  "crosscheck:z3 -in");
    return std::make_unique<CrossCheckSolver>(
        std::make_unique<BitBlastSolver>(), MakeExternal(Cmd));
  }
  if (Spec.rfind("portfolio:", 0) == 0) {
    // Legs are comma-separated backend specs, resolved recursively. The
    // split is a naive top-level comma scan — none of the accepted leg
    // specs (bitblast, smtlib:<cmd>, crosscheck[:<cmd>]) can legally
    // contain a comma, and nesting a portfolio inside a portfolio is
    // rejected outright (racing races buys nothing but thread soup).
    std::string Body = Spec.substr(10);
    std::vector<std::string> LegSpecs;
    size_t Pos = 0;
    while (Pos <= Body.size()) {
      size_t Comma = Body.find(',', Pos);
      if (Comma == std::string::npos)
        Comma = Body.size();
      LegSpecs.push_back(Body.substr(Pos, Comma - Pos));
      Pos = Comma + 1;
    }
    std::vector<std::unique_ptr<SmtSolver>> LegSolvers;
    for (const std::string &LegSpec : LegSpecs) {
      if (LegSpec.empty())
        return Fail("portfolio: empty leg spec in '" + Spec + "'");
      if (LegSpec.rfind("portfolio", 0) == 0)
        return Fail("portfolio: legs cannot be portfolios themselves");
      std::string LegErr;
      std::unique_ptr<SmtSolver> LegSolver =
          createSolverBackend(LegSpec, &LegErr);
      if (!LegSolver)
        return Fail("portfolio: bad leg '" + LegSpec + "': " + LegErr);
      LegSolvers.push_back(std::move(LegSolver));
    }
    if (LegSolvers.empty())
      return Fail("portfolio: needs at least one leg, e.g. "
                  "portfolio:bitblast,smtlib:z3 -in");
    return std::make_unique<PortfolioSolver>(std::move(LegSolvers));
  }
  return Fail("unknown backend '" + Spec +
              "' (expected bitblast, smtlib:<cmd>, crosscheck[:<cmd>], or "
              "portfolio:<leg>,<leg>,…)");
}
