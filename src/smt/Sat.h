//===- Sat.h - CDCL SAT solver ----------------------------------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch CDCL SAT solver in the MiniSat lineage: two-watched-
/// literal propagation, first-UIP clause learning, VSIDS branching with
/// phase saving, and Luby restarts.
///
/// The paper discharges its verification conditions with off-the-shelf SMT
/// solvers (Z3, CVC4, Boolector; §6.3). None is available in this
/// environment, so this solver — together with the bit-blaster in
/// BitBlast.h — plays their role: the Leapfrog entailments are universally
/// quantified over finite bitvector valuations, hence their validity
/// reduces to (un)satisfiability of a propositional formula.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_SMT_SAT_H
#define LEAPFROG_SMT_SAT_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace leapfrog {
namespace smt {

struct DratProof;

/// A propositional variable (0-based).
using Var = int;

/// A literal: variable times two, plus one if negated.
struct Lit {
  int X = -2;

  static Lit mk(Var V, bool Negated) { return Lit{V * 2 + int(Negated)}; }

  Var var() const { return X >> 1; }
  bool negated() const { return X & 1; }
  Lit operator~() const { return Lit{X ^ 1}; }
  bool operator==(const Lit &O) const { return X == O.X; }
  bool operator!=(const Lit &O) const { return X != O.X; }

  /// Dense index for watch lists.
  int index() const { return X; }

  static Lit undef() { return Lit{-2}; }
};

/// Three-valued assignment.
enum class LBool : int8_t { False = 0, True = 1, Undef = 2 };

inline LBool fromBool(bool B) { return B ? LBool::True : LBool::False; }
inline LBool negate(LBool B) {
  if (B == LBool::Undef)
    return B;
  return B == LBool::True ? LBool::False : LBool::True;
}

/// CDCL solver. Usage: newVar() to allocate variables, addClause() to add
/// clauses, then solve(); on SAT, modelValue() reads the model. A solver
/// instance is single-shot: all clauses must be added before solve().
class SatSolver {
public:
  /// Allocates a fresh variable.
  Var newVar();

  /// Adds a clause (disjunction of literals). Returns false if the clause
  /// set is already unsatisfiable at level 0.
  bool addClause(std::vector<Lit> Lits);

  /// Convenience overloads for short clauses.
  bool addClause(Lit A) { return addClause(std::vector<Lit>{A}); }
  bool addClause(Lit A, Lit B) { return addClause(std::vector<Lit>{A, B}); }
  bool addClause(Lit A, Lit B, Lit C) {
    return addClause(std::vector<Lit>{A, B, C});
  }

  /// Decides satisfiability. May be called once per solver instance.
  bool solve();

  /// Value of \p V in the model; valid only after solve() returned true.
  bool modelValue(Var V) const {
    assert(Assigns[V] != LBool::Undef && "model incomplete");
    return Assigns[V] == LBool::True;
  }

  size_t numVars() const { return Assigns.size(); }
  size_t numClauses() const { return Clauses.size(); }

  /// Enables DRUP proof logging into \p P (see Drat.h). Must be called
  /// before the first addClause(). The proof records every input clause
  /// and every derived clause; on UNSAT it ends with the empty clause, and
  /// DratChecker can then validate the unsatisfiability claim without
  /// trusting this solver.
  void setProofLog(DratProof *P) {
    assert(Clauses.empty() && Trail.empty() &&
           "proof logging must start before the first clause");
    Proof = P;
  }

  /// Statistics, reported by the benchmark harness.
  struct Stats {
    uint64_t Conflicts = 0;
    uint64_t Decisions = 0;
    uint64_t Propagations = 0;
    uint64_t Restarts = 0;
  };
  const Stats &stats() const { return S; }

private:
  struct Clause {
    std::vector<Lit> Lits;
    bool Learnt = false;
  };
  using ClauseRef = int;
  static constexpr ClauseRef NoReason = -1;

  LBool value(Lit L) const {
    LBool V = Assigns[L.var()];
    return L.negated() ? negate(V) : V;
  }

  void enqueue(Lit L, ClauseRef Reason);
  void heapInsert(Var V);
  Var heapPop();
  void percolateUp(int I);
  void percolateDown(int I);
  bool heapLess(Var A, Var B) const { return Activity[A] > Activity[B]; }
  ClauseRef propagate();
  void analyze(ClauseRef Conflict, std::vector<Lit> &Learnt,
               int &BacktrackLevel);
  void backtrack(int Level);
  Lit pickBranchLit();
  void bumpVar(Var V);
  void decayVarActivity() { VarInc /= ActivityDecay; }
  void attachClause(ClauseRef CR);
  int decisionLevel() const { return int(TrailLim.size()); }
  static uint64_t luby(uint64_t I);

  std::vector<Clause> Clauses;
  std::vector<std::vector<ClauseRef>> Watches; ///< Indexed by Lit::index().
  std::vector<LBool> Assigns;
  std::vector<bool> SavedPhase;
  std::vector<int> Levels;
  std::vector<ClauseRef> Reasons;
  std::vector<Lit> Trail;
  std::vector<int> TrailLim;
  size_t QueueHead = 0;

  std::vector<double> Activity;
  double VarInc = 1.0;
  static constexpr double ActivityDecay = 0.95;
  static constexpr double RescaleThreshold = 1e100;

  /// Proof-log helpers; no-ops when logging is disabled. Defined out of
  /// line because DratProof is incomplete here.
  void logInput(const std::vector<Lit> &C);
  void logLemma(std::vector<Lit> C);

  std::vector<char> Seen; ///< Scratch for analyze().
  /// Max-heap over variable activity for branching (MiniSat order heap).
  std::vector<Var> Heap;
  std::vector<int> HeapPos; ///< Position in Heap, or -1 when absent.
  bool Unsat = false;
  DratProof *Proof = nullptr;
  Stats S;
};

} // namespace smt
} // namespace leapfrog

#endif // LEAPFROG_SMT_SAT_H
