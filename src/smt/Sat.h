//===- Sat.h - CDCL SAT solver ----------------------------------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch CDCL SAT solver in the MiniSat lineage: two-watched-
/// literal propagation, first-UIP clause learning, VSIDS branching with
/// phase saving, and Luby restarts.
///
/// The paper discharges its verification conditions with off-the-shelf SMT
/// solvers (Z3, CVC4, Boolector; §6.3). None is available in this
/// environment, so this solver — together with the bit-blaster in
/// BitBlast.h — plays their role: the Leapfrog entailments are universally
/// quantified over finite bitvector valuations, hence their validity
/// reduces to (un)satisfiability of a propositional formula.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_SMT_SAT_H
#define LEAPFROG_SMT_SAT_H

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace leapfrog {
namespace smt {

struct DratProof;
class ProofSink;

/// A propositional variable (0-based).
using Var = int;

/// A literal: variable times two, plus one if negated.
struct Lit {
  int X = -2;

  static Lit mk(Var V, bool Negated) { return Lit{V * 2 + int(Negated)}; }

  Var var() const { return X >> 1; }
  bool negated() const { return X & 1; }
  Lit operator~() const { return Lit{X ^ 1}; }
  bool operator==(const Lit &O) const { return X == O.X; }
  bool operator!=(const Lit &O) const { return X != O.X; }

  /// Dense index for watch lists.
  int index() const { return X; }

  static Lit undef() { return Lit{-2}; }
};

/// Three-valued assignment.
enum class LBool : int8_t { False = 0, True = 1, Undef = 2 };

inline LBool fromBool(bool B) { return B ? LBool::True : LBool::False; }
inline LBool negate(LBool B) {
  if (B == LBool::Undef)
    return B;
  return B == LBool::True ? LBool::False : LBool::True;
}

/// CDCL solver. Usage: newVar() to allocate variables, addClause() to add
/// clauses, then solve(); on SAT, modelValue() reads the model.
///
/// The solver is *incremental* in the MiniSat sense: variables and clauses
/// may keep being added after a solve() call, and solveUnderAssumptions()
/// decides satisfiability under a temporary set of assumption literals
/// while learned clauses, watch lists, variable activities and saved
/// phases all survive across calls. Clients combine the two to pose many
/// related queries cheaply: persistent facts go in as clauses, per-query
/// facts as assumptions (typically one fresh activation literal guarding
/// the query's clauses, retired afterwards with a unit clause).
///
/// Long-lived instances do not grow without bound: the learned-clause
/// database is reduced on a geometric schedule (reduceDB, Glucose-style
/// LBD + clause activity; see ReducePolicy), and simplify() hard-deletes
/// clauses that level-0 facts have permanently satisfied — the mechanism
/// by which a retired activation literal's guarded clauses (and every
/// lemma derived from them, which necessarily carries the retirement
/// literal) are physically removed rather than left as dead weight.
class SatSolver {
public:
  /// Allocates a fresh variable. May be called between solves.
  Var newVar();

  /// Adds a clause (disjunction of literals). Returns false if the clause
  /// set is already unsatisfiable at level 0. May be called between
  /// solves; any decisions from a previous call are first undone (which
  /// invalidates the previous model — read it before adding clauses).
  bool addClause(std::vector<Lit> Lits);

  /// Convenience overloads for short clauses.
  bool addClause(Lit A) { return addClause(std::vector<Lit>{A}); }
  bool addClause(Lit A, Lit B) { return addClause(std::vector<Lit>{A, B}); }
  bool addClause(Lit A, Lit B, Lit C) {
    return addClause(std::vector<Lit>{A, B, C});
  }

  /// Decides satisfiability of the clause set alone. Equivalent to
  /// solveUnderAssumptions({}).
  bool solve();

  /// Decides satisfiability of the clause set conjoined with the given
  /// assumption literals. Assumptions are planted as pseudo-decisions on
  /// the first decision levels (MiniSat-style), so everything the solver
  /// learns is implied by the clause set alone and remains valid for
  /// later calls with different assumptions.
  ///
  /// On a false return, failedAssumptions() distinguishes the two
  /// causes: a non-empty set is a subset A' of \p Assumptions such that
  /// clauses ∧ A' is unsatisfiable (a final-conflict analysis, not
  /// guaranteed minimal); an empty set means the clause set is
  /// unsatisfiable outright.
  bool solveUnderAssumptions(const std::vector<Lit> &Assumptions);

  /// See solveUnderAssumptions(); valid until the next solve call.
  const std::vector<Lit> &failedAssumptions() const {
    return FailedAssumptions;
  }

  /// Value of \p V in the model; valid only after solve() returned true.
  bool modelValue(Var V) const {
    assert(Assigns[V] != LBool::Undef && "model incomplete");
    return Assigns[V] == LBool::True;
  }

  size_t numVars() const { return Assigns.size(); }
  size_t numClauses() const { return Clauses.size(); }
  size_t numLearntClauses() const { return LearntCount; }

  /// Live bytes held by the clause arena (stored clause literals plus
  /// per-clause headers). Capacity slack is deliberately excluded so the
  /// number is deterministic across allocators; Stats::ArenaBytesPeak
  /// tracks the high-water mark of this value.
  uint64_t arenaBytes() const { return ArenaBytes; }

  /// Learned-clause database management (MiniSat/Glucose lineage).
  /// reduceDB() runs automatically at restart boundaries once the
  /// learned-clause count crosses a limit that starts at FirstReduce and
  /// grows by Growth after every run (geometric schedule); restart
  /// boundaries are the one point where deletion provably cannot break
  /// the search's termination measure. A run keeps reason ("locked")
  /// clauses, binary clauses, and clauses whose literal-block distance is
  /// at or below GlueLbd; of the remaining candidates the cold half —
  /// highest LBD, then lowest activity — is deleted, and the clause arena
  /// and watcher lists are compacted so the memory is actually returned.
  struct ReducePolicy {
    bool Enabled = true;
    uint64_t FirstReduce = 2000; ///< Learnts before the first reduction.
    double Growth = 1.3;         ///< Geometric limit growth per run.
    uint32_t GlueLbd = 2;        ///< Never delete clauses at/below this.
  };
  void setReducePolicy(const ReducePolicy &P) {
    Reduce = P;
    LearntLimit = double(P.FirstReduce < 1 ? 1 : P.FirstReduce);
  }
  const ReducePolicy &reducePolicy() const { return Reduce; }

  /// Hard-deletes every clause permanently satisfied at decision level 0
  /// (MiniSat's simplify). Undoes any decisions first. Sound because a
  /// level-0 assignment is never unmade, so a clause it satisfies can
  /// never participate in search again; deleting it preserves the set of
  /// models over the remaining clauses. The intended client is the
  /// activation-literal retirement pattern: after addClause(~act), every
  /// clause guarded by act — including learned clauses, which provably
  /// contain ~act whenever their derivation used a guarded clause — is
  /// satisfied and gets removed here. Deletions count into
  /// Stats::ClausesDeleted.
  void simplify();

  /// Enables DRUP proof logging into \p P (see Drat.h). Must be called
  /// before the first addClause(). The proof records every input clause
  /// and every derived clause; on UNSAT it ends with the empty clause, and
  /// DratChecker can then validate the unsatisfiability claim without
  /// trusting this solver.
  void setProofLog(DratProof *P) {
    assert(Clauses.empty() && Trail.empty() &&
           "proof logging must start before the first clause");
    Proof = P;
  }

  /// Streams every clause-database event (input, learnt lemma, deletion)
  /// into \p Snk as it happens (see ProofLog.h). The streaming counterpart
  /// of setProofLog for long-lived incremental sessions, where clause
  /// deletion makes the grow-only DratProof unusable: deletions are
  /// reported too, so a deletion-aware checker can mirror the database.
  /// Must be attached before the first clause; detaching (nullptr) is
  /// allowed at any time.
  void setProofSink(ProofSink *Snk) {
    assert((Snk == nullptr || (Clauses.empty() && Trail.empty())) &&
           "proof streaming must start before the first clause");
    Sink = Snk;
  }

  /// Cooperative interruption. When \p F is non-null, the search loop
  /// polls it (relaxed) once per iteration; the first observed true makes
  /// the current solve call undo its decisions and return false without
  /// learning a lemma from the abandonment. interrupted() then reports
  /// that the false was an interrupt, not a real UNSAT — the clause
  /// database is untouched and the solver remains usable, so the caller
  /// must check it before trusting any false return. The flag is owned by
  /// the caller (typically another thread's cancellation signal) and is
  /// not cleared here.
  void setInterruptFlag(const std::atomic<bool> *F) { InterruptFlag = F; }
  bool interrupted() const { return Interrupted; }

  /// Statistics, reported by the benchmark harness.
  struct Stats {
    uint64_t Conflicts = 0;
    uint64_t Decisions = 0;
    uint64_t Propagations = 0;
    uint64_t Restarts = 0;
    uint64_t Solves = 0; ///< solve()/solveUnderAssumptions() calls.
    /// Clause-database management counters. All are monotone over the
    /// instance's lifetime.
    uint64_t ClausesDeleted = 0;  ///< Via reduceDB() and simplify().
    uint64_t ReduceDbRuns = 0;    ///< reduceDB() invocations.
    uint64_t ArenaBytesPeak = 0;  ///< High-water mark of arenaBytes().
    uint64_t LearntPeak = 0;      ///< Max simultaneous learned clauses.
  };
  const Stats &stats() const { return S; }

private:
  struct Clause {
    std::vector<Lit> Lits;
    bool Learnt = false;
    uint32_t Lbd = 0; ///< Literal-block distance at learn time.
    float Act = 0.0f; ///< Bumped when resolved on in analyze().
  };
  using ClauseRef = int;
  static constexpr ClauseRef NoReason = -1;

  LBool value(Lit L) const {
    LBool V = Assigns[L.var()];
    return L.negated() ? negate(V) : V;
  }

  void enqueue(Lit L, ClauseRef Reason);
  void analyzeFinal(Lit A);
  void heapInsert(Var V);
  Var heapPop();
  void percolateUp(int I);
  void percolateDown(int I);
  bool heapLess(Var A, Var B) const { return Activity[A] > Activity[B]; }
  ClauseRef propagate();
  void analyze(ClauseRef Conflict, std::vector<Lit> &Learnt,
               int &BacktrackLevel);
  void backtrack(int Level);
  Lit pickBranchLit();
  void bumpVar(Var V);
  void decayVarActivity() { VarInc /= ActivityDecay; }
  void bumpClause(ClauseRef CR);
  void decayClauseActivity() { ClaInc /= ClauseActivityDecay; }
  uint32_t computeLbd(const std::vector<Lit> &C);
  void reduceDB();
  /// Deletes every clause with Del[ref] set, compacts the clause arena
  /// and rebuilds watcher lists; remaps Reasons (a deleted reason is only
  /// legal for a level-0 assignment, whose reason is never dereferenced).
  /// Must be called at decision level 0.
  void removeClauses(const std::vector<char> &Del);
  static uint64_t clauseBytes(const Clause &C) {
    return sizeof(Clause) + C.Lits.size() * sizeof(Lit);
  }
  void attachClause(ClauseRef CR);
  int decisionLevel() const { return int(TrailLim.size()); }
  static uint64_t luby(uint64_t I);

  std::vector<Clause> Clauses;
  std::vector<std::vector<ClauseRef>> Watches; ///< Indexed by Lit::index().
  std::vector<LBool> Assigns;
  std::vector<bool> SavedPhase;
  std::vector<int> Levels;
  std::vector<ClauseRef> Reasons;
  std::vector<Lit> Trail;
  std::vector<int> TrailLim;
  size_t QueueHead = 0;

  std::vector<double> Activity;
  double VarInc = 1.0;
  static constexpr double ActivityDecay = 0.95;
  static constexpr double RescaleThreshold = 1e100;

  ReducePolicy Reduce;
  double LearntLimit = 2000; ///< Kept in sync with Reduce.FirstReduce.
  double ClaInc = 1.0;
  static constexpr double ClauseActivityDecay = 0.999;
  static constexpr float ClauseRescaleThreshold = 1e20f;
  uint64_t ArenaBytes = 0;
  std::vector<uint64_t> LevelStamp; ///< Scratch for computeLbd().
  uint64_t LbdStamp = 0;

  /// Proof-log helpers; no-ops when logging is disabled. Defined out of
  /// line because DratProof/ProofSink are incomplete here.
  void logInput(const std::vector<Lit> &C);
  void logLemma(std::vector<Lit> C);
  void logDelete(const std::vector<Lit> &C);

  std::vector<char> Seen; ///< Scratch for analyze().
  /// Max-heap over variable activity for branching (MiniSat order heap).
  std::vector<Var> Heap;
  std::vector<int> HeapPos; ///< Position in Heap, or -1 when absent.
  std::vector<Lit> FailedAssumptions;
  size_t LearntCount = 0;
  bool Unsat = false;
  const std::atomic<bool> *InterruptFlag = nullptr;
  bool Interrupted = false;
  DratProof *Proof = nullptr;
  ProofSink *Sink = nullptr;
  Stats S;
};

} // namespace smt
} // namespace leapfrog

#endif // LEAPFROG_SMT_SAT_H
