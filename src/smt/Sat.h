//===- Sat.h - CDCL SAT solver ----------------------------------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch CDCL SAT solver in the MiniSat lineage: two-watched-
/// literal propagation, first-UIP clause learning, VSIDS branching with
/// phase saving, and Luby restarts.
///
/// The paper discharges its verification conditions with off-the-shelf SMT
/// solvers (Z3, CVC4, Boolector; §6.3). None is available in this
/// environment, so this solver — together with the bit-blaster in
/// BitBlast.h — plays their role: the Leapfrog entailments are universally
/// quantified over finite bitvector valuations, hence their validity
/// reduces to (un)satisfiability of a propositional formula.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_SMT_SAT_H
#define LEAPFROG_SMT_SAT_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace leapfrog {
namespace smt {

struct DratProof;

/// A propositional variable (0-based).
using Var = int;

/// A literal: variable times two, plus one if negated.
struct Lit {
  int X = -2;

  static Lit mk(Var V, bool Negated) { return Lit{V * 2 + int(Negated)}; }

  Var var() const { return X >> 1; }
  bool negated() const { return X & 1; }
  Lit operator~() const { return Lit{X ^ 1}; }
  bool operator==(const Lit &O) const { return X == O.X; }
  bool operator!=(const Lit &O) const { return X != O.X; }

  /// Dense index for watch lists.
  int index() const { return X; }

  static Lit undef() { return Lit{-2}; }
};

/// Three-valued assignment.
enum class LBool : int8_t { False = 0, True = 1, Undef = 2 };

inline LBool fromBool(bool B) { return B ? LBool::True : LBool::False; }
inline LBool negate(LBool B) {
  if (B == LBool::Undef)
    return B;
  return B == LBool::True ? LBool::False : LBool::True;
}

/// CDCL solver. Usage: newVar() to allocate variables, addClause() to add
/// clauses, then solve(); on SAT, modelValue() reads the model.
///
/// The solver is *incremental* in the MiniSat sense: variables and clauses
/// may keep being added after a solve() call, and solveUnderAssumptions()
/// decides satisfiability under a temporary set of assumption literals
/// while learned clauses, watch lists, variable activities and saved
/// phases all survive across calls. Clients combine the two to pose many
/// related queries cheaply: persistent facts go in as clauses, per-query
/// facts as assumptions (typically one fresh activation literal guarding
/// the query's clauses, retired afterwards with a unit clause).
class SatSolver {
public:
  /// Allocates a fresh variable. May be called between solves.
  Var newVar();

  /// Adds a clause (disjunction of literals). Returns false if the clause
  /// set is already unsatisfiable at level 0. May be called between
  /// solves; any decisions from a previous call are first undone (which
  /// invalidates the previous model — read it before adding clauses).
  bool addClause(std::vector<Lit> Lits);

  /// Convenience overloads for short clauses.
  bool addClause(Lit A) { return addClause(std::vector<Lit>{A}); }
  bool addClause(Lit A, Lit B) { return addClause(std::vector<Lit>{A, B}); }
  bool addClause(Lit A, Lit B, Lit C) {
    return addClause(std::vector<Lit>{A, B, C});
  }

  /// Decides satisfiability of the clause set alone. Equivalent to
  /// solveUnderAssumptions({}).
  bool solve();

  /// Decides satisfiability of the clause set conjoined with the given
  /// assumption literals. Assumptions are planted as pseudo-decisions on
  /// the first decision levels (MiniSat-style), so everything the solver
  /// learns is implied by the clause set alone and remains valid for
  /// later calls with different assumptions.
  ///
  /// On a false return, failedAssumptions() distinguishes the two
  /// causes: a non-empty set is a subset A' of \p Assumptions such that
  /// clauses ∧ A' is unsatisfiable (a final-conflict analysis, not
  /// guaranteed minimal); an empty set means the clause set is
  /// unsatisfiable outright.
  bool solveUnderAssumptions(const std::vector<Lit> &Assumptions);

  /// See solveUnderAssumptions(); valid until the next solve call.
  const std::vector<Lit> &failedAssumptions() const {
    return FailedAssumptions;
  }

  /// Value of \p V in the model; valid only after solve() returned true.
  bool modelValue(Var V) const {
    assert(Assigns[V] != LBool::Undef && "model incomplete");
    return Assigns[V] == LBool::True;
  }

  size_t numVars() const { return Assigns.size(); }
  size_t numClauses() const { return Clauses.size(); }
  size_t numLearntClauses() const { return LearntCount; }

  /// Enables DRUP proof logging into \p P (see Drat.h). Must be called
  /// before the first addClause(). The proof records every input clause
  /// and every derived clause; on UNSAT it ends with the empty clause, and
  /// DratChecker can then validate the unsatisfiability claim without
  /// trusting this solver.
  void setProofLog(DratProof *P) {
    assert(Clauses.empty() && Trail.empty() &&
           "proof logging must start before the first clause");
    Proof = P;
  }

  /// Statistics, reported by the benchmark harness.
  struct Stats {
    uint64_t Conflicts = 0;
    uint64_t Decisions = 0;
    uint64_t Propagations = 0;
    uint64_t Restarts = 0;
    uint64_t Solves = 0; ///< solve()/solveUnderAssumptions() calls.
  };
  const Stats &stats() const { return S; }

private:
  struct Clause {
    std::vector<Lit> Lits;
    bool Learnt = false;
  };
  using ClauseRef = int;
  static constexpr ClauseRef NoReason = -1;

  LBool value(Lit L) const {
    LBool V = Assigns[L.var()];
    return L.negated() ? negate(V) : V;
  }

  void enqueue(Lit L, ClauseRef Reason);
  void analyzeFinal(Lit A);
  void heapInsert(Var V);
  Var heapPop();
  void percolateUp(int I);
  void percolateDown(int I);
  bool heapLess(Var A, Var B) const { return Activity[A] > Activity[B]; }
  ClauseRef propagate();
  void analyze(ClauseRef Conflict, std::vector<Lit> &Learnt,
               int &BacktrackLevel);
  void backtrack(int Level);
  Lit pickBranchLit();
  void bumpVar(Var V);
  void decayVarActivity() { VarInc /= ActivityDecay; }
  void attachClause(ClauseRef CR);
  int decisionLevel() const { return int(TrailLim.size()); }
  static uint64_t luby(uint64_t I);

  std::vector<Clause> Clauses;
  std::vector<std::vector<ClauseRef>> Watches; ///< Indexed by Lit::index().
  std::vector<LBool> Assigns;
  std::vector<bool> SavedPhase;
  std::vector<int> Levels;
  std::vector<ClauseRef> Reasons;
  std::vector<Lit> Trail;
  std::vector<int> TrailLim;
  size_t QueueHead = 0;

  std::vector<double> Activity;
  double VarInc = 1.0;
  static constexpr double ActivityDecay = 0.95;
  static constexpr double RescaleThreshold = 1e100;

  /// Proof-log helpers; no-ops when logging is disabled. Defined out of
  /// line because DratProof is incomplete here.
  void logInput(const std::vector<Lit> &C);
  void logLemma(std::vector<Lit> C);

  std::vector<char> Seen; ///< Scratch for analyze().
  /// Max-heap over variable activity for branching (MiniSat order heap).
  std::vector<Var> Heap;
  std::vector<int> HeapPos; ///< Position in Heap, or -1 when absent.
  std::vector<Lit> FailedAssumptions;
  size_t LearntCount = 0;
  bool Unsat = false;
  DratProof *Proof = nullptr;
  Stats S;
};

} // namespace smt
} // namespace leapfrog

#endif // LEAPFROG_SMT_SAT_H
