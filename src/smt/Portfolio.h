//===- Portfolio.h - Racing portfolio solver backend ------------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A portfolio backend behind the SmtSolver facade: every query is posed
/// to N child backends ("legs") concurrently, the first answer wins, and
/// the losers are cancelled through SmtSolver::interrupt(). This is the
/// classic SMT portfolio shape — the paper runs Z3, CVC4 and Boolector
/// side by side in §6.3 and reports that no single solver dominates —
/// reduced to the facade: callers see one SmtSolver whose latency per
/// query is min over the legs, at the cost of redundant work.
///
/// Concurrency contract: each leg backend is owned by a dedicated leg
/// thread for its whole life — every solver call (sessions included) runs
/// as a job posted to that thread, so the one-backend-one-thread rule of
/// docs/ARCHITECTURE.md holds per leg. The only cross-thread calls are
/// interrupt()/interrupted(), which every backend documents as
/// thread-safe. Cancellation uses a sequentially-consistent handshake
/// (Started/Cancelled flags) so a leg that picks a job up after the race
/// is decided aborts before solving, and a leg already solving is
/// interrupted — one of the two paths always fires.
///
/// The portfolio cannot capture proofs: legs race, so which leg produced
/// a given UNSAT is schedule-dependent, and a losing leg's partial proof
/// is garbage. Certification requests are therefore rejected up front
/// (supportsProofCapture() = false; the checker surfaces BadRequest).
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_SMT_PORTFOLIO_H
#define LEAPFROG_SMT_PORTFOLIO_H

#include "smt/Solver.h"

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

namespace leapfrog {
namespace smt {

/// Races two or more child backends per query; see the file comment.
class PortfolioSolver : public SmtSolver {
public:
  /// Takes ownership of \p Legs (at least one; a one-leg portfolio is a
  /// pointless but legal pass-through). Leg threads start immediately.
  explicit PortfolioSolver(std::vector<std::unique_ptr<SmtSolver>> Legs);
  ~PortfolioSolver() override;

  SatResult checkSat(const BvFormulaRef &F, Model *M) override;

  /// Sessions mirror premises into one child session per leg and race
  /// every goal (and every batch) across them.
  std::unique_ptr<IncrementalSession>
  openSession(const SessionLimits &Limits) override;
  using SmtSolver::openSession;

  /// A worker portfolio races workers of every leg; nullptr when any leg
  /// cannot spawn (the parallel engine then falls back to sequential,
  /// same as for any other non-spawning backend).
  std::unique_ptr<SmtSolver> spawnWorker() override;

  /// Racing makes proof provenance schedule-dependent; see file comment.
  bool supportsProofCapture() const override { return false; }

  /// Race outcome counters.
  struct PStats {
    std::vector<uint64_t> Wins; ///< Queries each leg answered first.
    uint64_t Cancelled = 0;     ///< Losing legs interrupted mid-solve.
  };
  const PStats &portfolioStats() const { return P; }

  size_t numLegs() const { return Legs.size(); }
  /// The leg backend itself (tests reach through to leg-specific stats
  /// and knobs). The portfolio still owns it; callers must not issue
  /// solver calls on it while the portfolio is live — leg threads own
  /// those — but reading stats after the last query is safe (the race
  /// protocol waits for every leg before returning).
  SmtSolver &leg(size_t I) { return *Legs[I]->Solver; }

private:
  class PortfolioSession;

  /// One leg: a backend owned by a mailbox thread that executes posted
  /// jobs one at a time.
  struct Leg {
    std::unique_ptr<SmtSolver> Solver;
    std::thread Thread;
    std::mutex M;
    std::condition_variable Cv;
    std::function<void()> Job;
    bool HasJob = false;
    bool Stop = false;
  };

  /// Shared state of one raced query (or batch).
  struct Race {
    std::mutex M;
    std::condition_variable Cv;
    size_t Remaining;           ///< Legs that have not reported yet.
    bool HaveWinner = false;
    size_t WinnerLeg = 0;
    std::vector<char> Done; ///< Per-leg "already reported" (under M):
                            ///< finished legs are never interrupted, so
                            ///< Cancelled counts real mid-solve cancels.
    std::atomic<bool> Cancelled{false};
    std::unique_ptr<std::atomic<bool>[]> Started;
  };

  void legMain(Leg &L);
  /// Posts \p Job to leg \p I's mailbox (waits for the slot to free).
  void post(size_t I, std::function<void()> Job);
  /// Runs \p Run(LegIndex) on every leg under the race protocol and
  /// returns the winning leg's index. \p Run must leave its answer in
  /// leg-indexed storage the caller provides; it returns true when the
  /// leg's answer is valid (i.e. the leg was not interrupted).
  size_t race(const std::function<bool(size_t)> &Run);
  /// Reports leg \p I's completion into \p R; on the first valid answer,
  /// records the win and cancels every already-started loser.
  void report(Race &R, size_t I, bool Valid);

  std::vector<std::unique_ptr<Leg>> Legs;
  PStats P;
};

} // namespace smt
} // namespace leapfrog

#endif // LEAPFROG_SMT_PORTFOLIO_H
