//===- ProofLog.cpp - Streaming per-goal DRUP proof capture ----------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "smt/ProofLog.h"

#include <algorithm>
#include <chrono>

using namespace leapfrog;
using namespace leapfrog::smt;

namespace {

uint64_t nowMicros() {
  return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

std::string dimacs(Lit L) {
  return std::to_string(L.negated() ? -(L.var() + 1) : L.var() + 1);
}

std::string clauseLine(const std::vector<Lit> &C) {
  std::string Out;
  for (Lit L : C) {
    Out += dimacs(L);
    Out += ' ';
  }
  Out += '0';
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// ProofStream
//===----------------------------------------------------------------------===//

void ProofStream::onInput(const std::vector<Lit> &Clause) {
  ProofEvent E;
  E.K = ProofEvent::Kind::Input;
  E.Lits = Clause;
  Events.push_back(std::move(E));
}

void ProofStream::onLemma(const std::vector<Lit> &Clause) {
  ProofEvent E;
  E.K = ProofEvent::Kind::Lemma;
  E.Lits = Clause;
  Events.push_back(std::move(E));
}

void ProofStream::onDelete(const std::vector<Lit> &Clause) {
  ProofEvent E;
  E.K = ProofEvent::Kind::Delete;
  E.Lits = Clause;
  Events.push_back(std::move(E));
}

uint64_t ProofStream::goalBegin(Var ActVar) {
  ProofEvent E;
  E.K = ProofEvent::Kind::GoalBegin;
  E.GoalId = NextGoalId++;
  E.ActVar = ActVar;
  Events.push_back(std::move(E));
  return Events.back().GoalId;
}

void ProofStream::goalEndUnsat(uint64_t GoalId, std::vector<Lit> Core) {
  ProofEvent E;
  E.K = ProofEvent::Kind::GoalEndUnsat;
  E.GoalId = GoalId;
  E.Lits = std::move(Core);
  Events.push_back(std::move(E));
}

void ProofStream::goalEndSat(uint64_t GoalId) {
  ProofEvent E;
  E.K = ProofEvent::Kind::GoalEndSat;
  E.GoalId = GoalId;
  Events.push_back(std::move(E));
}

void ProofStream::restart() {
  ProofEvent E;
  E.K = ProofEvent::Kind::Restart;
  Events.push_back(std::move(E));
}

//===----------------------------------------------------------------------===//
// StreamingProofChecker
//===----------------------------------------------------------------------===//

void StreamingProofChecker::fail(const std::string &Why) {
  if (Error.empty())
    Error = Why;
}

std::string StreamingProofChecker::multisetKey(const std::vector<Lit> &C) {
  std::vector<Lit> Sorted = C;
  std::sort(Sorted.begin(), Sorted.end(),
            [](Lit A, Lit B) { return A.index() < B.index(); });
  std::string Key;
  Key.reserve(Sorted.size() * 4);
  for (Lit L : Sorted) {
    uint32_t X = uint32_t(L.index());
    Key.push_back(char(X & 0xff));
    Key.push_back(char((X >> 8) & 0xff));
    Key.push_back(char((X >> 16) & 0xff));
    Key.push_back(char((X >> 24) & 0xff));
  }
  return Key;
}

void StreamingProofChecker::growTo(Var V) {
  while (int(Assigns.size()) <= V) {
    Assigns.push_back(LBool::Undef);
    Watches.emplace_back();
    Watches.emplace_back();
  }
}

bool StreamingProofChecker::enqueue(Lit L) {
  LBool Val = value(L);
  if (Val == LBool::False)
    return false;
  if (Val == LBool::Undef) {
    Assigns[L.var()] = fromBool(!L.negated());
    Trail.push_back(L);
  }
  return true;
}

bool StreamingProofChecker::propagate() {
  while (QueueHead < Trail.size()) {
    Lit P = Trail[QueueHead++];
    ++S.Propagations;
    std::vector<int> &WList = Watches[P.index()];
    size_t Keep = 0;
    for (size_t I = 0; I < WList.size(); ++I) {
      int Id = WList[I];
      CClause &Cl = Clauses[Id];
      if (Cl.Deleted)
        continue; // lazily purged from the watch list
      std::vector<Lit> &C = Cl.Lits;
      if (C[0] == ~P)
        std::swap(C[0], C[1]);
      if (value(C[0]) == LBool::True) {
        WList[Keep++] = Id;
        continue;
      }
      bool FoundWatch = false;
      for (size_t K = 2; K < C.size(); ++K) {
        if (value(C[K]) != LBool::False) {
          std::swap(C[1], C[K]);
          Watches[(~C[1]).index()].push_back(Id);
          FoundWatch = true;
          break;
        }
      }
      if (FoundWatch)
        continue;
      WList[Keep++] = Id;
      if (!enqueue(C[0])) {
        for (size_t K = I + 1; K < WList.size(); ++K)
          WList[Keep++] = WList[K];
        WList.resize(Keep);
        QueueHead = Trail.size();
        return true;
      }
    }
    WList.resize(Keep);
  }
  return false;
}

bool StreamingProofChecker::addClause(const std::vector<Lit> &C) {
  for (Lit L : C)
    growTo(L.var());
  if (C.empty()) {
    RootConflict = true;
    return false;
  }
  if (C.size() == 1) {
    if (!enqueue(C[0]) || propagate()) {
      RootConflict = true;
      return false;
    }
    return true;
  }
  int Id = int(Clauses.size());
  Clauses.push_back(CClause{C, false});
  ByKey[multisetKey(C)].push_back(Id);
  std::vector<Lit> &Stored = Clauses.back().Lits;
  size_t W = 0;
  for (size_t I = 0; I < Stored.size() && W < 2; ++I)
    if (value(Stored[I]) != LBool::False)
      std::swap(Stored[W++], Stored[I]);
  Watches[(~Stored[0]).index()].push_back(Id);
  Watches[(~Stored[1]).index()].push_back(Id);
  if (W < 2) {
    if (!enqueue(Stored[0]) || propagate()) {
      RootConflict = true;
      return false;
    }
  }
  return true;
}

bool StreamingProofChecker::lemmaIsRup(const std::vector<Lit> &Lemma) {
  size_t TrailMark = Trail.size();
  size_t HeadMark = QueueHead;
  bool Conflict = false;
  for (Lit L : Lemma) {
    growTo(L.var());
    if (!enqueue(~L)) {
      Conflict = true;
      break;
    }
  }
  if (!Conflict)
    Conflict = propagate();
  for (size_t I = Trail.size(); I > TrailMark; --I)
    Assigns[Trail[I - 1].var()] = LBool::Undef;
  Trail.resize(TrailMark);
  QueueHead = HeadMark;
  return Conflict;
}

void StreamingProofChecker::onInput(const std::vector<Lit> &Clause) {
  if (!ok() || RootConflict)
    return; // failed already, or proven unsat: everything follows
  addClause(Clause);
}

void StreamingProofChecker::onLemma(const std::vector<Lit> &Clause) {
  if (!ok() || RootConflict)
    return;
  uint64_t T0 = nowMicros();
  ++S.LemmasChecked;
  if (Clause.empty()) {
    if (!propagate())
      fail("empty lemma claimed, but the database does not propagate to a "
           "conflict");
    else
      RootConflict = true;
    S.Micros += nowMicros() - T0;
    return;
  }
  if (!lemmaIsRup(Clause)) {
    fail("lemma (" + clauseLine(Clause) + ") is not RUP");
    S.Micros += nowMicros() - T0;
    return;
  }
  addClause(Clause);
  S.Micros += nowMicros() - T0;
}

void StreamingProofChecker::onDelete(const std::vector<Lit> &Clause) {
  if (!ok() || RootConflict)
    return;
  ++S.Deletions;
  if (Clause.size() < 2) {
    // Stored clauses are always binary or longer (units live on the trail),
    // and root facts are never retracted: skipping is sound.
    ++S.DeletionsSkipped;
    return;
  }
  auto It = ByKey.find(multisetKey(Clause));
  if (It == ByKey.end() || It->second.empty()) {
    // Unknown deletion (e.g. the solver's copy of a normalization-changed
    // input). Skipping only leaves the checker database stronger.
    ++S.DeletionsSkipped;
    return;
  }
  int Id = It->second.back();
  It->second.pop_back();
  if (It->second.empty())
    ByKey.erase(It);
  Clauses[Id].Deleted = true;
  Clauses[Id].Lits.clear();
  Clauses[Id].Lits.shrink_to_fit();
}

bool StreamingProofChecker::goalEndUnsat(const std::vector<Lit> &Core) {
  if (!ok())
    return false;
  uint64_t T0 = nowMicros();
  bool Ok;
  if (Core.empty()) {
    Ok = RootConflict || propagate();
    if (Ok)
      RootConflict = true;
    else
      fail("empty UNSAT core claimed, but the database is not conflicting "
           "at the root");
  } else if (RootConflict) {
    Ok = true;
  } else {
    Ok = lemmaIsRup(Core);
    if (!Ok)
      fail("UNSAT core (" + clauseLine(Core) + ") is not RUP");
  }
  S.Micros += nowMicros() - T0;
  return Ok;
}

void StreamingProofChecker::restart() {
  Clauses.clear();
  Watches.clear();
  Assigns.clear();
  Trail.clear();
  ByKey.clear();
  QueueHead = 0;
  RootConflict = false;
}
