//===- SmtLib.cpp - SMT-LIB2 pretty-printer -------------------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "smt/SmtLib.h"

using namespace leapfrog;
using namespace leapfrog::smt;

std::string smt::sanitizeSymbol(const std::string &Name) {
  std::string Out;
  Out.reserve(Name.size());
  for (char C : Name) {
    if ((C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
        (C >= '0' && C <= '9') || C == '_' || C == '.' || C == '-') {
      Out.push_back(C);
      continue;
    }
    // Injectively escape other characters as !xx hex codes.
    static const char *Hex = "0123456789abcdef";
    Out.push_back('!');
    Out.push_back(Hex[(C >> 4) & 0xf]);
    Out.push_back(Hex[C & 0xf]);
  }
  if (Out.empty() || (Out[0] >= '0' && Out[0] <= '9'))
    Out = "v!" + Out;
  return Out;
}

std::string smt::toSmtLibTerm(const BvTermRef &T) {
  switch (T->kind()) {
  case BvTerm::Kind::Var:
    return sanitizeSymbol(T->varName());
  case BvTerm::Kind::Const:
    return "#b" + T->constValue().str();
  case BvTerm::Kind::Concat:
    return "(concat " + toSmtLibTerm(T->lhs()) + " " +
           toSmtLibTerm(T->rhs()) + ")";
  case BvTerm::Kind::Extract: {
    size_t W = T->extractOperand()->width();
    size_t High = W - 1 - T->extractLo(); // MSB-first → LSB-first indices.
    size_t Low = W - 1 - T->extractHi();
    return "((_ extract " + std::to_string(High) + " " +
           std::to_string(Low) + ") " + toSmtLibTerm(T->extractOperand()) +
           ")";
  }
  }
  return "<term>";
}

std::string smt::toSmtLibFormula(const BvFormulaRef &F) {
  switch (F->kind()) {
  case BvFormula::Kind::True:
    return "true";
  case BvFormula::Kind::False:
    return "false";
  case BvFormula::Kind::Eq:
    return "(= " + toSmtLibTerm(F->eqLhs()) + " " + toSmtLibTerm(F->eqRhs()) +
           ")";
  case BvFormula::Kind::Not:
    return "(not " + toSmtLibFormula(F->sub()) + ")";
  case BvFormula::Kind::And:
    return "(and " + toSmtLibFormula(F->lhs()) + " " +
           toSmtLibFormula(F->rhs()) + ")";
  case BvFormula::Kind::Or:
    return "(or " + toSmtLibFormula(F->lhs()) + " " +
           toSmtLibFormula(F->rhs()) + ")";
  case BvFormula::Kind::Implies:
    return "(=> " + toSmtLibFormula(F->lhs()) + " " +
           toSmtLibFormula(F->rhs()) + ")";
  }
  return "<formula>";
}

std::string smt::toSmtLibScript(const BvFormulaRef &F, bool GetModel) {
  std::string Out;
  Out += "(set-logic QF_BV)\n";
  for (const auto &[Name, Width] : collectVars(F))
    Out += "(declare-const " + sanitizeSymbol(Name) + " (_ BitVec " +
           std::to_string(Width) + "))\n";
  Out += "(assert " + toSmtLibFormula(F) + ")\n";
  Out += "(check-sat)\n";
  if (GetModel)
    Out += "(get-model)\n";
  return Out;
}
