//===- SmtLib.cpp - SMT-LIB2 pretty-printer -------------------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "smt/SmtLib.h"

#include <cctype>

using namespace leapfrog;
using namespace leapfrog::smt;

std::string smt::sanitizeSymbol(const std::string &Name) {
  static const char *Hex = "0123456789abcdef";
  std::string Out;
  Out.reserve(Name.size());
  for (char C : Name) {
    bool Simple = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
                  (C >= '0' && C <= '9') || C == '_' || C == '.' || C == '-';
    // A leading digit is legal *in* a simple symbol but not *starting*
    // one; escaping it (rather than prefixing a guard string) keeps the
    // encoding injective — a '!' in the output always begins an escape.
    if (Out.empty() && C >= '0' && C <= '9')
      Simple = false;
    if (Simple) {
      Out.push_back(C);
      continue;
    }
    Out.push_back('!');
    Out.push_back(Hex[(C >> 4) & 0xf]);
    Out.push_back(Hex[C & 0xf]);
  }
  if (Out.empty())
    Out = "!"; // The empty name; a lone '!' cannot be an escape.
  return Out;
}

std::string smt::desanitizeSymbol(const std::string &Symbol) {
  if (Symbol == "!")
    return "";
  auto HexVal = [](char C) -> int {
    if (C >= '0' && C <= '9')
      return C - '0';
    if (C >= 'a' && C <= 'f')
      return C - 'a' + 10;
    if (C >= 'A' && C <= 'F')
      return C - 'A' + 10;
    return -1;
  };
  std::string Out;
  Out.reserve(Symbol.size());
  for (size_t I = 0; I < Symbol.size(); ++I) {
    if (Symbol[I] == '!' && I + 2 < Symbol.size()) {
      int Hi = HexVal(Symbol[I + 1]), Lo = HexVal(Symbol[I + 2]);
      if (Hi >= 0 && Lo >= 0) {
        Out.push_back(char((Hi << 4) | Lo));
        I += 2;
        continue;
      }
    }
    Out.push_back(Symbol[I]);
  }
  return Out;
}

std::string smt::toSmtLibTerm(const BvTermRef &T) {
  switch (T->kind()) {
  case BvTerm::Kind::Var:
    return sanitizeSymbol(T->varName());
  case BvTerm::Kind::Const:
    return "#b" + T->constValue().str();
  case BvTerm::Kind::Concat:
    return "(concat " + toSmtLibTerm(T->lhs()) + " " +
           toSmtLibTerm(T->rhs()) + ")";
  case BvTerm::Kind::Extract: {
    size_t W = T->extractOperand()->width();
    size_t High = W - 1 - T->extractLo(); // MSB-first → LSB-first indices.
    size_t Low = W - 1 - T->extractHi();
    return "((_ extract " + std::to_string(High) + " " +
           std::to_string(Low) + ") " + toSmtLibTerm(T->extractOperand()) +
           ")";
  }
  }
  return "<term>";
}

std::string smt::toSmtLibFormula(const BvFormulaRef &F) {
  switch (F->kind()) {
  case BvFormula::Kind::True:
    return "true";
  case BvFormula::Kind::False:
    return "false";
  case BvFormula::Kind::Eq:
    return "(= " + toSmtLibTerm(F->eqLhs()) + " " + toSmtLibTerm(F->eqRhs()) +
           ")";
  case BvFormula::Kind::Not:
    return "(not " + toSmtLibFormula(F->sub()) + ")";
  case BvFormula::Kind::And:
    return "(and " + toSmtLibFormula(F->lhs()) + " " +
           toSmtLibFormula(F->rhs()) + ")";
  case BvFormula::Kind::Or:
    return "(or " + toSmtLibFormula(F->lhs()) + " " +
           toSmtLibFormula(F->rhs()) + ")";
  case BvFormula::Kind::Implies:
    return "(=> " + toSmtLibFormula(F->lhs()) + " " +
           toSmtLibFormula(F->rhs()) + ")";
  }
  return "<formula>";
}

std::string smt::toSmtLibScript(const BvFormulaRef &F, bool GetModel) {
  std::string Out;
  Out += "(set-logic QF_BV)\n";
  for (const auto &[Name, Width] : collectVars(F))
    Out += "(declare-const " + sanitizeSymbol(Name) + " (_ BitVec " +
           std::to_string(Width) + "))\n";
  Out += "(assert " + toSmtLibFormula(F) + ")\n";
  Out += "(check-sat)\n";
  if (GetModel)
    Out += "(get-model)\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// Reply parsing
//===----------------------------------------------------------------------===//

SExprScanner::Step SExprScanner::feed(char C) {
  auto IsWs = [](char Ch) {
    return Ch == ' ' || Ch == '\t' || Ch == '\r' || Ch == '\n';
  };
  if (!Started) {
    if (IsWs(C))
      return Step::Skip;
    Started = true;
    IsAtom = C != '(';
    if (!IsAtom)
      Depth = 1;
    return Step::Continue;
  }
  if (IsAtom)
    return IsWs(C) ? Step::DoneBefore : Step::Continue;
  if (InString) {
    // A doubled "" escape re-enters the string on the second quote; the
    // net paren balance is identical either way.
    if (C == '"')
      InString = false;
    return Step::Continue;
  }
  if (InQuotedSym) {
    if (C == '|')
      InQuotedSym = false;
    return Step::Continue;
  }
  if (C == '"') {
    InString = true;
  } else if (C == '|') {
    InQuotedSym = true;
  } else if (C == '(') {
    ++Depth;
  } else if (C == ')') {
    if (--Depth == 0)
      return Step::Done;
  }
  return Step::Continue;
}

namespace {

/// Recursion bound for parseSExpr: any message this project prints or
/// parses (scripts, replies, models) nests a few levels deep; well-formed
/// solver output never approaches this, and a hostile/corrupt reply must
/// fail the parse — and fall back — rather than overflow the stack.
constexpr int MaxSExprDepth = 10000;

bool parseSExprAt(const std::string &Text, size_t &Pos, SExpr &Out,
                  int Depth) {
  if (Depth > MaxSExprDepth)
    return false;
  auto IsWs = [](char C) {
    return C == ' ' || C == '\t' || C == '\r' || C == '\n';
  };
  while (Pos < Text.size() && IsWs(Text[Pos]))
    ++Pos;
  if (Pos >= Text.size())
    return false;
  char C = Text[Pos];
  if (C == ')')
    return false; // A closer with no matching opener.
  if (C == '(') {
    ++Pos;
    Out.IsAtom = false;
    Out.Atom.clear();
    Out.List.clear();
    for (;;) {
      while (Pos < Text.size() && IsWs(Text[Pos]))
        ++Pos;
      if (Pos >= Text.size())
        return false; // Unbalanced.
      if (Text[Pos] == ')') {
        ++Pos;
        return true;
      }
      SExpr Child;
      if (!parseSExprAt(Text, Pos, Child, Depth + 1))
        return false;
      Out.List.push_back(std::move(Child));
    }
  }
  Out.IsAtom = true;
  Out.List.clear();
  Out.Atom.clear();
  if (C == '|') {
    // Quoted symbol: everything up to the closing bar, bars stripped.
    size_t End = Text.find('|', Pos + 1);
    if (End == std::string::npos)
      return false;
    Out.Atom = Text.substr(Pos + 1, End - Pos - 1);
    Pos = End + 1;
    return true;
  }
  if (C == '"') {
    // String literal, quotes kept ("" is the escaped quote).
    size_t I = Pos + 1;
    while (I < Text.size()) {
      if (Text[I] == '"') {
        if (I + 1 < Text.size() && Text[I + 1] == '"') {
          I += 2;
          continue;
        }
        Out.Atom = Text.substr(Pos, I + 1 - Pos);
        Pos = I + 1;
        return true;
      }
      ++I;
    }
    return false; // Unterminated string.
  }
  size_t End = Pos;
  while (End < Text.size() && !IsWs(Text[End]) && Text[End] != '(' &&
         Text[End] != ')')
    ++End;
  Out.Atom = Text.substr(Pos, End - Pos);
  Pos = End;
  return true;
}

} // namespace

bool smt::parseSExpr(const std::string &Text, size_t &Pos, SExpr &Out) {
  return parseSExprAt(Text, Pos, Out, 0);
}

bool smt::parseBvLiteral(const std::string &Atom, Bitvector &Out) {
  if (Atom.size() < 3 || Atom[0] != '#')
    return false;
  if (Atom[1] == 'b') {
    Bitvector BV;
    for (size_t I = 2; I < Atom.size(); ++I) {
      if (Atom[I] != '0' && Atom[I] != '1')
        return false;
      BV.pushBack(Atom[I] == '1');
    }
    Out = BV;
    return true;
  }
  if (Atom[1] == 'x') {
    Bitvector BV;
    for (size_t I = 2; I < Atom.size(); ++I) {
      char C = char(std::tolower(static_cast<unsigned char>(Atom[I])));
      int V;
      if (C >= '0' && C <= '9')
        V = C - '0';
      else if (C >= 'a' && C <= 'f')
        V = C - 'a' + 10;
      else
        return false;
      for (int B = 3; B >= 0; --B)
        BV.pushBack((V >> B) & 1);
    }
    Out = BV;
    return true;
  }
  return false;
}

namespace {

/// Matches the sort s-expression `(_ BitVec w)`, extracting \p Width.
bool isBitVecSort(const SExpr &S, size_t &Width) {
  if (S.IsAtom || S.List.size() != 3)
    return false;
  if (!S.List[0].IsAtom || S.List[0].Atom != "_")
    return false;
  if (!S.List[1].IsAtom || S.List[1].Atom != "BitVec")
    return false;
  if (!S.List[2].IsAtom || S.List[2].Atom.empty())
    return false;
  size_t W = 0;
  for (char C : S.List[2].Atom) {
    if (C < '0' || C > '9')
      return false;
    W = W * 10 + size_t(C - '0');
    if (W > 1u << 24)
      return false; // No sane query has 16M-bit variables.
  }
  Width = W;
  return true;
}

/// Parses a model *value* of sort (_ BitVec Width): "#b…" (exact width),
/// "#x…" (width must be 4·digits), or `(_ bvN Width)` with N a
/// non-negative decimal fitting in Width bits.
bool parseBvValue(const SExpr &V, size_t Width, Bitvector &Out,
                  std::string &Why) {
  if (V.IsAtom) {
    Bitvector BV;
    if (!parseBvLiteral(V.Atom, BV)) {
      Why = "unrecognized bit-vector value '" + V.Atom + "'";
      return false;
    }
    if (BV.size() != Width) {
      Why = "value '" + V.Atom + "' has " + std::to_string(BV.size()) +
            " bits for a (_ BitVec " + std::to_string(Width) + ") sort";
      return false;
    }
    Out = BV;
    return true;
  }
  // (_ bvN w): the indexed decimal form cvc4/cvc5 print by default.
  if (V.List.size() != 3 || !V.List[0].IsAtom || V.List[0].Atom != "_" ||
      !V.List[1].IsAtom || !V.List[2].IsAtom) {
    Why = "unrecognized bit-vector value expression";
    return false;
  }
  const std::string &Bv = V.List[1].Atom;
  if (Bv.size() < 3 || Bv.compare(0, 2, "bv") != 0) {
    Why = "unrecognized indexed value '" + Bv + "'";
    return false;
  }
  // Reject signs explicitly: "(_ bv-5 4)" is not a bit-vector.
  unsigned long long Value = 0;
  for (size_t I = 2; I < Bv.size(); ++I) {
    char C = Bv[I];
    if (C < '0' || C > '9') {
      Why = "non-decimal (or negative) bit-vector value '" + Bv + "'";
      return false;
    }
    if (Value > (~0ull - 9) / 10) {
      Why = "bit-vector value '" + Bv + "' overflows";
      return false;
    }
    Value = Value * 10 + unsigned(C - '0');
  }
  if (V.List[2].Atom != std::to_string(Width)) {
    Why = "value width '" + V.List[2].Atom + "' does not match sort width " +
          std::to_string(Width);
    return false;
  }
  if (Width < 64 && (Value >> Width) != 0) {
    Why = "value " + std::to_string(Value) + " does not fit in " +
          std::to_string(Width) + " bits";
    return false;
  }
  if (Width > 64) {
    // A decimal literal only reaches 64 bits; wider sorts zero-extend.
    Bitvector BV(Width - 64);
    Out = BV.concat(Bitvector::fromUint(Value, 64));
    return true;
  }
  Out = Bitvector::fromUint(Value, Width);
  return true;
}

} // namespace

bool smt::parseModelReply(
    const std::string &Text,
    std::vector<std::pair<std::string, Bitvector>> &Out,
    std::string *Error) {
  auto Fail = [&](const std::string &Why) {
    if (Error)
      *Error = Why;
    return false;
  };
  Out.clear();
  size_t Pos = 0;
  SExpr Reply;
  if (!parseSExpr(Text, Pos, Reply))
    return Fail("not a well-formed s-expression");
  if (Reply.IsAtom)
    return Fail("model reply is a bare atom, expected a list");
  // z3 ≤ 4.8 wraps the define-funs in (model …); the spec and newer
  // solvers print the bare list. Normalize to the entry span.
  const std::vector<SExpr> *Entries = &Reply.List;
  size_t First = 0;
  if (!Reply.List.empty() && Reply.List[0].IsAtom &&
      Reply.List[0].Atom == "model")
    First = 1;
  for (size_t I = First; I < Entries->size(); ++I) {
    const SExpr &E = (*Entries)[I];
    if (E.IsAtom)
      return Fail("model entry is a bare atom '" + E.Atom + "'");
    // (define-fun name () sort value); other entry kinds (define-fun
    // with arguments, forall cardinality info, …) don't occur for QF_BV
    // consts and are malformed here.
    if (E.List.size() != 5 || !E.List[0].IsAtom ||
        E.List[0].Atom != "define-fun")
      return Fail("model entry is not a 5-element define-fun");
    if (!E.List[1].IsAtom)
      return Fail("define-fun name is not a symbol");
    if (E.List[1].Atom.empty())
      return Fail("define-fun name is empty");
    if (E.List[2].IsAtom || !E.List[2].List.empty())
      return Fail("define-fun for '" + E.List[1].Atom +
                  "' takes arguments, expected a constant");
    size_t Width = 0;
    if (!isBitVecSort(E.List[3], Width))
      continue; // Bool activation literals etc.: not ours, skip.
    Bitvector Value;
    std::string Why;
    if (!parseBvValue(E.List[4], Width, Value, Why))
      return Fail("in define-fun for '" + E.List[1].Atom + "': " + Why);
    Out.emplace_back(E.List[1].Atom, Value);
  }
  return true;
}
