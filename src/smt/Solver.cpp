//===- Solver.cpp - SMT solving facade ------------------------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"

#include "smt/BitBlast.h"
#include "smt/Drat.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace leapfrog;
using namespace leapfrog::smt;

bool SmtSolver::isValid(const BvFormulaRef &F, Model *Counterexample) {
  return checkSat(BvFormula::mkNot(F), Counterexample) == SatResult::Unsat;
}

SatResult BitBlastSolver::checkSat(const BvFormulaRef &F, Model *M) {
  auto Start = std::chrono::steady_clock::now();

  SatSolver Sat;
  DratProof Proof;
  if (CertifyUnsat)
    Sat.setProofLog(&Proof);
  BitBlaster Blaster(Sat);
  Blaster.assertFormula(F);
  bool IsSat = Sat.solve();

  if (!IsSat && CertifyUnsat) {
    auto ProofStart = std::chrono::steady_clock::now();
    DratChecker Checker;
    std::string Error;
    if (!Checker.check(Proof, &Error)) {
      // A proof that does not replay means the solver's UNSAT answer is
      // unsubstantiated — exactly the soundness hole certification exists
      // to close. There is no meaningful recovery.
      std::fprintf(stderr, "leapfrog: DRUP proof replay failed: %s\n",
                   Error.c_str());
      std::abort();
    }
    auto ProofEnd = std::chrono::steady_clock::now();
    ++Stats.CertifiedUnsat;
    Stats.ProofLemmas += Proof.Lemmas.size();
    Stats.ProofMicros += uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(ProofEnd -
                                                              ProofStart)
            .count());
  }

  auto End = std::chrono::steady_clock::now();
  uint64_t Micros = uint64_t(
      std::chrono::duration_cast<std::chrono::microseconds>(End - Start)
          .count());
  ++Stats.Queries;
  Stats.TotalMicros += Micros;
  Stats.MaxMicros = std::max(Stats.MaxMicros, Micros);
  Stats.QueryMicros.push_back(Micros);
  Stats.TotalSatVars += Sat.numVars();
  Stats.TotalSatClauses += Sat.numClauses();

  if (!IsSat) {
    ++Stats.UnsatAnswers;
    return SatResult::Unsat;
  }
  ++Stats.SatAnswers;
  if (M) {
    M->clear();
    for (const auto &[Name, Width] : collectVars(F))
      M->emplace_back(Name, Blaster.modelValue(Name, Width));
  }
  return SatResult::Sat;
}

SmtSolver &smt::defaultSolver() {
  static BitBlastSolver Solver;
  return Solver;
}
