//===- Solver.cpp - SMT solving facade ------------------------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"

#include "smt/BitBlast.h"
#include "smt/Drat.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <unordered_set>

using namespace leapfrog;
using namespace leapfrog::smt;

bool SmtSolver::isValid(const BvFormulaRef &F, Model *Counterexample) {
  return checkSat(BvFormula::mkNot(F), Counterexample) == SatResult::Unsat;
}

//===----------------------------------------------------------------------===//
// Incremental sessions
//===----------------------------------------------------------------------===//

/// The correct-by-construction fallback: keep the premises as formulas and
/// re-pose their conjunction through checkSat() on every query. Used for
/// backends without native incrementality and for BitBlastSolver when
/// proof certification is on (each query then carries its own DRUP proof).
class SmtSolver::MonolithicSession : public SmtSolver::IncrementalSession {
public:
  explicit MonolithicSession(SmtSolver &Owner) : Owner(Owner) {}

  void assertPremise(const BvFormulaRef &F) override {
    ++Owner.Stats.SessionPremises;
    Premises.push_back(F);
  }

  SatResult checkSatUnderPremises(const BvFormulaRef &Goal,
                                  Model *M) override {
    ++Owner.Stats.SessionQueries;
    BvFormulaRef Query = Goal;
    // Right-fold so the goal stays innermost; mkAnd folds constants.
    for (size_t I = Premises.size(); I > 0; --I)
      Query = BvFormula::mkAnd(Premises[I - 1], Query);
    return Owner.checkSat(Query, M);
  }

private:
  SmtSolver &Owner;
  std::vector<BvFormulaRef> Premises;
};

std::unique_ptr<SmtSolver::IncrementalSession> SmtSolver::openSession() {
  ++Stats.SessionsOpened;
  return std::make_unique<MonolithicSession>(*this);
}

/// The incremental backend: one SatSolver + BitBlaster for the session's
/// lifetime. Premises are blasted once into persistent clauses; each goal
/// is blasted to a definition literal guarded by a fresh activation
/// literal, solved under that single assumption, and retired with a unit
/// clause afterwards so it can never constrain a later query. Everything
/// the CDCL solver learns — clauses, variable activity, saved phases —
/// survives to the next query.
class BitBlastSolver::Session : public SmtSolver::IncrementalSession {
public:
  explicit Session(BitBlastSolver &Owner) : Owner(Owner), Blaster(Sat) {}

  void assertPremise(const BvFormulaRef &F) override {
    if (F->kind() == BvFormula::Kind::True)
      return;
    // Structural-hash cache: a conjunct that renders identically is the
    // same CNF; re-blasting it would only duplicate clauses.
    if (!AssertedKeys.insert(F->str()).second) {
      ++Owner.Stats.PremiseCacheHits;
      return;
    }
    // Premise blasting is real solver-side work the monolithic path pays
    // per query; time it into TotalMicros so the A/B benches compare
    // like with like (it has no QueryMicros entry — it belongs to no
    // single query, which is the whole point).
    auto Start = std::chrono::steady_clock::now();
    ++Owner.Stats.SessionPremises;
    Premises.push_back(F);
    size_t Before = Sat.numClauses();
    Blaster.assertFormula(F);
    PremiseClauses += Sat.numClauses() - Before;
    auto End = std::chrono::steady_clock::now();
    Owner.Stats.TotalMicros += uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(End - Start)
            .count());
  }

  SatResult checkSatUnderPremises(const BvFormulaRef &Goal,
                                  Model *M) override {
    auto Start = std::chrono::steady_clock::now();
    ++Owner.Stats.SessionQueries;
    // Clauses a monolithic solver would have to rebuild for this query:
    // the premise CNF plus everything learned so far. Deliberately not
    // Sat.numClauses() — that would also count earlier goals' retired
    // Tseitin definitions, which are dead weight, not reuse.
    Owner.Stats.ReusedClauses += PremiseClauses + Sat.numLearntClauses();

    Lit Activation = Lit::mk(Sat.newVar(), false);
    Sat.addClause(~Activation, Blaster.litFor(Goal));
    bool IsSat = Sat.solveUnderAssumptions({Activation});
    if (IsSat && M) {
      // Read the model before touching the clause DB again: adding the
      // retirement clause below unwinds the assignment.
      M->clear();
      std::unordered_set<std::string> SeenVars;
      auto Collect = [&](const BvFormulaRef &F) {
        for (const auto &[Name, Width] : collectVars(F))
          if (SeenVars.insert(Name).second)
            M->emplace_back(Name, Blaster.modelValue(Name, Width));
      };
      Collect(Goal);
      for (const BvFormulaRef &P : Premises)
        Collect(P);
    }
    // Retire the activation literal: its guard clauses are permanently
    // satisfied and the variable never branches again.
    Sat.addClause(~Activation);

    auto End = std::chrono::steady_clock::now();
    uint64_t Micros = uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(End - Start)
            .count());
    SolverStats &St = Owner.Stats;
    ++St.Queries;
    St.TotalMicros += Micros;
    St.MaxMicros = std::max(St.MaxMicros, Micros);
    St.QueryMicros.push_back(Micros);
    // Record per-query growth, not the cumulative instance size: the
    // monolithic path records a fresh instance per query, so only the
    // delta keeps TotalSatVars/Queries meaningful across backends.
    St.TotalSatVars += Sat.numVars() - ReportedVars;
    St.TotalSatClauses += Sat.numClauses() - ReportedClauses;
    ReportedVars = Sat.numVars();
    ReportedClauses = Sat.numClauses();
    if (IsSat) {
      ++St.SatAnswers;
      return SatResult::Sat;
    }
    ++St.UnsatAnswers;
    return SatResult::Unsat;
  }

private:
  BitBlastSolver &Owner;
  SatSolver Sat;
  BitBlaster Blaster;
  std::unordered_set<std::string> AssertedKeys;
  std::vector<BvFormulaRef> Premises; ///< For model reconstruction.
  size_t PremiseClauses = 0; ///< CNF clauses contributed by premises.
  size_t ReportedVars = 0;   ///< Instance size already counted into
  size_t ReportedClauses = 0; ///< TotalSatVars/TotalSatClauses.
};

std::unique_ptr<SmtSolver::IncrementalSession> BitBlastSolver::openSession() {
  // A DRUP proof must cover one self-contained solve to be replayable by
  // DratChecker, so certification falls back to monolithic queries.
  if (CertifyUnsat)
    return SmtSolver::openSession();
  ++Stats.SessionsOpened;
  return std::make_unique<Session>(*this);
}

SatResult BitBlastSolver::checkSat(const BvFormulaRef &F, Model *M) {
  auto Start = std::chrono::steady_clock::now();

  SatSolver Sat;
  DratProof Proof;
  if (CertifyUnsat)
    Sat.setProofLog(&Proof);
  BitBlaster Blaster(Sat);
  Blaster.assertFormula(F);
  bool IsSat = Sat.solve();

  if (!IsSat && CertifyUnsat) {
    auto ProofStart = std::chrono::steady_clock::now();
    DratChecker Checker;
    std::string Error;
    if (!Checker.check(Proof, &Error)) {
      // A proof that does not replay means the solver's UNSAT answer is
      // unsubstantiated — exactly the soundness hole certification exists
      // to close. There is no meaningful recovery.
      std::fprintf(stderr, "leapfrog: DRUP proof replay failed: %s\n",
                   Error.c_str());
      std::abort();
    }
    auto ProofEnd = std::chrono::steady_clock::now();
    ++Stats.CertifiedUnsat;
    Stats.ProofLemmas += Proof.Lemmas.size();
    Stats.ProofMicros += uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(ProofEnd -
                                                              ProofStart)
            .count());
  }

  auto End = std::chrono::steady_clock::now();
  uint64_t Micros = uint64_t(
      std::chrono::duration_cast<std::chrono::microseconds>(End - Start)
          .count());
  ++Stats.Queries;
  Stats.TotalMicros += Micros;
  Stats.MaxMicros = std::max(Stats.MaxMicros, Micros);
  Stats.QueryMicros.push_back(Micros);
  Stats.TotalSatVars += Sat.numVars();
  Stats.TotalSatClauses += Sat.numClauses();

  if (!IsSat) {
    ++Stats.UnsatAnswers;
    return SatResult::Unsat;
  }
  ++Stats.SatAnswers;
  if (M) {
    M->clear();
    for (const auto &[Name, Width] : collectVars(F))
      M->emplace_back(Name, Blaster.modelValue(Name, Width));
  }
  return SatResult::Sat;
}

SmtSolver &smt::defaultSolver() {
  static BitBlastSolver Solver;
#ifndef NDEBUG
  // The shared instance (stats, sessions) is deliberately unsynchronized;
  // now that sessions hold long-lived solver state this is enforced, not
  // just documented. The check deliberately pins ownership to the first
  // calling thread forever — strictly stronger than "no concurrent use",
  // because sequential cross-thread handoff cannot be distinguished from
  // a race without synchronization that the release build doesn't pay
  // for. Programs that check from more than one thread (even one at a
  // time) must construct their own BitBlastSolver and pass it via
  // core::CheckOptions::Solver.
  static const std::thread::id Owner = std::this_thread::get_id();
  assert(std::this_thread::get_id() == Owner &&
         "defaultSolver() used from a second thread; construct per-thread "
         "BitBlastSolver instances instead");
#endif
  return Solver;
}
