//===- Solver.cpp - SMT solving facade ------------------------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"

#include "obs/Clock.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "smt/BitBlast.h"
#include "smt/Drat.h"
#include "smt/ProofLog.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>
#include <unordered_set>

using namespace leapfrog;
using namespace leapfrog::smt;

bool SmtSolver::isValid(const BvFormulaRef &F, Model *Counterexample) {
  return checkSat(BvFormula::mkNot(F), Counterexample) == SatResult::Unsat;
}

void SolverStats::merge(const SolverStats &O) {
  Queries += O.Queries;
  SatAnswers += O.SatAnswers;
  UnsatAnswers += O.UnsatAnswers;
  RoundTrips += O.RoundTrips;
  TotalSatVars += O.TotalSatVars;
  TotalSatClauses += O.TotalSatClauses;
  TotalMicros += O.TotalMicros;
  MaxMicros = std::max(MaxMicros, O.MaxMicros);
  QueryMicros.insert(QueryMicros.end(), O.QueryMicros.begin(),
                     O.QueryMicros.end());
  CertifiedUnsat += O.CertifiedUnsat;
  ProofLemmas += O.ProofLemmas;
  ProofMicros += O.ProofMicros;
  SessionsOpened += O.SessionsOpened;
  SessionQueries += O.SessionQueries;
  SessionPremises += O.SessionPremises;
  PremiseCacheHits += O.PremiseCacheHits;
  ReusedClauses += O.ReusedClauses;
  ClausesDeleted += O.ClausesDeleted;
  ReduceDbRuns += O.ReduceDbRuns;
  // Peaks stay per-instance maxima (see the header): workers don't share
  // CDCL arenas, so the merged record answers "how hot did any one
  // session get", which is the quantity SessionLimits bounds.
  ArenaBytesPeak = std::max(ArenaBytesPeak, O.ArenaBytesPeak);
  PeakLearnts = std::max(PeakLearnts, O.PeakLearnts);
  SessionRestarts += O.SessionRestarts;
  PremisesGcd += O.PremisesGcd;
}

//===----------------------------------------------------------------------===//
// Incremental sessions
//===----------------------------------------------------------------------===//

/// The correct-by-construction fallback: keep the premises as formulas and
/// re-pose their conjunction through checkSat() on every query. Used for
/// backends without native incrementality; it inherits whatever per-query
/// certification or proof capture the backend's checkSat() provides.
class SmtSolver::MonolithicSession : public SmtSolver::IncrementalSession {
public:
  explicit MonolithicSession(SmtSolver &Owner) : Owner(Owner) {}

  void assertPremise(const BvFormulaRef &F) override {
    ++Owner.Stats.SessionPremises;
    Premises.push_back(F);
  }

  SatResult checkSatUnderPremises(const BvFormulaRef &Goal,
                                  Model *M) override {
    ++Owner.Stats.SessionQueries;
    BvFormulaRef Query = Goal;
    // Right-fold so the goal stays innermost; mkAnd folds constants.
    for (size_t I = Premises.size(); I > 0; --I)
      Query = BvFormula::mkAnd(Premises[I - 1], Query);
    return Owner.checkSat(Query, M);
  }

private:
  SmtSolver &Owner;
  std::vector<BvFormulaRef> Premises;
};

std::unique_ptr<SmtSolver::IncrementalSession>
SmtSolver::openSession(const SessionLimits &Limits) {
  // The fallback holds no solver state across queries, so there is
  // nothing for the limits to bound (and the memory counters stay zero).
  (void)Limits;
  ++Stats.SessionsOpened;
  return std::make_unique<MonolithicSession>(*this);
}

/// The incremental backend: one SatSolver + BitBlaster for the session's
/// lifetime. Premises are blasted once into persistent clauses; each goal
/// is blasted — with every emitted clause guarded by a fresh activation
/// literal — to a definition literal, solved under that single
/// assumption, and *hard-deleted* afterwards: the retirement unit ¬act
/// permanently satisfies the goal's guard, Tseitin definitions, and every
/// lemma derived from them (all of which carry ¬act), so simplify()
/// physically removes them and later queries never propagate over them.
/// Premise clauses and premise-implied lemmas survive; the learned-clause
/// DB is additionally bounded by the solver's reduceDB schedule, and a
/// tripped SessionLimits rebuilds the whole session from the cached
/// premise formulas.
class BitBlastSolver::Session : public SmtSolver::IncrementalSession {
public:
  Session(BitBlastSolver &Owner, const SessionLimits &Limits)
      : Owner(Owner), Limits(Limits),
        // Per-goal proof slices are only sound under the activation-guard
        // discipline — every goal clause must carry ¬act so the slice's
        // model-extension argument holds — so certification and capture
        // force hard retirement even when the ablation knob turned it off.
        HardRetire(Owner.SessionHardRetire || Owner.CertifyUnsat ||
                   Owner.CaptureLog != nullptr) {
    if (Owner.CaptureLog)
      Stream = &Owner.CaptureLog->newStream();
    else if (Owner.CertifyUnsat)
      Validator = std::make_unique<StreamingProofChecker>();
    rebuild();
  }

  ~Session() override { harvestSatStats(); }

  void assertPremise(const BvFormulaRef &F) override {
    if (F->kind() == BvFormula::Kind::True)
      return;
    // Structural-hash cache: a conjunct that renders identically is the
    // same CNF; re-blasting it would only duplicate clauses.
    if (!AssertedKeys.insert(F->str()).second) {
      ++Owner.Stats.PremiseCacheHits;
      return;
    }
    ++Owner.Stats.SessionPremises;
    Premises.push_back(F);
    blastPremise(F);
  }

  SatResult checkSatUnderPremises(const BvFormulaRef &Goal,
                                  Model *M) override {
    obs::ScopedSpan Span("solver.query", "solver");
    obs::StopWatch Watch;
    ++Owner.Stats.SessionQueries;
    // Clauses a monolithic solver would have to rebuild for this query:
    // the premise CNF plus everything learned so far. Retired goals'
    // clauses are hard-deleted, so numClauses() no longer hides dead
    // weight — but the learnt count is still the honest reuse figure.
    Owner.Stats.ReusedClauses += PremiseClauses + Sat->numLearntClauses();

    size_t ClausesAtStart = Sat->numClauses();
    Lit Activation = Lit::mk(Sat->newVar(), false);
    // The goal marker precedes every clause of the goal's scope, so a
    // checker sees the activation variable declared before any event
    // mentions it (it is fresh by construction: newVar() indices are
    // monotone, so no earlier event can reference it).
    uint64_t GoalId = 0;
    if (Stream)
      GoalId = Stream->goalBegin(Activation.var());
    // Guarded blast: every clause the goal contributes carries ¬act and
    // is therefore deletable at retirement. The blaster cache entries
    // created under the guard encode act-conditional definitions and are
    // evicted when the scope pops (after retirement, below).
    if (HardRetire)
      Blaster->pushGuard(Activation);
    Lit GoalLit = Blaster->litFor(Goal);
    Sat->addClause(~Activation, GoalLit);
    bool IsSat = Sat->solveUnderAssumptions({Activation});
    ++Owner.Stats.RoundTrips;
    // An interrupted solve derived nothing: its false is an abandonment,
    // not an UNSAT, so closing a proof slice from it would be unsound.
    // Interruption is a portfolio-race mechanism and the portfolio
    // backend refuses proof capture, so the two never legitimately meet.
    bool WasInterrupted = Sat->interrupted();
    assert(!(WasInterrupted && (Stream || Validator)) &&
           "interrupted solve under proof capture");
    // The goal-end marker must precede the retirement unit below: a
    // checker validates the UNSAT core against the database as of the
    // answer, and the retirement unit {¬act} is only sound input *after*
    // the goal has been closed (it would otherwise trivialize the slice).
    if ((Stream || Validator) && !WasInterrupted)
      finishGoalProof(IsSat, GoalId);
    if (IsSat && M) {
      // Read the model before touching the clause DB again: adding the
      // retirement clause below unwinds the assignment.
      M->clear();
      std::unordered_set<std::string> SeenVars;
      auto Collect = [&](const BvFormulaRef &F) {
        for (const auto &[Name, Width] : collectVars(F))
          if (SeenVars.insert(Name).second)
            M->emplace_back(Name, Blaster->modelValue(Name, Width));
      };
      Collect(Goal);
      for (const BvFormulaRef &P : Premises)
        Collect(P);
    }
    // Retire the activation literal. With hard retirement, ¬act is a
    // level-0 fact that permanently satisfies every clause the goal
    // contributed — its encoding plus any lemma whose derivation touched
    // it — so all of them are deletable. The purge itself is *batched*:
    // simplify() costs a full database scan plus a watcher rebuild, so
    // running it per query would dominate premise-heavy sessions.
    // Retired clauses are only ever skipped-over dead weight (their ¬act
    // watch never fires), so deferring deletion trades bounded slack for
    // amortized O(1) retirement.
    Sat->addClause(~Activation);
    if (HardRetire) {
      PendingDead += Sat->numClauses() - std::min(Sat->numClauses(),
                                                  ClausesAtStart);
      size_t LiveEstimate = Sat->numClauses() - std::min(PendingDead,
                                                         Sat->numClauses());
      if (PendingDead >= std::max(Owner.SessionPurgeBatch, LiveEstimate / 4)) {
        Sat->simplify();
        PendingDead = 0;
      }
      Blaster->popGuardAndEvict();
    }

    uint64_t Micros = Watch.elapsedMicros();
    static obs::Histogram &SolveLatency =
        obs::metrics().histogram("smt.solve_micros");
    SolveLatency.observe(Micros);
    SolverStats &St = Owner.Stats;
    ++St.Queries;
    St.TotalMicros += Micros;
    St.MaxMicros = std::max(St.MaxMicros, Micros);
    St.QueryMicros.push_back(Micros);
    // Record per-query growth, not the cumulative instance size: the
    // monolithic path records a fresh instance per query, so only the
    // delta keeps TotalSatVars/Queries meaningful across backends.
    // Deletion can shrink the instance between measurements; a shrink is
    // simply zero growth.
    if (Sat->numVars() > ReportedVars)
      St.TotalSatVars += Sat->numVars() - ReportedVars;
    if (Sat->numClauses() > ReportedClauses)
      St.TotalSatClauses += Sat->numClauses() - ReportedClauses;
    ReportedVars = Sat->numVars();
    ReportedClauses = Sat->numClauses();
    harvestSatStats();
    SatResult Result = IsSat ? SatResult::Sat : SatResult::Unsat;
    if (IsSat)
      ++St.SatAnswers;
    else
      ++St.UnsatAnswers;
    maybeRestart();
    return Result;
  }

  /// Batched goals share the live premise CNF and are resolved by a
  /// *disjunctive refinement loop*: each goal gets its own activation
  /// literal a_i with a_i ⇒ g_i, and each physical round solves under one
  /// fresh selector B asserting B ⇒ ⋁(pending a_i). An UNSAT round's
  /// failed-assumption core (⊆ {B}, or empty when the premises themselves
  /// conflict) proves premises ∧ ⋁a_i unsatisfiable — and since a_i only
  /// *enables* its goal (any model of premises ∧ g_i extends to one with
  /// a_i true and the others false), that attributes Unsat to every
  /// pending goal in a single round-trip. A SAT round's model has a_i
  /// true for at least one pending goal, and every such a_i forces g_i,
  /// so all of them are Sat; they retire and the loop refines on the
  /// rest. Worst case is one round per goal (exactly the unbatched cost);
  /// the checker's entailment-heavy workload — most goals Unsat — is one
  /// round total.
  void checkSatBatch(const std::vector<BvFormulaRef> &Goals,
                     std::vector<SatResult> &Out) override {
    // Per-goal proof slices need one activation scope per goal, and the
    // soft-retirement ablation has no guards at all — both degrade to the
    // per-goal path so answers, certificates and retirement behavior stay
    // byte-identical to unbatched solving.
    if (Goals.size() < 2 || Stream || Validator || !HardRetire) {
      Out.assign(Goals.size(), SatResult::Sat);
      for (size_t I = 0; I < Goals.size(); ++I)
        Out[I] = checkSatUnderPremises(Goals[I], nullptr);
      return;
    }
    obs::ScopedSpan Span("solver.batch", "solver");
    obs::StopWatch Watch;
    SolverStats &St = Owner.Stats;
    Out.assign(Goals.size(), SatResult::Sat);
    size_t ClausesAtStart = Sat->numClauses();
    // Each goal is still one logical query reusing the same live state a
    // monolithic solver would rebuild.
    St.SessionQueries += Goals.size();
    St.ReusedClauses +=
        Goals.size() * (PremiseClauses + Sat->numLearntClauses());
    // Blast every goal under its own (non-nesting) guard scope: the
    // emitted clauses persist beyond the pop — only blaster cache entries
    // are evicted — and all of them carry ¬a_i, so retirement below
    // deletes them exactly as in the per-goal path.
    std::vector<Lit> Acts(Goals.size());
    for (size_t I = 0; I < Goals.size(); ++I) {
      Acts[I] = Lit::mk(Sat->newVar(), false);
      Blaster->pushGuard(Acts[I]);
      Lit GoalLit = Blaster->litFor(Goals[I]);
      Sat->addClause(~Acts[I], GoalLit);
      Blaster->popGuardAndEvict();
    }
    std::vector<char> Resolved(Goals.size(), 0);
    std::vector<Lit> Selectors;
    size_t Pending = Goals.size();
    while (Pending > 0) {
      Lit B = Lit::mk(Sat->newVar(), false);
      Selectors.push_back(B);
      std::vector<Lit> Disj;
      Disj.push_back(~B);
      for (size_t I = 0; I < Goals.size(); ++I)
        if (!Resolved[I])
          Disj.push_back(Acts[I]);
      Sat->addClause(std::move(Disj));
      bool RoundSat = Sat->solveUnderAssumptions({B});
      ++St.RoundTrips;
      if (Sat->interrupted())
        break; // Abandoned race: every remaining answer is garbage and
               // the caller (the portfolio loser) discards the batch.
      if (!RoundSat) {
        for (size_t I = 0; I < Goals.size(); ++I)
          if (!Resolved[I]) {
            Resolved[I] = 1;
            Out[I] = SatResult::Unsat;
            ++St.UnsatAnswers;
          }
        Pending = 0;
        break;
      }
      // Read the whole model before touching the clause DB: retirement
      // units unwind the assignment.
      std::vector<size_t> Newly;
      for (size_t I = 0; I < Goals.size(); ++I)
        if (!Resolved[I] && Sat->modelValue(Acts[I].var()))
          Newly.push_back(I);
      assert(!Newly.empty() && "SAT round must satisfy a pending selector");
      for (size_t I : Newly) {
        Resolved[I] = 1;
        Out[I] = SatResult::Sat;
        ++St.SatAnswers;
        Sat->addClause(~Acts[I]);
        --Pending;
      }
    }
    // Retire everything the batch allocated: unsat-attributed goals'
    // activations and every round selector become level-0 facts whose
    // guarded clauses the next batched simplify() physically deletes.
    for (size_t I = 0; I < Goals.size(); ++I)
      if (!Resolved[I] || Out[I] == SatResult::Unsat)
        Sat->addClause(~Acts[I]);
    for (Lit B : Selectors)
      Sat->addClause(~B);
    PendingDead +=
        Sat->numClauses() - std::min(Sat->numClauses(), ClausesAtStart);
    size_t LiveEstimate =
        Sat->numClauses() - std::min(PendingDead, Sat->numClauses());
    if (PendingDead >= std::max(Owner.SessionPurgeBatch, LiveEstimate / 4)) {
      Sat->simplify();
      PendingDead = 0;
    }

    uint64_t Micros = Watch.elapsedMicros();
    static obs::Histogram &SolveLatency =
        obs::metrics().histogram("smt.solve_micros");
    SolveLatency.observe(Micros);
    St.Queries += Goals.size();
    St.TotalMicros += Micros;
    // The batch is one physical solve covering N queries: its full
    // latency is the honest MaxMicros candidate, while QueryMicros gets
    // each goal's amortized share so percentile math stays per-goal.
    St.MaxMicros = std::max(St.MaxMicros, Micros);
    uint64_t Share = Micros / Goals.size();
    for (size_t I = 0; I < Goals.size(); ++I)
      St.QueryMicros.push_back(Share);
    if (Sat->numVars() > ReportedVars)
      St.TotalSatVars += Sat->numVars() - ReportedVars;
    if (Sat->numClauses() > ReportedClauses)
      St.TotalSatClauses += Sat->numClauses() - ReportedClauses;
    ReportedVars = Sat->numVars();
    ReportedClauses = Sat->numClauses();
    harvestSatStats();
    maybeRestart();
  }

private:
  /// Closes the current goal in the proof stream (or in the inline
  /// validator): on UNSAT the core is the negation of the failed
  /// assumptions — with the session's single activation assumption that
  /// is {¬act}, or empty when the database itself became unsatisfiable —
  /// and in validate mode any accumulated stream failure aborts here,
  /// matching the one-shot CertifyUnsat contract.
  void finishGoalProof(bool IsSat, uint64_t GoalId) {
    if (IsSat) {
      if (Stream)
        Stream->goalEndSat(GoalId);
    } else {
      std::vector<Lit> Core;
      for (Lit A : Sat->failedAssumptions())
        Core.push_back(~A);
      if (Stream)
        Stream->goalEndUnsat(GoalId, std::move(Core));
      else
        Validator->goalEndUnsat(Core);
    }
    if (!Validator)
      return;
    if (!Validator->ok()) {
      std::fprintf(stderr,
                   "leapfrog: session DRUP slice validation failed: %s\n",
                   Validator->error().c_str());
      std::abort();
    }
    const StreamingProofChecker::Stats &PS = Validator->stats();
    SolverStats &St = Owner.Stats;
    St.ProofLemmas += PS.LemmasChecked - HarvestedProofLemmas;
    St.ProofMicros += PS.Micros - HarvestedProofMicros;
    HarvestedProofLemmas = PS.LemmasChecked;
    HarvestedProofMicros = PS.Micros;
    if (!IsSat)
      ++St.CertifiedUnsat;
  }

  /// Blasts one premise into the live solver, timing it into TotalMicros:
  /// premise blasting is real solver-side work the monolithic path pays
  /// per query, so the A/B benches must see it (it has no QueryMicros
  /// entry — it belongs to no single query, which is the whole point).
  void blastPremise(const BvFormulaRef &F) {
    obs::ScopedSpan Span("solver.blast_premise", "solver");
    obs::ScopedMicros Timer(Owner.Stats.TotalMicros);
    size_t Before = Sat->numClauses();
    Blaster->assertFormula(F);
    PremiseClauses += Sat->numClauses() - Before;
  }

  /// (Re)creates the solver + blaster and re-blasts every cached premise.
  /// Answers are unchanged by construction: the rebuilt solver decides
  /// against exactly the same premise conjunction, minus the learned
  /// clauses (which are consequences, never constraints).
  void rebuild() {
    harvestSatStats();
    // A rebuild starts a fresh solver incarnation: the stream (and the
    // inline validator's database) must reset before the re-blasted
    // premises arrive as new inputs.
    if (Built) {
      if (Stream)
        Stream->restart();
      if (Validator)
        Validator->restart();
    }
    Sat = std::make_unique<SatSolver>();
    Sat->setReducePolicy(Owner.SessionReduce);
    // Portfolio cancellation: the owner's Stop flag reaches every CDCL
    // incarnation this session ever builds.
    Sat->setInterruptFlag(&Owner.Stop);
    if (Stream)
      Sat->setProofSink(Stream);
    else if (Validator)
      Sat->setProofSink(Validator.get());
    Blaster = std::make_unique<BitBlaster>(*Sat);
    AssertedKeys.clear();
    PremiseClauses = 0;
    PendingDead = 0;
    ReportedVars = 0;
    ReportedClauses = 0;
    HarvestedDeleted = 0;
    HarvestedReduceRuns = 0;
    for (const BvFormulaRef &P : Premises) {
      AssertedKeys.insert(P->str());
      blastPremise(P);
    }
    Built = true;
  }

  /// Folds the live SatSolver's memory counters into the owner's stats:
  /// totals as deltas since the last harvest, peaks as running maxima.
  void harvestSatStats() {
    if (!Sat)
      return;
    const SatSolver::Stats &SS = Sat->stats();
    SolverStats &St = Owner.Stats;
    St.ClausesDeleted += SS.ClausesDeleted - HarvestedDeleted;
    St.ReduceDbRuns += SS.ReduceDbRuns - HarvestedReduceRuns;
    HarvestedDeleted = SS.ClausesDeleted;
    HarvestedReduceRuns = SS.ReduceDbRuns;
    St.ArenaBytesPeak = std::max(St.ArenaBytesPeak, SS.ArenaBytesPeak);
    St.PeakLearnts = std::max(St.PeakLearnts, SS.LearntPeak);
  }

  /// The SessionLimits backstop: when goal purging + reduceDB could not
  /// keep the session solver's peak under its bounds, drop the solver
  /// wholesale and rebuild from the premise formulas. Peaks are per
  /// solver incarnation (a rebuild starts fresh stats), so one oversized
  /// query does not doom every later one.
  void maybeRestart() {
    const SatSolver::Stats &SS = Sat->stats();
    bool Trip = (Limits.MaxLearnts != 0 &&
                 SS.LearntPeak > Limits.MaxLearnts) ||
                (Limits.MaxArenaBytes != 0 &&
                 SS.ArenaBytesPeak > Limits.MaxArenaBytes);
    if (!Trip)
      return;
    ++Owner.Stats.SessionRestarts;
    // Every premise group's blast state — its structural-hash entry and
    // CNF — is collected with the solver; the formulas survive and are
    // re-blasted by rebuild().
    Owner.Stats.PremisesGcd += AssertedKeys.size();
    rebuild();
  }

  BitBlastSolver &Owner;
  SessionLimits Limits;
  bool HardRetire; ///< Guard + purge retired goals (the default); off
                   ///< reproduces the grow-only PR-2 session behavior
                   ///< for A/B baselines.
  std::unique_ptr<SatSolver> Sat;
  std::unique_ptr<BitBlaster> Blaster;
  std::unordered_set<std::string> AssertedKeys;
  std::vector<BvFormulaRef> Premises; ///< For model reconstruction and
                                      ///< for rebuilding after a restart.
  size_t PremiseClauses = 0; ///< CNF clauses contributed by premises.
  size_t PendingDead = 0;    ///< Estimated retired clauses awaiting the
                             ///< next batched simplify().
  size_t ReportedVars = 0;   ///< Instance size already counted into
  size_t ReportedClauses = 0; ///< TotalSatVars/TotalSatClauses.
  uint64_t HarvestedDeleted = 0;    ///< SAT-stat prefixes already folded
  uint64_t HarvestedReduceRuns = 0; ///< into the owner's SolverStats.
  /// Proof capture/validation state. At most one of Stream/Validator is
  /// set: Stream records into the owner's attached ProofLog (offline
  /// checking, certificate serialization), Validator checks the same
  /// event stream inline and aborts on the first failure.
  ProofStream *Stream = nullptr;
  std::unique_ptr<StreamingProofChecker> Validator;
  bool Built = false; ///< rebuild() has run at least once (restarts since
                      ///< then are recorded as stream Restart events).
  uint64_t HarvestedProofLemmas = 0; ///< Validator-stat prefixes already
  uint64_t HarvestedProofMicros = 0; ///< folded into the owner's stats.
};

std::unique_ptr<SmtSolver::IncrementalSession>
BitBlastSolver::openSession(const SessionLimits &Limits) {
  // Certification no longer forces the monolithic fallback: the session
  // streams per-goal DRUP slices (validated inline, or recorded into the
  // attached proof log), so incremental solving and proofs coexist.
  ++Stats.SessionsOpened;
  return std::make_unique<Session>(*this, Limits);
}

SatResult BitBlastSolver::checkSat(const BvFormulaRef &F, Model *M) {
  obs::ScopedSpan Span("solver.query", "solver");
  obs::StopWatch Watch;

  SatSolver Sat;
  // One-shot solve: clause-DB reduction is a long-session tool, and with
  // proof logging the unreduced DB keeps DRUP replay deterministic-cheap.
  SatSolver::ReducePolicy OneShot;
  OneShot.Enabled = false;
  Sat.setReducePolicy(OneShot);
  Sat.setInterruptFlag(&Stop);
  DratProof Proof;
  if (CertifyUnsat || CaptureLog)
    Sat.setProofLog(&Proof);
  BitBlaster Blaster(Sat);
  Blaster.assertFormula(F);
  bool IsSat = Sat.solve();
  ++Stats.RoundTrips;
  // An interrupted false is an abandonment, not an UNSAT: certifying or
  // capturing it would validate a claim the solver never made. The
  // answer itself is garbage; the interrupting caller (portfolio)
  // discards it after checking interrupted().
  bool WasInterrupted = Sat.interrupted();

  if (!IsSat && CertifyUnsat && !WasInterrupted) {
    obs::StopWatch ProofWatch;
    DratChecker Checker;
    std::string Error;
    if (!Checker.check(Proof, &Error)) {
      // A proof that does not replay means the solver's UNSAT answer is
      // unsubstantiated — exactly the soundness hole certification exists
      // to close. There is no meaningful recovery.
      std::fprintf(stderr, "leapfrog: DRUP proof replay failed: %s\n",
                   Error.c_str());
      std::abort();
    }
    ++Stats.CertifiedUnsat;
    Stats.ProofLemmas += Proof.Lemmas.size();
    Stats.ProofMicros += ProofWatch.elapsedMicros();
  }

  if (!IsSat && CaptureLog && !WasInterrupted) {
    // Record the whole one-shot solve as a single unguarded goal: inputs
    // first, then the lemmas (RUP is monotone in the database, so the
    // lost interleaving with normalization-time lemmas is harmless), and
    // an empty core — an UNSAT solve always ends by logging the empty
    // lemma, so the replayed database is conflicting at the root.
    ProofStream &Str = CaptureLog->newStream();
    uint64_t Id = Str.goalBegin(/*ActVar=*/-1);
    for (const std::vector<Lit> &C : Proof.Inputs)
      Str.onInput(C);
    for (const std::vector<Lit> &C : Proof.Lemmas)
      Str.onLemma(C);
    Str.goalEndUnsat(Id, {});
  }

  uint64_t Micros = Watch.elapsedMicros();
  static obs::Histogram &SolveLatency =
      obs::metrics().histogram("smt.solve_micros");
  SolveLatency.observe(Micros);
  ++Stats.Queries;
  Stats.TotalMicros += Micros;
  Stats.MaxMicros = std::max(Stats.MaxMicros, Micros);
  Stats.QueryMicros.push_back(Micros);
  Stats.TotalSatVars += Sat.numVars();
  Stats.TotalSatClauses += Sat.numClauses();

  if (!IsSat) {
    ++Stats.UnsatAnswers;
    return SatResult::Unsat;
  }
  ++Stats.SatAnswers;
  if (M) {
    M->clear();
    for (const auto &[Name, Width] : collectVars(F))
      M->emplace_back(Name, Blaster.modelValue(Name, Width));
  }
  return SatResult::Sat;
}

std::unique_ptr<SmtSolver> BitBlastSolver::spawnWorker() {
  auto W = std::make_unique<BitBlastSolver>();
  W->CertifyUnsat = CertifyUnsat;
  W->SessionReduce = SessionReduce;
  W->SessionHardRetire = SessionHardRetire;
  W->SessionPurgeBatch = SessionPurgeBatch;
  return W;
}

SmtSolver &smt::defaultSolver() {
  static BitBlastSolver Solver;
#ifndef NDEBUG
  // The shared instance (stats, sessions) is deliberately unsynchronized;
  // now that sessions hold long-lived solver state this is enforced, not
  // just documented. The check deliberately pins ownership to the first
  // calling thread forever — strictly stronger than "no concurrent use",
  // because sequential cross-thread handoff cannot be distinguished from
  // a race without synchronization that the release build doesn't pay
  // for. Programs that check from more than one thread (even one at a
  // time) must construct their own BitBlastSolver and pass it via
  // core::CheckOptions::Solver — or use CheckOptions::Jobs, whose worker
  // threads get independent backends via SmtSolver::spawnWorker() (the
  // per-worker session contract; see "Threading contract" in
  // docs/ARCHITECTURE.md). On violation we print both thread ids before
  // failing: a bare assert cannot say *which* threads collided, and that
  // is the first thing the contract's debugger needs to know.
  static const std::thread::id Owner = std::this_thread::get_id();
  if (std::this_thread::get_id() != Owner) {
    std::ostringstream Msg;
    Msg << "leapfrog: defaultSolver() thread-ownership violation: the "
           "process-wide default solver is owned by the first thread that "
           "touched it (thread "
        << Owner << ") but was called from thread "
        << std::this_thread::get_id()
        << ".\nPer-worker session contract: every thread needs its own "
           "backend — construct a BitBlastSolver per thread (pass it via "
           "core::CheckOptions::Solver), or run the checker with "
           "CheckOptions::Jobs > 1, which spawns one backend + session "
           "set per worker (SmtSolver::spawnWorker; see 'Threading "
           "contract' in docs/ARCHITECTURE.md).\n";
    std::fputs(Msg.str().c_str(), stderr);
    assert(false && "defaultSolver() used from a second thread; see the "
                    "diagnostic above for both thread ids and the "
                    "per-worker session contract");
  }
#endif
  return Solver;
}
