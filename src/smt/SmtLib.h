//===- SmtLib.h - SMT-LIB2 pretty-printer -----------------------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes FOL(BV) formulas to SMT-LIB2 (QF_BV), the format the paper's
/// custom Coq plugin emits for Z3/CVC4/Boolector (§6.3). The in-repo
/// solver answers queries directly, but the printer lets every query be
/// exported and cross-checked against an external solver when one is
/// available, and is exercised by the test suite for syntactic fidelity.
///
/// Index translation: our bit 0 is the most significant bit, while
/// SMT-LIB's (_ extract i j) indexes from the least significant bit, so a
/// width-w term's inclusive slice [lo,hi] prints as
/// (_ extract (w-1-lo) (w-1-hi)).
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_SMT_SMTLIB_H
#define LEAPFROG_SMT_SMTLIB_H

#include "smt/BvFormula.h"

#include <string>

namespace leapfrog {
namespace smt {

/// Renders one term as an SMT-LIB2 s-expression.
std::string toSmtLibTerm(const BvTermRef &T);

/// Renders one formula as an SMT-LIB2 s-expression (sort Bool).
std::string toSmtLibFormula(const BvFormulaRef &F);

/// Renders a complete check-sat script: set-logic QF_BV, declare-const for
/// every free variable, a single assert, check-sat, and (optionally)
/// get-model.
std::string toSmtLibScript(const BvFormulaRef &F, bool GetModel = false);

/// Sanitizes a variable name into a legal SMT-LIB simple symbol (the
/// ConfRel compiler produces names like "h<mpls" that need quoting rules);
/// deterministic and injective for the names this project generates.
std::string sanitizeSymbol(const std::string &Name);

} // namespace smt
} // namespace leapfrog

#endif // LEAPFROG_SMT_SMTLIB_H
