//===- SmtLib.h - SMT-LIB2 pretty-printer -----------------------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes FOL(BV) formulas to SMT-LIB2 (QF_BV), the format the paper's
/// custom Coq plugin emits for Z3/CVC4/Boolector (§6.3), and parses the
/// replies external solvers send back. The in-repo solver answers queries
/// directly, but the printer + reply parser are what SmtLibSolver.h speaks
/// over its solver pipe, and the printer alone lets every query be
/// exported for offline cross-checking. Everything here is pure
/// string/AST work — no processes — so the parsing edge cases (malformed
/// models, overlong literals) are unit-testable without any solver binary.
///
/// Index translation: our bit 0 is the most significant bit, while
/// SMT-LIB's (_ extract i j) indexes from the least significant bit, so a
/// width-w term's inclusive slice [lo,hi] prints as
/// (_ extract (w-1-lo) (w-1-hi)).
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_SMT_SMTLIB_H
#define LEAPFROG_SMT_SMTLIB_H

#include "smt/BvFormula.h"

#include <string>
#include <utility>
#include <vector>

namespace leapfrog {
namespace smt {

/// Renders one term as an SMT-LIB2 s-expression.
std::string toSmtLibTerm(const BvTermRef &T);

/// Renders one formula as an SMT-LIB2 s-expression (sort Bool).
std::string toSmtLibFormula(const BvFormulaRef &F);

/// Renders a complete check-sat script: set-logic QF_BV, declare-const for
/// every free variable, a single assert, check-sat, and (optionally)
/// get-model.
std::string toSmtLibScript(const BvFormulaRef &F, bool GetModel = false);

/// Sanitizes a variable name into a legal SMT-LIB simple symbol (the
/// ConfRel compiler produces names like "h<mpls" that need quoting rules).
/// Characters outside [A-Za-z0-9_.-] — and a leading digit, which SMT-LIB
/// forbids — are escaped as !xx hex codes ('!' itself is always escaped,
/// so every '!' in the output begins an escape). Deterministic and
/// injective for every input, which is what lets model replies be mapped
/// back to the original variable names.
std::string sanitizeSymbol(const std::string &Name);

/// Inverts sanitizeSymbol: decodes !xx hex escapes, recovering the
/// original variable name. For any name N,
/// desanitizeSymbol(sanitizeSymbol(N)) == N; malformed escapes (a '!' not
/// followed by two hex digits) are left verbatim.
std::string desanitizeSymbol(const std::string &Symbol);

//===----------------------------------------------------------------------===//
// Reply parsing (the receive side of the solver pipe)
//===----------------------------------------------------------------------===//

/// Incremental scanner delimiting one SMT-LIB message — a bare atom
/// ("sat", "success") or one balanced s-expression — in a character
/// stream, tracking paren depth across "string literals" (doubled-quote
/// escapes) and |quoted symbols|. Both ends of the solver pipe share it:
/// ExtProcess::readReply frames solver replies with it, and the SMT-LIB
/// shim frames incoming commands — one lexical definition, so the two
/// ends cannot drift apart.
class SExprScanner {
public:
  enum class Step {
    Skip,       ///< Leading whitespace before the message started.
    Continue,   ///< Character consumed; message not yet complete.
    Done,       ///< Character consumed and it completes the message.
    DoneBefore, ///< The message completed *before* this character (an
                ///< atom ends at whitespace, which is not part of it).
  };

  /// Advances the scanner by one character.
  Step feed(char C);

  /// True while a bare atom is being read — end-of-input then legally
  /// terminates it (a solver may exit without a trailing newline).
  bool atomInProgress() const { return Started && IsAtom; }

  void reset() { *this = SExprScanner(); }

private:
  bool Started = false, IsAtom = false;
  bool InString = false, InQuotedSym = false;
  int Depth = 0;
};

/// A parsed SMT-LIB s-expression: an atom or a list. |quoted symbols| are
/// atoms with the bars stripped; "string literals" keep their quotes so
/// consumers can tell them from symbols.
struct SExpr {
  bool IsAtom = true;
  std::string Atom;        ///< Valid when IsAtom.
  std::vector<SExpr> List; ///< Valid when !IsAtom.
};

/// Parses one s-expression from \p Text starting at \p Pos (advanced past
/// the expression on success). Returns false on malformed input —
/// unbalanced parentheses, an unterminated string/quoted symbol, or
/// nothing but whitespace.
bool parseSExpr(const std::string &Text, size_t &Pos, SExpr &Out);

/// Parses a bit-vector literal atom into \p Out: "#b0101" (exact width),
/// "#x2a" (width 4·digits), or the indexed form handled by
/// parseModelReply. Returns false for anything else.
bool parseBvLiteral(const std::string &Atom, Bitvector &Out);

/// Parses a solver's get-model reply into (sanitized-name, value) pairs.
/// Accepts both reply shapes in the wild — z3's `(model (define-fun …) …)`
/// and the bare `((define-fun …) …)` of the SMT-LIB spec / cvc5 — and the
/// three value syntaxes `#b…`, `#x…`, and `(_ bvN w)`. Bit-vector sorts
/// must agree with their values: a `#b` literal of the wrong width, a
/// `#x` literal on a width not divisible by four, a decimal value that
/// needs more than w bits, or a negative decimal all fail the parse.
/// Entries of non-bit-vector sorts (e.g. the Bool activation literals the
/// incremental sessions assert) are skipped, not errors. Returns false
/// and fills \p Error (if non-null) on malformed input; names are
/// returned exactly as the solver printed them (still sanitized — see
/// desanitizeSymbol).
bool parseModelReply(const std::string &Text,
                     std::vector<std::pair<std::string, Bitvector>> &Out,
                     std::string *Error = nullptr);

} // namespace smt
} // namespace leapfrog

#endif // LEAPFROG_SMT_SMTLIB_H
