//===- BitBlast.h - FOL(BV) to CNF translation ------------------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tseitin-style bit-blasting of FOL(BV) formulas into CNF for the CDCL
/// solver. Together with Sat.h this forms the in-repo replacement for the
/// external SMT solvers of paper §6.3: the Leapfrog verification
/// conditions fall in the quantifier-free theory of bitvectors restricted
/// to concatenation, extraction and equality, so bit-blasting yields CNF
/// whose structure is dominated by bit-equivalence chains.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_SMT_BITBLAST_H
#define LEAPFROG_SMT_BITBLAST_H

#include "smt/BvFormula.h"
#include "smt/Sat.h"

#include <unordered_map>

namespace leapfrog {
namespace smt {

/// Translates formulas into a SatSolver instance, sharing variable
/// encodings across multiple assertions, and reads models back.
class BitBlaster {
public:
  explicit BitBlaster(SatSolver &Solver) : Solver(Solver) {}

  /// Asserts that \p F holds. Uses polarity-aware encoding for the common
  /// shapes (top-level conjunction, positive/negative equalities) and full
  /// Tseitin for the rest.
  void assertFormula(const BvFormulaRef &F);

  /// Blasts \p F to a literal equivalent to it (full Tseitin) *without*
  /// asserting it. The definition clauses added are polarity-neutral
  /// equivalences over fresh variables, so they never constrain the
  /// original variables; incremental sessions use this to guard a query
  /// behind an activation literal (addClause(~act, litFor(F)) asserts
  /// act → F, solved under the assumption act).
  Lit litFor(const BvFormulaRef &F);

  /// Reads the value of variable \p Name (of \p Width bits) from the SAT
  /// model; bits never mentioned in any assertion are reported as 0.
  /// Valid only after SatSolver::solve() returned true.
  Bitvector modelValue(const std::string &Name, size_t Width);

private:
  /// One bit of a blasted term: either a known constant or a SAT literal.
  struct BBit {
    bool IsConst = false;
    bool ConstVal = false;
    Lit L = Lit::undef();

    static BBit mkConst(bool V) { return BBit{true, V, Lit::undef()}; }
    static BBit mkLit(Lit L) { return BBit{false, false, L}; }
  };

  std::vector<BBit> blastTerm(const BvTermRef &T);
  Lit blastFormula(const BvFormulaRef &F);
  Lit freshLit();
  Lit litForVarBit(const std::string &Name, size_t Width, size_t BitIndex);

  /// Literal asserted true at level 0 (created lazily) so constants can be
  /// uniformly represented as literals when Tseitin needs them.
  Lit trueLit();
  Lit litOf(const BBit &B) {
    if (!B.IsConst)
      return B.L;
    return B.ConstVal ? trueLit() : ~trueLit();
  }

  SatSolver &Solver;
  std::unordered_map<std::string, std::vector<Var>> VarBits;
  std::unordered_map<const BvFormula *, Lit> FormulaCache;
  std::unordered_map<const BvTerm *, std::vector<BBit>> TermCache;
  /// Every formula ever given to assertFormula/litFor. The two caches
  /// above key on raw node addresses, so the blaster must keep its roots
  /// (and thereby all their subterms) alive: a freed-and-reallocated node
  /// would otherwise alias a stale cache entry. Long-lived incremental
  /// sessions hold one BitBlaster across many formulas, making this
  /// pinning load-bearing rather than belt-and-braces.
  std::vector<BvFormulaRef> PinnedRoots;
  Lit TrueL = Lit::undef();
};

} // namespace smt
} // namespace leapfrog

#endif // LEAPFROG_SMT_BITBLAST_H
