//===- BitBlast.h - FOL(BV) to CNF translation ------------------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tseitin-style bit-blasting of FOL(BV) formulas into CNF for the CDCL
/// solver. Together with Sat.h this forms the in-repo replacement for the
/// external SMT solvers of paper §6.3: the Leapfrog verification
/// conditions fall in the quantifier-free theory of bitvectors restricted
/// to concatenation, extraction and equality, so bit-blasting yields CNF
/// whose structure is dominated by bit-equivalence chains.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_SMT_BITBLAST_H
#define LEAPFROG_SMT_BITBLAST_H

#include "smt/BvFormula.h"
#include "smt/Sat.h"

#include <unordered_map>

namespace leapfrog {
namespace smt {

/// Translates formulas into a SatSolver instance, sharing variable
/// encodings across multiple assertions, and reads models back.
class BitBlaster {
public:
  explicit BitBlaster(SatSolver &Solver) : Solver(Solver) {}

  /// Asserts that \p F holds. Uses polarity-aware encoding for the common
  /// shapes (top-level conjunction, positive/negative equalities) and full
  /// Tseitin for the rest.
  void assertFormula(const BvFormulaRef &F);

  /// Blasts \p F to a literal equivalent to it (full Tseitin) *without*
  /// asserting it. The definition clauses added are polarity-neutral
  /// equivalences over fresh variables, so they never constrain the
  /// original variables; incremental sessions use this to guard a query
  /// behind an activation literal (addClause(~act, litFor(F)) asserts
  /// act → F, solved under the assumption act).
  Lit litFor(const BvFormulaRef &F);

  /// Reads the value of variable \p Name (of \p Width bits) from the SAT
  /// model; bits never mentioned in any assertion are reported as 0.
  /// Valid only after SatSolver::solve() returned true.
  Bitvector modelValue(const std::string &Name, size_t Width);

  /// Opens a guarded scope: until popGuardAndEvict(), every clause the
  /// blaster emits is weakened with ~Guard, so the whole blast asserts
  /// Guard → (encoding) and becomes permanently satisfied — and hard-
  /// deletable via SatSolver::simplify() — once ~Guard is asserted.
  /// Incremental sessions wrap each goal query in such a scope.
  ///
  /// Cache discipline: entries added to FormulaCache/TermCache during the
  /// scope encode definitions that are *conditional on Guard*, so they
  /// (and the roots pinned for them) are evicted when the scope pops;
  /// entries created outside any scope are unconditional and persist.
  /// Variable-bit literals persist either way — they carry no defining
  /// clauses and must stay stable for model reconstruction. Scopes do
  /// not nest.
  void pushGuard(Lit Guard);

  /// Ends the guarded scope and evicts its cache entries; returns how
  /// many entries (formula + term + pinned roots) were dropped.
  size_t popGuardAndEvict();

private:
  /// One bit of a blasted term: either a known constant or a SAT literal.
  struct BBit {
    bool IsConst = false;
    bool ConstVal = false;
    Lit L = Lit::undef();

    static BBit mkConst(bool V) { return BBit{true, V, Lit::undef()}; }
    static BBit mkLit(Lit L) { return BBit{false, false, L}; }
  };

  std::vector<BBit> blastTerm(const BvTermRef &T);
  Lit blastFormula(const BvFormulaRef &F);
  Lit freshLit();
  Lit litForVarBit(const std::string &Name, size_t Width, size_t BitIndex);

  /// All clause emission funnels through here so an active guard can be
  /// appended uniformly. trueLit() bypasses it: TrueL is a blaster-wide
  /// cache, so its defining unit must hold unconditionally.
  void emit(std::vector<Lit> C);
  void emit(Lit A) { emit(std::vector<Lit>{A}); }
  void emit(Lit A, Lit B) { emit(std::vector<Lit>{A, B}); }
  void emit(Lit A, Lit B, Lit C) { emit(std::vector<Lit>{A, B, C}); }

  /// Literal asserted true at level 0 (created lazily) so constants can be
  /// uniformly represented as literals when Tseitin needs them.
  Lit trueLit();
  Lit litOf(const BBit &B) {
    if (!B.IsConst)
      return B.L;
    return B.ConstVal ? trueLit() : ~trueLit();
  }

  SatSolver &Solver;
  std::unordered_map<std::string, std::vector<Var>> VarBits;
  std::unordered_map<const BvFormula *, Lit> FormulaCache;
  std::unordered_map<const BvTerm *, std::vector<BBit>> TermCache;
  /// Every formula ever given to assertFormula/litFor. The two caches
  /// above key on raw node addresses, so the blaster must keep its roots
  /// (and thereby all their subterms) alive: a freed-and-reallocated node
  /// would otherwise alias a stale cache entry. Long-lived incremental
  /// sessions hold one BitBlaster across many formulas, making this
  /// pinning load-bearing rather than belt-and-braces.
  std::vector<BvFormulaRef> PinnedRoots;
  Lit TrueL = Lit::undef();

  /// Guarded-scope state (see pushGuard()).
  bool GuardActive = false;
  Lit GuardLit = Lit::undef();
  std::vector<const BvFormula *> ScopedFormulas;
  std::vector<const BvTerm *> ScopedTerms;
  size_t ScopedRootsFrom = 0;
};

} // namespace smt
} // namespace leapfrog

#endif // LEAPFROG_SMT_BITBLAST_H
