//===- Drat.cpp - DRUP proof logging and checking --------------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "smt/Drat.h"

#include <algorithm>

using namespace leapfrog;
using namespace leapfrog::smt;

namespace {

/// DIMACS rendering of a literal: 1-based variable, negative when negated.
std::string dimacs(Lit L) {
  return std::to_string(L.negated() ? -(L.var() + 1) : L.var() + 1);
}

std::string clauseLine(const std::vector<Lit> &C) {
  std::string Out;
  for (Lit L : C) {
    Out += dimacs(L);
    Out += ' ';
  }
  Out += '0';
  return Out;
}

} // namespace

std::string DratProof::str() const {
  // The textual format lists only derived clauses; inputs live in the
  // DIMACS problem file. We render a comment header with the input count
  // so the output is self-describing.
  std::string Out = "c DRUP proof, " + std::to_string(Inputs.size()) +
                    " input clauses, " + std::to_string(Lemmas.size()) +
                    " lemmas\n";
  for (const std::vector<Lit> &L : Lemmas) {
    Out += clauseLine(L);
    Out += '\n';
  }
  return Out;
}

void DratChecker::growTo(Var V) {
  while (int(Assigns.size()) <= V) {
    Assigns.push_back(LBool::Undef);
    Watches.emplace_back();
    Watches.emplace_back();
  }
}

bool DratChecker::enqueue(Lit L) {
  LBool Val = value(L);
  if (Val == LBool::False)
    return false;
  if (Val == LBool::Undef) {
    Assigns[L.var()] = fromBool(!L.negated());
    Trail.push_back(L);
  }
  return true;
}

bool DratChecker::addClause(const std::vector<Lit> &C) {
  for (Lit L : C)
    growTo(L.var());
  if (C.empty()) {
    RootConflict = true;
    return false;
  }
  // Root-satisfied clauses still need watches: the satisfying assignment
  // is permanent, so they can never propagate, but keeping the database
  // uniform is simpler and the cost is negligible at our query sizes.
  if (C.size() == 1) {
    if (!enqueue(C[0])) {
      RootConflict = true;
      return false;
    }
    if (propagate()) {
      RootConflict = true;
      return false;
    }
    return true;
  }
  int Id = int(Clauses.size());
  Clauses.push_back(C);
  // Prefer watching non-false literals so the invariant "a watch is false
  // only if the clause is unit/conflicting" is established on entry.
  std::vector<Lit> &Stored = Clauses.back();
  size_t W = 0;
  for (size_t I = 0; I < Stored.size() && W < 2; ++I)
    if (value(Stored[I]) != LBool::False)
      std::swap(Stored[W++], Stored[I]);
  Watches[(~Stored[0]).index()].push_back(Id);
  Watches[(~Stored[1]).index()].push_back(Id);
  if (W < 2) {
    // Unit or conflicting under the root assignment.
    if (!enqueue(Stored[0]) || propagate()) {
      RootConflict = true;
      return false;
    }
  }
  return true;
}

bool DratChecker::propagate() {
  while (QueueHead < Trail.size()) {
    Lit P = Trail[QueueHead++];
    ++S.Propagations;
    std::vector<int> &WList = Watches[P.index()];
    size_t Keep = 0;
    for (size_t I = 0; I < WList.size(); ++I) {
      int Id = WList[I];
      std::vector<Lit> &C = Clauses[Id];
      if (C[0] == ~P)
        std::swap(C[0], C[1]);
      if (value(C[0]) == LBool::True) {
        WList[Keep++] = Id;
        continue;
      }
      bool FoundWatch = false;
      for (size_t K = 2; K < C.size(); ++K) {
        if (value(C[K]) != LBool::False) {
          std::swap(C[1], C[K]);
          Watches[(~C[1]).index()].push_back(Id);
          FoundWatch = true;
          break;
        }
      }
      if (FoundWatch)
        continue;
      WList[Keep++] = Id;
      if (!enqueue(C[0])) {
        for (size_t K = I + 1; K < WList.size(); ++K)
          WList[Keep++] = WList[K];
        WList.resize(Keep);
        QueueHead = Trail.size();
        return true;
      }
    }
    WList.resize(Keep);
  }
  return false;
}

bool DratChecker::lemmaIsRup(const std::vector<Lit> &Lemma) {
  // Assume the negation of every lemma literal on top of the root trail,
  // propagate, and demand a conflict. The trail above the saved mark is
  // rolled back afterwards; root-level facts persist.
  size_t TrailMark = Trail.size();
  size_t HeadMark = QueueHead;
  bool Conflict = false;
  for (Lit L : Lemma) {
    growTo(L.var());
    if (!enqueue(~L)) {
      // ~L is already false, i.e. L holds at root: the lemma is entailed
      // outright and the RUP check succeeds immediately. This also covers
      // tautological lemmas (x ∨ ¬x).
      Conflict = true;
      break;
    }
  }
  if (!Conflict)
    Conflict = propagate();
  for (size_t I = Trail.size(); I > TrailMark; --I)
    Assigns[Trail[I - 1].var()] = LBool::Undef;
  Trail.resize(TrailMark);
  QueueHead = HeadMark;
  return Conflict;
}

bool DratChecker::check(const DratProof &Proof, std::string *Error) {
  Clauses.clear();
  Watches.clear();
  Assigns.clear();
  Trail.clear();
  QueueHead = 0;
  RootConflict = false;
  S = Stats();

  for (const std::vector<Lit> &C : Proof.Inputs) {
    if (!addClause(C))
      return true; // Inputs alone are unsat by propagation; any proof works.
  }
  if (propagate())
    return true;

  for (size_t I = 0; I < Proof.Lemmas.size(); ++I) {
    const std::vector<Lit> &Lemma = Proof.Lemmas[I];
    ++S.LemmasChecked;
    if (Lemma.empty()) {
      // Terminal step: the database itself must propagate to conflict.
      // Since the trail is never rolled back past the root, a conflict
      // found while adding clauses or checking lemmas has already set
      // RootConflict; otherwise, re-propagating finds nothing new and the
      // claim is bogus.
      if (RootConflict || propagate())
        return true;
      if (Error)
        *Error = "lemma " + std::to_string(I) +
                 " is the empty clause, but the database does not "
                 "propagate to a conflict";
      return false;
    }
    if (!lemmaIsRup(Lemma)) {
      if (Error)
        *Error = "lemma " + std::to_string(I) + " (" + clauseLine(Lemma) +
                 ") is not RUP";
      return false;
    }
    if (!addClause(Lemma))
      return true; // Adding the lemma exposed a root conflict: unsat.
    if (propagate())
      return true;
  }
  if (Error)
    *Error = "proof contains no empty clause";
  return false;
}

bool smt::solveWithCheckedProof(size_t NumVars,
                                const std::vector<std::vector<Lit>> &Clauses,
                                DratProof *ProofOut) {
  SatSolver Solver;
  DratProof Proof;
  Solver.setProofLog(&Proof);
  for (size_t I = 0; I < NumVars; ++I)
    Solver.newVar();
  bool Ok = true;
  for (const std::vector<Lit> &C : Clauses)
    Ok = Solver.addClause(C) && Ok;
  bool IsSat = Ok && Solver.solve();
  if (!IsSat) {
    DratChecker Checker;
    std::string Error;
    bool Verified = Checker.check(Proof, &Error);
    assert(Verified && "solver claimed UNSAT but the DRUP proof failed");
    (void)Verified;
  }
  if (ProofOut)
    *ProofOut = std::move(Proof);
  return IsSat;
}
