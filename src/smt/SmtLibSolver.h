//===- SmtLibSolver.h - External SMT-LIB2 backends --------------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Out-of-process SMT solving behind the SmtSolver facade — the role
/// Z3/CVC4/Boolector play in the paper (§6.3), reached over a pipe-based
/// SMT-LIB2 REPL (ExtProcess.h + the SmtLib.h printer/reply parser).
/// Three pieces:
///
///  - SmtLibSolver: drives one external solver process. One-shot queries
///    are posed in a push/pop scope; incremental sessions mirror
///    SmtSolver::IncrementalSession onto the same process by guarding
///    each session's premises with a Boolean activation constant and
///    posing goals via push / assert / (check-sat-assuming (act)) / pop —
///    the same activation-literal discipline BitBlastSolver's sessions
///    use natively. Sat answers can read counterexample bit-vectors back
///    through get-model. Every external failure mode (binary not found,
///    crash/EOF, timeout, malformed reply) degrades gracefully: the query
///    is re-answered by an embedded in-repo BitBlastSolver and counted in
///    extStats(), so a missing solver binary never changes any verdict —
///    it only forfeits the cross-checking value.
///
///  - CrossCheckSolver: runs a reference backend and an external backend
///    on every query and hard-fails (configurable) on any sat/unsat
///    divergence — the end-to-end cross-check of the in-repo bit-blaster
///    that the ROADMAP's external-backend item asks for.
///
///  - createSolverBackend(): the backend factory behind
///    core::CheckOptions::Backend and the CLI's --backend flag
///    ("bitblast" | "smtlib:<cmd>" | "crosscheck[:<cmd>]").
///
/// Threading contract (docs/ARCHITECTURE.md): one external process
/// belongs to exactly one backend instance, and spawnWorker() gives every
/// worker of the parallel frontier engine its own SmtLibSolver — hence
/// its own process. Processes, pipes and sessions never cross threads.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_SMT_SMTLIBSOLVER_H
#define LEAPFROG_SMT_SMTLIBSOLVER_H

#include "smt/ExtProcess.h"
#include "smt/Solver.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace leapfrog {
namespace smt {

/// How to reach and talk to one external solver.
struct SmtLibConfig {
  /// The solver command; argv[0] is resolved through PATH. The solver
  /// must read SMT-LIB2 from stdin and reply on stdout (z3 needs "-in",
  /// cvc5 "--incremental"; see docs/SOLVERS.md for known-good lines).
  std::vector<std::string> Argv;
  /// Per-reply deadline. A check-sat that exceeds it kills the process
  /// and answers through the fallback — the facade has no "unknown".
  int QueryTimeoutMs = 60000;
  /// After this many process-level failures (spawn failure, crash,
  /// timeout, protocol error) the backend stops respawning and answers
  /// everything through the fallback.
  int MaxProcessFailures = 3;
  /// Fetch a model for *every* external sat answer (one extra get-model
  /// round-trip when the caller did not ask for one) and check it
  /// satisfies the query via evalFormula; a failing check demotes the
  /// answer to a protocol error and the in-repo fallback. This makes the
  /// sat direction trustless. Unsat answers have no cheap witness — use
  /// CrossCheckSolver (or the bitblast backend's DRUP certification) to
  /// remove trust there.
  bool ValidateModels = true;
  /// Print one stderr notice the first time a query falls back.
  bool WarnOnFallback = true;
};

/// An SmtSolver backend answering through an external SMT-LIB2 process.
class SmtLibSolver : public SmtSolver {
public:
  explicit SmtLibSolver(SmtLibConfig Config);
  ~SmtLibSolver() override;

  SatResult checkSat(const BvFormulaRef &F, Model *M) override;

  /// Incremental sessions share this backend's one process, namespaced by
  /// a per-session variable prefix and a per-session Boolean activation
  /// constant; see the file comment. Falls back per query — through a
  /// mirrored in-repo incremental session, so even permanent-fallback
  /// operation keeps session-grade performance.
  std::unique_ptr<IncrementalSession>
  openSession(const SessionLimits &Limits) override;
  using SmtSolver::openSession;

  /// A fresh SmtLibSolver with the same configuration — and therefore its
  /// own external process. This is what keeps the parallel frontier
  /// engine's one-process-per-worker rule structural rather than policed.
  std::unique_ptr<SmtSolver> spawnWorker() override;

  /// External-transport counters, separate from SolverStats (which keeps
  /// the same backend-agnostic meaning as everywhere else).
  struct ExtStats {
    uint64_t Spawns = 0;          ///< Processes started, respawns included.
    uint64_t ExternalQueries = 0; ///< Queries the external solver answered.
    uint64_t FallbackQueries = 0; ///< Queries the in-repo solver answered.
    uint64_t Timeouts = 0;        ///< Replies that missed QueryTimeoutMs.
    uint64_t Eofs = 0;            ///< Process exits/crashes mid-dialogue.
    uint64_t ProtocolErrors = 0;  ///< Unparseable / error / unknown replies.
  };
  const ExtStats &extStats() const { return Ext; }
  const SmtLibConfig &config() const { return Config; }
  /// Mutable knobs (timeout, failure budget) for tool frontends; takes
  /// effect from the next query. Changing Argv after the first spawn is
  /// not supported.
  SmtLibConfig &config() { return Config; }
  /// True once MaxProcessFailures was reached and the backend stopped
  /// respawning; every later query is answered in-repo.
  bool permanentFallback() const { return Permanent; }

  /// Splits a command line on whitespace into argv (no quoting rules —
  /// solver invocations are flag lists, not shell scripts).
  static std::vector<std::string> splitCommand(const std::string &Cmd);

  /// Cooperative cancellation (see SmtSolver::interrupt): posts to the
  /// process's self-pipe so a blocked pipe read/write returns promptly,
  /// and interrupts the embedded fallback solver so a query answered
  /// in-repo abandons just as fast. An interrupted wire exchange kills
  /// the process (the dialogue is desynced mid-query) but does NOT charge
  /// the failure budget — cancellation is the portfolio working as
  /// intended, not the solver misbehaving; the next query respawns and
  /// sessions resync their premises through the epoch mechanism.
  void interrupt() override {
    IntRequested.store(true, std::memory_order_relaxed);
    Fallback.interrupt();
    Proc.requestInterrupt();
  }
  bool interrupted() const override {
    return IntRequested.load(std::memory_order_relaxed);
  }
  void clearInterrupt() override {
    IntRequested.store(false, std::memory_order_relaxed);
    Fallback.clearInterrupt();
    Proc.clearInterruptRequest();
  }

private:
  class ExtSession;

  /// Ensures a live, handshaken process (spawning or respawning if
  /// allowed); returns false when the backend is (or just became)
  /// fallback-only.
  bool ensureProcess();
  /// Records a process-level failure: kills the process, counts it, and
  /// flips Permanent when the failure budget is exhausted.
  void processFailure(const char *What);
  void warnFallback(const char *Why);
  /// Sends a command whose only acceptable replies are "success" (or
  /// "unsupported", which set-option may legitimately draw); anything
  /// else is a process failure.
  bool command(const std::string &Line);
  /// Sends a command and returns its reply verbatim; classifies
  /// timeout/EOF into processFailure.
  bool exchange(const std::string &Line, std::string &Reply);
  /// Declares \p Vars (sanitized-name → width) not yet known to the live
  /// process; \p Record=false keeps them out of the declared set (used
  /// inside one-shot push scopes, where the solver pops them again).
  bool declareVars(const std::vector<std::pair<std::string, size_t>> &Vars,
                   bool Record);
  /// The external one-shot path; false = answer via fallback.
  bool tryExternalCheckSat(const BvFormulaRef &F, Model *M, SatResult &R);
  /// Reads and parses a get-model reply for \p Original (renamed by
  /// \p Prefix) into \p M under the *original* variable names; vars the
  /// solver omitted default to zero.
  bool readModel(const std::vector<BvFormulaRef> &Originals,
                 const std::string &Prefix, Model *M);
  /// The fetch/parse half of readModel without the satisfaction check:
  /// batched rounds are *disjunctive*, so the model legitimately
  /// falsifies some of the scope's formulas and the caller validates the
  /// ones it attributes answers to.
  bool readModelRaw(const std::vector<BvFormulaRef> &Scope,
                    const std::string &Prefix, Model *M);
  /// Tears the process down after an interrupted exchange: the dialogue
  /// is desynced, but no failure is charged (see interrupt()).
  void interruptedTeardown();

  SmtLibConfig Config;
  ExtProcess Proc;
  ExtStats Ext;
  bool Permanent = false;  ///< No more respawn attempts.
  bool Warned = false;     ///< The one-time fallback notice fired.
  int Failures = 0;        ///< Process-level failures so far.
  uint64_t Epoch = 0;      ///< Incremented per (re)spawn; sessions resync
                           ///< their premises when it moves.
  uint64_t QueryCounter = 0;   ///< One-shot variable-prefix source.
  uint64_t SessionCounter = 0; ///< Session id / prefix source.
  /// Sanitized symbol → width, declared at the live process's base level.
  std::unordered_map<std::string, size_t> Declared;
  /// Set by interrupt() (any thread), cleared by clearInterrupt().
  std::atomic<bool> IntRequested{false};
  /// In-repo answers for everything the external process cannot provide.
  BitBlastSolver Fallback;
};

/// Runs every query on two backends and compares sat/unsat answers; the
/// reference backend's answers (and models) are what callers see. On
/// divergence the offending query is dumped as a complete SMT-LIB script
/// and — with AbortOnDivergence, the default — the process aborts, the
/// same policy as a failed DRUP replay: an unexplained solver
/// disagreement means a soundness bug somewhere, and there is no
/// meaningful recovery.
class CrossCheckSolver : public SmtSolver {
public:
  CrossCheckSolver(std::unique_ptr<SmtSolver> Reference,
                   std::unique_ptr<SmtSolver> External);
  ~CrossCheckSolver() override;

  SatResult checkSat(const BvFormulaRef &F, Model *M) override;
  std::unique_ptr<IncrementalSession>
  openSession(const SessionLimits &Limits) override;
  using SmtSolver::openSession;
  /// Workers cross-check too: both children must be able to spawn.
  std::unique_ptr<SmtSolver> spawnWorker() override;

  bool AbortOnDivergence = true;

  /// Proof capture routes to the reference backend: every query — session
  /// or one-shot — is answered by the reference and merely *compared*
  /// against the external solver, so the reference's per-goal DRUP slices
  /// cover externally cross-checked verdicts without any get-proof
  /// support. This is how certified checks use external solvers: the
  /// checker rewrites "smtlib:<cmd>" to "crosscheck:<cmd>" when
  /// certification is requested (see core::CheckOptions::Certify).
  bool attachProofLog(ProofLog *Log) override {
    return Ref->attachProofLog(Log);
  }
  void detachProofLog() override { Ref->detachProofLog(); }
  bool supportsProofCapture() const override {
    return Ref->supportsProofCapture();
  }

  /// Cancellation fans out to both legs; either leg reporting an
  /// abandoned query makes the whole cross-checked answer garbage.
  void interrupt() override {
    Ref->interrupt();
    Extern->interrupt();
  }
  bool interrupted() const override {
    return Ref->interrupted() || Extern->interrupted();
  }
  void clearInterrupt() override {
    Ref->clearInterrupt();
    Extern->clearInterrupt();
  }

  struct XStats {
    uint64_t Checked = 0;     ///< Queries posed to both backends.
    uint64_t Divergences = 0; ///< sat/unsat disagreements observed.
  };
  const XStats &crossStats() const { return X; }
  SmtSolver &reference() { return *Ref; }
  SmtSolver &external() { return *Extern; }

private:
  class CrossSession;

  /// Reports one divergence on \p Query (premises folded in by the
  /// session path) and aborts if configured to.
  void diverged(const BvFormulaRef &Query, SatResult RefR, SatResult ExtR);

  std::unique_ptr<SmtSolver> Ref, Extern;
  XStats X;
};

/// The backend factory behind core::CheckOptions::Backend and the CLI's
/// --backend flag. Specs:
///
///   "" / "bitblast"      — the in-repo bit-blasting backend (default)
///   "smtlib:<cmd line>"  — external SMT-LIB2 process, e.g.
///                          "smtlib:z3 -in", "smtlib:cvc5 --incremental"
///   "crosscheck"         — bitblast vs "z3 -in", hard-fail on divergence
///   "crosscheck:<cmd>"   — bitblast vs the given solver command
///   "portfolio:<leg>,…"  — race the comma-separated leg specs per query,
///                          first answer wins, losers are cancelled; e.g.
///                          "portfolio:bitblast,smtlib:z3 -in". Legs may
///                          be any non-portfolio spec (crosscheck legs
///                          compose). No proof capture (see Portfolio.h).
///
/// Returns nullptr and fills \p Error on a malformed spec. A well-formed
/// spec whose binary turns out to be missing still succeeds here: the
/// failure is discovered at the first query and degrades to the in-repo
/// solver (see SmtLibSolver), keeping external solvers an optional
/// dependency everywhere.
std::unique_ptr<SmtSolver> createSolverBackend(const std::string &Spec,
                                               std::string *Error = nullptr);

} // namespace smt
} // namespace leapfrog

#endif // LEAPFROG_SMT_SMTLIBSOLVER_H
