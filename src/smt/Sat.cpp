//===- Sat.cpp - CDCL SAT solver ------------------------------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "smt/Sat.h"

#include "obs/Metrics.h"
#include "smt/Drat.h"
#include "smt/ProofLog.h"

#include <algorithm>

using namespace leapfrog;
using namespace leapfrog::smt;

void SatSolver::logInput(const std::vector<Lit> &C) {
  if (Proof)
    Proof->Inputs.push_back(C);
  if (Sink)
    Sink->onInput(C);
}

void SatSolver::logLemma(std::vector<Lit> C) {
  if (Sink)
    Sink->onLemma(C);
  if (Proof)
    Proof->Lemmas.push_back(std::move(C));
}

void SatSolver::logDelete(const std::vector<Lit> &C) {
  if (Sink)
    Sink->onDelete(C);
}

Var SatSolver::newVar() {
  Var V = int(Assigns.size());
  Assigns.push_back(LBool::Undef);
  SavedPhase.push_back(false);
  Levels.push_back(0);
  Reasons.push_back(NoReason);
  Activity.push_back(0.0);
  Seen.push_back(0);
  Watches.emplace_back();
  Watches.emplace_back();
  HeapPos.push_back(-1);
  heapInsert(V);
  return V;
}

void SatSolver::percolateUp(int I) {
  Var V = Heap[I];
  while (I > 0) {
    int Parent = (I - 1) >> 1;
    if (!heapLess(V, Heap[Parent]))
      break;
    Heap[I] = Heap[Parent];
    HeapPos[Heap[I]] = I;
    I = Parent;
  }
  Heap[I] = V;
  HeapPos[V] = I;
}

void SatSolver::percolateDown(int I) {
  Var V = Heap[I];
  int N = int(Heap.size());
  for (;;) {
    int Child = 2 * I + 1;
    if (Child >= N)
      break;
    if (Child + 1 < N && heapLess(Heap[Child + 1], Heap[Child]))
      ++Child;
    if (!heapLess(Heap[Child], V))
      break;
    Heap[I] = Heap[Child];
    HeapPos[Heap[I]] = I;
    I = Child;
  }
  Heap[I] = V;
  HeapPos[V] = I;
}

void SatSolver::heapInsert(Var V) {
  if (HeapPos[V] >= 0)
    return;
  Heap.push_back(V);
  HeapPos[V] = int(Heap.size()) - 1;
  percolateUp(HeapPos[V]);
}

Var SatSolver::heapPop() {
  if (Heap.empty())
    return -1;
  Var Top = Heap[0];
  HeapPos[Top] = -1;
  Heap[0] = Heap.back();
  Heap.pop_back();
  if (!Heap.empty()) {
    HeapPos[Heap[0]] = 0;
    percolateDown(0);
  }
  return Top;
}

bool SatSolver::addClause(std::vector<Lit> Lits) {
  // Incremental use: undo any decisions left over from a previous solve so
  // the normalization below only consults level-0 (entailed) assignments.
  backtrack(0);
  if (Unsat)
    return false;
  logInput(Lits);
  size_t InputSize = Lits.size();
  // Normalize: sort, drop duplicates, detect tautologies, drop literals
  // already false at level 0, and succeed on literals already true.
  std::sort(Lits.begin(), Lits.end(),
            [](Lit A, Lit B) { return A.X < B.X; });
  std::vector<Lit> Out;
  Lit Prev = Lit::undef();
  for (Lit L : Lits) {
    assert(L.var() >= 0 && size_t(L.var()) < Assigns.size() &&
           "literal references unallocated variable");
    if (L == Prev)
      continue;
    if (Prev != Lit::undef() && L == ~Prev)
      return true; // Tautology.
    if (value(L) == LBool::True)
      return true; // Satisfied at level 0.
    if (value(L) == LBool::False)
      continue; // Falsified at level 0; drop.
    Out.push_back(L);
    Prev = L;
  }
  // The normalized clause is RUP with respect to the database (dropped
  // literals are falsified by level-0 propagation, which the checker
  // reproduces), so logging it keeps the proof aligned with the clause
  // the solver actually reasons with.
  if (Out.size() != InputSize)
    logLemma(Out);
  if (Out.empty()) {
    Unsat = true;
    return false;
  }
  if (Out.size() == 1) {
    enqueue(Out[0], NoReason);
    if (propagate() != NoReason) {
      logLemma({});
      Unsat = true;
      return false;
    }
    return true;
  }
  Clauses.push_back(Clause{std::move(Out), /*Learnt=*/false});
  ArenaBytes += clauseBytes(Clauses.back());
  S.ArenaBytesPeak = std::max(S.ArenaBytesPeak, ArenaBytes);
  attachClause(int(Clauses.size()) - 1);
  return true;
}

void SatSolver::attachClause(ClauseRef CR) {
  const Clause &C = Clauses[CR];
  assert(C.Lits.size() >= 2 && "watching a short clause");
  Watches[(~C.Lits[0]).index()].push_back(CR);
  Watches[(~C.Lits[1]).index()].push_back(CR);
}

void SatSolver::enqueue(Lit L, ClauseRef Reason) {
  assert(value(L) == LBool::Undef && "enqueue of assigned literal");
  Assigns[L.var()] = fromBool(!L.negated());
  Levels[L.var()] = decisionLevel();
  Reasons[L.var()] = Reason;
  SavedPhase[L.var()] = !L.negated();
  Trail.push_back(L);
}

SatSolver::ClauseRef SatSolver::propagate() {
  while (QueueHead < Trail.size()) {
    Lit P = Trail[QueueHead++];
    ++S.Propagations;
    // Clauses watching ~P must find a new watch or propagate/conflict.
    std::vector<ClauseRef> &WList = Watches[P.index()];
    size_t Keep = 0;
    for (size_t I = 0; I < WList.size(); ++I) {
      ClauseRef CR = WList[I];
      Clause &C = Clauses[CR];
      // Ensure the falsified literal is in slot 1.
      if (C.Lits[0] == ~P)
        std::swap(C.Lits[0], C.Lits[1]);
      assert(C.Lits[1] == ~P && "watch list out of sync");
      if (value(C.Lits[0]) == LBool::True) {
        WList[Keep++] = CR;
        continue;
      }
      // Look for a new literal to watch.
      bool FoundWatch = false;
      for (size_t K = 2; K < C.Lits.size(); ++K) {
        if (value(C.Lits[K]) != LBool::False) {
          std::swap(C.Lits[1], C.Lits[K]);
          Watches[(~C.Lits[1]).index()].push_back(CR);
          FoundWatch = true;
          break;
        }
      }
      if (FoundWatch)
        continue;
      // Unit or conflicting.
      WList[Keep++] = CR;
      if (value(C.Lits[0]) == LBool::False) {
        // Conflict: restore remaining watches and report.
        for (size_t K = I + 1; K < WList.size(); ++K)
          WList[Keep++] = WList[K];
        WList.resize(Keep);
        QueueHead = Trail.size();
        return CR;
      }
      enqueue(C.Lits[0], CR);
    }
    WList.resize(Keep);
  }
  return NoReason;
}

void SatSolver::bumpVar(Var V) {
  Activity[V] += VarInc;
  if (Activity[V] > RescaleThreshold) {
    for (double &A : Activity)
      A /= RescaleThreshold;
    VarInc /= RescaleThreshold;
    // Activities kept their relative order; the heap stays valid.
  }
  if (HeapPos[V] >= 0)
    percolateUp(HeapPos[V]);
}

void SatSolver::bumpClause(ClauseRef CR) {
  Clause &C = Clauses[CR];
  C.Act += float(ClaInc);
  if (C.Act > ClauseRescaleThreshold) {
    for (Clause &Other : Clauses)
      Other.Act /= ClauseRescaleThreshold;
    ClaInc /= double(ClauseRescaleThreshold);
  }
}

uint32_t SatSolver::computeLbd(const std::vector<Lit> &C) {
  if (LevelStamp.size() < TrailLim.size() + 1)
    LevelStamp.resize(TrailLim.size() + 1, 0);
  ++LbdStamp;
  uint32_t N = 0;
  for (Lit L : C) {
    int Lvl = Levels[L.var()];
    if (Lvl <= 0)
      continue;
    if (LevelStamp[Lvl] != LbdStamp) {
      LevelStamp[Lvl] = LbdStamp;
      ++N;
    }
  }
  return N;
}

void SatSolver::removeClauses(const std::vector<char> &Del) {
  assert(decisionLevel() == 0 && "clause deletion above level 0");
  assert(Del.size() == Clauses.size());
  std::vector<ClauseRef> Remap(Clauses.size(), NoReason);
  size_t Kept = 0;
  for (size_t I = 0; I < Clauses.size(); ++I)
    Kept += !Del[I];
  std::vector<Clause> Compact;
  Compact.reserve(Kept);
  for (size_t I = 0; I < Clauses.size(); ++I) {
    if (Del[I]) {
      ++S.ClausesDeleted;
      if (Clauses[I].Learnt) {
        assert(LearntCount > 0);
        --LearntCount;
      }
      ArenaBytes -= clauseBytes(Clauses[I]);
      logDelete(Clauses[I].Lits);
      continue;
    }
    Remap[I] = ClauseRef(Compact.size());
    Compact.push_back(std::move(Clauses[I]));
  }
  // The move assignment drops the old (larger) buffer; Compact was
  // reserved to the exact survivor count, so the arena really shrinks.
  Clauses = std::move(Compact);
  // Rebuild the watcher lists from scratch. Each surviving clause still
  // watches Lits[0]/Lits[1] — the invariant propagate() maintains — so
  // re-attaching in place is sound at level 0. shrink_to_fit returns the
  // old lists' capacity before the re-attach repopulates them.
  for (std::vector<ClauseRef> &W : Watches) {
    W.clear();
    W.shrink_to_fit();
  }
  for (size_t I = 0; I < Clauses.size(); ++I)
    attachClause(ClauseRef(I));
  // Remap reasons. A deleted reason can only belong to a level-0
  // assignment (everything above level 0 was undone before deletion, and
  // deletion never targets a clause locked above level 0); level-0
  // reasons are never dereferenced by analyze()/analyzeFinal(), which
  // both skip level-0 literals, so clearing them is safe.
  for (size_t V = 0; V < Assigns.size(); ++V) {
    if (Reasons[V] == NoReason)
      continue;
    ClauseRef N = Remap[Reasons[V]];
    assert((N != NoReason || Levels[V] == 0) &&
           "deleted the reason of an assignment above level 0");
    Reasons[V] = N;
  }
}

void SatSolver::reduceDB() {
  assert(decisionLevel() == 0 && "reduceDB above level 0");
  ++S.ReduceDbRuns;
  // Locked clauses (reasons of current — i.e. level-0 — assignments) are
  // kept: MiniSat's discipline, and the cheap way to keep Reasons valid.
  std::vector<char> Locked(Clauses.size(), 0);
  for (Lit L : Trail) {
    ClauseRef R = Reasons[L.var()];
    if (R != NoReason)
      Locked[R] = 1;
  }
  std::vector<ClauseRef> Candidates;
  for (size_t I = 0; I < Clauses.size(); ++I) {
    const Clause &C = Clauses[I];
    if (C.Learnt && !Locked[I] && C.Lits.size() > 2 && C.Lbd > Reduce.GlueLbd)
      Candidates.push_back(ClauseRef(I));
  }
  if (Candidates.empty())
    return;
  // Cold half first: highest LBD, then lowest activity; index breaks ties
  // so runs are deterministic.
  std::sort(Candidates.begin(), Candidates.end(),
            [this](ClauseRef A, ClauseRef B) {
              const Clause &CA = Clauses[A], &CB = Clauses[B];
              if (CA.Lbd != CB.Lbd)
                return CA.Lbd > CB.Lbd;
              if (CA.Act != CB.Act)
                return CA.Act < CB.Act;
              return A < B;
            });
  std::vector<char> Del(Clauses.size(), 0);
  for (size_t I = 0; I < Candidates.size() / 2; ++I)
    Del[Candidates[I]] = 1;
  removeClauses(Del);
}

void SatSolver::simplify() {
  backtrack(0);
  if (Unsat)
    return;
  std::vector<char> Del(Clauses.size(), 0);
  bool Any = false;
  for (size_t I = 0; I < Clauses.size(); ++I) {
    for (Lit Q : Clauses[I].Lits) {
      if (value(Q) == LBool::True) {
        Del[I] = 1;
        Any = true;
        break;
      }
    }
  }
  if (Any)
    removeClauses(Del);
}

void SatSolver::analyze(ClauseRef Conflict, std::vector<Lit> &Learnt,
                        int &BacktrackLevel) {
  // First-UIP scheme: walk the trail backwards resolving antecedents until
  // exactly one literal of the current decision level remains.
  Learnt.clear();
  Learnt.push_back(Lit::undef()); // Slot for the asserting literal.
  int Counter = 0;
  Lit P = Lit::undef();
  size_t TrailIndex = Trail.size();
  ClauseRef Reason = Conflict;

  do {
    assert(Reason != NoReason && "analysis escaped the implication graph");
    if (Clauses[Reason].Learnt)
      bumpClause(Reason);
    const Clause &C = Clauses[Reason];
    for (Lit Q : C.Lits) {
      if (P != Lit::undef() && Q == P)
        continue;
      Var V = Q.var();
      if (Seen[V] || Levels[V] == 0)
        continue;
      Seen[V] = 1;
      bumpVar(V);
      if (Levels[V] == decisionLevel()) {
        ++Counter;
      } else {
        Learnt.push_back(Q);
      }
    }
    // Select the next trail literal to resolve on.
    while (!Seen[Trail[TrailIndex - 1].var()])
      --TrailIndex;
    --TrailIndex;
    P = Trail[TrailIndex];
    Seen[P.var()] = 0;
    Reason = Reasons[P.var()];
    --Counter;
  } while (Counter > 0);
  Learnt[0] = ~P;

  // Compute the backtrack level: the second-highest level in the clause.
  BacktrackLevel = 0;
  if (Learnt.size() > 1) {
    size_t MaxIdx = 1;
    for (size_t I = 2; I < Learnt.size(); ++I)
      if (Levels[Learnt[I].var()] > Levels[Learnt[MaxIdx].var()])
        MaxIdx = I;
    std::swap(Learnt[1], Learnt[MaxIdx]);
    BacktrackLevel = Levels[Learnt[1].var()];
  }
  for (Lit L : Learnt)
    Seen[L.var()] = 0;
}

void SatSolver::backtrack(int Level) {
  if (decisionLevel() <= Level)
    return;
  for (size_t I = Trail.size(); I > size_t(TrailLim[Level]); --I) {
    Var V = Trail[I - 1].var();
    Assigns[V] = LBool::Undef;
    Reasons[V] = NoReason;
    heapInsert(V);
  }
  Trail.resize(TrailLim[Level]);
  TrailLim.resize(Level);
  QueueHead = Trail.size();
}

Lit SatSolver::pickBranchLit() {
  // Pop the activity heap until an unassigned variable surfaces
  // (assignments leave stale entries; they are skipped lazily).
  for (;;) {
    Var V = heapPop();
    if (V < 0)
      return Lit::undef();
    if (Assigns[V] == LBool::Undef)
      return Lit::mk(V, !SavedPhase[V]);
  }
}

uint64_t SatSolver::luby(uint64_t I) {
  // Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... (MiniSat's finite
  // subsequence formulation).
  uint64_t Size = 1, Seq = 0;
  while (Size < I + 1) {
    ++Seq;
    Size = 2 * Size + 1;
  }
  while (Size - 1 != I) {
    Size = (Size - 1) >> 1;
    --Seq;
    I = I % Size;
  }
  return uint64_t(1) << Seq;
}

bool SatSolver::solve() { return solveUnderAssumptions({}); }

void SatSolver::analyzeFinal(Lit A) {
  // Assumption \p A was found false while being planted: ¬A is implied by
  // the clause database together with the assumptions planted so far.
  // Walk the implication graph backwards from ¬A and collect every
  // pseudo-decision (planted assumption) it rests on; together with A
  // itself they form an unsatisfiable subset of the assumptions.
  FailedAssumptions.clear();
  FailedAssumptions.push_back(A);
  if (decisionLevel() == 0)
    return; // ¬A holds at level 0: A alone conflicts with the clauses.
  Seen[A.var()] = 1;
  for (size_t I = Trail.size(); I > size_t(TrailLim[0]); --I) {
    Var X = Trail[I - 1].var();
    if (!Seen[X])
      continue;
    Seen[X] = 0;
    if (Reasons[X] == NoReason) {
      // A decision above level 0 can only be a planted assumption here:
      // analyzeFinal runs before any search decision of this call, and
      // earlier calls' decisions were undone on entry.
      FailedAssumptions.push_back(Trail[I - 1]);
    } else {
      // Mark the antecedents, skipping X's own literal in its reason
      // clause — marking it would re-set the Seen bit just cleared above
      // and leak it past this walk, corrupting later conflict analyses.
      for (Lit Q : Clauses[Reasons[X]].Lits)
        if (Q.var() != X && Levels[Q.var()] > 0)
          Seen[Q.var()] = 1;
    }
  }
  Seen[A.var()] = 0;
}

bool SatSolver::solveUnderAssumptions(const std::vector<Lit> &Assumptions) {
  ++S.Solves;
  FailedAssumptions.clear();
  Interrupted = false;
  backtrack(0); // Discard decisions from any previous call.
  if (Unsat)
    return false;
  if (propagate() != NoReason) {
    logLemma({});
    Unsat = true;
    return false;
  }
#ifndef NDEBUG
  for (Lit A : Assumptions)
    assert(A.var() >= 0 && size_t(A.var()) < Assigns.size() &&
           "assumption references unallocated variable");
#endif
  static constexpr uint64_t RestartBase = 64;
  // The Luby schedule restarts per call: a fresh query deserves short
  // restarts again even if earlier queries accumulated many.
  uint64_t LocalRestarts = 0;
  uint64_t RestartConflicts = RestartBase * luby(LocalRestarts);
  uint64_t ConflictsSinceRestart = 0;
  std::vector<Lit> Learnt;

  for (;;) {
    if (InterruptFlag && InterruptFlag->load(std::memory_order_relaxed)) {
      // Abandoned, not refuted: undo decisions, report false without
      // logging a lemma (nothing was derived), and let the caller read
      // interrupted() to distinguish this from a genuine UNSAT.
      backtrack(0);
      Interrupted = true;
      return false;
    }
    ClauseRef Conflict = propagate();
    if (Conflict != NoReason) {
      ++S.Conflicts;
      ++ConflictsSinceRestart;
      if (decisionLevel() == 0) {
        logLemma({});
        Unsat = true;
        return false;
      }
      int BacktrackLevel = 0;
      analyze(Conflict, Learnt, BacktrackLevel);
      logLemma(Learnt);
      // LBD must be computed before backtracking clears the levels.
      uint32_t Lbd = computeLbd(Learnt);
      backtrack(BacktrackLevel);
      if (Learnt.size() == 1) {
        enqueue(Learnt[0], NoReason);
      } else {
        Clauses.push_back(Clause{Learnt, /*Learnt=*/true, Lbd, 0.0f});
        ++LearntCount;
        S.LearntPeak = std::max<uint64_t>(S.LearntPeak, LearntCount);
        ArenaBytes += clauseBytes(Clauses.back());
        S.ArenaBytesPeak = std::max(S.ArenaBytesPeak, ArenaBytes);
        attachClause(int(Clauses.size()) - 1);
        bumpClause(int(Clauses.size()) - 1);
        enqueue(Learnt[0], int(Clauses.size()) - 1);
      }
      decayVarActivity();
      decayClauseActivity();
      continue;
    }
    if (ConflictsSinceRestart >= RestartConflicts) {
      ++S.Restarts;
      static obs::Counter &RestartMetric =
          obs::metrics().counter("sat.restarts");
      RestartMetric.add();
      ++LocalRestarts;
      ConflictsSinceRestart = 0;
      RestartConflicts = RestartBase * luby(LocalRestarts);
      backtrack(0);
      // Clause-database reduction on the geometric schedule, fired only
      // at restart boundaries: within a restart segment the backjump
      // measure (ever-larger agreeing trail prefixes) guarantees
      // termination, and deletion between segments cannot break it. A
      // mid-segment backtrack(0)+delete would reset that measure and —
      // with an aggressive schedule — risk replaying the same conflict
      // forever. Restarts need ≥ RestartBase fresh conflicts each, so
      // reduction can never livelock the search either.
      if (Reduce.Enabled && double(LearntCount) >= LearntLimit) {
        reduceDB();
        LearntLimit *= Reduce.Growth;
      }
      continue;
    }
    // Plant the next pending assumption as a pseudo-decision (MiniSat's
    // scheme: assumption k owns decision level k+1). Restarts and deep
    // backjumps may unassign assumptions; this loop re-plants them.
    Lit Next = Lit::undef();
    while (decisionLevel() < int(Assumptions.size())) {
      Lit A = Assumptions[decisionLevel()];
      if (value(A) == LBool::True) {
        // Already implied: open a dummy level to keep indices aligned.
        TrailLim.push_back(int(Trail.size()));
      } else if (value(A) == LBool::False) {
        analyzeFinal(A);
        backtrack(0);
        return false;
      } else {
        Next = A;
        break;
      }
    }
    if (Next == Lit::undef()) {
      Next = pickBranchLit();
      if (Next == Lit::undef())
        return true; // All variables assigned: SAT.
      ++S.Decisions;
    }
    TrailLim.push_back(int(Trail.size()));
    enqueue(Next, NoReason);
  }
}
