//===- BitBlast.cpp - FOL(BV) to CNF translation --------------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "smt/BitBlast.h"

using namespace leapfrog;
using namespace leapfrog::smt;

Lit BitBlaster::freshLit() { return Lit::mk(Solver.newVar(), false); }

void BitBlaster::emit(std::vector<Lit> C) {
  if (GuardActive)
    C.push_back(~GuardLit);
  Solver.addClause(std::move(C));
}

void BitBlaster::pushGuard(Lit Guard) {
  assert(!GuardActive && "guarded scopes do not nest");
  GuardActive = true;
  GuardLit = Guard;
  ScopedFormulas.clear();
  ScopedTerms.clear();
  ScopedRootsFrom = PinnedRoots.size();
}

size_t BitBlaster::popGuardAndEvict() {
  assert(GuardActive && "no guarded scope to pop");
  GuardActive = false;
  GuardLit = Lit::undef();
  size_t Evicted = ScopedFormulas.size() + ScopedTerms.size() +
                   (PinnedRoots.size() - ScopedRootsFrom);
  for (const BvFormula *F : ScopedFormulas)
    FormulaCache.erase(F);
  for (const BvTerm *T : ScopedTerms)
    TermCache.erase(T);
  ScopedFormulas.clear();
  ScopedTerms.clear();
  // The scope's roots were only pinned to keep the evicted cache keys
  // from aliasing freed nodes; with the entries gone they can be
  // released.
  PinnedRoots.resize(ScopedRootsFrom);
  return Evicted;
}

Lit BitBlaster::trueLit() {
  if (TrueL == Lit::undef()) {
    TrueL = freshLit();
    Solver.addClause(TrueL);
  }
  return TrueL;
}

Lit BitBlaster::litForVarBit(const std::string &Name, size_t Width,
                             size_t BitIndex) {
  auto It = VarBits.find(Name);
  if (It == VarBits.end()) {
    std::vector<Var> Bits;
    Bits.reserve(Width);
    for (size_t I = 0; I < Width; ++I)
      Bits.push_back(Solver.newVar());
    It = VarBits.emplace(Name, std::move(Bits)).first;
  }
  assert(It->second.size() == Width && "variable used at two widths");
  assert(BitIndex < Width && "bit index out of range");
  return Lit::mk(It->second[BitIndex], false);
}

std::vector<BitBlaster::BBit> BitBlaster::blastTerm(const BvTermRef &T) {
  auto Cached = TermCache.find(T.get());
  if (Cached != TermCache.end())
    return Cached->second;

  std::vector<BBit> Bits;
  Bits.reserve(T->width());
  switch (T->kind()) {
  case BvTerm::Kind::Var:
    for (size_t I = 0; I < T->width(); ++I)
      Bits.push_back(BBit::mkLit(litForVarBit(T->varName(), T->width(), I)));
    break;
  case BvTerm::Kind::Const:
    for (size_t I = 0; I < T->width(); ++I)
      Bits.push_back(BBit::mkConst(T->constValue().bit(I)));
    break;
  case BvTerm::Kind::Concat: {
    Bits = blastTerm(T->lhs());
    std::vector<BBit> R = blastTerm(T->rhs());
    Bits.insert(Bits.end(), R.begin(), R.end());
    break;
  }
  case BvTerm::Kind::Extract: {
    std::vector<BBit> Op = blastTerm(T->extractOperand());
    for (size_t I = T->extractLo(); I <= T->extractHi(); ++I)
      Bits.push_back(Op[I]);
    break;
  }
  }
  assert(Bits.size() == T->width() && "blasted width mismatch");
  TermCache.emplace(T.get(), Bits);
  if (GuardActive)
    ScopedTerms.push_back(T.get());
  return Bits;
}

Lit BitBlaster::blastFormula(const BvFormulaRef &F) {
  auto Cached = FormulaCache.find(F.get());
  if (Cached != FormulaCache.end())
    return Cached->second;

  Lit Result = Lit::undef();
  switch (F->kind()) {
  case BvFormula::Kind::True:
    Result = trueLit();
    break;
  case BvFormula::Kind::False:
    Result = ~trueLit();
    break;
  case BvFormula::Kind::Eq: {
    std::vector<BBit> L = blastTerm(F->eqLhs());
    std::vector<BBit> R = blastTerm(F->eqRhs());
    assert(L.size() == R.size() && "equality width mismatch");
    // G <-> AND_i (L_i <-> R_i). Constant bits fold.
    std::vector<Lit> PerBit;
    bool KnownFalse = false;
    for (size_t I = 0; I < L.size() && !KnownFalse; ++I) {
      const BBit &A = L[I], &B = R[I];
      if (!A.IsConst && !B.IsConst && A.L == B.L)
        continue; // Same literal on both sides: trivially equal.
      if (A.IsConst && B.IsConst) {
        if (A.ConstVal != B.ConstVal)
          KnownFalse = true;
        continue;
      }
      if (A.IsConst || B.IsConst) {
        // One side fixed: the equivalence is a literal (possibly negated).
        const BBit &C = A.IsConst ? A : B;
        const BBit &V = A.IsConst ? B : A;
        PerBit.push_back(C.ConstVal ? V.L : ~V.L);
        continue;
      }
      // Both symbolic: E <-> (A <-> B).
      Lit E = freshLit();
      emit(~E, ~A.L, B.L);
      emit(~E, A.L, ~B.L);
      emit(E, A.L, B.L);
      emit(E, ~A.L, ~B.L);
      PerBit.push_back(E);
    }
    if (KnownFalse) {
      Result = ~trueLit();
      break;
    }
    if (PerBit.empty()) {
      Result = trueLit();
      break;
    }
    if (PerBit.size() == 1) {
      Result = PerBit[0];
      break;
    }
    Lit G = freshLit();
    std::vector<Lit> LongClause{G};
    for (Lit E : PerBit) {
      emit(~G, E);
      LongClause.push_back(~E);
    }
    emit(std::move(LongClause));
    Result = G;
    break;
  }
  case BvFormula::Kind::Not:
    Result = ~blastFormula(F->sub());
    break;
  case BvFormula::Kind::And: {
    Lit A = blastFormula(F->lhs());
    Lit B = blastFormula(F->rhs());
    Lit G = freshLit();
    emit(~G, A);
    emit(~G, B);
    emit(G, ~A, ~B);
    Result = G;
    break;
  }
  case BvFormula::Kind::Or: {
    Lit A = blastFormula(F->lhs());
    Lit B = blastFormula(F->rhs());
    Lit G = freshLit();
    emit(G, ~A);
    emit(G, ~B);
    emit(~G, A, B);
    Result = G;
    break;
  }
  case BvFormula::Kind::Implies: {
    Lit A = blastFormula(F->lhs());
    Lit B = blastFormula(F->rhs());
    Lit G = freshLit();
    emit(G, A);
    emit(G, ~B);
    emit(~G, ~A, B);
    Result = G;
    break;
  }
  }
  FormulaCache.emplace(F.get(), Result);
  if (GuardActive)
    ScopedFormulas.push_back(F.get());
  return Result;
}

Lit BitBlaster::litFor(const BvFormulaRef &F) {
  PinnedRoots.push_back(F);
  return blastFormula(F);
}

void BitBlaster::assertFormula(const BvFormulaRef &F) {
  PinnedRoots.push_back(F);
  switch (F->kind()) {
  case BvFormula::Kind::True:
    return;
  case BvFormula::Kind::False:
    emit(std::vector<Lit>{}); // Empty clause (or the guard's negation).
    return;
  case BvFormula::Kind::And:
    assertFormula(F->lhs());
    assertFormula(F->rhs());
    return;
  case BvFormula::Kind::Eq: {
    // Direct clausal encoding, two binary clauses per symbolic bit pair.
    std::vector<BBit> L = blastTerm(F->eqLhs());
    std::vector<BBit> R = blastTerm(F->eqRhs());
    for (size_t I = 0; I < L.size(); ++I) {
      const BBit &A = L[I], &B = R[I];
      if (A.IsConst && B.IsConst) {
        if (A.ConstVal != B.ConstVal)
          emit(std::vector<Lit>{});
        continue;
      }
      if (A.IsConst || B.IsConst) {
        const BBit &C = A.IsConst ? A : B;
        const BBit &V = A.IsConst ? B : A;
        emit(C.ConstVal ? V.L : ~V.L);
        continue;
      }
      emit(~A.L, B.L);
      emit(A.L, ~B.L);
    }
    return;
  }
  case BvFormula::Kind::Not:
  case BvFormula::Kind::Or:
  case BvFormula::Kind::Implies:
    emit(blastFormula(F));
    return;
  }
}

Bitvector BitBlaster::modelValue(const std::string &Name, size_t Width) {
  Bitvector Value(Width);
  auto It = VarBits.find(Name);
  if (It == VarBits.end())
    return Value; // Never constrained: any value works; report zero.
  assert(It->second.size() == Width && "variable used at two widths");
  for (size_t I = 0; I < Width; ++I)
    Value.setBit(I, Solver.modelValue(It->second[I]));
  return Value;
}
