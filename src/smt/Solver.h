//===- Solver.h - SMT solving facade ----------------------------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solver interface the equivalence checker programs against — the role
/// of the paper's Coq plugin plus external solver (Figure 6, the trusted
/// "Plugin" and "Solver" boxes). The default backend bit-blasts to the
/// in-repo CDCL solver; the interface is virtual so tests can inject a
/// deliberately unsound backend and demonstrate that certificate replay
/// (core/Certificate.h) catches it, mirroring the paper's TCB discussion
/// in §6.4.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_SMT_SOLVER_H
#define LEAPFROG_SMT_SOLVER_H

#include "smt/BvFormula.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace leapfrog {
namespace smt {

/// Outcome of a satisfiability query.
enum class SatResult { Sat, Unsat };

/// A satisfying assignment: variable name → value.
using Model = std::vector<std::pair<std::string, Bitvector>>;

/// Cumulative statistics across queries, reported by the bench harness
/// (the paper's §7.3 "SMT Solver Performance" discussion).
struct SolverStats {
  uint64_t Queries = 0;
  uint64_t SatAnswers = 0;
  uint64_t UnsatAnswers = 0;
  uint64_t TotalSatVars = 0;
  uint64_t TotalSatClauses = 0;
  uint64_t TotalMicros = 0;
  uint64_t MaxMicros = 0;
  std::vector<uint64_t> QueryMicros; ///< Per-query latencies.
  /// Proof-certification counters (BitBlastSolver with CertifyUnsat).
  uint64_t CertifiedUnsat = 0; ///< UNSAT answers validated by DratChecker.
  uint64_t ProofLemmas = 0;    ///< Total lemmas across checked proofs.
  uint64_t ProofMicros = 0;    ///< Time spent replaying proofs.
};

/// Abstract satisfiability backend for FOL(BV).
class SmtSolver {
public:
  virtual ~SmtSolver() = default;

  /// Decides satisfiability of \p F over its free variables; fills \p M
  /// with a witness when satisfiable (pass nullptr to skip).
  ///
  /// Precondition: \p F must be well-sorted — every variable occurrence
  /// agrees on width and every operator's operand widths are consistent
  /// (guaranteed by the logic/Lower.h chain; asserted by the default
  /// backend's bit-blaster). The query is decided exactly: no unknowns,
  /// no timeouts at this layer (callers budget wall-clock above, see
  /// core::CheckOptions::MaxWallMicros).
  ///
  /// Complexity: FOL(BV) satisfiability is NP-complete. The default
  /// backend emits a CNF of O(nodes × width) variables and clauses and
  /// runs CDCL over it — exponential worst case, fast on the checker's
  /// entailment queries in practice (§7.3 reports median solver times in
  /// the milliseconds).
  virtual SatResult checkSat(const BvFormulaRef &F, Model *M) = 0;

  /// Validity of the universal closure: ∀x⃗. F, decided as UNSAT(¬F).
  /// On invalidity, fills \p Counterexample if non-null with a falsifying
  /// assignment. This is the only operation the equivalence checker and
  /// the certificate replayer need, which is why UNSAT answers are the
  /// certified direction (see BitBlastSolver::CertifyUnsat).
  bool isValid(const BvFormulaRef &F, Model *Counterexample = nullptr);

  const SolverStats &stats() const { return Stats; }
  void resetStats() { Stats = SolverStats(); }

protected:
  SolverStats Stats;
};

/// The default backend: bit-blasting + CDCL (see BitBlast.h, Sat.h).
class BitBlastSolver : public SmtSolver {
public:
  SatResult checkSat(const BvFormulaRef &F, Model *M) override;

  /// When set, every UNSAT answer is accompanied by a DRUP proof and
  /// replayed through DratChecker before being reported (see Drat.h); a
  /// failed replay aborts. This removes the CDCL solver from the trusted
  /// base, the "proof reconstruction" step the paper's §6.4 leaves as
  /// future work. SAT answers need no certification: the checker's callers
  /// only act on validity (UNSAT of the negation), and SAT answers carry a
  /// model that is checked against the formula by construction of the
  /// bit-blaster's variable mapping.
  bool CertifyUnsat = false;
};

/// Returns the process-wide default solver instance (a BitBlastSolver
/// without proof certification). Not thread-safe: the instance and its
/// statistics are shared mutable state, so concurrent checkers must each
/// construct their own backend and pass it via core::CheckOptions::Solver.
SmtSolver &defaultSolver();

} // namespace smt
} // namespace leapfrog

#endif // LEAPFROG_SMT_SOLVER_H
